# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench tables examples clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

tables:
	dune exec bench/main.exe -- tables

examples:
	@for e in quickstart mutual_exclusion database_locks \
	  algorithm_comparison distributed_debugging online_monitoring \
	  channel_monitor boolean_predicates deadlock_detection bank_audit; do \
	  echo "==== $$e ===="; dune exec examples/$$e.exe; echo; done

clean:
	dune clean
