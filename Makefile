# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench tables bench-json perf-check bench-smoke check chaos-soak recovery-soak trace-check telemetry-check btrace-check slice-check examples clean

# Committed machine-readable baseline (see EXPERIMENTS.md).
BENCH_BASELINE ?= BENCH_1.json

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

tables:
	dune exec bench/main.exe -- tables

# Regenerate the JSON benchmark baseline (all E1-E8 sweeps, fanned out
# over domains; deterministic fields are domain-count independent).
bench-json:
	dune exec bench/main.exe -- json --out $(BENCH_BASELINE)

# Re-run the sweeps and fail if any deterministic metric drifted from
# the committed baseline, or wall time regressed > 20% per experiment.
perf-check:
	dune exec bench/main.exe -- perf-check $(BENCH_BASELINE)

# Fast wire-regression gate: run the smoke profile (every smoke job is
# also a full job, including a tiny E15/E16/E17 slice) and
# subset-compare it against the committed full baseline. Seconds, not
# minutes.
bench-smoke:
	dune exec bench/main.exe -- json --smoke --seq --out _build/bench-smoke.json
	dune exec bench/main.exe -- perf-check $(BENCH_BASELINE) _build/bench-smoke.json --subset

# Everything a PR should pass: build, tests, and the smoke perf gate.
check: build test bench-smoke

# Full chaos matrix (drop rate x size x seed, token-vc + token-dd vs
# the fault-free oracle). A bounded smoke of the same test always runs
# inside `make test`; this target unlocks the whole sweep.
chaos-soak:
	WCP_CHAOS_SOAK=1 dune exec test/test_soak.exe -- test chaos

# Seeded crash/restart loop: every token algorithm under a mid-run
# monitor Restart composed with link loss, across sizes x windows x
# seeds, each run checked against the fault-free oracle. A bounded
# smoke of the same loop always runs inside `make test`; this target
# unlocks the full matrix.
recovery-soak:
	WCP_RECOVERY_SOAK=1 dune exec test/test_recovery.exe -- test soak

# Validate emitted JSONL event logs against the wcp-events/1 schema
# (codec round-trip, run_meta header, seq/time monotonicity, Chrome
# export well-formedness) across the full algorithm x size x seed
# corpus. A bounded smoke of the same validation always runs inside
# `make test`; this target unlocks the whole sweep.
trace-check:
	WCP_TRACE_CHECK=1 dune exec test/test_obs.exe -- test schema

# Telemetry-plane gate. First unlock the full in-process
# stream-validation corpus in test_telemetry (codec totality, window
# invariants, in-process determinism), then prove the wcp-metrics/1
# stream byte-deterministic ACROSS processes: the same trace, seed and
# algorithm through two separate CLI invocations must produce
# byte-identical streams — including the per-phase alloc_bytes profile,
# which is allocation-schedule (not wall-clock) derived. A bounded
# smoke of the in-process half always runs inside `make test`.
telemetry-check:
	WCP_TELEMETRY_CHECK=1 dune exec test/test_telemetry.exe -- test streams
	@dune build bin/wcpdetect.exe
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	wcp=_build/default/bin/wcpdetect.exe; \
	for n in 4 8; do \
	  $$wcp generate -n $$n -m 12 --p-pred 0.3 --seed $$n -o $$tmp/t$$n.trace >/dev/null; \
	  for algo in token-vc token-dd checker; do \
	    $$wcp detect $$tmp/t$$n.trace -a $$algo --metrics-out $$tmp/a.jsonl --metrics-every 5 >/dev/null; \
	    $$wcp detect $$tmp/t$$n.trace -a $$algo --metrics-out $$tmp/b.jsonl --metrics-every 5 >/dev/null; \
	    cmp -s $$tmp/a.jsonl $$tmp/b.jsonl \
	      || { echo "telemetry-check: $$algo n=$$n stream drifted"; exit 1; }; \
	    echo "telemetry-check: $$algo n=$$n OK ($$(wc -l < $$tmp/a.jsonl) lines)"; \
	  done; \
	done; \
	$$wcp chaos $$tmp/t8.trace -a token-vc --restart 4@2-10 --metrics-out $$tmp/a.jsonl >/dev/null; \
	$$wcp chaos $$tmp/t8.trace -a token-vc --restart 4@2-10 --metrics-out $$tmp/b.jsonl >/dev/null; \
	cmp -s $$tmp/a.jsonl $$tmp/b.jsonl \
	  || { echo "telemetry-check: chaos/restart stream drifted"; exit 1; }; \
	echo "telemetry-check: chaos/restart OK"

# Binary-trace-store gate. First unlock the full streamed-vs-dense
# agreement corpus in test_btrace (round-trips, writer/encoder byte
# identity, corrupt fixtures), then prove the two stores interchangeable
# THROUGH THE CLI: text -> btrace -> text convert round-trips must be
# byte-identical (and the btrace byte-identical to the generator's
# direct-to-disk stream), and `detect --stream` over the mmap'd file
# must spell out the same cut as the dense text path for every
# algorithm. A bounded smoke of the in-process half always runs inside
# `make test`.
btrace-check:
	WCP_BTRACE_CHECK=1 dune exec test/test_btrace.exe -- test stream
	@dune build bin/wcpdetect.exe
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	wcp=_build/default/bin/wcpdetect.exe; \
	for n in 4 8; do \
	  $$wcp generate -n $$n -m 12 --p-pred 0.3 --seed $$n -o $$tmp/t$$n.trace >/dev/null; \
	  $$wcp generate -n $$n -m 12 --p-pred 0.3 --seed $$n -o $$tmp/t$$n.btrace >/dev/null; \
	  $$wcp convert $$tmp/t$$n.trace -o $$tmp/conv$$n.btrace >/dev/null; \
	  cmp -s $$tmp/t$$n.btrace $$tmp/conv$$n.btrace \
	    || { echo "btrace-check: n=$$n streamed file != converted text"; exit 1; }; \
	  $$wcp convert $$tmp/t$$n.btrace -o $$tmp/back$$n.trace >/dev/null; \
	  cmp -s $$tmp/t$$n.trace $$tmp/back$$n.trace \
	    || { echo "btrace-check: n=$$n convert round-trip drifted"; exit 1; }; \
	  echo "btrace-check: n=$$n convert round-trip OK ($$(wc -c < $$tmp/t$$n.btrace) bytes)"; \
	  for algo in token-vc token-dd checker; do \
	    $$wcp detect $$tmp/t$$n.trace -a $$algo | cut -d'|' -f1 > $$tmp/dense.out; \
	    $$wcp detect $$tmp/t$$n.btrace -a $$algo --stream | cut -d'|' -f1 > $$tmp/stream.out; \
	    cmp -s $$tmp/dense.out $$tmp/stream.out \
	      || { echo "btrace-check: $$algo n=$$n streamed cut != dense cut"; exit 1; }; \
	    echo "btrace-check: $$algo n=$$n streamed cut OK ($$(cat $$tmp/stream.out))"; \
	  done; \
	done

# Full-corpus slicing agreement sweep: every detector, dense vs sliced
# (--slice / Detection.options ~slice:true), across sizes x predicate
# densities x seeds x full and partial specs — outcomes must be
# identical with cuts in dense coordinates. A bounded smoke of the same
# sweep always runs inside `make test`; this target unlocks the whole
# corpus.
slice-check:
	WCP_SLICE_CHECK=1 dune exec test/test_slice.exe -- test corpus

examples:
	@for e in quickstart mutual_exclusion database_locks \
	  algorithm_comparison distributed_debugging online_monitoring \
	  channel_monitor boolean_predicates deadlock_detection bank_audit; do \
	  echo "==== $$e ===="; dune exec examples/$$e.exe; echo; done

clean:
	dune clean
