(* wcpdetect — command-line front end for the WCP detection library.

   Subcommands:
     generate    write a random computation to a trace file
     convert     round-trip a trace between text and binary formats
     workload    write a workload computation (mutex/tpl/ring/cs)
     detect      run one detection algorithm on a trace
     trace       run an algorithm and record its causal event trace
     explain     replay a recorded event log into a human narrative
     compare     run every algorithm on a trace and tabulate costs
     lowerbound  play the Theorem 5.1 adversary game *)

open Cmdliner
open Wcp_trace
open Wcp_sim
open Wcp_core

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)
(* ------------------------------------------------------------------ *)

let setup_logs =
  let setup style_renderer level =
    Fmt_tty.setup_std_outputs ?style_renderer ();
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level level
  in
  Term.(const setup $ Fmt_cli.style_renderer () $ Logs_cli.level ())

let seed_arg =
  let doc = "PRNG seed; equal seeds reproduce runs exactly." in
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc)

let trace_arg =
  let doc = "Trace file (wcp-trace v1 format)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc)

let output_arg =
  let doc = "Output trace file; - for stdout." in
  Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let procs_arg =
  let doc =
    "Comma-separated processes the WCP spans (e.g. 0,2,5). Default: all."
  in
  Arg.(value & opt (some string) None & info [ "procs" ] ~docv:"PROCS" ~doc)

let parse_procs s =
  let procs =
    String.split_on_char ',' s
    |> List.filter (fun t -> t <> "")
    |> List.map int_of_string |> Array.of_list
  in
  Array.sort compare procs;
  procs

let spec_of comp = function
  | None -> Spec.all comp
  | Some s -> Spec.make comp (parse_procs s)

let emit_trace out comp =
  match out with
  | "-" -> print_string (Trace_codec.encode comp)
  | path ->
      (* A .btrace suffix selects the binary store; anything else gets
         the human-readable text format. *)
      if Filename.check_suffix path ".btrace" then Btrace.write_file path comp
      else Trace_codec.write_file path comp;
      Printf.printf "wrote %s (%d processes, %d states, %d messages)\n" path
        (Computation.n comp)
        (Computation.total_states comp)
        (Array.length (Computation.messages comp))

(* Both trace formats (autodetected), with parse errors surfaced as a
   clean one-line diagnostic instead of an exception trace. *)
let load_trace path =
  try Trace_codec.read_file path
  with Trace_codec.Parse_error { line; message } ->
    Printf.eprintf "wcpdetect: %s:%d: %s\n" path line message;
    exit 2

(* ------------------------------------------------------------------ *)
(* Fault-plan arguments (shared by detect and chaos)                   *)
(* ------------------------------------------------------------------ *)

let drop_arg =
  let doc = "Per-delivery message loss probability on every link." in
  Arg.(value & opt float 0.0 & info [ "drop" ] ~docv:"P" ~doc)

let dup_arg =
  let doc = "Per-delivery message duplication probability on every link." in
  Arg.(value & opt float 0.0 & info [ "dup" ] ~docv:"P" ~doc)

let fault_seed_arg =
  let doc = "Seed of the fault plan's private PRNG stream." in
  Arg.(value & opt int64 0L & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let crash_arg =
  let doc =
    "Crash window ID@START or ID@START-END (engine process id: application \
     process p is p, its monitor is N+p). Without -END the crash is \
     permanent. Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "crash" ] ~docv:"SPEC" ~doc)

let parse_crash spec =
  let fail () =
    failwith (Printf.sprintf "bad --crash %S (want ID@START or ID@START-END)" spec)
  in
  match String.split_on_char '@' spec with
  | [ id; times ] -> (
      let proc = try int_of_string id with _ -> fail () in
      match String.split_on_char '-' times with
      | [ t ] ->
          let from_t = try float_of_string t with _ -> fail () in
          Fault.window ~kind:Fault.Crash ~proc ~from_t ()
      | [ a; b ] ->
          let from_t = try float_of_string a with _ -> fail () in
          let until_t = try float_of_string b with _ -> fail () in
          Fault.window ~kind:Fault.Crash ~proc ~from_t ~until_t ()
      | _ -> fail ())
  | _ -> fail ()

let restart_arg =
  let doc =
    "Crash-with-recovery window ID@START or ID@START-END (engine process id, \
     as for $(b,--crash); restart a monitor, N+p, to exercise checkpointed \
     recovery). The process's in-memory state is destroyed at START and \
     rebuilt from its last checkpoint at END (default START+8). Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "restart" ] ~docv:"SPEC" ~doc)

let parse_restart spec =
  let fail () =
    failwith
      (Printf.sprintf "bad --restart %S (want ID@START or ID@START-END)" spec)
  in
  match String.split_on_char '@' spec with
  | [ id; times ] -> (
      let proc = try int_of_string id with _ -> fail () in
      match String.split_on_char '-' times with
      | [ t ] ->
          let from_t = try float_of_string t with _ -> fail () in
          Fault.window ~kind:Fault.Restart ~proc ~from_t
            ~until_t:(from_t +. 8.0) ()
      | [ a; b ] ->
          let from_t = try float_of_string a with _ -> fail () in
          let until_t = try float_of_string b with _ -> fail () in
          Fault.window ~kind:Fault.Restart ~proc ~from_t ~until_t ()
      | _ -> fail ())
  | _ -> fail ()

let ckpt_every_arg =
  let doc =
    "Checkpoint each restarting monitor after every K-th handled message \
     (only meaningful with $(b,--restart); 1 = exact state transfer)."
  in
  Arg.(value & opt int 1 & info [ "ckpt-every" ] ~docv:"K" ~doc)

let fault_plan ~drop ~dup ~crashes ~restarts ~fault_seed =
  let windows =
    List.map parse_crash crashes @ List.map parse_restart restarts
  in
  let plan = Fault.uniform ~seed:fault_seed ~drop ~dup ~windows () in
  if Fault.is_none plan then None else Some plan

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let generate_cmd =
  let n =
    Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")
  in
  let sends =
    Arg.(
      value & opt int 10
      & info [ "m"; "sends" ] ~docv:"M" ~doc:"Sends per process.")
  in
  let p_pred =
    Arg.(
      value & opt float 0.5
      & info [ "p-pred" ] ~docv:"P"
          ~doc:"Probability a state's local predicate is true.")
  in
  let p_recv =
    Arg.(
      value & opt float 0.5
      & info [ "p-recv" ] ~docv:"P" ~doc:"Bias toward receiving when possible.")
  in
  let run n sends p_pred p_recv seed out =
    let params = { Generator.n; sends_per_process = sends; p_pred; p_recv } in
    if out <> "-" && Filename.check_suffix out ".btrace" then begin
      (* Direct-to-disk: the events stream straight into the binary
         store, so generation memory is independent of trace length. *)
      let states, messages = Generator.random_btrace ~params ~seed out in
      Printf.printf "wrote %s (%d processes, %d states, %d messages)\n" out n
        states messages
    end
    else emit_trace out (Generator.random ~params ~seed ())
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a random computation trace.")
    Term.(const run $ n $ sends $ p_pred $ p_recv $ seed_arg $ output_arg)

(* ------------------------------------------------------------------ *)
(* convert                                                             *)
(* ------------------------------------------------------------------ *)

let convert_cmd =
  let run trace out = emit_trace out (load_trace trace) in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Convert a trace between the text (wcp-trace v1) and binary \
          (wcp-btrace/1) formats. The input format is autodetected; the \
          output format follows the output file's extension (.btrace is \
          binary, anything else — and stdout — is text).")
    Term.(const run $ trace_arg $ output_arg)

(* ------------------------------------------------------------------ *)
(* workload                                                            *)
(* ------------------------------------------------------------------ *)

let workload_cmd =
  let kind =
    let doc = "Workload: mutex, tpl, ring, cs or philosophers." in
    Arg.(
      required
      & pos 0
          (some
             (enum
                [
                  ("mutex", `Mutex);
                  ("tpl", `Tpl);
                  ("ring", `Ring);
                  ("cs", `Cs);
                  ("philosophers", `Philosophers);
                ]))
          None
      & info [] ~docv:"KIND" ~doc)
  in
  let size =
    Arg.(
      value & opt int 3
      & info [ "size" ] ~docv:"K"
          ~doc:"Clients / readers+writers / ring members.")
  in
  let rounds =
    Arg.(
      value & opt int 4
      & info [ "rounds" ] ~docv:"R" ~doc:"Rounds / requests / laps.")
  in
  let p_bug =
    Arg.(
      value & opt float 0.0
      & info [ "p-bug" ] ~docv:"P" ~doc:"Bug injection probability.")
  in
  let run kind size rounds p_bug seed out =
    let w =
      match kind with
      | `Mutex ->
          Workloads.mutual_exclusion ~clients:size ~rounds ~p_bug ~seed
      | `Tpl ->
          Workloads.two_phase_locking ~readers:(max 1 (size / 2))
            ~writers:(max 1 (size - (size / 2)))
            ~requests:rounds ~p_bug ~seed
      | `Ring -> Workloads.token_ring ~procs:size ~laps:rounds ~p_bug ~seed
      | `Cs -> Workloads.client_server ~clients:size ~requests:rounds ~seed
      | `Philosophers ->
          Workloads.dining_philosophers ~philosophers:size ~meals:rounds
            ~patience:(1.0 -. p_bug) ~seed
    in
    Printf.printf "# workload %s; wcp procs: %s\n" w.Workloads.name
      (String.concat ","
         (List.map string_of_int (Array.to_list w.Workloads.procs)));
    emit_trace out w.Workloads.comp
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Generate a workload computation trace.")
    Term.(const run $ kind $ size $ rounds $ p_bug $ seed_arg $ output_arg)

(* ------------------------------------------------------------------ *)
(* detect                                                              *)
(* ------------------------------------------------------------------ *)

type algo =
  | Vc
  | Multi
  | Dd
  | Dd_par
  | Checker
  | Parallel
  | Oracle_a
  | Cm
  | Strong_a

let algo_arg =
  let doc =
    "Algorithm: token-vc, multi-token, token-dd, token-dd-par, checker, \
     parallel (domain-parallel checker), oracle, cooper-marzullo or strong \
     (Definitely)."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("token-vc", Vc);
             ("multi-token", Multi);
             ("token-dd", Dd);
             ("token-dd-par", Dd_par);
             ("checker", Checker);
             ("parallel", Parallel);
             ("oracle", Oracle_a);
             ("cooper-marzullo", Cm);
             ("strong", Strong_a);
           ])
        Vc
    & info [ "a"; "algorithm" ] ~docv:"ALGO" ~doc)

let groups_arg =
  Arg.(
    value & opt int 2
    & info [ "groups" ] ~docv:"G" ~doc:"Groups for multi-token (§3.5).")

let verbose_arg =
  Arg.(value & flag & info [ "per-process" ] ~doc:"Print per-process stats.")

let slice_arg =
  Arg.(
    value & flag
    & info [ "slice" ]
        ~doc:
          "Detect on the computation slice instead of the dense \
           computation (DESIGN.md §10): only predicate-true states (plus \
           the communication skeleton) are replayed, and the reported cut \
           is mapped back to dense state indices — byte-identical to the \
           dense run's cut. Detection algorithms only (not oracle, \
           cooper-marzullo or strong); with the checker, incompatible with \
           channel predicates.")

let stream_arg =
  Arg.(
    value & flag
    & info [ "stream" ]
        ~doc:
          "Replay the trace through the zero-copy btrace cursor: the \
           slice is built straight off the mmap'd file and the dense \
           computation is never materialised, so peak memory is \
           independent of trace length. Requires a binary trace (see \
           $(b,generate -o x.btrace) and $(b,convert)) and a detection \
           algorithm; detection runs on the slice, as with $(b,--slice).")

(* The DESIGN.md §3 accounting policy the space column follows; printed
   alongside --per-process output so the units are never ambiguous. *)
let space_policy =
  "space = high-water buffered words per process (32-bit words; vc snapshot \
   = width+1 words, dd snapshot = 1+2|deps|; DESIGN.md §3)"

(* --trace support: record the run's causal event log and export it. *)

let trace_out_arg =
  let doc = "Record the run's causal event trace to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_format_enum = [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]

let trace_format_arg =
  let doc =
    "Trace export format: jsonl (one event per line, greppable, feeds \
     $(b,wcpdetect explain)) or chrome (trace_event JSON; open in Perfetto \
     or chrome://tracing)."
  in
  Arg.(
    value
    & opt (enum trace_format_enum) `Jsonl
    & info [ "trace-format" ] ~docv:"FMT" ~doc)

let render_events format events =
  match format with
  | `Jsonl -> Wcp_obs.Export.jsonl events
  | `Chrome -> Wcp_obs.Export.chrome events

let write_trace recorder ~path ~format =
  let events = Wcp_obs.Recorder.events recorder in
  let data = render_events format events in
  if path = "-" then print_string data
  else begin
    Wcp_obs.Export.write_file path data;
    let dropped = Wcp_obs.Recorder.dropped recorder in
    Printf.printf "trace: %d events -> %s%s\n" (Array.length events) path
      (if dropped > 0 then
         Printf.sprintf " (%d oldest overwritten by the ring)" dropped
       else "")
  end

(* --metrics-out support: stream wcp-metrics/1 telemetry from a tap on
   the run's recorder. When no --trace recorder exists, a capacity-1
   ring plus the tap is the bounded-memory streaming configuration —
   the tap sees every emission even though the ring retains none. *)

let metrics_out_arg =
  let doc =
    "Stream live telemetry (wcp-metrics/1 JSONL: per-window rates, hop-latency \
     p50/p95, recovery health gauges, per-phase allocation profile) to \
     $(docv); - for stdout. Feeds $(b,wcpdetect top)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let metrics_every_arg =
  let doc = "Telemetry window width in sim-time units." in
  Arg.(
    value
    & opt float Wcp_obs.Telemetry.default_every
    & info [ "metrics-every" ] ~docv:"T" ~doc)

let setup_metrics ~recorder ~metrics_out ~metrics_every =
  match metrics_out with
  | None -> (recorder, fun () -> ())
  | Some path ->
      let buf = Buffer.create 4096 in
      let tel =
        Wcp_obs.Telemetry.create ~every:metrics_every
          ~sink:(fun l ->
            Buffer.add_string buf l;
            Buffer.add_char buf '\n')
          ()
      in
      let recorder =
        match recorder with
        | Some r -> r
        | None -> Wcp_obs.Recorder.create ~capacity:1 ()
      in
      Wcp_obs.Telemetry.attach tel recorder;
      ( Some recorder,
        fun () ->
          Wcp_obs.Telemetry.close tel;
          if path = "-" then print_string (Buffer.contents buf)
          else begin
            Wcp_obs.Export.write_file path (Buffer.contents buf);
            Printf.printf "metrics: %d lines -> %s\n"
              (Wcp_obs.Telemetry.lines tel)
              path
          end )

let run_algo ?fault ?recorder ?(slice = false) ?(ckpt_every = 1) algo ~groups
    ~seed comp spec =
  let options = Detection.options ~slice () in
  (match (slice, algo) with
  | true, (Oracle_a | Cm | Strong_a) ->
      prerr_endline
        "wcpdetect: --slice needs a detection algorithm (token-vc, \
         multi-token, token-dd, token-dd-par, checker or parallel)";
      exit 2
  | _ -> ());
  (match (fault, algo) with
  | Some _, (Checker | Parallel | Oracle_a | Cm | Strong_a) ->
      prerr_endline
        "wcpdetect: fault injection is only supported for the token algorithms";
      exit 2
  | _ -> ());
  (match (recorder, algo) with
  | Some _, (Oracle_a | Cm | Strong_a) ->
      prerr_endline
        "wcpdetect: tracing needs a detection algorithm (token-vc, \
         multi-token, token-dd, token-dd-par, checker or parallel)";
      exit 2
  | _ -> ());
  match algo with
  | Vc ->
      Some
        (Token_vc.detect ?fault ?recorder ~ckpt_every ~options ~seed comp spec)
  | Multi ->
      Some
        (Token_multi.detect ?fault ?recorder ~ckpt_every ~options
           ~groups:(min groups (Spec.width spec))
           ~seed comp spec)
  | Dd ->
      Some
        (Token_dd.detect ?fault ?recorder ~ckpt_every ~options ~seed comp spec)
  | Dd_par ->
      Some
        (Token_dd.detect ?fault ?recorder ~ckpt_every ~options ~parallel:true
           ~seed comp spec)
  | Checker ->
      Some (Checker_centralized.detect ?recorder ~options ~seed comp spec)
  | Parallel -> Some (Checker_parallel.detect ?recorder ~options ~seed comp spec)
  | Oracle_a ->
      Format.printf "oracle: %a@." Detection.pp_outcome
        (Oracle.first_cut comp spec);
      None
  | Cm ->
      (match Cooper_marzullo.detect_wcp comp spec with
      | Ok (outcome, expl) ->
          Format.printf "cooper-marzullo: %a (explored %d cuts)@."
            Detection.pp_outcome outcome expl.Cooper_marzullo.cuts_explored
      | Error expl ->
          Format.printf "cooper-marzullo: limit after %d cuts@."
            expl.Cooper_marzullo.cuts_explored);
      None
  | Strong_a ->
      (match Strong.definitely comp spec with
      | Some w ->
          Format.printf "strong: Definitely holds; witness intervals:";
          Array.iter
            (fun (iv : Strong.interval) ->
              Format.printf " P%d:[%d,%d]" iv.Strong.proc iv.Strong.first
                iv.Strong.last)
            w;
          Format.printf "@."
      | None -> Format.printf "strong: Definitely does not hold@.");
      None

let detect_cmd =
  let run trace algo groups procs seed verbose slice stream drop dup crashes
      restarts ckpt_every fault_seed trace_out trace_format metrics_out
      metrics_every =
    let fault = fault_plan ~drop ~dup ~crashes ~restarts ~fault_seed in
    let recorder =
      match trace_out with
      | None -> None
      | Some _ -> Some (Wcp_obs.Recorder.create ())
    in
    let recorder, finish_metrics =
      setup_metrics ~recorder ~metrics_out ~metrics_every
    in
    let result =
      if stream then begin
        if slice then begin
          prerr_endline
            "wcpdetect: --stream already detects on the slice; drop --slice";
          exit 2
        end;
        (match algo with
        | Vc | Multi | Dd | Dd_par | Checker | Parallel -> ()
        | Oracle_a | Cm | Strong_a ->
            prerr_endline
              "wcpdetect: --stream needs a detection algorithm (token-vc, \
               multi-token, token-dd, token-dd-par, checker or parallel)";
            exit 2);
        let fail fmt =
          Printf.ksprintf
            (fun msg ->
              Printf.eprintf "wcpdetect: %s: %s\n" trace msg;
              exit 2)
            fmt
        in
        let reader =
          try Btrace.openfile trace with
          | Btrace.Corrupt msg -> fail "btrace: %s" msg
          | Unix.Unix_error (e, _, _) -> fail "%s" (Unix.error_message e)
        in
        let procs_arr =
          match procs with
          | None -> Array.init (Btrace.num_processes reader) Fun.id
          | Some s -> parse_procs s
        in
        (* Direct dependence's cuts span all N processes, so the slice
           must keep non-spec processes (same policy as the detectors'
           own --slice paths). *)
        let keep_rest =
          match algo with Dd | Dd_par -> true | _ -> false
        in
        try
          Some
            (Run_common.with_source ?recorder ~keep_rest
               (Btrace.source reader) ~procs:procs_arr
               ~run:(fun sliced spec' ->
                 match
                   run_algo ?fault ?recorder ~ckpt_every algo ~groups ~seed
                     sliced spec'
                 with
                 | Some r -> r
                 | None -> assert false))
        with
        | Btrace.Corrupt msg -> fail "btrace: %s" msg
        | Computation.Invalid msg -> fail "invalid computation: %s" msg
      end
      else begin
        let comp = load_trace trace in
        let spec = spec_of comp procs in
        run_algo ?fault ?recorder ~slice ~ckpt_every algo ~groups ~seed comp
          spec
      end
    in
    match result with
    | None -> ()
    | Some r ->
        Format.printf "%a@." Detection.pp_result r;
        if verbose then begin
          Format.printf "%a@." Stats.pp r.Detection.stats;
          Format.printf "%s@." space_policy
        end;
        (match (recorder, trace_out) with
        | Some rec_, Some path -> write_trace rec_ ~path ~format:trace_format
        | _ -> ());
        finish_metrics ()
  in
  Cmd.v
    (Cmd.info "detect" ~doc:"Run a detection algorithm on a trace.")
    Term.(
      const (fun () -> run) $ setup_logs $ trace_arg $ algo_arg $ groups_arg
      $ procs_arg $ seed_arg $ verbose_arg $ slice_arg $ stream_arg $ drop_arg
      $ dup_arg $ crash_arg $ restart_arg $ ckpt_every_arg $ fault_seed_arg
      $ trace_out_arg $ trace_format_arg $ metrics_out_arg $ metrics_every_arg)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let out =
    let doc = "Event log destination; - for stdout (suppresses the summary)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let format =
    let doc =
      "jsonl (one event per line; feeds $(b,wcpdetect explain)) or chrome \
       (trace_event JSON; open in Perfetto or chrome://tracing)."
    in
    Arg.(
      value
      & opt (enum trace_format_enum) `Jsonl
      & info [ "f"; "format" ] ~docv:"FMT" ~doc)
  in
  let run trace algo groups procs seed out format drop dup crashes restarts
      ckpt_every fault_seed metrics_out metrics_every =
    let comp = load_trace trace in
    let spec = spec_of comp procs in
    let fault = fault_plan ~drop ~dup ~crashes ~restarts ~fault_seed in
    let recorder = Wcp_obs.Recorder.create () in
    let _, finish_metrics =
      setup_metrics ~recorder:(Some recorder) ~metrics_out ~metrics_every
    in
    match run_algo ?fault ~recorder ~ckpt_every algo ~groups ~seed comp spec with
    | None -> ()
    | Some r ->
        write_trace recorder ~path:out ~format;
        if out <> "-" then begin
          Format.printf "%a@." Detection.pp_result r;
          let metrics, _ =
            Wcp_obs.Metrics.of_events (Wcp_obs.Recorder.events recorder)
          in
          Format.printf "%a" Wcp_obs.Metrics.pp metrics
        end;
        finish_metrics ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a detection algorithm and record its causal event trace (token \
          hops, eliminations, snapshots, polls, probes, retransmits).")
    Term.(
      const (fun () -> run) $ setup_logs $ trace_arg $ algo_arg $ groups_arg
      $ procs_arg $ seed_arg $ out $ format $ drop_arg $ dup_arg $ crash_arg
      $ restart_arg $ ckpt_every_arg $ fault_seed_arg $ metrics_out_arg
      $ metrics_every_arg)

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let explain_cmd =
  let events_arg =
    let doc =
      "JSONL event log produced by $(b,wcpdetect trace) or $(b,--trace)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EVENTS" ~doc)
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ]
          ~doc:
            "Also narrate snapshot arrivals, poll exchanges, watchdog probes \
             and transport retransmits.")
  in
  let run file verbose =
    let data =
      try Wcp_obs.Export.read_file file
      with Sys_error m ->
        prerr_endline ("wcpdetect explain: " ^ m);
        exit 1
    in
    match Wcp_obs.Export.of_jsonl data with
    | Error m ->
        prerr_endline ("wcpdetect explain: " ^ m);
        exit 1
    | Ok events -> Wcp_obs.Explain.narrate ~verbose Format.std_formatter events
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Replay a recorded event log into a narrative: which comparison \
          eliminated which candidate, hop by hop.")
    Term.(const run $ events_arg $ verbose)

(* ------------------------------------------------------------------ *)
(* top                                                                 *)
(* ------------------------------------------------------------------ *)

(* Render a parsed wcp-metrics/1 stream as a terminal dashboard. Plain
   fixed-width text with no escape codes in the table, so the one-shot
   mode is cram-testable; --follow only clears the screen between
   renders. *)
let render_top ppf (stream : Wcp_obs.Telemetry.line list) =
  let open Wcp_obs.Telemetry in
  let windows =
    List.filter_map (function Window w -> Some w | _ -> None) stream
  in
  let phases =
    List.filter_map (function Phase p -> Some p | _ -> None) stream
  in
  List.iter
    (function
      | Meta { algo; n; width; every } ->
          Format.fprintf ppf "run: %s  n=%d  width=%d  window=%g@." algo n
            width every
      | _ -> ())
    stream;
  if windows <> [] then begin
    Format.fprintf ppf
      "%6s %7s %7s %7s %6s %5s %6s %5s %6s %4s %8s %8s@." "window" "t0" "t1"
      "events" "elims" "hops" "polls" "retx" "ckpts" "wd" "hop-p50" "hop-p95";
    List.iter
      (fun w ->
        Format.fprintf ppf
          "%6d %7.1f %7.1f %7d %6d %5d %6d %5d %6d %4d %8.2f %8.2f@." w.idx
          w.t0 w.t1 w.events w.elims w.hops w.polls w.retx w.ckpts
          w.stand_downs w.hop_p50 w.hop_p95)
      windows;
    let last = List.nth windows (List.length windows - 1) in
    Format.fprintf ppf
      "health (cumulative): events=%d elims=%d retx=%d regens=%d ckpts=%d \
       wd-stand-downs=%d@."
      last.cum_events last.cum_elims last.cum_retx last.cum_regens
      last.cum_ckpts last.cum_stand_downs
  end;
  if phases <> [] then begin
    Format.fprintf ppf "phases:@.";
    List.iter
      (fun p ->
        Format.fprintf ppf "  %-9s %7.1f -> %7.1f  events=%-6d alloc=%dB@."
          p.phase p.p_t0 p.p_t1 p.p_events p.alloc_bytes)
      phases
  end;
  List.iter
    (function
      | Total { windows; events; elims; hops; phases } ->
          Format.fprintf ppf
            "totals: %d windows, %d events, %d eliminations, %d hops, %d \
             phases@."
            windows events elims hops phases
      | _ -> ())
    stream

let top_cmd =
  let file_arg =
    let doc =
      "wcp-metrics/1 JSONL stream, as written by $(b,--metrics-out)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"METRICS" ~doc)
  in
  let follow =
    Arg.(
      value & flag
      & info [ "follow" ]
          ~doc:
            "Keep re-reading the stream and re-rendering every $(b,--interval) \
             seconds (live view of a run in progress). Interrupt to quit.")
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECS" ~doc:"Refresh period with $(b,--follow).")
  in
  let run file follow interval =
    let load () =
      match Wcp_obs.Export.read_file file with
      | exception Sys_error m -> Error m
      | data -> Wcp_obs.Telemetry.decode data
    in
    if not follow then (
      match load () with
      | Error m ->
          prerr_endline ("wcpdetect top: " ^ m);
          exit 1
      | Ok lines -> render_top Format.std_formatter lines)
    else
      while true do
        print_string "\027[2J\027[H";
        (match load () with
        | Error m -> Format.printf "wcpdetect top: waiting for stream (%s)@." m
        | Ok lines -> render_top Format.std_formatter lines);
        flush stdout;
        Unix.sleepf interval
      done
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Tail a wcp-metrics/1 telemetry stream (from $(b,--metrics-out)) as \
          a live terminal view: per-window rates, hop-latency percentiles, \
          recovery health gauges and the per-phase profile.")
    Term.(const run $ file_arg $ follow $ interval)

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)
(* ------------------------------------------------------------------ *)

let chaos_cmd =
  let algo =
    let doc = "Algorithm under test: token-vc, multi-token or token-dd." in
    Arg.(
      value
      & opt (enum [ ("token-vc", Vc); ("multi-token", Multi); ("token-dd", Dd) ]) Vc
      & info [ "a"; "algorithm" ] ~docv:"ALGO" ~doc)
  in
  let run trace algo groups procs seed drop dup crashes restarts ckpt_every
      fault_seed trace_out trace_format metrics_out metrics_every =
    let comp = load_trace trace in
    let spec = spec_of comp procs in
    let windows =
      List.map parse_crash crashes @ List.map parse_restart restarts
    in
    let fault = Fault.uniform ~seed:fault_seed ~drop ~dup ~windows () in
    let recorder =
      match trace_out with
      | None -> None
      | Some _ -> Some (Wcp_obs.Recorder.create ())
    in
    let recorder, finish_metrics =
      setup_metrics ~recorder ~metrics_out ~metrics_every
    in
    let name, r, scope =
      match algo with
      | Vc ->
          ( "token-vc",
            Token_vc.detect ~fault ?recorder ~ckpt_every ~seed comp spec,
            `Spec )
      | Multi ->
          ( "multi-token",
            Token_multi.detect ~fault ?recorder ~ckpt_every
              ~groups:(min groups (Spec.width spec))
              ~seed comp spec,
            `Spec )
      | _ ->
          ( "token-dd",
            Token_dd.detect ~fault ?recorder ~ckpt_every ~seed comp spec,
            `Full )
    in
    (match (recorder, trace_out) with
    | Some rec_, Some path -> write_trace rec_ ~path ~format:trace_format
    | _ -> ());
    let out =
      match scope with
      | `Spec -> r.Detection.outcome
      | `Full -> Detection.project_outcome spec r.Detection.outcome
    in
    let oracle =
      match out with
      | Detection.Undetectable_crashed _ -> "degraded"
      | _ ->
          if Detection.outcome_equal out (Oracle.first_cut comp spec) then
            "match"
          else "MISMATCH"
    in
    let st = r.Detection.stats in
    Format.printf
      "chaos %s drop=%.2f dup=%.2f crashes=%d: %a | retransmits=%d \
       dup-suppressed=%d net-drop=%d net-dup=%d crash-drop=%d | oracle: %s@."
      name drop dup (List.length crashes) Detection.pp_outcome out
      (Stats.total_retransmits st)
      (Stats.total_dups_suppressed st)
      (Stats.net_dropped st) (Stats.net_duplicated st) (Stats.crash_dropped st)
      oracle;
    (* Recovery line only when someone restarts: restart-free chaos
       output stays byte-identical to the pre-recovery pins. *)
    if restarts <> [] then
      Format.printf
        "recovery restarts=%d ckpt-every=%d: checkpoints=%d restores=%d \
         replayed=%d wd-stand-downs=%d@."
        (List.length restarts) ckpt_every (Stats.checkpoints st)
        (Stats.restores st) (Stats.replayed st)
        (Stats.wd_stand_downs st);
    finish_metrics ()
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a token algorithm under a deterministic fault plan and compare           its verdict with the fault-free oracle.")
    Term.(
      const run $ trace_arg $ algo $ groups_arg $ procs_arg $ seed_arg
      $ drop_arg $ dup_arg $ crash_arg $ restart_arg $ ckpt_every_arg
      $ fault_seed_arg $ trace_out_arg $ trace_format_arg $ metrics_out_arg
      $ metrics_every_arg)

(* ------------------------------------------------------------------ *)
(* compare                                                             *)
(* ------------------------------------------------------------------ *)

let compare_cmd =
  let run trace procs seed =
    let comp = load_trace trace in
    let spec = spec_of comp procs in
    let oracle = Oracle.first_cut comp spec in
    Format.printf "oracle: %a@.@." Detection.pp_outcome oracle;
    Format.printf "%-14s %8s %10s %9s %9s %9s %6s %6s@." "algorithm" "msgs"
      "bits" "work" "max-work" "max-space" "hops" "time";
    List.iter
      (fun (name, r, scope) ->
        let out =
          match scope with
          | `Spec -> r.Detection.outcome
          | `Full -> Detection.project_outcome spec r.Detection.outcome
        in
        let agree = Detection.outcome_equal out oracle in
        Format.printf "%-14s %8d %10d %9d %9d %9d %6d %6.1f%s@." name
          (Stats.total_sent r.Detection.stats)
          (Stats.total_bits r.Detection.stats)
          (Stats.total_work r.Detection.stats)
          (Stats.max_work r.Detection.stats)
          (Stats.max_space r.Detection.stats)
          r.Detection.extras.Detection.token_hops r.Detection.sim_time
          (if agree then "" else "  << DISAGREES"))
      [
        ("checker", Checker_centralized.detect ~seed comp spec, `Spec);
        ("parallel", Checker_parallel.detect ~seed comp spec, `Spec);
        ("token-vc", Token_vc.detect ~seed comp spec, `Spec);
        ( "multi-token",
          Token_multi.detect ~groups:(min 2 (Spec.width spec)) ~seed comp spec,
          `Spec );
        ("token-dd", Token_dd.detect ~seed comp spec, `Full);
        ("token-dd-par", Token_dd.detect ~parallel:true ~seed comp spec, `Full);
      ]
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run every algorithm on a trace and tabulate.")
    Term.(const run $ trace_arg $ procs_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* render                                                              *)
(* ------------------------------------------------------------------ *)

let render_cmd =
  let format =
    Arg.(
      value
      & opt (enum [ ("ascii", `Ascii); ("dot", `Dot) ]) `Ascii
      & info [ "f"; "format" ] ~docv:"FMT" ~doc:"ascii or dot.")
  in
  let mark =
    Arg.(
      value & flag
      & info [ "mark-first-cut" ]
          ~doc:"Highlight the oracle's first satisfying cut.")
  in
  let run trace format procs mark =
    let comp = load_trace trace in
    let cut =
      if mark then
        match Oracle.first_cut comp (spec_of comp procs) with
        | Detection.Detected cut -> Some cut
        | Detection.No_detection | Detection.Undetectable_crashed _ -> None
      else None
    in
    match format with
    | `Ascii -> print_string (Render.ascii ?cut comp)
    | `Dot -> print_string (Render.dot ?cut comp)
  in
  Cmd.v
    (Cmd.info "render" ~doc:"Render a trace as text or Graphviz.")
    Term.(const run $ trace_arg $ format $ procs_arg $ mark)

(* ------------------------------------------------------------------ *)
(* gcp                                                                 *)
(* ------------------------------------------------------------------ *)

let parse_channel ~line spec =
  (* empty:SRC-DST | atleastK:SRC-DST | atmostK:SRC-DST *)
  match String.split_on_char ':' spec with
  | [ kind; pair ] -> (
      let src, dst =
        match String.split_on_char '-' pair with
        | [ s; d ] -> (int_of_string s, int_of_string d)
        | _ -> failwith (Printf.sprintf "bad channel endpoints %S" line)
      in
      if kind = "empty" then Gcp.empty ~src ~dst
      else if String.length kind > 7 && String.sub kind 0 7 = "atleast" then
        Gcp.at_least (int_of_string (String.sub kind 7 (String.length kind - 7))) ~src ~dst
      else if String.length kind > 6 && String.sub kind 0 6 = "atmost" then
        Gcp.at_most (int_of_string (String.sub kind 6 (String.length kind - 6))) ~src ~dst
      else failwith (Printf.sprintf "unknown channel predicate %S" kind))
  | _ -> failwith (Printf.sprintf "bad channel spec %S (want kind:src-dst)" line)

let gcp_cmd =
  let channels =
    Arg.(
      value & opt_all string []
      & info [ "c"; "channel" ] ~docv:"SPEC"
          ~doc:
            "Channel predicate, e.g. empty:0-1, atleast2:0-1, atmost3:2-0.              Repeatable.")
  in
  let online =
    Arg.(
      value & flag
      & info [ "online" ]
          ~doc:"Run the online centralized checker instead of the offline                 algorithm.")
  in
  let run trace channel_specs procs online seed =
    let comp = load_trace trace in
    let spec = spec_of comp procs in
    let channels = List.map (fun s -> parse_channel ~line:s s) channel_specs in
    if online then
      let r = Checker_gcp.detect ~seed ~channels comp spec in
      Format.printf "%a@." Detection.pp_result r
    else
      Format.printf "%a@." Detection.pp_outcome (Gcp.detect comp spec ~channels)
  in
  Cmd.v
    (Cmd.info "gcp" ~doc:"Detect a generalized conjunctive predicate.")
    Term.(const run $ trace_arg $ channels $ procs_arg $ online $ seed_arg)

(* ------------------------------------------------------------------ *)
(* live                                                                *)
(* ------------------------------------------------------------------ *)

let live_cmd =
  let mode =
    Arg.(
      value
      & opt (enum [ ("vc", Instrument.Vc); ("dd", Instrument.Dd) ]) Instrument.Vc
      & info [ "mode" ] ~docv:"MODE" ~doc:"vc or dd monitoring mode.")
  in
  let p_bug =
    Arg.(
      value & opt float 0.4
      & info [ "p-bug" ] ~docv:"P" ~doc:"Coordinator race probability.")
  in
  let clients =
    Arg.(value & opt int 3 & info [ "clients" ] ~docv:"K" ~doc:"Clients.")
  in
  let rounds =
    Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"R" ~doc:"CS entries each.")
  in
  let run mode p_bug clients rounds seed =
    let r = Live_mutex.run ~p_bug ~mode ~clients ~rounds ~seed () in
    let spec = Spec.make r.Live_mutex.recorded r.Live_mutex.wcp_procs in
    let online =
      match mode with
      | Instrument.Vc -> r.Live_mutex.online
      | Instrument.Dd -> Detection.project_outcome spec r.Live_mutex.online
    in
    (match (online, r.Live_mutex.detection_time) with
    | Detection.Detected cut, Some t ->
        Format.printf "online verdict: VIOLATION at %a (sim time %.0f of %.0f)@."
          Cut.pp cut t r.Live_mutex.sim_time
    | Detection.Detected cut, None ->
        Format.printf "online verdict: VIOLATION at %a@." Cut.pp cut
    | Detection.No_detection, _ ->
        Format.printf "online verdict: clean run (%.0f time units)@."
          r.Live_mutex.sim_time
    | (Detection.Undetectable_crashed _ as o), _ ->
        Format.printf "online verdict: %a@." Detection.pp_outcome o);
    let expected = Oracle.first_cut r.Live_mutex.recorded spec in
    Format.printf "offline oracle on the recording: %a (%s)@."
      Detection.pp_outcome expected
      (if Detection.outcome_equal online expected then "matches"
       else "MISMATCH")
  in
  Cmd.v
    (Cmd.info "live"
       ~doc:"Run a live instrumented mutual-exclusion system under online              monitoring (Fig. 1).")
    Term.(const run $ mode $ p_bug $ clients $ rounds $ seed_arg)

(* ------------------------------------------------------------------ *)
(* lowerbound                                                          *)
(* ------------------------------------------------------------------ *)

let lowerbound_cmd =
  let n = Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Queues.") in
  let m =
    Arg.(value & opt int 16 & info [ "m" ] ~docv:"M" ~doc:"States per queue.")
  in
  let run n m =
    let world, stats = Wcp_lowerbound.Adversary.make ~n ~m in
    let answer, trace = Wcp_lowerbound.Detector.run world in
    (match answer with
    | Wcp_lowerbound.Detector.Antichain _ ->
        print_endline "BUG: adversary conceded an antichain"
    | Wcp_lowerbound.Detector.No_antichain ->
        Printf.printf "no antichain (as the adversary guarantees)\n");
    Printf.printf
      "n=%d m=%d: %d rounds, %d deletions (forced lower bound nm - n = %d)\n" n
      m trace.Wcp_lowerbound.Detector.rounds
      trace.Wcp_lowerbound.Detector.deletions
      ((n * m) - n);
    Printf.printf "adversary answered %d comparisons\n"
      stats.Wcp_lowerbound.Adversary.comparisons_answered
  in
  Cmd.v
    (Cmd.info "lowerbound" ~doc:"Play the Theorem 5.1 adversary game.")
    Term.(const run $ n $ m)

let () =
  let info =
    Cmd.info "wcpdetect" ~version:"1.0.0"
      ~doc:"Distributed detection of weak conjunctive predicates (Garg & Chase, ICDCS 1995)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd;
            convert_cmd;
            workload_cmd;
            detect_cmd;
            trace_cmd;
            explain_cmd;
            top_cmd;
            chaos_cmd;
            compare_cmd;
            render_cmd;
            gcp_cmd;
            live_cmd;
            lowerbound_cmd;
          ]))
