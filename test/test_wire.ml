(* The wire-efficiency layer (Wcp_core.Wire): hybrid snapshot codec,
   interval gating, token meter and app-tag plan. The properties here
   pin the bits-accounting model: what the encoder charges is what a
   decoder replaying the same channel reconstructs, encoded forms never
   exceed their dense fallbacks, and gating thins candidate streams
   without ever touching the first candidate of an interval. *)

open Wcp_trace
open Wcp_core

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let random_comp ~n ~m ~seed =
  Generator.random
    ~params:{ Generator.n; sends_per_process = m; p_pred = 0.3; p_recv = 0.5 }
    ~seed ()

let gen_comp =
  QCheck2.Gen.(
    map
      (fun (n, m, seed) ->
        random_comp ~n:(2 + n) ~m:(1 + m) ~seed:(Int64.of_int seed))
      (triple (int_range 0 10) (int_range 0 12) (int_range 1 10_000)))

(* --- Snapshot codec ---------------------------------------------- *)

let prop_codec_roundtrip =
  qtest "encoded stream decodes back to the exact gated candidates"
    gen_comp (fun comp ->
      let spec = Spec.all comp in
      let width = Spec.width spec in
      Array.for_all
        (fun p ->
          let dec = Wire.snap_decoder ~width in
          let decoded =
            List.map
              (fun (_, msg) -> Wire.decode_snap dec msg)
              (Wire.encoded_stream ~delta:true comp spec ~proc:p)
          in
          decoded = Snapshot.vc_stream comp spec ~proc:p)
        (Spec.procs spec))

let prop_encoded_never_larger =
  (* The hybrid choice: every shipped snapshot is charged at most the
     dense size, and the charge is exactly [Messages.bits] of what is
     on the wire (encoded size == decoded-replay size, since the
     decoder sees the same message). *)
  qtest "hybrid snapshots never exceed the dense charge" gen_comp
    (fun comp ->
      let spec = Spec.all comp in
      let width = Spec.width spec in
      let dense = 32 * (width + 1) in
      Array.for_all
        (fun p ->
          List.for_all
            (fun (_, msg) -> Messages.bits ~spec_width:width msg <= dense)
            (Wire.encoded_stream ~delta:true comp spec ~proc:p))
        (Spec.procs spec))

(* --- Interval gating --------------------------------------------- *)

let prop_gating_keeps_first =
  qtest "gating never drops the first interval candidate" gen_comp
    (fun comp ->
      let spec = Spec.all comp in
      Array.for_all
        (fun p ->
          let all = Snapshot.vc_stream ~gated:false comp spec ~proc:p in
          let gated = Snapshot.vc_stream ~gated:true comp spec ~proc:p in
          match (all, gated) with
          | [], [] -> true
          | first :: _, kept :: _ -> first = kept
          | _ -> false)
        (Spec.procs spec))

let prop_gating_send_separated =
  (* The dominance argument needs a send of the process between any two
     shipped candidates; and gating must be a pure thinning (every
     shipped candidate was a candidate). *)
  qtest "consecutive shipped candidates are separated by a send"
    gen_comp (fun comp ->
      let spec = Spec.all comp in
      Array.for_all
        (fun p ->
          let all = Snapshot.vc_stream ~gated:false comp spec ~proc:p in
          let gated = Snapshot.vc_stream ~gated:true comp spec ~proc:p in
          List.for_all (fun (s : Snapshot.vc) -> List.mem s all) gated
          &&
          let rec ok = function
            | (a : Snapshot.vc) :: (b : Snapshot.vc) :: rest ->
                Computation.sends_in comp ~proc:p ~lo:a.Snapshot.state
                  ~hi:(b.Snapshot.state - 1)
                && ok (b :: rest)
            | _ -> true
          in
          ok gated)
        (Spec.procs spec))

(* --- Token meter -------------------------------------------------- *)

let test_token_meter () =
  let width = 8 in
  let meter = Wire.token_meter ~width in
  let dense = Wire.dense_token_bits ~width in
  let g = [| 1; 2; 3; 4; 5; 6; 7; 8 |] in
  let b1 = Wire.token_bits meter ~src:0 ~dst:1 g in
  Alcotest.(check bool) "first hop at most dense" true (b1 <= dense);
  (* Same vector on the same edge again: nothing changed, so only the
     header word and the packed color vector are charged. *)
  let b2 = Wire.token_bits meter ~src:0 ~dst:1 g in
  Alcotest.(check int) "unchanged vector is header + colors"
    (32 * (1 + Wire.packed_color_words ~width))
    b2;
  (* A different edge keeps its own base, so the same vector is a full
     delta there. *)
  let b3 = Wire.token_bits meter ~src:1 ~dst:2 g in
  Alcotest.(check bool) "fresh edge pays the full delta" true (b3 > b2)

(* --- Application-tag plan ----------------------------------------- *)

let prop_app_plan_bounded =
  qtest "app-tag plan entries sit between header-only and dense"
    gen_comp (fun comp ->
      let spec = Spec.all comp in
      let width = Spec.width spec in
      let plan = Wire.app_tag_plan comp spec in
      let lookup = Wire.replay_app_bits comp spec in
      let ok = ref (Array.length plan = Array.length (Computation.messages comp)) in
      Array.iteri
        (fun id bits ->
          if bits < 32 * 2 || bits > 32 * (1 + width) then ok := false;
          if lookup id <> bits then ok := false)
        plan;
      !ok)

(* --- End-to-end ablation ------------------------------------------ *)

let test_delta_ablation () =
  (* ?delta changes no message counts and no RNG draws: outcome, hops
     and snapshot counts are identical across both settings; only the
     bits drop. This is the unit-size version of bench E16. *)
  List.iter
    (fun seed ->
      let comp = random_comp ~n:6 ~m:10 ~seed in
      let spec = Spec.all comp in
      let a =
        Token_vc.detect ~options:(Detection.options ~delta:true ()) ~seed comp
          spec
      in
      let b =
        Token_vc.detect ~options:(Detection.options ~delta:false ()) ~seed comp
          spec
      in
      Alcotest.(check bool)
        "same outcome" true
        (Detection.outcome_equal a.outcome b.outcome);
      Alcotest.(check int) "same hops" b.extras.Detection.token_hops
        a.extras.Detection.token_hops;
      Alcotest.(check int) "same snapshots" b.extras.Detection.snapshots
        a.extras.Detection.snapshots;
      Alcotest.(check bool) "delta bits never larger" true
        (Wcp_sim.Stats.total_bits a.stats <= Wcp_sim.Stats.total_bits b.stats))
    [ 1L; 2L; 3L ]

let () =
  Alcotest.run "wire"
    [
      ( "codec",
        [
          prop_codec_roundtrip;
          prop_encoded_never_larger;
          Alcotest.test_case "token meter" `Quick test_token_meter;
          prop_app_plan_bounded;
        ] );
      ( "gating",
        [
          prop_gating_keeps_first;
          prop_gating_send_separated;
        ] );
      ( "ablation",
        [ Alcotest.test_case "delta on/off" `Quick test_delta_ablation ] );
    ]
