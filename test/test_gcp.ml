open Wcp_trace
open Wcp_core

let qtest = Helpers.qtest

(* P0 sends two messages to P1; P1 receives them late. Useful channel
   shapes at various cuts. *)
let two_message_comp () =
  let b = Builder.create ~n:2 in
  let m1 = Builder.send b ~src:0 ~dst:1 in
  let m2 = Builder.send b ~src:0 ~dst:1 in
  Builder.recv b ~dst:1 m1;
  Builder.recv b ~dst:1 m2;
  (* every state a candidate *)
  let comp = Builder.finish b in
  comp

let all_true comp =
  (* Recode with all predicates true so every state is a candidate. *)
  let ops = Array.init (Computation.n comp) (fun p -> Computation.ops comp p) in
  let pred =
    Array.init (Computation.n comp) (fun p ->
        Array.make (Computation.num_states comp p) true)
  in
  Computation.of_raw ~ops ~pred

let test_in_flight () =
  let comp = all_true (two_message_comp ()) in
  let flight s t =
    List.length
      (Gcp.in_flight comp ~src:0 ~dst:1
         ~cut:(Cut.over_all comp [| s; t |]))
  in
  Alcotest.(check int) "nothing sent yet" 0 (flight 1 1);
  Alcotest.(check int) "one sent, none received" 1 (flight 2 1);
  Alcotest.(check int) "two sent, none received" 2 (flight 3 1);
  Alcotest.(check int) "two sent, one received" 1 (flight 3 2);
  Alcotest.(check int) "drained" 0 (flight 3 3)

let test_empty_channel_detection () =
  let comp = all_true (two_message_comp ()) in
  let spec = Spec.all comp in
  (* Without channel predicates the first cut is the initial one. *)
  (match Gcp.detect comp spec ~channels:[] with
  | Detection.Detected cut ->
      Alcotest.(check string) "degenerates to the oracle" "{0:1 1:1}"
        (Cut.to_string cut)
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Alcotest.fail "expected detection");
  (* Requiring the channel empty forbids cuts with unreceived sends:
     {0:1 1:1} (nothing sent) is still fine. *)
  (match Gcp.detect comp spec ~channels:[ Gcp.empty ~src:0 ~dst:1 ] with
  | Detection.Detected cut ->
      Alcotest.(check string) "initial cut has empty channel" "{0:1 1:1}"
        (Cut.to_string cut)
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Alcotest.fail "expected detection");
  (* Requiring >= 2 in flight forces {0:3 1:1}. *)
  match Gcp.detect comp spec ~channels:[ Gcp.at_least 2 ~src:0 ~dst:1 ] with
  | Detection.Detected cut ->
      Alcotest.(check string) "first cut with 2 in flight" "{0:3 1:1}"
        (Cut.to_string cut)
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Alcotest.fail "expected detection"

let test_empty_with_local_preds () =
  (* Local predicate true only late on P0; channel must be empty: the
     receiver is forced forward past both receives. *)
  let b = Builder.create ~n:2 in
  let m1 = Builder.send b ~src:0 ~dst:1 in
  let m2 = Builder.send b ~src:0 ~dst:1 in
  Builder.set_pred b ~proc:0 true;
  Builder.recv b ~dst:1 m1;
  Builder.recv b ~dst:1 m2;
  Builder.set_pred b ~proc:1 true;
  let comp = Builder.finish b in
  let spec = Spec.all comp in
  match Gcp.detect comp spec ~channels:[ Gcp.empty ~src:0 ~dst:1 ] with
  | Detection.Detected cut ->
      Alcotest.(check string) "receiver advanced to drain" "{0:3 1:3}"
        (Cut.to_string cut);
      Alcotest.(check bool) "channel verified empty" true
        (Gcp.holds_at comp (Gcp.empty ~src:0 ~dst:1) ~cut)
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Alcotest.fail "expected detection"

let test_unsatisfiable_channel () =
  let comp = all_true (two_message_comp ()) in
  let spec = Spec.all comp in
  match Gcp.detect comp spec ~channels:[ Gcp.at_least 3 ~src:0 ~dst:1 ] with
  | Detection.No_detection | Detection.Undetectable_crashed _ -> ()
  | Detection.Detected _ -> Alcotest.fail "only 2 messages exist on channel"

let test_endpoint_validation () =
  let comp = all_true (two_message_comp ()) in
  match
    Gcp.detect comp (Spec.all comp) ~channels:[ Gcp.empty ~src:0 ~dst:9 ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad endpoint should be rejected"

let gen_channels comp rng =
  let n = Computation.n comp in
  let mk () =
    let src = Wcp_util.Rng.int rng n in
    let dst = (src + 1 + Wcp_util.Rng.int rng (n - 1)) mod n in
    match Wcp_util.Rng.int rng 3 with
    | 0 -> Gcp.empty ~src ~dst
    | 1 -> Gcp.at_most (Wcp_util.Rng.int rng 3) ~src ~dst
    | _ -> Gcp.at_least (1 + Wcp_util.Rng.int rng 2) ~src ~dst
  in
  List.init (1 + Wcp_util.Rng.int rng 3) (fun _ -> mk ())

let prop_gcp_equals_brute =
  qtest ~count:200 "GCP advance-cut = brute force"
    QCheck2.Gen.(
      pair (Helpers.gen_comp_params ~max_n:3 ~max_sends:4) (int_range 0 10_000))
    (fun (params, cseed) ->
      let comp = Helpers.build_comp params in
      let rng = Wcp_util.Rng.create (Int64.of_int cseed) in
      let channels = gen_channels comp rng in
      let spec = Spec.all comp in
      Detection.outcome_equal
        (Gcp.detect comp spec ~channels)
        (Gcp.detect_brute comp spec ~channels))

let prop_gcp_detected_cut_valid =
  qtest ~count:150 "detected GCP cut is consistent and satisfies everything"
    QCheck2.Gen.(
      pair (Helpers.gen_comp_params ~max_n:4 ~max_sends:6) (int_range 0 10_000))
    (fun (params, cseed) ->
      let comp = Helpers.build_comp params in
      let rng = Wcp_util.Rng.create (Int64.of_int cseed) in
      let channels = gen_channels comp rng in
      let spec = Spec.all comp in
      match Gcp.detect comp spec ~channels with
      | Detection.No_detection | Detection.Undetectable_crashed _ -> true
      | Detection.Detected cut ->
          Cut.consistent comp cut
          && Cut.satisfies comp cut
          && List.for_all (fun cp -> Gcp.holds_at comp cp ~cut) channels)

let prop_gcp_without_channels_is_oracle =
  qtest ~count:150 "GCP with no channels = WCP oracle (over all N)"
    Helpers.gen_small_comp (fun comp ->
      let spec = Spec.all comp in
      Detection.outcome_equal
        (Gcp.detect comp spec ~channels:[])
        (Oracle.first_cut comp spec))

let test_custom_predicate () =
  (* "exactly one in flight", advancing the receiver when violated:
     linear because excess can only be drained by the receiver...
     note: with 0 in flight it is NOT receiver-fixable, so we phrase it
     as at_most 1 ∧ at_least 1 through two built-ins instead, and the
     custom predicate only for the at-most half. *)
  let comp = all_true (two_message_comp ()) in
  let spec = Spec.all comp in
  let channels =
    [ Gcp.at_most 1 ~src:0 ~dst:1; Gcp.at_least 1 ~src:0 ~dst:1 ]
  in
  match Gcp.detect comp spec ~channels with
  | Detection.Detected cut ->
      Alcotest.(check string) "exactly one in flight" "{0:2 1:1}"
        (Cut.to_string cut);
      Alcotest.check Helpers.outcome "brute agrees"
        (Gcp.detect_brute comp spec ~channels)
        (Detection.Detected cut)
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Alcotest.fail "expected detection"

(* ------------------------------------------------------------------ *)
(* Online centralized GCP checker ([6])                                *)
(* ------------------------------------------------------------------ *)

let prop_online_checker_equals_offline =
  qtest ~count:200 "online GCP checker = offline Gcp.detect"
    QCheck2.Gen.(
      tup3 (Helpers.gen_comp_params ~max_n:4 ~max_sends:6) (int_range 0 10_000)
        (int_range 0 1000))
    (fun (params, cseed, dseed) ->
      let comp = Helpers.build_comp params in
      let rng = Wcp_util.Rng.create (Int64.of_int cseed) in
      let channels = gen_channels comp rng in
      let spec = Spec.all comp in
      let offline = Gcp.detect comp spec ~channels in
      let online =
        Checker_gcp.detect ~seed:(Int64.of_int dseed) ~channels comp spec
      in
      Detection.outcome_equal online.Detection.outcome offline)

let prop_online_checker_no_channels_is_wcp =
  qtest ~count:100 "online GCP checker without channels = WCP oracle"
    Helpers.gen_small_comp (fun comp ->
      let spec = Spec.all comp in
      let online = Checker_gcp.detect ~seed:3L ~channels:[] comp spec in
      Detection.outcome_equal online.Detection.outcome
        (Detection.project_outcome spec
           (Oracle.first_cut comp (Spec.all comp))
        |> fun _ -> Gcp.detect comp spec ~channels:[]))

let test_online_rejects_non_counting () =
  let comp = all_true (two_message_comp ()) in
  let exotic =
    Gcp.channel_predicate ~name:"exotic" ~src:0 ~dst:1
      ~holds:(fun msgs ->
        List.exists (fun (m : Computation.message) -> m.Computation.id = 0) msgs)
      ~on_false:`Advance_dst
  in
  match
    Checker_gcp.detect ~seed:1L ~channels:[ exotic ] comp (Spec.all comp)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-counting predicate should be rejected online"

let test_online_example () =
  let comp = all_true (two_message_comp ()) in
  let spec = Spec.all comp in
  let channels = [ Gcp.at_least 2 ~src:0 ~dst:1 ] in
  let r = Checker_gcp.detect ~seed:5L ~channels comp spec in
  match r.Detection.outcome with
  | Detection.Detected cut ->
      Alcotest.(check string) "two in flight online" "{0:3 1:1}"
        (Cut.to_string cut)
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Alcotest.fail "expected online detection"

let test_online_determinism () =
  let comp = Helpers.build_comp (4, 6, 50, 50, 3) in
  let spec = Spec.all comp in
  let channels = [ Gcp.empty ~src:0 ~dst:1; Gcp.at_most 1 ~src:1 ~dst:2 ] in
  let a = Checker_gcp.detect ~seed:9L ~channels comp spec in
  let b = Checker_gcp.detect ~seed:9L ~channels comp spec in
  Alcotest.check Helpers.outcome "same outcome" a.Detection.outcome
    b.Detection.outcome;
  Alcotest.(check int) "same events" a.Detection.events b.Detection.events

let () =
  Alcotest.run "gcp"
    [
      ( "channel-state",
        [
          Alcotest.test_case "in_flight" `Quick test_in_flight;
          Alcotest.test_case "endpoint validation" `Quick
            test_endpoint_validation;
        ] );
      ( "detection",
        [
          Alcotest.test_case "empty/at-least shapes" `Quick
            test_empty_channel_detection;
          Alcotest.test_case "with local predicates" `Quick
            test_empty_with_local_preds;
          Alcotest.test_case "unsatisfiable" `Quick test_unsatisfiable_channel;
          Alcotest.test_case "conjunction of channel predicates" `Quick
            test_custom_predicate;
        ] );
      ( "properties",
        [
          prop_gcp_equals_brute;
          prop_gcp_detected_cut_valid;
          prop_gcp_without_channels_is_oracle;
        ] );
      ( "online-checker",
        [
          prop_online_checker_equals_offline;
          prop_online_checker_no_channels_is_wcp;
          Alcotest.test_case "rejects non-counting" `Quick
            test_online_rejects_non_counting;
          Alcotest.test_case "example" `Quick test_online_example;
          Alcotest.test_case "determinism" `Quick test_online_determinism;
        ] );
    ]
