open Wcp_trace
open Wcp_core

let qtest = Helpers.qtest

(* ------------------------------------------------------------------ *)
(* Instrument unit mechanics (no engine interaction needed for the
   clock discipline itself — we use a tiny engine to obtain a ctx).    *)
(* ------------------------------------------------------------------ *)

(* Run [f] inside a one-shot engine event so it has a valid ctx. *)
let with_ctx n f =
  let engine = Run_common.make_engine_n ~seed:1L ~n () in
  (* Swallow anything the instruments emit toward monitors. *)
  for p = 0 to (2 * n) do
    Wcp_sim.Engine.set_handler engine p (fun _ ~src:_ _ -> ())
  done;
  Wcp_sim.Engine.schedule_initial engine ~proc:0 ~at:0.0 (fun ctx -> f ctx);
  Wcp_sim.Engine.run engine

let test_vc_clock_discipline () =
  with_ctx 3 (fun ctx ->
      let wcp_procs = [| 0; 2 |] in
      let a = Instrument.create ~mode:Instrument.Vc ~n_app:3 ~wcp_procs ~proc:0 () in
      let c = Instrument.create ~mode:Instrument.Vc ~n_app:3 ~wcp_procs ~proc:2 () in
      let relay =
        Instrument.create ~mode:Instrument.Vc ~n_app:3 ~wcp_procs ~proc:1 ()
      in
      Alcotest.(check int) "initial state" 1 (Instrument.state_index a);
      (* a -> relay -> c: the projected clock must flow through the
         non-spec relay. *)
      let t1 = Instrument.on_send a ctx in
      Alcotest.(check int) "a advanced" 2 (Instrument.state_index a);
      Instrument.on_receive relay ctx ~src:0 t1;
      let t2 = Instrument.on_send relay ctx in
      Instrument.on_receive c ctx ~src:1 t2;
      (* c's next send tag must show a's first state. *)
      match Instrument.on_send c ctx with
      | Messages.Vc_tag v ->
          Alcotest.(check (array int)) "projected clock at c" [| 1; 2 |] v
      | Messages.Dd_tag _ -> Alcotest.fail "expected a vc tag")

let test_dd_tags () =
  with_ctx 2 (fun ctx ->
      let wcp_procs = [| 0 |] in
      let a = Instrument.create ~mode:Instrument.Dd ~n_app:2 ~wcp_procs ~proc:0 () in
      let b = Instrument.create ~mode:Instrument.Dd ~n_app:2 ~wcp_procs ~proc:1 () in
      let t1 = Instrument.on_send a ctx in
      (match t1 with
      | Messages.Dd_tag { src = 0; clock = 1 } -> ()
      | _ -> Alcotest.fail "dd tag should carry (0,1)");
      Instrument.on_receive b ctx ~src:0 t1;
      let t2 = Instrument.on_send a ctx in
      match t2 with
      | Messages.Dd_tag { src = 0; clock = 2 } -> ()
      | _ -> Alcotest.fail "dd tag should carry (0,2)")

let test_tag_mismatches () =
  with_ctx 2 (fun ctx ->
      let wcp = [| 0 |] in
      let vc = Instrument.create ~mode:Instrument.Vc ~n_app:2 ~wcp_procs:wcp ~proc:0 () in
      let dd = Instrument.create ~mode:Instrument.Dd ~n_app:2 ~wcp_procs:wcp ~proc:1 () in
      (match
         Instrument.on_receive vc ctx ~src:1
           (Messages.Dd_tag { src = 1; clock = 1 })
       with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "mode mismatch should fail");
      (match Instrument.on_receive dd ctx ~src:0 (Messages.Vc_tag [| 1 |]) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "mode mismatch should fail");
      match
        Instrument.on_receive dd ctx ~src:0
          (Messages.Dd_tag { src = 1; clock = 1 })
      with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "tag/sender mismatch should fail")

let test_create_validation () =
  let bad f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected rejection"
  in
  bad (fun () ->
      Instrument.create ~mode:Instrument.Vc ~n_app:2 ~wcp_procs:[||] ~proc:0 ());
  bad (fun () ->
      Instrument.create ~mode:Instrument.Vc ~n_app:2 ~wcp_procs:[| 1; 0 |]
        ~proc:0 ());
  bad (fun () ->
      Instrument.create ~mode:Instrument.Vc ~n_app:2 ~wcp_procs:[| 0 |] ~proc:7 ())

(* ------------------------------------------------------------------ *)
(* End-to-end live monitoring (Fig. 1): online verdict vs the oracle
   on the simultaneously recorded computation.                         *)
(* ------------------------------------------------------------------ *)

let verify_live ~mode ~p_bug ~seed =
  let r = Live_mutex.run ~p_bug ~mode ~clients:3 ~rounds:3 ~seed () in
  let spec = Spec.make r.Live_mutex.recorded r.Live_mutex.wcp_procs in
  let expected = Oracle.first_cut r.Live_mutex.recorded spec in
  let online =
    match mode with
    | Instrument.Vc -> r.Live_mutex.online
    | Instrument.Dd -> Detection.project_outcome spec r.Live_mutex.online
  in
  if not (Detection.outcome_equal online expected) then
    Alcotest.failf "live %s seed=%Ld: online %a vs oracle %a"
      (match mode with Instrument.Vc -> "vc" | Instrument.Dd -> "dd")
      seed Detection.pp_outcome online Detection.pp_outcome expected;
  expected

let test_live_vc_correct_runs () =
  for s = 1 to 15 do
    let o = verify_live ~mode:Instrument.Vc ~p_bug:0.0 ~seed:(Int64.of_int s) in
    if o <> Detection.No_detection then
      Alcotest.fail "correct mutex must never trip the monitor"
  done

let test_live_vc_buggy_runs () =
  let detected = ref 0 in
  for s = 1 to 15 do
    match verify_live ~mode:Instrument.Vc ~p_bug:0.5 ~seed:(Int64.of_int s) with
    | Detection.Detected _ -> incr detected
    | Detection.No_detection | Detection.Undetectable_crashed _ -> ()
  done;
  if !detected = 0 then Alcotest.fail "no buggy run tripped the monitor"

let test_live_dd_correct_runs () =
  for s = 21 to 35 do
    let o = verify_live ~mode:Instrument.Dd ~p_bug:0.0 ~seed:(Int64.of_int s) in
    if o <> Detection.No_detection then
      Alcotest.fail "correct mutex must never trip the monitor"
  done

let test_live_dd_buggy_runs () =
  let detected = ref 0 in
  for s = 21 to 35 do
    match verify_live ~mode:Instrument.Dd ~p_bug:0.5 ~seed:(Int64.of_int s) with
    | Detection.Detected _ -> incr detected
    | Detection.No_detection | Detection.Undetectable_crashed _ -> ()
  done;
  if !detected = 0 then Alcotest.fail "no buggy run tripped the monitor"

let test_live_detection_time_recorded () =
  (* A detectable run must carry a detection timestamp no later than
     the end of the run. *)
  let rec hunt s =
    if s > 40 then Alcotest.fail "no detectable seed found"
    else
      let r =
        Live_mutex.run ~p_bug:0.6 ~mode:Instrument.Vc ~clients:3 ~rounds:3
          ~seed:(Int64.of_int s) ()
      in
      match (r.Live_mutex.online, r.Live_mutex.detection_time) with
      | Detection.Detected _, Some t ->
          if t > r.Live_mutex.sim_time then
            Alcotest.fail "detection after the end of the run"
      | Detection.Detected _, None ->
          Alcotest.fail "detected but no detection time"
      | (Detection.No_detection | Detection.Undetectable_crashed _), _ ->
          hunt (s + 1)
  in
  hunt 1

let test_live_recording_is_valid () =
  (* The side recording must itself be a causally sound computation
     with the expected shape. *)
  let r =
    Live_mutex.run ~p_bug:0.3 ~mode:Instrument.Vc ~clients:4 ~rounds:2
      ~seed:99L ()
  in
  let comp = r.Live_mutex.recorded in
  Alcotest.(check int) "processes" 5 (Computation.n comp);
  (* requests + grants + releases: 3 messages per CS entry. *)
  Alcotest.(check int) "messages" (3 * 4 * 2)
    (Array.length (Computation.messages comp));
  (* every client has exactly [rounds] predicate-true states *)
  for c = 1 to 4 do
    Alcotest.(check int)
      (Printf.sprintf "CS states of client %d" c)
      2
      (List.length (Computation.candidates comp c))
  done

let prop_live_matches_oracle =
  qtest ~count:60 "live online verdict always matches the oracle"
    QCheck2.Gen.(
      tup3 (int_range 0 10_000) (int_range 0 100) (int_range 0 1))
    (fun (seed, bug_pct, mode_bit) ->
      let mode = if mode_bit = 0 then Instrument.Vc else Instrument.Dd in
      let p_bug = float_of_int bug_pct /. 100. in
      ignore (verify_live ~mode ~p_bug ~seed:(Int64.of_int seed));
      true)

(* ------------------------------------------------------------------ *)
(* A second live protocol, written inline: client-server with the WCP
   spanning ALL clients ("every client blocked"), monitored online by
   Token_vc. Exercises the projected-clock plumbing at width > 2 with
   the (non-spec) server relaying causality between the clients.       *)
(* ------------------------------------------------------------------ *)

let live_client_server ~clients ~requests ~seed =
  let n = clients + 1 in
  let server = 0 in
  let wcp_procs = Array.init clients (fun i -> i + 1) in
  let engine = Run_common.make_engine_n ~seed ~n () in
  let b = Builder.create ~n in
  let handles = Hashtbl.create 64 in
  let next_key = ref 0 in
  let instr =
    Array.init n (fun proc ->
        Instrument.create ~mode:Instrument.Vc ~n_app:n ~wcp_procs ~proc ())
  in
  let send_app ctx ~src ~dst ~kind =
    let key = !next_key in
    incr next_key;
    Hashtbl.replace handles key (Builder.send b ~src ~dst);
    let tag = Instrument.on_send instr.(src) ctx in
    let msg = Messages.App_data { tag; kind; data = key } in
    Wcp_sim.Engine.send ctx ~bits:(Messages.bits ~spec_width:clients msg) ~dst
      msg
  in
  let recv_app ctx ~dst ~src tag key =
    (match Hashtbl.find_opt handles key with
    | Some h ->
        Hashtbl.remove handles key;
        Builder.recv b ~dst h
    | None -> failwith "unknown key");
    Instrument.on_receive instr.(dst) ctx ~src tag
  in
  let remaining = Array.make n requests in
  let request ctx c =
    Wcp_sim.Engine.schedule ctx
      ~delay:(Wcp_util.Rng.exponential (Wcp_sim.Engine.rng ctx) ~mean:0.3)
      (fun ctx ->
        send_app ctx ~src:c ~dst:server ~kind:0;
        (* Blocked on the server: the monitored predicate. *)
        Instrument.predicate_true instr.(c) ctx;
        Builder.set_pred b ~proc:c true)
  in
  let client_handler c ctx ~src msg =
    match msg with
    | Messages.App_data { tag; kind = 1; data } ->
        recv_app ctx ~dst:c ~src tag data;
        remaining.(c) <- remaining.(c) - 1;
        if remaining.(c) = 0 then Instrument.finish instr.(c) ctx
        else request ctx c
    | _ -> failwith "client: unexpected message"
  in
  let served = ref 0 in
  let server_handler ctx ~src msg =
    match msg with
    | Messages.App_data { tag; kind = 0; data } ->
        recv_app ctx ~dst:server ~src tag data;
        send_app ctx ~src:server ~dst:src ~kind:1;
        incr served;
        if !served = clients * requests then
          Instrument.finish instr.(server) ctx
    | _ -> failwith "server: unexpected message"
  in
  Wcp_sim.Engine.set_handler engine server server_handler;
  for c = 1 to clients do
    Wcp_sim.Engine.set_handler engine c (client_handler c);
    Wcp_sim.Engine.schedule_initial engine ~proc:c ~at:0.0 (fun ctx ->
        Instrument.start instr.(c) ctx;
        request ctx c)
  done;
  let online = ref None in
  let hops = ref 0 and snapshots = ref 0 in
  let monitors =
    Token_vc.install engine ~n_app:n ~wcp_procs ~stop:false ~outcome:online
      ~hops ~snapshots ()
  in
  Token_vc.start engine monitors;
  Wcp_sim.Engine.run engine;
  match !online with
  | None -> Alcotest.fail "live client-server ended without a verdict"
  | Some verdict -> (verdict, Builder.finish b, wcp_procs)

let test_live_wide_spec () =
  for s = 1 to 12 do
    let seed = Int64.of_int (500 + s) in
    let verdict, recorded, wcp_procs =
      live_client_server ~clients:4 ~requests:3 ~seed
    in
    let spec = Spec.make recorded wcp_procs in
    let expected = Oracle.first_cut recorded spec in
    if not (Detection.outcome_equal verdict expected) then
      Alcotest.failf "wide live spec mismatch at seed %Ld: %a vs %a" seed
        Detection.pp_outcome verdict Detection.pp_outcome expected
  done

let () =
  Alcotest.run "instrument"
    [
      ( "mechanics",
        [
          Alcotest.test_case "vc clock discipline" `Quick
            test_vc_clock_discipline;
          Alcotest.test_case "dd tags" `Quick test_dd_tags;
          Alcotest.test_case "tag mismatches" `Quick test_tag_mismatches;
          Alcotest.test_case "create validation" `Quick test_create_validation;
        ] );
      ( "live-monitoring",
        [
          Alcotest.test_case "vc: correct runs are silent" `Quick
            test_live_vc_correct_runs;
          Alcotest.test_case "vc: buggy runs trip" `Quick
            test_live_vc_buggy_runs;
          Alcotest.test_case "dd: correct runs are silent" `Quick
            test_live_dd_correct_runs;
          Alcotest.test_case "dd: buggy runs trip" `Quick
            test_live_dd_buggy_runs;
          Alcotest.test_case "detection time recorded" `Quick
            test_live_detection_time_recorded;
          Alcotest.test_case "recording is valid" `Quick
            test_live_recording_is_valid;
          Alcotest.test_case "wide-spec live client-server" `Quick
            test_live_wide_spec;
          prop_live_matches_oracle;
        ] );
    ]
