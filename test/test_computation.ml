open Wcp_trace
open Wcp_clocks

let qtest = Helpers.qtest

let st p k = State.make ~proc:p ~index:k

(* The worked example used throughout: three processes, four messages.

     P0:  s1 --a--> s2 --------------- r(d) --> s3
     P1:  s1 --r(a)--> s2 --b--> s3 --c--> s4
     P2:  s1 --r(b)--> s2 --d--> s3 --r(c)--> s4

   a: P0->P1, b: P1->P2, c: P1->P2, d: P2->P0. *)
let example () =
  let b = Builder.create ~n:3 in
  let a = Builder.send b ~src:0 ~dst:1 in
  Builder.recv b ~dst:1 a;
  let mb = Builder.send b ~src:1 ~dst:2 in
  Builder.recv b ~dst:2 mb;
  let mc = Builder.send b ~src:1 ~dst:2 in
  let md = Builder.send b ~src:2 ~dst:0 in
  Builder.recv b ~dst:2 mc;
  Builder.recv b ~dst:0 md;
  Builder.set_pred b ~proc:0 true;
  Builder.finish b

let test_shape () =
  let c = example () in
  Alcotest.(check int) "n" 3 (Computation.n c);
  Alcotest.(check int) "states P0" 3 (Computation.num_states c 0);
  Alcotest.(check int) "states P1" 4 (Computation.num_states c 1);
  Alcotest.(check int) "states P2" 4 (Computation.num_states c 2);
  Alcotest.(check int) "total" 11 (Computation.total_states c);
  Alcotest.(check int) "messages" 4 (Array.length (Computation.messages c));
  Alcotest.(check int) "max events" 3 (Computation.max_events_per_process c)

let test_vector_clocks () =
  let c = example () in
  let check_vc s expect =
    Alcotest.(check (array int))
      (State.to_string s) expect
      (Vector_clock.to_array (Computation.vc c s))
  in
  check_vc (st 0 1) [| 1; 0; 0 |];
  check_vc (st 0 2) [| 2; 0; 0 |];
  check_vc (st 1 1) [| 0; 1; 0 |];
  check_vc (st 1 2) [| 1; 2; 0 |];
  check_vc (st 1 3) [| 1; 3; 0 |];
  check_vc (st 1 4) [| 1; 4; 0 |];
  check_vc (st 2 2) [| 1; 2; 2 |];
  check_vc (st 2 3) [| 1; 2; 3 |];
  (* P2 receives c (sent from (1,3)) entering state 4. *)
  check_vc (st 2 4) [| 1; 3; 4 |];
  (* P0 receives d (sent from (2,2)) entering state 3. *)
  check_vc (st 0 3) [| 3; 2; 2 |]

let test_happened_before () =
  let c = example () in
  Alcotest.(check bool) "same process" true
    (Computation.happened_before c (st 1 1) (st 1 3));
  Alcotest.(check bool) "via message a" true
    (Computation.happened_before c (st 0 1) (st 1 2));
  Alcotest.(check bool) "transitive a;b" true
    (Computation.happened_before c (st 0 1) (st 2 2));
  Alcotest.(check bool) "not backwards" false
    (Computation.happened_before c (st 1 2) (st 0 1));
  Alcotest.(check bool) "d reaches P0" true
    (Computation.happened_before c (st 2 1) (st 0 3));
  Alcotest.(check bool) "concurrent pair" true
    (Computation.concurrent c (st 0 2) (st 1 2));
  Alcotest.(check bool) "state concurrent with itself is false" false
    (Computation.concurrent c (st 0 2) (st 0 2))

let test_dep_at () =
  let c = example () in
  Alcotest.(check bool) "initial state has no dep" true
    (Computation.dep_at c (st 0 1) = None);
  Alcotest.(check bool) "send creates no dep" true
    (Computation.dep_at c (st 0 2) = None);
  (match Computation.dep_at c (st 1 2) with
  | Some { Dependence.src = 0; clock = 1 } -> ()
  | _ -> Alcotest.fail "P1 state 2 should depend on (0,1)");
  (match Computation.dep_at c (st 2 4) with
  | Some { Dependence.src = 1; clock = 3 } -> ()
  | _ -> Alcotest.fail "P2 state 4 should depend on (1,3)");
  match Computation.dep_at c (st 0 3) with
  | Some { Dependence.src = 2; clock = 2 } -> ()
  | _ -> Alcotest.fail "P0 state 3 should depend on (2,2)"

let test_candidates () =
  let c = example () in
  Alcotest.(check (list int)) "P0 pred-true states" [ 3 ]
    (Computation.candidates c 0);
  Alcotest.(check (list int)) "P1 none" [] (Computation.candidates c 1)

let test_message_endpoints () =
  let c = example () in
  let m = (Computation.messages c).(3) in
  Alcotest.(check int) "src" 2 m.Computation.src;
  Alcotest.(check int) "src_state" 2 m.Computation.src_state;
  Alcotest.(check int) "dst" 0 m.Computation.dst;
  Alcotest.(check int) "dst_state" 3 m.Computation.dst_state

(* ------------------------------------------------------------------ *)
(* of_raw validation                                                   *)
(* ------------------------------------------------------------------ *)

let expect_invalid name ops pred =
  match Computation.of_raw ~ops ~pred with
  | exception Computation.Invalid _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid" name

let test_validation () =
  let send dst msg = Computation.Send { dst; msg } in
  let recv msg = Computation.Recv { msg } in
  expect_invalid "sent twice"
    [| [ send 1 0; send 1 0 ]; [ recv 0 ] |]
    [| [| false; false; false |]; [| false; false |] |];
  expect_invalid "received twice"
    [| [ send 1 0 ]; [ recv 0; recv 0 ] |]
    [| [| false; false |]; [| false; false; false |] |];
  expect_invalid "never received"
    [| [ send 1 0 ]; [] |]
    [| [| false; false |]; [| false |] |];
  expect_invalid "never sent"
    [| []; [ recv 0 ] |]
    [| [| false |]; [| false; false |] |];
  expect_invalid "wrong receiver: addressed to 1, received by 0"
    [| [ send 1 0; recv 0 ]; [] |]
    [| [| false; false; false |]; [| false |] |];
  expect_invalid "self send"
    [| [ send 0 0; recv 0 ]; [] |]
    [| [| false; false; false |]; [| false |] |];
  expect_invalid "causal cycle"
    [| [ recv 1; send 1 0 ]; [ recv 0; send 0 1 ] |]
    [| [| false; false; false |]; [| false; false; false |] |];
  expect_invalid "pred length mismatch"
    [| [ send 1 0 ]; [ recv 0 ] |]
    [| [| false |]; [| false; false |] |];
  expect_invalid "empty computation" [||] [||];
  expect_invalid "invalid dst"
    [| [ send 7 0 ]; [ recv 0 ] |]
    [| [| false; false |]; [| false; false |] |]

let test_zero_event_process () =
  let c =
    Computation.of_raw
      ~ops:[| []; [] |]
      ~pred:[| [| true |]; [| false |] |]
  in
  Alcotest.(check int) "one state each" 1 (Computation.num_states c 0);
  Alcotest.(check bool) "pred" true (Computation.pred c (st 0 1));
  Alcotest.(check bool) "initials concurrent" true
    (Computation.concurrent c (st 0 1) (st 1 1))

(* ------------------------------------------------------------------ *)
(* Properties on random computations                                   *)
(* ------------------------------------------------------------------ *)

let prop_vc_iff_hb =
  qtest ~count:100 "vector clocks characterise happened-before"
    Helpers.gen_small_comp (fun comp ->
      let states = Helpers.all_states comp in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              if State.equal a b then true
              else
                let hb = Computation.happened_before comp a b in
                let vc_lt =
                  Vector_clock.lt (Computation.vc comp a) (Computation.vc comp b)
                in
                if a.State.proc = b.State.proc then
                  hb = (a.State.index < b.State.index)
                else hb = vc_lt)
            states)
        states)

let prop_vc_property_2 =
  (* Paper §3.1, property 2: "Let v be a vector on P_i. Then, for any j
     different from i, (j, v[j]) -> (i, v[i])". *)
  qtest ~count:100 "§3.1 property 2 of vector clocks" Helpers.gen_small_comp
    (fun comp ->
      List.for_all
        (fun (s : State.t) ->
          let v = Computation.vc comp s in
          let n = Computation.n comp in
          let rec ok j =
            j = n
            || ((j = s.State.proc
                || Vector_clock.get v j = 0
                || Computation.happened_before comp
                     (State.make ~proc:j ~index:(Vector_clock.get v j))
                     s)
               && ok (j + 1))
          in
          ok 0)
        (Helpers.all_states comp))

let prop_hb_transitive =
  qtest ~count:60 "happened-before is transitive" Helpers.gen_small_comp
    (fun comp ->
      let states = Array.of_list (Helpers.all_states comp) in
      let k = Array.length states in
      let ok = ref true in
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          for l = 0 to k - 1 do
            if
              Computation.happened_before comp states.(i) states.(j)
              && Computation.happened_before comp states.(j) states.(l)
              && not (Computation.happened_before comp states.(i) states.(l))
            then ok := false
          done
        done
      done;
      !ok)

let prop_hb_irreflexive_antisymmetric =
  qtest ~count:100 "happened-before is a strict order" Helpers.gen_small_comp
    (fun comp ->
      let states = Helpers.all_states comp in
      List.for_all
        (fun a ->
          (not (Computation.happened_before comp a a))
          && List.for_all
               (fun b ->
                 not
                   (Computation.happened_before comp a b
                   && Computation.happened_before comp b a))
               states)
        states)

let prop_message_causality =
  qtest ~count:100 "every message's send precedes its receive"
    Helpers.gen_medium_comp (fun comp ->
      Array.for_all
        (fun (m : Computation.message) ->
          Computation.happened_before comp
            (st m.Computation.src m.Computation.src_state)
            (st m.Computation.dst m.Computation.dst_state))
        (Computation.messages comp))

let prop_dep_matches_messages =
  qtest ~count:100 "dep_at mirrors the message table" Helpers.gen_medium_comp
    (fun comp ->
      Array.for_all
        (fun (m : Computation.message) ->
          match Computation.dep_at comp (st m.Computation.dst m.Computation.dst_state) with
          | Some { Dependence.src; clock } ->
              src = m.Computation.src && clock = m.Computation.src_state
          | None -> false)
        (Computation.messages comp))

(* ------------------------------------------------------------------ *)
(* Cut                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cut_validation () =
  let chk name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  chk "empty" (fun () -> Cut.make ~procs:[||] ~states:[||]);
  chk "length mismatch" (fun () -> Cut.make ~procs:[| 0; 1 |] ~states:[| 1 |]);
  chk "unsorted" (fun () -> Cut.make ~procs:[| 1; 0 |] ~states:[| 1; 1 |]);
  chk "duplicate" (fun () -> Cut.make ~procs:[| 1; 1 |] ~states:[| 1; 1 |]);
  chk "state zero" (fun () -> Cut.make ~procs:[| 0 |] ~states:[| 0 |])

let test_cut_consistency () =
  let c = example () in
  let cut states = Cut.over_all c states in
  Alcotest.(check bool) "initial cut consistent" true
    (Cut.consistent c (cut [| 1; 1; 1 |]));
  (* (0,1) happened before (1,2) via message a. *)
  Alcotest.(check bool) "inconsistent cut" false
    (Cut.consistent c (cut [| 1; 2; 1 |]));
  Alcotest.(check int) "violations listed" 1
    (List.length (Cut.violations c (cut [| 1; 2; 1 |])));
  Alcotest.(check bool) "later consistent cut" true
    (Cut.consistent c (cut [| 2; 2; 1 |]))

let test_cut_satisfies () =
  let c = example () in
  (* Only (0,3) has a true predicate; over procs [|0|]. *)
  let good = Cut.make ~procs:[| 0 |] ~states:[| 3 |] in
  let bad = Cut.make ~procs:[| 0 |] ~states:[| 2 |] in
  Alcotest.(check bool) "satisfying" true (Cut.satisfies c good);
  Alcotest.(check bool) "pred false" false (Cut.satisfies c bad)

let test_cut_order () =
  let a = Cut.make ~procs:[| 0; 2 |] ~states:[| 1; 4 |] in
  let b = Cut.make ~procs:[| 0; 2 |] ~states:[| 2; 4 |] in
  let c = Cut.make ~procs:[| 0; 1 |] ~states:[| 2; 4 |] in
  Alcotest.(check bool) "leq" true (Cut.pointwise_leq a b);
  Alcotest.(check bool) "not geq" false (Cut.pointwise_leq b a);
  Alcotest.(check bool) "different procs incomparable" false
    (Cut.pointwise_leq b c);
  Alcotest.(check bool) "equal" true (Cut.equal a a);
  Alcotest.(check string) "pp" "{0:1 2:4}" (Cut.to_string a)

let prop_cut_consistency_via_violations =
  qtest ~count:100 "consistent iff no violations" Helpers.gen_small_comp
    (fun comp ->
      List.for_all
        (fun seed ->
          let cut = Cut.over_all comp (Helpers.random_full_cut comp seed) in
          Cut.consistent comp cut = (Cut.violations comp cut = []))
        [ 1; 2; 3; 4; 5 ])

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let comp_equal a b =
  Computation.n a = Computation.n b
  && List.for_all
       (fun p ->
         Computation.ops a p = Computation.ops b p
         && List.for_all
              (fun k ->
                Computation.pred a (st p k) = Computation.pred b (st p k))
              (List.init (Computation.num_states a p) (fun k -> k + 1)))
       (List.init (Computation.n a) Fun.id)

let prop_codec_roundtrip =
  qtest ~count:150 "encode/decode round-trips" Helpers.gen_medium_comp
    (fun comp -> comp_equal comp (Trace_codec.decode (Trace_codec.encode comp)))

let test_codec_example () =
  let c = example () in
  let text = Trace_codec.encode c in
  Alcotest.(check bool) "mentions header" true
    (String.length text > 12 && String.sub text 0 12 = "wcp-trace v1");
  let c' = Trace_codec.decode text in
  Alcotest.(check bool) "roundtrip" true (comp_equal c c')

let test_codec_comments_and_blanks () =
  let text =
    "# a comment\nwcp-trace v1\n\nn 2\nops 0 S1:0  # trailing comment\n\
     pred 0 1 0\nops 1 R:0\npred 1 0 1\n"
  in
  let c = Trace_codec.decode text in
  Alcotest.(check int) "n" 2 (Computation.n c);
  Alcotest.(check bool) "pred (0,1)" true (Computation.pred c (st 0 1));
  Alcotest.(check bool) "pred (1,2)" true (Computation.pred c (st 1 2))

let test_codec_errors () =
  let expect_parse name text =
    match Trace_codec.decode text with
    | exception Trace_codec.Parse_error _ -> ()
    | _ -> Alcotest.failf "%s: expected Parse_error" name
  in
  expect_parse "bad version" "wcp-trace v9\nn 1\nops 0\npred 0 0\n";
  expect_parse "missing header" "n 1\nops 0\npred 0 0\n";
  expect_parse "ops before n" "wcp-trace v1\nops 0\n";
  expect_parse "bad flag" "wcp-trace v1\nn 1\nops 0\npred 0 2\n";
  expect_parse "unknown directive" "wcp-trace v1\nn 1\nfrobnicate\n";
  expect_parse "bad op token" "wcp-trace v1\nn 2\nops 0 X:1\npred 0 0 0\n";
  expect_parse "no n" "wcp-trace v1\n";
  match Trace_codec.decode "wcp-trace v1\nn 2\nops 0 S1:0\npred 0 0 0\nops 1\npred 1 0\n" with
  | exception Trace_codec.Parse_error { line; message } ->
      (* Causally unsound traces surface as Parse_error attributed to
         the ops line that introduced the offending message. *)
      Alcotest.(check int) "attributed line" 3 line;
      Alcotest.(check string) "wrapped message"
        "invalid computation: message 0 never received" message
  | _ -> Alcotest.fail "unreceived message should be a wrapped Parse_error"

let prop_codec_never_crashes =
  (* Decoding arbitrary bytes must either succeed or raise one of the
     two declared exceptions — never anything else. *)
  Helpers.qtest ~count:500 "decode of junk raises only declared exceptions"
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 200))
    (fun junk ->
      match Trace_codec.decode junk with
      | _ -> true
      | exception Trace_codec.Parse_error _ -> true
      | exception Computation.Invalid _ -> true
      | exception _ -> false)

let prop_codec_mutation_never_crashes =
  (* Mutating a VALID trace is the nastier fuzz case: almost-correct
     input exercises the deep validation paths. *)
  Helpers.qtest ~count:300 "single-byte mutations of valid traces are safe"
    QCheck2.Gen.(tup3 Helpers.gen_small_comp (int_range 0 10_000) (char_range '\000' '\255'))
    (fun (comp, pos, c) ->
      let text = Bytes.of_string (Trace_codec.encode comp) in
      if Bytes.length text = 0 then true
      else begin
        Bytes.set text (pos mod Bytes.length text) c;
        match Trace_codec.decode (Bytes.to_string text) with
        | _ -> true
        | exception Trace_codec.Parse_error _ -> true
        | exception Computation.Invalid _ -> true
        | exception _ -> false
      end)

let test_codec_file_io () =
  let c = example () in
  let path = Filename.temp_file "wcp" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_codec.write_file path c;
      Alcotest.(check bool) "file roundtrip" true
        (comp_equal c (Trace_codec.read_file path)))

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

let test_builder_misuse () =
  let b = Builder.create ~n:2 in
  let m = Builder.send b ~src:0 ~dst:1 in
  Builder.recv b ~dst:1 m;
  (match Builder.recv b ~dst:1 m with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double receive should fail");
  let m2 = Builder.send b ~src:0 ~dst:1 in
  (match Builder.recv b ~dst:0 m2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong receiver should fail");
  match Builder.send b ~src:0 ~dst:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "self send should fail"

let test_builder_current_state () =
  let b = Builder.create ~n:2 in
  Alcotest.(check int) "initial" 1 (Builder.current_state b ~proc:0);
  let m = Builder.send b ~src:0 ~dst:1 in
  Alcotest.(check int) "after send" 2 (Builder.current_state b ~proc:0);
  Builder.recv b ~dst:1 m;
  Alcotest.(check int) "after recv" 2 (Builder.current_state b ~proc:1);
  Builder.internal b ~proc:0;
  Alcotest.(check int) "internal creates no state" 2
    (Builder.current_state b ~proc:0)

let test_builder_unreceived () =
  let b = Builder.create ~n:2 in
  let (_ : Builder.msg) = Builder.send b ~src:0 ~dst:1 in
  match Builder.finish b with
  | exception Computation.Invalid _ -> ()
  | _ -> Alcotest.fail "unreceived message should fail finish"

let () =
  Alcotest.run "computation"
    [
      ( "example",
        [
          Alcotest.test_case "shape" `Quick test_shape;
          Alcotest.test_case "vector clocks" `Quick test_vector_clocks;
          Alcotest.test_case "happened-before" `Quick test_happened_before;
          Alcotest.test_case "dep_at" `Quick test_dep_at;
          Alcotest.test_case "candidates" `Quick test_candidates;
          Alcotest.test_case "message endpoints" `Quick test_message_endpoints;
        ] );
      ( "validation",
        [
          Alcotest.test_case "of_raw rejects bad traces" `Quick test_validation;
          Alcotest.test_case "zero-event processes" `Quick
            test_zero_event_process;
        ] );
      ( "properties",
        [
          prop_vc_iff_hb;
          prop_vc_property_2;
          prop_hb_transitive;
          prop_hb_irreflexive_antisymmetric;
          prop_message_causality;
          prop_dep_matches_messages;
        ] );
      ( "cut",
        [
          Alcotest.test_case "validation" `Quick test_cut_validation;
          Alcotest.test_case "consistency" `Quick test_cut_consistency;
          Alcotest.test_case "satisfies" `Quick test_cut_satisfies;
          Alcotest.test_case "ordering and pp" `Quick test_cut_order;
          prop_cut_consistency_via_violations;
        ] );
      ( "codec",
        [
          prop_codec_roundtrip;
          prop_codec_never_crashes;
          prop_codec_mutation_never_crashes;
          Alcotest.test_case "example roundtrip" `Quick test_codec_example;
          Alcotest.test_case "comments and blanks" `Quick
            test_codec_comments_and_blanks;
          Alcotest.test_case "errors" `Quick test_codec_errors;
          Alcotest.test_case "file io" `Quick test_codec_file_io;
        ] );
      ( "builder",
        [
          Alcotest.test_case "misuse" `Quick test_builder_misuse;
          Alcotest.test_case "current_state" `Quick test_builder_current_state;
          Alcotest.test_case "unreceived message" `Quick test_builder_unreceived;
        ] );
    ]
