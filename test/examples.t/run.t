Every example is deterministic; pin their complete outputs.

  $ ../../examples/quickstart.exe
  computation: 2 processes, 6 states, 2 messages
  oracle:    detected {0:2 1:1}
  token-vc:  detected {0:2 1:1} | msgs=7 bits=608 work=6 max-work=3 max-space=2 hops=1 polls=0 snaps=2 t=2.30 ev=9
  token-dd:  detected {0:2 1:1} | msgs=7 bits=320 work=2 max-work=1 max-space=1 hops=1 polls=0 snaps=2 t=2.30 ev=9
  projected: detected {0:2 1:1}
  quickstart OK

  $ ../../examples/mutual_exclusion.exe
  == correct coordinator (p_bug = 0) ==
    seed 1: no detection
    seed 2: no detection
    seed 3: no detection
    seed 4: no detection
    seed 5: no detection
  
  == racy coordinator (p_bug = 0.4) ==
    seed  1: VIOLATION at {1:6 2:6}  ((1,6) || (2,6): true)
    seed  2: VIOLATION at {1:6 2:9}  ((1,6) || (2,9): true)
    seed  3: VIOLATION at {1:3 2:6}  ((1,3) || (2,6): true)
    seed  4: VIOLATION at {1:3 2:3}  ((1,3) || (2,3): true)
    seed  5: VIOLATION at {1:3 2:3}  ((1,3) || (2,3): true)
    seed  6: VIOLATION at {1:12 2:9}  ((1,12) || (2,9): true)
    seed  7: VIOLATION at {1:3 2:3}  ((1,3) || (2,3): true)
    seed  8: VIOLATION at {1:3 2:6}  ((1,3) || (2,6): true)
    seed  9: VIOLATION at {1:3 2:3}  ((1,3) || (2,3): true)
    seed 10: VIOLATION at {1:3 2:3}  ((1,3) || (2,3): true)
  
  10 of 10 racy runs violated mutual exclusion;
  every violation was caught with its first violating cut.

  $ ../../examples/database_locks.exe
  == correct lock manager ==
    seed 1: no detection
    seed 2: no detection
    seed 3: no detection
    seed 4: no detection
    seed 5: no detection
  
  == buggy lock manager (p_bug = 0.4) ==
    seed  1: read lock and write lock held concurrently at {1:6 3:6}
      (cost note: dd work 64 spread with busiest process 29;
       checker work 8, all on the single checker)
    seed  2: read lock and write lock held concurrently at {1:9 3:12}
    seed  3: read lock and write lock held concurrently at {1:6 3:6}
    seed  4: read lock and write lock held concurrently at {1:3 3:3}
    seed  5: run stayed safe
    seed  6: read lock and write lock held concurrently at {1:9 3:6}
    seed  7: read lock and write lock held concurrently at {1:3 3:3}
    seed  8: read lock and write lock held concurrently at {1:3 3:3}
    seed  9: read lock and write lock held concurrently at {1:6 3:6}
    seed 10: read lock and write lock held concurrently at {1:3 3:3}
  
  9 of 10 buggy runs had a detectable lock conflict.

  $ ../../examples/algorithm_comparison.exe
  computation: 8 processes, 200 states, 96 messages
  wcp over {0 2 4 6} (n = 4 of N = 8)
  
  oracle: detected {0:10 2:4 4:7 6:4}
  
  algorithm              msgs       bits      work  max-work max-space    time
  checker [7]              78       8736        28        28        55     7.2
  token-vc (§3)          111      13152        23         7        32    10.8
  multi g=2 (§3.5)       123      14656        43        12        32    11.0
  token-dd (§4)          215      11244        44         6        38    38.2
  token-dd ∥ (§4.5)      212      11148        44         6        33    17.2
  cooper-marzullo    explored 516774 consistent cuts (frontier 69312)
  
  all detectors agree on the first cut.

  $ ../../examples/distributed_debugging.exe
  breakpoint: all 4 clients simultaneously blocked
  
  breakpoint fired at the first such cut: {1:2 2:2 3:2 4:2}
  
  frozen global state:
    client P1 in state 2: just sent a request, blocked on the reply
      vector clock [0,2,0,0,0]
    client P2 in state 2: just sent a request, blocked on the reply
      vector clock [0,0,2,0,0]
    client P3 in state 2: just sent a request, blocked on the reply
      vector clock [0,0,0,2,0]
    client P4 in state 2: just sent a request, blocked on the reply
      vector clock [0,0,0,0,2]
  
  (cut verified consistent: no message crosses it)
  (cut verified minimal: it is the FIRST such state)

  $ ../../examples/online_monitoring.exe
  == online monitoring with the vector-clock token (§3) ==
  -- correct coordinator --
    seed 1: clean (no violating cut exists)
    seed 2: clean (no violating cut exists)
    seed 3: clean (no violating cut exists)
  -- racy coordinator (p_bug = 0.5) --
    seed 1: monitors flagged CS1∧CS2 at {1:3 2:3} — sim time 5 of 14
    seed 2: monitors flagged CS1∧CS2 at {1:3 2:3} — sim time 5 of 17
    seed 3: monitors flagged CS1∧CS2 at {1:6 2:6} — sim time 9 of 13
    seed 4: monitors flagged CS1∧CS2 at {1:3 2:6} — sim time 7 of 12
  
  == online monitoring with the direct-dependence token (§4) ==
  -- correct coordinator --
    seed 1: clean (no violating cut exists)
    seed 2: clean (no violating cut exists)
    seed 3: clean (no violating cut exists)
  -- racy coordinator (p_bug = 0.5) --
    seed 1: monitors flagged CS1∧CS2 at {1:3 2:3} — sim time 18 of 18
    seed 2: monitors flagged CS1∧CS2 at {1:3 2:3} — sim time 16 of 16
    seed 3: monitors flagged CS1∧CS2 at {1:3 2:3} — sim time 15 of 15
    seed 4: monitors flagged CS1∧CS2 at {1:3 2:3} — sim time 27 of 27
  
  every online verdict matched the offline oracle exactly.

  $ ../../examples/channel_monitor.exe
  computation: 4 processes, 16 states, 6 messages
  
  WCP "server idle" alone:            fires at {0:3}
  GCP "idle ∧ requests in flight":   fires at {0:3 1:2 2:2 3:2}
      at-least-1(2->0) holds: true
      at-least-1(3->0) holds: true
      in flight to server at the cut: 2 message(s)
  
  control: "idle ∧ 2 in flight from client 1" correctly never fires

  $ ../../examples/boolean_predicates.exe
  P0: (1). !0>2 (2). ?1 (3). !2>1 (4). ?3 (5).
  P1: (1)* ?2 (2). !3>0 (3).
  P2: (1). ?0 (2)* !1>0 (3).
  messages: 0:0->2 1:2->0 2:0->1 3:1->0
  
  monitoring: ((l_1@1 ∧ l_2@2) ∨ (¬(l_1@1) ∧ ¬(l_2@2)))
  
  split-brain  possible, first at {1:1 2:2}
  dark         possible, first at {1:2 2:3}
  
  Definitely(BAD): every observation passes through a bad state —
    the overlap window is inherent to this failover ordering.
  
  (DNF-based verdict cross-checked against the cut lattice)

  $ ../../examples/deadlock_detection.exe
  == 5 philosophers, patient (long contention windows) ==
    seed  1: circular wait at {0:6 1:9 2:11 3:3 4:3}
    seed  2: circular wait at {0:3 1:3 2:3 3:3 4:9}
    seed  3: circular wait at {0:3 1:3 2:3 3:3 4:3}
    seed  4: circular wait at {0:3 1:3 2:3 3:3 4:3}
    seed  5: circular wait at {0:9 1:5 2:3 3:9 4:3}
    seed  6: circular wait at {0:3 1:3 2:3 3:3 4:3}
    seed  7: circular wait at {0:11 1:5 2:6 3:17 4:11}
    seed  8: circular wait at {0:3 1:9 2:3 3:4 4:9}
    seed  9: circular wait at {0:14 1:13 2:11 3:5 4:3}
    seed 10: circular wait at {0:13 1:17 2:7 3:19 4:16}
  10 of 10 runs passed through a potential deadlock.
  
  witness (4 philosophers, seed 1): {0:3 1:3 2:3 3:3}
    each philosopher holds its left fork in this cut;
    no message crosses the cut (verified consistent).
    (confirmed by the direct-dependence algorithm)
    but not definite: a lucky schedule avoids it (Strong check)
  
  == impatience narrows the window (patience = 0.0) ==
  8 of 10 impatient runs had a circular-wait cut.

  $ ../../examples/bank_audit.exe
  computation: 4 processes, 24 states, 10 messages
  true total: 400
  
  lowest on-books total any snapshot could see: 190 at {0:3 1:5 2:3 3:5}
    (210 in flight at that cut)
  highest on-books total: 400 at {0:1 1:1 2:1 3:1}
    never exceeds the true total: no double counting.
  
  reserve alert (<= 360) WOULD have fired, e.g. at {0:3 1:5 2:3 3:5}
