(* Crash recovery: the checkpoint codec, deterministic resume, and the
   restart-heals matrix — every token detector, crashed mid-protocol
   and rebuilt from its checkpoint, must still report the exact first
   cut of the fault-free oracle. *)

open Wcp_trace
open Wcp_clocks
open Wcp_core
open Wcp_sim
module G = QCheck2.Gen

(* ------------------------------------------------------------------ *)
(* Checkpoint generators                                               *)
(* ------------------------------------------------------------------ *)

let gen_int = G.int_range 0 9_999
let gen_iarr = G.array_size (G.int_range 0 5) gen_int
let gen_color = G.oneofl [ Messages.Red; Messages.Green ]
let gen_colors = G.array_size (G.int_range 0 5) gen_color

let gen_vc_snap =
  G.map2
    (fun state clock -> ({ state; clock } : Snapshot.vc))
    gen_int gen_iarr

let gen_dep =
  G.map2 (fun src clock -> ({ src; clock } : Dependence.t)) gen_int gen_int

let gen_dd_snap =
  G.map2
    (fun state deps -> ({ state; deps } : Snapshot.dd))
    gen_int
    (G.list_size (G.int_range 0 4) gen_dep)

(* One of every payload constructor, so the codec's message layer is
   exercised across its whole tag space. *)
let gen_base_msg =
  G.oneof
    [
      G.map (fun msg_id -> Messages.App_msg { msg_id }) gen_int;
      G.map3
        (fun v kind data ->
          Messages.App_data { tag = Messages.Vc_tag v; kind; data })
        gen_iarr gen_int gen_int;
      G.map3
        (fun src clock data ->
          Messages.App_data
            { tag = Messages.Dd_tag { src; clock }; kind = 1; data })
        gen_int gen_int gen_int;
      G.map (fun s -> Messages.Snap_vc s) gen_vc_snap;
      G.map2
        (fun state delta -> Messages.Snap_vc_delta { state; delta })
        gen_int gen_iarr;
      G.map (fun s -> Messages.Snap_dd s) gen_dd_snap;
      G.map2
        (fun state deps -> Messages.Snap_dd_packed { state; deps })
        gen_int gen_iarr;
      G.map3
        (fun state clock counts -> Messages.Snap_gcp { state; clock; counts })
        gen_int gen_iarr gen_iarr;
      G.pure Messages.App_done;
      G.map3
        (fun seq g color -> Messages.Vc_token { seq; g; color })
        gen_int gen_iarr gen_colors;
      G.map3
        (fun seq g (color, group) ->
          Messages.Group_token { seq; g; color; group })
        gen_int gen_iarr (G.pair gen_colors gen_int);
      G.map3
        (fun seq g (color, group) ->
          Messages.Group_return { seq; g; color; group })
        gen_int gen_iarr (G.pair gen_colors gen_int);
      G.map (fun seq -> Messages.Dd_token { seq }) gen_int;
      G.map2
        (fun clock next_red -> Messages.Poll { clock; next_red })
        gen_int (G.option gen_int);
      G.map (fun became_red -> Messages.Poll_reply { became_red }) G.bool;
      G.map (fun seq -> Messages.Wd_probe { seq }) gen_int;
      G.map3
        (fun seq received holding -> Messages.Wd_reply { seq; received; holding })
        gen_int G.bool G.bool;
    ]

let gen_msg =
  G.oneof
    [
      gen_base_msg;
      G.map2
        (fun seq payload -> Messages.Frame (Transport.Data { seq; payload }))
        gen_int gen_base_msg;
      G.map2
        (fun cum era -> Messages.Frame (Transport.Ack { cum; era }))
        gen_int gen_int;
      G.map2
        (fun expected era ->
          Messages.Frame (Transport.Reconnect { expected; era }))
        gen_int gen_int;
    ]

let gen_vc_mon =
  G.map
    (fun (v_queue, v_decoder, v_app_done, v_held, v_last, v_last_seq) ->
      {
        Checkpoint.v_queue;
        v_decoder;
        v_app_done;
        v_held;
        v_last;
        v_last_seq;
      })
    (G.tup6
       (G.list_size (G.int_range 0 4) gen_vc_snap)
       gen_iarr G.bool
       (G.option (G.pair gen_iarr gen_colors))
       (G.option gen_vc_snap) gen_int)

let gen_dd_mon =
  G.map2
    (fun (d_queue, d_app_done, d_color, d_g, d_next_red)
         (d_has_token, d_tentative, d_deps, d_polling, d_last_seq) ->
      {
        Checkpoint.d_queue;
        d_app_done;
        d_color;
        d_g;
        d_next_red;
        d_has_token;
        d_tentative;
        d_deps;
        d_polling;
        d_last_seq;
      })
    (G.tup5
       (G.list_size (G.int_range 0 4) gen_dd_snap)
       G.bool gen_color gen_int (G.option gen_int))
    (G.tup5 G.bool (G.option gen_int)
       (G.list_size (G.int_range 0 4) gen_dep)
       G.bool gen_int)

let gen_algo =
  G.oneof
    [
      G.map (fun m -> Checkpoint.Vc m) gen_vc_mon;
      G.map (fun m -> Checkpoint.Multi m) gen_vc_mon;
      G.map (fun m -> Checkpoint.Dd m) gen_dd_mon;
      G.map2
        (fun round frontier -> Checkpoint.Frontier { round; frontier })
        gen_int gen_iarr;
    ]

let gen_wd =
  G.map
    (fun (w_seq, w_dst, w_probes, w_bits, w_payload) ->
      { Checkpoint.w_seq; w_dst; w_probes; w_bits; w_payload })
    (G.tup5 gen_int gen_int gen_int gen_int gen_msg)

let gen_tx =
  G.map
    (fun (tx_dst, tx_next_seq, tx_base, tx_frames, tx_era) ->
      { Transport.tx_dst; tx_next_seq; tx_base; tx_frames; tx_era })
    (G.tup5 gen_int gen_int gen_int
       (G.list_size (G.int_range 0 3) (G.tup3 gen_int gen_msg gen_int))
       gen_int)

let gen_rx =
  G.map
    (fun (rx_src, rx_expected, rx_era) ->
      { Transport.rx_src; rx_expected; rx_era })
    (G.tup3 gen_int gen_int gen_int)

let gen_transport =
  G.map2
    (fun st_txs st_rxs -> { Transport.st_txs; st_rxs })
    (G.list_size (G.int_range 0 3) gen_tx)
    (G.list_size (G.int_range 0 3) gen_rx)

let gen_ckpt =
  G.map
    (fun (proc, algo, transport, watchdog) ->
      { Checkpoint.proc; algo; transport; watchdog })
    (G.tup4 gen_int gen_algo gen_transport (G.option gen_wd))

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let codec_roundtrip =
  Helpers.qtest ~count:500 "decode inverts encode" gen_ckpt (fun c ->
      Checkpoint.equal c (Checkpoint.decode (Checkpoint.encode c)))

let rejects f =
  match f () with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "malformed checkpoint must be rejected"

let test_codec_rejects_malformed () =
  let c =
    {
      Checkpoint.proc = 3;
      algo = Checkpoint.Frontier { round = 2; frontier = [| 1; 2; 3 |] };
      transport = { Transport.st_txs = []; st_rxs = [] };
      watchdog = None;
    }
  in
  let s = Checkpoint.encode c in
  rejects (fun () -> Checkpoint.decode "");
  rejects (fun () -> Checkpoint.decode "bogus/9 1 2 3");
  rejects (fun () -> Checkpoint.decode (s ^ " 7"));
  (* Truncation: drop the last token of the stream. *)
  rejects (fun () ->
      Checkpoint.decode (String.sub s 0 (String.rindex s ' ')));
  rejects (fun () -> Checkpoint.decode (Checkpoint.version ^ " 0 4"))

(* ------------------------------------------------------------------ *)
(* Restart heals: detector matrix against the fault-free oracle        *)
(* ------------------------------------------------------------------ *)

(* Mid-protocol restart of the monitor of application process 0: its
   in-memory state is destroyed at [from_t] and rebuilt from its last
   checkpoint at [until_t]. *)
let restart_plan comp ~from_t ~until_t =
  let n = Computation.n comp in
  Fault.make
    ~windows:
      [ Fault.window ~kind:Fault.Restart ~proc:(n + 0) ~from_t ~until_t () ]
    ()

let algos =
  [
    ( "token-vc",
      fun ~fault ~seed comp spec ->
        (Token_vc.detect ~fault ~seed comp spec : Detection.result) );
    ( "token-dd",
      fun ~fault ~seed comp spec -> Token_dd.detect ~fault ~seed comp spec );
    ( "token-multi",
      fun ~fault ~seed comp spec ->
        Token_multi.detect ~fault ~groups:(min 4 (Spec.width spec)) ~seed comp
          spec );
  ]

let project name spec (r : Detection.result) =
  if String.equal name "token-dd" then
    Detection.project_outcome spec r.Detection.outcome
  else r.Detection.outcome

let test_restart_heals_matrix () =
  List.iter
    (fun (params, s) ->
      let comp = Helpers.build_comp params in
      let spec = Spec.all comp in
      let expected = Oracle.first_cut comp spec in
      let fault = restart_plan comp ~from_t:2.0 ~until_t:10.0 in
      let seed = Int64.of_int s in
      List.iter
        (fun (name, run) ->
          Alcotest.check Helpers.outcome
            (Format.asprintf "%s heals %a seed %d" name Computation.pp_summary
               comp s)
            expected
            (project name spec (run ~fault ~seed comp spec)))
        algos)
    [
      ((8, 6, 50, 50, 21), 1);
      ((16, 5, 50, 50, 22), 2);
      ((32, 4, 40, 50, 23), 3);
    ]

(* The restore must actually happen: checkpoint and restore counters
   are live, and the run still matches the oracle. *)
let test_restart_counters () =
  let comp = Helpers.build_comp (8, 6, 50, 50, 21) in
  let spec = Spec.all comp in
  let fault = restart_plan comp ~from_t:1.0 ~until_t:8.0 in
  let r = Token_vc.detect ~fault ~seed:1L comp spec in
  Alcotest.check Helpers.outcome "verdict preserved"
    (Oracle.first_cut comp spec) r.Detection.outcome;
  let st = r.Detection.stats in
  Alcotest.(check bool) "checkpoints taken" true (Stats.checkpoints st > 0);
  Alcotest.(check int) "one restore" 1 (Stats.restores st)

(* Recovery observables stay zero when nobody restarts. *)
let test_no_restart_zero_counters () =
  let comp = Helpers.build_comp (4, 5, 40, 60, 13) in
  let spec = Spec.all comp in
  let r =
    Token_vc.detect ~fault:(Fault.uniform ~seed:7L ~drop:0.2 ()) ~seed:7L comp
      spec
  in
  let st = r.Detection.stats in
  Alcotest.(check int) "no checkpoints" 0 (Stats.checkpoints st);
  Alcotest.(check int) "no restores" 0 (Stats.restores st);
  Alcotest.(check int) "no replay" 0 (Stats.replayed st)

(* Deterministic resume: equal seeds reproduce a restart run bit for
   bit, recovery counters included. *)
let test_restart_deterministic () =
  let comp = Helpers.build_comp (8, 6, 50, 50, 21) in
  let spec = Spec.all comp in
  let run () =
    let fault = restart_plan comp ~from_t:1.5 ~until_t:9.0 in
    let r = Token_dd.detect ~fault ~seed:11L comp spec in
    Format.asprintf "%a | sent=%d retx=%d replayed=%d ckpts=%d restores=%d t=%.9f"
      Detection.pp_outcome r.Detection.outcome
      (Stats.total_sent r.Detection.stats)
      (Stats.total_retransmits r.Detection.stats)
      (Stats.replayed r.Detection.stats)
      (Stats.checkpoints r.Detection.stats)
      (Stats.restores r.Detection.stats)
      r.Detection.sim_time
  in
  Alcotest.(check string) "bit-identical restart run" (run ()) (run ())

let test_ckpt_every_validation () =
  let comp = Helpers.build_comp (3, 3, 50, 50, 1) in
  let spec = Spec.all comp in
  let fault = restart_plan comp ~from_t:1.0 ~until_t:5.0 in
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | (_ : Detection.result) ->
          Alcotest.fail "ckpt_every = 0 must be rejected")
    [
      (fun () -> Token_vc.detect ~fault ~ckpt_every:0 ~seed:1L comp spec);
      (fun () -> Token_dd.detect ~fault ~ckpt_every:0 ~seed:1L comp spec);
      (fun () ->
        Token_multi.detect ~fault ~ckpt_every:0 ~groups:2 ~seed:1L comp spec);
    ]

(* Sparser checkpoints also heal (the transport replays the frames the
   rolled-back state has not consumed). *)
let test_sparse_checkpoints_heal () =
  let comp = Helpers.build_comp (8, 6, 50, 50, 21) in
  let spec = Spec.all comp in
  let expected = Oracle.first_cut comp spec in
  let fault = restart_plan comp ~from_t:2.0 ~until_t:10.0 in
  Alcotest.check Helpers.outcome "vc heals at k=3" expected
    (Token_vc.detect ~fault ~ckpt_every:3 ~seed:1L comp spec).Detection.outcome

(* ------------------------------------------------------------------ *)
(* Recovery soak                                                       *)
(* ------------------------------------------------------------------ *)

(* Seeded crash/restart loop over random computations, windows and
   link chaos. Bounded smoke by default; WCP_RECOVERY_SOAK=1 (the
   [make recovery-soak] target) runs the full sweep. *)
let soak_iters () =
  match Sys.getenv_opt "WCP_RECOVERY_SOAK" with
  | Some ("1" | "true" | "yes") -> 60
  | _ -> 6

let test_recovery_soak () =
  let iters = soak_iters () in
  for i = 1 to iters do
    let params =
      (3 + (i mod 5), 3 + (i mod 6), i * 17 mod 101, 30 + (i * 7 mod 60), 500 + i)
    in
    let comp = Helpers.build_comp params in
    let n = Computation.n comp in
    let spec = Spec.all comp in
    let expected = Oracle.first_cut comp spec in
    let from_t = 0.5 +. float_of_int (i mod 4) in
    let until_t = from_t +. 4.0 +. float_of_int (i mod 5) in
    let windows =
      [ Fault.window ~kind:Fault.Restart ~proc:(n + (i mod n)) ~from_t ~until_t () ]
    in
    let drop = if i mod 2 = 0 then 0.15 else 0.0 in
    let fault =
      Fault.uniform ~seed:(Int64.of_int (97 * i)) ~drop ~windows ()
    in
    let seed = Int64.of_int (31 * i) in
    List.iter
      (fun (name, run) ->
        Alcotest.check Helpers.outcome
          (Format.asprintf "soak %d: %s %a" i name Computation.pp_summary comp)
          expected
          (project name spec (run ~fault ~seed comp spec)))
      algos
  done

let () =
  Alcotest.run "recovery"
    [
      ( "codec",
        [
          codec_roundtrip;
          Alcotest.test_case "malformed streams rejected" `Quick
            test_codec_rejects_malformed;
        ] );
      ( "restart-heals",
        [
          Alcotest.test_case "matrix: vc/dd/multi, n in {8,16,32}" `Quick
            test_restart_heals_matrix;
          Alcotest.test_case "checkpoint/restore counters live" `Quick
            test_restart_counters;
          Alcotest.test_case "restart-free runs stay untouched" `Quick
            test_no_restart_zero_counters;
          Alcotest.test_case "deterministic resume" `Quick
            test_restart_deterministic;
          Alcotest.test_case "ckpt-every validation" `Quick
            test_ckpt_every_validation;
          Alcotest.test_case "sparse checkpoints heal" `Quick
            test_sparse_checkpoints_heal;
        ] );
      ( "soak",
        [ Alcotest.test_case "seeded crash/restart loop" `Quick test_recovery_soak ] );
    ]
