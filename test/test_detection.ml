(* Coverage for the cross-cutting plumbing: Detection outcomes and
   printers, Messages size accounting and printers, Run_common's
   engine layout and FIFO policy, and Spec projection. *)

open Wcp_trace
open Wcp_sim
open Wcp_core

(* ------------------------------------------------------------------ *)
(* Detection                                                           *)
(* ------------------------------------------------------------------ *)

let cut procs states = Cut.make ~procs ~states

let test_outcome_equal () =
  let a = Detection.Detected (cut [| 0; 1 |] [| 1; 2 |]) in
  let b = Detection.Detected (cut [| 0; 1 |] [| 1; 2 |]) in
  let c = Detection.Detected (cut [| 0; 1 |] [| 2; 2 |]) in
  Alcotest.(check bool) "equal" true (Detection.outcome_equal a b);
  Alcotest.(check bool) "different states" false (Detection.outcome_equal a c);
  Alcotest.(check bool) "detected vs none" false
    (Detection.outcome_equal a Detection.No_detection);
  Alcotest.(check bool) "none vs none" true
    (Detection.outcome_equal Detection.No_detection Detection.No_detection)

let test_project_outcome () =
  let comp = Helpers.build_comp (4, 4, 50, 50, 1) in
  let spec = Spec.make comp [| 1; 3 |] in
  let full = Detection.Detected (cut [| 0; 1; 2; 3 |] [| 1; 2; 3; 4 |]) in
  (match Detection.project_outcome spec full with
  | Detection.Detected c ->
      Alcotest.(check string) "projection keeps spec entries" "{1:2 3:4}"
        (Cut.to_string c)
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Alcotest.fail "projection lost the cut");
  (match Detection.project_outcome spec Detection.No_detection with
  | Detection.No_detection -> ()
  | _ -> Alcotest.fail "projection must preserve No_detection");
  (* Projecting a cut that misses a spec process is a programming
     error. *)
  let narrow = Detection.Detected (cut [| 0; 2 |] [| 1; 1 |]) in
  match Detection.project_outcome spec narrow with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing spec process should be rejected"

let test_pp_outcome () =
  Alcotest.(check string) "detected"
    "detected {0:3 2:1}"
    (Format.asprintf "%a" Detection.pp_outcome
       (Detection.Detected (cut [| 0; 2 |] [| 3; 1 |])));
  Alcotest.(check string) "none" "no detection"
    (Format.asprintf "%a" Detection.pp_outcome Detection.No_detection)

let test_pp_result () =
  let comp = Helpers.build_comp (3, 4, 60, 50, 2) in
  let spec = Spec.all comp in
  let r = Token_vc.detect ~seed:2L comp spec in
  let text = Format.asprintf "%a" Detection.pp_result r in
  List.iter
    (fun fragment ->
      if
        not
          (try
             ignore (Str.search_forward (Str.regexp_string fragment) text 0);
             true
           with Not_found -> false)
      then Alcotest.failf "pp_result missing %S in %S" fragment text)
    [ "msgs="; "bits="; "work="; "hops="; "t=" ]

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)
(* ------------------------------------------------------------------ *)

let test_bits_accounting () =
  let check what expect msg =
    Alcotest.(check int) what expect (Messages.bits ~spec_width:3 msg)
  in
  check "app replay: payload + 3-word tag" (32 * 4)
    (Messages.App_msg { msg_id = 0 });
  check "vc snapshot: clock + state" (32 * 4)
    (Messages.Snap_vc { Snapshot.state = 1; clock = [| 1; 0; 0 |] });
  check "dd snapshot: 1 + 2 deps words" (32 * 5)
    (Messages.Snap_dd
       {
         Snapshot.state = 2;
         deps = [ { Wcp_clocks.Dependence.src = 0; clock = 1 };
                  { Wcp_clocks.Dependence.src = 1; clock = 1 } ];
       });
  check "token: G + colors" (32 * 6)
    (Messages.Vc_token
       { seq = 1; g = [| 0; 0; 0 |];
         color = [| Messages.Red; Messages.Red; Messages.Red |] });
  check "empty dd token" 32 (Messages.Dd_token { seq = 1 });
  check "poll: 2 words" 64 (Messages.Poll { clock = 5; next_red = Some 2 });
  check "poll reply: 1 bit" 1 (Messages.Poll_reply { became_red = true });
  check "gcp snapshot: 1 + clock + counts" (32 * 6)
    (Messages.Snap_gcp { state = 1; clock = [| 1; 0; 0 |]; counts = [| 0; 1 |] });
  check "live app data: 2 words + dd tag" (32 * 3)
    (Messages.App_data
       { tag = Messages.Dd_tag { src = 0; clock = 1 }; kind = 0; data = 0 });
  check "live app data: 2 words + vc tag" (32 * 5)
    (Messages.App_data { tag = Messages.Vc_tag [| 1; 2; 3 |]; kind = 0; data = 0 })

let test_messages_pp () =
  let show m = Format.asprintf "%a" Messages.pp m in
  Alcotest.(check string) "app" "app#7" (show (Messages.App_msg { msg_id = 7 }));
  Alcotest.(check string) "snap-vc" "snap-vc@3"
    (show (Messages.Snap_vc { Snapshot.state = 3; clock = [| 3 |] }));
  Alcotest.(check string) "dd token" "dd-token" (show (Messages.Dd_token { seq = 1 }));
  Alcotest.(check string) "poll" "poll(4,2)"
    (show (Messages.Poll { clock = 4; next_red = Some 2 }));
  Alcotest.(check string) "poll end" "poll(4,-)"
    (show (Messages.Poll { clock = 4; next_red = None }));
  Alcotest.(check string) "token"
    "token[1G 0R]"
    (show
       (Messages.Vc_token
          { seq = 1; g = [| 1; 0 |];
            color = [| Messages.Green; Messages.Red |] }))

(* ------------------------------------------------------------------ *)
(* Run_common                                                          *)
(* ------------------------------------------------------------------ *)

let test_layout () =
  Alcotest.(check int) "monitor of 3 in n=5" 8 (Run_common.monitor_of ~n:5 3);
  Alcotest.(check int) "extra id" 10 (Run_common.extra_id ~n:5)

let test_default_network_fifo () =
  let n = 4 in
  let nw = Run_common.default_network ~n in
  let rng = Wcp_util.Rng.create 7L in
  (* app -> own monitor is FIFO: delivery times never regress. *)
  let last = ref neg_infinity in
  for i = 0 to 49 do
    let at =
      Network.delivery_time nw rng ~src:1
        ~dst:(Run_common.monitor_of ~n 1)
        ~now:(float_of_int i *. 0.01)
    in
    if at < !last then Alcotest.fail "app->monitor link must be FIFO";
    last := at
  done;
  (* monitor -> monitor is not FIFO: reordering must eventually occur. *)
  let last = ref neg_infinity in
  let reordered = ref false in
  for _ = 1 to 200 do
    let at =
      Network.delivery_time nw rng
        ~src:(Run_common.monitor_of ~n 0)
        ~dst:(Run_common.monitor_of ~n 1)
        ~now:0.0
    in
    if at < !last then reordered := true;
    last := at
  done;
  Alcotest.(check bool) "monitor links may reorder" true !reordered

let test_finish_requires_outcome () =
  let engine = Run_common.make_engine_n ~seed:1L ~n:2 () in
  match Run_common.finish engine ~outcome:(ref None) ~extras:Detection.no_extras with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "finish without an outcome must fail loudly"

(* ------------------------------------------------------------------ *)
(* Cross-algorithm agreement                                           *)
(* ------------------------------------------------------------------ *)

(* The detectors implement the same problem with very different
   machinery (Fig. 3 token, §3.5 multi-token, §4 direct-dependence
   token, Garg–Waldecker checker, domain-parallel rounds). On any
   random computation they must all agree with the oracle — and
   therefore with each other — on the outcome. *)
let all_outcomes ~seed comp =
  let spec = Spec.all comp in
  [
    ("token-vc", (Token_vc.detect ~seed comp spec).Detection.outcome);
    ( "token-multi",
      let groups = min 2 (Spec.width spec) in
      (Token_multi.detect ~groups ~seed comp spec).Detection.outcome );
    ( "token-dd",
      Detection.project_outcome spec
        (Token_dd.detect ~seed comp spec).Detection.outcome );
    ("checker", (Checker_centralized.detect ~seed comp spec).Detection.outcome);
    ("parallel", (Checker_parallel.detect ~seed comp spec).Detection.outcome);
  ]

let prop_algorithms_agree =
  Helpers.qtest ~count:60
    "vc, multi, dd, checker and parallel all match the oracle"
    Helpers.gen_medium_comp (fun comp ->
      let expected = Oracle.first_cut comp (Spec.all comp) in
      List.for_all
        (fun (name, got) ->
          Detection.outcome_equal expected got
          || QCheck2.Test.fail_reportf "%s disagrees with the oracle: %a vs %a"
               name Detection.pp_outcome got Detection.pp_outcome expected)
        (all_outcomes ~seed:7L comp))

(* The parallel checker's determinism contract: dense or sliced, at
   any domain count, the outcome is the oracle's least cut — and the
   cuts across domain counts are byte-identical (E18 pins the same
   property at bench scale). *)
let prop_parallel_checker_agrees =
  Helpers.qtest ~count:40
    "checker_parallel matches the oracle (dense and sliced, domains 1/2/4)"
    Helpers.gen_medium_comp (fun comp ->
      let spec = Spec.all comp in
      let expected = Oracle.first_cut comp spec in
      List.for_all
        (fun slice ->
          let outcomes =
            List.map
              (fun domains ->
                (Checker_parallel.detect
                   ~options:(Detection.options ~slice ())
                   ~domains ~seed:7L comp spec)
                  .Detection.outcome)
              [ 1; 2; 4 ]
          in
          List.for_all
            (fun got ->
              Detection.outcome_equal expected got
              || QCheck2.Test.fail_reportf
                   "parallel (slice=%b) disagrees with the oracle: %a vs %a"
                   slice Detection.pp_outcome got Detection.pp_outcome expected)
            outcomes
          (* Detected cuts must also be *identical*, not merely
             equivalent, across domain counts. *)
          && match outcomes with
             | o :: rest ->
                 List.for_all
                   (fun o' ->
                     Format.asprintf "%a" Detection.pp_outcome o'
                     = Format.asprintf "%a" Detection.pp_outcome o)
                   rest
             | [] -> true)
        [ false; true ])

(* Degenerate inputs must not crash and must still match the oracle:
   one process, an empty computation (no sends, no local states beyond
   the initial one), all-false and all-true predicates. *)
let test_parallel_checker_degenerate () =
  let build ~n ~sends ~pred_pct ~seed =
    Generator.random
      ~params:
        {
          Generator.n;
          sends_per_process = sends;
          p_pred = float_of_int pred_pct /. 100.;
          p_recv = 0.5;
        }
      ~seed:(Int64.of_int seed) ()
  in
  List.iter
    (fun (what, comp) ->
      let spec = Spec.all comp in
      let expected = Oracle.first_cut comp spec in
      List.iter
        (fun domains ->
          let r = Checker_parallel.detect ~domains ~seed:1L comp spec in
          Alcotest.check Helpers.outcome
            (Printf.sprintf "%s (domains=%d)" what domains)
            expected r.Detection.outcome)
        [ 1; 2; 4 ])
    [
      ("n=1", build ~n:1 ~sends:0 ~pred_pct:100 ~seed:3);
      ("empty computation", build ~n:3 ~sends:0 ~pred_pct:0 ~seed:4);
      ("all-false predicate", build ~n:4 ~sends:6 ~pred_pct:0 ~seed:5);
      ("all-true predicate", build ~n:4 ~sends:6 ~pred_pct:100 ~seed:6);
    ]

(* Bench anomaly, pinned: at n=32, seed=2 the E1 token-vc row detects
   while the E2 checker row reports "none". That is parameter skew, not
   an algorithm bug — E1 runs m=20 sends per process, E2 runs m=16. On
   each computation every algorithm agrees with the oracle, and only
   the extra sends of the m=20 trace make the predicate detectable. *)
let test_e2_anomaly_is_parameter_skew () =
  let comp_of ~m =
    Generator.random
      ~params:
        { Generator.n = 32; sends_per_process = m; p_pred = 0.3; p_recv = 0.5 }
      ~seed:2L ()
  in
  let agree_on what comp =
    let expected = Oracle.first_cut comp (Spec.all comp) in
    List.iter
      (fun (name, got) ->
        Alcotest.check Helpers.outcome
          (Printf.sprintf "%s: %s vs oracle" what name)
          expected got)
      (all_outcomes ~seed:2L comp);
    expected
  in
  (* E2's parameters: everyone, oracle included, says "none". *)
  (match agree_on "m=16 (E2)" (comp_of ~m:16) with
  | Detection.No_detection -> ()
  | o ->
      Alcotest.failf "m=16 must be a genuine no-detection, got %a"
        Detection.pp_outcome o);
  (* E1's parameters: the same generator seed detects. The two bench
     rows differ by [m] alone. *)
  match agree_on "m=20 (E1)" (comp_of ~m:20) with
  | Detection.Detected _ -> ()
  | o -> Alcotest.failf "m=20 must detect, got %a" Detection.pp_outcome o

let () =
  Alcotest.run "detection"
    [
      ( "outcomes",
        [
          Alcotest.test_case "outcome_equal" `Quick test_outcome_equal;
          Alcotest.test_case "project_outcome" `Quick test_project_outcome;
          Alcotest.test_case "pp_outcome" `Quick test_pp_outcome;
          Alcotest.test_case "pp_result" `Quick test_pp_result;
        ] );
      ( "messages",
        [
          Alcotest.test_case "bits accounting" `Quick test_bits_accounting;
          Alcotest.test_case "pp" `Quick test_messages_pp;
        ] );
      ( "agreement",
        [
          prop_algorithms_agree;
          prop_parallel_checker_agrees;
          Alcotest.test_case "parallel checker: degenerate inputs" `Quick
            test_parallel_checker_degenerate;
          Alcotest.test_case "E2 n=32 seed=2 anomaly is parameter skew"
            `Quick test_e2_anomaly_is_parameter_skew;
        ] );
      ( "run-common",
        [
          Alcotest.test_case "id layout" `Quick test_layout;
          Alcotest.test_case "default network fifo policy" `Quick
            test_default_network_fifo;
          Alcotest.test_case "finish requires outcome" `Quick
            test_finish_requires_outcome;
        ] );
    ]
