(* Larger-scale soak runs: the same invariants as the unit suites, at
   sizes where bookkeeping bugs (queue growth, chain corruption,
   quadratic blow-ups hiding behind small constants) would surface.
   Marked [`Slow]; still seconds, not minutes. *)

open Wcp_trace
open Wcp_sim
open Wcp_core

let big_comp ~n ~m ~p_pred ~seed =
  Generator.random
    ~params:{ Generator.n; sends_per_process = m; p_pred; p_recv = 0.5 }
    ~seed ()

let test_large_agreement () =
  List.iter
    (fun seed ->
      let comp = big_comp ~n:30 ~m:30 ~p_pred:0.2 ~seed in
      let rng = Wcp_util.Rng.create seed in
      let procs = Generator.random_procs rng ~n:30 ~width:10 in
      let spec = Spec.make comp procs in
      let expected = Oracle.first_cut comp spec in
      let check name o =
        if not (Detection.outcome_equal o expected) then
          Alcotest.failf "%s mismatch at seed %Ld" name seed
      in
      check "vc" (Token_vc.detect ~invariant_checks:true ~seed comp spec).outcome;
      check "checker" (Checker_centralized.detect ~seed comp spec).outcome;
      check "multi"
        (Token_multi.detect ~groups:4 ~seed comp spec).outcome;
      check "dd"
        (Detection.project_outcome spec
           (Token_dd.detect ~invariant_checks:true ~seed comp spec).outcome);
      check "dd-par"
        (Detection.project_outcome spec
           (Token_dd.detect ~parallel:true ~seed comp spec).outcome))
    [ 1L; 2L; 3L ]

let test_large_dd_per_process_bounds () =
  (* O(m) per process must survive N = 80. *)
  let comp = big_comp ~n:80 ~m:15 ~p_pred:0.1 ~seed:9L in
  let spec = Spec.make comp [| 0; 40 |] in
  let r = Token_dd.detect ~seed:9L comp spec in
  let m = Computation.max_events_per_process comp in
  for p = 0 to 79 do
    let mon = Run_common.monitor_of ~n:80 p in
    if Stats.work_of r.stats mon > (3 * m) + 3 then
      Alcotest.failf "monitor %d work %d exceeds O(m)" p
        (Stats.work_of r.stats mon)
  done;
  Alcotest.check Helpers.outcome "agrees with oracle"
    (Oracle.first_cut comp spec)
    (Detection.project_outcome spec r.outcome)

let test_long_live_runs () =
  List.iter
    (fun mode ->
      for s = 1 to 3 do
        let seed = Int64.of_int (1000 + s) in
        let r = Live_mutex.run ~p_bug:0.3 ~mode ~clients:6 ~rounds:8 ~seed () in
        let spec = Spec.make r.Live_mutex.recorded r.Live_mutex.wcp_procs in
        let online =
          match mode with
          | Instrument.Vc -> r.Live_mutex.online
          | Instrument.Dd ->
              Detection.project_outcome spec r.Live_mutex.online
        in
        if
          not
            (Detection.outcome_equal online
               (Oracle.first_cut r.Live_mutex.recorded spec))
        then Alcotest.failf "live mismatch seed %Ld" seed
      done)
    [ Instrument.Vc; Instrument.Dd ]

let test_large_lowerbound () =
  let n = 64 and m = 64 in
  let world, _ = Wcp_lowerbound.Adversary.make ~n ~m in
  let answer, trace = Wcp_lowerbound.Detector.run world in
  Alcotest.(check bool) "no antichain" true
    (answer = Wcp_lowerbound.Detector.No_antichain);
  Alcotest.(check int) "forced deletions" ((n * m) - n + 1)
    trace.Wcp_lowerbound.Detector.deletions

let test_engine_throughput () =
  (* 200k-event ping-pong: the heap and dispatcher must stay sane. *)
  let e = Engine.create ~max_events:500_000 ~num_processes:2 ~seed:3L () in
  let count = ref 0 in
  let handler ctx ~src:_ () =
    incr count;
    if !count < 200_000 then Engine.send ctx ~dst:(1 - Engine.self ctx) ()
  in
  Engine.set_handler e 0 handler;
  Engine.set_handler e 1 handler;
  Engine.schedule_initial e ~proc:0 ~at:0.0 (fun ctx -> Engine.send ctx ~dst:1 ());
  Engine.run e;
  Alcotest.(check int) "all events processed" 200_000 !count

let test_large_gcp_equivalence () =
  let comp = big_comp ~n:10 ~m:15 ~p_pred:0.3 ~seed:4L in
  let spec = Spec.all comp in
  let channels =
    [ Gcp.empty ~src:0 ~dst:1; Gcp.at_most 2 ~src:2 ~dst:3; Gcp.at_least 1 ~src:4 ~dst:5 ]
  in
  let offline = Gcp.detect comp spec ~channels in
  let online = Checker_gcp.detect ~seed:4L ~channels comp spec in
  Alcotest.check Helpers.outcome "online = offline at scale" offline
    online.Detection.outcome

(* Chaos soak: the token algorithms against the oracle across a matrix
   of drop rates and seeds. The bounded smoke always runs inside
   `dune runtest`; the full matrix (make chaos-soak) is gated behind
   WCP_CHAOS_SOAK=1. *)
let chaos_matrix ~sizes ~drops ~seeds =
  List.iter
    (fun (n, m) ->
      List.iter
        (fun drop ->
          List.iter
            (fun s ->
              let seed = Int64.of_int s in
              let comp = big_comp ~n ~m ~p_pred:0.2 ~seed in
              let spec = Spec.all comp in
              let fault =
                Fault.uniform ~seed ~drop ~dup:(drop /. 2.0) ~spike_p:0.1
                  ~spike_mean:3.0 ()
              in
              let expected = Oracle.first_cut comp spec in
              let fail name =
                Alcotest.failf "%s mismatch: n=%d m=%d drop=%.2f seed=%d" name
                  n m drop s
              in
              if
                not
                  (Detection.outcome_equal expected
                     (Token_vc.detect ~fault ~seed comp spec).outcome)
              then fail "vc";
              if
                not
                  (Detection.outcome_equal expected
                     (Detection.project_outcome spec
                        (Token_dd.detect ~fault ~seed comp spec).outcome))
              then fail "dd")
            seeds)
        drops)
    sizes

let test_chaos_smoke () =
  chaos_matrix ~sizes:[ (6, 8) ] ~drops:[ 0.2 ] ~seeds:[ 1; 2 ]

let test_chaos_soak () =
  if Sys.getenv_opt "WCP_CHAOS_SOAK" = None then ()
  else
    chaos_matrix
      ~sizes:[ (6, 10); (10, 12); (16, 10) ]
      ~drops:[ 0.1; 0.2; 0.3 ]
      ~seeds:[ 1; 2; 3; 4; 5 ]

let () =
  Alcotest.run "soak"
    [
      ( "scale",
        [
          Alcotest.test_case "30-process agreement" `Slow test_large_agreement;
          Alcotest.test_case "80-process dd O(m) bounds" `Slow
            test_large_dd_per_process_bounds;
          Alcotest.test_case "long live runs" `Slow test_long_live_runs;
          Alcotest.test_case "64x64 lower bound" `Slow test_large_lowerbound;
          Alcotest.test_case "engine throughput" `Slow test_engine_throughput;
          Alcotest.test_case "gcp equivalence at scale" `Slow
            test_large_gcp_equivalence;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "chaos smoke" `Slow test_chaos_smoke;
          Alcotest.test_case "chaos matrix (WCP_CHAOS_SOAK=1)" `Slow
            test_chaos_soak;
        ] );
    ]
