open Wcp_clocks

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let vc = Alcotest.testable Vector_clock.pp Vector_clock.equal

(* ------------------------------------------------------------------ *)
(* Vector clocks                                                       *)
(* ------------------------------------------------------------------ *)

let test_make () =
  let v = Vector_clock.make ~n:3 ~owner:1 in
  Alcotest.(check (array int)) "initial" [| 0; 1; 0 |] (Vector_clock.to_array v)

let test_tick () =
  let v = Vector_clock.make ~n:2 ~owner:0 in
  let v' = Vector_clock.tick v ~owner:0 in
  Alcotest.(check int) "ticked" 2 (Vector_clock.get v' 0);
  Alcotest.(check int) "original untouched" 1 (Vector_clock.get v 0)

let test_merge () =
  let a = Vector_clock.of_array [| 3; 0; 5 |] in
  let b = Vector_clock.of_array [| 1; 4; 5 |] in
  Alcotest.check vc "pointwise max"
    (Vector_clock.of_array [| 3; 4; 5 |])
    (Vector_clock.merge a b)

let test_receive_rule () =
  (* Fig. 2: merge then tick own component. *)
  let mine = Vector_clock.of_array [| 2; 1; 0 |] in
  let msg = Vector_clock.of_array [| 1; 3; 4 |] in
  Alcotest.check vc "receive"
    (Vector_clock.of_array [| 3; 3; 4 |])
    (Vector_clock.receive mine ~owner:0 ~msg)

let test_relations () =
  let a = Vector_clock.of_array [| 1; 2 |] in
  let b = Vector_clock.of_array [| 2; 2 |] in
  let c = Vector_clock.of_array [| 0; 3 |] in
  Alcotest.(check bool) "a < b" true (Vector_clock.lt a b);
  Alcotest.(check bool) "not b < a" false (Vector_clock.lt b a);
  Alcotest.(check bool) "b || c" true (Vector_clock.concurrent b c);
  Alcotest.(check bool) "a equal a" true (Vector_clock.equal a a);
  (match Vector_clock.relation a b with
  | Vector_clock.Before -> ()
  | _ -> Alcotest.fail "expected Before");
  (match Vector_clock.relation b a with
  | Vector_clock.After -> ()
  | _ -> Alcotest.fail "expected After");
  (match Vector_clock.relation b c with
  | Vector_clock.Concurrent -> ()
  | _ -> Alcotest.fail "expected Concurrent");
  match Vector_clock.relation a a with
  | Vector_clock.Equal -> ()
  | _ -> Alcotest.fail "expected Equal"

let test_of_array_copies () =
  let raw = [| 1; 2 |] in
  let v = Vector_clock.of_array raw in
  raw.(0) <- 99;
  Alcotest.(check int) "decoupled from source" 1 (Vector_clock.get v 0)

let test_pp () =
  Alcotest.(check string) "pp" "[1,0,3]"
    (Vector_clock.to_string (Vector_clock.of_array [| 1; 0; 3 |]))

let gen_vc n = QCheck2.Gen.(array_size (pure n) (int_range 0 20))

let prop_relation_exclusive =
  qtest "exactly one relation holds"
    QCheck2.Gen.(pair (gen_vc 4) (gen_vc 4))
    (fun (a, b) ->
      let a = Vector_clock.of_array a and b = Vector_clock.of_array b in
      let cases =
        [
          Vector_clock.relation a b = Vector_clock.Before;
          Vector_clock.relation a b = Vector_clock.After;
          Vector_clock.relation a b = Vector_clock.Concurrent;
          Vector_clock.relation a b = Vector_clock.Equal;
        ]
      in
      List.length (List.filter Fun.id cases) = 1)

let prop_relation_antisymmetric =
  qtest "Before/After are mirror images"
    QCheck2.Gen.(pair (gen_vc 4) (gen_vc 4))
    (fun (a, b) ->
      let a = Vector_clock.of_array a and b = Vector_clock.of_array b in
      match (Vector_clock.relation a b, Vector_clock.relation b a) with
      | Vector_clock.Before, Vector_clock.After
      | Vector_clock.After, Vector_clock.Before
      | Vector_clock.Concurrent, Vector_clock.Concurrent
      | Vector_clock.Equal, Vector_clock.Equal -> true
      | _ -> false)

let prop_merge_upper_bound =
  qtest "merge dominates both arguments"
    QCheck2.Gen.(pair (gen_vc 5) (gen_vc 5))
    (fun (a, b) ->
      let a = Vector_clock.of_array a and b = Vector_clock.of_array b in
      let m = Vector_clock.merge a b in
      Vector_clock.leq a m && Vector_clock.leq b m)

let prop_merge_least =
  qtest "merge is the least upper bound"
    QCheck2.Gen.(triple (gen_vc 4) (gen_vc 4) (gen_vc 4))
    (fun (a, b, c) ->
      let a = Vector_clock.of_array a
      and b = Vector_clock.of_array b
      and c = Vector_clock.of_array c in
      let m = Vector_clock.merge a b in
      if Vector_clock.leq a c && Vector_clock.leq b c then
        Vector_clock.leq m c
      else true)

let prop_tick_strictly_increases =
  qtest "tick strictly increases" (gen_vc 4) (fun a ->
      let a = Vector_clock.of_array a in
      Vector_clock.lt a (Vector_clock.tick a ~owner:2))

(* The in-place operations must agree with their pure counterparts on
   arbitrary clocks — they are the engine-room versions the replay and
   token algorithms rely on. *)
let prop_tick_into_agrees =
  qtest "tick_into = tick"
    QCheck2.Gen.(pair (gen_vc 5) (int_range 0 4))
    (fun (a, owner) ->
      let pure = Vector_clock.tick (Vector_clock.of_array a) ~owner in
      let inplace = Vector_clock.copy (Vector_clock.of_array a) in
      Vector_clock.tick_into inplace ~owner;
      Vector_clock.equal pure inplace)

let prop_merge_into_agrees =
  qtest "merge_into = merge"
    QCheck2.Gen.(pair (gen_vc 5) (gen_vc 5))
    (fun (a, b) ->
      let a = Vector_clock.of_array a and b = Vector_clock.of_array b in
      let pure = Vector_clock.merge a b in
      let into = Vector_clock.copy a in
      Vector_clock.merge_into ~into b;
      (* [b] must be untouched and the merge exact. *)
      Vector_clock.equal pure into
      && Vector_clock.equal b (Vector_clock.of_array (Vector_clock.to_array b)))

let prop_copy_independent =
  qtest "copy is independent of the original" (gen_vc 5) (fun a ->
      let orig = Vector_clock.of_array a in
      let snapshot = Vector_clock.to_array orig in
      let c = Vector_clock.copy orig in
      Vector_clock.tick_into c ~owner:0;
      Vector_clock.merge_into ~into:c orig;
      snapshot = Vector_clock.to_array orig)

(* ------------------------------------------------------------------ *)
(* Delta encoding (the wire codec of Wcp_core.Wire)                    *)
(* ------------------------------------------------------------------ *)

let prop_delta_roundtrip =
  qtest "decode_delta (encode_delta base v) = v"
    QCheck2.Gen.(pair (gen_vc 6) (gen_vc 6))
    (fun (base, v) ->
      Vector_clock.decode_delta ~base (Vector_clock.encode_delta ~base v) = v)

let prop_delta_minimal =
  qtest "delta lists exactly the changed components"
    QCheck2.Gen.(pair (gen_vc 6) (gen_vc 6))
    (fun (base, v) ->
      let delta = Vector_clock.encode_delta ~base v in
      let changed = ref 0 in
      Array.iteri (fun i x -> if x <> base.(i) then incr changed) v;
      Vector_clock.delta_pairs delta = !changed
      (* ... and each pair records the absolute new value. *)
      && Array.length delta mod 2 = 0
      &&
      let ok = ref true in
      Array.iteri
        (fun k x -> if k land 1 = 1 && v.(delta.(k - 1)) <> x then ok := false)
        delta;
      !ok)

let prop_delta_idempotent =
  (* Absolute values make decoding a duplicate (a regenerated token, a
     retransmitted frame) a no-op: applying the same delta twice equals
     applying it once. *)
  qtest "decode is idempotent"
    QCheck2.Gen.(pair (gen_vc 6) (gen_vc 6))
    (fun (base, v) ->
      let delta = Vector_clock.encode_delta ~base v in
      let once = Vector_clock.decode_delta ~base delta in
      Vector_clock.decode_delta ~base:once delta = once)

let test_delta_rejects_garbage () =
  let base = [| 0; 0; 0 |] in
  List.iter
    (fun (name, delta) ->
      match Vector_clock.decode_delta ~base delta with
      | _ -> Alcotest.failf "%s accepted" name
      | exception Invalid_argument _ -> ())
    [
      ("odd length", [| 1; 2; 3 |]);
      ("index out of range", [| 3; 7 |]);
      ("negative index", [| -1; 7 |]);
    ]

(* ------------------------------------------------------------------ *)
(* Dependence accumulator                                              *)
(* ------------------------------------------------------------------ *)

let test_acc_order () =
  let acc = Dependence.create_accumulator () in
  Dependence.record acc { Dependence.src = 1; clock = 5 };
  Dependence.record acc { Dependence.src = 2; clock = 3 };
  Alcotest.(check int) "count" 2 (Dependence.count acc);
  let got = Dependence.drain acc in
  Alcotest.(check (list (pair int int)))
    "arrival order"
    [ (1, 5); (2, 3) ]
    (List.map (fun d -> (d.Dependence.src, d.Dependence.clock)) got);
  Alcotest.(check int) "reset" 0 (Dependence.count acc);
  Alcotest.(check (list reject)) "empty after drain" [] (Dependence.drain acc)

let test_acc_peek () =
  let acc = Dependence.create_accumulator () in
  Dependence.record acc { Dependence.src = 0; clock = 1 };
  ignore (Dependence.peek acc);
  Alcotest.(check int) "peek keeps contents" 1 (Dependence.count acc)

let test_dep_compare () =
  let a = { Dependence.src = 1; clock = 2 } in
  let b = { Dependence.src = 1; clock = 3 } in
  Alcotest.(check bool) "equal refl" true (Dependence.equal a a);
  Alcotest.(check bool) "not equal" false (Dependence.equal a b);
  Alcotest.(check bool) "ordered" true (Dependence.compare a b < 0)

let () =
  Alcotest.run "clocks"
    [
      ( "vector-clock",
        [
          Alcotest.test_case "make" `Quick test_make;
          Alcotest.test_case "tick" `Quick test_tick;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "receive rule" `Quick test_receive_rule;
          Alcotest.test_case "relations" `Quick test_relations;
          Alcotest.test_case "of_array copies" `Quick test_of_array_copies;
          Alcotest.test_case "pp" `Quick test_pp;
          prop_relation_exclusive;
          prop_relation_antisymmetric;
          prop_merge_upper_bound;
          prop_merge_least;
          prop_tick_strictly_increases;
          prop_tick_into_agrees;
          prop_merge_into_agrees;
          prop_copy_independent;
          prop_delta_roundtrip;
          prop_delta_minimal;
          prop_delta_idempotent;
          Alcotest.test_case "delta rejects garbage" `Quick
            test_delta_rejects_garbage;
        ] );
      ( "dependence",
        [
          Alcotest.test_case "accumulator order" `Quick test_acc_order;
          Alcotest.test_case "peek" `Quick test_acc_peek;
          Alcotest.test_case "compare" `Quick test_dep_compare;
        ] );
    ]
