open Wcp_trace
open Wcp_sim
open Wcp_core

let qtest = Helpers.qtest

let gen_with_spec =
  QCheck2.Gen.(
    pair (Helpers.gen_comp_params ~max_n:6 ~max_sends:10) (int_range 0 10_000))

let make (params, sseed) =
  let comp = Helpers.build_comp params in
  let rng = Wcp_util.Rng.create (Int64.of_int sseed) in
  let width = 1 + Wcp_util.Rng.int rng (Computation.n comp) in
  let procs = Generator.random_procs rng ~n:(Computation.n comp) ~width in
  (comp, Spec.make comp procs, Int64.of_int sseed)

(* ------------------------------------------------------------------ *)
(* Centralized checker                                                 *)
(* ------------------------------------------------------------------ *)

let prop_checker_agreement =
  qtest ~count:250 "checker finds the oracle's first cut" gen_with_spec
    (fun input ->
      let comp, spec, seed = make input in
      let r = Checker_centralized.detect ~seed comp spec in
      Detection.outcome_equal r.outcome (Oracle.first_cut comp spec))

let prop_checker_centralizes_cost =
  qtest ~count:100 "all detection work and space land on the checker"
    gen_with_spec (fun input ->
      let comp, spec, seed = make input in
      let r = Checker_centralized.detect ~seed comp spec in
      let n = Computation.n comp in
      let ok = ref true in
      for p = 0 to n - 1 do
        let mon = Run_common.monitor_of ~n p in
        if Stats.work_of r.stats mon <> 0 then ok := false;
        if Stats.space_high_water r.stats mon <> 0 then ok := false
      done;
      !ok)

let prop_checker_space_bound =
  qtest ~count:100 "checker space within O(n²m) words" gen_with_spec
    (fun input ->
      let comp, spec, seed = make input in
      let r = Checker_centralized.detect ~seed comp spec in
      let n = Computation.n comp in
      let width = Spec.width spec in
      let m = Computation.max_events_per_process comp in
      Stats.space_high_water r.stats (Run_common.extra_id ~n)
      <= width * (m + 1) * (width + 1))

let prop_checker_determinism =
  qtest ~count:40 "identical seeds give identical runs" gen_with_spec
    (fun input ->
      let comp, spec, seed = make input in
      let a = Checker_centralized.detect ~seed comp spec in
      let b = Checker_centralized.detect ~seed comp spec in
      Detection.outcome_equal a.outcome b.outcome
      && a.sim_time = b.sim_time && a.events = b.events)

let test_checker_edge_cases () =
  let never = Helpers.build_comp (4, 6, 0, 50, 1) in
  let r = Checker_centralized.detect ~seed:1L never (Spec.all never) in
  Alcotest.check Helpers.outcome "never true" Detection.No_detection r.outcome;
  let always = Helpers.build_comp (4, 6, 100, 50, 2) in
  match (Checker_centralized.detect ~seed:2L always (Spec.all always)).outcome with
  | Detection.Detected cut ->
      Alcotest.(check string) "always true" "{0:1 1:1 2:1 3:1}"
        (Cut.to_string cut)
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Alcotest.fail "expected detection"

let test_checker_workloads () =
  List.iter
    (fun w ->
      let spec = Spec.make w.Workloads.comp w.Workloads.procs in
      let r = Checker_centralized.detect ~seed:5L w.Workloads.comp spec in
      Alcotest.check Helpers.outcome w.Workloads.name
        (Oracle.first_cut w.Workloads.comp spec)
        r.outcome)
    (Workloads.all ~seed:777L)

(* ------------------------------------------------------------------ *)
(* Multi-token                                                         *)
(* ------------------------------------------------------------------ *)

let prop_multi_agreement_all_group_counts =
  qtest ~count:120 "multi-token agrees with the oracle for every g"
    gen_with_spec (fun input ->
      let comp, spec, seed = make input in
      let expected = Oracle.first_cut comp spec in
      let width = Spec.width spec in
      List.for_all
        (fun groups ->
          let r = Token_multi.detect ~groups ~seed comp spec in
          Detection.outcome_equal r.outcome expected)
        (List.filter (fun g -> g <= width) [ 1; 2; 3; width ]))

let prop_multi_assignment_agnostic =
  qtest ~count:80 "round-robin and block assignments agree" gen_with_spec
    (fun input ->
      let comp, spec, seed = make input in
      let expected = Oracle.first_cut comp spec in
      let groups = min 3 (Spec.width spec) in
      List.for_all
        (fun assignment ->
          let r = Token_multi.detect ~assignment ~groups ~seed comp spec in
          Detection.outcome_equal r.outcome expected)
        [ Token_multi.Round_robin; Token_multi.Blocks ])

let prop_multi_merges_counted =
  qtest ~count:60 "at least one merge round happens" gen_with_spec
    (fun input ->
      let comp, spec, seed = make input in
      let groups = min 2 (Spec.width spec) in
      let r = Token_multi.detect ~groups ~seed comp spec in
      r.extras.merges >= 1)

let prop_multi_determinism =
  qtest ~count:40 "identical seeds give identical runs" gen_with_spec
    (fun input ->
      let comp, spec, seed = make input in
      let groups = min 3 (Spec.width spec) in
      let a = Token_multi.detect ~groups ~seed comp spec in
      let b = Token_multi.detect ~groups ~seed comp spec in
      Detection.outcome_equal a.outcome b.outcome
      && a.sim_time = b.sim_time && a.extras.token_hops = b.extras.token_hops)

let test_multi_group_bounds () =
  let comp = Helpers.build_comp (4, 6, 50, 50, 3) in
  let spec = Spec.all comp in
  (match Token_multi.detect ~groups:0 ~seed:1L comp spec with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "groups=0 should be rejected");
  match Token_multi.detect ~groups:5 ~seed:1L comp spec with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "groups>width should be rejected"

let test_multi_edge_cases () =
  let never = Helpers.build_comp (4, 6, 0, 50, 1) in
  let r = Token_multi.detect ~groups:2 ~seed:1L never (Spec.all never) in
  Alcotest.check Helpers.outcome "never true" Detection.No_detection r.outcome;
  let always = Helpers.build_comp (4, 6, 100, 50, 2) in
  match
    (Token_multi.detect ~groups:4 ~seed:2L always (Spec.all always)).outcome
  with
  | Detection.Detected cut ->
      Alcotest.(check string) "always true, one group per monitor"
        "{0:1 1:1 2:1 3:1}" (Cut.to_string cut)
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Alcotest.fail "expected detection"

let test_multi_workloads () =
  List.iter
    (fun w ->
      let spec = Spec.make w.Workloads.comp w.Workloads.procs in
      let groups = min 2 (Spec.width spec) in
      let r = Token_multi.detect ~groups ~seed:5L w.Workloads.comp spec in
      Alcotest.check Helpers.outcome w.Workloads.name
        (Oracle.first_cut w.Workloads.comp spec)
        r.outcome)
    (Workloads.all ~seed:999L)

(* ------------------------------------------------------------------ *)
(* Cross-algorithm: all five find the same answer                       *)
(* ------------------------------------------------------------------ *)

let prop_all_algorithms_agree =
  qtest ~count:120 "all five detectors return the same first cut"
    gen_with_spec (fun input ->
      let comp, spec, seed = make input in
      let expected = Oracle.first_cut comp spec in
      let outcomes =
        [
          (Token_vc.detect ~seed comp spec).outcome;
          (Checker_centralized.detect ~seed comp spec).outcome;
          (Token_multi.detect ~groups:(min 2 (Spec.width spec)) ~seed comp spec)
            .outcome;
          Detection.project_outcome spec
            (Token_dd.detect ~seed comp spec).outcome;
          Detection.project_outcome spec
            (Token_dd.detect ~parallel:true ~seed comp spec).outcome;
        ]
      in
      List.for_all (Detection.outcome_equal expected) outcomes)

let () =
  Alcotest.run "checker_multi"
    [
      ( "checker",
        [
          prop_checker_agreement;
          prop_checker_centralizes_cost;
          prop_checker_space_bound;
          prop_checker_determinism;
          Alcotest.test_case "edge cases" `Quick test_checker_edge_cases;
          Alcotest.test_case "workloads" `Quick test_checker_workloads;
        ] );
      ( "multi-token",
        [
          prop_multi_agreement_all_group_counts;
          prop_multi_assignment_agnostic;
          prop_multi_merges_counted;
          prop_multi_determinism;
          Alcotest.test_case "group bounds" `Quick test_multi_group_bounds;
          Alcotest.test_case "edge cases" `Quick test_multi_edge_cases;
          Alcotest.test_case "workloads" `Quick test_multi_workloads;
        ] );
      ("cross-algorithm", [ prop_all_algorithms_agree ]);
    ]
