open Wcp_trace
open Wcp_core

let qtest = Helpers.qtest

(* ------------------------------------------------------------------ *)
(* Random generator                                                    *)
(* ------------------------------------------------------------------ *)

let test_determinism () =
  let mk () = Generator.random ~seed:77L () in
  Alcotest.(check string) "same seed, same computation"
    (Trace_codec.encode (mk ()))
    (Trace_codec.encode (mk ()))

let test_seed_changes_output () =
  let a = Trace_codec.encode (Generator.random ~seed:1L ()) in
  let b = Trace_codec.encode (Generator.random ~seed:2L ()) in
  Alcotest.(check bool) "different seeds differ" true (a <> b)

let test_send_counts () =
  let params =
    { Generator.n = 5; sends_per_process = 7; p_pred = 0.5; p_recv = 0.5 }
  in
  let comp = Generator.random ~params ~seed:5L () in
  Alcotest.(check int) "n" 5 (Computation.n comp);
  Alcotest.(check int) "total messages" 35
    (Array.length (Computation.messages comp));
  for p = 0 to 4 do
    let sends =
      List.length
        (List.filter
           (function Computation.Send _ -> true | _ -> false)
           (Computation.ops comp p))
    in
    Alcotest.(check int) (Printf.sprintf "sends of %d" p) 7 sends
  done

let test_pred_extremes () =
  let always =
    Generator.random
      ~params:{ Generator.n = 3; sends_per_process = 4; p_pred = 1.0; p_recv = 0.5 }
      ~seed:9L ()
  in
  for p = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "all states candidates on %d" p)
      (Computation.num_states always p)
      (List.length (Computation.candidates always p))
  done;
  let never =
    Generator.random
      ~params:{ Generator.n = 3; sends_per_process = 4; p_pred = 0.0; p_recv = 0.5 }
      ~seed:9L ()
  in
  for p = 0 to 2 do
    Alcotest.(check (list int))
      (Printf.sprintf "no candidates on %d" p)
      []
      (Computation.candidates never p)
  done

let test_single_process () =
  let comp =
    Generator.random
      ~params:{ Generator.n = 1; sends_per_process = 0; p_pred = 1.0; p_recv = 0.5 }
      ~seed:3L ()
  in
  Alcotest.(check int) "one process" 1 (Computation.n comp);
  Alcotest.(check int) "one state" 1 (Computation.total_states comp)

let test_single_process_with_sends_rejected () =
  match
    Generator.random
      ~params:{ Generator.n = 1; sends_per_process = 1; p_pred = 0.5; p_recv = 0.5 }
      ~seed:3L ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "single sender should be rejected"

let test_random_procs () =
  let rng = Wcp_util.Rng.create 4L in
  for _ = 1 to 50 do
    let procs = Generator.random_procs rng ~n:10 ~width:4 in
    Alcotest.(check int) "width" 4 (Array.length procs);
    Array.iteri
      (fun k p ->
        if k > 0 && procs.(k - 1) >= p then Alcotest.fail "not sorted/distinct";
        if p < 0 || p >= 10 then Alcotest.fail "out of range")
      procs
  done

let prop_generator_valid =
  (* Building through Computation.of_raw revalidates everything, so a
     successful re-decode of the encoding is a strong validity check. *)
  qtest ~count:100 "generated computations re-validate" Helpers.gen_medium_comp
    (fun comp ->
      let c = Trace_codec.decode (Trace_codec.encode comp) in
      Computation.total_states c = Computation.total_states comp)

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

let first_detecting_seed ~tries mk =
  let rec go s =
    if s > tries then None
    else
      let w = mk (Int64.of_int s) in
      let spec = Spec.make w.Workloads.comp w.Workloads.procs in
      if Oracle.satisfiable w.Workloads.comp spec then Some s else go (s + 1)
  in
  go 1

let test_mutex_correct_never_detects () =
  for s = 1 to 20 do
    let w =
      Workloads.mutual_exclusion ~clients:3 ~rounds:4 ~p_bug:0.0
        ~seed:(Int64.of_int s)
    in
    let spec = Spec.make w.Workloads.comp w.Workloads.procs in
    if Oracle.satisfiable w.Workloads.comp spec then
      Alcotest.failf "seed %d: correct mutex must never violate CS1∧CS2" s
  done

let test_mutex_bug_detectable () =
  match
    first_detecting_seed ~tries:40 (fun seed ->
        Workloads.mutual_exclusion ~clients:3 ~rounds:5 ~p_bug:0.5 ~seed)
  with
  | Some _ -> ()
  | None -> Alcotest.fail "buggy mutex never produced an overlap in 40 seeds"

let test_tpl_correct_never_detects () =
  for s = 1 to 20 do
    let w =
      Workloads.two_phase_locking ~readers:2 ~writers:2 ~requests:3 ~p_bug:0.0
        ~seed:(Int64.of_int s)
    in
    let spec = Spec.make w.Workloads.comp w.Workloads.procs in
    if Oracle.satisfiable w.Workloads.comp spec then
      Alcotest.failf "seed %d: correct 2PL must never grant read+write" s
  done

let test_tpl_bug_detectable () =
  match
    first_detecting_seed ~tries:40 (fun seed ->
        Workloads.two_phase_locking ~readers:2 ~writers:2 ~requests:4
          ~p_bug:0.5 ~seed)
  with
  | Some _ -> ()
  | None -> Alcotest.fail "buggy 2PL never produced a conflict in 40 seeds"

let test_ring_correct_never_detects () =
  for s = 1 to 20 do
    let w =
      Workloads.token_ring ~procs:5 ~laps:4 ~p_bug:0.0 ~seed:(Int64.of_int s)
    in
    let spec = Spec.make w.Workloads.comp w.Workloads.procs in
    if Oracle.satisfiable w.Workloads.comp spec then
      Alcotest.failf "seed %d: a correct ring has no concurrent holders" s
  done

let test_ring_bug_detectable () =
  match
    first_detecting_seed ~tries:40 (fun seed ->
        Workloads.token_ring ~procs:4 ~laps:5 ~p_bug:0.6 ~seed)
  with
  | Some _ -> ()
  | None -> Alcotest.fail "stale-flag ring bug never detectable in 40 seeds"

let test_client_server_detectable () =
  match
    first_detecting_seed ~tries:10 (fun seed ->
        Workloads.client_server ~clients:4 ~requests:3 ~seed)
  with
  | Some _ -> ()
  | None ->
      Alcotest.fail "all clients are never simultaneously blocked in 10 seeds"

let test_workload_shapes () =
  let w = Workloads.mutual_exclusion ~clients:3 ~rounds:2 ~p_bug:0.2 ~seed:1L in
  Alcotest.(check int) "mutex procs" 4 (Computation.n w.Workloads.comp);
  Alcotest.(check (array int)) "mutex spec" [| 1; 2 |] w.Workloads.procs;
  let w = Workloads.two_phase_locking ~readers:2 ~writers:1 ~requests:2 ~p_bug:0.0 ~seed:1L in
  Alcotest.(check int) "tpl procs" 4 (Computation.n w.Workloads.comp);
  Alcotest.(check (array int)) "tpl spec: first reader, first writer" [| 1; 3 |]
    w.Workloads.procs;
  let w = Workloads.token_ring ~procs:4 ~laps:2 ~p_bug:0.0 ~seed:1L in
  Alcotest.(check int) "ring procs" 4 (Computation.n w.Workloads.comp);
  Alcotest.(check int) "ring messages" 7
    (Array.length (Computation.messages w.Workloads.comp));
  let w = Workloads.client_server ~clients:3 ~requests:2 ~seed:1L in
  Alcotest.(check int) "cs procs" 4 (Computation.n w.Workloads.comp);
  Alcotest.(check int) "cs messages: 2 per request" 12
    (Array.length (Computation.messages w.Workloads.comp))

let test_workload_determinism () =
  let enc w = Trace_codec.encode w.Workloads.comp in
  List.iter
    (fun (name, mk) ->
      Alcotest.(check string) name (enc (mk ())) (enc (mk ())))
    [
      ( "mutex",
        fun () ->
          Workloads.mutual_exclusion ~clients:3 ~rounds:3 ~p_bug:0.3 ~seed:11L
      );
      ( "tpl",
        fun () ->
          Workloads.two_phase_locking ~readers:2 ~writers:2 ~requests:3
            ~p_bug:0.3 ~seed:11L );
      ("ring", fun () -> Workloads.token_ring ~procs:5 ~laps:3 ~p_bug:0.3 ~seed:11L);
      ("cs", fun () -> Workloads.client_server ~clients:3 ~requests:3 ~seed:11L);
    ]

let test_philosophers_detectable () =
  match
    first_detecting_seed ~tries:20 (fun seed ->
        Workloads.dining_philosophers ~philosophers:4 ~meals:2 ~patience:0.8
          ~seed)
  with
  | Some _ -> ()
  | None -> Alcotest.fail "no circular-wait window in 20 seeds"

let test_philosophers_shape () =
  let w =
    Workloads.dining_philosophers ~philosophers:4 ~meals:2 ~patience:0.5
      ~seed:3L
  in
  Alcotest.(check int) "philosophers + forks" 8 (Computation.n w.Workloads.comp);
  Alcotest.(check (array int)) "WCP over the philosophers" [| 0; 1; 2; 3 |]
    w.Workloads.procs;
  (* Fork agents never carry the predicate. *)
  for j = 4 to 7 do
    Alcotest.(check (list int))
      (Printf.sprintf "fork agent %d has no candidate states" j)
      []
      (Computation.candidates w.Workloads.comp j)
  done

let test_philosophers_determinism () =
  let enc () =
    Trace_codec.encode
      (Workloads.dining_philosophers ~philosophers:5 ~meals:3 ~patience:0.6
         ~seed:9L)
        .Workloads.comp
  in
  Alcotest.(check string) "deterministic" (enc ()) (enc ())

let test_philosophers_detected_cut_is_circular_wait () =
  (* In any detected cut, every philosopher's predicate state must be
     one where it holds left-not-right; cross-check by replaying the
     protocol semantics through the recorded predicate flags. *)
  match
    first_detecting_seed ~tries:20 (fun seed ->
        Workloads.dining_philosophers ~philosophers:5 ~meals:2 ~patience:0.9
          ~seed)
  with
  | None -> Alcotest.fail "need a detecting seed"
  | Some s ->
      let w =
        Workloads.dining_philosophers ~philosophers:5 ~meals:2 ~patience:0.9
          ~seed:(Int64.of_int s)
      in
      let spec = Spec.make w.Workloads.comp w.Workloads.procs in
      (match Oracle.first_cut w.Workloads.comp spec with
      | Detection.Detected cut ->
          Alcotest.(check bool) "cut satisfies the WCP" true
            (Cut.satisfies w.Workloads.comp cut)
      | Detection.No_detection | Detection.Undetectable_crashed _ ->
          Alcotest.fail "oracle disagrees with probe")

let test_all_workloads () =
  let ws = Workloads.all ~seed:42L in
  Alcotest.(check int) "eight instances" 8 (List.length ws);
  List.iter
    (fun w ->
      let spec = Spec.make w.Workloads.comp w.Workloads.procs in
      (* Smoke: the oracle runs without error on every workload. *)
      ignore (Oracle.first_cut w.Workloads.comp spec))
    ws

let () =
  Alcotest.run "generator"
    [
      ( "random",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_output;
          Alcotest.test_case "send counts" `Quick test_send_counts;
          Alcotest.test_case "pred extremes" `Quick test_pred_extremes;
          Alcotest.test_case "single process" `Quick test_single_process;
          Alcotest.test_case "single process with sends" `Quick
            test_single_process_with_sends_rejected;
          Alcotest.test_case "random_procs" `Quick test_random_procs;
          prop_generator_valid;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "mutex: correct is safe" `Quick
            test_mutex_correct_never_detects;
          Alcotest.test_case "mutex: bug detectable" `Quick
            test_mutex_bug_detectable;
          Alcotest.test_case "2pl: correct is safe" `Quick
            test_tpl_correct_never_detects;
          Alcotest.test_case "2pl: bug detectable" `Quick
            test_tpl_bug_detectable;
          Alcotest.test_case "ring: correct is safe" `Quick
            test_ring_correct_never_detects;
          Alcotest.test_case "ring: bug detectable" `Quick
            test_ring_bug_detectable;
          Alcotest.test_case "client-server: congestion detectable" `Quick
            test_client_server_detectable;
          Alcotest.test_case "shapes" `Quick test_workload_shapes;
          Alcotest.test_case "philosophers: detectable" `Quick
            test_philosophers_detectable;
          Alcotest.test_case "philosophers: shape" `Quick
            test_philosophers_shape;
          Alcotest.test_case "philosophers: determinism" `Quick
            test_philosophers_determinism;
          Alcotest.test_case "philosophers: cut is circular wait" `Quick
            test_philosophers_detected_cut_is_circular_wait;
          Alcotest.test_case "determinism" `Quick test_workload_determinism;
          Alcotest.test_case "all" `Quick test_all_workloads;
        ] );
    ]
