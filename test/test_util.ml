open Wcp_util

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.next_int64 a <> Rng.next_int64 b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_copy_independent () =
  let a = Rng.create 7L in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a)
    (Rng.next_int64 b);
  (* advancing the copy further must not affect the original *)
  let b' = Rng.copy a in
  ignore (Rng.next_int64 b');
  ignore (Rng.next_int64 b');
  Alcotest.(check int64) "original unaffected" (Rng.next_int64 a)
    (Rng.next_int64 (Rng.copy a))

let test_split_diverges () =
  let a = Rng.create 3L in
  let b = Rng.split a in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.next_int64 a <> Rng.next_int64 b then differs := true
  done;
  Alcotest.(check bool) "split stream differs" true !differs

let test_bernoulli_extremes () =
  let r = Rng.create 5L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always true" true (Rng.bernoulli r 1.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 always false" false (Rng.bernoulli r 0.0)
  done

let test_exponential_positive () =
  let r = Rng.create 11L in
  for _ = 1 to 1000 do
    let x = Rng.exponential r ~mean:2.0 in
    if x < 0.0 then Alcotest.fail "exponential sample negative"
  done

let test_exponential_mean () =
  let r = Rng.create 13L in
  let k = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to k do
    total := !total +. Rng.exponential r ~mean:3.0
  done;
  let mean = !total /. float_of_int k in
  if mean < 2.7 || mean > 3.3 then
    Alcotest.failf "exponential mean %.3f too far from 3.0" mean

let test_pick_singleton () =
  let r = Rng.create 17L in
  Alcotest.(check int) "singleton" 9 (Rng.pick r [| 9 |])

let prop_int_bounds =
  qtest "int within bounds"
    QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 0 1000))
    (fun (bound, seed) ->
      let r = Rng.create (Int64.of_int seed) in
      let x = Rng.int r bound in
      x >= 0 && x < bound)

let prop_float_bounds =
  qtest "float within bounds"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let r = Rng.create (Int64.of_int seed) in
      let x = Rng.float r 10.0 in
      x >= 0.0 && x < 10.0)

let prop_shuffle_permutation =
  qtest "shuffle is a permutation"
    QCheck2.Gen.(pair (list_size (int_range 0 50) int) (int_range 0 1000))
    (fun (l, seed) ->
      let r = Rng.create (Int64.of_int seed) in
      let a = Array.of_list l in
      Rng.shuffle r a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let test_int_uniformish () =
  (* All residues of a small modulus appear. *)
  let r = Rng.create 23L in
  let seen = Array.make 8 false in
  for _ = 1 to 1000 do
    seen.(Rng.int r 8) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let int_heap () = Heap.create ~cmp:compare

let test_heap_empty () =
  let h = int_heap () in
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty")
    (fun () -> ignore (Heap.pop_exn h))

let test_heap_ordering () =
  let h = int_heap () in
  List.iter (Heap.add h) [ 5; 3; 8; 1; 9; 2; 7 ];
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 3; 5; 7; 8; 9 ] (drain [])

let test_heap_duplicates () =
  let h = int_heap () in
  List.iter (Heap.add h) [ 4; 4; 4; 1; 1 ];
  Alcotest.(check int) "length" 5 (Heap.length h);
  Alcotest.(check (list int)) "sorted" [ 1; 1; 4; 4; 4 ] (Heap.to_sorted_list h)

let test_heap_to_sorted_nondestructive () =
  let h = int_heap () in
  List.iter (Heap.add h) [ 3; 1; 2 ];
  ignore (Heap.to_sorted_list h);
  Alcotest.(check int) "length preserved" 3 (Heap.length h);
  Alcotest.(check (option int)) "min preserved" (Some 1) (Heap.peek h)

let test_heap_clear () =
  let h = int_heap () in
  List.iter (Heap.add h) [ 1; 2 ];
  Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Heap.is_empty h);
  Heap.add h 5;
  Alcotest.(check (option int)) "usable after clear" (Some 5) (Heap.peek h)

let prop_heap_sorts =
  qtest "heap drain equals sort"
    QCheck2.Gen.(list_size (int_range 0 200) int)
    (fun l ->
      let h = int_heap () in
      List.iter (Heap.add h) l;
      Heap.to_sorted_list h = List.sort compare l)

let prop_heap_interleaved =
  qtest "interleaved add/pop respects order"
    QCheck2.Gen.(list_size (int_range 0 100) (option int))
    (fun ops ->
      (* None = pop, Some x = add x; model with a sorted list. *)
      let h = int_heap () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some x ->
              Heap.add h x;
              model := List.sort compare (x :: !model);
              true
          | None -> (
              match (Heap.pop h, !model) with
              | None, [] -> true
              | Some x, m :: rest ->
                  model := rest;
                  x = m
              | _ -> false))
        ops)

let test_heap_custom_order () =
  let h = Heap.create ~cmp:(fun a b -> compare b a) in
  List.iter (Heap.add h) [ 1; 5; 3 ];
  Alcotest.(check (option int)) "max-heap" (Some 5) (Heap.peek h)

(* ------------------------------------------------------------------ *)
(* Flat (struct-of-arrays) heap                                        *)
(* ------------------------------------------------------------------ *)

let prop_flat_heap_sorts =
  qtest "flat heap drains keys in order, FIFO on ties"
    QCheck2.Gen.(list_size (int_range 0 200) (int_range 0 20))
    (fun keys ->
      let h = Heap.Flat.create () in
      List.iteri
        (fun seq k -> Heap.Flat.add h ~at:(float_of_int k) ~seq (seq, k))
        keys;
      (* Drain; check keys ascend and equal keys come out in insertion
         order (the engine's determinism depends on this). *)
      let ok = ref true in
      let last_at = ref neg_infinity and last_seq = ref (-1) in
      while not (Heap.Flat.is_empty h) do
        let at = Heap.Flat.min_at h in
        let seq, k = Heap.Flat.pop_exn h in
        if float_of_int k <> at then ok := false;
        if at < !last_at then ok := false;
        if at = !last_at && seq < !last_seq then ok := false;
        last_at := at;
        last_seq := seq
      done;
      !ok)

let test_flat_heap_clear () =
  let h = Heap.Flat.create () in
  Heap.Flat.add h ~at:1.0 ~seq:0 "x";
  Heap.Flat.clear h;
  Alcotest.(check bool) "cleared" true (Heap.Flat.is_empty h);
  Alcotest.(check int) "length" 0 (Heap.Flat.length h)

(* ------------------------------------------------------------------ *)
(* Parallel map                                                        *)
(* ------------------------------------------------------------------ *)

let collatz_len n0 =
  let rec go n acc =
    if n <= 1 then acc
    else go (if n mod 2 = 0 then n / 2 else (3 * n) + 1) (acc + 1)
  in
  go (max 1 n0) 0

let prop_parallel_map_deterministic =
  qtest ~count:50 "Parallel.map = Array.map at every domain count"
    QCheck2.Gen.(pair (array_size (int_range 0 40) (int_range 0 10_000))
                   (int_range 1 8))
    (fun (xs, domains) ->
      let expected = Array.map collatz_len xs in
      Parallel.map ~domains collatz_len xs = expected)

let test_parallel_map_list () =
  Alcotest.(check (list int)) "map_list keeps order"
    [ 2; 4; 6; 8 ]
    (Parallel.map_list ~domains:3 (fun x -> 2 * x) [ 1; 2; 3; 4 ])

let test_parallel_exception () =
  match
    Parallel.map ~domains:4
      (fun x -> if x = 7 then failwith "boom" else x)
      [| 1; 2; 7; 4; 5 |]
  with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure m -> Alcotest.(check string) "first error wins" "boom" m

let test_parallel_empty () =
  Alcotest.(check int) "empty input" 0
    (Array.length (Parallel.map ~domains:4 (fun x -> x) [||]))

let test_parallel_domains_exceed_items () =
  (* The pool is clamped to the item count; asking for far more domains
     than items must neither crash nor reorder. *)
  Alcotest.(check (list int)) "more domains than items"
    [ 10; 20; 30 ]
    (Parallel.map_list ~domains:64 (fun x -> 10 * x) [ 1; 2; 3 ])

let test_parallel_bad_domains () =
  Alcotest.check_raises "domains = 0 rejected"
    (Invalid_argument "Parallel.map: domains must be >= 1") (fun () ->
      ignore (Parallel.map ~domains:0 (fun x -> x) [| 1 |]))

let test_parallel_first_exception_by_index () =
  (* Index 1 fails slowly, index 3 fails immediately: the contract is
     that the FIRST exception by input index — not by completion time —
     is the one re-raised, so "early" must win even though "late" is
     thrown first on the wall clock. *)
  let slow_boom x =
    if x = 1 then begin
      let t = Sys.time () in
      while Sys.time () -. t < 0.02 do () done;
      failwith "early"
    end
    else if x = 3 then failwith "late"
    else x
  in
  match Parallel.map ~domains:2 slow_boom [| 0; 1; 2; 3; 4 |] with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure m ->
      Alcotest.(check string) "lowest index wins" "early" m

let test_parallel_pool_no_respawn () =
  (* The pool is persistent: after a warm-up call, repeated maps at the
     same (or smaller) domain count must not spawn a single new domain
     — the hot path parks and wakes workers instead. *)
  let xs = Array.init 64 Fun.id in
  ignore (Parallel.map ~domains:4 collatz_len xs);
  let before = Parallel.spawns () in
  for _ = 1 to 25 do
    ignore (Parallel.map ~domains:4 collatz_len xs);
    ignore (Parallel.map ~domains:2 collatz_len xs)
  done;
  Alcotest.(check int) "no per-call domain spawn" before (Parallel.spawns ())

let test_scoped_pool_run () =
  (* The barrier primitive under the parallel checker: every slot runs
     exactly once per [run], writes land before [run] returns, and the
     reservation is reusable across many rounds. *)
  Parallel.scoped_pool ~domains:3 (fun pool ->
      Alcotest.(check int) "pool width" 3 (Parallel.pool_domains pool);
      let seen = Array.make 3 0 in
      for _round = 1 to 10 do
        Parallel.run pool (fun ~slot ~slots ->
            Alcotest.(check int) "slots" 3 slots;
            seen.(slot) <- seen.(slot) + 1)
      done;
      Alcotest.(check (array int)) "each slot ran every round"
        [| 10; 10; 10 |] seen);
  (* Exceptions cross the barrier: first by slot number. *)
  Parallel.scoped_pool ~domains:2 (fun pool ->
      match
        Parallel.run pool (fun ~slot ~slots:_ ->
            if slot = 0 then failwith "slot0" else failwith "slot1")
      with
      | () -> Alcotest.fail "expected exception"
      | exception Failure m ->
          Alcotest.(check string) "lowest slot wins" "slot0" m)

let test_scoped_pool_nested () =
  (* A map inside another map's worker must not deadlock on the shared
     pool; the inner scope falls back to private domains. *)
  let inner x = Array.fold_left ( + ) 0 (Parallel.map ~domains:2 collatz_len
                                           (Array.init 8 (fun i -> x + i))) in
  let a = Parallel.map ~domains:2 inner (Array.init 6 (fun i -> 100 * i)) in
  let b = Array.map inner (Array.init 6 (fun i -> 100 * i)) in
  Alcotest.(check (array int)) "nested maps deterministic" b a

let with_env var value f =
  let old = Sys.getenv_opt var in
  Unix.putenv var value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv var (Option.value ~default:"" old))
    f

let test_parallel_env_parsing () =
  with_env "WCP_DOMAINS" "3" (fun () ->
      Alcotest.(check int) "well-formed value" 3 (Parallel.default_domains ()));
  with_env "WCP_DOMAINS" " 5 " (fun () ->
      Alcotest.(check int) "whitespace trimmed" 5 (Parallel.default_domains ()));
  List.iter
    (fun bad ->
      with_env "WCP_DOMAINS" bad (fun () ->
          Alcotest.check_raises
            (Printf.sprintf "WCP_DOMAINS=%S rejected" bad)
            (Invalid_argument "WCP_DOMAINS must be a positive integer")
            (fun () -> ignore (Parallel.default_domains ()))))
    [ "0"; "-2"; "many"; "2.5" ]

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          Alcotest.test_case "split diverges" `Quick test_split_diverges;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "exponential positive" `Quick
            test_exponential_positive;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "pick singleton" `Quick test_pick_singleton;
          Alcotest.test_case "int uniform-ish" `Quick test_int_uniformish;
          prop_int_bounds;
          prop_float_bounds;
          prop_shuffle_permutation;
        ] );
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          Alcotest.test_case "to_sorted nondestructive" `Quick
            test_heap_to_sorted_nondestructive;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "custom order" `Quick test_heap_custom_order;
          prop_heap_sorts;
          prop_heap_interleaved;
          prop_flat_heap_sorts;
          Alcotest.test_case "flat clear" `Quick test_flat_heap_clear;
        ] );
      ( "parallel",
        [
          prop_parallel_map_deterministic;
          Alcotest.test_case "map_list order" `Quick test_parallel_map_list;
          Alcotest.test_case "exception propagates" `Quick
            test_parallel_exception;
          Alcotest.test_case "empty" `Quick test_parallel_empty;
          Alcotest.test_case "domains > items" `Quick
            test_parallel_domains_exceed_items;
          Alcotest.test_case "bad domain count" `Quick
            test_parallel_bad_domains;
          Alcotest.test_case "first exception by index" `Quick
            test_parallel_first_exception_by_index;
          Alcotest.test_case "WCP_DOMAINS parsing" `Quick
            test_parallel_env_parsing;
          Alcotest.test_case "pool: no per-call respawn" `Quick
            test_parallel_pool_no_respawn;
          Alcotest.test_case "scoped pool barrier" `Quick test_scoped_pool_run;
          Alcotest.test_case "scoped pool nesting" `Quick
            test_scoped_pool_nested;
        ] );
    ]
