The CLI surface, end to end. Everything is seeded, so outputs are exact.

Generate a random trace:

  $ wcpdetect generate -n 4 -m 5 --p-pred 0.4 --seed 9 -o run.trace
  wrote run.trace (4 processes, 44 states, 20 messages)

The oracle and every detection algorithm agree on it:

  $ wcpdetect detect run.trace -a oracle
  oracle: detected {0:6 1:3 2:8 3:2}

  $ wcpdetect detect run.trace -a token-vc | cut -d'|' -f1
  detected {0:6 1:3 2:8 3:2} 

  $ wcpdetect detect run.trace -a token-dd | cut -d'|' -f1
  detected {0:6 1:3 2:8 3:2} 

  $ wcpdetect detect run.trace -a checker | cut -d'|' -f1
  detected {0:6 1:3 2:8 3:2} 

  $ wcpdetect detect run.trace -a parallel | cut -d'|' -f1
  detected {0:6 1:3 2:8 3:2} 

  $ wcpdetect detect run.trace -a multi-token --groups 2 | cut -d'|' -f1
  detected {0:6 1:3 2:8 3:2} 

Detection on the computation slice reports the same cut in dense
coordinates (DESIGN.md §10) — only the replayed computation shrinks:

  $ wcpdetect detect run.trace -a token-vc --slice | cut -d'|' -f1
  detected {0:6 1:3 2:8 3:2} 

  $ wcpdetect detect run.trace -a token-dd --slice | cut -d'|' -f1
  detected {0:6 1:3 2:8 3:2} 

  $ wcpdetect detect run.trace -a parallel --slice | cut -d'|' -f1
  detected {0:6 1:3 2:8 3:2} 

  $ wcpdetect detect run.trace -a oracle --slice
  wcpdetect: --slice needs a detection algorithm (token-vc, multi-token, token-dd, token-dd-par, checker or parallel)
  [2]

A sub-spec WCP:

  $ wcpdetect detect run.trace -a oracle --procs 1,3
  oracle: detected {1:3 3:2}

Workload generation names its WCP processes:

  $ wcpdetect workload mutex --size 3 --rounds 2 --p-bug 0.5 --seed 4 -o mutex.trace
  # workload mutual-exclusion; wcp procs: 1,2
  wrote mutex.trace (4 processes, 40 states, 18 messages)

  $ wcpdetect detect mutex.trace -a oracle --procs 1,2
  oracle: detected {1:3 2:3}

Rendering:

  $ wcpdetect generate -n 2 -m 1 --p-pred 1.0 --seed 2 -o tiny.trace
  wrote tiny.trace (2 processes, 6 states, 2 messages)

  $ wcpdetect render tiny.trace
  P0: (1)* ?0 (2)* !1>1 (3)*
  P1: (1)* !0>0 (2)* ?1 (3)*
  messages: 0:1->0 1:0->1

  $ wcpdetect render tiny.trace -f dot | head -4
  digraph computation {
    rankdir=LR;
    node [shape=box, fontsize=10];
    subgraph cluster_p0 {

Channel predicates (GCP), offline and online:

  $ wcpdetect gcp tiny.trace -c atleast1:0-1 --procs 0
  detected {0:3 1:2}

  $ wcpdetect gcp tiny.trace -c atleast1:0-1 --procs 0 --online | cut -d'|' -f1
  detected {0:3 1:2} 

The Theorem 5.1 adversary game:

  $ wcpdetect lowerbound -n 4 -m 8
  no antichain (as the adversary guarantees)
  n=4 m=8: 29 rounds, 29 deletions (forced lower bound nm - n = 28)
  adversary answered 174 comparisons

Live monitoring (Fig. 1):

  $ wcpdetect live --mode vc --p-bug 0.0 --clients 2 --rounds 2 --seed 5
  online verdict: clean run (10 time units)
  offline oracle on the recording: no detection (matches)

Strong (Definitely) detection and the philosophers workload:

  $ wcpdetect workload philosophers --size 3 --rounds 2 --seed 6 -o ph.trace
  # workload dining-philosophers; wcp procs: 0,1,2
  wrote ph.trace (6 processes, 270 states, 132 messages)

  $ wcpdetect detect ph.trace -a oracle --procs 0,1,2
  oracle: detected {0:3 1:3 2:3}

  $ wcpdetect detect ph.trace -a strong --procs 0,1,2
  strong: Definitely does not hold

  $ wcpdetect detect tiny.trace -a strong --procs 0,1
  strong: Definitely holds; witness intervals: P0:[1,3] P1:[1,3]

  $ wcpdetect detect tiny.trace -a cooper-marzullo
  cooper-marzullo: detected {0:1 1:1} (explored 1 cuts)

Chaos: under a deterministic fault plan (lossy, duplicating links) the
token algorithms still converge on the fault-free oracle's first cut,
and the summary line accounts for the recovery work:

  $ wcpdetect chaos run.trace -a token-vc --drop 0.2 --dup 0.1 --fault-seed 7
  chaos token-vc drop=0.20 dup=0.10 crashes=0: detected {0:6 1:3 2:8 3:2} | retransmits=6 dup-suppressed=9 net-drop=9 net-dup=11 crash-drop=0 | oracle: match

  $ wcpdetect chaos run.trace -a token-dd --drop 0.2 --dup 0.1 --fault-seed 7
  chaos token-dd drop=0.20 dup=0.10 crashes=0: detected {0:6 1:3 2:8 3:2} | retransmits=6 dup-suppressed=6 net-drop=12 net-dup=14 crash-drop=0 | oracle: match

  $ wcpdetect chaos run.trace -a multi-token --groups 2 --drop 0.2 --dup 0.1 --fault-seed 7
  chaos multi-token drop=0.20 dup=0.10 crashes=0: detected {0:6 1:3 2:8 3:2} | retransmits=10 dup-suppressed=9 net-drop=11 net-dup=14 crash-drop=0 | oracle: match

A monitor that crashes permanently (process 4 is the monitor of
application process 0) degrades the verdict gracefully instead of
hanging the run:

  $ wcpdetect chaos run.trace -a token-vc --crash 4@0
  chaos token-vc drop=0.00 dup=0.00 crashes=1: undetectable (crashed: 4) | retransmits=12 dup-suppressed=0 net-drop=0 net-dup=0 crash-drop=17 | oracle: degraded

A --restart window is a crash with recovery: the monitor's in-memory
state is destroyed at the window start and rebuilt from its last
checkpoint at the window end, and the verdict still matches the
oracle. The recovery summary line appears only when someone restarts:

  $ wcpdetect chaos run.trace -a token-vc --restart 4@2-10
  chaos token-vc drop=0.00 dup=0.00 crashes=0: detected {0:6 1:3 2:8 3:2} | retransmits=3 dup-suppressed=0 net-drop=0 net-dup=0 crash-drop=5 | oracle: match
  recovery restarts=1 ckpt-every=1: checkpoints=4 restores=1 replayed=0 wd-stand-downs=0

  $ wcpdetect chaos run.trace -a token-dd --drop 0.1 --restart 4@2-10 --fault-seed 7
  chaos token-dd drop=0.10 dup=0.00 crashes=0: detected {0:6 1:3 2:8 3:2} | retransmits=16 dup-suppressed=5 net-drop=12 net-dup=0 crash-drop=4 | oracle: match
  recovery restarts=1 ckpt-every=1: checkpoints=8 restores=1 replayed=0 wd-stand-downs=0

Without -END the restart window lasts 8 time units; --ckpt-every
thins the checkpoint stream (the transport replays what the older
state has not consumed):

  $ wcpdetect chaos run.trace -a multi-token --groups 2 --restart 4@2 --ckpt-every 3
  chaos multi-token drop=0.00 dup=0.00 crashes=0: detected {0:6 1:3 2:8 3:2} | retransmits=3 dup-suppressed=0 net-drop=0 net-dup=0 crash-drop=5 | oracle: match
  recovery restarts=1 ckpt-every=3: checkpoints=1 restores=1 replayed=1 wd-stand-downs=0

The causal trace narrates the recovery:

  $ wcpdetect trace run.trace -a token-vc --restart 4@2-10 -o restart.jsonl | head -1
  trace: 200 events -> restart.jsonl

  $ wcpdetect explain restart.jsonl | grep RESTARTED
  t=10       M_0: RESTARTED: rebuilt monitor state from last checkpoint (60 bytes)

The same fault flags work on plain detect:

  $ wcpdetect detect run.trace -a token-vc --drop 0.15 --fault-seed 3 | cut -d'|' -f1
  detected {0:6 1:3 2:8 3:2} 

  $ wcpdetect detect run.trace -a checker --drop 0.15
  wcpdetect: fault injection is only supported for the token algorithms
  [2]

The domain-parallel checker runs no simulated network either, so fault
injection is rejected the same way:

  $ wcpdetect detect run.trace -a parallel --drop 0.15
  wcpdetect: fault injection is only supported for the token algorithms
  [2]

Causal tracing: `trace` runs a detection and writes a structured JSONL
event log, printing the verdict plus derived metrics; `explain` replays
the log as a narrative (who held the token, which comparison eliminated
which candidate):

  $ wcpdetect trace tiny.trace -a token-vc -o ev.jsonl
  trace: 25 events -> ev.jsonl
  detected {0:1 1:1} | msgs=8 bits=704 work=6 max-work=3 max-space=4 hops=1 polls=0 snaps=3 t=1.96 ev=10
  parallel_rounds              0
  token_regenerations          0
  retransmits                  0
  polls                        0
  token_hops                   1
  eliminations                 1
  eliminations_per_hop         n=1 mean=1.000 p50=1.000 p95=1.000 max=1.000
  token_hop_latency            n=1 mean=0.718 p50=0.718 p95=0.718 max=0.718

  $ head -2 ev.jsonl
  {"seq":0,"t":0.0,"proc":-1,"type":"run_meta","schema":"wcp-events/1","algo":"token-vc","n":2,"width":2}
  {"seq":1,"t":0.0,"proc":-1,"type":"phase","name":"build"}

  $ wcpdetect explain ev.jsonl
  run: token-vc over n=2 processes, predicate width 2
  t=1.24156  M_0: selected candidate state 1 of P_0 (G[0] := 1, green)
  t=1.24156  M_0: advanced G[1] to 0: candidate (P_0, state 1) with clock <1,0> precedes any future candidate of P_1 (red)
  t=1.24156  M_0: hop 1: token -> M_1 carrying G=<1,0>
  t=1.95997  M_1: hop 1: token accepted
  t=1.95997  M_1: selected candidate state 1 of P_1 (G[1] := 1, green)
  t=1.95997  M_1: DETECTED consistent cut: P_0@state 1, P_1@state 1
  (13 engine send/delivery events elided; --verbose or the JSONL log has them)
  1 token hops total

The same log attaches to a plain detect run via --trace, and
--per-process spells out the space-accounting policy under the table:

  $ wcpdetect detect tiny.trace -a token-vc --trace ev2.jsonl | cut -d'|' -f1
  detected {0:1 1:1} 
  trace: 25 events -> ev2.jsonl

  $ wcpdetect detect run.trace -a token-dd --per-process
  detected {0:6 1:3 2:8 3:2} | msgs=50 bits=2469 work=17 max-work=8 max-space=11 hops=4 polls=5 snaps=12 t=17.98 ev=75
  proc  sent  recv      bits      work    space  retx  dupsup
     0     9     6       576         0        2     0       0
     1    10     5       608         0        2     0       0
     2     9     5       512         0        3     0       0
     3     8     4       480         0        2     0       0
     4     4     7        97         4        8     0       0
     5     3     8        96         3       11     0       0
     6     6    10        99         8        7     0       0
     7     1     5         1         2        6     0       0
     8     0     0         0         0        0     0       0
  total sent=50 bits=2469 work=17 max-work=8 max-space=11 events=75
  faults retransmit=0 dup-suppressed=0 net-drop=0 net-dup=0 crash-drop=0
  space = high-water buffered words per process (32-bit words; vc snapshot = width+1 words, dd snapshot = 1+2|deps|; DESIGN.md §3)

Tracing a replay-only algorithm is rejected up front:

  $ wcpdetect detect tiny.trace -a oracle --trace nope.jsonl
  wcpdetect: tracing needs a detection algorithm (token-vc, multi-token, token-dd, token-dd-par, checker or parallel)
  [2]

The parallel checker narrates its frontier rounds through the same
pipeline — one hb-elimination per advanced candidate, one round event
per barrier:

  $ wcpdetect detect run.trace -a parallel --trace evp.jsonl | cut -d'|' -f1
  detected {0:6 1:3 2:8 3:2} 
  trace: 10 events -> evp.jsonl

  $ wcpdetect explain evp.jsonl
  run: parallel over n=4 processes, predicate width 4
  t=1        checker: eliminated candidate (P_2, state 1) <0,0,1,0>: happened before (P_1, state 3) <0,3,5,1> since clock[2]: 5 >= 1
  t=1        checker: eliminated candidate (P_2, state 5) <0,0,5,1>: happened before (P_1, state 3) <0,3,5,1> since clock[2]: 5 >= 5
  t=1        checker: parallel round 1: frontier <3,3,1,2>, 2 candidates eliminated
  t=2        checker: eliminated candidate (P_0, state 3) <3,0,1,0>: happened before (P_2, state 8) <4,0,8,1> since clock[0]: 4 >= 3
  t=2        checker: parallel round 2: frontier <3,3,8,2>, 1 candidate eliminated
  t=3        checker: parallel round 3: frontier <6,3,8,2>, 0 candidates eliminated
  t=3        checker: DETECTED consistent cut: P_0@state 6, P_1@state 3, P_2@state 8, P_3@state 2
  0 token hops total

Live telemetry: --metrics-out streams wcp-metrics/1 aggregation
windows (sim-time interval set by --metrics-every) next to any detect,
trace or chaos run. The meta prologue, the window lines and the total
are deterministic for a fixed seed; phase lines additionally carry the
allocation profile:

  $ wcpdetect detect run.trace -a token-vc --metrics-out m.jsonl --metrics-every 5 | cut -d'|' -f1
  detected {0:6 1:3 2:8 3:2} 
  metrics: 6 lines -> m.jsonl

  $ head -1 m.jsonl
  {"schema":"wcp-metrics/1","type":"meta","algo":"token-vc","n":4,"width":4,"every":5.0}

  $ grep -c '"type":"window"' m.jsonl
  2

  $ grep -c '"type":"phase"' m.jsonl
  2

  $ tail -1 m.jsonl
  {"type":"total","windows":2,"events":115,"elims":7,"hops":4,"phases":2}

The stream is byte-deterministic: a second identical run reproduces it
exactly, allocation profile included:

  $ wcpdetect detect run.trace -a token-vc --metrics-out m2.jsonl --metrics-every 5 >/dev/null
  $ cmp m.jsonl m2.jsonl

Chaos runs surface the fault-handling gauges in the same windows:

  $ wcpdetect chaos run.trace -a token-vc --restart 4@2-10 --metrics-out mc.jsonl >/dev/null
  $ grep -o '"restores":[0-9]*' mc.jsonl | sort | uniq -c | sort -k2 | head -2
        6 "restores":0
        1 "restores":1

`top` renders a metrics stream as a terminal dashboard — windows
table, cumulative health line, phase profile. On a hand-written
fixture (fixed alloc bytes, so the output is pinned end to end):

  $ cat > fix.metrics <<'XEOF'
  > {"schema":"wcp-metrics/1","type":"meta","algo":"token-vc","n":4,"width":4,"every":5.0}
  > {"type":"window","idx":0,"t0":0.0,"t1":5.0,"events":40,"elims":6,"hops":2,"polls":1,"snaps":8,"retx":0,"probes":0,"regens":0,"ckpts":2,"restores":0,"replays":0,"wd_stand_downs":0,"hop_p50":1.5,"hop_p95":2.5,"cum_events":40,"cum_elims":6,"cum_retx":0,"cum_regens":0,"cum_ckpts":2,"cum_wd_stand_downs":0}
  > {"type":"window","idx":1,"t0":5.0,"t1":10.0,"events":30,"elims":4,"hops":3,"polls":0,"snaps":4,"retx":1,"probes":1,"regens":0,"ckpts":1,"restores":1,"replays":2,"wd_stand_downs":1,"hop_p50":2.0,"hop_p95":4.0,"cum_events":70,"cum_elims":10,"cum_retx":1,"cum_regens":0,"cum_ckpts":3,"cum_wd_stand_downs":1}
  > {"type":"phase","name":"build","t0":0.0,"t1":1.0,"alloc_bytes":4096,"events":12}
  > {"type":"phase","name":"detect","t0":1.0,"t1":9.5,"alloc_bytes":16384,"events":58}
  > {"type":"total","windows":2,"events":70,"elims":10,"hops":5,"phases":2}
  > XEOF

  $ wcpdetect top fix.metrics
  run: token-vc  n=4  width=4  window=5
  window      t0      t1  events  elims  hops  polls  retx  ckpts   wd  hop-p50  hop-p95
       0     0.0     5.0      40      6     2      1     0      2    0     1.50     2.50
       1     5.0    10.0      30      4     3      0     1      1    1     2.00     4.00
  health (cumulative): events=70 elims=10 retx=1 regens=0 ckpts=3 wd-stand-downs=1
  phases:
    build         0.0 ->     1.0  events=12     alloc=4096B
    detect        1.0 ->     9.5  events=58     alloc=16384B
  totals: 2 windows, 70 events, 10 eliminations, 5 hops, 2 phases

On a freshly recorded stream the same dashboard aggregates the real
run (values vary with the allocator, so just probe the sections):

  $ wcpdetect top mc.jsonl | grep -c "phases"
  2

A missing or malformed stream is a clean error:

  $ wcpdetect top nope.metrics
  wcpdetect top: nope.metrics: No such file or directory
  [1]

The recovery narrative is visible through explain --verbose (checkpoint
captures are engine-level events, elided by default):

  $ wcpdetect explain restart.jsonl --verbose | grep -c "checkpoint"
  5

Comparing everything on the workload:

  $ wcpdetect compare ph.trace --procs 0,1,2 | head -3
  oracle: detected {0:3 1:3 2:3}
  
  algorithm          msgs       bits      work  max-work max-space   hops   time

The binary trace store (DESIGN.md §12): `generate -o x.btrace` streams
the run straight to disk through the btrace writer, and `convert`
round-trips between the text and binary stores. The streamed file is
byte-identical to converting the text trace — same seed, same bytes:

  $ wcpdetect generate -n 4 -m 5 --p-pred 0.4 --seed 9 -o run.btrace
  wrote run.btrace (4 processes, 44 states, 20 messages)

  $ wcpdetect convert run.trace -o conv.btrace
  wrote conv.btrace (4 processes, 44 states, 20 messages)

  $ cmp run.btrace conv.btrace

  $ wcpdetect convert run.btrace -o back.trace
  wrote back.trace (4 processes, 44 states, 20 messages)

  $ cmp run.trace back.trace

Every read path autodetects the magic, so a btrace file drops in
wherever a text trace does:

  $ wcpdetect detect run.btrace -a token-vc | cut -d'|' -f1
  detected {0:6 1:3 2:8 3:2} 

  $ wcpdetect render run.btrace | tail -1
  messages: 0:0->1 1:2->0 2:0->3 3:2->0 4:2->1 5:3->2 6:2->1 7:0->2 8:0->3 9:2->1 10:0->3 11:3->0 12:1->0 13:1->2 14:1->2 15:1->3 16:3->1 17:3->2 18:3->0 19:1->0

`detect --stream` replays the mmap'd file through the slice cursor
without materialising the dense computation; the cut is identical:

  $ wcpdetect detect run.btrace -a token-vc --stream | cut -d'|' -f1
  detected {0:6 1:3 2:8 3:2} 

  $ wcpdetect detect run.btrace -a token-dd --stream | cut -d'|' -f1
  detected {0:6 1:3 2:8 3:2} 

  $ wcpdetect detect run.btrace -a checker --stream | cut -d'|' -f1
  detected {0:6 1:3 2:8 3:2} 

  $ wcpdetect detect run.btrace -a parallel --stream | cut -d'|' -f1
  detected {0:6 1:3 2:8 3:2} 

Streaming needs the binary store and a detection algorithm, and it
already replays the slice:

  $ wcpdetect detect run.trace -a token-vc --stream
  wcpdetect: run.trace: btrace: bad magic (not a wcp-btrace/1 file)
  [2]

  $ wcpdetect detect run.btrace -a oracle --stream
  wcpdetect: --stream needs a detection algorithm (token-vc, multi-token, token-dd, token-dd-par, checker or parallel)
  [2]

  $ wcpdetect detect run.btrace -a token-vc --stream --slice
  wcpdetect: --stream already detects on the slice; drop --slice
  [2]

Causally unsound text traces die with the offending line attributed
(the ops line that introduced the lost message, the pred line whose
flag count is off), and structural btrace damage is a clean line-0
parse error:

  $ cat > lost.trace <<'XEOF'
  > wcp-trace v1
  > n 2
  > ops 0 S1:0
  > pred 0 0 0
  > ops 1
  > pred 1 0
  > XEOF

  $ wcpdetect detect lost.trace -a oracle
  wcpdetect: lost.trace:3: invalid computation: message 0 never received
  [2]

  $ cat > flags.trace <<'XEOF'
  > wcp-trace v1
  > n 2
  > ops 0 S1:0
  > pred 0 0 1
  > ops 1
  > pred 1 1 0
  > XEOF

  $ wcpdetect detect flags.trace -a oracle
  wcpdetect: flags.trace:6: invalid computation: process 1: 2 predicate flags for 1 states
  [2]

  $ head -c 20 run.btrace > trunc.btrace
  $ wcpdetect detect trunc.btrace -a token-vc
  wcpdetect: trunc.btrace:0: btrace: truncated header (20 bytes)
  [2]
