open Wcp_sim

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_counters () =
  let s = Stats.create ~n:3 in
  Stats.msg_sent s ~proc:0 ~bits:64;
  Stats.msg_sent s ~proc:0 ~bits:32;
  Stats.msg_received s ~proc:1;
  Stats.work s ~proc:2 5;
  Stats.work s ~proc:2 7;
  Stats.space s ~proc:1 10;
  Stats.space s ~proc:1 4;
  Alcotest.(check int) "sent" 2 (Stats.sent s 0);
  Alcotest.(check int) "bits" 96 (Stats.bits s 0);
  Alcotest.(check int) "received" 1 (Stats.received s 1);
  Alcotest.(check int) "work" 12 (Stats.work_of s 2);
  Alcotest.(check int) "space high-water keeps max" 10
    (Stats.space_high_water s 1);
  Alcotest.(check int) "total sent" 2 (Stats.total_sent s);
  Alcotest.(check int) "total bits" 96 (Stats.total_bits s);
  Alcotest.(check int) "total work" 12 (Stats.total_work s);
  Alcotest.(check int) "max work" 12 (Stats.max_work s);
  Alcotest.(check int) "max space" 10 (Stats.max_space s)

let test_stats_merge () =
  let a = Stats.create ~n:2 and b = Stats.create ~n:2 in
  Stats.msg_sent a ~proc:0 ~bits:8;
  Stats.msg_sent b ~proc:0 ~bits:8;
  Stats.space a ~proc:1 3;
  Stats.space b ~proc:1 9;
  Stats.merge_into ~dst:a b;
  Alcotest.(check int) "sent added" 2 (Stats.sent a 0);
  Alcotest.(check int) "space maxed" 9 (Stats.space_high_water a 1);
  let c = Stats.create ~n:3 in
  match Stats.merge_into ~dst:a c with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "size mismatch should fail"

(* ------------------------------------------------------------------ *)
(* Network                                                             *)
(* ------------------------------------------------------------------ *)

let test_constant_latency () =
  let nw = Network.create ~latency:(Network.Constant 2.5) () in
  let rng = Wcp_util.Rng.create 1L in
  Alcotest.(check (float 1e-9)) "constant" 12.5
    (Network.delivery_time nw rng ~src:0 ~dst:1 ~now:10.0)

let test_uniform_bounds () =
  let nw = Network.create ~latency:(Network.Uniform (1.0, 3.0)) () in
  let rng = Wcp_util.Rng.create 2L in
  for _ = 1 to 500 do
    let at = Network.delivery_time nw rng ~src:0 ~dst:1 ~now:5.0 in
    if at < 6.0 || at >= 8.0 then Alcotest.failf "delivery %.3f out of bounds" at
  done

let test_fifo_clamping () =
  let nw =
    Network.create
      ~fifo:(fun ~src:_ ~dst:_ -> true)
      ~latency:(Network.Uniform (0.0, 10.0))
      ()
  in
  let rng = Wcp_util.Rng.create 3L in
  let last = ref neg_infinity in
  for i = 0 to 99 do
    (* Hand messages to the network at increasing times; FIFO demands
       non-decreasing delivery. *)
    let at = Network.delivery_time nw rng ~src:0 ~dst:1 ~now:(float_of_int i *. 0.1) in
    if at < !last then Alcotest.fail "FIFO link reordered";
    last := at
  done

let test_non_fifo_reorders () =
  let nw = Network.create ~latency:(Network.Uniform (0.0, 10.0)) () in
  let rng = Wcp_util.Rng.create 4L in
  let reordered = ref false in
  let last = ref neg_infinity in
  for _ = 1 to 100 do
    let at = Network.delivery_time nw rng ~src:0 ~dst:1 ~now:0.0 in
    if at < !last then reordered := true;
    last := at
  done;
  Alcotest.(check bool) "non-FIFO link reorders eventually" true !reordered

let test_fifo_per_link () =
  (* FIFO on (0,1) must not constrain (0,2). *)
  let nw =
    Network.create
      ~fifo:(fun ~src ~dst -> src = 0 && dst = 1)
      ~latency:(Network.Constant 1.0)
      ()
  in
  let rng = Wcp_util.Rng.create 5L in
  let a = Network.delivery_time nw rng ~src:0 ~dst:1 ~now:10.0 in
  let b = Network.delivery_time nw rng ~src:0 ~dst:2 ~now:0.0 in
  Alcotest.(check (float 1e-9)) "fifo link" 11.0 a;
  Alcotest.(check (float 1e-9)) "independent link" 1.0 b

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_delivery () =
  let e = Engine.create ~num_processes:2 ~seed:1L () in
  let got = ref [] in
  Engine.set_handler e 1 (fun ctx ~src msg ->
      got := (src, msg, Engine.time ctx) :: !got);
  Engine.schedule_initial e ~proc:0 ~at:0.0 (fun ctx ->
      Engine.send ctx ~dst:1 "hello");
  Engine.run e;
  match !got with
  | [ (0, "hello", t) ] ->
      Alcotest.(check bool) "time advanced" true (t > 0.0);
      Alcotest.(check int) "events" 2 (Engine.events_processed e)
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_determinism () =
  let run () =
    let e =
      Engine.create
        ~network:(Network.create ~latency:(Network.Uniform (0.1, 2.0)) ())
        ~num_processes:3 ~seed:9L ()
    in
    let log = Buffer.create 64 in
    for p = 0 to 2 do
      Engine.set_handler e p (fun ctx ~src msg ->
          Buffer.add_string log
            (Printf.sprintf "%d<-%d:%s@%.4f;" p src msg (Engine.time ctx));
          if String.length msg < 3 then
            Engine.send ctx ~dst:((p + 1) mod 3) (msg ^ "x"))
    done;
    Engine.schedule_initial e ~proc:0 ~at:0.0 (fun ctx ->
        Engine.send ctx ~dst:1 "a");
    Engine.run e;
    Buffer.contents log
  in
  Alcotest.(check string) "identical runs" (run ()) (run ())

let test_timer_ordering () =
  let e = Engine.create ~num_processes:1 ~seed:1L () in
  let order = ref [] in
  Engine.set_handler e 0 (fun _ ~src:_ _ -> ());
  Engine.schedule_initial e ~proc:0 ~at:0.0 (fun ctx ->
      Engine.schedule ctx ~delay:3.0 (fun _ -> order := 3 :: !order);
      Engine.schedule ctx ~delay:1.0 (fun _ -> order := 1 :: !order);
      Engine.schedule ctx ~delay:2.0 (fun _ -> order := 2 :: !order));
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !order)

let test_same_time_insertion_order () =
  let e = Engine.create ~num_processes:1 ~seed:1L () in
  let order = ref [] in
  Engine.schedule_initial e ~proc:0 ~at:5.0 (fun _ -> order := "a" :: !order);
  Engine.schedule_initial e ~proc:0 ~at:5.0 (fun _ -> order := "b" :: !order);
  Engine.run e;
  Alcotest.(check (list string)) "ties broken by insertion" [ "a"; "b" ]
    (List.rev !order)

let test_stop () =
  let e = Engine.create ~num_processes:1 ~seed:1L () in
  let fired = ref 0 in
  Engine.schedule_initial e ~proc:0 ~at:0.0 (fun ctx ->
      incr fired;
      Engine.stop ctx);
  Engine.schedule_initial e ~proc:0 ~at:1.0 (fun _ -> incr fired);
  Engine.run e;
  Alcotest.(check int) "later event not processed" 1 !fired;
  Alcotest.(check bool) "stopped" true (Engine.stopped e)

let test_no_handler () =
  let e = Engine.create ~num_processes:2 ~seed:1L () in
  Engine.schedule_initial e ~proc:0 ~at:0.0 (fun ctx ->
      Engine.send ctx ~dst:1 ());
  match Engine.run e with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "missing handler should fail loudly"

let test_event_budget () =
  let e = Engine.create ~max_events:100 ~num_processes:2 ~seed:1L () in
  Engine.set_handler e 0 (fun ctx ~src:_ () -> Engine.send ctx ~dst:1 ());
  Engine.set_handler e 1 (fun ctx ~src:_ () -> Engine.send ctx ~dst:0 ());
  Engine.schedule_initial e ~proc:0 ~at:0.0 (fun ctx ->
      Engine.send ctx ~dst:1 ());
  match Engine.run e with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "runaway ping-pong should hit the budget"

let test_stats_charged () =
  let e = Engine.create ~num_processes:2 ~seed:1L () in
  Engine.set_handler e 1 (fun ctx ~src:_ () ->
      Engine.charge_work ctx 4;
      Engine.note_space ctx 17);
  Engine.schedule_initial e ~proc:0 ~at:0.0 (fun ctx ->
      Engine.send ctx ~bits:100 ~dst:1 ());
  Engine.run e;
  let s = Engine.stats e in
  Alcotest.(check int) "sender counted" 1 (Stats.sent s 0);
  Alcotest.(check int) "bits counted" 100 (Stats.bits s 0);
  Alcotest.(check int) "receiver counted" 1 (Stats.received s 1);
  Alcotest.(check int) "work charged" 4 (Stats.work_of s 1);
  Alcotest.(check int) "space noted" 17 (Stats.space_high_water s 1)

let test_run_twice () =
  let e = Engine.create ~num_processes:1 ~seed:1L () in
  Engine.run e;
  match Engine.run e with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "second run should be rejected"

let test_self_send () =
  (* A process may send to itself through the network (used nowhere in
     the protocols, but the engine should permit it). *)
  let e = Engine.create ~num_processes:1 ~seed:1L () in
  let got = ref false in
  Engine.set_handler e 0 (fun _ ~src msg ->
      if src = 0 && msg = 42 then got := true);
  Engine.schedule_initial e ~proc:0 ~at:0.0 (fun ctx ->
      Engine.send ctx ~dst:0 42);
  Engine.run e;
  Alcotest.(check bool) "self delivery" true !got

let test_fifo_network_in_engine () =
  let nw =
    Network.create
      ~fifo:(fun ~src:_ ~dst:_ -> true)
      ~latency:(Network.Uniform (0.0, 5.0))
      ()
  in
  let e = Engine.create ~network:nw ~num_processes:2 ~seed:12L () in
  let got = ref [] in
  Engine.set_handler e 1 (fun _ ~src:_ i -> got := i :: !got);
  Engine.schedule_initial e ~proc:0 ~at:0.0 (fun ctx ->
      for i = 1 to 50 do
        Engine.send ctx ~dst:1 i
      done);
  Engine.run e;
  Alcotest.(check (list int)) "in-order delivery"
    (List.init 50 (fun i -> i + 1))
    (List.rev !got)

(* ------------------------------------------------------------------ *)
(* Watchdog lease growth and stand-down                                *)
(* ------------------------------------------------------------------ *)

(* A watched peer that keeps answering "received, still holding" earns
   linearly growing leases — lease * (1 + probes) — and after
   [max_probes] unproductive probes the watchdog stands down
   observably: obs event, Stats counter, disarmed state. *)
let test_watchdog_lease_growth_and_stand_down () =
  let module Wd = Wcp_core.Watchdog in
  let module M = Wcp_core.Messages in
  let recorder = Wcp_obs.Recorder.create () in
  let e =
    Engine.create
      ~network:(Network.create ~latency:(Network.Constant 0.0) ())
      ~recorder ~num_processes:2 ~seed:1L ()
  in
  let wd = Wd.create ~lease:1.0 ~max_probes:3 () in
  let probe_times = ref [] in
  Engine.set_handler e 1 (fun ctx ~src (msg : M.t) ->
      match msg with
      | M.Wd_probe { seq } ->
          probe_times := Engine.time ctx :: !probe_times;
          Engine.send ctx ~dst:src
            (M.Wd_reply { seq; received = true; holding = true })
      | _ -> ());
  Engine.set_handler e 0 (fun ctx ~src:_ (msg : M.t) ->
      match msg with
      | M.Wd_reply { seq; received; holding } ->
          Wd.on_reply wd ctx ~seq ~received ~holding
      | _ -> ());
  Engine.schedule_initial e ~proc:0 ~at:0.0 (fun ctx ->
      Wd.watch wd ctx ~seq:1 ~dst:1 ~resend:(fun _ -> ()) ());
  Engine.run e;
  (* Probe k arrives after a lease of 1.0 * k: at 1, 3, 6, then the
     max_probes+1st at 10, whose reply trips the stand-down. *)
  Alcotest.(check (list (float 1e-9)))
    "linear lease growth" [ 1.0; 3.0; 6.0; 10.0 ]
    (List.rev !probe_times);
  Alcotest.(check int) "stand-down counted" 1
    (Stats.wd_stand_downs (Engine.stats e));
  Alcotest.(check int) "watchdog disarmed" 0 (Wd.seq wd);
  let stood_down =
    Array.exists
      (fun (ev : Wcp_obs.Event.t) ->
        match ev.body with
        | Wcp_obs.Event.Watchdog_stood_down { seq = 1; dst = 1 } -> true
        | _ -> false)
      (Wcp_obs.Recorder.events recorder)
  in
  Alcotest.(check bool) "stand-down event emitted" true stood_down

(* In reprobe (monitor-liveness) mode a silent peer is re-probed once
   per lease instead of waited on forever, and exhaustion stands the
   watchdog down just the same. *)
let test_watchdog_reprobe_silent_peer () =
  let module Wd = Wcp_core.Watchdog in
  let module M = Wcp_core.Messages in
  let e =
    Engine.create
      ~network:(Network.create ~latency:(Network.Constant 0.0) ())
      ~num_processes:2 ~seed:1L ()
  in
  let wd = Wd.create ~lease:1.0 ~max_probes:3 ~reprobe:true () in
  let probes = ref 0 in
  Engine.set_handler e 1 (fun _ ~src:_ (msg : M.t) ->
      match msg with M.Wd_probe _ -> incr probes | _ -> ());
  Engine.set_handler e 0 (fun _ ~src:_ (_ : M.t) -> ());
  Engine.schedule_initial e ~proc:0 ~at:0.0 (fun ctx ->
      Wd.watch wd ctx ~seq:1 ~dst:1 ~resend:(fun _ -> ()) ());
  Engine.run e;
  Alcotest.(check int) "one probe per burned credit" 4 !probes;
  Alcotest.(check int) "gave up once" 1 (Stats.wd_stand_downs (Engine.stats e));
  Alcotest.(check int) "disarmed" 0 (Wd.seq wd)

let () =
  Alcotest.run "sim"
    [
      ( "stats",
        [
          Alcotest.test_case "counters" `Quick test_stats_counters;
          Alcotest.test_case "merge" `Quick test_stats_merge;
        ] );
      ( "network",
        [
          Alcotest.test_case "constant latency" `Quick test_constant_latency;
          Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
          Alcotest.test_case "fifo clamping" `Quick test_fifo_clamping;
          Alcotest.test_case "non-fifo reorders" `Quick test_non_fifo_reorders;
          Alcotest.test_case "fifo per link" `Quick test_fifo_per_link;
        ] );
      ( "engine",
        [
          Alcotest.test_case "delivery" `Quick test_delivery;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "timer ordering" `Quick test_timer_ordering;
          Alcotest.test_case "tie-break by insertion" `Quick
            test_same_time_insertion_order;
          Alcotest.test_case "stop" `Quick test_stop;
          Alcotest.test_case "missing handler" `Quick test_no_handler;
          Alcotest.test_case "event budget" `Quick test_event_budget;
          Alcotest.test_case "stats charged" `Quick test_stats_charged;
          Alcotest.test_case "run twice" `Quick test_run_twice;
          Alcotest.test_case "self send" `Quick test_self_send;
          Alcotest.test_case "fifo in engine" `Quick
            test_fifo_network_in_engine;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "linear lease growth, stand-down edge" `Quick
            test_watchdog_lease_growth_and_stand_down;
          Alcotest.test_case "reprobe mode survives a silent peer" `Quick
            test_watchdog_reprobe_silent_peer;
        ] );
    ]
