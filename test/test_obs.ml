(* The observability plane: the JSONL codec round-trips arbitrary
   events (property), equal-seed traced runs are byte-identical,
   emitted logs validate against the wcp-events/1 schema, and
   attaching a recorder is invisible to the run it observes. The full
   algorithm x seed validation corpus is gated behind WCP_TRACE_CHECK=1
   (make trace-check); a bounded smoke of the same check always runs. *)

open Wcp_trace
open Wcp_sim
open Wcp_core
open Wcp_obs

(* ------------------------------------------------------------------ *)
(* Codec round-trip property                                           *)
(* ------------------------------------------------------------------ *)

let gen_body : Event.body QCheck2.Gen.t =
  let open QCheck2.Gen in
  let small = int_range 0 64 in
  let vec = array_size (int_range 0 6) (int_range 0 99) in
  let name = oneofl [ "token-vc"; "token-dd"; "gcp"; "c:0->1"; "\"q\"\n" ] in
  oneof
    [
      map3 (fun algo n width -> Event.Run_meta { algo; n; width }) name small
        small;
      map2 (fun dst bits -> Event.Sent { dst; bits }) small small;
      map (fun src -> Event.Delivered { src }) small;
      map2 (fun src state -> Event.Snapshot_arrived { src; state }) small small;
      map3
        (fun k proc state -> Event.Candidate_advanced { k; proc; state })
        small small small;
      map2
        (fun (by_k, by_proc, by_state, by_clock)
             (victim_k, victim_proc, victim_state, witness) ->
          Event.Vc_advanced
            {
              by_k;
              by_proc;
              by_state;
              by_clock;
              victim_k;
              victim_proc;
              victim_state;
              witness;
            })
        (quad small small small vec)
        (quad small small small small);
      map2
        (fun (victim_proc, victim_state) (poll_clock, poller_proc) ->
          Event.Dd_eliminated
            { victim_proc; victim_state; poll_clock; poller_proc })
        (pair small small) (pair small small);
      map2
        (fun after_proc proc -> Event.Chain_extended { after_proc; proc })
        small small;
      map2
        (fun (victim_k, victim_proc, victim_state, victim_clock)
             (by_k, by_proc, by_state, by_clock) ->
          Event.Hb_eliminated
            {
              victim_k;
              victim_proc;
              victim_state;
              victim_clock;
              by_k;
              by_proc;
              by_state;
              by_clock;
            })
        (quad small small small vec)
        (quad small small small vec);
      map3
        (fun channel victim_proc victim_state ->
          Event.Channel_eliminated { channel; victim_proc; victim_state })
        name small small;
      map3 (fun seq dst g -> Event.Token_sent { seq; dst; g }) small small vec;
      map (fun seq -> Event.Token_received { seq }) small;
      map2 (fun seq dst -> Event.Token_regenerated { seq; dst }) small small;
      map2 (fun dst clock -> Event.Poll_sent { dst; clock }) small small;
      map2
        (fun dst became_red -> Event.Poll_replied { dst; became_red })
        small bool;
      map2 (fun seq dst -> Event.Probe_sent { seq; dst }) small small;
      map2
        (fun dst frame_seq -> Event.Retransmitted { dst; frame_seq })
        small small;
      map (fun round -> Event.Merged { round }) small;
      map3
        (fun round frontier eliminated ->
          Event.Round_advanced { round; frontier; eliminated })
        small vec small;
      map2 (fun procs states -> Event.Detected { procs; states }) vec vec;
      map
        (fun name -> Event.Phase_marked { name })
        (oneofl [ "build"; "detect"; "slice"; "recovery" ]);
      return Event.No_detection_declared;
    ]

let gen_event : Event.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  map3
    (fun seq (time, proc) body -> { Event.seq; time; proc; body })
    (int_range 0 100_000)
    (pair (float_bound_inclusive 5000.0) (int_range (-1) 128))
    gen_body

let qtest ?(count = 500) name gen print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen prop)

let codec_roundtrip =
  qtest "decode_line inverts encode_line" gen_event
    (Format.asprintf "%a" Event.pp)
    (fun e ->
      match Export.decode_line (Export.encode_line e) with
      | Error msg -> QCheck2.Test.fail_reportf "decode failed: %s" msg
      | Ok e' -> Event.equal e e')

let doc_roundtrip =
  qtest ~count:100 "of_jsonl inverts jsonl"
    QCheck2.Gen.(array_size (int_range 0 30) gen_event)
    (fun evs ->
      String.concat "\n"
        (Array.to_list (Array.map (Format.asprintf "%a" Event.pp) evs)))
    (fun evs ->
      match Export.of_jsonl (Export.jsonl evs) with
      | Error msg -> QCheck2.Test.fail_reportf "of_jsonl failed: %s" msg
      | Ok back ->
          Array.length back = Array.length evs
          && Array.for_all2 Event.equal back evs)

let test_decode_errors () =
  let bad s =
    match Export.decode_line s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted malformed line %S" s
  in
  bad "";
  bad "{";
  bad "[1,2]";
  bad {|{"seq":0,"t":0.0,"proc":1}|};
  (* missing type *)
  bad {|{"seq":0,"t":0.0,"proc":1,"type":"no_such_kind"}|};
  bad {|{"seq":0,"t":0.0,"proc":1,"type":"sent","dst":3}|}
(* missing bits *)

(* ------------------------------------------------------------------ *)
(* Traced runs: determinism and invisibility                           *)
(* ------------------------------------------------------------------ *)

let comp_of ~n ~m ~seed =
  Generator.random
    ~params:{ Generator.n; sends_per_process = m; p_pred = 0.3; p_recv = 0.5 }
    ~seed ()

let run_traced algo ~n ~m ~seed =
  let comp = comp_of ~n ~m ~seed in
  let spec = Spec.all comp in
  let recorder = Recorder.create () in
  (match algo with
  | "token-vc" -> ignore (Token_vc.detect ~recorder ~seed comp spec)
  | "token-dd" -> ignore (Token_dd.detect ~recorder ~seed comp spec)
  | "token-dd-par" ->
      ignore (Token_dd.detect ~parallel:true ~recorder ~seed comp spec)
  | "token-multi" ->
      ignore (Token_multi.detect ~groups:2 ~recorder ~seed comp spec)
  | "checker" -> ignore (Checker_centralized.detect ~recorder ~seed comp spec)
  | a -> invalid_arg a);
  Recorder.events recorder

let test_equal_seed_byte_identical () =
  let a = run_traced "token-vc" ~n:6 ~m:10 ~seed:5L in
  let b = run_traced "token-vc" ~n:6 ~m:10 ~seed:5L in
  Alcotest.(check string) "same seed, same bytes" (Export.jsonl a)
    (Export.jsonl b);
  let c = run_traced "token-vc" ~n:6 ~m:10 ~seed:6L in
  Alcotest.(check bool) "different seed, different log" false
    (Export.jsonl a = Export.jsonl c)

let test_tracing_invisible () =
  List.iter
    (fun seed ->
      let comp = comp_of ~n:6 ~m:10 ~seed in
      let spec = Spec.all comp in
      let plain = Token_vc.detect ~seed comp spec in
      let recorder = Recorder.create () in
      let traced = Token_vc.detect ~recorder ~seed comp spec in
      Alcotest.check Helpers.outcome "same outcome" plain.outcome traced.outcome;
      Alcotest.(check int) "same messages"
        (Stats.total_sent plain.stats)
        (Stats.total_sent traced.stats);
      Alcotest.(check int) "same bits"
        (Stats.total_bits plain.stats)
        (Stats.total_bits traced.stats);
      Alcotest.(check int) "same work"
        (Stats.total_work plain.stats)
        (Stats.total_work traced.stats);
      Alcotest.(check int) "same events" plain.events traced.events;
      Alcotest.(check bool) "same sim time" true
        (plain.sim_time = traced.sim_time);
      Alcotest.(check bool) "recorder saw the run" true
        (Recorder.emitted recorder > 0))
    [ 1L; 2L; 3L ]

(* ------------------------------------------------------------------ *)
(* Schema validation (shared by the smoke and the gated corpus)        *)
(* ------------------------------------------------------------------ *)

let validate_log tag events =
  if Array.length events = 0 then Alcotest.failf "%s: empty log" tag;
  (* The serialised form must re-parse to the same events... *)
  (match Export.of_jsonl (Export.jsonl events) with
  | Error msg -> Alcotest.failf "%s: re-parse failed: %s" tag msg
  | Ok back ->
      if not (Array.for_all2 Event.equal back events) then
        Alcotest.failf "%s: log changed in the round-trip" tag);
  (* ...every line must be plain JSON any tool can read... *)
  String.split_on_char '\n' (Export.jsonl events)
  |> List.iteri (fun i line ->
         if line <> "" then
           match Wcp_bench.Bench_json.Json.parse line with
           | exception Wcp_bench.Bench_json.Json.Parse_error msg ->
               Alcotest.failf "%s: line %d is not JSON: %s" tag (i + 1) msg
           | j ->
               let open Wcp_bench.Bench_json.Json in
               let kind = to_str (member "type" j) in
               if not (List.mem kind Event.kinds) then
                 Alcotest.failf "%s: line %d has unknown type %s" tag (i + 1)
                   kind);
  (* ...and the event stream itself must be well-formed. Phase marks
     may precede [run_meta] (the slice phase legally runs before the
     detector announces itself); the first {e non-phase} event must be
     the meta line. *)
  (let rec check_opening i =
     if i >= Array.length events then
       Alcotest.failf "%s: log has no run_meta" tag
     else
       match events.(i).Event.body with
       | Event.Phase_marked _ -> check_opening (i + 1)
       | Event.Run_meta _ -> ()
       | b ->
           Alcotest.failf "%s: log opens with %s, not run_meta" tag
             (Event.kind b)
   in
   check_opening 0);
  let last_t = ref 0.0 in
  Array.iteri
    (fun i (e : Event.t) ->
      if e.Event.seq <> i then Alcotest.failf "%s: seq gap at %d" tag i;
      if e.Event.time < !last_t then
        Alcotest.failf "%s: time went backwards at event %d" tag i;
      last_t := e.Event.time;
      if e.Event.proc < -1 then Alcotest.failf "%s: bad proc at %d" tag i)
    events;
  (* The Chrome export of the same log must be a JSON document. *)
  match Wcp_bench.Bench_json.Json.parse (Export.chrome events) with
  | exception Wcp_bench.Bench_json.Json.Parse_error msg ->
      Alcotest.failf "%s: chrome export is not JSON: %s" tag msg
  | j ->
      ignore
        (Wcp_bench.Bench_json.Json.to_list
           (Wcp_bench.Bench_json.Json.member "traceEvents" j))

let corpus ~algos ~sizes ~seeds =
  List.iter
    (fun algo ->
      List.iter
        (fun (n, m) ->
          List.iter
            (fun s ->
              let seed = Int64.of_int s in
              let tag = Printf.sprintf "%s n=%d m=%d seed=%d" algo n m s in
              validate_log tag (run_traced algo ~n ~m ~seed))
            seeds)
        sizes)
    algos

let test_schema_smoke () =
  corpus ~algos:[ "token-vc"; "token-dd" ] ~sizes:[ (5, 8) ] ~seeds:[ 1 ]

let test_schema_corpus () =
  if Sys.getenv_opt "WCP_TRACE_CHECK" = None then ()
  else
    corpus
      ~algos:
        [ "token-vc"; "token-dd"; "token-dd-par"; "token-multi"; "checker" ]
      ~sizes:[ (4, 8); (8, 12); (12, 10) ]
      ~seeds:[ 1; 2; 3 ]

let () =
  Alcotest.run "obs"
    [
      ( "codec",
        [
          codec_roundtrip;
          doc_roundtrip;
          Alcotest.test_case "malformed lines rejected" `Quick
            test_decode_errors;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "equal seeds, identical bytes" `Quick
            test_equal_seed_byte_identical;
          Alcotest.test_case "recording is invisible" `Quick
            test_tracing_invisible;
        ] );
      ( "schema",
        [
          Alcotest.test_case "emitted logs validate (smoke)" `Quick
            test_schema_smoke;
          Alcotest.test_case "full corpus (WCP_TRACE_CHECK=1)" `Slow
            test_schema_corpus;
        ] );
    ]
