(* End-to-end chaos: the token detectors under a lossy, duplicating,
   spiking network — and under process crashes — compared against the
   fault-free oracle. *)

open Wcp_trace
open Wcp_core
open Wcp_sim

(* The seeded corpus: enough shapes to exercise No_detection, immediate
   detection, and late detection, without making the suite slow. *)
let corpus =
  List.concat_map
    (fun params -> List.map (fun s -> (params, s)) [ 1; 2; 3 ])
    [
      (2, 3, 60, 50, 11);
      (3, 4, 50, 50, 12);
      (4, 5, 40, 60, 13);
      (4, 6, 0, 50, 14);
      (* never detectable *)
      (4, 6, 100, 50, 15);
      (* initial cut *)
      (5, 6, 55, 40, 16);
    ]

let chaos ~seed = Fault.uniform ~seed ~drop:0.2 ~dup:0.1 ()

let check_against_oracle name detect project =
  List.iter
    (fun (params, s) ->
      let comp = Helpers.build_comp params in
      let spec = Spec.all comp in
      let expected = Oracle.first_cut comp spec in
      let seed = Int64.of_int s in
      let r = detect ~fault:(chaos ~seed) ~seed comp spec in
      let got =
        if project then Detection.project_outcome spec r.Detection.outcome
        else r.Detection.outcome
      in
      Alcotest.check Helpers.outcome
        (Format.asprintf "%s %s seed %d" name
           (Format.asprintf "%a" Computation.pp_summary comp)
           s)
        expected got)
    corpus

let test_vc_chaos_matches_oracle () =
  check_against_oracle "token-vc"
    (fun ~fault ~seed comp spec -> Token_vc.detect ~fault ~seed comp spec)
    false

let test_dd_chaos_matches_oracle () =
  check_against_oracle "token-dd"
    (fun ~fault ~seed comp spec -> Token_dd.detect ~fault ~seed comp spec)
    true

let test_multi_chaos_matches_oracle () =
  check_against_oracle "token-multi"
    (fun ~fault ~seed comp spec ->
      let groups = min 2 (Spec.width spec) in
      Token_multi.detect ~fault ~groups ~seed comp spec)
    false

(* Chaos must not change WHAT is computed, only how hard it is: the
   same plan twice gives identical results and identical cost totals. *)
let test_chaos_deterministic () =
  let comp = Helpers.build_comp (4, 5, 40, 60, 13) in
  let spec = Spec.all comp in
  let run () =
    let r = Token_vc.detect ~fault:(chaos ~seed:7L) ~seed:7L comp spec in
    Format.asprintf "%a | sent=%d retx=%d dropped=%d t=%.9f"
      Detection.pp_outcome r.Detection.outcome
      (Stats.total_sent r.Detection.stats)
      (Stats.total_retransmits r.Detection.stats)
      (Stats.net_dropped r.Detection.stats)
      r.Detection.sim_time
  in
  Alcotest.(check string) "bit-identical chaos" (run ()) (run ())

(* Passing [Fault.none] must leave every observable of the run — cut,
   costs, timing, event count — identical to not passing a plan. *)
let test_fault_none_identical () =
  List.iter
    (fun (params, s) ->
      let comp = Helpers.build_comp params in
      let spec = Spec.all comp in
      let seed = Int64.of_int s in
      let show (r : Detection.result) =
        Format.asprintf "%a sent=%d bits=%d work=%d events=%d t=%.9f hops=%d"
          Detection.pp_outcome r.outcome
          (Stats.total_sent r.stats) (Stats.total_bits r.stats)
          (Stats.total_work r.stats) r.events r.sim_time r.extras.token_hops
      in
      Alcotest.(check string) "vc: Fault.none ≡ no plan"
        (show (Token_vc.detect ~seed comp spec))
        (show (Token_vc.detect ~fault:Fault.none ~seed comp spec));
      Alcotest.(check string) "dd: Fault.none ≡ no plan"
        (show (Token_dd.detect ~seed comp spec))
        (show (Token_dd.detect ~fault:Fault.none ~seed comp spec)))
    corpus

(* A monitor that is permanently crashed mid-run must yield graceful
   degradation, not a hang: the transport gives up on the dead peer and
   the run reports who was lost. *)
let crash_monitor_plan comp ~at =
  let n = Computation.n comp in
  (* Engine id of the monitor of application process 0. *)
  let mon0 = n + 0 in
  Fault.make
    ~windows:[ Fault.window ~kind:Fault.Crash ~proc:mon0 ~from_t:at () ]
    ()

let expect_undetectable name (r : Detection.result) =
  match r.Detection.outcome with
  | Detection.Undetectable_crashed procs ->
      Alcotest.(check bool)
        (name ^ ": crash report is non-empty")
        true (procs <> [])
  | o ->
      Alcotest.failf "%s: expected Undetectable_crashed, got %a" name
        Detection.pp_outcome o

let test_vc_permanent_crash_degrades () =
  let comp = Helpers.build_comp (4, 5, 40, 60, 13) in
  let spec = Spec.all comp in
  expect_undetectable "token-vc"
    (Token_vc.detect ~fault:(crash_monitor_plan comp ~at:0.0) ~seed:3L comp spec)

let test_dd_permanent_crash_degrades () =
  let comp = Helpers.build_comp (4, 5, 40, 60, 13) in
  let spec = Spec.all comp in
  expect_undetectable "token-dd"
    (Token_dd.detect ~fault:(crash_monitor_plan comp ~at:0.0) ~seed:3L comp spec)

let test_multi_permanent_crash_degrades () =
  let comp = Helpers.build_comp (4, 5, 40, 60, 13) in
  let spec = Spec.all comp in
  expect_undetectable "token-multi"
    (Token_multi.detect
       ~fault:(crash_monitor_plan comp ~at:0.0)
       ~groups:2 ~seed:3L comp spec)

(* A transient crash loses in-flight messages but the process comes
   back; retransmission + the token watchdog must heal the run and the
   verdict must still match the oracle. *)
let test_transient_crash_heals () =
  List.iter
    (fun (params, s) ->
      let comp = Helpers.build_comp params in
      let n = Computation.n comp in
      let spec = Spec.all comp in
      let fault =
        Fault.make
          ~windows:
            [
              Fault.window ~kind:Fault.Crash ~proc:(n + 0) ~from_t:1.0
                ~until_t:9.0 ();
            ]
          ()
      in
      let seed = Int64.of_int s in
      let expected = Oracle.first_cut comp spec in
      Alcotest.check Helpers.outcome
        (Printf.sprintf "vc heals, seed %d" s)
        expected
        (Token_vc.detect ~fault ~seed comp spec).Detection.outcome;
      Alcotest.check Helpers.outcome
        (Printf.sprintf "dd heals, seed %d" s)
        expected
        (Detection.project_outcome spec
           (Token_dd.detect ~fault ~seed comp spec).Detection.outcome))
    [ ((3, 4, 50, 50, 12), 1); ((4, 5, 40, 60, 13), 2); ((4, 6, 0, 50, 14), 3) ]

(* A stall is weaker than a crash: nothing is lost, so even without
   retransmission kicking in the verdict is unchanged. *)
let test_stall_preserves_verdict () =
  let comp = Helpers.build_comp (4, 5, 40, 60, 13) in
  let n = Computation.n comp in
  let spec = Spec.all comp in
  let fault =
    Fault.make
      ~windows:
        [ Fault.window ~kind:Fault.Stall ~proc:(n + 1) ~from_t:0.5 ~until_t:40.0 () ]
      ()
  in
  Alcotest.check Helpers.outcome "stalled monitor still answers"
    (Oracle.first_cut comp spec)
    (Token_vc.detect ~fault ~seed:5L comp spec).Detection.outcome

(* Restart windows compose with link chaos: under drop + dup + a
   mid-run monitor restart, equal seeds reproduce the run bit for bit
   — recovery counters included — and the healed verdict still matches
   the fault-free oracle. *)
let test_restart_composes_with_chaos =
  Helpers.qtest ~count:10 "restart composes with drop/dup"
    QCheck2.Gen.(
      tup3
        (Helpers.gen_comp_params ~max_n:5 ~max_sends:6)
        (int_range 0 9_999) (int_range 0 3))
    (fun (params, s, w) ->
      let comp = Helpers.build_comp params in
      let n = Computation.n comp in
      let spec = Spec.all comp in
      let from_t = 0.5 +. float_of_int w in
      let fault () =
        Fault.uniform ~seed:(Int64.of_int s) ~drop:0.15 ~dup:0.1
          ~windows:
            [
              Fault.window ~kind:Fault.Restart ~proc:(n + (s mod n)) ~from_t
                ~until_t:(from_t +. 6.0) ();
            ]
          ()
      in
      let seed = Int64.of_int s in
      let show (r : Detection.result) =
        Format.asprintf
          "%a sent=%d retx=%d replayed=%d ckpts=%d restores=%d t=%.9f"
          Detection.pp_outcome r.outcome
          (Stats.total_sent r.stats)
          (Stats.total_retransmits r.stats)
          (Stats.replayed r.stats) (Stats.checkpoints r.stats)
          (Stats.restores r.stats) r.sim_time
      in
      let a = Token_vc.detect ~fault:(fault ()) ~seed comp spec in
      let b = Token_vc.detect ~fault:(fault ()) ~seed comp spec in
      Alcotest.(check string) "equal seeds, identical runs" (show a) (show b);
      Alcotest.check Helpers.outcome "healed verdict matches oracle"
        (Oracle.first_cut comp spec) a.Detection.outcome;
      true)

(* A plan with zero rates and no windows stays a strict no-op even for
   random seeds — the recovery layer must not perturb it. *)
let test_zero_fault_plan_untouched =
  Helpers.qtest ~count:10 "zero-fault restart-free plans unchanged"
    QCheck2.Gen.(
      pair (Helpers.gen_comp_params ~max_n:4 ~max_sends:5) (int_range 0 9_999))
    (fun (params, s) ->
      let comp = Helpers.build_comp params in
      let spec = Spec.all comp in
      let seed = Int64.of_int s in
      let show (r : Detection.result) =
        Format.asprintf "%a sent=%d bits=%d events=%d t=%.9f"
          Detection.pp_outcome r.outcome
          (Stats.total_sent r.stats) (Stats.total_bits r.stats) r.events
          r.sim_time
      in
      let bare = show (Token_vc.detect ~seed comp spec) in
      Alcotest.(check string) "uniform () ≡ no plan" bare
        (show
           (Token_vc.detect
              ~fault:(Fault.uniform ~seed:(Int64.of_int s) ())
              ~seed comp spec));
      true)

let () =
  Alcotest.run "chaos"
    [
      ( "oracle-agreement",
        [
          Alcotest.test_case "token-vc under drop+dup" `Quick
            test_vc_chaos_matches_oracle;
          Alcotest.test_case "token-dd under drop+dup" `Quick
            test_dd_chaos_matches_oracle;
          Alcotest.test_case "token-multi under drop+dup" `Quick
            test_multi_chaos_matches_oracle;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "chaos runs are reproducible" `Quick
            test_chaos_deterministic;
          Alcotest.test_case "Fault.none is a no-op" `Quick
            test_fault_none_identical;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "vc: permanent crash reported" `Quick
            test_vc_permanent_crash_degrades;
          Alcotest.test_case "dd: permanent crash reported" `Quick
            test_dd_permanent_crash_degrades;
          Alcotest.test_case "multi: permanent crash reported" `Quick
            test_multi_permanent_crash_degrades;
          Alcotest.test_case "transient crash heals" `Quick
            test_transient_crash_heals;
          Alcotest.test_case "stall preserves the verdict" `Quick
            test_stall_preserves_verdict;
        ] );
      ( "restart-composition",
        [ test_restart_composes_with_chaos; test_zero_fault_plan_untouched ] );
    ]
