(* The machine-readable bench harness: JSON round-trip, schema
   stability, and the determinism contract (sequential and parallel
   sweeps must produce identical metrics). Runs the smoke profile, so
   this doubles as an end-to-end exercise of the E1-E8 job runner
   inside `dune runtest`. *)

open Wcp_bench

let smoke_seq = lazy (Bench_json.run ~domains:1 Bench_json.Smoke)

let test_smoke_runs () =
  let results = Lazy.force smoke_seq in
  Alcotest.(check int) "all jobs ran"
    (List.length (Bench_json.jobs Bench_json.Smoke))
    (Array.length results);
  Array.iter
    (fun (r : Bench_json.metrics) ->
      (* E15 rows report the parallel-batch byte-identity check instead
         of a detection verdict; E17/E18 detections spell out the cut
         so the baseline pins it byte-for-byte. *)
      let detected_cut s =
        String.length s > 9 && String.sub s 0 9 = "detected "
      in
      let valid =
        if r.job.experiment = "E15" then r.outcome = "ok"
        else
          r.outcome = "detected" || r.outcome = "none"
          || detected_cut r.outcome
      in
      Alcotest.(check bool)
        (Bench_json.job_key r.job ^ " has an outcome")
        true valid;
      Alcotest.(check bool)
        (Bench_json.job_key r.job ^ " did simulation work")
        true (r.events > 0))
    results

let test_json_roundtrip () =
  let results = Lazy.force smoke_seq in
  let doc = Bench_json.emit ~profile:Bench_json.Smoke results in
  let profile, parsed = Bench_json.parse_doc doc in
  Alcotest.(check string) "profile survives" "smoke"
    (Bench_json.profile_name profile);
  Alcotest.(check int) "record count" (Array.length results)
    (Array.length parsed);
  Array.iteri
    (fun i r ->
      if not (r = results.(i)) then
        Alcotest.failf "record %d changed in the round-trip: %s" i
          (Bench_json.job_key r.Bench_json.job))
    parsed

let test_json_values () =
  (* Spot-check the emitted document is plain JSON other tools can
     read: parse with the generic parser and navigate by hand. *)
  let results = Lazy.force smoke_seq in
  let doc = Bench_json.emit ~profile:Bench_json.Smoke results in
  let j = Bench_json.Json.parse doc in
  let open Bench_json.Json in
  Alcotest.(check string) "schema" Bench_json.schema
    (to_str (member "schema" j));
  let first = List.hd (to_list (member "results" j)) in
  Alcotest.(check string) "experiment" "E1" (to_str (member "experiment" first));
  Alcotest.(check bool) "wall_ns is an int" true
    (match member "wall_ns" first with Int _ -> true | _ -> false)

let test_parallel_matches_sequential () =
  let seq = Lazy.force smoke_seq in
  let par = Bench_json.run ~domains:2 Bench_json.Smoke in
  Alcotest.(check int) "same length" (Array.length seq) (Array.length par);
  Array.iteri
    (fun i s ->
      if not (Bench_json.deterministic_equal s par.(i)) then
        Alcotest.failf "parallel run diverged on %s"
          (Bench_json.job_key s.Bench_json.job))
    seq

let test_compare_runs_self () =
  let results = Lazy.force smoke_seq in
  Alcotest.(check (list string)) "self-compare is clean" []
    (Bench_json.compare_runs ~baseline:results ~current:results ())

let test_compare_runs_detects_drift () =
  let results = Lazy.force smoke_seq in
  let tampered = Array.map (fun r -> r) results in
  tampered.(0) <- { tampered.(0) with Bench_json.hops = 999_999 };
  match Bench_json.compare_runs ~baseline:results ~current:tampered () with
  | [] -> Alcotest.fail "drifted metrics went unnoticed"
  | _ :: _ -> ()

let test_parse_errors () =
  let bad s =
    match Bench_json.parse_doc s with
    | _ -> Alcotest.failf "accepted malformed input %S" s
    | exception Bench_json.Json.Parse_error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,2,3]";
  bad "{\"schema\":\"other/9\",\"profile\":\"smoke\",\"results\":[]}"

let () =
  Alcotest.run "bench-json"
    [
      ( "harness",
        [
          Alcotest.test_case "smoke profile runs" `Quick test_smoke_runs;
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "json values" `Quick test_json_values;
          Alcotest.test_case "parallel = sequential" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "compare: self" `Quick test_compare_runs_self;
          Alcotest.test_case "compare: drift" `Quick
            test_compare_runs_detects_drift;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
    ]
