open Wcp_trace
open Wcp_core

let qtest = Helpers.qtest

(* Primitives used throughout: the recorded flag, state parity, and
   state-index thresholds. *)
let flag comp p = Boolean.of_recorded_pred comp ~proc:p

let even p = Boolean.prim ~proc:p ~name:"even" ~holds:(fun k -> k mod 2 = 0)

let after p k0 = Boolean.prim ~proc:p ~name:"late" ~holds:(fun k -> k >= k0)

(* ------------------------------------------------------------------ *)
(* DNF                                                                 *)
(* ------------------------------------------------------------------ *)

let lit_names c = List.map (fun l -> l.Boolean.lit_name) c

let test_dnf_shapes () =
  let a = Boolean.prim ~proc:0 ~name:"a" ~holds:(fun _ -> true) in
  let b = Boolean.prim ~proc:1 ~name:"b" ~holds:(fun _ -> true) in
  let c = Boolean.prim ~proc:2 ~name:"c" ~holds:(fun _ -> true) in
  (* a ∧ (b ∨ c)  →  (a ∧ b) ∨ (a ∧ c) *)
  let d = Boolean.dnf (Boolean.and_ [ a; Boolean.or_ [ b; c ] ]) in
  Alcotest.(check (list (list string)))
    "distribution"
    [ [ "a"; "b" ]; [ "a"; "c" ] ]
    (List.map lit_names d);
  (* ¬(a ∨ b)  →  ¬a ∧ ¬b *)
  let d = Boolean.dnf (Boolean.not_ (Boolean.or_ [ a; b ])) in
  Alcotest.(check (list (list string))) "de morgan" [ [ "¬a"; "¬b" ] ]
    (List.map lit_names d);
  (* ¬¬a → a *)
  let d = Boolean.dnf (Boolean.not_ (Boolean.not_ a)) in
  Alcotest.(check (list (list string))) "double negation" [ [ "a" ] ]
    (List.map lit_names d);
  Alcotest.(check int) "true is one empty disjunct" 1
    (List.length (Boolean.dnf (Boolean.const true)));
  Alcotest.(check int) "false is no disjunct" 0
    (List.length (Boolean.dnf (Boolean.const false)))

let test_dnf_blowup_guard () =
  (* (a1 ∨ b1) ∧ (a2 ∨ b2) ∧ ... blows up exponentially. *)
  let clause i =
    Boolean.or_
      [
        Boolean.prim ~proc:0 ~name:(Printf.sprintf "a%d" i) ~holds:(fun _ -> true);
        Boolean.prim ~proc:0 ~name:(Printf.sprintf "b%d" i) ~holds:(fun _ -> true);
      ]
  in
  let expr = Boolean.and_ (List.init 12 clause) in
  match Boolean.dnf ~max_disjuncts:100 expr with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected blow-up guard to fire"

(* ------------------------------------------------------------------ *)
(* Detection                                                           *)
(* ------------------------------------------------------------------ *)

let test_detect_simple_or () =
  let comp = Helpers.build_comp (3, 5, 0, 50, 4) in
  (* Recorded flags are all false; parity primitives still fire. *)
  let expr = Boolean.or_ [ flag comp 0; even 1 ] in
  let v = Boolean.detect comp expr in
  Alcotest.(check bool) "possibly via the parity disjunct" true
    v.Boolean.possibly;
  (match v.Boolean.disjuncts with
  | [ d_flag; d_even ] ->
      Alcotest.(check bool) "flag disjunct unsat" true
        (d_flag.Boolean.first_cut = None);
      (match d_even.Boolean.first_cut with
      | Some cut ->
          Alcotest.(check string) "first even state of P1" "{1:2}"
            (Cut.to_string cut)
      | None -> Alcotest.fail "parity disjunct should fire")
  | _ -> Alcotest.fail "expected two disjuncts");
  let none = Boolean.detect comp (Boolean.and_ [ flag comp 0; even 1 ]) in
  Alcotest.(check bool) "conjunction with false flag unsat" false
    none.Boolean.possibly

let test_detect_negation () =
  (* ¬even ∧ even on the same process is a contradiction. *)
  let comp = Helpers.build_comp (3, 5, 50, 50, 5) in
  let v = Boolean.detect comp (Boolean.and_ [ even 0; Boolean.not_ (even 0) ]) in
  Alcotest.(check bool) "contradiction unsat" false v.Boolean.possibly

let test_detect_wcp_consistency () =
  (* A pure conjunction of recorded flags must agree with the oracle. *)
  let comp = Helpers.build_comp (4, 8, 40, 50, 6) in
  let spec = Spec.all comp in
  let expr = Boolean.and_ (List.init 4 (fun p -> flag comp p)) in
  let v = Boolean.detect comp expr in
  match (Oracle.first_cut comp spec, v.Boolean.disjuncts) with
  | Detection.Detected cut, [ { Boolean.first_cut = Some cut'; _ } ] ->
      Alcotest.(check bool) "same first cut" true (Cut.equal cut cut')
  | Detection.No_detection, [ { Boolean.first_cut = None; _ } ] -> ()
  | _ -> Alcotest.fail "boolean detection disagrees with the WCP oracle"

let test_detected_cut_satisfies_disjunct () =
  let comp = Helpers.build_comp (4, 8, 50, 50, 7) in
  let expr =
    Boolean.or_
      [
        Boolean.and_ [ flag comp 0; Boolean.not_ (flag comp 1) ];
        Boolean.and_ [ even 2; after 3 2 ];
      ]
  in
  let v = Boolean.detect comp expr in
  List.iter
    (fun d ->
      match d.Boolean.first_cut with
      | None -> ()
      | Some cut ->
          Alcotest.(check bool) "cut consistent" true (Cut.consistent comp cut))
    v.Boolean.disjuncts

let test_eval () =
  let comp = Helpers.build_comp (3, 4, 100, 50, 8) in
  let full = Cut.over_all comp [| 1; 1; 1 |] in
  Alcotest.(check bool) "flags true at initial cut" true
    (Boolean.eval (Boolean.and_ [ flag comp 0; flag comp 1 ]) comp full);
  Alcotest.(check bool) "parity at initial cut" false
    (Boolean.eval (even 2) comp full);
  Alcotest.(check bool) "negation" true
    (Boolean.eval (Boolean.not_ (even 2)) comp full)

let test_unknown_process_rejected () =
  let comp = Helpers.build_comp (2, 3, 50, 50, 9) in
  match Boolean.detect comp (even 7) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown process should be rejected"

(* Cross-check Possibly against Cooper–Marzullo with the general
   predicate evaluated on full cuts. *)
let gen_expr comp rng =
  let n = Computation.n comp in
  let rec go depth =
    if depth = 0 || Wcp_util.Rng.int rng 3 = 0 then
      let p = Wcp_util.Rng.int rng n in
      match Wcp_util.Rng.int rng 3 with
      | 0 -> flag comp p
      | 1 -> even p
      | _ -> after p (1 + Wcp_util.Rng.int rng 3)
    else
      match Wcp_util.Rng.int rng 3 with
      | 0 -> Boolean.not_ (go (depth - 1))
      | 1 -> Boolean.and_ [ go (depth - 1); go (depth - 1) ]
      | _ -> Boolean.or_ [ go (depth - 1); go (depth - 1) ]
  in
  go 3

let prop_possibly_equals_cooper_marzullo =
  qtest ~count:150 "Possibly(φ) = Cooper–Marzullo lattice search"
    QCheck2.Gen.(
      pair (Helpers.gen_comp_params ~max_n:3 ~max_sends:5) (int_range 0 100_000))
    (fun (params, eseed) ->
      let comp = Helpers.build_comp params in
      let rng = Wcp_util.Rng.create (Int64.of_int eseed) in
      let expr = gen_expr comp rng in
      let v = Boolean.detect comp expr in
      match Cooper_marzullo.detect comp (fun cut -> Boolean.eval expr comp cut) with
      | Ok (Detection.Detected _, _) -> v.Boolean.possibly
      | Ok ((Detection.No_detection | Detection.Undetectable_crashed _), _)
        ->
          not v.Boolean.possibly
      | Error _ -> true)

let prop_disjunct_cuts_minimal =
  qtest ~count:100 "each disjunct's cut is its own first cut"
    QCheck2.Gen.(
      pair (Helpers.gen_comp_params ~max_n:3 ~max_sends:4) (int_range 0 100_000))
    (fun (params, eseed) ->
      let comp = Helpers.build_comp params in
      let rng = Wcp_util.Rng.create (Int64.of_int eseed) in
      let expr = gen_expr comp rng in
      let v = Boolean.detect comp expr in
      let conj = Boolean.dnf expr in
      List.for_all
        (fun (d : Boolean.disjunct_result) ->
          match d.Boolean.first_cut with
          | None -> true
          | Some cut ->
              (* The cut satisfies every literal of its disjunct. *)
              let lits = List.nth conj d.Boolean.index in
              List.for_all
                (fun l ->
                  let rec find k =
                    if k = Cut.width cut then true
                    else
                      let s = Cut.state cut k in
                      if s.State.proc = l.Boolean.lit_proc then
                        l.Boolean.lit_holds s.State.index
                      else find (k + 1)
                  in
                  find 0)
                lits
              && Cut.consistent comp cut)
        v.Boolean.disjuncts)

let prop_online_equals_offline =
  qtest ~count:120 "detect_online (distributed) = detect (oracle)"
    QCheck2.Gen.(
      tup3 (Helpers.gen_comp_params ~max_n:4 ~max_sends:6) (int_range 0 100_000)
        (int_range 0 1000))
    (fun (params, eseed, dseed) ->
      let comp = Helpers.build_comp params in
      let rng = Wcp_util.Rng.create (Int64.of_int eseed) in
      let expr = gen_expr comp rng in
      let offline = Boolean.detect comp expr in
      let online = Boolean.detect_online ~seed:(Int64.of_int dseed) comp expr in
      offline.Boolean.possibly = online.Boolean.possibly
      && List.for_all2
           (fun (a : Boolean.disjunct_result) (b : Boolean.disjunct_result) ->
             a.Boolean.procs = b.Boolean.procs
             &&
             match (a.Boolean.first_cut, b.Boolean.first_cut) with
             | None, None -> true
             | Some x, Some y -> Cut.equal x y
             | _ -> false)
           offline.Boolean.disjuncts online.Boolean.disjuncts)

let test_reflag () =
  let comp = Helpers.build_comp (3, 4, 0, 50, 3) in
  let flipped = Computation.reflag comp ~pred:(fun ~proc:_ ~state:_ -> true) in
  Alcotest.(check int) "structure preserved"
    (Computation.total_states comp)
    (Computation.total_states flipped);
  for p = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "all states candidates on %d" p)
      (Computation.num_states flipped p)
      (List.length (Computation.candidates flipped p));
    Alcotest.(check (list int))
      (Printf.sprintf "original untouched on %d" p)
      []
      (Computation.candidates comp p)
  done

let () =
  Alcotest.run "boolean"
    [
      ( "dnf",
        [
          Alcotest.test_case "shapes" `Quick test_dnf_shapes;
          Alcotest.test_case "blow-up guard" `Quick test_dnf_blowup_guard;
        ] );
      ( "detection",
        [
          Alcotest.test_case "simple or" `Quick test_detect_simple_or;
          Alcotest.test_case "negation" `Quick test_detect_negation;
          Alcotest.test_case "wcp consistency" `Quick
            test_detect_wcp_consistency;
          Alcotest.test_case "cuts satisfy their disjunct" `Quick
            test_detected_cut_satisfies_disjunct;
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "unknown process" `Quick
            test_unknown_process_rejected;
        ] );
      ( "properties",
        [
          prop_possibly_equals_cooper_marzullo;
          prop_disjunct_cuts_minimal;
          prop_online_equals_offline;
        ] );
      ("reflag", [ Alcotest.test_case "reflag" `Quick test_reflag ]);
    ]
