(* wcp-btrace/1 (Wcp_trace.Btrace): the binary store must be an exact
   stand-in for the text codec. The properties here pin the contract of
   DESIGN.md §12: text <-> btrace <-> text round-trips are lossless (and
   re-encodes byte-identical), the streaming writer produces the same
   bytes as the dense encoder, every read path autodetects the magic,
   structural damage dies as [Btrace.Corrupt] (wrapped into a clean
   [Trace_codec.Parse_error] by the codec entry points), and a streamed
   detection run spells out the same first cut as the dense reference.
   Bounded smoke always runs; WCP_BTRACE_CHECK=1 (make btrace-check)
   unlocks the full corpus sweep. *)

open Wcp_trace
open Wcp_core

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let params ~n ~m ~p_pred =
  { Generator.n; sends_per_process = m; p_pred; p_recv = 0.5 }

let random_comp ~n ~m ~p_pred ~seed =
  Generator.random ~params:(params ~n ~m ~p_pred) ~seed ()

(* Random shapes, including n=1 (necessarily message-free) and m=0. *)
let gen_comp =
  QCheck2.Gen.(
    map
      (fun (n, m, seed, dense_pred) ->
        let n = 1 + n in
        let m = if n = 1 then 0 else m in
        let p_pred = if dense_pred then 0.5 else 0.1 in
        random_comp ~n ~m ~p_pred ~seed:(Int64.of_int seed))
      (tup4 (int_range 0 9) (int_range 0 15) (int_range 1 10_000) bool))

(* Structural equality of computations: same scripts, same flags. *)
let same_computation a b =
  Computation.n a = Computation.n b
  && Array.for_all
       (fun p ->
         Computation.ops a p = Computation.ops b p
         && Computation.num_states a p = Computation.num_states b p
         && List.for_all
              (fun s ->
                let st = State.make ~proc:p ~index:s in
                Computation.pred a st = Computation.pred b st)
              (List.init (Computation.num_states a p) (fun i -> i + 1)))
       (Array.init (Computation.n a) (fun p -> p))

let with_temp_file suffix f =
  let path = Filename.temp_file "wcp_btrace_test" suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- Round trips --------------------------------------------------- *)

let prop_roundtrip_structural =
  qtest ~count:120 "btrace: decode (encode c) == c" gen_comp (fun comp ->
      same_computation comp (Btrace.decode (Btrace.encode comp)))

let prop_reencode_identity =
  qtest ~count:120 "btrace: re-encode is byte-identical" gen_comp (fun comp ->
      let img = Btrace.encode comp in
      String.equal img (Btrace.encode (Btrace.decode img)))

let prop_text_btrace_text =
  (* The full interchange loop: canonical text -> btrace -> canonical
     text must be byte-identical (so is the reverse, by the re-encode
     property above). *)
  qtest ~count:120 "text -> btrace -> text is byte-identical" gen_comp
    (fun comp ->
      let text = Trace_codec.encode comp in
      let comp' = Btrace.decode (Btrace.encode (Trace_codec.decode text)) in
      String.equal text (Trace_codec.encode comp'))

let prop_autodetect_decode =
  qtest ~count:60 "Trace_codec.decode autodetects the magic" gen_comp
    (fun comp ->
      same_computation comp (Trace_codec.decode (Btrace.encode comp)))

let prop_source_materialize =
  qtest ~count:60 "Stream.materialize (source r) == original" gen_comp
    (fun comp ->
      let r = Btrace.of_string (Btrace.encode comp) in
      same_computation comp (Computation.Stream.materialize (Btrace.source r)))

let prop_reader_accessors =
  qtest ~count:60 "reader header accessors match the computation" gen_comp
    (fun comp ->
      let img = Btrace.encode comp in
      let r = Btrace.of_string img in
      Btrace.num_processes r = Computation.n comp
      && Btrace.num_messages r = Array.length (Computation.messages comp)
      && Btrace.trace_bytes r = String.length img
      && Btrace.total_events r
         = Array.fold_left ( + ) 0
             (Array.init (Computation.n comp) (fun p ->
                  List.length (Computation.ops comp p))))

(* --- Streaming writer vs dense encoder ----------------------------- *)

let prop_writer_bytes =
  (* [Generator.random_btrace] streams through [Btrace.Writer] while
     [Generator.random] materialises through [Builder]; same params and
     seed must put the exact same bytes on disk as [Btrace.encode]. *)
  qtest ~count:30 "random_btrace file == encode (random ())"
    QCheck2.Gen.(tup3 (int_range 2 8) (int_range 1 40) (int_range 1 10_000))
    (fun (n, m, seed) ->
      let params = params ~n ~m ~p_pred:0.3 in
      let seed = Int64.of_int seed in
      with_temp_file ".btrace" (fun path ->
          let states, messages = Generator.random_btrace ~params ~seed path in
          let comp = Generator.random ~params ~seed () in
          states = Computation.total_states comp
          && messages = Array.length (Computation.messages comp)
          && String.equal (read_bytes path) (Btrace.encode comp)))

(* --- Structural damage --------------------------------------------- *)

let raises_corrupt f =
  match f () with
  | (_ : Computation.t) -> Alcotest.fail "expected Btrace.Corrupt"
  | exception Btrace.Corrupt _ -> ()

let set_u64 b off v =
  for k = 0 to 7 do
    Bytes.set b (off + k) (Char.chr ((v lsr (8 * k)) land 0xff))
  done

let test_corrupt_fixtures () =
  let comp = random_comp ~n:4 ~m:10 ~p_pred:0.3 ~seed:7L in
  let img = Btrace.encode comp in
  (* Truncated header: magic alone is not a file. *)
  raises_corrupt (fun () -> Btrace.decode (String.sub img 0 8));
  (* Truncated mid-section. *)
  raises_corrupt (fun () ->
      Btrace.decode (String.sub img 0 (String.length img - 5)));
  (* Trailing garbage after the last section. *)
  raises_corrupt (fun () -> Btrace.decode (img ^ "\x00"));
  (* Mutations: each writes one header/index field and must be caught
     by the eager open-time validation. *)
  let mutated off v =
    let b = Bytes.of_string img in
    set_u64 b off v;
    Bytes.to_string b
  in
  (* n = 0. *)
  raises_corrupt (fun () -> Btrace.decode (mutated 8 0));
  (* Absurd per-process event count (offset/size overflow bait). *)
  raises_corrupt (fun () -> Btrace.decode (mutated (32 + 8) max_int));
  (* total_ops disagreeing with the index. *)
  raises_corrupt (fun () -> Btrace.decode (mutated 24 1));
  (* A 64-bit field with the top bit set exceeds OCaml's int range. *)
  raises_corrupt (fun () ->
      let b = Bytes.of_string img in
      Bytes.set b 31 '\x80';
      Btrace.decode (Bytes.to_string b));
  (* Non-canonical section offset. *)
  raises_corrupt (fun () -> Btrace.decode (mutated 32 33))

let test_corrupt_wrapped_as_parse_error () =
  (* The text entry points present binary damage as a line-0
     Parse_error, never a bare Corrupt. *)
  let check_parse_error ~prefix f =
    match f () with
    | (_ : Computation.t) -> Alcotest.fail "expected Parse_error"
    | exception Trace_codec.Parse_error { line; message } ->
        Alcotest.(check int) "line" 0 line;
        if not (String.length message >= String.length prefix
                && String.sub message 0 (String.length prefix) = prefix)
        then
          Alcotest.failf "message %S does not start with %S" message prefix
  in
  let comp = random_comp ~n:3 ~m:6 ~p_pred:0.3 ~seed:3L in
  let img = Btrace.encode comp in
  let truncated = String.sub img 0 20 in
  check_parse_error ~prefix:"btrace: " (fun () -> Trace_codec.decode truncated);
  with_temp_file ".btrace" (fun path ->
      let oc = open_out_bin path in
      output_string oc truncated;
      close_out oc;
      check_parse_error ~prefix:"btrace: " (fun () ->
          Trace_codec.read_file path));
  (* Causal unsoundness in a structurally clean file: the writer does
     not validate, the reading side must. *)
  with_temp_file ".btrace" (fun path ->
      let w = Btrace.Writer.create path ~n:2 in
      let _msg = Btrace.Writer.send w ~src:0 ~dst:1 in
      Btrace.Writer.close w;
      check_parse_error ~prefix:"invalid computation: " (fun () ->
          Trace_codec.read_file path))

let test_writer_abort () =
  (* abort must leave neither the target nor the spill file behind. *)
  let path = Filename.temp_file "wcp_btrace_abort" ".btrace" in
  Sys.remove path;
  let w = Btrace.Writer.create path ~n:2 in
  let _ = Btrace.Writer.send w ~src:0 ~dst:1 in
  Btrace.Writer.abort w;
  Alcotest.(check bool) "no spill" false (Sys.file_exists (path ^ ".spill"));
  Alcotest.(check bool) "no target" false (Sys.file_exists path)

(* --- Streamed detection == dense detection ------------------------- *)

let outcome = Alcotest.testable Detection.pp_outcome Detection.outcome_equal

(* Mirror the CLI's [--stream] plumbing: slice straight off the mmap
   cursor, detect on the slice, remap the cut to dense coordinates. *)
let streamed_outcome reader ~procs ~detect ~keep_rest =
  (Run_common.with_source ~keep_rest (Btrace.source reader) ~procs
     ~run:(fun sliced spec' -> detect sliced spec'))
    .Detection.outcome

let stream_sweep ~sizes ~densities ~seeds =
  let seed = 1L in
  List.iter
    (fun (n, m) ->
      List.iter
        (fun p_pred ->
          List.iter
            (fun s ->
              let comp = random_comp ~n ~m ~p_pred ~seed:(Int64.of_int s) in
              let reader = Btrace.of_string (Btrace.encode comp) in
              let specs =
                Array.init n Fun.id
                :: (if n < 2 then []
                    else [ Array.init ((n + 1) / 2) (fun i -> 2 * i) ])
              in
              List.iter
                (fun procs ->
                  let spec = Spec.make comp procs in
                  let here name =
                    Printf.sprintf "%s n=%d m=%d p=%.2f w=%d seed=%d" name n m
                      p_pred (Array.length procs) s
                  in
                  let agree name dense streamed =
                    Alcotest.check outcome (here name) dense streamed
                  in
                  agree "token-vc"
                    (Token_vc.detect ~seed comp spec).Detection.outcome
                    (streamed_outcome reader ~procs ~keep_rest:false
                       ~detect:(Token_vc.detect ~seed));
                  agree "checker"
                    (Checker_centralized.detect ~seed comp spec)
                      .Detection.outcome
                    (streamed_outcome reader ~procs ~keep_rest:false
                       ~detect:(Checker_centralized.detect ~seed));
                  let groups = max 1 (Array.length procs / 2) in
                  agree "token-multi"
                    (Token_multi.detect ~groups ~seed comp spec)
                      .Detection.outcome
                    (streamed_outcome reader ~procs ~keep_rest:false
                       ~detect:(Token_multi.detect ~groups ~seed));
                  let project = Detection.project_outcome spec in
                  agree "token-dd"
                    (project
                       (Token_dd.detect ~seed comp spec).Detection.outcome)
                    (project
                       (streamed_outcome reader ~procs ~keep_rest:true
                          ~detect:(Token_dd.detect ~seed))))
                specs)
            seeds)
        densities)
    sizes

let test_stream_smoke () =
  stream_sweep ~sizes:[ (4, 8); (5, 6) ] ~densities:[ 0.3 ] ~seeds:[ 1; 2 ]

let test_stream_full () =
  if Sys.getenv_opt "WCP_BTRACE_CHECK" = None then ()
  else
    stream_sweep
      ~sizes:[ (2, 10); (3, 8); (4, 12); (8, 12); (16, 10) ]
      ~densities:[ 0.02; 0.1; 0.3; 0.6 ]
      ~seeds:[ 1; 2; 3; 4; 5 ]

(* --- Corpus convert round-trip (make btrace-check) ----------------- *)

let corpus_roundtrip () =
  (* dune runs tests from the build directory; the traces live in the
     source tree, two levels up. *)
  let dir =
    let candidates = [ "../../traces"; "../traces"; "traces" ] in
    match List.find_opt Sys.file_exists candidates with
    | Some d -> d
    | None -> Alcotest.fail "trace corpus directory not found"
  in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".trace")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus present" true (files <> []);
  List.iter
    (fun f ->
      let comp = Trace_codec.read_file (Filename.concat dir f) in
      let canon = Trace_codec.encode comp in
      let back = Trace_codec.decode (Btrace.encode comp) in
      Alcotest.(check string) f canon (Trace_codec.encode back))
    files

let () =
  Alcotest.run "btrace"
    [
      ( "roundtrip",
        [
          prop_roundtrip_structural;
          prop_reencode_identity;
          prop_text_btrace_text;
          prop_autodetect_decode;
          prop_source_materialize;
          prop_reader_accessors;
        ] );
      ("writer", [ prop_writer_bytes ]);
      ( "corrupt",
        [
          Alcotest.test_case "structural fixtures" `Quick test_corrupt_fixtures;
          Alcotest.test_case "wrapped as Parse_error" `Quick
            test_corrupt_wrapped_as_parse_error;
          Alcotest.test_case "writer abort cleans up" `Quick test_writer_abort;
        ] );
      ( "stream",
        [
          Alcotest.test_case "dense vs streamed smoke" `Quick test_stream_smoke;
          Alcotest.test_case "full corpus (WCP_BTRACE_CHECK=1)" `Slow
            test_stream_full;
          Alcotest.test_case "corpus convert round-trip" `Quick
            corpus_roundtrip;
        ] );
    ]
