open Wcp_trace
open Wcp_sim
open Wcp_core

let qtest = Helpers.qtest

let gen_with_spec =
  QCheck2.Gen.(
    pair (Helpers.gen_comp_params ~max_n:6 ~max_sends:10) (int_range 0 10_000))

let make (params, sseed) =
  let comp = Helpers.build_comp params in
  let rng = Wcp_util.Rng.create (Int64.of_int sseed) in
  let width = 1 + Wcp_util.Rng.int rng (Computation.n comp) in
  let procs = Generator.random_procs rng ~n:(Computation.n comp) ~width in
  (comp, Spec.make comp procs, Int64.of_int sseed)

let prop_agreement =
  qtest ~count:250 "token-dd projects to the oracle's first cut" gen_with_spec
    (fun input ->
      let comp, spec, seed = make input in
      let r = Token_dd.detect ~invariant_checks:true ~seed comp spec in
      Detection.outcome_equal
        (Detection.project_outcome spec r.outcome)
        (Oracle.first_cut comp spec))

let prop_agreement_parallel =
  qtest ~count:250 "parallel token-dd (§4.5) projects to the oracle's cut"
    gen_with_spec (fun input ->
      let comp, spec, seed = make input in
      let r = Token_dd.detect ~parallel:true ~seed comp spec in
      Detection.outcome_equal
        (Detection.project_outcome spec r.outcome)
        (Oracle.first_cut comp spec))

let prop_full_cut_consistent =
  qtest ~count:150 "the N-wide detected cut is itself consistent"
    gen_with_spec (fun input ->
      let comp, spec, seed = make input in
      match (Token_dd.detect ~seed comp spec).outcome with
      | Detection.Detected cut ->
          Cut.consistent comp cut
          && Array.for_all
               (fun p ->
                 (not (Spec.mem spec p))
                 || Computation.pred comp (Cut.state cut p))
               (Array.init (Cut.width cut) Fun.id)
      | Detection.No_detection | Detection.Undetectable_crashed _ -> true)

let prop_bounds =
  qtest ~count:150 "§4.4 bounds: polls, hops, per-process work and space"
    gen_with_spec (fun input ->
      let comp, spec, seed = make input in
      let r = Token_dd.detect ~seed comp spec in
      let n = Computation.n comp in
      let m = Computation.max_events_per_process comp in
      let total_msgs = Array.length (Computation.messages comp) in
      let total_cands =
        let acc = ref 0 in
        for p = 0 to n - 1 do
          acc :=
            !acc
            + List.length (Snapshot.dd_stream comp spec ~proc:p)
        done;
        !acc
      in
      (* Each dependence is polled at most once. *)
      let polls_ok = r.extras.polls <= total_msgs in
      (* Each token move follows >= 1 candidate acceptance. *)
      let hops_ok = r.extras.token_hops <= total_cands + n in
      (* O(m) work and space per monitor. *)
      let per_proc_ok = ref true in
      for p = 0 to n - 1 do
        let mon = Run_common.monitor_of ~n p in
        if Stats.work_of r.stats mon > (3 * m) + 3 then per_proc_ok := false;
        if Stats.space_high_water r.stats mon > (3 * m) + 3 then
          per_proc_ok := false
      done;
      polls_ok && hops_ok && !per_proc_ok)

let prop_parallel_same_totals_shape =
  (* §4.5: the parallel variant must not change the outcome and keeps
     the same asymptotic message budget (each dep still polled at most
     once, token still visits red monitors only). *)
  qtest ~count:100 "parallel variant keeps the message bounds" gen_with_spec
    (fun input ->
      let comp, spec, seed = make input in
      let r = Token_dd.detect ~parallel:true ~seed comp spec in
      let total_msgs = Array.length (Computation.messages comp) in
      r.extras.polls <= total_msgs)

let prop_determinism =
  qtest ~count:40 "identical seeds give identical runs" gen_with_spec
    (fun input ->
      let comp, spec, seed = make input in
      let a = Token_dd.detect ~seed comp spec in
      let b = Token_dd.detect ~seed comp spec in
      Detection.outcome_equal a.outcome b.outcome
      && a.sim_time = b.sim_time && a.events = b.events
      && a.extras.polls = b.extras.polls
      && a.extras.token_hops = b.extras.token_hops)

let prop_network_insensitive =
  qtest ~count:40 "outcome independent of the network model" gen_with_spec
    (fun input ->
      let comp, spec, seed = make input in
      let n = Computation.n comp in
      let expected = Oracle.first_cut comp spec in
      List.for_all
        (fun latency ->
          let fifo ~src ~dst =
            src < n
            && (dst = Run_common.monitor_of ~n src || dst = Run_common.extra_id ~n)
          in
          let network = Network.create ~fifo ~latency () in
          let r = Token_dd.detect ~network ~seed comp spec in
          Detection.outcome_equal
            (Detection.project_outcome spec r.outcome)
            expected)
        [ Network.Constant 1.0; Network.Uniform (0.01, 20.0) ])

let prop_start_anywhere =
  qtest ~count:60 "any chain head yields the oracle's cut" gen_with_spec
    (fun input ->
      let comp, spec, seed = make input in
      let expected = Oracle.first_cut comp spec in
      let n = Computation.n comp in
      List.for_all
        (fun start_at ->
          let r =
            Token_dd.detect ~invariant_checks:true ~start_at ~seed comp spec
          in
          Detection.outcome_equal
            (Detection.project_outcome spec r.outcome)
            expected)
        [ 0; n / 2; n - 1 ])

let prop_parallel_network_insensitive =
  (* The §4.5 variant's prefetch races are exactly where timing bugs
     would hide: hammer it across latency models and chain heads. *)
  qtest ~count:60 "parallel variant across networks and chain heads"
    gen_with_spec (fun input ->
      let comp, spec, seed = make input in
      let n = Computation.n comp in
      let expected = Oracle.first_cut comp spec in
      List.for_all
        (fun latency ->
          List.for_all
            (fun start_at ->
              let fifo ~src ~dst =
                src < n
                && (dst = Run_common.monitor_of ~n src
                   || dst = Run_common.extra_id ~n)
              in
              let network = Network.create ~fifo ~latency () in
              let r =
                Token_dd.detect ~network ~parallel:true ~start_at ~seed comp
                  spec
              in
              Detection.outcome_equal
                (Detection.project_outcome spec r.outcome)
                expected)
            [ 0; n - 1 ])
        [ Network.Constant 1.0; Network.Uniform (0.01, 20.0);
          Network.Exponential 3.0 ])

let test_pred_never_true () =
  let comp = Helpers.build_comp (4, 6, 0, 50, 1) in
  let spec = Spec.all comp in
  let r = Token_dd.detect ~seed:1L comp spec in
  Alcotest.check Helpers.outcome "no detection" Detection.No_detection r.outcome

let test_pred_always_true () =
  let comp = Helpers.build_comp (4, 6, 100, 50, 2) in
  let spec = Spec.all comp in
  match (Token_dd.detect ~seed:2L comp spec).outcome with
  | Detection.Detected cut ->
      Alcotest.(check string) "initial cut" "{0:1 1:1 2:1 3:1}"
        (Cut.to_string cut)
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Alcotest.fail "expected detection"

let test_single_process () =
  let comp = Computation.of_raw ~ops:[| [] |] ~pred:[| [| true |] |] in
  let spec = Spec.all comp in
  match (Token_dd.detect ~seed:1L comp spec).outcome with
  | Detection.Detected cut ->
      Alcotest.(check string) "trivial" "{0:1}" (Cut.to_string cut)
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Alcotest.fail "expected detection"

let test_workload_matrix () =
  List.iter
    (fun w ->
      let spec = Spec.make w.Workloads.comp w.Workloads.procs in
      List.iter
        (fun parallel ->
          let r =
            Token_dd.detect ~parallel ~seed:7L w.Workloads.comp spec
          in
          Alcotest.check Helpers.outcome
            (Printf.sprintf "%s parallel=%b" w.Workloads.name parallel)
            (Oracle.first_cut w.Workloads.comp spec)
            (Detection.project_outcome spec r.outcome))
        [ false; true ])
    (Workloads.all ~seed:321L)

let test_non_spec_pred_ignored () =
  (* Direct-dependence runs over all N processes with trivially-true
     predicates outside the spec — even when those processes' recorded
     predicate flags are false. *)
  let b = Builder.create ~n:3 in
  Builder.set_pred b ~proc:0 true;
  Builder.set_pred b ~proc:2 true;
  let m = Builder.send b ~src:1 ~dst:2 in
  Builder.recv b ~dst:2 m;
  let comp = Builder.finish b in
  let spec = Spec.make comp [| 0; 2 |] in
  let r = Token_dd.detect ~seed:3L comp spec in
  Alcotest.check Helpers.outcome "detects despite pred-false middleman"
    (Oracle.first_cut comp spec)
    (Detection.project_outcome spec r.outcome)

let () =
  Alcotest.run "token_dd"
    [
      ( "agreement",
        [
          prop_agreement;
          prop_agreement_parallel;
          prop_full_cut_consistent;
          Alcotest.test_case "workloads (both variants)" `Quick
            test_workload_matrix;
          Alcotest.test_case "non-spec preds ignored" `Quick
            test_non_spec_pred_ignored;
        ] );
      ("bounds", [ prop_bounds; prop_parallel_same_totals_shape ]);
      ( "robustness",
        [
          prop_determinism;
          prop_network_insensitive;
          prop_parallel_network_insensitive;
          prop_start_anywhere;
          Alcotest.test_case "predicate never true" `Quick test_pred_never_true;
          Alcotest.test_case "predicate always true" `Quick
            test_pred_always_true;
          Alcotest.test_case "single process" `Quick test_single_process;
        ] );
    ]
