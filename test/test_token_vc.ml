open Wcp_trace
open Wcp_sim
open Wcp_core

let qtest = Helpers.qtest

let gen_with_spec =
  QCheck2.Gen.(
    pair (Helpers.gen_comp_params ~max_n:6 ~max_sends:10) (int_range 0 10_000))

let make (params, sseed) =
  let comp = Helpers.build_comp params in
  let rng = Wcp_util.Rng.create (Int64.of_int sseed) in
  let width = 1 + Wcp_util.Rng.int rng (Computation.n comp) in
  let procs = Generator.random_procs rng ~n:(Computation.n comp) ~width in
  (comp, Spec.make comp procs, Int64.of_int sseed)

let total_candidates comp spec =
  Array.fold_left
    (fun acc p -> acc + List.length (Computation.candidates comp p))
    0 (Spec.procs spec)

let prop_agreement =
  qtest ~count:250 "token-vc finds the oracle's first cut" gen_with_spec
    (fun input ->
      let comp, spec, seed = make input in
      let r = Token_vc.detect ~invariant_checks:true ~seed comp spec in
      Detection.outcome_equal r.outcome (Oracle.first_cut comp spec))

let prop_bounds =
  qtest ~count:150 "§3.4 bounds: hops, messages, work, space" gen_with_spec
    (fun input ->
      let comp, spec, seed = make input in
      let r = Token_vc.detect ~seed comp spec in
      let n = Computation.n comp in
      let width = Spec.width spec in
      let m = Computation.max_events_per_process comp in
      let cands = total_candidates comp spec in
      (* Every token move is preceded by consuming >= 1 candidate. *)
      let hops_ok = r.extras.token_hops <= cands + 1 in
      (* Monitoring messages: tokens + snapshots <= 2 n (m+1) [+ done markers]. *)
      let msgs_ok =
        r.extras.token_hops + r.extras.snapshots <= 2 * width * (m + 1)
      in
      (* O(nm) work and space per monitor process. *)
      let work_ok = ref true and space_ok = ref true in
      for p = 0 to n - 1 do
        let mon = Run_common.monitor_of ~n p in
        if Stats.work_of r.stats mon > 2 * (m + 2) * (width + 1) then
          work_ok := false;
        if Stats.space_high_water r.stats mon > (m + 2) * width then
          space_ok := false
      done;
      hops_ok && msgs_ok && !work_ok && !space_ok)

let prop_determinism =
  qtest ~count:40 "identical seeds give identical runs" gen_with_spec
    (fun input ->
      let comp, spec, seed = make input in
      let a = Token_vc.detect ~seed comp spec in
      let b = Token_vc.detect ~seed comp spec in
      Detection.outcome_equal a.outcome b.outcome
      && a.sim_time = b.sim_time && a.events = b.events
      && Stats.total_sent a.stats = Stats.total_sent b.stats
      && Stats.total_bits a.stats = Stats.total_bits b.stats
      && a.extras.token_hops = b.extras.token_hops)

let prop_network_insensitive =
  (* The detected cut is a property of the computation, not of message
     timing: any latency model must yield the same outcome. *)
  qtest ~count:60 "outcome independent of the network model" gen_with_spec
    (fun input ->
      let comp, spec, seed = make input in
      let n = Computation.n comp in
      let expected = Oracle.first_cut comp spec in
      List.for_all
        (fun latency ->
          let fifo ~src ~dst =
            src < n
            && (dst = Run_common.monitor_of ~n src || dst = Run_common.extra_id ~n)
          in
          let network = Network.create ~fifo ~latency () in
          let r = Token_vc.detect ~network ~seed comp spec in
          Detection.outcome_equal r.outcome expected)
        [
          Network.Constant 1.0;
          Network.Exponential 2.0;
          Network.Uniform (0.01, 20.0);
        ])

let test_pred_never_true () =
  let comp = Helpers.build_comp (4, 6, 0, 50, 1) in
  let spec = Spec.all comp in
  let r = Token_vc.detect ~seed:1L comp spec in
  Alcotest.check Helpers.outcome "no detection" Detection.No_detection r.outcome;
  Alcotest.(check int) "no snapshots" 0 r.extras.snapshots

let test_pred_always_true () =
  let comp = Helpers.build_comp (4, 6, 100, 50, 2) in
  let spec = Spec.all comp in
  let r = Token_vc.detect ~invariant_checks:true ~seed:2L comp spec in
  match r.outcome with
  | Detection.Detected cut ->
      Alcotest.(check string) "initial cut detected" "{0:1 1:1 2:1 3:1}"
        (Cut.to_string cut)
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Alcotest.fail "expected initial-cut detection"

let test_width_one () =
  let comp = Helpers.build_comp (3, 5, 30, 50, 3) in
  let spec = Spec.make comp [| 1 |] in
  let r = Token_vc.detect ~seed:3L comp spec in
  Alcotest.check Helpers.outcome "matches oracle" (Oracle.first_cut comp spec)
    r.outcome;
  Alcotest.(check int) "no token moves with one monitor" 0 r.extras.token_hops

let prop_start_anywhere =
  (* §3.2: "the token can start on any process". *)
  qtest ~count:60 "any starting monitor yields the oracle's cut" gen_with_spec
    (fun input ->
      let comp, spec, seed = make input in
      let expected = Oracle.first_cut comp spec in
      List.for_all
        (fun start_at ->
          let r =
            Token_vc.detect ~invariant_checks:true ~start_at ~seed comp spec
          in
          Detection.outcome_equal r.outcome expected)
        (List.init (Spec.width spec) Fun.id))

let test_workload_matrix () =
  List.iter
    (fun w ->
      let spec = Spec.make w.Workloads.comp w.Workloads.procs in
      let r =
        Token_vc.detect ~invariant_checks:true ~seed:5L w.Workloads.comp spec
      in
      Alcotest.check Helpers.outcome w.Workloads.name
        (Oracle.first_cut w.Workloads.comp spec)
        r.outcome)
    (Workloads.all ~seed:123L)

let test_detected_state_has_true_preds () =
  (* End-to-end: every state of a detected cut satisfies its local
     predicate and the cut is consistent. *)
  let comp = Helpers.build_comp (5, 8, 60, 50, 4) in
  let spec = Spec.all comp in
  match (Token_vc.detect ~seed:4L comp spec).outcome with
  | Detection.Detected cut ->
      Alcotest.(check bool) "satisfies" true (Cut.satisfies comp cut)
  | Detection.No_detection | Detection.Undetectable_crashed _ -> ()

let () =
  Alcotest.run "token_vc"
    [
      ( "agreement",
        [ prop_agreement; Alcotest.test_case "workloads" `Quick test_workload_matrix ] );
      ("bounds", [ prop_bounds ]);
      ( "robustness",
        [
          prop_determinism;
          prop_network_insensitive;
          prop_start_anywhere;
          Alcotest.test_case "predicate never true" `Quick test_pred_never_true;
          Alcotest.test_case "predicate always true" `Quick
            test_pred_always_true;
          Alcotest.test_case "width one" `Quick test_width_one;
          Alcotest.test_case "detected cut satisfies" `Quick
            test_detected_state_has_true_preds;
        ] );
    ]
