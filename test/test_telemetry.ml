(* The telemetry plane: the wcp-metrics/1 codec round-trips arbitrary
   lines (property), the hand-rolled window fast path emits exactly the
   generic emitter's bytes (property — promised by a comment in
   telemetry.ml), window/phase mechanics behave on a synthetic stream,
   equal-seed live streams are byte-identical, and an attached
   telemetry tap is invisible to the run it observes. The full
   algorithm x size x seed stream-validation corpus is gated behind
   WCP_TELEMETRY_CHECK=1 (make telemetry-check); a bounded smoke of
   the same check always runs. *)

open Wcp_trace
open Wcp_sim
open Wcp_core
open Wcp_obs

(* ------------------------------------------------------------------ *)
(* Line generators                                                     *)
(* ------------------------------------------------------------------ *)

(* Counts are semantically nonnegative, but the codec must survive any
   int the fields could ever carry — include the extremes to exercise
   the manual digit writer (min_int has no positive negation). *)
let gen_count : int QCheck2.Gen.t =
  let open QCheck2.Gen in
  frequency
    [
      (8, int_range 0 1_000_000);
      (1, oneofl [ 0; 1; -1; max_int; min_int ]);
    ]

(* Times mix integral floats (the "42.0" fast path), short fractions,
   and the 1e15 boundary where the fast path hands back to %.17g. *)
let gen_time : float QCheck2.Gen.t =
  let open QCheck2.Gen in
  frequency
    [
      (4, map float_of_int (int_range (-1000) 100_000));
      (4, float_bound_inclusive 5000.0);
      ( 1,
        oneofl
          [
            0.; -0.; 0.5; 0.1; 3.141592653589793; 1e15; -1e15; 1.5e15;
            999999999999999.; 4.9406564584124654e-324;
          ] );
    ]

let gen_name : string QCheck2.Gen.t =
  QCheck2.Gen.oneofl
    [ "build"; "detect"; "slice"; "recovery"; "token-vc"; "\"q\"\n\t\\" ]

let gen_window : Telemetry.window QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* idx = gen_count in
  let* t0 = gen_time in
  let* t1 = gen_time in
  let* events = gen_count in
  let* elims = gen_count in
  let* hops = gen_count in
  let* polls = gen_count in
  let* snapshots = gen_count in
  let* retx = gen_count in
  let* probes = gen_count in
  let* regens = gen_count in
  let* ckpts = gen_count in
  let* restores = gen_count in
  let* replays = gen_count in
  let* stand_downs = gen_count in
  let* hop_p50 = gen_time in
  let* hop_p95 = gen_time in
  let* cum_events = gen_count in
  let* cum_elims = gen_count in
  let* cum_retx = gen_count in
  let* cum_regens = gen_count in
  let* cum_ckpts = gen_count in
  let* cum_stand_downs = gen_count in
  return
    {
      Telemetry.idx;
      t0;
      t1;
      events;
      elims;
      hops;
      polls;
      snapshots;
      retx;
      probes;
      regens;
      ckpts;
      restores;
      replays;
      stand_downs;
      hop_p50;
      hop_p95;
      cum_events;
      cum_elims;
      cum_retx;
      cum_regens;
      cum_ckpts;
      cum_stand_downs;
    }

let gen_line : Telemetry.line QCheck2.Gen.t =
  let open QCheck2.Gen in
  frequency
    [
      ( 1,
        let* algo = gen_name in
        let* n = gen_count in
        let* width = gen_count in
        let* every = gen_time in
        return (Telemetry.Meta { algo; n; width; every }) );
      (4, map (fun w -> Telemetry.Window w) gen_window);
      ( 2,
        let* phase = gen_name in
        let* p_t0 = gen_time in
        let* p_t1 = gen_time in
        let* alloc_bytes = gen_count in
        let* p_events = gen_count in
        return (Telemetry.Phase { phase; p_t0; p_t1; alloc_bytes; p_events })
      );
      ( 1,
        let* windows = gen_count in
        let* events = gen_count in
        let* elims = gen_count in
        let* hops = gen_count in
        let* phases = gen_count in
        return (Telemetry.Total { windows; events; elims; hops; phases }) );
    ]

let qtest ?(count = 500) name gen print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen prop)

let codec_roundtrip =
  qtest "decode_line inverts encode_line" gen_line Telemetry.encode_line
    (fun l ->
      match Telemetry.decode_line (Telemetry.encode_line l) with
      | Error msg -> QCheck2.Test.fail_reportf "decode failed: %s" msg
      | Ok l' -> Telemetry.equal_line l l')

(* The per-window fast path in telemetry.ml bypasses the generic
   Json.emit; this is the property its comment promises. *)
let fast_path_bytes =
  qtest "encode_line matches the generic emitter" gen_line
    Telemetry.encode_line (fun l ->
      String.equal (Telemetry.encode_line l)
        (Export.Json.to_string (Telemetry.to_json l)))

let stream_roundtrip =
  qtest ~count:100 "decode inverts a whole stream"
    QCheck2.Gen.(list_size (int_range 0 30) gen_line)
    (fun ls -> String.concat "\n" (List.map Telemetry.encode_line ls))
    (fun ls ->
      let doc =
        String.concat "" (List.map (fun l -> Telemetry.encode_line l ^ "\n") ls)
      in
      match Telemetry.decode doc with
      | Error msg -> QCheck2.Test.fail_reportf "decode failed: %s" msg
      | Ok back ->
          List.length back = List.length ls
          && List.for_all2 Telemetry.equal_line back ls)

let test_decode_errors () =
  let bad s =
    match Telemetry.decode_line s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted malformed line %S" s
  in
  bad "";
  bad "{";
  bad "[1]";
  bad {|{"type":"no_such_line"}|};
  bad {|{"type":"window","idx":0}|};
  (* missing fields *)
  bad {|{"type":"total","windows":1,"events":2,"elims":0,"hops":1}|}
(* missing phases *)

(* ------------------------------------------------------------------ *)
(* Window and phase mechanics on a synthetic stream                    *)
(* ------------------------------------------------------------------ *)

let collect () =
  let buf = Buffer.create 1024 in
  let tel =
    Telemetry.create
      ~alloc:(fun () -> 0.)
      ~sink:(fun l ->
        Buffer.add_string buf l;
        Buffer.add_char buf '\n')
      ()
  in
  (tel, fun () -> Buffer.contents buf)

let test_window_semantics () =
  let tel, contents = collect () in
  let seq = ref (-1) in
  let feed time body =
    incr seq;
    Telemetry.feed tel { Event.seq = !seq; time; proc = 0; body }
  in
  feed 0.0 (Event.Run_meta { algo = "token-vc"; n = 2; width = 2 });
  feed 0.5 (Event.Phase_marked { name = "build" });
  feed 1.0 (Event.Token_sent { seq = 0; dst = 1; g = [| 0; 0 |] });
  feed 2.0 (Event.Token_received { seq = 0 });
  (* Jumping to t=12 must close window 0 AND the empty window 1. *)
  feed 12.0 (Event.Phase_marked { name = "detect" });
  feed 13.0 Event.No_detection_declared;
  Telemetry.close tel;
  Telemetry.close tel;
  (* idempotent *)
  match Telemetry.decode (contents ()) with
  | Error msg -> Alcotest.failf "stream does not decode: %s" msg
  | Ok lines ->
      let windows =
        List.filter_map
          (function Telemetry.Window w -> Some w | _ -> None)
          lines
      in
      let phases =
        List.filter_map
          (function Telemetry.Phase p -> Some p | _ -> None)
          lines
      in
      Alcotest.(check (list int))
        "window indices are contiguous" [ 0; 1; 2 ]
        (List.map (fun w -> w.Telemetry.idx) windows);
      let w0 = List.nth windows 0 and w1 = List.nth windows 1 in
      Alcotest.(check int) "window 0 saw four events" 4 w0.Telemetry.events;
      Alcotest.(check int) "window 0 saw one hop" 1 w0.Telemetry.hops;
      Alcotest.(check (float 1e-9))
        "hop latency is received - sent" 1.0 w0.Telemetry.hop_p50;
      Alcotest.(check int) "skipped window is empty" 0 w1.Telemetry.events;
      Alcotest.(check (float 1e-9)) "windows are [5,10)" 5.0 w1.Telemetry.t0;
      Alcotest.(check (list string))
        "both phases closed" [ "build"; "detect" ]
        (List.map (fun p -> p.Telemetry.phase) phases);
      Alcotest.(check (float 1e-9))
        "build phase spans to the detect mark" 12.0
        (List.nth phases 0).Telemetry.p_t1;
      (match List.rev lines with
      | Telemetry.Total { windows = tw; events; phases = tp; _ } :: _ ->
          Alcotest.(check int) "total windows" 3 tw;
          Alcotest.(check int) "total events" 6 events;
          Alcotest.(check int) "total phases" 2 tp
      | _ -> Alcotest.fail "stream does not end with a total line");
      let page = Telemetry.prometheus tel in
      Alcotest.(check bool) "prometheus page has the event counter" true
        (let re = Str.regexp_string "wcp_events 6" in
         try
           ignore (Str.search_forward re page 0);
           true
         with Not_found -> false)

(* ------------------------------------------------------------------ *)
(* Live runs: invisibility, determinism, stream validation             *)
(* ------------------------------------------------------------------ *)

let comp_of ~n ~m ~seed =
  Generator.random
    ~params:{ Generator.n; sends_per_process = m; p_pred = 0.3; p_recv = 0.5 }
    ~seed ()

let detect algo ?recorder ~seed comp spec =
  match algo with
  | "token-vc" -> Token_vc.detect ?recorder ~seed comp spec
  | "token-dd" -> Token_dd.detect ?recorder ~seed comp spec
  | "checker" -> Checker_centralized.detect ?recorder ~seed comp spec
  | a -> invalid_arg a

(* A capacity-1 ring plus a telemetry tap is the bounded-memory
   always-on deployment the plane is built for; alloc sampling is
   stripped so the stream bytes depend on the event sequence alone. *)
let run_streamed algo ~n ~m ~seed =
  let comp = comp_of ~n ~m ~seed in
  let spec = Spec.all comp in
  let tel, contents = collect () in
  let recorder = Recorder.create ~capacity:1 () in
  Telemetry.attach tel recorder;
  let result = detect algo ~recorder ~seed comp spec in
  Telemetry.close tel;
  (result, contents (), Telemetry.lines tel)

let test_telemetry_invisible () =
  List.iter
    (fun seed ->
      let comp = comp_of ~n:6 ~m:10 ~seed in
      let spec = Spec.all comp in
      let plain = Token_vc.detect ~seed comp spec in
      let tapped, _, lines = run_streamed "token-vc" ~n:6 ~m:10 ~seed in
      Alcotest.check Helpers.outcome "same outcome" plain.outcome
        tapped.outcome;
      Alcotest.(check int) "same messages"
        (Stats.total_sent plain.stats)
        (Stats.total_sent tapped.stats);
      Alcotest.(check int) "same bits"
        (Stats.total_bits plain.stats)
        (Stats.total_bits tapped.stats);
      Alcotest.(check int) "same events" plain.events tapped.events;
      Alcotest.(check bool) "same sim time" true
        (plain.sim_time = tapped.sim_time);
      Alcotest.(check bool) "the plane saw the run" true (lines > 0))
    [ 1L; 2L; 3L ]

let test_stream_deterministic () =
  let _, a, _ = run_streamed "token-vc" ~n:6 ~m:10 ~seed:5L in
  let _, b, _ = run_streamed "token-vc" ~n:6 ~m:10 ~seed:5L in
  Alcotest.(check string) "same seed, same bytes" a b;
  let _, c, _ = run_streamed "token-vc" ~n:6 ~m:10 ~seed:6L in
  Alcotest.(check bool) "different seed, different stream" false (a = c)

(* Structural invariants every emitted stream must satisfy. *)
let validate_stream tag stream =
  match Telemetry.decode stream with
  | Error msg -> Alcotest.failf "%s: stream does not decode: %s" tag msg
  | Ok lines ->
      (* Re-encoding must reproduce the bytes (codec totality on real
         streams, not just generated lines). *)
      let re =
        String.concat ""
          (List.map (fun l -> Telemetry.encode_line l ^ "\n") lines)
      in
      if re <> stream then Alcotest.failf "%s: re-encode changed bytes" tag;
      let metas =
        List.filter (function Telemetry.Meta _ -> true | _ -> false) lines
      in
      if List.length metas <> 1 then
        Alcotest.failf "%s: expected exactly one meta line" tag;
      let windows =
        List.filter_map
          (function Telemetry.Window w -> Some w | _ -> None)
          lines
      in
      List.iteri
        (fun i w ->
          if w.Telemetry.idx <> i then
            Alcotest.failf "%s: window %d has idx %d" tag i w.Telemetry.idx;
          if w.Telemetry.t1 <= w.Telemetry.t0 then
            Alcotest.failf "%s: window %d is empty-width" tag i)
        windows;
      let rec cum_monotone last = function
        | [] -> ()
        | w :: rest ->
            if w.Telemetry.cum_events < last then
              Alcotest.failf "%s: cumulative gauge went backwards" tag;
            cum_monotone w.Telemetry.cum_events rest
      in
      cum_monotone 0 windows;
      let phase_count =
        List.length
          (List.filter (function Telemetry.Phase _ -> true | _ -> false) lines)
      in
      match List.rev lines with
      | Telemetry.Total { windows = tw; phases = tp; events; _ } :: _ ->
          if tw <> List.length windows then
            Alcotest.failf "%s: total says %d windows, stream has %d" tag tw
              (List.length windows);
          if tp <> phase_count then
            Alcotest.failf "%s: total says %d phases, stream has %d" tag tp
              phase_count;
          List.iter
            (fun w ->
              if w.Telemetry.cum_events > events then
                Alcotest.failf "%s: window gauge exceeds the total" tag)
            windows
      | _ -> Alcotest.failf "%s: stream does not end with a total line" tag

let corpus ~algos ~sizes ~seeds =
  List.iter
    (fun algo ->
      List.iter
        (fun (n, m) ->
          List.iter
            (fun s ->
              let seed = Int64.of_int s in
              let tag = Printf.sprintf "%s n=%d m=%d seed=%d" algo n m s in
              let _, stream, _ = run_streamed algo ~n ~m ~seed in
              validate_stream tag stream;
              let _, again, _ = run_streamed algo ~n ~m ~seed in
              if stream <> again then
                Alcotest.failf "%s: stream is not deterministic" tag)
            seeds)
        sizes)
    algos

let test_stream_smoke () =
  corpus ~algos:[ "token-vc"; "token-dd" ] ~sizes:[ (5, 8) ] ~seeds:[ 1 ]

let test_stream_corpus () =
  if Sys.getenv_opt "WCP_TELEMETRY_CHECK" = None then ()
  else
    corpus
      ~algos:[ "token-vc"; "token-dd"; "checker" ]
      ~sizes:[ (4, 8); (8, 12); (12, 10) ]
      ~seeds:[ 1; 2; 3 ]

let () =
  Alcotest.run "telemetry"
    [
      ( "codec",
        [
          codec_roundtrip;
          fast_path_bytes;
          stream_roundtrip;
          Alcotest.test_case "malformed lines rejected" `Quick
            test_decode_errors;
        ] );
      ( "windows",
        [ Alcotest.test_case "window and phase mechanics" `Quick
            test_window_semantics ] );
      ( "determinism",
        [
          Alcotest.test_case "tap is invisible" `Quick
            test_telemetry_invisible;
          Alcotest.test_case "equal seeds, identical bytes" `Quick
            test_stream_deterministic;
        ] );
      ( "streams",
        [
          Alcotest.test_case "emitted streams validate (smoke)" `Quick
            test_stream_smoke;
          Alcotest.test_case "full corpus (WCP_TELEMETRY_CHECK=1)" `Slow
            test_stream_corpus;
        ] );
    ]
