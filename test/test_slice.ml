(* Computation slicing (Wcp_slice.Slice): the slice must be invisible
   to every detector. The properties here pin the contract of DESIGN.md
   §10: happened-before restricted to retained states survives exactly,
   the least satisfying cut of the slice maps back to the dense least
   cut, slicing is idempotent and independent of the (causally
   consistent) feed order, and the incremental builder agrees with the
   offline pass. *)

open Wcp_trace
open Wcp_core
open Wcp_slice

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let random_comp ~n ~m ~p_pred ~seed =
  Generator.random
    ~params:{ Generator.n; sends_per_process = m; p_pred; p_recv = 0.5 }
    ~seed ()

(* Random computation plus a random spec over a strict-or-full subset
   of its processes; sparse-ish predicates so slices actually shrink. *)
let gen_case =
  QCheck2.Gen.(
    map
      (fun (n, m, seed, dense_pred, width_frac) ->
        let n = 2 + n in
        let p_pred = if dense_pred then 0.5 else 0.1 in
        let comp = random_comp ~n ~m:(1 + m) ~p_pred ~seed:(Int64.of_int seed) in
        let width = max 1 (1 + (width_frac * (n - 1) / 100)) in
        let rng = Wcp_util.Rng.create (Int64.of_int (seed + 7)) in
        let procs = Generator.random_procs rng ~n ~width in
        (comp, procs))
      (tup5 (int_range 0 8) (int_range 0 12) (int_range 1 10_000) bool
         (int_range 0 99)))

let outcome = Alcotest.testable Detection.pp_outcome Detection.outcome_equal

(* Structural equality of computations: same scripts, same flags. *)
let same_computation a b =
  Computation.n a = Computation.n b
  && Array.for_all
       (fun p ->
         Computation.ops a p = Computation.ops b p
         && Computation.num_states a p = Computation.num_states b p
         && List.for_all
              (fun s ->
                let st = State.make ~proc:p ~index:s in
                Computation.pred a st = Computation.pred b st)
              (List.init (Computation.num_states a p) (fun i -> i + 1)))
       (Array.init (Computation.n a) (fun p -> p))

(* --- Soundness: the oracle can't tell the difference --------------- *)

let oracle_agrees ~keep_rest (comp, procs) =
  let spec = Spec.make comp procs in
  let sl = Slice.for_spec ~keep_rest comp ~procs in
  let sliced = Slice.computation sl in
  let spec' = Spec.make sliced procs in
  let dense = Oracle.first_cut comp spec in
  let on_slice =
    Detection.remap_outcome (Slice.remap_cut sl)
      (Oracle.first_cut sliced spec')
  in
  Detection.outcome_equal dense on_slice

let prop_oracle_vc_policy =
  qtest ~count:80 "oracle: first cut on slice = dense first cut (spec-only)"
    gen_case
    (oracle_agrees ~keep_rest:false)

let prop_oracle_full_policy =
  qtest ~count:80 "oracle: first cut on slice = dense first cut (keep rest)"
    gen_case
    (oracle_agrees ~keep_rest:true)

(* --- Happened-before preservation --------------------------------- *)

let prop_hb_preserved =
  (* For retained states on distinct processes, dense happened-before
     and slice happened-before (through the forward map) coincide.
     Same-process anchors may share a slice state (collapsed classes),
     where slice hb is reflexively false — process order carries them. *)
  qtest "happened-before between anchors survives exactly" gen_case
    (fun (comp, procs) ->
      let sl = Slice.for_spec ~keep_rest:true comp ~procs in
      let sliced = Slice.computation sl in
      let n = Computation.n comp in
      let anchors =
        List.concat
          (List.init n (fun p ->
               List.filter_map
                 (fun s ->
                   match Slice.slice_state sl ~proc:p s with
                   | Some s' -> Some (p, s, s')
                   | None -> None)
                 (List.init (Computation.num_states comp p) (fun i -> i + 1))))
      in
      List.for_all
        (fun (p, s, s') ->
          List.for_all
            (fun (q, t, t') ->
              p = q
              || Computation.happened_before comp
                   (State.make ~proc:p ~index:s)
                   (State.make ~proc:q ~index:t)
                 = Computation.happened_before sliced
                     (State.make ~proc:p ~index:s')
                     (State.make ~proc:q ~index:t'))
            anchors)
        anchors)

let prop_maps_inverse =
  qtest "dense_state inverts slice_state on anchor classes" gen_case
    (fun (comp, procs) ->
      let sl = Slice.for_spec ~keep_rest:true comp ~procs in
      Array.for_all
        (fun p ->
          List.for_all
            (fun s ->
              match Slice.slice_state sl ~proc:p s with
              | None -> true
              | Some s' ->
                  (* The back-map lands on the earliest member of the
                     class, which is itself retained and maps forward
                     to the same slice state. *)
                  let d = Slice.dense_state sl ~proc:p s' in
                  d <= s && Slice.slice_state sl ~proc:p d = Some s')
            (List.init (Computation.num_states comp p) (fun i -> i + 1)))
        (Array.init (Computation.n comp) (fun p -> p)))

(* --- Idempotence and feed-order independence ----------------------- *)

let prop_idempotent =
  qtest "slicing a slice is the identity" gen_case (fun (comp, procs) ->
      List.for_all
        (fun keep_rest ->
          let sl = Slice.for_spec ~keep_rest comp ~procs in
          let once = Slice.computation sl in
          let sl2 = Slice.for_spec ~keep_rest once ~procs in
          same_computation once (Slice.computation sl2))
        [ false; true ])

let prop_feed_order_independent =
  (* [Slice.make] feeds round-robin 0..n-1; feed the same run through
     the incremental builder scanning processes in reverse instead. Any
     causally consistent order must build the same slice. *)
  qtest "incremental builder is feed-order independent" gen_case
    (fun (comp, procs) ->
      let n = Computation.n comp in
      let member = Array.make n false in
      Array.iter (fun p -> member.(p) <- true) procs;
      let keep ~proc ~state =
        if member.(proc) then
          Computation.pred comp (State.make ~proc ~index:state)
        else true
      in
      let pred p s = Computation.pred comp (State.make ~proc:p ~index:s) in
      let b = Slice.Incremental.create ~n ~keep ~pred0:(fun p -> pred p 1) in
      let scripts = Array.init n (fun p -> ref (Computation.ops comp p)) in
      let states = Array.make n 1 in
      let sent = Hashtbl.create 64 in
      let progress = ref true in
      while !progress do
        progress := false;
        for p = n - 1 downto 0 do
          match !(scripts.(p)) with
          | [] -> ()
          | Computation.Send { dst; msg } :: rest ->
              Hashtbl.replace sent msg ();
              states.(p) <- states.(p) + 1;
              Slice.Incremental.on_send b ~proc:p ~dst ~msg
                ~pred:(pred p states.(p));
              scripts.(p) := rest;
              progress := true
          | Computation.Recv { msg } :: rest ->
              if Hashtbl.mem sent msg then begin
                states.(p) <- states.(p) + 1;
                Slice.Incremental.on_receive b ~proc:p ~msg
                  ~pred:(pred p states.(p));
                scripts.(p) := rest;
                progress := true
              end
        done
      done;
      let via_incremental = Slice.Incremental.finish b in
      let via_offline = Slice.for_spec ~keep_rest:true comp ~procs in
      same_computation
        (Slice.computation via_incremental)
        (Slice.computation via_offline))

(* --- Every detector, dense vs sliced ------------------------------- *)

let detector_cases =
  (* Fixed shapes instead of QCheck: each case runs five discrete-event
     simulations. Sparse predicates so the slice is a real reduction. *)
  List.concat_map
    (fun seed ->
      List.map (fun n -> (n, seed)) [ 3; 5; 8 ])
    [ 1; 2; 3; 4 ]

let test_detectors_agree () =
  List.iter
    (fun (n, seed) ->
      let comp = random_comp ~n ~m:8 ~p_pred:0.15 ~seed:(Int64.of_int seed) in
      let seed = Int64.of_int seed in
      let spec = Spec.all comp in
      let procs = Spec.procs spec in
      let here name = Printf.sprintf "%s n=%d seed=%Ld" name n seed in
      (* vc-family policy: spec-proc anchors only *)
      let sl = Slice.for_spec ~keep_rest:false comp ~procs in
      let sliced = Slice.computation sl in
      let spec' = Spec.make sliced procs in
      let remap o = Detection.remap_outcome (Slice.remap_cut sl) o in
      let dense_vc = Token_vc.detect ~seed comp spec in
      Alcotest.check outcome (here "token-vc") dense_vc.Detection.outcome
        (remap (Token_vc.detect ~seed sliced spec').Detection.outcome);
      let groups = max 1 (n / 2) in
      Alcotest.check outcome (here "token-multi")
        (Token_multi.detect ~groups ~seed comp spec).Detection.outcome
        (remap
           (Token_multi.detect ~groups ~seed sliced spec').Detection.outcome);
      Alcotest.check outcome (here "checker")
        (Checker_centralized.detect ~seed comp spec).Detection.outcome
        (remap
           (Checker_centralized.detect ~seed sliced spec').Detection.outcome);
      (* N-wide-cut algorithms: keep the rest whole *)
      let slf = Slice.for_spec ~keep_rest:true comp ~procs in
      let slicedf = Slice.computation slf in
      let specf = Spec.make slicedf procs in
      let remapf o = Detection.remap_outcome (Slice.remap_cut slf) o in
      Alcotest.check outcome (here "token-dd")
        (Token_dd.detect ~seed comp spec).Detection.outcome
        (remapf (Token_dd.detect ~seed slicedf specf).Detection.outcome);
      Alcotest.check outcome (here "checker-gcp")
        (Checker_gcp.detect ~seed ~channels:[] comp spec).Detection.outcome
        (remapf
           (Checker_gcp.detect ~seed ~channels:[] slicedf specf)
             .Detection.outcome))
    detector_cases

let test_dd_partial_spec () =
  (* With a strict spec subset the dd cut spans all N processes; the
     spec entries must agree after remapping, compared via projection
     (non-spec entries are detector-internal frontier positions). *)
  List.iter
    (fun seed ->
      let comp = random_comp ~n:6 ~m:8 ~p_pred:0.2 ~seed:(Int64.of_int seed) in
      let procs = [| 0; 3 |] in
      let spec = Spec.make comp procs in
      let sl = Slice.for_spec ~keep_rest:true comp ~procs in
      let sliced = Slice.computation sl in
      let spec' = Spec.make sliced procs in
      let seed = Int64.of_int seed in
      let dense = Token_dd.detect ~seed comp spec in
      let on_slice = Token_dd.detect ~seed sliced spec' in
      Alcotest.check outcome
        (Printf.sprintf "dd partial spec seed=%Ld" seed)
        (Detection.project_outcome spec dense.Detection.outcome)
        (Detection.project_outcome spec
           (Detection.remap_outcome (Slice.remap_cut sl)
              on_slice.Detection.outcome)))
    [ 5; 6; 7; 8 ]

(* --- Reduction sanity ---------------------------------------------- *)

let test_reduction () =
  (* On a sparse-truth workload the slice must actually shrink — this
     is the whole point (bench E17 measures it end to end). *)
  let comp =
    random_comp ~n:16 ~m:12 ~p_pred:0.05 ~seed:7L
  in
  let procs = Spec.procs (Spec.all comp) in
  let sl = Slice.for_spec ~keep_rest:false comp ~procs in
  let dense_states = Computation.total_states comp in
  let slice_states = Computation.total_states (Slice.computation sl) in
  Alcotest.(check bool)
    (Printf.sprintf "slice shrinks (%d -> %d states)" dense_states
       slice_states)
    true
    (2 * slice_states <= dense_states)

(* --- Full-corpus sweep (make slice-check) -------------------------- *)

(* Unlike [test_detectors_agree], which drives [Slice.for_spec] and the
   remap by hand, this sweep goes through the user-facing plumbing:
   [Detection.options ~slice:true] handed to each detector, whose
   internal [Run_common.with_slice] must return outcomes already in
   dense coordinates. Bounded smoke always runs; WCP_SLICE_CHECK=1
   unlocks the whole corpus (sizes x densities x seeds x full and
   partial specs). *)
let corpus_sweep ~sizes ~densities ~seeds =
  let sliced_opts = Detection.options ~slice:true () in
  List.iter
    (fun (n, m) ->
      List.iter
        (fun p_pred ->
          List.iter
            (fun s ->
              let seed = Int64.of_int s in
              let comp = random_comp ~n ~m ~p_pred ~seed in
              let specs =
                (* Full-width and a strict-subset spec (every other
                   process), skipping the subset when it would be the
                   whole spec anyway. *)
                Spec.all comp
                :: (if n < 2 then []
                    else
                      [
                        Spec.make comp
                          (Array.init ((n + 1) / 2) (fun i -> 2 * i));
                      ])
              in
              List.iter
                (fun spec ->
                  let w = Spec.width spec in
                  let here name =
                    Printf.sprintf "%s n=%d m=%d p=%.2f w=%d seed=%Ld" name n
                      m p_pred w seed
                  in
                  let agree name dense sliced =
                    Alcotest.check outcome (here name) dense sliced
                  in
                  agree "token-vc"
                    (Token_vc.detect ~seed comp spec).Detection.outcome
                    (Token_vc.detect ~options:sliced_opts ~seed comp spec)
                      .Detection.outcome;
                  let groups = max 1 (w / 2) in
                  agree "token-multi"
                    (Token_multi.detect ~groups ~seed comp spec)
                      .Detection.outcome
                    (Token_multi.detect ~options:sliced_opts ~groups ~seed
                       comp spec)
                      .Detection.outcome;
                  agree "checker"
                    (Checker_centralized.detect ~seed comp spec)
                      .Detection.outcome
                    (Checker_centralized.detect ~options:sliced_opts ~seed
                       comp spec)
                      .Detection.outcome;
                  let project = Detection.project_outcome spec in
                  agree "token-dd"
                    (project (Token_dd.detect ~seed comp spec).Detection.outcome)
                    (project
                       (Token_dd.detect ~options:sliced_opts ~seed comp spec)
                         .Detection.outcome);
                  agree "checker-gcp"
                    (project
                       (Checker_gcp.detect ~seed ~channels:[] comp spec)
                         .Detection.outcome)
                    (project
                       (Checker_gcp.detect ~options:sliced_opts ~seed
                          ~channels:[] comp spec)
                         .Detection.outcome))
                specs)
            seeds)
        densities)
    sizes

let test_corpus_smoke () =
  corpus_sweep ~sizes:[ (4, 6) ] ~densities:[ 0.15 ] ~seeds:[ 1; 2 ]

let test_corpus_full () =
  if Sys.getenv_opt "WCP_SLICE_CHECK" = None then ()
  else
    corpus_sweep
      ~sizes:[ (3, 8); (4, 10); (6, 10); (8, 12); (12, 10); (16, 10) ]
      ~densities:[ 0.02; 0.05; 0.15; 0.3; 0.6 ]
      ~seeds:[ 1; 2; 3; 4; 5 ]

let () =
  Alcotest.run "slice"
    [
      ( "oracle",
        [
          prop_oracle_vc_policy;
          prop_oracle_full_policy;
          prop_hb_preserved;
          prop_maps_inverse;
        ] );
      ("structure", [ prop_idempotent; prop_feed_order_independent ]);
      ( "detectors",
        [
          Alcotest.test_case "all detectors, dense vs sliced" `Quick
            test_detectors_agree;
          Alcotest.test_case "dd partial spec" `Quick test_dd_partial_spec;
          Alcotest.test_case "sparse-truth reduction" `Quick test_reduction;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "options-path smoke" `Quick test_corpus_smoke;
          Alcotest.test_case "full corpus (WCP_SLICE_CHECK=1)" `Slow
            test_corpus_full;
        ] );
    ]
