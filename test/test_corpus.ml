(* Regression corpus: checked-in trace files with golden first cuts.

   These pin the exact behaviour of the whole stack — codec, clocks,
   oracle, and all five online algorithms — against files on disk, so
   any change to trace parsing, vector-clock computation or elimination
   order that silently alters results fails loudly here. *)

open Wcp_trace
open Wcp_core

let corpus_dir =
  (* dune runs tests from the build directory; the traces live in the
     source tree, two levels up. *)
  let candidates = [ "../../traces"; "../traces"; "traces" ] in
  match List.find_opt Sys.file_exists candidates with
  | Some d -> d
  | None -> Alcotest.fail "trace corpus directory not found"

let load name = Trace_codec.read_file (Filename.concat corpus_dir (name ^ ".trace"))

type golden = {
  name : string;
  procs : int array option;  (* None = all *)
  expected : string option;  (* first cut as printed, None = no detection *)
}

let corpus =
  [
    { name = "random-small"; procs = None; expected = Some "{0:5 1:1 2:1 3:5}" };
    {
      name = "random-wide";
      procs = None;
      expected = Some "{0:2 1:5 2:4 3:2 4:2 5:4 6:6 7:4 8:4 9:1}";
    };
    { name = "random-never"; procs = None; expected = None };
    { name = "mutex-buggy"; procs = Some [| 1; 2 |]; expected = Some "{1:9 2:3}" };
    { name = "tpl-clean"; procs = Some [| 1; 3 |]; expected = None };
    { name = "ring"; procs = Some [| 0; 1 |]; expected = None };
    {
      name = "clientserver";
      procs = Some [| 1; 2; 3; 4 |];
      expected = Some "{1:2 2:2 3:2 4:2}";
    };
  ]

let spec_of comp = function
  | None -> Spec.all comp
  | Some procs -> Spec.make comp procs

let check_outcome name expected (outcome : Detection.outcome) =
  match (expected, outcome) with
  | None, Detection.No_detection -> ()
  | Some want, Detection.Detected cut ->
      Alcotest.(check string) name want (Cut.to_string cut)
  | None, Detection.Detected cut ->
      Alcotest.failf "%s: expected no detection, got %s" name
        (Cut.to_string cut)
  | Some want, Detection.No_detection ->
      Alcotest.failf "%s: expected %s, got no detection" name want
  | _, Detection.Undetectable_crashed ps ->
      Alcotest.failf "%s: undetectable, crashed %s" name
        (String.concat "," (List.map string_of_int ps))

let test_oracle_golden () =
  List.iter
    (fun g ->
      let comp = load g.name in
      let spec = spec_of comp g.procs in
      check_outcome g.name g.expected (Oracle.first_cut comp spec))
    corpus

let test_all_algorithms_golden () =
  List.iter
    (fun g ->
      let comp = load g.name in
      let spec = spec_of comp g.procs in
      check_outcome (g.name ^ "/vc") g.expected
        (Token_vc.detect ~seed:1L comp spec).outcome;
      check_outcome (g.name ^ "/checker") g.expected
        (Checker_centralized.detect ~seed:2L comp spec).outcome;
      check_outcome (g.name ^ "/multi") g.expected
        (Token_multi.detect ~groups:(min 2 (Spec.width spec)) ~seed:3L comp spec)
          .outcome;
      check_outcome (g.name ^ "/dd") g.expected
        (Detection.project_outcome spec
           (Token_dd.detect ~seed:4L comp spec).outcome);
      check_outcome (g.name ^ "/dd-par") g.expected
        (Detection.project_outcome spec
           (Token_dd.detect ~parallel:true ~seed:5L comp spec).outcome))
    corpus

let test_codec_stability () =
  (* Re-encoding a corpus file must reproduce it byte for byte: the
     wire format is stable. *)
  List.iter
    (fun g ->
      let path = Filename.concat corpus_dir (g.name ^ ".trace") in
      let ic = open_in path in
      let raw =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check string) (g.name ^ " re-encodes identically") raw
        (Trace_codec.encode (Trace_codec.decode raw)))
    corpus

let () =
  Alcotest.run "corpus"
    [
      ( "golden",
        [
          Alcotest.test_case "oracle" `Quick test_oracle_golden;
          Alcotest.test_case "all algorithms" `Quick
            test_all_algorithms_golden;
          Alcotest.test_case "codec stability" `Quick test_codec_stability;
        ] );
    ]
