(* The fault layer and the reliable transport built on top of it. *)

open Wcp_sim

(* Message type for transport tests: numbered payloads plus the frames
   the transport wraps them in. *)
type m = Payload of int | Fr of m Transport.frame

let inject f = Fr f
let project = function Fr f -> Some f | Payload _ -> None

(* ------------------------------------------------------------------ *)
(* Fault plan validation                                               *)
(* ------------------------------------------------------------------ *)

let invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_fault_validation () =
  invalid (fun () -> Fault.link ~drop:1.5 ());
  invalid (fun () -> Fault.link ~drop:(-0.1) ());
  invalid (fun () -> Fault.link ~dup:Float.nan ());
  invalid (fun () -> Fault.link ~spike_p:2.0 ());
  invalid (fun () -> Fault.link ~spike_mean:(-1.0) ());
  invalid (fun () -> Fault.link ~spike_mean:Float.infinity ());
  invalid (fun () -> Fault.window ~kind:Fault.Crash ~proc:(-1) ~from_t:0.0 ());
  invalid (fun () -> Fault.window ~kind:Fault.Crash ~proc:0 ~from_t:(-1.0) ());
  invalid (fun () ->
      Fault.window ~kind:Fault.Stall ~proc:0 ~from_t:5.0 ~until_t:5.0 ());
  ignore (Fault.link ~drop:1.0 ~dup:1.0 ~spike_p:1.0 ~spike_mean:3.0 ());
  ignore (Fault.window ~kind:Fault.Stall ~proc:0 ~from_t:5.0 ~until_t:6.0 ())

let test_network_validation () =
  invalid (fun () -> Network.create ~latency:(Network.Constant (-1.0)) ());
  invalid (fun () -> Network.create ~latency:(Network.Constant Float.nan) ());
  invalid (fun () ->
      Network.create ~latency:(Network.Constant Float.infinity) ());
  invalid (fun () -> Network.create ~latency:(Network.Uniform (3.0, 1.0)) ());
  invalid (fun () -> Network.create ~latency:(Network.Uniform (-1.0, 1.0)) ());
  invalid (fun () ->
      Network.create ~latency:(Network.Uniform (0.0, Float.nan)) ());
  invalid (fun () -> Network.create ~latency:(Network.Exponential 0.0) ());
  invalid (fun () -> Network.create ~latency:(Network.Exponential (-2.0)) ());
  ignore (Network.create ~latency:(Network.Constant 0.0) ());
  ignore (Network.create ~latency:(Network.Uniform (0.5, 0.5)) ());
  ignore (Network.create ~latency:(Network.Exponential 0.1) ())

let test_plan_classification () =
  Alcotest.(check bool) "none is none" true (Fault.is_none Fault.none);
  Alcotest.(check bool) "make () is none" true (Fault.is_none (Fault.make ()));
  Alcotest.(check bool) "uniform defaults are none" true
    (Fault.is_none (Fault.uniform ()));
  Alcotest.(check bool) "drop-rate plan is active" false
    (Fault.is_none (Fault.uniform ~drop:0.1 ()));
  let w = Fault.window ~kind:Fault.Crash ~proc:2 ~from_t:1.0 () in
  let p = Fault.make ~windows:[ w ] () in
  Alcotest.(check bool) "windowed plan is active" false (Fault.is_none p);
  Alcotest.(check (list int)) "permanent crash listed" [ 2 ]
    (Fault.permanently_crashed p);
  let transient =
    Fault.make
      ~windows:[ Fault.window ~kind:Fault.Crash ~proc:1 ~from_t:1.0 ~until_t:2.0 () ]
      ()
  in
  Alcotest.(check (list int)) "transient crash not listed" []
    (Fault.permanently_crashed transient)

(* ------------------------------------------------------------------ *)
(* Engine-level fault behavior                                         *)
(* ------------------------------------------------------------------ *)

let test_no_handler_names_both_ends () =
  let e = Engine.create ~num_processes:5 ~seed:1L () in
  Engine.schedule_initial e ~proc:3 ~at:0.0 (fun ctx ->
      Engine.send ctx ~dst:4 ());
  match Engine.run e with
  | exception Failure msg ->
      let has s =
        let re = Str.regexp_string s in
        try ignore (Str.search_forward re msg 0); true
        with Not_found -> false
      in
      Alcotest.(check bool)
        (Printf.sprintf "names source (got %S)" msg)
        true (has "from process 3");
      Alcotest.(check bool)
        (Printf.sprintf "names destination (got %S)" msg)
        true (has "for process 4")
  | () -> Alcotest.fail "missing handler should fail loudly"

(* A run with [Fault.none] must be indistinguishable from a run with no
   fault plan at all — same deliveries at the same times, same RNG
   stream consumption. *)
let test_fault_none_bit_identical () =
  let run fault =
    let e =
      Engine.create
        ~network:(Network.create ~latency:(Network.Uniform (0.1, 2.0)) ())
        ?fault ~num_processes:3 ~seed:77L ()
    in
    let log = Buffer.create 256 in
    for p = 0 to 2 do
      Engine.set_handler e p (fun ctx ~src msg ->
          Buffer.add_string log
            (Printf.sprintf "%d<-%d:%d@%.9f;" p src msg (Engine.time ctx));
          if msg < 12 then Engine.send ctx ~dst:((p + 1) mod 3) (msg + 1))
    done;
    Engine.schedule_initial e ~proc:0 ~at:0.0 (fun ctx ->
        Engine.send ctx ~dst:1 0);
    Engine.run e;
    Buffer.contents log
  in
  Alcotest.(check string) "Fault.none ≡ no plan" (run None)
    (run (Some Fault.none))

let test_chaos_deterministic () =
  let run () =
    let e =
      Engine.create
        ~network:(Network.create ~latency:(Network.Uniform (0.1, 2.0)) ())
        ~fault:(Fault.uniform ~seed:5L ~drop:0.3 ~dup:0.2 ~spike_p:0.2 ~spike_mean:4.0 ())
        ~num_processes:3 ~seed:77L ()
    in
    let log = Buffer.create 256 in
    for p = 0 to 2 do
      Engine.set_handler e p (fun ctx ~src msg ->
          Buffer.add_string log
            (Printf.sprintf "%d<-%d:%d@%.9f;" p src msg (Engine.time ctx));
          if msg < 30 then Engine.send ctx ~dst:((p + 1) mod 3) (msg + 1))
    done;
    Engine.schedule_initial e ~proc:0 ~at:0.0 (fun ctx ->
        Engine.send ctx ~dst:1 0);
    Engine.run e;
    Printf.sprintf "%s|drop=%d dup=%d" (Buffer.contents log)
      (Stats.net_dropped (Engine.stats e))
      (Stats.net_duplicated (Engine.stats e))
  in
  Alcotest.(check string) "equal seeds, equal chaos" (run ()) (run ())

let test_crash_window_loses_messages () =
  (* P1 is crashed during [1, 10): a message delivered inside the window
     vanishes; one delivered after it arrives normally. *)
  let fault =
    Fault.make
      ~windows:[ Fault.window ~kind:Fault.Crash ~proc:1 ~from_t:1.0 ~until_t:10.0 () ]
      ()
  in
  let e =
    Engine.create
      ~network:(Network.create ~latency:(Network.Constant 1.0) ())
      ~fault ~num_processes:2 ~seed:1L ()
  in
  let got = ref [] in
  Engine.set_handler e 1 (fun ctx ~src:_ msg ->
      got := (msg, Engine.time ctx) :: !got);
  Engine.schedule_initial e ~proc:0 ~at:0.0 (fun ctx ->
      Engine.send ctx ~dst:1 "inside");
  Engine.schedule_initial e ~proc:0 ~at:10.0 (fun ctx ->
      Engine.send ctx ~dst:1 "after");
  Engine.run e;
  (match !got with
  | [ ("after", t) ] -> Alcotest.(check (float 1e-9)) "after window" 11.0 t
  | _ -> Alcotest.fail "expected exactly the post-window delivery");
  Alcotest.(check int) "loss accounted" 1 (Stats.crash_dropped (Engine.stats e))

let test_stall_window_defers () =
  (* Stall defers both messages and timers to the window end; nothing
     is lost. *)
  let fault =
    Fault.make
      ~windows:[ Fault.window ~kind:Fault.Stall ~proc:1 ~from_t:1.0 ~until_t:10.0 () ]
      ()
  in
  let e =
    Engine.create
      ~network:(Network.create ~latency:(Network.Constant 1.0) ())
      ~fault ~num_processes:2 ~seed:1L ()
  in
  let got = ref [] in
  let timer_at = ref nan in
  Engine.set_handler e 1 (fun ctx ~src:_ msg ->
      got := (msg, Engine.time ctx) :: !got;
      Engine.schedule ctx ~delay:0.5 (fun ctx ->
          timer_at := Engine.time ctx));
  Engine.schedule_initial e ~proc:0 ~at:0.5 (fun ctx ->
      Engine.send ctx ~dst:1 "stalled");
  Engine.run e;
  (match !got with
  | [ ("stalled", t) ] -> Alcotest.(check (float 1e-9)) "deferred to end" 10.0 t
  | _ -> Alcotest.fail "stalled message must still arrive");
  (* The timer set at t=10 expires at 10.5, outside the window. *)
  Alcotest.(check (float 1e-9)) "timer after restart" 10.5 !timer_at;
  Alcotest.(check int) "nothing lost" 0 (Stats.crash_dropped (Engine.stats e))

let test_permanent_crash_drops_everything () =
  let fault =
    Fault.make
      ~windows:[ Fault.window ~kind:Fault.Crash ~proc:1 ~from_t:2.0 () ]
      ()
  in
  let e =
    Engine.create
      ~network:(Network.create ~latency:(Network.Constant 1.0) ())
      ~fault ~num_processes:2 ~seed:1L ()
  in
  let got = ref 0 in
  Engine.set_handler e 1 (fun _ ~src:_ () -> incr got);
  for i = 0 to 4 do
    Engine.schedule_initial e ~proc:0 ~at:(float_of_int i) (fun ctx ->
        Engine.send ctx ~dst:1 ())
  done;
  Engine.run e;
  (* Sends at t=0 and t=1 arrive at 1.0 and 2.0... 2.0 is inside the
     half-open window [2, inf). Only the t=0 send survives. *)
  Alcotest.(check int) "only pre-crash delivery" 1 !got;
  Alcotest.(check int) "rest lost" 4 (Stats.crash_dropped (Engine.stats e))

(* ------------------------------------------------------------------ *)
(* Transport                                                           *)
(* ------------------------------------------------------------------ *)

(* One sender, one receiver, a lossy + duplicating link in both
   directions (acks suffer too). The transport must deliver every
   payload exactly once, in order. *)
let run_flow ~drop ~dup ~count ~seed =
  let e =
    Engine.create
      ~network:(Network.create ~latency:(Network.Uniform (0.1, 1.0)) ())
      ~fault:(Fault.uniform ~seed ~drop ~dup ())
      ~num_processes:2 ~seed ()
  in
  let t = Transport.create ~rto:3.0 ~inject ~project e in
  let got = ref [] in
  Transport.wire t 0 (fun _ ~src:_ _ -> ());
  Transport.wire t 1 (fun _ ~src:_ msg ->
      match msg with
      | Payload k -> got := k :: !got
      | Fr _ -> Alcotest.fail "frame leaked through the transport");
  Engine.schedule_initial e ~proc:0 ~at:0.0 (fun ctx ->
      for k = 1 to count do
        Transport.send t ctx ~bits:32 ~dst:1 (Payload k)
      done);
  Engine.run e;
  (e, List.rev !got)

let test_exactly_once_in_order () =
  let total_retx = ref 0 and total_dups = ref 0 in
  for s = 1 to 10 do
    let e, got = run_flow ~drop:0.2 ~dup:0.1 ~count:40 ~seed:(Int64.of_int s) in
    Alcotest.(check (list int))
      (Printf.sprintf "seed %d: exactly once, in order" s)
      (List.init 40 (fun i -> i + 1))
      got;
    let st = Engine.stats e in
    total_retx := !total_retx + Stats.total_retransmits st;
    total_dups := !total_dups + Stats.total_dups_suppressed st
  done;
  (* A 20%-lossy link over 400 sends cannot get away without recovery
     work; the counters must show it happened. *)
  Alcotest.(check bool) "losses forced retransmissions" true (!total_retx > 0);
  Alcotest.(check bool) "duplicates were suppressed" true (!total_dups > 0)

let test_clean_link_no_retransmits () =
  let e, got = run_flow ~drop:0.0 ~dup:0.0 ~count:20 ~seed:3L in
  Alcotest.(check (list int)) "all delivered"
    (List.init 20 (fun i -> i + 1))
    got;
  Alcotest.(check int) "no retransmits" 0
    (Stats.total_retransmits (Engine.stats e))

let test_unreachable_gives_up () =
  (* Total blackout: every data frame is lost, so the oldest frame
     exhausts its retries and the destination is declared dead. *)
  let e =
    Engine.create
      ~network:(Network.create ~latency:(Network.Constant 0.1) ())
      ~fault:(Fault.uniform ~seed:9L ~drop:1.0 ())
      ~num_processes:2 ~seed:9L ()
  in
  let dead = ref [] in
  let t =
    Transport.create ~rto:1.0 ~max_retries:4 ~inject ~project
      ~on_unreachable:(fun _ ~dst -> dead := dst :: !dead)
      e
  in
  Transport.wire t 0 (fun _ ~src:_ _ -> ());
  Transport.wire t 1 (fun _ ~src:_ _ -> Alcotest.fail "nothing can arrive");
  Engine.schedule_initial e ~proc:0 ~at:0.0 (fun ctx ->
      Transport.send t ctx ~dst:1 (Payload 1);
      Transport.send t ctx ~dst:1 (Payload 2));
  Engine.run e;
  Alcotest.(check (list int)) "gave up exactly once" [ 1 ] !dead;
  Alcotest.(check (list int)) "listed unreachable" [ 1 ] (Transport.unreachable t);
  Alcotest.(check int) "max_retries retransmissions" 4
    (Stats.total_retransmits (Engine.stats e))

let test_transport_validation () =
  let e = Engine.create ~num_processes:2 ~seed:1L () in
  invalid (fun () -> Transport.create ~rto:0.0 ~inject ~project e);
  invalid (fun () -> Transport.create ~backoff:0.5 ~inject ~project e);
  invalid (fun () -> Transport.create ~max_retries:0 ~inject ~project e);
  invalid (fun () -> Transport.create ~max_unacked:0 ~inject ~project e)

(* The retransmit buffer is bounded: a sender whose peer never acks
   fails fast at the cap instead of buffering without limit, and the
   high-water mark records how deep the queue got. *)
let test_unacked_cap_fails_fast () =
  let e =
    Engine.create
      ~network:(Network.create ~latency:(Network.Constant 0.1) ())
      ~fault:(Fault.uniform ~seed:2L ~drop:1.0 ())
      ~num_processes:2 ~seed:2L ()
  in
  let t = Transport.create ~max_unacked:4 ~inject ~project e in
  Transport.wire t 0 (fun _ ~src:_ _ -> ());
  Transport.wire t 1 (fun _ ~src:_ _ -> Alcotest.fail "blackout delivers nothing");
  let failed = ref None in
  Engine.schedule_initial e ~proc:0 ~at:0.0 (fun ctx ->
      match
        for k = 1 to 10 do
          Transport.send t ctx ~dst:1 (Payload k)
        done
      with
      | () -> ()
      | exception Failure m -> failed := Some m);
  Engine.run e;
  (match !failed with
  | Some m ->
      let has s =
        let re = Str.regexp_string s in
        try
          ignore (Str.search_forward re m 0);
          true
        with Not_found -> false
      in
      Alcotest.(check bool)
        (Printf.sprintf "names the cap (got %S)" m)
        true (has "max_unacked=4")
  | None -> Alcotest.fail "the 5th unacked send must fail fast");
  Alcotest.(check int) "high-water mark recorded" 5
    (Stats.retx_buf_hwm (Engine.stats e))

let test_retx_hwm_on_healthy_flow () =
  let e, _ = run_flow ~drop:0.2 ~dup:0.1 ~count:40 ~seed:4L in
  let hwm = Stats.retx_buf_hwm (Engine.stats e) in
  Alcotest.(check bool) "hwm positive" true (hwm > 0);
  Alcotest.(check bool) "hwm bounded by traffic" true (hwm <= 40)

(* The recovery handshake: a receiver rolled back to an earlier
   incarnation (higher era, lower cursor) reconnects, the sender
   replays the retained frames — even already-acked ones — and
   delivery stays exactly-once in order per incarnation. *)
let test_reconnect_replays_history () =
  let e =
    Engine.create
      ~network:(Network.create ~latency:(Network.Constant 0.1) ())
      ~num_processes:2 ~seed:5L ()
  in
  let t = Transport.create ~recovery:true ~inject ~project e in
  let got = ref [] in
  Transport.wire t 0 (fun _ ~src:_ _ -> ());
  Transport.wire t 1 (fun _ ~src:_ msg ->
      match msg with
      | Payload k -> got := k :: !got
      | Fr _ -> Alcotest.fail "frame leaked");
  let saved = ref None in
  Engine.schedule_initial e ~proc:0 ~at:0.0 (fun ctx ->
      for k = 1 to 3 do
        Transport.send t ctx ~dst:1 (Payload k)
      done);
  (* After 1,2,3 are consumed and acked: snapshot the receiver. *)
  Engine.schedule_initial e ~proc:1 ~at:1.0 (fun _ ->
      saved := Some (Transport.export_state t ~proc:1));
  Engine.schedule_initial e ~proc:0 ~at:2.0 (fun ctx ->
      for k = 4 to 5 do
        Transport.send t ctx ~dst:1 (Payload k)
      done);
  (* "Restart": roll the receiver back to the t=1 state (frames 4 and 5
     never happened for it) and run the handshake. *)
  Engine.schedule_initial e ~proc:1 ~at:3.0 (fun ctx ->
      Transport.restore_state t ~proc:1 (Option.get !saved);
      Transport.reconnect t ctx ~proc:1);
  Engine.run e;
  Alcotest.(check (list int)) "in order, replay after rollback"
    [ 1; 2; 3; 4; 5; 4; 5 ] (List.rev !got);
  Alcotest.(check bool) "replay accounted" true
    (Stats.replayed (Engine.stats e) >= 2)

let () =
  Alcotest.run "transport"
    [
      ( "fault-plans",
        [
          Alcotest.test_case "link/window validation" `Quick
            test_fault_validation;
          Alcotest.test_case "network latency validation" `Quick
            test_network_validation;
          Alcotest.test_case "plan classification" `Quick
            test_plan_classification;
        ] );
      ( "engine-faults",
        [
          Alcotest.test_case "no-handler failure names both ends" `Quick
            test_no_handler_names_both_ends;
          Alcotest.test_case "Fault.none is bit-identical" `Quick
            test_fault_none_bit_identical;
          Alcotest.test_case "chaos is deterministic" `Quick
            test_chaos_deterministic;
          Alcotest.test_case "crash window loses messages" `Quick
            test_crash_window_loses_messages;
          Alcotest.test_case "stall window defers" `Quick
            test_stall_window_defers;
          Alcotest.test_case "permanent crash drops everything" `Quick
            test_permanent_crash_drops_everything;
        ] );
      ( "reliable-delivery",
        [
          Alcotest.test_case "exactly once, in order, under chaos" `Quick
            test_exactly_once_in_order;
          Alcotest.test_case "clean link never retransmits" `Quick
            test_clean_link_no_retransmits;
          Alcotest.test_case "blackout declares unreachable" `Quick
            test_unreachable_gives_up;
          Alcotest.test_case "parameter validation" `Quick
            test_transport_validation;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "unacked cap fails fast" `Quick
            test_unacked_cap_fails_fast;
          Alcotest.test_case "retransmit-buffer high-water mark" `Quick
            test_retx_hwm_on_healthy_flow;
          Alcotest.test_case "reconnect replays retained history" `Quick
            test_reconnect_replays_history;
        ] );
    ]
