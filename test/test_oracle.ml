open Wcp_trace
open Wcp_core

let qtest = Helpers.qtest

let st p k = State.make ~proc:p ~index:k

(* Two processes, one message; predicates true in (0,2) and (1,1). *)
let tiny_detectable () =
  let b = Builder.create ~n:2 in
  Builder.set_pred b ~proc:1 true;
  let m = Builder.send b ~src:0 ~dst:1 in
  Builder.set_pred b ~proc:0 true;
  Builder.recv b ~dst:1 m;
  Builder.finish b

(* Chain: predicate states strictly ordered, so never concurrent. *)
let tiny_undetectable () =
  let b = Builder.create ~n:2 in
  Builder.set_pred b ~proc:0 true;
  let m = Builder.send b ~src:0 ~dst:1 in
  Builder.recv b ~dst:1 m;
  Builder.set_pred b ~proc:1 true;
  (* (0,1) -> (1,2): the only candidate pair is ordered. *)
  let m2 = Builder.send b ~src:1 ~dst:0 in
  Builder.recv b ~dst:0 m2;
  Builder.finish b

let test_oracle_detects () =
  let c = tiny_detectable () in
  let spec = Spec.all c in
  match Oracle.first_cut c spec with
  | Detection.Detected cut ->
      Alcotest.(check string) "first cut" "{0:2 1:1}" (Cut.to_string cut)
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Alcotest.fail "expected detection"

let test_oracle_rejects () =
  let c = tiny_undetectable () in
  let spec = Spec.all c in
  Alcotest.check Helpers.outcome "no detection" Detection.No_detection
    (Oracle.first_cut c spec)

let test_oracle_no_candidates () =
  let c =
    Computation.of_raw ~ops:[| []; [] |] ~pred:[| [| false |]; [| true |] |]
  in
  Alcotest.check Helpers.outcome "empty queue means no detection"
    Detection.No_detection
    (Oracle.first_cut c (Spec.all c))

let test_oracle_single_process () =
  let c = Computation.of_raw ~ops:[| [] |] ~pred:[| [| true |] |] in
  match Oracle.first_cut c (Spec.all c) with
  | Detection.Detected cut ->
      Alcotest.(check string) "single" "{0:1}" (Cut.to_string cut)
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Alcotest.fail "expected detection"

let test_oracle_subset_spec () =
  let c = tiny_detectable () in
  (* WCP over process 1 only: its first candidate is state 1. *)
  let spec = Spec.make c [| 1 |] in
  match Oracle.first_cut c spec with
  | Detection.Detected cut ->
      Alcotest.(check string) "cut over subset" "{1:1}" (Cut.to_string cut)
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Alcotest.fail "expected detection"

let prop_oracle_equals_brute =
  qtest ~count:300 "advance-cut oracle = brute force" Helpers.gen_small_comp
    (fun comp ->
      let spec = Spec.all comp in
      Detection.outcome_equal (Oracle.first_cut comp spec)
        (Oracle.first_cut_brute comp spec))

let prop_oracle_equals_brute_subset =
  qtest ~count:200 "oracle = brute force on sub-specs"
    QCheck2.Gen.(pair Helpers.gen_small_comp (int_range 0 1000))
    (fun (comp, pseed) ->
      let rng = Wcp_util.Rng.create (Int64.of_int pseed) in
      let width = 1 + Wcp_util.Rng.int rng (Computation.n comp) in
      let procs = Generator.random_procs rng ~n:(Computation.n comp) ~width in
      let spec = Spec.make comp procs in
      Detection.outcome_equal (Oracle.first_cut comp spec)
        (Oracle.first_cut_brute comp spec))

let prop_first_cut_satisfies =
  qtest ~count:200 "detected cut satisfies the WCP" Helpers.gen_medium_comp
    (fun comp ->
      let spec = Spec.all comp in
      match Oracle.first_cut comp spec with
      | Detection.Detected cut -> Cut.satisfies comp cut
      | Detection.No_detection | Detection.Undetectable_crashed _ -> true)

let prop_first_cut_minimal =
  (* Brute force finds the pointwise minimum of all satisfying cuts;
     the advance-cut result must equal it AND be dominated by every
     satisfying cut (lattice meet property of linear predicates). *)
  qtest ~count:150 "first cut is the least satisfying cut"
    Helpers.gen_small_comp (fun comp ->
      let spec = Spec.all comp in
      match Oracle.first_cut comp spec with
      | Detection.No_detection | Detection.Undetectable_crashed _ -> true
      | Detection.Detected first ->
          let n = Computation.n comp in
          let candidate_lists =
            Array.init n (fun p -> Array.of_list (Computation.candidates comp p))
          in
          let ok = ref true in
          let pick = Array.make n 0 in
          let rec explore k =
            if k = n then begin
              let states = Array.mapi (fun i j -> candidate_lists.(i).(j)) pick in
              let cut = Cut.over_all comp states in
              if Cut.satisfies comp cut && not (Cut.pointwise_leq first cut)
              then ok := false
            end
            else
              for j = 0 to Array.length candidate_lists.(k) - 1 do
                pick.(k) <- j;
                explore (k + 1)
              done
          in
          if Array.for_all (fun a -> Array.length a > 0) candidate_lists
             && Array.fold_left (fun acc a -> acc * Array.length a) 1 candidate_lists
                < 50_000
          then explore 0;
          !ok)

(* ------------------------------------------------------------------ *)
(* Lemma 4.1: direct-dependence consistency equals full consistency    *)
(* ------------------------------------------------------------------ *)

(* (i, a) directly depends-precedes (j, b) iff some message from i to j
   was sent from state >= a and received entering state <= b. *)
let direct_dep_violation comp states =
  Array.exists
    (fun (m : Computation.message) ->
      m.Computation.src_state >= states.(m.Computation.src)
      && m.Computation.dst_state <= states.(m.Computation.dst))
    (Computation.messages comp)

let prop_lemma_4_1 =
  qtest ~count:300 "Lemma 4.1: consistent iff no direct-dependence edge"
    QCheck2.Gen.(pair Helpers.gen_small_comp (int_range 0 100))
    (fun (comp, cseed) ->
      let states = Helpers.random_full_cut comp cseed in
      let cut = Cut.over_all comp states in
      Cut.consistent comp cut = not (direct_dep_violation comp states))

(* ------------------------------------------------------------------ *)
(* Cooper–Marzullo                                                     *)
(* ------------------------------------------------------------------ *)

let test_cm_example () =
  let c = tiny_detectable () in
  let spec = Spec.all c in
  match Cooper_marzullo.detect_wcp c spec with
  | Ok (Detection.Detected cut, expl) ->
      Alcotest.(check string) "same first cut" "{0:2 1:1}" (Cut.to_string cut);
      Alcotest.(check bool) "explored at least the initial cut" true
        (expl.Cooper_marzullo.cuts_explored >= 1)
  | Ok ((Detection.No_detection | Detection.Undetectable_crashed _), _) ->
      Alcotest.fail "expected detection"
  | Error _ -> Alcotest.fail "limit hit unexpectedly"

let test_cm_limit () =
  let comp = Helpers.build_comp (4, 6, 0, 50, 7) in
  let spec = Spec.all comp in
  match Cooper_marzullo.detect_wcp ~limit:3 comp spec with
  | Error expl ->
      Alcotest.(check bool) "counted up to the limit" true
        (expl.Cooper_marzullo.cuts_explored >= 3)
  | Ok _ -> Alcotest.fail "expected the limit to trigger"

let prop_cm_equals_oracle =
  qtest ~count:100 "Cooper–Marzullo agrees with the oracle"
    Helpers.gen_small_comp (fun comp ->
      let spec = Spec.all comp in
      match Cooper_marzullo.detect_wcp comp spec with
      | Error _ -> true (* limit: no claim *)
      | Ok (outcome, _) ->
          Detection.outcome_equal outcome (Oracle.first_cut comp spec))

let prop_cm_subset_projects =
  qtest ~count:80 "CM over all N projects to the oracle's spec cut"
    QCheck2.Gen.(pair Helpers.gen_small_comp (int_range 0 1000))
    (fun (comp, pseed) ->
      let rng = Wcp_util.Rng.create (Int64.of_int pseed) in
      let width = 1 + Wcp_util.Rng.int rng (Computation.n comp) in
      let procs = Generator.random_procs rng ~n:(Computation.n comp) ~width in
      let spec = Spec.make comp procs in
      match Cooper_marzullo.detect_wcp comp spec with
      | Error _ -> true
      | Ok (outcome, _) ->
          Detection.outcome_equal
            (Detection.project_outcome spec outcome)
            (Oracle.first_cut comp spec))

let test_cm_general_predicate () =
  (* A non-conjunctive predicate: "P0 and P1 are in states with equal
     parity" — detectable by CM, out of scope for the WCP oracle. *)
  let c = tiny_detectable () in
  let phi cut =
    let a = Cut.state cut 0 and b = Cut.state cut 1 in
    (a.State.index + b.State.index) mod 2 = 0
  in
  match Cooper_marzullo.detect c phi with
  | Ok (Detection.Detected cut, _) ->
      Alcotest.(check bool) "phi holds" true (phi cut)
  | Ok ((Detection.No_detection | Detection.Undetectable_crashed _), _) ->
      Alcotest.fail "initial cut (1,1) already satisfies phi"
  | Error _ -> Alcotest.fail "limit hit"

(* ------------------------------------------------------------------ *)
(* Definitely(φ)                                                       *)
(* ------------------------------------------------------------------ *)

(* Brute force: enumerate every observation (maximal lattice path) and
   check whether each passes through a phi-cut. Exponential; tiny
   computations only. *)
let definitely_brute comp phi =
  let n = Computation.n comp in
  let can_advance cut i =
    cut.(i) < Computation.num_states comp i
    && Cut.consistent comp
         (Cut.over_all comp
            (Array.mapi (fun j v -> if j = i then v + 1 else v) cut))
  in
  let final cut =
    Array.for_all2 ( = ) cut (Array.init n (fun p -> Computation.num_states comp p))
  in
  (* DFS with memoization on (cut, hit-so-far irrelevant: memo on cut
     for "exists phi-free path from cut to final"). *)
  let memo = Hashtbl.create 64 in
  let rec phi_free_path_exists cut =
    if phi (Cut.over_all comp cut) then false
    else if final cut then true
    else
      match Hashtbl.find_opt memo cut with
      | Some v -> v
      | None ->
          let v = ref false in
          for i = 0 to n - 1 do
            if (not !v) && can_advance cut i then begin
              let succ = Array.copy cut in
              succ.(i) <- succ.(i) + 1;
              if phi_free_path_exists succ then v := true
            end
          done;
          Hashtbl.replace memo (Array.copy cut) !v;
          !v
  in
  not (phi_free_path_exists (Array.make n 1))

let prop_definitely_equals_brute =
  Helpers.qtest ~count:200 "Definitely = path enumeration"
    Helpers.gen_small_comp (fun comp ->
      let spec = Spec.all comp in
      match Cooper_marzullo.definitely_wcp comp spec with
      | Error _ -> true
      | Ok (definitely, _) ->
          definitely
          = definitely_brute comp (fun cut ->
                Array.for_all
                  (fun k -> Computation.pred comp (Cut.state cut k))
                  (Array.init (Cut.width cut) Fun.id)))

let prop_definitely_implies_possibly =
  Helpers.qtest ~count:150 "Definitely implies Possibly" Helpers.gen_small_comp
    (fun comp ->
      let spec = Spec.all comp in
      match
        (Cooper_marzullo.definitely_wcp comp spec, Oracle.first_cut comp spec)
      with
      | Ok (true, _), Detection.No_detection -> false
      | _ -> true)

let test_definitely_extremes () =
  let always = Helpers.build_comp (3, 4, 100, 50, 5) in
  (match Cooper_marzullo.definitely_wcp always (Spec.all always) with
  | Ok (true, _) -> ()
  | _ -> Alcotest.fail "always-true predicate is definitely detected");
  let never = Helpers.build_comp (3, 4, 0, 50, 5) in
  match Cooper_marzullo.definitely_wcp never (Spec.all never) with
  | Ok (false, _) -> ()
  | _ -> Alcotest.fail "never-true predicate is definitely not detected"

let test_possibly_but_not_definitely () =
  (* Two independent processes, predicate true only in state 2 of each:
     the cut (2,2) exists (Possibly) but the observation that runs P0
     to completion before starting P1 never sees both at state 2
     simultaneously... with 2 states each: states (1),(2): P0's pred
     state 2 stays true to the end, so any path eventually has both at
     2 — that IS definite. Add a third state so the predicate window
     closes again. *)
  let ops = [| [ Computation.Send { dst = 1; msg = 0 };
                 Computation.Send { dst = 1; msg = 1 } ];
               [ Computation.Recv { msg = 0 };
                 Computation.Recv { msg = 1 } ] |] in
  let pred = [| [| false; true; false |]; [| false; true; false |] |] in
  let comp = Computation.of_raw ~ops ~pred in
  let spec = Spec.all comp in
  (match Oracle.first_cut comp spec with
  | Detection.Detected _ -> ()
  | Detection.No_detection | Detection.Undetectable_crashed _ ->
      Alcotest.fail "should be possible");
  match Cooper_marzullo.definitely_wcp comp spec with
  | Ok (false, _) -> ()
  | Ok (true, _) -> Alcotest.fail "an observation can dodge the window"
  | Error _ -> Alcotest.fail "limit"

let test_definitely_chain () =
  (* A totally ordered run (lattice is a path): Possibly = Definitely. *)
  let b = Builder.create ~n:2 in
  let m1 = Builder.send b ~src:0 ~dst:1 in
  Builder.recv b ~dst:1 m1;
  Builder.set_pred b ~proc:1 true;
  let m2 = Builder.send b ~src:1 ~dst:0 in
  Builder.recv b ~dst:0 m2;
  Builder.set_pred b ~proc:0 true;
  let comp = Builder.finish b in
  (* WCP over process 1 only: pred true in its state 2 onwards? It was
     set only for state 2. Possibly holds; on this (almost) sequential
     run the dodging paths still exist for 2-wide specs, so use the
     1-wide spec where Possibly = Definitely trivially on chains. *)
  let spec = Spec.make comp [| 1 |] in
  match (Oracle.first_cut comp spec, Cooper_marzullo.definitely_wcp comp spec) with
  | Detection.Detected _, Ok (true, _) -> ()
  | Detection.No_detection, Ok (false, _) -> ()
  | _ -> Alcotest.fail "1-process predicate: possibly = definitely"

let test_spec_validation () =
  let c = tiny_detectable () in
  let bad procs =
    match Spec.make c procs with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected rejection"
  in
  bad [||];
  bad [| 0; 0 |];
  bad [| 1; 0 |];
  bad [| 5 |];
  let spec = Spec.make c [| 1 |] in
  Alcotest.(check int) "width" 1 (Spec.width spec);
  Alcotest.(check bool) "mem" true (Spec.mem spec 1);
  Alcotest.(check bool) "not mem" false (Spec.mem spec 0);
  Alcotest.(check int) "index_of" 0 (Spec.index_of spec 1);
  (match Spec.index_of spec 0 with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "index_of non-member should raise");
  let v = Computation.vc c (st 1 2) in
  Alcotest.(check (array int)) "project" [| 2 |] (Spec.project spec v)

let () =
  Alcotest.run "oracle"
    [
      ( "oracle",
        [
          Alcotest.test_case "detects" `Quick test_oracle_detects;
          Alcotest.test_case "rejects" `Quick test_oracle_rejects;
          Alcotest.test_case "no candidates" `Quick test_oracle_no_candidates;
          Alcotest.test_case "single process" `Quick test_oracle_single_process;
          Alcotest.test_case "subset spec" `Quick test_oracle_subset_spec;
          prop_oracle_equals_brute;
          prop_oracle_equals_brute_subset;
          prop_first_cut_satisfies;
          prop_first_cut_minimal;
        ] );
      ("lemma-4.1", [ prop_lemma_4_1 ]);
      ( "cooper-marzullo",
        [
          Alcotest.test_case "example" `Quick test_cm_example;
          Alcotest.test_case "limit" `Quick test_cm_limit;
          prop_cm_equals_oracle;
          prop_cm_subset_projects;
          Alcotest.test_case "general predicate" `Quick
            test_cm_general_predicate;
        ] );
      ( "definitely",
        [
          prop_definitely_equals_brute;
          prop_definitely_implies_possibly;
          Alcotest.test_case "extremes" `Quick test_definitely_extremes;
          Alcotest.test_case "possibly but not definitely" `Quick
            test_possibly_but_not_definitely;
          Alcotest.test_case "single-process chain" `Quick
            test_definitely_chain;
        ] );
      ("spec", [ Alcotest.test_case "validation" `Quick test_spec_validation ]);
    ]
