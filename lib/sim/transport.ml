type 'msg frame =
  | Data of { seq : int; payload : 'msg }
  | Ack of { cum : int; era : int }
  | Reconnect of { expected : int; era : int }

let frame_overhead_bits = 32

(* Sender side of one (src, dst) flow. [base .. next_seq - 1] are the
   in-flight (unacked) sequence numbers; [buf] keeps their payloads for
   retransmission. A single timer chain per flow watches the oldest
   in-flight frame (the cumulative-ack cursor): engine timers cannot be
   cancelled, so a fired timer that finds its deadline pushed forward —
   an ack arrived meanwhile — re-arms itself instead of retransmitting. *)
type 'msg tx = {
  dst : int;
  mutable next_seq : int;
  mutable base : int;
  buf : (int, 'msg * int) Hashtbl.t;  (* seq -> payload, bits *)
  mutable armed : bool;
  mutable deadline : float;
  mutable retries : int;
  mutable cur_rto : float;
  (* Receiver incarnation this sender believes in. Acks stamped with an
     older era are ignored: they were emitted by a receiver state that a
     restart has since discarded, so trusting their [cum] could advance
     [base] past frames the restored receiver still needs. Stays 0 in
     runs without restarts, so the zero-fault stream is unchanged. *)
  mutable era : int;
}

(* Receiver side of one (src, dst) flow. *)
type 'msg rx = {
  mutable expected : int;
  pending : (int, 'msg) Hashtbl.t;  (* out-of-order buffer *)
  mutable era : int;  (* incremented on each restore from checkpoint *)
}

type 'msg t = {
  engine : 'msg Engine.t;
  rto : float;
  backoff : float;
  max_retries : int;
  max_unacked : int;
  (* In recovery mode acked frames are retained in [buf] (they never
     count against [max_unacked]) so a reconnect can replay history a
     restarted receiver rolled back past its acked frontier. *)
  recovery : bool;
  inject : 'msg frame -> 'msg;
  project : 'msg -> 'msg frame option;
  on_unreachable : 'msg Engine.ctx -> dst:int -> unit;
  txs : (int * int, 'msg tx) Hashtbl.t;
  rxs : (int * int, 'msg rx) Hashtbl.t;
  mutable dead : int list;
}

let create ?(rto = 4.0) ?(backoff = 2.0) ?(max_retries = 12)
    ?(max_unacked = 4096) ?(recovery = false) ~inject ~project
    ?(on_unreachable = fun _ ~dst:_ -> ()) engine =
  if not (Float.is_finite rto) || rto <= 0.0 then
    invalid_arg "Transport.create: rto must be positive";
  if not (Float.is_finite backoff) || backoff < 1.0 then
    invalid_arg "Transport.create: backoff must be >= 1";
  if max_retries < 1 then
    invalid_arg "Transport.create: max_retries must be >= 1";
  if max_unacked < 1 then
    invalid_arg "Transport.create: max_unacked must be >= 1";
  {
    engine;
    rto;
    backoff;
    max_retries;
    max_unacked;
    recovery;
    inject;
    project;
    on_unreachable;
    txs = Hashtbl.create 16;
    rxs = Hashtbl.create 16;
    dead = [];
  }

let unreachable t = t.dead

let is_dead t dst = List.mem dst t.dead

let tx_flow t ~src ~dst =
  let key = (src, dst) in
  match Hashtbl.find_opt t.txs key with
  | Some f -> f
  | None ->
      let f =
        {
          dst;
          next_seq = 1;
          base = 1;
          buf = Hashtbl.create 8;
          armed = false;
          deadline = 0.0;
          retries = 0;
          cur_rto = t.rto;
          era = 0;
        }
      in
      Hashtbl.add t.txs key f;
      f

let rx_flow t ~src ~dst =
  let key = (src, dst) in
  match Hashtbl.find_opt t.rxs key with
  | Some f -> f
  | None ->
      let f = { expected = 1; pending = Hashtbl.create 8; era = 0 } in
      Hashtbl.add t.rxs key f;
      f

let transmit t ctx flow seq =
  let payload, bits = Hashtbl.find flow.buf seq in
  Engine.send ctx
    ~bits:(bits + frame_overhead_bits)
    ~dst:flow.dst
    (t.inject (Data { seq; payload }))

let rec tick t flow ctx =
  if flow.base >= flow.next_seq || is_dead t flow.dst then
    flow.armed <- false
  else
    let now = Engine.time ctx in
    if now +. 1e-9 < flow.deadline then
      (* Progress was made since this timer was armed; wait out the
         refreshed deadline. *)
      Engine.schedule ctx ~delay:(flow.deadline -. now) (tick t flow)
    else begin
      flow.retries <- flow.retries + 1;
      if flow.retries > t.max_retries then begin
        flow.armed <- false;
        t.dead <- List.sort_uniq compare (flow.dst :: t.dead);
        t.on_unreachable ctx ~dst:flow.dst
      end
      else begin
        Stats.retransmit (Engine.stats t.engine) ~proc:(Engine.self ctx);
        (match Engine.recorder t.engine with
        | None -> ()
        | Some r ->
            Wcp_obs.Recorder.emit r ~time:now ~proc:(Engine.self ctx)
              (Wcp_obs.Event.Retransmitted
                 { dst = flow.dst; frame_seq = flow.base }));
        transmit t ctx flow flow.base;
        flow.cur_rto <- flow.cur_rto *. t.backoff;
        flow.deadline <- now +. flow.cur_rto;
        Engine.schedule ctx ~delay:flow.cur_rto (tick t flow)
      end
    end

let arm t flow ctx =
  if not flow.armed then begin
    flow.armed <- true;
    flow.retries <- 0;
    flow.cur_rto <- t.rto;
    flow.deadline <- Engine.time ctx +. t.rto;
    Engine.schedule ctx ~delay:t.rto (tick t flow)
  end

let send t ctx ?(bits = 32) ~dst payload =
  if is_dead t dst then ()
  else begin
    let flow = tx_flow t ~src:(Engine.self ctx) ~dst in
    let seq = flow.next_seq in
    flow.next_seq <- seq + 1;
    Hashtbl.add flow.buf seq (payload, bits);
    (* Unacked depth, not buffer size: recovery-mode history retention
       must never trip the cap a slow receiver would. *)
    let depth = flow.next_seq - flow.base in
    Stats.note_retx_buf (Engine.stats t.engine) depth;
    if depth > t.max_unacked then
      failwith
        (Printf.sprintf
           "Transport.send: %d unacked frames %d -> %d exceed max_unacked=%d \
            (peer down or cap too small; raise ?max_unacked or fix the peer)"
           depth (Engine.self ctx) dst t.max_unacked);
    transmit t ctx flow seq;
    arm t flow ctx
  end

let retain_acked t = t.recovery

let handle_ack t ctx ~src ~cum ~era =
  match Hashtbl.find_opt t.txs (Engine.self ctx, src) with
  | None -> ()
  | Some flow ->
      if era >= flow.era && cum >= flow.base then begin
        if not (retain_acked t) then
          for seq = flow.base to cum do
            Hashtbl.remove flow.buf seq
          done;
        flow.base <- cum + 1;
        flow.retries <- 0;
        flow.cur_rto <- t.rto;
        flow.deadline <- Engine.time ctx +. t.rto
      end

(* Reconnect handshake, sender side: adopt the receiver's new era, roll
   the ack cursor back to what the restored receiver expects, and
   replay every buffered frame from there so in-order exactly-once
   delivery resumes without waiting out a retransmission timeout. *)
let handle_reconnect t ctx ~src ~expected ~era =
  let flow = tx_flow t ~src:(Engine.self ctx) ~dst:src in
  if era >= flow.era then begin
    flow.era <- era;
    if expected < flow.base then flow.base <- expected;
    let count = ref 0 in
    for seq = expected to flow.next_seq - 1 do
      if Hashtbl.mem flow.buf seq then begin
        incr count;
        transmit t ctx flow seq
      end
    done;
    if !count > 0 then begin
      Stats.note_replayed (Engine.stats t.engine) !count;
      match Engine.recorder t.engine with
      | None -> ()
      | Some r ->
          Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
            ~proc:(Engine.self ctx)
            (Wcp_obs.Event.Replayed
               { dst = src; from_seq = expected; count = !count })
    end;
    flow.retries <- 0;
    flow.cur_rto <- t.rto;
    flow.deadline <- Engine.time ctx +. t.rto;
    arm t flow ctx
  end

let handle_data t ctx ~src ~seq payload deliver =
  let self = Engine.self ctx in
  let flow = rx_flow t ~src ~dst:self in
  if seq < flow.expected || Hashtbl.mem flow.pending seq then
    Stats.dup_suppressed (Engine.stats t.engine) ~proc:self
  else Hashtbl.replace flow.pending seq payload;
  while Hashtbl.mem flow.pending flow.expected do
    let p = Hashtbl.find flow.pending flow.expected in
    Hashtbl.remove flow.pending flow.expected;
    flow.expected <- flow.expected + 1;
    deliver ctx ~src p
  done;
  (* Cumulative ack; acks themselves ride the raw network — they are
     idempotent and any retransmitted frame will provoke another one.
     The era stamp rides the header word, so ack size is unchanged. *)
  Engine.send ctx ~bits:frame_overhead_bits ~dst:src
    (t.inject (Ack { cum = flow.expected - 1; era = flow.era }))

let wire t proc handler =
  Engine.set_handler t.engine proc (fun ctx ~src msg ->
      match t.project msg with
      | None -> handler ctx ~src msg
      | Some (Data { seq; payload }) -> handle_data t ctx ~src ~seq payload handler
      | Some (Ack { cum; era }) -> handle_ack t ctx ~src ~cum ~era
      | Some (Reconnect { expected; era }) ->
          handle_reconnect t ctx ~src ~expected ~era)

(* ------------------------------------------------------------------ *)
(* Checkpoint support: export / restore / reconnect                    *)
(* ------------------------------------------------------------------ *)

type 'msg tx_state = {
  tx_dst : int;
  tx_next_seq : int;
  tx_base : int;
  tx_frames : (int * 'msg * int) list;  (* seq, payload, bits *)
  tx_era : int;
}

type rx_state = { rx_src : int; rx_expected : int; rx_era : int }

type 'msg state = { st_txs : 'msg tx_state list; st_rxs : rx_state list }

let sort_by_fst l = List.sort (fun (a, _, _) (b, _, _) -> compare a b) l

let export_state t ~proc =
  let st_txs =
    Hashtbl.fold
      (fun (src, _) flow acc ->
        if src <> proc then acc
        else
          {
            tx_dst = flow.dst;
            tx_next_seq = flow.next_seq;
            tx_base = flow.base;
            tx_frames =
              sort_by_fst
                (Hashtbl.fold
                   (fun seq (payload, bits) l -> (seq, payload, bits) :: l)
                   flow.buf []);
            tx_era = flow.era;
          }
          :: acc)
      t.txs []
    |> List.sort (fun a b -> compare a.tx_dst b.tx_dst)
  in
  let st_rxs =
    Hashtbl.fold
      (fun (src, dst) flow acc ->
        if dst <> proc then acc
        else
          { rx_src = src; rx_expected = flow.expected; rx_era = flow.era }
          :: acc)
      t.rxs []
    |> List.sort (fun a b -> compare a.rx_src b.rx_src)
  in
  { st_txs; st_rxs }

(* Restore mutates flow records IN PLACE: deferred engine timers from
   before the crash hold references to the records, so swapping fresh
   records into the hashtables would detach those timer chains. Flows
   the checkpoint does not mention are reset to their initial state
   (they did not exist when the checkpoint was captured). *)
let restore_state t ~proc (st : 'msg state) =
  let restore_tx s =
    let f = tx_flow t ~src:proc ~dst:s.tx_dst in
    f.next_seq <- s.tx_next_seq;
    f.base <- s.tx_base;
    Hashtbl.reset f.buf;
    List.iter
      (fun (seq, payload, bits) -> Hashtbl.replace f.buf seq (payload, bits))
      s.tx_frames;
    f.retries <- 0;
    f.cur_rto <- t.rto;
    (* The live record may already know a newer receiver incarnation
       (the peer restarted after this checkpoint was captured). *)
    f.era <- max f.era s.tx_era
  in
  List.iter restore_tx st.st_txs;
  Hashtbl.iter
    (fun (src, _) flow ->
      if src = proc && not (List.exists (fun s -> s.tx_dst = flow.dst) st.st_txs)
      then begin
        flow.next_seq <- 1;
        flow.base <- 1;
        Hashtbl.reset flow.buf;
        flow.retries <- 0;
        flow.cur_rto <- t.rto
      end)
    t.txs;
  let restore_rx s =
    let f = rx_flow t ~src:s.rx_src ~dst:proc in
    f.expected <- s.rx_expected;
    Hashtbl.reset f.pending;
    (* New incarnation: stale acks from the old one must not advance
       the sender's cursor past frames this state still needs. *)
    f.era <- s.rx_era + 1
  in
  List.iter restore_rx st.st_rxs;
  Hashtbl.iter
    (fun (src, dst) flow ->
      if dst = proc && not (List.exists (fun s -> s.rx_src = src) st.st_rxs)
      then begin
        flow.expected <- 1;
        Hashtbl.reset flow.pending;
        flow.era <- flow.era + 1
      end)
    t.rxs

(* Reconnect handshake, receiver side: one raw-network announcement per
   incoming flow, retried with backoff until the flow makes progress or
   the attempts run out. Exhaustion is not a death sentence — the
   sender's own retransmission timer is the liveness backstop — so the
   loop just stops. *)
let reconnect t ctx ~proc =
  let flows =
    Hashtbl.fold
      (fun (src, dst) flow acc -> if dst = proc then (src, flow) :: acc else acc)
      t.rxs []
    |> List.sort compare
  in
  List.iter
    (fun (peer, flow) ->
      let rec attempt n last_expected ctx =
        if flow.expected = last_expected && n <= t.max_retries then begin
          (match Engine.recorder t.engine with
          | None -> ()
          | Some r ->
              Wcp_obs.Recorder.emit r ~time:(Engine.time ctx) ~proc
                (Wcp_obs.Event.Resync_requested
                   { peer; expected = flow.expected }));
          Engine.send ctx ~bits:frame_overhead_bits ~dst:peer
            (t.inject (Reconnect { expected = flow.expected; era = flow.era }));
          Engine.schedule ctx
            ~delay:(t.rto *. (t.backoff ** float_of_int (n - 1)))
            (attempt (n + 1) flow.expected)
        end
      in
      attempt 1 flow.expected ctx)
    flows
