type 'msg frame = Data of { seq : int; payload : 'msg } | Ack of { cum : int }

let frame_overhead_bits = 32

(* Sender side of one (src, dst) flow. [base .. next_seq - 1] are the
   in-flight (unacked) sequence numbers; [buf] keeps their payloads for
   retransmission. A single timer chain per flow watches the oldest
   in-flight frame (the cumulative-ack cursor): engine timers cannot be
   cancelled, so a fired timer that finds its deadline pushed forward —
   an ack arrived meanwhile — re-arms itself instead of retransmitting. *)
type 'msg tx = {
  dst : int;
  mutable next_seq : int;
  mutable base : int;
  buf : (int, 'msg * int) Hashtbl.t;  (* seq -> payload, bits *)
  mutable armed : bool;
  mutable deadline : float;
  mutable retries : int;
  mutable cur_rto : float;
}

(* Receiver side of one (src, dst) flow. *)
type 'msg rx = {
  mutable expected : int;
  pending : (int, 'msg) Hashtbl.t;  (* out-of-order buffer *)
}

type 'msg t = {
  engine : 'msg Engine.t;
  rto : float;
  backoff : float;
  max_retries : int;
  inject : 'msg frame -> 'msg;
  project : 'msg -> 'msg frame option;
  on_unreachable : 'msg Engine.ctx -> dst:int -> unit;
  txs : (int * int, 'msg tx) Hashtbl.t;
  rxs : (int * int, 'msg rx) Hashtbl.t;
  mutable dead : int list;
}

let create ?(rto = 4.0) ?(backoff = 2.0) ?(max_retries = 12) ~inject ~project
    ?(on_unreachable = fun _ ~dst:_ -> ()) engine =
  if not (Float.is_finite rto) || rto <= 0.0 then
    invalid_arg "Transport.create: rto must be positive";
  if not (Float.is_finite backoff) || backoff < 1.0 then
    invalid_arg "Transport.create: backoff must be >= 1";
  if max_retries < 1 then
    invalid_arg "Transport.create: max_retries must be >= 1";
  {
    engine;
    rto;
    backoff;
    max_retries;
    inject;
    project;
    on_unreachable;
    txs = Hashtbl.create 16;
    rxs = Hashtbl.create 16;
    dead = [];
  }

let unreachable t = t.dead

let is_dead t dst = List.mem dst t.dead

let tx_flow t ~src ~dst =
  let key = (src, dst) in
  match Hashtbl.find_opt t.txs key with
  | Some f -> f
  | None ->
      let f =
        {
          dst;
          next_seq = 1;
          base = 1;
          buf = Hashtbl.create 8;
          armed = false;
          deadline = 0.0;
          retries = 0;
          cur_rto = t.rto;
        }
      in
      Hashtbl.add t.txs key f;
      f

let rx_flow t ~src ~dst =
  let key = (src, dst) in
  match Hashtbl.find_opt t.rxs key with
  | Some f -> f
  | None ->
      let f = { expected = 1; pending = Hashtbl.create 8 } in
      Hashtbl.add t.rxs key f;
      f

let transmit t ctx flow seq =
  let payload, bits = Hashtbl.find flow.buf seq in
  Engine.send ctx
    ~bits:(bits + frame_overhead_bits)
    ~dst:flow.dst
    (t.inject (Data { seq; payload }))

let rec tick t flow ctx =
  if flow.base >= flow.next_seq || is_dead t flow.dst then
    flow.armed <- false
  else
    let now = Engine.time ctx in
    if now +. 1e-9 < flow.deadline then
      (* Progress was made since this timer was armed; wait out the
         refreshed deadline. *)
      Engine.schedule ctx ~delay:(flow.deadline -. now) (tick t flow)
    else begin
      flow.retries <- flow.retries + 1;
      if flow.retries > t.max_retries then begin
        flow.armed <- false;
        t.dead <- List.sort_uniq compare (flow.dst :: t.dead);
        t.on_unreachable ctx ~dst:flow.dst
      end
      else begin
        Stats.retransmit (Engine.stats t.engine) ~proc:(Engine.self ctx);
        (match Engine.recorder t.engine with
        | None -> ()
        | Some r ->
            Wcp_obs.Recorder.emit r ~time:now ~proc:(Engine.self ctx)
              (Wcp_obs.Event.Retransmitted
                 { dst = flow.dst; frame_seq = flow.base }));
        transmit t ctx flow flow.base;
        flow.cur_rto <- flow.cur_rto *. t.backoff;
        flow.deadline <- now +. flow.cur_rto;
        Engine.schedule ctx ~delay:flow.cur_rto (tick t flow)
      end
    end

let arm t flow ctx =
  if not flow.armed then begin
    flow.armed <- true;
    flow.retries <- 0;
    flow.cur_rto <- t.rto;
    flow.deadline <- Engine.time ctx +. t.rto;
    Engine.schedule ctx ~delay:t.rto (tick t flow)
  end

let send t ctx ?(bits = 32) ~dst payload =
  if is_dead t dst then ()
  else begin
    let flow = tx_flow t ~src:(Engine.self ctx) ~dst in
    let seq = flow.next_seq in
    flow.next_seq <- seq + 1;
    Hashtbl.add flow.buf seq (payload, bits);
    transmit t ctx flow seq;
    arm t flow ctx
  end

let handle_ack t ctx ~src cum =
  match Hashtbl.find_opt t.txs (Engine.self ctx, src) with
  | None -> ()
  | Some flow ->
      if cum >= flow.base then begin
        for seq = flow.base to cum do
          Hashtbl.remove flow.buf seq
        done;
        flow.base <- cum + 1;
        flow.retries <- 0;
        flow.cur_rto <- t.rto;
        flow.deadline <- Engine.time ctx +. t.rto
      end

let handle_data t ctx ~src ~seq payload deliver =
  let self = Engine.self ctx in
  let flow = rx_flow t ~src ~dst:self in
  if seq < flow.expected || Hashtbl.mem flow.pending seq then
    Stats.dup_suppressed (Engine.stats t.engine) ~proc:self
  else Hashtbl.replace flow.pending seq payload;
  while Hashtbl.mem flow.pending flow.expected do
    let p = Hashtbl.find flow.pending flow.expected in
    Hashtbl.remove flow.pending flow.expected;
    flow.expected <- flow.expected + 1;
    deliver ctx ~src p
  done;
  (* Cumulative ack; acks themselves ride the raw network — they are
     idempotent and any retransmitted frame will provoke another one. *)
  Engine.send ctx ~bits:frame_overhead_bits ~dst:src
    (t.inject (Ack { cum = flow.expected - 1 }))

let wire t proc handler =
  Engine.set_handler t.engine proc (fun ctx ~src msg ->
      match t.project msg with
      | None -> handler ctx ~src msg
      | Some (Data { seq; payload }) -> handle_data t ctx ~src ~seq payload handler
      | Some (Ack { cum }) -> handle_ack t ctx ~src cum)
