(** Network model for the discrete-event engine.

    The paper assumes reliable asynchronous channels with no FIFO
    guarantee (§2), except that the application-to-monitor snapshot
    channel must be FIFO (§3.1). The model therefore supports a
    per-link FIFO predicate: on FIFO links delivery times are clamped
    to be non-decreasing; on other links independent latency samples
    may reorder messages freely.

    Latency distributions are sampled from the engine's deterministic
    PRNG, so a given seed fully determines every delivery schedule. *)

open Wcp_util

type latency =
  | Constant of float
  | Uniform of float * float  (** inclusive lower, exclusive upper *)
  | Exponential of float  (** mean *)

type t

val create :
  ?fifo:(src:int -> dst:int -> bool) -> latency:latency -> unit -> t
(** [fifo] defaults to [fun ~src:_ ~dst:_ -> false] (no link is
    FIFO).

    The latency description is validated eagerly: bounds must be
    finite and non-negative, [Uniform (lo, hi)] needs [lo <= hi], and
    [Exponential mean] needs [mean > 0].
    @raise Invalid_argument on a bad description. *)

val uniform_default : t
(** Non-FIFO, [Uniform (0.5, 1.5)] — a reasonable generic network. *)

val delivery_time : t -> Rng.t -> src:int -> dst:int -> now:float -> float
(** Absolute delivery time for a message handed to the network at
    [now]. Monotone per link when the link is FIFO. *)
