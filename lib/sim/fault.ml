open Wcp_util

type kind = Crash | Stall | Restart

type window = {
  proc : int;
  from_t : float;
  until_t : float option;
  kind : kind;
}

type link = { drop : float; dup : float; spike_p : float; spike_mean : float }

let check_prob name p =
  if Float.is_nan p || p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Fault.link: %s=%g not in [0,1]" name p)

let link ?(drop = 0.0) ?(dup = 0.0) ?(spike_p = 0.0) ?(spike_mean = 0.0) () =
  check_prob "drop" drop;
  check_prob "dup" dup;
  check_prob "spike_p" spike_p;
  if Float.is_nan spike_mean || spike_mean < 0.0
     || not (Float.is_finite spike_mean)
  then
    invalid_arg
      (Printf.sprintf "Fault.link: spike_mean=%g not finite non-negative"
         spike_mean);
  { drop; dup; spike_p; spike_mean }

let window ?until_t ~kind ~proc ~from_t () =
  if proc < 0 then invalid_arg "Fault.window: negative proc";
  if Float.is_nan from_t || from_t < 0.0 then
    invalid_arg (Printf.sprintf "Fault.window: from_t=%g invalid" from_t);
  (match until_t with
  | None ->
      if kind = Restart then
        invalid_arg "Fault.window: Restart requires until_t (the recovery time)"
  | Some u ->
      if Float.is_nan u || u <= from_t then
        invalid_arg
          (Printf.sprintf "Fault.window: until_t=%g must exceed from_t=%g" u
             from_t));
  { proc; from_t; until_t; kind }

type plan = {
  seed : int64;
  links : (src:int -> dst:int -> link) option;
  windows : window array;
}

let none = { seed = 0L; links = None; windows = [||] }

let make ?(seed = 0L) ?links ?(windows = []) () =
  { seed; links; windows = Array.of_list windows }

let uniform ?(seed = 0L) ?drop ?dup ?spike_p ?spike_mean ?windows () =
  let l = link ?drop ?dup ?spike_p ?spike_mean () in
  if l.drop = 0.0 && l.dup = 0.0 && l.spike_p = 0.0 then make ~seed ?windows ()
  else make ~seed ~links:(fun ~src:_ ~dst:_ -> l) ?windows ()

let is_none p = p.links = None && Array.length p.windows = 0

let seed p = p.seed

let restarts p =
  Array.to_list p.windows |> List.filter (fun w -> w.kind = Restart)

let has_restarts p = Array.exists (fun w -> w.kind = Restart) p.windows

let permanently_crashed p =
  Array.to_list p.windows
  |> List.filter_map (fun w -> if w.until_t = None then Some w.proc else None)
  |> List.sort_uniq compare

type t = { plan : plan; rng : Rng.t }

let start plan = { plan; rng = Rng.create plan.seed }

let plan t = t.plan

let active t = not (is_none t.plan)

type fate = Pass of { extra : float; dup_extra : float option } | Drop

let no_fault_pass = Pass { extra = 0.0; dup_extra = None }

let fate t ~src ~dst =
  match t.plan.links with
  | None -> no_fault_pass
  | Some links ->
      let l = links ~src ~dst in
      if l.drop > 0.0 && Rng.bernoulli t.rng l.drop then Drop
      else
        let extra =
          if l.spike_p > 0.0 && Rng.bernoulli t.rng l.spike_p then
            Rng.exponential t.rng ~mean:l.spike_mean
          else 0.0
        in
        let dup_extra =
          if l.dup > 0.0 && Rng.bernoulli t.rng l.dup then
            (* The duplicate trails the original by its own exponential
               gap (mean 1.0 time units) so it exercises reordering, not
               just same-instant redelivery. *)
            Some (extra +. Rng.exponential t.rng ~mean:1.0)
          else None
        in
        if extra = 0.0 && dup_extra = None then no_fault_pass
        else Pass { extra; dup_extra }

type crash_fate = Up | Lost | Deferred of float

let crash_fate t ~proc ~now ~timer =
  (* Windows are few (a handful per plan); a linear scan per dispatch
     is cheaper than any index. First containing window wins. *)
  let ws = t.plan.windows in
  let n = Array.length ws in
  let rec find i =
    if i >= n then Up
    else
      let w = ws.(i) in
      let inside =
        w.proc = proc && now >= w.from_t
        && match w.until_t with None -> true | Some u -> now < u
      in
      if not inside then find (i + 1)
      else
        match (w.kind, w.until_t) with
        | _, None -> Lost
        | Crash, Some u -> if timer then Deferred u else Lost
        | Stall, Some u -> Deferred u
        (* Restart loses messages exactly like Crash; the difference is
           that at [u] the detector rebuilds the process from its last
           checkpoint instead of trusting surviving in-memory state. *)
        | Restart, Some u -> if timer then Deferred u else Lost
  in
  find 0
