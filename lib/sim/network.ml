open Wcp_util

type latency = Constant of float | Uniform of float * float | Exponential of float

type t = {
  fifo : src:int -> dst:int -> bool;
  latency : latency;
  (* Last scheduled delivery per (src, dst); used to clamp FIFO links. *)
  last : (int * int, float) Hashtbl.t;
}

let bad fmt = Printf.ksprintf invalid_arg ("Network.create: " ^^ fmt)

let finite_nonneg what x =
  if Float.is_nan x || not (Float.is_finite x) || x < 0.0 then
    bad "%s %g must be finite and non-negative" what x

let validate = function
  | Constant d -> finite_nonneg "Constant delay" d
  | Uniform (lo, hi) ->
      finite_nonneg "Uniform lower bound" lo;
      finite_nonneg "Uniform upper bound" hi;
      if lo > hi then bad "Uniform bounds inverted (%g > %g)" lo hi
  | Exponential mean ->
      if Float.is_nan mean || not (Float.is_finite mean) || mean <= 0.0 then
        bad "Exponential mean %g must be finite and positive" mean

let create ?(fifo = fun ~src:_ ~dst:_ -> false) ~latency () =
  validate latency;
  { fifo; latency; last = Hashtbl.create 64 }

let uniform_default = create ~latency:(Uniform (0.5, 1.5)) ()

let sample t rng =
  match t.latency with
  | Constant d -> d
  | Uniform (lo, hi) -> lo +. Rng.float rng (hi -. lo)
  | Exponential mean -> Rng.exponential rng ~mean

let delivery_time t rng ~src ~dst ~now =
  let raw = now +. sample t rng in
  if t.fifo ~src ~dst then begin
    let key = (src, dst) in
    let prev = Option.value ~default:neg_infinity (Hashtbl.find_opt t.last key) in
    let at = if raw < prev then prev else raw in
    Hashtbl.replace t.last key at;
    at
  end
  else raw
