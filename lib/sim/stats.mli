(** Per-process cost accounting.

    The paper's complexity claims (§3.4, §4.4) are stated in terms of
    messages sent, bits communicated, computation steps ("work") and
    buffer space, each both in total and per process. Every detection
    algorithm in [wcp.core] charges its costs here so the benchmark
    harness can compare measured values against the analytical bounds.

    Units:
    - messages: count;
    - bits: as charged by the caller (the harness charges 32-bit words
      per the accounting policy in DESIGN.md §3);
    - work: abstract constant-time steps (vector-clock component
      comparisons, candidate examinations, dependence processing);
    - space: words; tracked as a high-water mark per process. *)

type t

val create : n:int -> t
(** [n] independently tracked processes (application and monitor costs
    are charged to the same index; the harness separates them by using
    distinct stats instances where needed). *)

val n : t -> int

val msg_sent : t -> proc:int -> bits:int -> unit
(** Charge one message of the given size to [proc]. *)

val msg_received : t -> proc:int -> unit

val work : t -> proc:int -> int -> unit
(** Charge computation steps. *)

val space : t -> proc:int -> int -> unit
(** Report current buffer usage in words; the high-water mark is
    kept. *)

val set_events_done : t -> int -> unit
(** Recorded by the engine at the end of a run: total simulation events
    dispatched. *)

val events_done : t -> int

(** {2 Fault / robustness counters}

    Charged by {!Transport} (retransmissions, duplicate suppression)
    and by the engine's fault-injection path ({!Fault}); all stay zero
    in fault-free runs. *)

val retransmit : t -> proc:int -> unit
(** One timeout-driven retransmission by [proc]'s transport sender. *)

val dup_suppressed : t -> proc:int -> unit
(** One duplicate frame discarded by [proc]'s transport receiver. *)

val note_net_dropped : t -> unit
(** A delivery lost by the fault plan at the network boundary. *)

val note_net_duplicated : t -> unit
(** A delivery duplicated by the fault plan. *)

val note_crash_dropped : t -> unit
(** An event lost because its target process was inside a crash
    window. *)

(** {2 Parallel-round counters}

    Filled in only by the domain-parallel checker
    ([Checker_parallel]); every other detector leaves them at zero, so
    {!pp} omits the line entirely for them. *)

val set_parallel : t -> rounds:int -> max_frontier:int -> items:int -> unit
(** [rounds]: frontier-advance rounds executed; [max_frontier]: most
    spec slots that advanced in any single round (the realized
    parallel breadth); [items]: total candidates examined across all
    rounds (the per-domain work items, summed). *)

val par_rounds : t -> int
val par_max_frontier : t -> int
val par_items : t -> int

(** {2 Crash-recovery counters}

    Charged by the checkpoint/restore layer ([Wcp_core.Checkpoint] and
    the token detectors' Restart wiring) plus {!Transport}'s reconnect
    replay; all stay zero outside [Fault.Restart] runs. The
    retransmit-buffer high-water mark is the exception: every transport
    sender maintains it, Restart or not. *)

val note_replayed : t -> int -> unit
(** [k] frames retransmitted in response to one reconnect handshake. *)

val note_checkpoint : t -> unit
(** One monitor checkpoint captured. *)

val note_restore : t -> unit
(** One monitor state rebuilt from its checkpoint. *)

val note_wd_stand_down : t -> unit
(** A watchdog gave up after [max_probes] unproductive probes. *)

val note_retx_buf : t -> int -> unit
(** Report the current depth of one sender's unacked retransmit
    buffer; the high-water mark across all senders is kept. *)

val note_queue_depth : t -> int -> unit
(** Report the engine event-queue depth after a push; the high-water
    mark is kept. Deterministic: a pure function of the schedule, so
    it is a legitimate baseline field. *)

val replayed : t -> int
val checkpoints : t -> int
val restores : t -> int
val wd_stand_downs : t -> int
val retx_buf_hwm : t -> int
val queue_hwm : t -> int
(** Deepest the engine event queue ever got (queue pressure). *)

(** {2 Per-process readings} *)

val sent : t -> int -> int
val received : t -> int -> int
val bits : t -> int -> int
val work_of : t -> int -> int
val space_high_water : t -> int -> int

(** {2 Aggregates} *)

val total_sent : t -> int
val total_bits : t -> int
val total_work : t -> int
val max_work : t -> int
(** Largest per-process work — the paper's "work performed by any
    process". *)

val max_space : t -> int

val total_retransmits : t -> int
val total_dups_suppressed : t -> int
val net_dropped : t -> int
val net_duplicated : t -> int
val crash_dropped : t -> int

val any_faults : t -> bool
(** True iff any fault counter is nonzero (i.e. fault injection or the
    reliable transport actually did something this run). *)

val merge_into : dst:t -> t -> unit
(** Add all counters of the source into [dst] (same [n] required);
    high-water marks combine by max. *)

val pp : Format.formatter -> t -> unit
(** Multi-line table of per-process counters (messages, bits, work,
    high-water space in words, retransmits, duplicates suppressed)
    plus a totals line, a parallel-rounds line when those counters are
    nonzero, a recovery line when any checkpoint/restore/replay or
    watchdog stand-down happened, and the fault/robustness aggregates
    (retransmits, dup-suppressed, net-drop, net-dup, crash-drop). *)
