(** Deterministic discrete-event simulation engine.

    Processes are numbered [0 .. num_processes - 1] and are plain
    message handlers: the engine invokes a process's handler for each
    delivered message (and for each expired timer callback). Handlers
    react by sending messages, scheduling timers, charging costs to the
    {!Stats} instance, or halting the run.

    Determinism: events are ordered by [(time, insertion sequence)] so
    simultaneous events fire in creation order, and all randomness
    (latencies, handler decisions) is drawn from per-engine
    {!Wcp_util.Rng} state derived from the seed. Two runs with equal
    seeds and handlers are identical.

    The engine is monomorphic in a user message type ['msg] per
    instance; a protocol stack defines one variant type covering all
    its message kinds. *)

open Wcp_util

type 'msg t

type 'msg ctx
(** Handler's capability to interact with the engine. Valid only for
    the duration of the handler invocation that received it. *)

val create :
  ?network:Network.t -> ?fault:Fault.plan ->
  ?recorder:Wcp_obs.Recorder.t -> ?max_events:int ->
  num_processes:int -> seed:int64 -> unit -> 'msg t
(** [max_events] (default 50 million) guards against runaway protocols:
    the budget is checked before each dispatch, so at most [max_events]
    events ever run; attempting one more raises [Failure].

    [fault] (default none) injects deterministic chaos: link-level
    drops/duplicates/delay spikes are applied to each [send] {e after}
    the network model fixed the nominal delivery time, and crash/stall
    windows filter events at dispatch. The fault layer draws from its
    own PRNG (seeded by the plan), so passing [Fault.none] — or no plan
    — leaves runs bit-identical to an engine without the fault layer.

    [recorder] (default none) attaches a trace recorder: the engine
    emits [Sent]/[Delivered] events and protocol layers emit
    algorithm-specific events through it. Recording never touches the
    engine RNG or stats, so a traced run follows the exact event
    schedule of the untraced run with the same seed; with no recorder
    every hook is a single match on an immutable field. *)

val set_handler : 'msg t -> int -> ('msg ctx -> src:int -> 'msg -> unit) -> unit
(** Install the message handler for a process. Messages arriving for a
    process with no handler raise [Failure] naming both the source and
    destination process (a wiring bug, not a protocol condition). *)

val stats : 'msg t -> Stats.t
(** Message counts are charged automatically on [send]; work and space
    are charged by handlers via {!charge_work} and {!note_space}. *)

val recorder : 'msg t -> Wcp_obs.Recorder.t option
(** The attached trace recorder, if any. Protocol layers fetch this
    once at install time and guard each emission with a single match,
    keeping disabled tracing off the hot path. *)

val schedule_initial :
  'msg t -> proc:int -> at:float -> ('msg ctx -> unit) -> unit
(** Seed the event queue before {!run}: the callback runs as process
    [proc] at absolute time [at]. *)

val run : 'msg t -> unit
(** Process events until the queue drains or a handler calls {!stop}.
    May be called once per engine. *)

val now : 'msg t -> float
(** Simulated time after (or during) [run]. *)

val stopped : 'msg t -> bool
(** Whether a handler called {!stop}. *)

val events_processed : 'msg t -> int

(** {2 Operations available to handlers} *)

val self : 'msg ctx -> int

val time : 'msg ctx -> float

val send : 'msg ctx -> ?bits:int -> dst:int -> 'msg -> unit
(** Hand a message to the network; it will be delivered to [dst]'s
    handler at a time chosen by the network model. [bits] (default 32)
    is charged to the sender's stats. *)

val schedule : 'msg ctx -> delay:float -> ('msg ctx -> unit) -> unit
(** Run a callback at [time ctx +. delay]. *)

val charge_work : 'msg ctx -> int -> unit
(** Charge work units to the invoking process. *)

val note_space : 'msg ctx -> int -> unit
(** Report the invoking process's current buffer usage (words). *)

val rng : 'msg ctx -> Rng.t
(** The engine's PRNG (shared; use for handler-level randomness). *)

val recorder_of : 'msg ctx -> Wcp_obs.Recorder.t option
(** [recorder (engine of ctx)], for handlers that only hold a ctx. *)

val stats_of : 'msg ctx -> Stats.t
(** [stats (engine of ctx)], for handlers that only hold a ctx. *)

val stop : 'msg ctx -> unit
(** Halt the simulation after the current handler returns. *)
