type t = {
  sent : int array;
  received : int array;
  bits : int array;
  work : int array;
  space_hw : int array;
  mutable events_done : int;
}

let create ~n =
  {
    sent = Array.make n 0;
    received = Array.make n 0;
    bits = Array.make n 0;
    work = Array.make n 0;
    space_hw = Array.make n 0;
    events_done = 0;
  }

let n t = Array.length t.sent

let msg_sent t ~proc ~bits =
  t.sent.(proc) <- t.sent.(proc) + 1;
  t.bits.(proc) <- t.bits.(proc) + bits

let msg_received t ~proc = t.received.(proc) <- t.received.(proc) + 1

let work t ~proc units = t.work.(proc) <- t.work.(proc) + units

let space t ~proc words =
  if words > t.space_hw.(proc) then t.space_hw.(proc) <- words

let set_events_done t k = t.events_done <- k

let events_done t = t.events_done

let sent t i = t.sent.(i)
let received t i = t.received.(i)
let bits t i = t.bits.(i)
let work_of t i = t.work.(i)
let space_high_water t i = t.space_hw.(i)

let sum = Array.fold_left ( + ) 0
let maximum a = Array.fold_left max 0 a

let total_sent t = sum t.sent
let total_bits t = sum t.bits
let total_work t = sum t.work
let max_work t = maximum t.work
let max_space t = maximum t.space_hw

let merge_into ~dst src =
  if n dst <> n src then invalid_arg "Stats.merge_into: size mismatch";
  for i = 0 to n dst - 1 do
    dst.sent.(i) <- dst.sent.(i) + src.sent.(i);
    dst.received.(i) <- dst.received.(i) + src.received.(i);
    dst.bits.(i) <- dst.bits.(i) + src.bits.(i);
    dst.work.(i) <- dst.work.(i) + src.work.(i);
    dst.space_hw.(i) <- max dst.space_hw.(i) src.space_hw.(i)
  done;
  dst.events_done <- dst.events_done + src.events_done

let pp ppf t =
  Format.fprintf ppf "proc  sent  recv      bits      work    space@.";
  for i = 0 to n t - 1 do
    Format.fprintf ppf "%4d %5d %5d %9d %9d %8d@." i t.sent.(i) t.received.(i)
      t.bits.(i) t.work.(i) t.space_hw.(i)
  done;
  Format.fprintf ppf
    "total sent=%d bits=%d work=%d max-work=%d max-space=%d events=%d"
    (total_sent t) (total_bits t) (total_work t) (max_work t) (max_space t)
    t.events_done
