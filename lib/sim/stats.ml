type t = {
  sent : int array;
  received : int array;
  bits : int array;
  work : int array;
  space_hw : int array;
  retransmits : int array;
  dups_suppressed : int array;
  mutable events_done : int;
  mutable net_dropped : int;
  mutable net_duplicated : int;
  mutable crash_dropped : int;
  (* Parallel-checker round counters: zero for every other detector. *)
  mutable par_rounds : int;
  mutable par_max_frontier : int;
  mutable par_items : int;
  (* Crash-recovery counters: zero outside Restart runs, except the
     retransmit-buffer high-water mark which every transport maintains. *)
  mutable replayed : int;
  mutable ckpts : int;
  mutable restores : int;
  mutable wd_stand_downs : int;
  mutable retx_buf_hwm : int;
  (* Engine event-queue depth high-water mark: queue pressure for the
     telemetry plane. Deterministic (a function of the schedule). *)
  mutable queue_hwm : int;
}

let create ~n =
  {
    sent = Array.make n 0;
    received = Array.make n 0;
    bits = Array.make n 0;
    work = Array.make n 0;
    space_hw = Array.make n 0;
    retransmits = Array.make n 0;
    dups_suppressed = Array.make n 0;
    events_done = 0;
    net_dropped = 0;
    net_duplicated = 0;
    crash_dropped = 0;
    par_rounds = 0;
    par_max_frontier = 0;
    par_items = 0;
    replayed = 0;
    ckpts = 0;
    restores = 0;
    wd_stand_downs = 0;
    retx_buf_hwm = 0;
    queue_hwm = 0;
  }

let n t = Array.length t.sent

let msg_sent t ~proc ~bits =
  t.sent.(proc) <- t.sent.(proc) + 1;
  t.bits.(proc) <- t.bits.(proc) + bits

let msg_received t ~proc = t.received.(proc) <- t.received.(proc) + 1

let work t ~proc units = t.work.(proc) <- t.work.(proc) + units

let space t ~proc words =
  if words > t.space_hw.(proc) then t.space_hw.(proc) <- words

let set_events_done t k = t.events_done <- k

let events_done t = t.events_done

let retransmit t ~proc = t.retransmits.(proc) <- t.retransmits.(proc) + 1

let dup_suppressed t ~proc =
  t.dups_suppressed.(proc) <- t.dups_suppressed.(proc) + 1

let note_net_dropped t = t.net_dropped <- t.net_dropped + 1

let note_net_duplicated t = t.net_duplicated <- t.net_duplicated + 1

let note_crash_dropped t = t.crash_dropped <- t.crash_dropped + 1

let set_parallel t ~rounds ~max_frontier ~items =
  t.par_rounds <- rounds;
  t.par_max_frontier <- max_frontier;
  t.par_items <- items

let par_rounds t = t.par_rounds
let par_max_frontier t = t.par_max_frontier
let par_items t = t.par_items

let note_replayed t k = t.replayed <- t.replayed + k

let note_checkpoint t = t.ckpts <- t.ckpts + 1

let note_restore t = t.restores <- t.restores + 1

let note_wd_stand_down t = t.wd_stand_downs <- t.wd_stand_downs + 1

let note_retx_buf t depth =
  if depth > t.retx_buf_hwm then t.retx_buf_hwm <- depth

let note_queue_depth t depth =
  if depth > t.queue_hwm then t.queue_hwm <- depth

let queue_hwm t = t.queue_hwm

let replayed t = t.replayed
let checkpoints t = t.ckpts
let restores t = t.restores
let wd_stand_downs t = t.wd_stand_downs
let retx_buf_hwm t = t.retx_buf_hwm

let sent t i = t.sent.(i)
let received t i = t.received.(i)
let bits t i = t.bits.(i)
let work_of t i = t.work.(i)
let space_high_water t i = t.space_hw.(i)

let sum = Array.fold_left ( + ) 0
let maximum a = Array.fold_left max 0 a

let total_sent t = sum t.sent
let total_bits t = sum t.bits
let total_work t = sum t.work
let max_work t = maximum t.work
let max_space t = maximum t.space_hw
let total_retransmits t = sum t.retransmits
let total_dups_suppressed t = sum t.dups_suppressed
let net_dropped t = t.net_dropped
let net_duplicated t = t.net_duplicated
let crash_dropped t = t.crash_dropped

let any_faults t =
  total_retransmits t > 0
  || total_dups_suppressed t > 0
  || t.net_dropped > 0 || t.net_duplicated > 0 || t.crash_dropped > 0

let merge_into ~dst src =
  if n dst <> n src then invalid_arg "Stats.merge_into: size mismatch";
  for i = 0 to n dst - 1 do
    dst.sent.(i) <- dst.sent.(i) + src.sent.(i);
    dst.received.(i) <- dst.received.(i) + src.received.(i);
    dst.bits.(i) <- dst.bits.(i) + src.bits.(i);
    dst.work.(i) <- dst.work.(i) + src.work.(i);
    dst.space_hw.(i) <- max dst.space_hw.(i) src.space_hw.(i);
    dst.retransmits.(i) <- dst.retransmits.(i) + src.retransmits.(i);
    dst.dups_suppressed.(i) <- dst.dups_suppressed.(i) + src.dups_suppressed.(i)
  done;
  dst.events_done <- dst.events_done + src.events_done;
  dst.net_dropped <- dst.net_dropped + src.net_dropped;
  dst.net_duplicated <- dst.net_duplicated + src.net_duplicated;
  dst.crash_dropped <- dst.crash_dropped + src.crash_dropped;
  dst.par_rounds <- dst.par_rounds + src.par_rounds;
  dst.par_max_frontier <- max dst.par_max_frontier src.par_max_frontier;
  dst.par_items <- dst.par_items + src.par_items;
  dst.replayed <- dst.replayed + src.replayed;
  dst.ckpts <- dst.ckpts + src.ckpts;
  dst.restores <- dst.restores + src.restores;
  dst.wd_stand_downs <- dst.wd_stand_downs + src.wd_stand_downs;
  dst.retx_buf_hwm <- max dst.retx_buf_hwm src.retx_buf_hwm;
  dst.queue_hwm <- max dst.queue_hwm src.queue_hwm

let pp ppf t =
  Format.fprintf ppf
    "proc  sent  recv      bits      work    space  retx  dupsup@.";
  for i = 0 to n t - 1 do
    Format.fprintf ppf "%4d %5d %5d %9d %9d %8d %5d %7d@." i t.sent.(i)
      t.received.(i) t.bits.(i) t.work.(i) t.space_hw.(i) t.retransmits.(i)
      t.dups_suppressed.(i)
  done;
  Format.fprintf ppf
    "total sent=%d bits=%d work=%d max-work=%d max-space=%d events=%d@."
    (total_sent t) (total_bits t) (total_work t) (max_work t) (max_space t)
    t.events_done;
  (* Keep the summary lines visually aligned: every line is a label
     followed by name=value pairs, so the parallel counters only appear
     when a parallel detector actually filled them in. *)
  if t.par_rounds > 0 then
    Format.fprintf ppf "parallel rounds=%d max-frontier=%d items=%d@."
      t.par_rounds t.par_max_frontier t.par_items;
  (* The recovery line appears only when a checkpoint/restore/replay or
     a watchdog stand-down actually happened, so fault-free (and plain
     chaos) output is unchanged. The retransmit-buffer high-water mark
     is informational and does not trigger the line by itself. *)
  if t.ckpts + t.restores + t.replayed + t.wd_stand_downs > 0 then
    Format.fprintf ppf
      "recovery ckpt=%d restore=%d replayed=%d wd-stand-down=%d \
       retx-buf-hwm=%d@."
      t.ckpts t.restores t.replayed t.wd_stand_downs t.retx_buf_hwm;
  Format.fprintf ppf
    "faults retransmit=%d dup-suppressed=%d net-drop=%d net-dup=%d \
     crash-drop=%d"
    (total_retransmits t) (total_dups_suppressed t) t.net_dropped
    t.net_duplicated t.crash_dropped
