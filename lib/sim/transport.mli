(** Reliable delivery over faulty links.

    The paper assumes reliable asynchronous channels (§2); {!Fault}
    deliberately breaks that assumption. This module restores it on
    top of a lossy/duplicating engine network with the classic
    machinery: per-link sequence numbers, cumulative acknowledgements,
    timeout-driven retransmission with exponential backoff (built on
    engine timers), and receiver-side de-duplication/reordering. Each
    (src, dst) flow is delivered exactly once, in send order — i.e.
    every transported link is reliable FIFO.

    The transport is embedded in the host protocol's message type: the
    caller supplies [inject]/[project] to wrap a {!frame} as a protocol
    message and recognise one on receipt, so a single engine instance
    carries both raw and transported traffic.

    Retransmissions charge {!Stats.retransmit} to the sender and
    suppressed duplicates charge {!Stats.dup_suppressed} to the
    receiver, on top of the normal send/receive accounting.

    When a flow's oldest frame exhausts [max_retries], the transport
    gives up and invokes [on_unreachable] (once per destination) so the
    protocol can degrade gracefully instead of retrying forever. *)

type 'msg frame =
  | Data of { seq : int; payload : 'msg }
      (** [seq] counts from 1 per (src, dst) flow. *)
  | Ack of { cum : int }
      (** Cumulative: every [Data] frame with [seq <= cum] arrived. *)

type 'msg t

val create :
  ?rto:float ->
  ?backoff:float ->
  ?max_retries:int ->
  inject:('msg frame -> 'msg) ->
  project:('msg -> 'msg frame option) ->
  ?on_unreachable:('msg Engine.ctx -> dst:int -> unit) ->
  'msg Engine.t ->
  'msg t
(** [rto] (default 4.0 sim-time units) is the initial retransmission
    timeout, doubled ([backoff], default 2.0) after each consecutive
    retransmission of the same oldest frame, up to [max_retries]
    (default 12) before the destination is declared unreachable.
    [on_unreachable] defaults to doing nothing. *)

val send : 'msg t -> 'msg Engine.ctx -> ?bits:int -> dst:int -> 'msg -> unit
(** Like {!Engine.send} but reliable: assigns the next sequence number
    on the (self, dst) flow, buffers the payload for retransmission and
    arms the flow's timer. [bits] is the payload size; the frame header
    adds one 32-bit word ({!frame_overhead_bits}). *)

val wire :
  'msg t -> int -> ('msg Engine.ctx -> src:int -> 'msg -> unit) -> unit
(** [wire t proc handler] installs [proc]'s engine handler through the
    transport: frames (recognised via [project]) are consumed by the
    transport — acked, de-duplicated, re-ordered — and their payloads
    handed to [handler] exactly once in per-flow send order; non-frame
    messages go straight to [handler]. *)

val frame_overhead_bits : int
(** Bits added to a payload by the [Data] header; an [Ack] costs the
    same on its own. *)

val unreachable : 'msg t -> int list
(** Sorted destinations declared unreachable so far. *)
