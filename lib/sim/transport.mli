(** Reliable delivery over faulty links.

    The paper assumes reliable asynchronous channels (§2); {!Fault}
    deliberately breaks that assumption. This module restores it on
    top of a lossy/duplicating engine network with the classic
    machinery: per-link sequence numbers, cumulative acknowledgements,
    timeout-driven retransmission with exponential backoff (built on
    engine timers), and receiver-side de-duplication/reordering. Each
    (src, dst) flow is delivered exactly once, in send order — i.e.
    every transported link is reliable FIFO.

    The transport is embedded in the host protocol's message type: the
    caller supplies [inject]/[project] to wrap a {!frame} as a protocol
    message and recognise one on receipt, so a single engine instance
    carries both raw and transported traffic.

    Retransmissions charge {!Stats.retransmit} to the sender and
    suppressed duplicates charge {!Stats.dup_suppressed} to the
    receiver, on top of the normal send/receive accounting.

    When a flow's oldest frame exhausts [max_retries], the transport
    gives up and invokes [on_unreachable] (once per destination) so the
    protocol can degrade gracefully instead of retrying forever. *)

type 'msg frame =
  | Data of { seq : int; payload : 'msg }
      (** [seq] counts from 1 per (src, dst) flow. *)
  | Ack of { cum : int; era : int }
      (** Cumulative: every [Data] frame with [seq <= cum] arrived.
          [era] is the receiver's incarnation (0 until it restarts);
          senders ignore acks from a superseded incarnation. *)
  | Reconnect of { expected : int; era : int }
      (** Recovery handshake: a restored receiver announces its new
          incarnation and the next frame it expects; the sender rolls
          its cursor back and replays from there. *)

type 'msg t

val create :
  ?rto:float ->
  ?backoff:float ->
  ?max_retries:int ->
  ?max_unacked:int ->
  ?recovery:bool ->
  inject:('msg frame -> 'msg) ->
  project:('msg -> 'msg frame option) ->
  ?on_unreachable:('msg Engine.ctx -> dst:int -> unit) ->
  'msg Engine.t ->
  'msg t
(** [rto] (default 4.0 sim-time units) is the initial retransmission
    timeout, doubled ([backoff], default 2.0) after each consecutive
    retransmission of the same oldest frame, up to [max_retries]
    (default 12) before the destination is declared unreachable.
    [on_unreachable] defaults to doing nothing.

    [max_unacked] (default 4096) bounds each flow's unacked window:
    {!send} raises [Failure] with a diagnostic once a flow holds more
    in-flight frames, failing fast instead of buffering without bound
    toward a peer that stopped acking. The deepest window ever seen is
    recorded in {!Stats.retx_buf_hwm}.

    [recovery] (default false) retains acked frames in the sender
    buffer so a {!Reconnect} can replay history from before the acked
    frontier; turn it on when the run contains [Fault.Restart] windows
    (retained history never counts against [max_unacked]). *)

val send : 'msg t -> 'msg Engine.ctx -> ?bits:int -> dst:int -> 'msg -> unit
(** Like {!Engine.send} but reliable: assigns the next sequence number
    on the (self, dst) flow, buffers the payload for retransmission and
    arms the flow's timer. [bits] is the payload size; the frame header
    adds one 32-bit word ({!frame_overhead_bits}).
    @raise Failure when the flow exceeds [max_unacked]. *)

val wire :
  'msg t -> int -> ('msg Engine.ctx -> src:int -> 'msg -> unit) -> unit
(** [wire t proc handler] installs [proc]'s engine handler through the
    transport: frames (recognised via [project]) are consumed by the
    transport — acked, de-duplicated, re-ordered — and their payloads
    handed to [handler] exactly once in per-flow send order; non-frame
    messages go straight to [handler]. *)

val frame_overhead_bits : int
(** Bits added to a payload by the [Data] header; an [Ack] costs the
    same on its own. *)

val unreachable : 'msg t -> int list
(** Sorted destinations declared unreachable so far. *)

(** {2 Checkpoint / recovery support}

    The transport's contribution to a monitor checkpoint: a neutral,
    serializable snapshot of the flows owned by one process (its send
    flows and receive cursors). [Wcp_core.Checkpoint] encodes these
    alongside the detector state; on a [Fault.Restart] the detector
    restores them and runs {!reconnect}. *)

type 'msg tx_state = {
  tx_dst : int;
  tx_next_seq : int;
  tx_base : int;
  tx_frames : (int * 'msg * int) list;
      (** (seq, payload, bits), ascending by seq. *)
  tx_era : int;
}

type rx_state = { rx_src : int; rx_expected : int; rx_era : int }

type 'msg state = { st_txs : 'msg tx_state list; st_rxs : rx_state list }

val export_state : 'msg t -> proc:int -> 'msg state
(** Snapshot of [proc]'s flows: send flows with their full
    retransmission buffers, receive flows as (expected, era) cursors
    (the out-of-order pending buffer is deliberately excluded — those
    frames are unacked and the sender still buffers them). Timer state
    (deadlines, retry counts) is transient and not captured. *)

val restore_state : 'msg t -> proc:int -> 'msg state -> unit
(** Overwrite [proc]'s flows with the checkpointed state, {e in place}
    (deferred engine timers keep their references), bumping each
    receive flow's era so acks from the superseded incarnation are
    ignored. Flows of [proc] that the checkpoint does not mention are
    reset to their initial state. *)

val reconnect : 'msg t -> 'msg Engine.ctx -> proc:int -> unit
(** Run the receiver side of the recovery handshake for every incoming
    flow of [proc]: send {!Reconnect} to the peer and retry with
    backoff (up to [max_retries] attempts) until the flow's [expected]
    cursor moves. Exhausting the attempts just stops the loop — the
    sender's retransmission timer remains the liveness backstop. *)
