(** Deterministic fault injection for the discrete-event engine.

    A {e fault plan} describes everything that may go wrong in a run:
    per-link message loss, duplication and delay spikes, plus scheduled
    per-process crash or stall windows. The plan is applied by the
    engine at the network boundary, {e after} {!Network.delivery_time}
    has fixed the nominal delivery schedule, and draws all of its
    randomness from its own SplitMix64 stream seeded by [seed] — never
    from the engine's PRNG. Two consequences:

    - equal (engine seed, fault seed) pairs reproduce a chaotic run
      bit for bit;
    - a plan with zero fault rates and no windows ({!none}) leaves the
      engine's random stream untouched, so zero-fault runs are
      bit-identical to runs with no plan at all.

    Window semantics (a window is half-open, [\[from_t, until_t)]):
    - [Crash]: messages delivered to the process inside the window are
      {e lost}; the process's own timers are deferred to the window end
      (its local state survives — the window models a crash-and-restart
      or a network partition of that host). A window with
      [until_t = None] is a {e permanent} crash: everything addressed
      to the process, timers included, is dropped forever.
    - [Stall]: the process is frozen — both messages and timers are
      deferred to the window end; nothing is lost.
    - [Restart]: like [Crash] inside the window (messages lost, timers
      deferred), but the process's in-memory state is modelled as
      destroyed: at [until_t] the detector rebuilds it from its last
      checkpoint and runs the transport reconnect handshake (see
      [Wcp_core.Checkpoint]). [until_t] is mandatory — a restart
      without a recovery time is just a permanent [Crash]. The plan
      itself draws no randomness for windows, so a [Restart] leaves the
      fault stream untouched. *)

type kind = Crash | Stall | Restart

type window = {
  proc : int;
  from_t : float;
  until_t : float option;  (** [None] = permanent *)
  kind : kind;
}

type link = {
  drop : float;  (** per-delivery loss probability *)
  dup : float;  (** per-delivery duplication probability *)
  spike_p : float;  (** probability of an extra delay spike *)
  spike_mean : float;  (** mean of the exponential spike *)
}

val link :
  ?drop:float -> ?dup:float -> ?spike_p:float -> ?spike_mean:float ->
  unit -> link
(** All rates default to 0. @raise Invalid_argument if a probability is
    outside [\[0, 1\]] or [spike_mean] is negative or not finite. *)

val window : ?until_t:float -> kind:kind -> proc:int -> from_t:float -> unit -> window
(** @raise Invalid_argument if [proc < 0], times are negative/NaN,
    [until_t <= from_t], or [kind = Restart] with no [until_t]. *)

type plan

val none : plan
(** No faults at all; {!is_none} holds. *)

val make :
  ?seed:int64 ->
  ?links:(src:int -> dst:int -> link) ->
  ?windows:window list ->
  unit -> plan
(** [links] defaults to a fault-free link everywhere; [seed] defaults
    to 0. *)

val uniform :
  ?seed:int64 ->
  ?drop:float -> ?dup:float -> ?spike_p:float -> ?spike_mean:float ->
  ?windows:window list ->
  unit -> plan
(** Every link gets the same fault rates (validated as for {!link}).
    All rates zero degenerates to [make ?windows ()], so
    [uniform ()] satisfies {!is_none}. *)

val is_none : plan -> bool
(** True only for {!none} (constructed with no links function and no
    windows): the engine skips the fault path entirely. A plan built
    with [make ~links] is conservatively considered active even if the
    function returns zero rates everywhere. *)

val seed : plan -> int64

val permanently_crashed : plan -> int list
(** Sorted process ids with a [Crash]/[Stall] window that never ends —
    used to report graceful degradation instead of a hang. *)

val restarts : plan -> window list
(** The plan's [Restart] windows, in declaration order. Detectors use
    this to schedule checkpoint capture and the restore-at-[until_t]
    timer for each restarting process. *)

val has_restarts : plan -> bool
(** [restarts plan <> []], without the list allocation. *)

(** {2 Runtime state (used by the engine)} *)

type t
(** A plan plus its private PRNG stream. *)

val start : plan -> t

val plan : t -> plan

val active : t -> bool

type fate =
  | Pass of { extra : float; dup_extra : float option }
      (** Deliver after [extra] additional delay; if [dup_extra] is
          [Some e], also deliver a duplicate copy delayed by [e]. *)
  | Drop

val fate : t -> src:int -> dst:int -> fate
(** Draw the fate of one delivery on the plan's private stream. *)

type crash_fate = Up | Lost | Deferred of float

val crash_fate : t -> proc:int -> now:float -> timer:bool -> crash_fate
(** What happens to an event dispatched to [proc] at [now]: [Up] runs
    it, [Lost] silently drops it, [Deferred t] re-schedules it at
    [t]. [timer] distinguishes the process's own timers from message
    deliveries (see the window semantics above). *)
