open Wcp_util

let log = Logs.Src.create "wcp.engine" ~doc:"discrete-event engine"

module Log = (val Logs.src_log log : Logs.LOG)

(* Event keys (time, sequence) live unboxed inside the flat heap; only
   the body is a heap-allocated value, so a push costs one small block
   instead of the record-plus-boxed-float of a generic heap entry. *)
type 'msg event_body =
  | Deliver of { dst : int; src : int; msg : 'msg }
  | Timer of { proc : int; callback : 'msg ctx -> unit }

and 'msg t = {
  num_processes : int;
  network : Network.t;
  rng : Rng.t;
  (* [None] when no fault plan was given (or the plan is Fault.none):
     the hot path then never touches the fault layer, so fault-free
     runs are bit-identical to pre-fault builds. *)
  fault : Fault.t option;
  (* [None] when tracing is off: every observability hook in the hot
     path is then a single [match] on an immutable field — no closure,
     no event construction — preserving the allocation-free core. *)
  recorder : Wcp_obs.Recorder.t option;
  stats : Stats.t;
  queue : 'msg event_body Heap.Flat.t;
  handlers : ('msg ctx -> src:int -> 'msg -> unit) option array;
  (* One preallocated ctx per process, reused for every dispatch. *)
  mutable ctxs : 'msg ctx array;
  max_events : int;
  mutable next_seq : int;
  mutable clock : float;
  mutable stop_requested : bool;
  mutable events_done : int;
  mutable running : bool;
}

and 'msg ctx = { engine : 'msg t; proc : int }

let create ?(network = Network.uniform_default) ?fault ?recorder
    ?(max_events = 50_000_000) ~num_processes ~seed () =
  if num_processes < 1 then invalid_arg "Engine.create: need >= 1 process";
  let fault =
    match fault with
    | Some plan when not (Fault.is_none plan) -> Some (Fault.start plan)
    | _ -> None
  in
  let t =
    {
      num_processes;
      network;
      rng = Rng.create seed;
      fault;
      recorder;
      stats = Stats.create ~n:num_processes;
      queue = Heap.Flat.create ();
      handlers = Array.make num_processes None;
      ctxs = [||];
      max_events;
      next_seq = 0;
      clock = 0.0;
      stop_requested = false;
      events_done = 0;
      running = false;
    }
  in
  t.ctxs <- Array.init num_processes (fun proc -> { engine = t; proc });
  t

let set_handler t i h =
  if i < 0 || i >= t.num_processes then
    invalid_arg "Engine.set_handler: no such process";
  t.handlers.(i) <- Some h

let stats t = t.stats

let recorder t = t.recorder

let now t = t.clock

let stopped t = t.stop_requested

let events_processed t = t.events_done

let push t ~at body =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.Flat.add t.queue ~at ~seq body;
  Stats.note_queue_depth t.stats (Heap.Flat.length t.queue)

let schedule_initial t ~proc ~at callback =
  if proc < 0 || proc >= t.num_processes then
    invalid_arg "Engine.schedule_initial: no such process";
  if at < 0.0 then invalid_arg "Engine.schedule_initial: negative time";
  push t ~at (Timer { proc; callback })

let self ctx = ctx.proc

let time ctx = ctx.engine.clock

let send ctx ?(bits = 32) ~dst msg =
  let t = ctx.engine in
  if dst < 0 || dst >= t.num_processes then
    invalid_arg "Engine.send: no such process";
  let at =
    Network.delivery_time t.network t.rng ~src:ctx.proc ~dst ~now:t.clock
  in
  Stats.msg_sent t.stats ~proc:ctx.proc ~bits;
  (match t.recorder with
  | None -> ()
  | Some r ->
      Wcp_obs.Recorder.emit r ~time:t.clock ~proc:ctx.proc
        (Wcp_obs.Event.Sent { dst; bits }));
  match t.fault with
  | None -> push t ~at (Deliver { dst; src = ctx.proc; msg })
  | Some f -> (
      (* The nominal schedule above already consumed the engine RNG, so
         whatever the fault layer decides, fault-free traffic elsewhere
         in the run sees an unchanged random stream. *)
      match Fault.fate f ~src:ctx.proc ~dst with
      | Fault.Drop -> Stats.note_net_dropped t.stats
      | Fault.Pass { extra; dup_extra } ->
          push t ~at:(at +. extra) (Deliver { dst; src = ctx.proc; msg });
          (match dup_extra with
          | None -> ()
          | Some e ->
              Stats.note_net_duplicated t.stats;
              push t ~at:(at +. e) (Deliver { dst; src = ctx.proc; msg })))

let schedule ctx ~delay callback =
  let t = ctx.engine in
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  push t ~at:(t.clock +. delay) (Timer { proc = ctx.proc; callback })

let charge_work ctx units = Stats.work ctx.engine.stats ~proc:ctx.proc units

let note_space ctx words = Stats.space ctx.engine.stats ~proc:ctx.proc words

let rng ctx = ctx.engine.rng

let recorder_of ctx = ctx.engine.recorder

let stats_of ctx = ctx.engine.stats

let stop ctx = ctx.engine.stop_requested <- true

let dispatch t body =
  match body with
  | Deliver { dst; src; msg } -> (
      Log.debug (fun m -> m "t=%.3f deliver %d -> %d" t.clock src dst);
      Stats.msg_received t.stats ~proc:dst;
      (match t.recorder with
      | None -> ()
      | Some r ->
          Wcp_obs.Recorder.emit r ~time:t.clock ~proc:dst
            (Wcp_obs.Event.Delivered { src }));
      match t.handlers.(dst) with
      | Some h -> h t.ctxs.(dst) ~src msg
      | None ->
          failwith
            (Printf.sprintf
               "Engine: message from process %d for process %d with no handler"
               src dst))
  | Timer { proc; callback } -> callback t.ctxs.(proc)

(* With a fault plan active, events aimed at a process inside a crash
   or stall window are dropped or re-queued at the window's end instead
   of dispatched. *)
let faulty_dispatch t fault ~at body =
  let proc, timer =
    match body with
    | Deliver { dst; _ } -> (dst, false)
    | Timer { proc; _ } -> (proc, true)
  in
  match Fault.crash_fate fault ~proc ~now:at ~timer with
  | Fault.Up -> dispatch t body
  | Fault.Lost -> Stats.note_crash_dropped t.stats
  | Fault.Deferred until -> push t ~at:until body

let run t =
  if t.running then invalid_arg "Engine.run: already run";
  t.running <- true;
  let rec loop () =
    if t.stop_requested || Heap.Flat.is_empty t.queue then ()
    else begin
      (* Guard BEFORE dispatch: exactly max_events events ever run. *)
      if t.events_done >= t.max_events then
        failwith "Engine.run: event budget exceeded (runaway protocol?)";
      let at = Heap.Flat.min_at t.queue in
      let body = Heap.Flat.pop_exn t.queue in
      t.events_done <- t.events_done + 1;
      t.clock <- at;
      (match t.fault with
      | None -> dispatch t body
      | Some f -> faulty_dispatch t f ~at body);
      loop ()
    end
  in
  loop ();
  Stats.set_events_done t.stats t.events_done
