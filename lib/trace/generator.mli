(** Random computation generation.

    Produces causally sound computations by simulating an interleaving:
    at each step a random process either sends to a random peer or
    receives one of its pending (in-flight) messages. Receive order is
    deliberately {e not} FIFO — the paper makes no FIFO assumption for
    application channels (§2) and the detection algorithms must cope.

    All randomness flows from the [seed]; equal parameters and seed
    give byte-identical computations. *)

open Wcp_util

type params = {
  n : int;  (** number of processes (the paper's [N]) *)
  sends_per_process : int;
      (** sends issued by each process; the paper's [m] bounds the
          events (sends + receives) of the busiest process *)
  p_pred : float;
      (** probability that the local predicate holds in any given
          state; [0.] gives an undetectable run, [1.] makes the first
          globally consistent candidate cut detectable immediately *)
  p_recv : float;
      (** bias toward receiving when a message is pending (higher
          values give "chattier", more causally connected runs) *)
}

val default_params : params
(** [n = 4], [sends_per_process = 10], [p_pred = 0.5], [p_recv = 0.5]. *)

val random : ?params:params -> seed:int64 -> unit -> Computation.t

val random_btrace : ?params:params -> seed:int64 -> string -> int * int
(** [random_btrace ~params ~seed path] runs the same simulation as
    {!random} — identical RNG draw sequence, so the file decodes to the
    computation {!random} returns for equal arguments — but streams the
    events straight into [path] through {!Btrace.Writer} without ever
    materialising the computation. Returns [(states, messages)] for
    reporting. The [wcp generate -o x.btrace] direct-to-disk path. *)

val generate_into :
  params:params ->
  seed:int64 ->
  send:(src:int -> dst:int -> 'a) ->
  recv:(dst:int -> 'a -> unit) ->
  set_pred:(proc:int -> bool -> unit) ->
  unit ->
  unit
(** The simulation core, polymorphic in the event sink. [send] returns
    a message handle that is later passed back to [recv]; [set_pred]
    flags the issuing process's current state. The RNG draw sequence
    depends only on [params] and [seed], never on the sink, which is
    what makes {!random} and {!random_btrace} agree. *)

val random_procs : Rng.t -> n:int -> width:int -> int array
(** A sorted random subset of [width] distinct processes out of [n];
    used to choose which processes a WCP spans. *)
