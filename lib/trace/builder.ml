type msg = { msg_id : int; msg_dst : int; mutable received : bool }

(* Growable per-process rows: ops.(i) holds ops_len.(i) events, pred.(i)
   holds pred_len.(i) = ops_len.(i) + 1 state flags. Appends are
   amortised O(1) with no per-event list cells, and set_pred overwrites
   in place — the builder allocates nothing per event beyond the op
   itself. *)
type t = {
  n : int;
  ops : Computation.op array array;
  ops_len : int array;
  pred : bool array array;
  pred_len : int array;
  mutable next_msg : int;
}

let create ~n =
  if n <= 0 then invalid_arg "Builder.create: n must be positive";
  {
    n;
    ops = Array.make n [||];
    ops_len = Array.make n 0;
    pred = Array.init n (fun _ -> Array.make 8 false);
    pred_len = Array.make n 1;
    next_msg = 0;
  }

let check_proc t p ~what =
  if p < 0 || p >= t.n then
    invalid_arg (Printf.sprintf "Builder.%s: no process %d" what p)

let push_op t i op =
  let len = t.ops_len.(i) in
  let row = t.ops.(i) in
  if len = Array.length row then begin
    let fresh = Array.make (max 8 (2 * len)) op in
    Array.blit row 0 fresh 0 len;
    t.ops.(i) <- fresh
  end;
  t.ops.(i).(len) <- op;
  t.ops_len.(i) <- len + 1;
  (* New state, predicate false until set_pred says otherwise. *)
  let plen = t.pred_len.(i) in
  let prow = t.pred.(i) in
  if plen = Array.length prow then begin
    let fresh = Array.make (2 * plen) false in
    Array.blit prow 0 fresh 0 plen;
    t.pred.(i) <- fresh
  end;
  t.pred.(i).(plen) <- false;
  t.pred_len.(i) <- plen + 1

let send t ~src ~dst =
  check_proc t src ~what:"send";
  check_proc t dst ~what:"send";
  if src = dst then invalid_arg "Builder.send: self-send";
  let id = t.next_msg in
  t.next_msg <- id + 1;
  push_op t src (Computation.Send { dst; msg = id });
  { msg_id = id; msg_dst = dst; received = false }

let recv t ~dst m =
  check_proc t dst ~what:"recv";
  if m.received then invalid_arg "Builder.recv: message already received";
  if m.msg_dst <> dst then
    invalid_arg
      (Printf.sprintf "Builder.recv: message addressed to %d, not %d"
         m.msg_dst dst);
  m.received <- true;
  push_op t dst (Computation.Recv { msg = m.msg_id })

let internal t ~proc = check_proc t proc ~what:"internal"

let set_pred t ~proc v =
  check_proc t proc ~what:"set_pred";
  t.pred.(proc).(t.pred_len.(proc) - 1) <- v

let current_state t ~proc =
  check_proc t proc ~what:"current_state";
  t.pred_len.(proc)

let finish t =
  let ops = Array.init t.n (fun i -> Array.sub t.ops.(i) 0 t.ops_len.(i)) in
  let pred = Array.init t.n (fun i -> Array.sub t.pred.(i) 0 t.pred_len.(i)) in
  Computation.of_arrays ~ops ~pred
