exception Parse_error of { line : int; message : string }

let parse_error ~line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

(* [encode] and [write_file] share these emitters, so the streamed file
   is byte-identical to the in-memory encoding by construction. *)

let add_header buf comp =
  Buffer.add_string buf "wcp-trace v1\n";
  Buffer.add_string buf "n ";
  Buffer.add_string buf (string_of_int (Computation.n comp));
  Buffer.add_char buf '\n'

let add_proc buf comp i =
  Buffer.add_string buf "ops ";
  Buffer.add_string buf (string_of_int i);
  List.iter
    (fun op ->
      match op with
      | Computation.Send { dst; msg } ->
          Buffer.add_string buf " S";
          Buffer.add_string buf (string_of_int dst);
          Buffer.add_char buf ':';
          Buffer.add_string buf (string_of_int msg)
      | Computation.Recv { msg } ->
          Buffer.add_string buf " R:";
          Buffer.add_string buf (string_of_int msg))
    (Computation.ops comp i);
  Buffer.add_char buf '\n';
  Buffer.add_string buf "pred ";
  Buffer.add_string buf (string_of_int i);
  for s = 1 to Computation.num_states comp i do
    Buffer.add_string buf
      (if Computation.pred comp (State.make ~proc:i ~index:s) then " 1"
       else " 0")
  done;
  Buffer.add_char buf '\n'

let encode comp =
  let buf = Buffer.create 1024 in
  add_header buf comp;
  for i = 0 to Computation.n comp - 1 do
    add_proc buf comp i
  done;
  Buffer.contents buf

let write_file path comp =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (* Stream per process instead of building one giant string: the
         buffer never holds more than one process's lines past 64KiB. *)
      let buf = Buffer.create 65536 in
      add_header buf comp;
      for i = 0 to Computation.n comp - 1 do
        add_proc buf comp i;
        if Buffer.length buf >= 65536 then begin
          Buffer.output_buffer oc buf;
          Buffer.clear buf
        end
      done;
      Buffer.output_buffer oc buf)

(* ------------------------------------------------------------------ *)
(* Decoding: a single-pass scanner                                     *)
(* ------------------------------------------------------------------ *)

(* Tokens are maximal runs of non-' ' characters (exactly the historical
   [String.split_on_char ' '] semantics: tabs are token characters), cut
   at the first '#'. The scanner walks the text once, addressing tokens
   as (start, stop) spans — no per-token substring allocation on the
   happy path. *)

let token_end s lim i =
  let j = ref i in
  while !j < lim && s.[!j] <> ' ' do
    incr j
  done;
  !j

let skip_spaces s lim i =
  let j = ref i in
  while !j < lim && s.[!j] = ' ' do
    incr j
  done;
  !j

let tok_is s start stop lit =
  stop - start = String.length lit
  &&
  let rec eq k = k = String.length lit || (s.[start + k] = lit.[k] && eq (k + 1)) in
  eq 0

(* Fast path: plain decimal. Anything else (hex, underscores, signs,
   junk) falls back to [int_of_string_opt] on the substring, keeping the
   historical acceptance exactly. *)
let parse_int_sub ~line s start stop =
  let all_digits =
    let rec go k = k >= stop || (s.[k] >= '0' && s.[k] <= '9' && go (k + 1)) in
    stop > start && stop - start <= 18 && go start
  in
  if all_digits then begin
    let v = ref 0 in
    for k = start to stop - 1 do
      v := (!v * 10) + (Char.code s.[k] - Char.code '0')
    done;
    !v
  end
  else
    let sub = String.sub s start (stop - start) in
    match int_of_string_opt sub with
    | Some v -> v
    | None -> parse_error ~line "expected integer, got %S" sub

let parse_op_sub ~line s start stop =
  let len = stop - start in
  if len >= 2 && s.[start] = 'R' && s.[start + 1] = ':' then
    Computation.Recv { msg = parse_int_sub ~line s (start + 2) stop }
  else if len >= 1 && s.[start] = 'S' then begin
    let c = ref start in
    while !c < stop && s.[!c] <> ':' do
      incr c
    done;
    if !c < stop then
      let dst = parse_int_sub ~line s (start + 1) !c in
      let msg = parse_int_sub ~line s (!c + 1) stop in
      Computation.Send { dst; msg }
    else parse_error ~line "malformed send token %S" (String.sub s start len)
  end
  else parse_error ~line "unknown op token %S" (String.sub s start len)

(* Attribute a [Computation.Invalid] message to the source line that
   introduced the offending data: "process N ..." errors point at that
   process's ops (or pred, for flag-count errors) line; message-id
   errors point at the ops line of the first process mentioning that
   id. 0 when nothing matches (e.g. a process with no ops line). *)

let first_int msg =
  let len = String.length msg in
  let i = ref 0 in
  while !i < len && not (msg.[!i] >= '0' && msg.[!i] <= '9') do
    incr i
  done;
  if !i >= len then None
  else begin
    let stop = ref !i in
    while !stop < len && msg.[!stop] >= '0' && msg.[!stop] <= '9' do
      incr stop
    done;
    let v = int_of_string (String.sub msg !i (!stop - !i)) in
    Some (if !i > 0 && msg.[!i - 1] = '-' then -v else v)
  end

let contains_sub msg sub =
  let ml = String.length msg and sl = String.length sub in
  let rec at i = i + sl <= ml && (String.sub msg i sl = sub || at (i + 1)) in
  at 0

let attribute_line ~ops ~ops_line ~pred_line msg =
  match first_int msg with
  | None -> 0
  | Some v ->
      if String.length msg >= 8 && String.sub msg 0 8 = "process " then
        if v >= 0 && v < Array.length ops_line then
          if contains_sub msg "predicate" then pred_line.(v) else ops_line.(v)
        else 0
      else begin
        (* A message-id error: find the first process whose script
           mentions the id. *)
        let line = ref 0 in
        (try
           Array.iteri
             (fun p script ->
               Array.iter
                 (fun op ->
                   let m =
                     match op with
                     | Computation.Send { msg = m; _ } -> m
                     | Computation.Recv { msg = m } -> m
                   in
                   if m = v then begin
                     line := ops_line.(p);
                     raise Exit
                   end)
                 script)
             ops
         with Exit -> ());
        !line
      end

let decode_text text =
  let len = String.length text in
  let n = ref (-1) in
  let ops : Computation.op array array ref = ref [||] in
  let pred : bool array array ref = ref [||] in
  let ops_line = ref [||] in
  let pred_line = ref [||] in
  let saw_header = ref false in
  let pos = ref 0 in
  let line = ref 0 in
  while !pos < len do
    incr line;
    let line_no = !line in
    let eol =
      match String.index_from_opt text !pos '\n' with
      | Some e -> e
      | None -> len
    in
    (* Comments run to end of line; the '#' may land mid-token. *)
    let lim =
      let j = ref !pos in
      while !j < eol && text.[!j] <> '#' do
        incr j
      done;
      !j
    in
    let t0 = skip_spaces text lim !pos in
    if t0 < lim then begin
      let t0e = token_end text lim t0 in
      let t1 = skip_spaces text lim t0e in
      let count_toks from =
        let c = ref 0 and i = ref from in
        while !i < lim do
          incr c;
          i := skip_spaces text lim (token_end text lim !i)
        done;
        !c
      in
      if tok_is text t0 t0e "wcp-trace" && t1 < lim then begin
        let t1e = token_end text lim t1 in
        if not (tok_is text t1 t1e "v1") then
          parse_error ~line:line_no "unsupported version %S"
            (String.sub text t1 (t1e - t1));
        saw_header := true
      end
      else if tok_is text t0 t0e "n" && count_toks t1 = 1 then begin
        if not !saw_header then
          parse_error ~line:line_no "missing wcp-trace header";
        let c = parse_int_sub ~line:line_no text t1 (token_end text lim t1) in
        if c < 1 then parse_error ~line:line_no "n must be >= 1";
        n := c;
        ops := Array.make c [||];
        pred := Array.make c [||];
        ops_line := Array.make c 0;
        pred_line := Array.make c 0
      end
      else if tok_is text t0 t0e "ops" && t1 < lim then begin
        let t1e = token_end text lim t1 in
        let p = parse_int_sub ~line:line_no text t1 t1e in
        if !n < 0 then parse_error ~line:line_no "ops before n";
        if p < 0 || p >= !n then parse_error ~line:line_no "no process %d" p;
        let toks = count_toks (skip_spaces text lim t1e) in
        let arr = Array.make toks (Computation.Recv { msg = 0 }) in
        let i = ref (skip_spaces text lim t1e) in
        for k = 0 to toks - 1 do
          let e = token_end text lim !i in
          arr.(k) <- parse_op_sub ~line:line_no text !i e;
          i := skip_spaces text lim e
        done;
        !ops.(p) <- arr;
        !ops_line.(p) <- line_no
      end
      else if tok_is text t0 t0e "pred" && t1 < lim then begin
        let t1e = token_end text lim t1 in
        let p = parse_int_sub ~line:line_no text t1 t1e in
        if !n < 0 then parse_error ~line:line_no "pred before n";
        if p < 0 || p >= !n then parse_error ~line:line_no "no process %d" p;
        let toks = count_toks (skip_spaces text lim t1e) in
        let arr = Array.make toks false in
        let i = ref (skip_spaces text lim t1e) in
        for k = 0 to toks - 1 do
          let e = token_end text lim !i in
          (if e - !i = 1 && text.[!i] = '1' then arr.(k) <- true
           else if e - !i = 1 && text.[!i] = '0' then arr.(k) <- false
           else
             parse_error ~line:line_no "pred flag must be 0 or 1, got %S"
               (String.sub text !i (e - !i)));
          i := skip_spaces text lim e
        done;
        !pred.(p) <- arr;
        !pred_line.(p) <- line_no
      end
      else
        parse_error ~line:line_no "unknown directive %S"
          (String.sub text t0 (t0e - t0))
    end;
    pos := eol + 1
  done;
  if !n < 0 then parse_error ~line:0 "no 'n' directive";
  try Computation.of_arrays ~ops:!ops ~pred:!pred
  with Computation.Invalid msg ->
    parse_error
      ~line:
        (attribute_line ~ops:!ops ~ops_line:!ops_line ~pred_line:!pred_line msg)
      "invalid computation: %s" msg

(* ------------------------------------------------------------------ *)
(* Entry points with btrace autodetection                              *)
(* ------------------------------------------------------------------ *)

let wrap_btrace f =
  try f () with
  | Btrace.Corrupt msg -> parse_error ~line:0 "btrace: %s" msg
  | Computation.Invalid msg -> parse_error ~line:0 "invalid computation: %s" msg

let decode text =
  if Btrace.is_magic text then wrap_btrace (fun () -> Btrace.decode text)
  else decode_text text

let read_file path =
  let is_btrace =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        in_channel_length ic >= String.length Btrace.magic
        && Btrace.is_magic (really_input_string ic (String.length Btrace.magic)))
  in
  if is_btrace then wrap_btrace (fun () -> Btrace.read_file path)
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        decode_text (really_input_string ic len))
  end
