open Wcp_clocks

type op = Send of { dst : int; msg : int } | Recv of { msg : int }

type message = {
  id : int;
  src : int;
  src_state : int;
  dst : int;
  dst_state : int;
}

type t = {
  n : int;
  ops : op array array;
  pred : bool array array;
  messages : message array;
  vcs : Vector_clock.t array array;
  deps : Dependence.t option array array;
  max_events : int;
  send_prefix : int array array;
      (* send_prefix.(i).(s) = number of sends process i performs at
         states <= s (the op at position p executes at state p + 1), so
         "any send in [lo, hi]" is one subtraction. *)
}

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

(* First pass over the raw ops: check message ids are dense, each sent
   and received exactly once, and addressed to the process that receives
   it. Returns the per-message sender/receiver skeleton. *)
let check_messages ~n (ops : op array array) =
  let num_msgs =
    Array.fold_left
      (fun acc proc_ops ->
        Array.fold_left
          (fun acc op ->
            match op with Send { msg; _ } | Recv { msg } -> max acc (msg + 1))
          acc proc_ops)
      0 ops
  in
  let senders = Array.make num_msgs None in
  let receivers = Array.make num_msgs None in
  Array.iteri
    (fun i proc_ops ->
      Array.iter
        (fun op ->
          match op with
          | Send { dst; msg } ->
              if msg < 0 then invalid "negative message id %d" msg;
              if dst < 0 || dst >= n then
                invalid "message %d sent to invalid process %d" msg dst;
              if dst = i then invalid "message %d is a self-send on %d" msg i;
              (match senders.(msg) with
              | Some _ -> invalid "message %d sent twice" msg
              | None -> senders.(msg) <- Some (i, dst))
          | Recv { msg } ->
              if msg < 0 || msg >= num_msgs then
                invalid "receive of unknown message %d" msg;
              (match receivers.(msg) with
              | Some _ -> invalid "message %d received twice" msg
              | None -> receivers.(msg) <- Some i))
        proc_ops)
    ops;
  let pair id =
    match (senders.(id), receivers.(id)) with
    | Some (src, dst), Some r ->
        if r <> dst then
          invalid "message %d addressed to %d but received by %d" id dst r;
        (src, dst)
    | None, _ -> invalid "message id %d never sent" id
    | _, None -> invalid "message %d never received" id
  in
  Array.init num_msgs pair

(* Topological replay: execute each process's ops in order, blocking a
   receive until the matching send has executed. Any process left
   unfinished at the end witnesses a causal cycle. Computes the vector
   clock of every state and the direct dependence at every receive. *)
let replay ~n (ops : op array array) endpoints =
  let num_msgs = Array.length endpoints in
  let msg_vc : Vector_clock.t option array = Array.make num_msgs None in
  let msg_src_state = Array.make num_msgs 0 in
  let msg_dst_state = Array.make num_msgs 0 in
  let waiting_for : int option array = Array.make num_msgs None in
  let pos = Array.make n 0 in
  let clock = Array.init n (fun i -> Vector_clock.make ~n ~owner:i) in
  (* Final per-state tables, sized up front (state count = ops + 1);
     slot 0 holds the initial clock, slot [p + 1] is written as the op
     at position [p] executes. *)
  let vcs = Array.init n (fun i -> Array.make (Array.length ops.(i) + 1) clock.(i)) in
  let deps = Array.init n (fun i -> Array.make (Array.length ops.(i) + 1) None) in
  let queue = Queue.create () in
  Array.iteri (fun i _ -> Queue.add i queue) ops;
  let run i =
    let blocked = ref false in
    while (not !blocked) && pos.(i) < Array.length ops.(i) do
      (match ops.(i).(pos.(i)) with
      | Send { msg; _ } ->
          msg_vc.(msg) <- Some clock.(i);
          msg_src_state.(msg) <- Vector_clock.get clock.(i) i;
          clock.(i) <- Vector_clock.tick clock.(i) ~owner:i;
          vcs.(i).(pos.(i) + 1) <- clock.(i);
          (match waiting_for.(msg) with
          | Some j ->
              waiting_for.(msg) <- None;
              Queue.add j queue
          | None -> ())
      | Recv { msg } -> (
          match msg_vc.(msg) with
          | None ->
              waiting_for.(msg) <- Some i;
              blocked := true
          | Some sender_vc ->
              (* Fig. 2 receive rule via the in-place ops: one fresh
                 array per state instead of one per step. *)
              let v = Vector_clock.copy clock.(i) in
              Vector_clock.merge_into ~into:v sender_vc;
              Vector_clock.tick_into v ~owner:i;
              clock.(i) <- v;
              msg_dst_state.(msg) <- Vector_clock.get clock.(i) i;
              vcs.(i).(pos.(i) + 1) <- clock.(i);
              let src, _ = endpoints.(msg) in
              deps.(i).(pos.(i) + 1) <-
                Some Dependence.{ src; clock = msg_src_state.(msg) }));
      if not !blocked then pos.(i) <- pos.(i) + 1
    done
  in
  while not (Queue.is_empty queue) do
    run (Queue.pop queue)
  done;
  Array.iteri
    (fun i p ->
      if p < Array.length ops.(i) then
        invalid "process %d blocked at event %d: causal cycle in trace" i p)
    pos;
  let messages =
    Array.mapi
      (fun id (src, dst) ->
        {
          id;
          src;
          src_state = msg_src_state.(id);
          dst;
          dst_state = msg_dst_state.(id);
        })
      endpoints
  in
  (vcs, deps, messages)

let of_arrays ~ops ~pred =
  let n = Array.length ops in
  if n = 0 then invalid "empty computation";
  if Array.length pred <> n then
    invalid "pred has %d rows for %d processes" (Array.length pred) n;
  Array.iteri
    (fun i row ->
      let expect = Array.length ops.(i) + 1 in
      if Array.length row <> expect then
        invalid "process %d: %d predicate flags for %d states"
          i (Array.length row) expect)
    pred;
  let endpoints = check_messages ~n ops in
  let vcs, deps, messages = replay ~n ops endpoints in
  let max_events =
    Array.fold_left (fun acc o -> max acc (Array.length o)) 0 ops
  in
  let send_prefix =
    Array.map
      (fun proc_ops ->
        let p = Array.make (Array.length proc_ops + 2) 0 in
        Array.iteri
          (fun k op ->
            p.(k + 1) <-
              (p.(k) + match op with Send _ -> 1 | Recv _ -> 0))
          proc_ops;
        p.(Array.length proc_ops + 1) <- p.(Array.length proc_ops);
        p)
      ops
  in
  { n; ops; pred; messages; vcs; deps; max_events; send_prefix }

let of_raw ~ops ~pred =
  of_arrays ~ops:(Array.map Array.of_list ops) ~pred:(Array.map Array.copy pred)

let n t = t.n

let num_states t i = Array.length t.ops.(i) + 1

let total_states t =
  let total = ref 0 in
  for i = 0 to t.n - 1 do
    total := !total + num_states t i
  done;
  !total

let ops t i = Array.to_list t.ops.(i)

let messages t = t.messages

let check_state t (s : State.t) =
  if s.proc < 0 || s.proc >= t.n then invalid "no process %d" s.proc;
  if s.index < 1 || s.index > num_states t s.proc then
    invalid "process %d has no state %d" s.proc s.index

let pred t (s : State.t) =
  check_state t s;
  t.pred.(s.proc).(s.index - 1)

let vc_unsafe t (s : State.t) = t.vcs.(s.proc).(s.index - 1)

let vc t (s : State.t) =
  check_state t s;
  vc_unsafe t s

let dep_at t (s : State.t) =
  check_state t s;
  t.deps.(s.proc).(s.index - 1)

let happened_before_unsafe t (a : State.t) (b : State.t) =
  if a.proc = b.proc then a.index < b.index
  else Vector_clock.get (vc_unsafe t b) a.proc >= a.index

let happened_before t (a : State.t) (b : State.t) =
  check_state t a;
  check_state t b;
  happened_before_unsafe t a b

let concurrent_unsafe t a b =
  (not (State.equal a b))
  && (not (happened_before_unsafe t a b))
  && not (happened_before_unsafe t b a)

let concurrent t a b =
  check_state t a;
  check_state t b;
  concurrent_unsafe t a b

let candidates t i =
  let states = num_states t i in
  let rec collect k acc =
    if k < 1 then acc
    else collect (k - 1) (if t.pred.(i).(k - 1) then k :: acc else acc)
  in
  collect states []

let max_events_per_process t = t.max_events

let sends_in t ~proc ~lo ~hi =
  if proc < 0 || proc >= t.n then invalid "no process %d" proc;
  let p = t.send_prefix.(proc) in
  let states = num_states t proc in
  let lo = max lo 1 and hi = min hi states in
  lo <= hi && p.(hi) - p.(lo - 1) > 0

let reflag t ~pred =
  let fresh =
    Array.init t.n (fun p ->
        Array.init (num_states t p) (fun k -> pred ~proc:p ~state:(k + 1)))
  in
  { t with pred = fresh }

let pp_summary ppf t =
  Format.fprintf ppf "computation: %d processes, %d states, %d messages"
    t.n (total_states t) (Array.length t.messages)

module Stream = struct
  type source = {
    src_n : int;
    num_ops : int -> int;
    op : proc:int -> k:int -> op;
    pred : proc:int -> state:int -> bool;
  }

  let of_computation t =
    {
      src_n = t.n;
      num_ops = (fun i -> Array.length t.ops.(i));
      op = (fun ~proc ~k -> t.ops.(proc).(k));
      pred = (fun ~proc ~state -> t.pred.(proc).(state - 1));
    }

  let materialize s =
    let ops =
      Array.init s.src_n (fun i ->
          Array.init (s.num_ops i) (fun k -> s.op ~proc:i ~k))
    in
    let pred =
      Array.init s.src_n (fun i ->
          Array.init (s.num_ops i + 1) (fun k ->
              s.pred ~proc:i ~state:(k + 1)))
    in
    of_arrays ~ops ~pred
end
