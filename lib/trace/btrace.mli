(** wcp-btrace/1: a compact, mmap-friendly binary trace store with a
    bounded-memory streaming writer and a zero-copy reader (DESIGN.md
    §12).

    Layout — every multi-byte field is little-endian unsigned 64-bit
    and every section is 8-byte aligned:
    {v
    0    magic "wcpbtrc1"
    8    n           number of processes
    16   num_msgs    messages (dense 0-based ids)
    24   total_ops   events across all processes
    32   index       n x (ops_off, num_ops, pred_off)
    ..   sections    per process: packed ops, then pred bitset
    v}
    One event packs into one u64 word (the [Snap_dd_packed] idiom):
    bit 0 is the kind (0 send / 1 receive), bits 1-23 the destination
    (zero for receives), bits 24-62 the message id, bit 63 always clear
    so a word is a native OCaml int. The pred section is a bitset,
    LSB-first within each byte — bit [s - 1] is state [s]'s flag —
    zero-padded to a u64 boundary. Section offsets are canonical
    (each starts where the previous ends) and validated on open.

    Versioning: the magic's trailing digit is the format version; any
    layout change (field widths, section order, header fields) bumps it
    to a fresh magic, so old readers fail loudly on new files and
    vice versa — there is no in-place migration. *)

exception Corrupt of string
(** Structurally broken btrace data (bad magic, truncated sections,
    out-of-range ids, non-canonical offsets). The text codec's
    {!Trace_codec.read_file} wraps this into a [Parse_error]. *)

val magic : string
(** ["wcpbtrc1"], the 8 leading bytes of every file. *)

val is_magic : string -> bool
(** Does this string (a file's first bytes suffice) start with the
    btrace magic? The autodetection hook for the text read paths. *)

val encode : Computation.t -> string
(** Serialise a dense computation. Byte-identical to what
    {!Writer} produces for the same run. *)

val write_file : string -> Computation.t -> unit
(** {!encode} to a file — the [wcpdetect convert] path. *)

val decode : string -> Computation.t
(** Parse and re-validate a btrace image.
    @raise Corrupt on structural damage.
    @raise Computation.Invalid on causally unsound content. *)

val read_file : string -> Computation.t
(** mmap + {!decode}: materialise the dense computation (use
    {!openfile}/{!source} to avoid materialising). *)

(** Streaming writer: events are appended one at a time and spilled to
    a temporary side file in bounded chunks, so writer memory is O(n)
    buffers regardless of trace length — the [generate -o x.btrace]
    direct-to-disk path. The semantics mirror {!Builder}: each pushed
    event opens a new state whose predicate flag defaults to [false];
    {!Writer.set_pred} flips the {e current} state's flag; message ids
    are allocated densely by {!Writer.send}. *)
module Writer : sig
  type t

  val create : string -> n:int -> t
  (** Open a writer for [path]; a [path ^ ".spill"] temp file exists
      until {!close}/{!abort}. *)

  val send : t -> src:int -> dst:int -> int
  (** Append a send event on [src]; returns the allocated message id. *)

  val recv : t -> dst:int -> msg:int -> unit
  (** Append the matching receive on [dst]. The writer does not check
      single receipt — the reader's re-validation does. *)

  val set_pred : t -> proc:int -> bool -> unit
  (** Set the predicate flag of [proc]'s current (latest) state. *)

  val states : t -> int
  (** Total states so far (events + n). *)

  val messages : t -> int
  (** Message ids allocated so far. *)

  val close : t -> unit
  (** Assemble header, index and sections into [path] and delete the
      spill file. The writer must not be used afterwards. *)

  val abort : t -> unit
  (** Drop the spill file without writing [path] (error paths). *)
end

(** {2 Zero-copy reading} *)

type reader
(** An open btrace file: a validated header/index over an mmap'd
    [Bigarray] (unmapped when the reader is GC'd). Ops and pred flags
    are decoded on access straight from the mapping — opening a file
    costs O(n), not O(events). *)

val openfile : string -> reader
(** @raise Corrupt on structural damage (header/index validation is
    eager; per-event content is validated on access). *)

val of_string : string -> reader
(** Reader over an in-memory image (copies into a [Bigarray]). *)

val source : reader -> Computation.Stream.source
(** The cursor interface detectors and {!Wcp_slice.Slice} consume; its
    accessors raise {!Corrupt} on out-of-range event content. *)

val trace_bytes : reader -> int
(** On-disk size of the mapping. *)

val num_processes : reader -> int

val num_messages : reader -> int

val total_events : reader -> int
