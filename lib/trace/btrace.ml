(* wcp-btrace/1: the compact binary trace store (DESIGN.md §12).

   Layout (all multi-byte fields little-endian unsigned 64-bit, all
   sections 8-byte aligned):

     0   magic "wcpbtrc1"
     8   n          number of processes
     16  num_msgs   messages (ids are dense, 0-based)
     24  total_ops  events across all processes
     32  index      n records of 3 u64: ops_off, num_ops, pred_off
     ..  sections   per process, in id order: packed ops, pred bitset

   One event is one u64 word in the style of [Messages.Snap_dd_packed]:
   bit 0 is the kind (0 = send, 1 = receive), bits 1-23 the destination
   (sends only; zero for receives), bits 24-62 the message id. Bit 63
   is always clear, so a word round-trips through a native OCaml int.
   The pred section is a bitset, LSB-first within each byte: bit
   [s - 1] is the flag of state [s]; the section is zero-padded to a
   u64 boundary. Offsets are canonical (each section starts where the
   previous one ends) and validated on open. *)

let magic = "wcpbtrc1"

let header_bytes = 32

let index_entry_bytes = 24

let max_dst = (1 lsl 23) - 1

let max_msg = (1 lsl 39) - 1

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

let is_magic s =
  String.length s >= String.length magic
  && String.sub s 0 (String.length magic) = magic

(* Number of u64 words of the pred bitset of a process with [num_ops]
   events (= [num_ops + 1] states, one bit each, rounded up). *)
let pred_words num_ops = (num_ops + 64) / 64

let pred_bytes num_ops = 8 * pred_words num_ops

let buf_add_u64 buf v =
  for k = 0 to 7 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * k)) land 0xff))
  done

let pack_op = function
  | Computation.Send { dst; msg } ->
      if dst < 0 || dst > max_dst then
        invalid_arg "Btrace: destination out of the 23-bit field";
      if msg < 0 || msg > max_msg then
        invalid_arg "Btrace: message id out of the 39-bit field";
      (msg lsl 24) lor (dst lsl 1)
  | Computation.Recv { msg } ->
      if msg < 0 || msg > max_msg then
        invalid_arg "Btrace: message id out of the 39-bit field";
      (msg lsl 24) lor 1

(* ------------------------------------------------------------------ *)
(* Dense encode (the [convert] path: the computation already exists)   *)
(* ------------------------------------------------------------------ *)

let add_pred_bits buf flag_at ~states =
  let acc = ref 0 and bits = ref 0 and written = ref 0 in
  for s = 1 to states do
    if flag_at s then acc := !acc lor (1 lsl !bits);
    incr bits;
    if !bits = 8 then begin
      Buffer.add_char buf (Char.chr !acc);
      incr written;
      acc := 0;
      bits := 0
    end
  done;
  if !bits > 0 then begin
    Buffer.add_char buf (Char.chr !acc);
    incr written
  end;
  while !written mod 8 <> 0 do
    Buffer.add_char buf '\000';
    incr written
  done

let encode comp =
  let n = Computation.n comp in
  if n > max_dst then invalid_arg "Btrace.encode: too many processes";
  let num_ops = Array.init n (fun i -> Computation.num_states comp i - 1) in
  let total_ops = Array.fold_left ( + ) 0 num_ops in
  let buf =
    Buffer.create
      (header_bytes + (index_entry_bytes * n) + (8 * total_ops) + (16 * n))
  in
  Buffer.add_string buf magic;
  buf_add_u64 buf n;
  buf_add_u64 buf (Array.length (Computation.messages comp));
  buf_add_u64 buf total_ops;
  let off = ref (header_bytes + (index_entry_bytes * n)) in
  for i = 0 to n - 1 do
    buf_add_u64 buf !off;
    buf_add_u64 buf num_ops.(i);
    let pred_off = !off + (8 * num_ops.(i)) in
    buf_add_u64 buf pred_off;
    off := pred_off + pred_bytes num_ops.(i)
  done;
  for i = 0 to n - 1 do
    List.iter (fun op -> buf_add_u64 buf (pack_op op)) (Computation.ops comp i);
    add_pred_bits buf
      (fun s -> Computation.pred comp (State.make ~proc:i ~index:s))
      ~states:(num_ops.(i) + 1)
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Streaming writer                                                    *)
(* ------------------------------------------------------------------ *)

module Writer = struct
  (* Per-process append stream. Full buffers spill to one shared temp
     file in recorded chunks, so writer memory is O(n) buffers however
     long the trace grows; [close] stitches the chunks into the final
     per-process sections. *)
  type spool = {
    sbuf : Buffer.t;
    mutable chunks : (int * int) list;  (* (tmp offset, length), newest first *)
  }

  type t = {
    path : string;
    tmp_path : string;
    tmp : out_channel;
    mutable tmp_len : int;
    n : int;
    ops : spool array;
    preds : spool array;
    num_ops : int array;
    pred_acc : int array;  (* partial pred byte; always holds the last bit *)
    pred_bits : int array;  (* bits live in pred_acc, 1..8 *)
    pred_bytes_out : int array;  (* full bytes already appended *)
    mutable next_msg : int;
    mutable closed : bool;
  }

  let spill_threshold = 1 lsl 16

  let new_spool () = { sbuf = Buffer.create 1024; chunks = [] }

  let spill t sp =
    let len = Buffer.length sp.sbuf in
    if len > 0 then begin
      Buffer.output_buffer t.tmp sp.sbuf;
      sp.chunks <- (t.tmp_len, len) :: sp.chunks;
      t.tmp_len <- t.tmp_len + len;
      Buffer.clear sp.sbuf
    end

  let maybe_spill t sp =
    if Buffer.length sp.sbuf >= spill_threshold then spill t sp

  let create path ~n =
    if n < 1 then invalid_arg "Btrace.Writer.create: n must be positive";
    if n > max_dst then invalid_arg "Btrace.Writer.create: too many processes";
    let tmp_path = path ^ ".spill" in
    {
      path;
      tmp_path;
      tmp = open_out_bin tmp_path;
      tmp_len = 0;
      n;
      ops = Array.init n (fun _ -> new_spool ());
      preds = Array.init n (fun _ -> new_spool ());
      num_ops = Array.make n 0;
      pred_acc = Array.make n 0;
      (* State 1 exists before any event, flag false (Builder parity). *)
      pred_bits = Array.make n 1;
      pred_bytes_out = Array.make n 0;
      next_msg = 0;
      closed = false;
    }

  let check_proc t p ~what =
    if p < 0 || p >= t.n then
      invalid_arg (Printf.sprintf "Btrace.Writer.%s: no process %d" what p)

  (* Append the new state's pred bit (false until [set_pred]). The full
     byte is flushed lazily, on the NEXT append, so the current state's
     bit is always still in the accumulator and [set_pred] can flip it. *)
  let push_state_bit t i =
    if t.pred_bits.(i) = 8 then begin
      let sp = t.preds.(i) in
      Buffer.add_char sp.sbuf (Char.chr t.pred_acc.(i));
      t.pred_bytes_out.(i) <- t.pred_bytes_out.(i) + 1;
      maybe_spill t sp;
      t.pred_acc.(i) <- 0;
      t.pred_bits.(i) <- 0
    end;
    t.pred_bits.(i) <- t.pred_bits.(i) + 1

  let push_op t i word =
    let sp = t.ops.(i) in
    buf_add_u64 sp.sbuf word;
    maybe_spill t sp;
    t.num_ops.(i) <- t.num_ops.(i) + 1;
    push_state_bit t i

  let send t ~src ~dst =
    check_proc t src ~what:"send";
    check_proc t dst ~what:"send";
    if src = dst then invalid_arg "Btrace.Writer.send: self-send";
    let id = t.next_msg in
    if id > max_msg then invalid_arg "Btrace.Writer.send: message id overflow";
    t.next_msg <- id + 1;
    push_op t src ((id lsl 24) lor (dst lsl 1));
    id

  let recv t ~dst ~msg =
    check_proc t dst ~what:"recv";
    if msg < 0 || msg >= t.next_msg then
      invalid_arg "Btrace.Writer.recv: unknown message";
    push_op t dst ((msg lsl 24) lor 1)

  let set_pred t ~proc v =
    check_proc t proc ~what:"set_pred";
    let m = 1 lsl (t.pred_bits.(proc) - 1) in
    t.pred_acc.(proc) <-
      (if v then t.pred_acc.(proc) lor m else t.pred_acc.(proc) land lnot m)

  let states t = Array.fold_left ( + ) t.n t.num_ops

  let messages t = t.next_msg

  let abort t =
    if not t.closed then begin
      t.closed <- true;
      close_out_noerr t.tmp;
      try Sys.remove t.tmp_path with Sys_error _ -> ()
    end

  let close t =
    if t.closed then invalid_arg "Btrace.Writer.close: already closed";
    t.closed <- true;
    let finish () =
      for i = 0 to t.n - 1 do
        (* Trailing pred byte (the accumulator always holds >= 1 bit),
           then zero-pad the section to a u64 boundary. *)
        let sp = t.preds.(i) in
        Buffer.add_char sp.sbuf (Char.chr t.pred_acc.(i));
        t.pred_bytes_out.(i) <- t.pred_bytes_out.(i) + 1;
        while t.pred_bytes_out.(i) mod 8 <> 0 do
          Buffer.add_char sp.sbuf '\000';
          t.pred_bytes_out.(i) <- t.pred_bytes_out.(i) + 1
        done;
        spill t t.ops.(i);
        spill t sp
      done;
      close_out t.tmp;
      let total_ops = Array.fold_left ( + ) 0 t.num_ops in
      let oc = open_out_bin t.path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          let head =
            Buffer.create (header_bytes + (index_entry_bytes * t.n))
          in
          Buffer.add_string head magic;
          buf_add_u64 head t.n;
          buf_add_u64 head t.next_msg;
          buf_add_u64 head total_ops;
          let off = ref (header_bytes + (index_entry_bytes * t.n)) in
          for i = 0 to t.n - 1 do
            buf_add_u64 head !off;
            buf_add_u64 head t.num_ops.(i);
            let pred_off = !off + (8 * t.num_ops.(i)) in
            buf_add_u64 head pred_off;
            off := pred_off + pred_bytes t.num_ops.(i)
          done;
          Buffer.output_buffer oc head;
          let ic = open_in_bin t.tmp_path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () ->
              let block = Bytes.create 65536 in
              let copy (tmp_off, len) =
                seek_in ic tmp_off;
                let left = ref len in
                while !left > 0 do
                  let k = min !left (Bytes.length block) in
                  really_input ic block 0 k;
                  output oc block 0 k;
                  left := !left - k
                done
              in
              for i = 0 to t.n - 1 do
                List.iter copy (List.rev t.ops.(i).chunks);
                List.iter copy (List.rev t.preds.(i).chunks)
              done))
    in
    Fun.protect
      ~finally:(fun () -> try Sys.remove t.tmp_path with Sys_error _ -> ())
      finish
end

let write_file path comp =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode comp))

(* ------------------------------------------------------------------ *)
(* Zero-copy reader                                                    *)
(* ------------------------------------------------------------------ *)

type data = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type reader = {
  data : data;
  r_n : int;
  num_msgs : int;
  total_ops : int;
  ops_off : int array;
  nops : int array;
  pred_off : int array;
}

let byte (d : data) i = Char.code (Bigarray.Array1.unsafe_get d i)

let get_u64 d off =
  let hi = byte d (off + 7) in
  if hi land 0x80 <> 0 then
    corrupt "field at byte %d exceeds the 63-bit OCaml int range" off;
  byte d off
  lor (byte d (off + 1) lsl 8)
  lor (byte d (off + 2) lsl 16)
  lor (byte d (off + 3) lsl 24)
  lor (byte d (off + 4) lsl 32)
  lor (byte d (off + 5) lsl 40)
  lor (byte d (off + 6) lsl 48)
  lor (hi lsl 56)

let of_bigarray (data : data) =
  let len = Bigarray.Array1.dim data in
  if len < header_bytes then corrupt "truncated header (%d bytes)" len;
  for k = 0 to String.length magic - 1 do
    if Bigarray.Array1.get data k <> magic.[k] then
      corrupt "bad magic (not a wcp-btrace/1 file)"
  done;
  let n = get_u64 data 8 in
  if n < 1 then corrupt "n must be >= 1, got %d" n;
  if n > max_dst then corrupt "implausible process count %d" n;
  let num_msgs = get_u64 data 16 in
  let total_ops = get_u64 data 24 in
  if len < header_bytes + (index_entry_bytes * n) then
    corrupt "truncated index (%d bytes for n = %d)" len n;
  let ops_off = Array.make n 0 in
  let nops = Array.make n 0 in
  let pred_off = Array.make n 0 in
  let expect = ref (header_bytes + (index_entry_bytes * n)) in
  let seen_ops = ref 0 in
  for i = 0 to n - 1 do
    let base = header_bytes + (index_entry_bytes * i) in
    ops_off.(i) <- get_u64 data base;
    nops.(i) <- get_u64 data (base + 8);
    pred_off.(i) <- get_u64 data (base + 16);
    (* Before any arithmetic on the count: a 63-bit count could make
       [8 * nops] wrap and defeat the canonical-offset checks below. *)
    if nops.(i) > len / 8 then
      corrupt "process %d claims %d events in a %d-byte file" i nops.(i) len;
    if ops_off.(i) <> !expect then
      corrupt "process %d ops section at byte %d, expected %d" i ops_off.(i)
        !expect;
    if pred_off.(i) <> ops_off.(i) + (8 * nops.(i)) then
      corrupt "process %d pred section at byte %d, expected %d" i pred_off.(i)
        (ops_off.(i) + (8 * nops.(i)));
    expect := pred_off.(i) + pred_bytes nops.(i);
    seen_ops := !seen_ops + nops.(i);
    if !expect > len then
      corrupt "process %d sections extend to byte %d of a %d-byte file" i
        !expect len
  done;
  if !expect <> len then
    corrupt "trailing garbage: sections end at byte %d of %d" !expect len;
  if !seen_ops <> total_ops then
    corrupt "header says %d events, index sums to %d" total_ops !seen_ops;
  { data; r_n = n; num_msgs; total_ops; ops_off; nops; pred_off }

let openfile path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let data =
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let size = (Unix.fstat fd).Unix.st_size in
        if size < header_bytes then corrupt "truncated header (%d bytes)" size;
        Bigarray.array1_of_genarray
          (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| -1 |]))
  in
  of_bigarray data

let trace_bytes r = Bigarray.Array1.dim r.data

let num_processes r = r.r_n

let num_messages r = r.num_msgs

let total_events r = r.total_ops

let op_at r ~proc ~k =
  if proc < 0 || proc >= r.r_n then corrupt "no process %d" proc;
  if k < 0 || k >= r.nops.(proc) then
    corrupt "process %d has no event %d" proc k;
  let w = get_u64 r.data (r.ops_off.(proc) + (8 * k)) in
  let msg = w lsr 24 in
  if msg >= r.num_msgs then
    corrupt "process %d event %d: message %d out of range" proc k msg;
  if w land 1 = 1 then Computation.Recv { msg }
  else begin
    let dst = (w lsr 1) land max_dst in
    if dst >= r.r_n then
      corrupt "process %d event %d: send to invalid process %d" proc k dst;
    Computation.Send { dst; msg }
  end

let pred_at r ~proc ~state =
  if proc < 0 || proc >= r.r_n then corrupt "no process %d" proc;
  if state < 1 || state > r.nops.(proc) + 1 then
    corrupt "process %d has no state %d" proc state;
  let bit = state - 1 in
  let b = byte r.data (r.pred_off.(proc) + (bit lsr 3)) in
  b land (1 lsl (bit land 7)) <> 0

let source r =
  {
    Computation.Stream.src_n = r.r_n;
    num_ops = (fun i -> if i < 0 || i >= r.r_n then corrupt "no process %d" i else r.nops.(i));
    op = (fun ~proc ~k -> op_at r ~proc ~k);
    pred = (fun ~proc ~state -> pred_at r ~proc ~state);
  }

let read_file path = Computation.Stream.materialize (source (openfile path))

let of_string s =
  let len = String.length s in
  let a = Bigarray.Array1.create Bigarray.char Bigarray.c_layout len in
  for i = 0 to len - 1 do
    Bigarray.Array1.set a i s.[i]
  done;
  of_bigarray a

let decode s = Computation.Stream.materialize (source (of_string s))
