(** A recorded distributed computation (one run of a distributed
    program, paper §2).

    Each of the [n] processes executes a sequence of communication
    events (sends and receives). The interval between two consecutive
    events is a {e local state}; process [i] with [e] events has
    [e + 1] states, indexed 1-based (see {!State}). Every state carries
    the truth value of that process's local predicate — the only part
    of the program state the detection algorithms need.

    Derived data computed once at construction time:
    - the vector clock of every state (Fig. 2 discipline);
    - the scalar clock of every state (§4.1) — identically the state's
      index, since the counter is incremented on every send/receive;
    - the direct dependence (§4.1) recorded at each receive.

    Construction validates that the run is causally sound: every
    message is sent exactly once and received exactly once, by the
    addressed process, and the send precedes the receive in some
    linearization (no causal cycles). *)

open Wcp_clocks

type op =
  | Send of { dst : int; msg : int }
  | Recv of { msg : int }
      (** One communication event. [msg] identifiers are global,
          dense, and 0-based. *)

type message = {
  id : int;
  src : int;
  src_state : int;  (** state of [src] from which the message was sent *)
  dst : int;
  dst_state : int;  (** state of [dst] entered upon receipt *)
}

type t

exception Invalid of string
(** Raised by {!of_raw} (and the codec) on causally unsound input. *)

val of_raw : ops:op list array -> pred:bool array array -> t
(** [of_raw ~ops ~pred] builds a computation from per-process event
    lists. [pred.(i)] must have length [List.length ops.(i) + 1]: one
    truth value per state.
    @raise Invalid if the run is not a valid computation. *)

val of_arrays : ops:op array array -> pred:bool array array -> t
(** Like {!of_raw} but from per-process event {e arrays}, which the
    computation takes ownership of — the caller must not mutate them
    afterwards. The allocation-lean entry point used by
    {!Builder.finish}; [of_raw] is a copying wrapper around it. *)

val n : t -> int
(** Number of processes. *)

val num_states : t -> int -> int
(** Number of states of process [i] (at least 1). *)

val total_states : t -> int

val ops : t -> int -> op list
(** Communication events of process [i], in order. *)

val messages : t -> message array
(** All messages, indexed by id. *)

val pred : t -> State.t -> bool
(** Truth of the local predicate in the given state. *)

val vc : t -> State.t -> Vector_clock.t
(** Vector clock of the given state (full [n]-sized vector). *)

val dep_at : t -> State.t -> Dependence.t option
(** The direct dependence recorded at the transition {e into} the given
    state: [Some {src; clock}] iff that transition was the receipt of a
    message sent by [src] from its state [clock]. [None] for state 1
    and for states entered by a send. *)

val happened_before : t -> State.t -> State.t -> bool
(** Lamport's happened-before between local states, answered from the
    vector clocks in O(1). *)

val concurrent : t -> State.t -> State.t -> bool
(** Neither state happened before the other. States of the same
    process are never concurrent (unless equal, which is also not
    concurrent). *)

(** {2 Unchecked variants}

    Same answers as {!vc} / {!happened_before} / {!concurrent} but
    without re-validating that the states exist. For inner loops that
    query many states already known to be in range (e.g. the executable
    Lemma 3.1 / 4.2 invariant checks, which run per token hop).
    Out-of-range states are undefined behaviour (array bounds aside). *)

val vc_unsafe : t -> State.t -> Vector_clock.t

val happened_before_unsafe : t -> State.t -> State.t -> bool

val concurrent_unsafe : t -> State.t -> State.t -> bool

val candidates : t -> int -> int list
(** Indices of process [i]'s states whose local predicate is true —
    exactly the states for which the Fig. 2 application process emits a
    local snapshot. *)

val max_events_per_process : t -> int
(** The paper's [m]: the largest number of messages sent or received by
    any single process. *)

val sends_in : t -> proc:int -> lo:int -> hi:int -> bool
(** [sends_in t ~proc ~lo ~hi] is [true] iff process [proc] performs a
    send while in some state [s] with [lo <= s <= hi] (bounds are
    clamped to the valid state range; an empty range is [false]).
    Answered in O(1) from a prefix-sum table. This is the query behind
    interval gating: a candidate state may be skipped exactly when no
    send separates it from the previously shipped candidate. *)

val reflag : t -> pred:(proc:int -> state:int -> bool) -> t
(** The same communication structure with different local-predicate
    flags — used to hand a derived WCP (e.g. one DNF disjunct of a
    boolean predicate) to the detection machinery. Clocks and
    dependences are shared, not recomputed. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line shape summary (process count, states, messages). *)

(** {2 Streaming access}

    A [Stream.source] is the minimal random-access view of a recorded
    run that the replay/detection side needs: the per-process event
    scripts and per-state predicate flags, behind accessor functions
    instead of materialised arrays. The dense [t] adapts to one
    trivially ({!Stream.of_computation}); the binary trace store
    ({!Btrace}) serves one straight off an mmap'd file, so a slice can
    be built — and detection run — without ever holding the dense
    computation (its vector clocks dominate the footprint) in memory. *)
module Stream : sig
  type source = {
    src_n : int;  (** number of processes *)
    num_ops : int -> int;  (** events of process [i] *)
    op : proc:int -> k:int -> op;  (** [k]-th event (0-based) of [proc] *)
    pred : proc:int -> state:int -> bool;
        (** predicate flag of the 1-based [state] of [proc] *)
  }

  val of_computation : t -> source
  (** Zero-cost dense adapter (accessors index the existing arrays). *)

  val materialize : source -> t
  (** Pull every event and flag through the cursor and build (and
      re-validate) the dense computation.
      @raise Invalid if the streamed run is causally unsound. *)
end
