(** Plain-text serialization of computations.

    Format (line-oriented, [#] starts a comment):
    {v
    wcp-trace v1
    n 3
    ops 0 S1:0 R:2 S2:1
    pred 0 1 0 1 1
    ops 1 R:0 ...
    pred 1 ...
    v}
    [Sd:m] is "send message [m] to process [d]"; [R:m] is "receive
    message [m]". The [pred] line for process [i] lists one [0]/[1]
    flag per state ([number of ops + 1] flags).

    Decoding re-validates causal soundness, so a trace file can never
    produce an inconsistent in-memory computation; a causally unsound
    trace raises {!Parse_error} carrying the [ops]/[pred] line that
    introduced the offending data.

    Both read entry points sniff the {!Btrace.magic} bytes and fall
    through to the binary store when present, so every consumer of
    [decode]/[read_file] accepts either format transparently; binary
    structural damage surfaces as a [Parse_error] at line 0. *)

exception Parse_error of { line : int; message : string }

val encode : Computation.t -> string

val decode : string -> Computation.t
(** @raise Parse_error on syntax errors, causally unsound content, and
    corrupt btrace images. *)

val write_file : string -> Computation.t -> unit
(** {!encode} streamed to [path] per process (byte-identical to
    [encode], without materialising the whole string). *)

val read_file : string -> Computation.t
(** Slurp and {!decode} (btrace files are mmap'd instead). *)
