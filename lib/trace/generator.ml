open Wcp_util

type params = {
  n : int;
  sends_per_process : int;
  p_pred : float;
  p_recv : float;
}

let default_params = { n = 4; sends_per_process = 10; p_pred = 0.5; p_recv = 0.5 }

let validate { n; sends_per_process; _ } =
  if n < 1 then invalid_arg "Generator.random: n must be >= 1";
  if n = 1 && sends_per_process > 0 then
    invalid_arg "Generator.random: a single process has nobody to send to"

(* The interleaving simulation, polymorphic in the event sink: [send]
   returns a message handle that [recv] later consumes, [set_pred]
   flags the process's current state. The RNG draw sequence is a
   function of the parameters only — never of the sink — so every sink
   (dense Builder, streaming btrace Writer) sees byte-identical runs
   for equal seeds. *)
let generate_into (type a) ~params ~seed ~(send : src:int -> dst:int -> a)
    ~(recv : dst:int -> a -> unit) ~(set_pred : proc:int -> bool -> unit) () =
  let { n; sends_per_process; p_pred; p_recv } = params in
  validate params;
  let rng = Rng.create seed in
  for i = 0 to n - 1 do
    set_pred ~proc:i (Rng.bernoulli rng p_pred)
  done;
  let sends_left = Array.make n sends_per_process in
  (* pending.(i): messages in flight toward process i, newest last — an
     array-backed bag so drawing the k-th-newest element allocates
     nothing (the list version consed O(k) cells per receive, the
     single largest allocation in big sweeps). *)
  let pending : a array array = Array.make n [||] in
  let pending_count = Array.make n 0 in
  let total_pending = ref 0 in
  let total_sends = ref (n * sends_per_process) in
  let receive_on i =
    let k = Rng.int rng pending_count.(i) in
    let arr = pending.(i) in
    let c = pending_count.(i) in
    (* k counts from the newest (the historical list order); shift the
       suffix down to preserve the remaining order exactly. *)
    let j = c - 1 - k in
    let m = arr.(j) in
    for t = j to c - 2 do
      arr.(t) <- arr.(t + 1)
    done;
    pending_count.(i) <- c - 1;
    decr total_pending;
    recv ~dst:i m;
    set_pred ~proc:i (Rng.bernoulli rng p_pred)
  in
  let send_from i =
    let dst =
      let d = Rng.int rng (n - 1) in
      if d >= i then d + 1 else d
    in
    let m = send ~src:i ~dst in
    let c = pending_count.(dst) in
    if c = Array.length pending.(dst) then begin
      let fresh = Array.make (max 8 (2 * c)) m in
      Array.blit pending.(dst) 0 fresh 0 c;
      pending.(dst) <- fresh
    end;
    pending.(dst).(c) <- m;
    pending_count.(dst) <- c + 1;
    incr total_pending;
    sends_left.(i) <- sends_left.(i) - 1;
    decr total_sends;
    set_pred ~proc:i (Rng.bernoulli rng p_pred)
  in
  while !total_sends > 0 || !total_pending > 0 do
    let i = Rng.int rng n in
    let can_recv = pending_count.(i) > 0 in
    let can_send = sends_left.(i) > 0 in
    if can_recv && ((not can_send) || Rng.bernoulli rng p_recv) then receive_on i
    else if can_send then send_from i
    (* else: this process is idle; the loop retries another process. *)
  done

let random ?(params = default_params) ~seed () =
  validate params;
  let b = Builder.create ~n:params.n in
  generate_into ~params ~seed
    ~send:(fun ~src ~dst -> Builder.send b ~src ~dst)
    ~recv:(fun ~dst m -> Builder.recv b ~dst m)
    ~set_pred:(fun ~proc v -> Builder.set_pred b ~proc v)
    ();
  Builder.finish b

let random_btrace ?(params = default_params) ~seed path =
  validate params;
  let w = Btrace.Writer.create path ~n:params.n in
  (try
     generate_into ~params ~seed
       ~send:(fun ~src ~dst -> Btrace.Writer.send w ~src ~dst)
       ~recv:(fun ~dst msg -> Btrace.Writer.recv w ~dst ~msg)
       ~set_pred:(fun ~proc v -> Btrace.Writer.set_pred w ~proc v)
       ()
   with e ->
     Btrace.Writer.abort w;
     raise e);
  let states = Btrace.Writer.states w in
  let messages = Btrace.Writer.messages w in
  Btrace.Writer.close w;
  (states, messages)

let random_procs rng ~n ~width =
  if width < 1 || width > n then invalid_arg "Generator.random_procs";
  let all = Array.init n Fun.id in
  Rng.shuffle rng all;
  let chosen = Array.sub all 0 width in
  Array.sort compare chosen;
  chosen
