(** Structured trace events — the vocabulary of the observability plane.

    One constructor per observable fact: engine-level sends and
    deliveries, snapshot arrivals at monitors, candidate advances and
    the per-algorithm elimination steps (the Fig. 3 vector-clock
    comparison, the §4 direct-dependence poll, the centralized
    checker's happened-before test, a GCP channel-predicate
    violation), token hops, poll/reply exchanges, watchdog probes and
    token regenerations, and transport retransmits.

    Events deliberately carry {e copies} of any mutable protocol state
    (clock vectors, cut arrays): a recorded event is immutable even
    though the algorithm keeps mutating its working arrays. *)

type body =
  | Run_meta of { algo : string; n : int; width : int }
      (** First event of a run: detector name, application process
          count, spec width. Lets consumers map engine process ids to
          [P_i] / [M_i] roles ([monitor_of ~n p = n + p]). *)
  | Sent of { dst : int; bits : int }  (** Engine-level send. *)
  | Delivered of { src : int }  (** Engine-level delivery. *)
  | Snapshot_arrived of { src : int; state : int }
      (** A local snapshot reached its monitor. *)
  | Candidate_advanced of { k : int; proc : int; state : int }
      (** Monitor [k] accepted a fresh candidate: [G[k] := state]. *)
  | Vc_advanced of {
      by_k : int;  (** spec slot of the eliminating monitor *)
      by_proc : int;
      by_state : int;  (** its candidate's state index *)
      by_clock : int array;  (** its candidate's (projected) vector clock *)
      victim_k : int;  (** spec slot whose entry was overwritten *)
      victim_proc : int;
      victim_state : int;  (** previous [G[victim_k]] (0 = none yet) *)
      witness : int;  (** [by_clock.(victim_k)], the >= witness *)
    }
      (** The Fig. 3 elimination: [by_clock.(victim_k) >= G[victim_k]]
          proves [(P_victim, victim_state)] happened before the
          candidate of [by_k], so [G[victim_k] := witness], color red. *)
  | Dd_eliminated of {
      victim_proc : int;
      victim_state : int;  (** previous [M.G] of the polled monitor *)
      poll_clock : int;
      poller_proc : int;
    }
      (** The Fig. 5 elimination: a poll carrying [poll_clock >= G]
          proves a direct dependence [(P_victim, G) ->_d candidate],
          so the polled monitor turns red with [G := poll_clock]. *)
  | Chain_extended of { after_proc : int; proc : int }
      (** [proc] became red and was spliced into the red chain after
          [after_proc] (§4). *)
  | Hb_eliminated of {
      victim_k : int;
      victim_proc : int;
      victim_state : int;
      victim_clock : int array;
      by_k : int;
      by_proc : int;
      by_state : int;
      by_clock : int array;
    }
      (** Centralized checker: [victim]'s candidate happened before
          [by]'s ([by_clock.(victim_k) >= victim_clock.(victim_k)]). *)
  | Channel_eliminated of {
      channel : string;
      victim_proc : int;
      victim_state : int;
    }
      (** GCP: a violated channel predicate forced this endpoint. *)
  | Token_sent of { seq : int; dst : int; g : int array }
  | Token_received of { seq : int }
  | Token_regenerated of { seq : int; dst : int }
      (** Watchdog re-sent a presumed-lost token. *)
  | Poll_sent of { dst : int; clock : int }
  | Poll_replied of { dst : int; became_red : bool }
  | Probe_sent of { seq : int; dst : int }
  | Retransmitted of { dst : int; frame_seq : int }
      (** Reliable transport re-sent an unacked frame. *)
  | Merged of { round : int }  (** Multi-token leader merge (§3.5). *)
  | Round_advanced of { round : int; frontier : int array; eliminated : int }
      (** Parallel checker: one frontier-advance round finished.
          [frontier] holds the per-slot state indices standing after
          the round; [eliminated] counts candidates removed by it. *)
  | Checkpoint_taken of { bytes : int }
      (** A monitor serialized its resumable state ([Checkpoint]). *)
  | Restored of { bytes : int }
      (** A restarting monitor rebuilt itself from its checkpoint. *)
  | Resync_requested of { peer : int; expected : int }
      (** A restored receiver asked [peer] to replay its flow from
          frame [expected] (the reconnect handshake). *)
  | Replayed of { dst : int; from_seq : int; count : int }
      (** A sender answered a reconnect: [count] buffered frames
          starting at [from_seq] were retransmitted to [dst]. *)
  | Watchdog_stood_down of { seq : int; dst : int }
      (** The watchdog gave up on token [seq] after [max_probes]
          unproductive probes of [dst]. *)
  | Phase_marked of { name : string }
      (** A run-lifecycle phase starts here ("slice", "build",
          "detect", "recovery"). The mark closes the previous phase:
          the telemetry plane attributes everything — events, allocated
          bytes — between two marks to the phase the {e earlier} mark
          opened. Emitted with [proc = -1] for pre-engine phases, so a
          ["slice"] mark may legally precede [Run_meta]. *)
  | Detected of { procs : int array; states : int array }
  | No_detection_declared

type t = { seq : int; time : float; proc : int; body : body }
(** [seq] is the recorder's monotonically increasing sequence number,
    [time] the simulation clock at emission, [proc] the engine process
    id the event is attributed to (-1 for pre-run metadata). *)

val kind : body -> string
(** Stable wire name of the constructor (the JSONL ["type"] field). *)

val kinds : string list
(** All wire names, for schema validation. *)

val is_elimination : body -> bool

val equal : t -> t -> bool
(** Structural equality (arrays compared element-wise). *)

val equal_body : body -> body -> bool

val pp : Format.formatter -> t -> unit

val pp_body : Format.formatter -> body -> unit

val pp_vec : Format.formatter -> int array -> unit
(** Renders [<3,5,1>]. *)
