(** Always-on telemetry plane: sliding-window aggregation over a live
    event stream.

    A [Telemetry.t] consumes {!Event.t} values one at a time — in
    practice as a {!Recorder.attach_tap} on a (possibly tiny) recorder
    — and emits a deterministic [wcp-metrics/1] JSONL stream through
    its sink {e while the run is still going}:

    - a [meta] prologue copied from the run's [Run_meta] event;
    - one [window] line per elapsed sim-time interval ([every] units):
      per-window event/elimination/hop/poll/retransmit/checkpoint
      counts, exact window hop-latency p50/p95, and cumulative health
      gauges (retransmits, regenerations, checkpoints, watchdog
      stand-downs) sampled at the window boundary;
    - one [phase] line per completed run phase (delimited by
      {!Event.Phase_marked} marks): sim-time extent, events and
      GC-allocated bytes attributed to the phase;
    - a [total] trailer on {!close}.

    Everything is driven by event {e sim} timestamps — the plane never
    reads wall clocks or the engine's RNG, so an attached telemetry tap
    cannot perturb a run, and equal seeds give byte-identical streams.

    The same data feeds a cumulative {!Metrics} registry, exposable at
    any moment as a Prometheus text page ({!prometheus}). *)

type t

val schema : string
(** ["wcp-metrics/1"]. *)

val default_every : float
(** [5.0] sim-time units per window. *)

val create :
  ?every:float -> ?alloc:(unit -> float) -> sink:(string -> unit) -> unit -> t
(** [sink] receives one JSONL line at a time (no trailing newline).
    [every] (default {!default_every}) is the window width in sim-time
    units. [alloc] (default [Gc.allocated_bytes]) samples cumulative
    allocated bytes for the per-phase profile; pass [fun () -> 0.] to
    strip allocation data from the stream (e.g. when replaying a log
    post-hoc, where the numbers would be meaningless).
    @raise Invalid_argument if [every <= 0]. *)

val attach : t -> Recorder.t -> unit
(** [Recorder.attach_tap r (feed t)]. *)

val feed : t -> Event.t -> unit
(** Consume one event: close any windows its timestamp has passed
    (emitting their lines), then tally it. Events must arrive in
    nondecreasing time order, which recorder emission order
    guarantees. No-op after {!close}. *)

val close : t -> unit
(** Flush the final partial window (if nonempty) and the open phase,
    then emit the [total] trailer. Idempotent. *)

val registry : t -> Metrics.t
(** The live cumulative registry behind the stream (counters plus the
    full-run hop-latency histogram). *)

val prometheus : t -> string
(** [Metrics.to_prometheus (registry t)]: the current cumulative state
    as a Prometheus text exposition page. *)

val lines : t -> int
(** Lines handed to the sink so far. *)

(** {2 The [wcp-metrics/1] codec}

    [decode_line] structurally inverts [encode_line]; both are total
    on the lines this module emits, and the stream is
    byte-deterministic for a fixed event sequence (allocation sampling
    aside — see [alloc] above). *)

type window = {
  idx : int;  (** 0-based window index *)
  t0 : float;  (** window start (inclusive), [idx * every] *)
  t1 : float;  (** window end (exclusive) *)
  events : int;
  elims : int;
  hops : int;
  polls : int;
  snapshots : int;
  retx : int;
  probes : int;
  regens : int;
  ckpts : int;
  restores : int;
  replays : int;
  stand_downs : int;
  hop_p50 : float;  (** exact window hop-latency median (0 if no hops) *)
  hop_p95 : float;
  cum_events : int;  (** cumulative gauges at the window boundary *)
  cum_elims : int;
  cum_retx : int;
  cum_regens : int;
  cum_ckpts : int;
  cum_stand_downs : int;
}

type phase = {
  phase : string;
  p_t0 : float;
  p_t1 : float;
  alloc_bytes : int;  (** bytes GC-allocated while the phase was open *)
  p_events : int;  (** events tallied while the phase was open *)
}

type line =
  | Meta of { algo : string; n : int; width : int; every : float }
  | Window of window
  | Phase of phase
  | Total of { windows : int; events : int; elims : int; hops : int;
               phases : int }

val to_json : line -> Export.Json.t
(** The JSON tree behind {!encode_line}. Exposed so the tests can pin
    the hand-rolled window fast path against the generic emitter:
    [encode_line l = Export.Json.to_string (to_json l)] for every
    line shape. *)

val encode_line : line -> string
(** One stream line as JSON (no trailing newline). Window lines take a
    direct buffer-write fast path; the bytes are identical to
    [Export.Json.to_string (to_json l)]. *)

val decode_line : string -> (line, string) result
(** Inverse of {!encode_line}; errors name the offending field. *)

val decode : string -> (line list, string) result
(** Parse a whole stream; errors are prefixed with the 1-based line
    number. *)

val equal_line : line -> line -> bool
