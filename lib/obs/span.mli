(** Span trees derived from recorded event logs.

    A recorded log is a flat list of instants; the interesting
    structures — a token hop in flight, an elimination round, a
    crash-recovery window, a retransmit burst — are {e intervals}.
    [of_events] reconstructs them:

    - {b token}: each token send (or watchdog regeneration) paired
      with the acceptance of the same hop number, on the sender's
      track. Regenerated sends refresh the start, so under chaos the
      span is "last send to acceptance", matching
      {!Metrics.of_events}'s hop latency.
    - {b round}: the interval between consecutive parallel-checker
      [Round_advanced] events (the first round starts at the log's
      first event).
    - {b recovery}: from a monitor's [Restored] event to the last
      reconnect-handshake event of the same episode (its
      [Resync_requested]s and the [Replayed]s addressed to it).
    - {b retx-burst}: maximal groups of transport retransmits from one
      process with inter-arrival gaps of at most {!burst_gap}.

    Spans power {!Export.chrome}'s duration slices and the per-kind
    p50/p95 columns in the bench schema. Derivation is pure and
    deterministic: equal logs give equal span lists. *)

type kind = Token | Round | Recovery | Retx_burst

type t = {
  kind : kind;
  name : string;  (** Chrome slice name, e.g. ["token #3"] *)
  proc : int;  (** engine process id owning the track *)
  t0 : float;
  t1 : float;  (** [t1 >= t0]; zero-width spans are legal *)
  args : (string * int) list;  (** structured slice arguments *)
}

val kind_name : kind -> string
(** ["token" | "round" | "recovery" | "retx-burst"]. *)

val burst_gap : float
(** [2.0] sim-time units: retransmits further apart than this start a
    new burst. *)

val of_events : Event.t array -> t list
(** All spans of every kind, in derivation order (tokens and bursts by
    completion, rounds by round number, recoveries by restore time). *)

val durations : kind -> t list -> float array
(** The [t1 - t0] extents of the spans of one kind, in order. *)

val percentile : float array -> float -> float
(** Exact rank percentile of a sample (sorts a copy); 0 when empty. *)
