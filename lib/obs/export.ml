(* Exporters for recorded event logs: a JSONL codec (one event per
   line — greppable, diffable, streamable) and the Chrome trace_event
   format so a run opens directly in Perfetto / chrome://tracing.

   The JSONL side is a full codec: [decode_line] inverts [encode_line]
   structurally, which is what the schema validator and the round-trip
   property tests lean on. *)

module Json = struct
  type t =
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Error of string

  let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

  let escape_free s =
    let n = String.length s in
    let ok = ref true in
    for i = 0 to n - 1 do
      let c = String.unsafe_get s i in
      if c = '"' || c = '\\' || Char.code c < 0x20 then ok := false
    done;
    !ok

  let rec add_nat buf v =
    if v >= 10 then add_nat buf (v / 10);
    Buffer.add_char buf (Char.unsafe_chr (Char.code '0' + (v mod 10)))

  (* [string_of_int] is a C call that allocates its result; telemetry
     writes ~24 integers per window line, so spell the digits out
     directly instead. *)
  let add_int buf v =
    if v < 0 then begin
      Buffer.add_char buf '-';
      if v = min_int then begin
        (* [-v] overflows; peel one digit first. *)
        add_nat buf (-(v / 10));
        add_nat buf (-(v mod 10))
      end
      else add_nat buf (-v)
    end
    else add_nat buf v

  let add_float buf f =
    (* Integral doubles are the overwhelming case on the telemetry
       path (window boundaries, sim timestamps); print them through
       the integer pipe — same bytes the %.17g branch would produce,
       an order of magnitude cheaper. *)
    if Float.is_integer f && Float.abs f < 1e15 then begin
      add_int buf (int_of_float f);
      Buffer.add_string buf ".0"
    end
    else begin
      (* %.17g round-trips any finite double. *)
      let s = Printf.sprintf "%.17g" f in
      Buffer.add_string buf s;
      if String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s then
        Buffer.add_string buf ".0"
    end

  let rec emit buf = function
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> add_int buf i
    | Float f -> add_float buf f
    | Str s ->
        Buffer.add_char buf '"';
        if escape_free s then Buffer.add_string buf s
        else
          String.iter
            (fun c ->
              match c with
              | '"' -> Buffer.add_string buf "\\\""
              | '\\' -> Buffer.add_string buf "\\\\"
              | '\n' -> Buffer.add_string buf "\\n"
              | '\t' -> Buffer.add_string buf "\\t"
              | '\r' -> Buffer.add_string buf "\\r"
              | c when Char.code c < 0x20 ->
                  Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
              | c -> Buffer.add_char buf c)
            s;
        Buffer.add_char buf '"'
    | Arr xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            emit buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            emit buf (Str k);
            Buffer.add_char buf ':';
            emit buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    emit buf t;
    Buffer.contents buf

  let parse s =
    let len = String.length s in
    let pos = ref 0 in
    let fail fmt =
      Printf.ksprintf (fun m -> error "at byte %d: %s" !pos m) fmt
    in
    let peek () = if !pos < len then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < len
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < len && s.[!pos] = c then incr pos else fail "expected %c" c
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= len && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail "bad literal"
    in
    let number () =
      let start = !pos in
      let is_float = ref false in
      while
        !pos < len
        &&
        match s.[!pos] with
        | '0' .. '9' | '-' | '+' -> true
        | '.' | 'e' | 'E' ->
            is_float := true;
            true
        | _ -> false
      do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      if !is_float then Float (float_of_string tok)
      else
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> Float (float_of_string tok)
    in
    let string_lit () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= len then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= len then fail "unterminated escape";
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 't' -> Buffer.add_char buf '\t'
             | 'r' -> Buffer.add_char buf '\r'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
                 if !pos + 4 >= len then fail "bad \\u escape";
                 let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
                 if code < 0x80 then Buffer.add_char buf (Char.chr code)
                 else fail "non-ASCII \\u escape unsupported";
                 pos := !pos + 4
             | c -> fail "bad escape \\%c" c);
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let k = string_lit () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected , or } in object"
            in
            members []
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            Arr []
          end
          else
            let rec items acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  items (v :: acc)
              | Some ']' ->
                  incr pos;
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected , or ] in array"
            in
            items []
      | Some '"' -> Str (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some _ -> number ()
    in
    let v = value () in
    skip_ws ();
    if !pos <> len then error "trailing garbage at byte %d" !pos;
    v

  let member name = function
    | Obj kvs -> (
        match List.assoc_opt name kvs with
        | Some v -> v
        | None -> error "missing field %S" name)
    | _ -> error "not an object looking up %S" name

  let to_int = function
    | Int i -> i
    | j -> error "expected int, got %s" (to_string j)

  let to_float = function
    | Float f -> f
    | Int i -> float_of_int i
    | j -> error "expected number, got %s" (to_string j)

  let to_str = function
    | Str s -> s
    | j -> error "expected string, got %s" (to_string j)

  let to_bool = function
    | Bool b -> b
    | j -> error "expected bool, got %s" (to_string j)

  let to_int_array = function
    | Arr xs -> Array.of_list (List.map to_int xs)
    | j -> error "expected array, got %s" (to_string j)

  let of_int_array a = Arr (Array.to_list (Array.map (fun i -> Int i) a))
end

(* ------------------------------------------------------------------ *)
(* JSONL codec                                                         *)
(* ------------------------------------------------------------------ *)

let schema = "wcp-events/1"

let body_fields : Event.body -> (string * Json.t) list =
  let open Json in
  function
  | Event.Run_meta { algo; n; width } ->
      [ ("schema", Str schema); ("algo", Str algo); ("n", Int n);
        ("width", Int width) ]
  | Event.Sent { dst; bits } -> [ ("dst", Int dst); ("bits", Int bits) ]
  | Event.Delivered { src } -> [ ("src", Int src) ]
  | Event.Snapshot_arrived { src; state } ->
      [ ("src", Int src); ("state", Int state) ]
  | Event.Candidate_advanced { k; proc; state } ->
      [ ("k", Int k); ("p", Int proc); ("state", Int state) ]
  | Event.Vc_advanced
      { by_k; by_proc; by_state; by_clock; victim_k; victim_proc; victim_state;
        witness } ->
      [
        ("by_k", Int by_k);
        ("by_p", Int by_proc);
        ("by_state", Int by_state);
        ("by_clock", of_int_array by_clock);
        ("victim_k", Int victim_k);
        ("victim_p", Int victim_proc);
        ("victim_state", Int victim_state);
        ("witness", Int witness);
      ]
  | Event.Dd_eliminated { victim_proc; victim_state; poll_clock; poller_proc }
    ->
      [
        ("victim_p", Int victim_proc);
        ("victim_state", Int victim_state);
        ("poll_clock", Int poll_clock);
        ("poller_p", Int poller_proc);
      ]
  | Event.Chain_extended { after_proc; proc } ->
      [ ("after_p", Int after_proc); ("p", Int proc) ]
  | Event.Hb_eliminated
      { victim_k; victim_proc; victim_state; victim_clock; by_k; by_proc;
        by_state; by_clock } ->
      [
        ("victim_k", Int victim_k);
        ("victim_p", Int victim_proc);
        ("victim_state", Int victim_state);
        ("victim_clock", of_int_array victim_clock);
        ("by_k", Int by_k);
        ("by_p", Int by_proc);
        ("by_state", Int by_state);
        ("by_clock", of_int_array by_clock);
      ]
  | Event.Channel_eliminated { channel; victim_proc; victim_state } ->
      [
        ("channel", Str channel);
        ("victim_p", Int victim_proc);
        ("victim_state", Int victim_state);
      ]
  | Event.Token_sent { seq; dst; g } ->
      [ ("hop", Int seq); ("dst", Int dst); ("g", of_int_array g) ]
  | Event.Token_received { seq } -> [ ("hop", Int seq) ]
  | Event.Token_regenerated { seq; dst } ->
      [ ("hop", Int seq); ("dst", Int dst) ]
  | Event.Poll_sent { dst; clock } ->
      [ ("dst", Int dst); ("clock", Int clock) ]
  | Event.Poll_replied { dst; became_red } ->
      [ ("dst", Int dst); ("became_red", Bool became_red) ]
  | Event.Probe_sent { seq; dst } -> [ ("hop", Int seq); ("dst", Int dst) ]
  | Event.Retransmitted { dst; frame_seq } ->
      [ ("dst", Int dst); ("frame_seq", Int frame_seq) ]
  | Event.Merged { round } -> [ ("round", Int round) ]
  | Event.Round_advanced { round; frontier; eliminated } ->
      [
        ("round", Int round);
        ("frontier", of_int_array frontier);
        ("eliminated", Int eliminated);
      ]
  | Event.Checkpoint_taken { bytes } -> [ ("bytes", Int bytes) ]
  | Event.Restored { bytes } -> [ ("bytes", Int bytes) ]
  | Event.Resync_requested { peer; expected } ->
      [ ("peer", Int peer); ("expected", Int expected) ]
  | Event.Replayed { dst; from_seq; count } ->
      [ ("dst", Int dst); ("from_seq", Int from_seq); ("count", Int count) ]
  | Event.Watchdog_stood_down { seq; dst } ->
      [ ("hop", Int seq); ("dst", Int dst) ]
  | Event.Phase_marked { name } -> [ ("name", Str name) ]
  | Event.Detected { procs; states } ->
      [ ("procs", of_int_array procs); ("states", of_int_array states) ]
  | Event.No_detection_declared -> []

let to_json (e : Event.t) =
  Json.Obj
    (("seq", Json.Int e.seq)
    :: ("t", Json.Float e.time)
    :: ("proc", Json.Int e.proc)
    :: ("type", Json.Str (Event.kind e.body))
    :: body_fields e.body)

let encode_line e = Json.to_string (to_json e)

let body_of_json ~kind j =
  let open Json in
  let i name = to_int (member name j) in
  let arr name = to_int_array (member name j) in
  match kind with
  | "run_meta" ->
      let s = to_str (member "schema" j) in
      if s <> schema then Json.error "schema %S, expected %S" s schema;
      Event.Run_meta
        { algo = to_str (member "algo" j); n = i "n"; width = i "width" }
  | "sent" -> Event.Sent { dst = i "dst"; bits = i "bits" }
  | "delivered" -> Event.Delivered { src = i "src" }
  | "snapshot" -> Event.Snapshot_arrived { src = i "src"; state = i "state" }
  | "candidate" ->
      Event.Candidate_advanced { k = i "k"; proc = i "p"; state = i "state" }
  | "vc_advanced" ->
      Event.Vc_advanced
        {
          by_k = i "by_k";
          by_proc = i "by_p";
          by_state = i "by_state";
          by_clock = arr "by_clock";
          victim_k = i "victim_k";
          victim_proc = i "victim_p";
          victim_state = i "victim_state";
          witness = i "witness";
        }
  | "dd_eliminated" ->
      Event.Dd_eliminated
        {
          victim_proc = i "victim_p";
          victim_state = i "victim_state";
          poll_clock = i "poll_clock";
          poller_proc = i "poller_p";
        }
  | "chain_extended" ->
      Event.Chain_extended { after_proc = i "after_p"; proc = i "p" }
  | "hb_eliminated" ->
      Event.Hb_eliminated
        {
          victim_k = i "victim_k";
          victim_proc = i "victim_p";
          victim_state = i "victim_state";
          victim_clock = arr "victim_clock";
          by_k = i "by_k";
          by_proc = i "by_p";
          by_state = i "by_state";
          by_clock = arr "by_clock";
        }
  | "channel_eliminated" ->
      Event.Channel_eliminated
        {
          channel = to_str (member "channel" j);
          victim_proc = i "victim_p";
          victim_state = i "victim_state";
        }
  | "token_sent" ->
      Event.Token_sent { seq = i "hop"; dst = i "dst"; g = arr "g" }
  | "token_received" -> Event.Token_received { seq = i "hop" }
  | "token_regenerated" ->
      Event.Token_regenerated { seq = i "hop"; dst = i "dst" }
  | "poll_sent" -> Event.Poll_sent { dst = i "dst"; clock = i "clock" }
  | "poll_replied" ->
      Event.Poll_replied
        { dst = i "dst"; became_red = to_bool (member "became_red" j) }
  | "probe_sent" -> Event.Probe_sent { seq = i "hop"; dst = i "dst" }
  | "retransmit" ->
      Event.Retransmitted { dst = i "dst"; frame_seq = i "frame_seq" }
  | "merge" -> Event.Merged { round = i "round" }
  | "round" ->
      Event.Round_advanced
        {
          round = i "round";
          frontier = arr "frontier";
          eliminated = i "eliminated";
        }
  | "recovery/ckpt" -> Event.Checkpoint_taken { bytes = i "bytes" }
  | "recovery/restore" -> Event.Restored { bytes = i "bytes" }
  | "recovery/resync" ->
      Event.Resync_requested { peer = i "peer"; expected = i "expected" }
  | "recovery/replay" ->
      Event.Replayed { dst = i "dst"; from_seq = i "from_seq"; count = i "count" }
  | "wd_stand_down" -> Event.Watchdog_stood_down { seq = i "hop"; dst = i "dst" }
  | "phase" -> Event.Phase_marked { name = to_str (member "name" j) }
  | "detected" -> Event.Detected { procs = arr "procs"; states = arr "states" }
  | "no_detection" -> Event.No_detection_declared
  | k -> Json.error "unknown event type %S" k

let of_json j =
  let open Json in
  let kind = to_str (member "type" j) in
  {
    Event.seq = to_int (member "seq" j);
    time = to_float (member "t" j);
    proc = to_int (member "proc" j);
    body = body_of_json ~kind j;
  }

let decode_line line =
  match of_json (Json.parse line) with
  | e -> Ok e
  | exception Json.Error m -> Error m
  | exception Failure m -> Error m

let jsonl events =
  let buf = Buffer.create 65536 in
  Array.iter
    (fun e ->
      Json.emit buf (to_json e);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let of_jsonl s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | [ "" ] -> Ok (Array.of_list (List.rev acc))
    | line :: rest -> (
        match decode_line line with
        | Ok e -> go (lineno + 1) (e :: acc) rest
        | Error m -> Error (Printf.sprintf "line %d: %s" lineno m))
  in
  go 1 [] lines

(* ------------------------------------------------------------------ *)
(* Chrome trace_event format (Perfetto / chrome://tracing)             *)
(* ------------------------------------------------------------------ *)

(* One simulated time unit is rendered as one millisecond (ts is in
   microseconds); everything lives in pid 0 with one thread per engine
   process. The interval structure — token hops in flight, elimination
   rounds, recovery windows, retransmit bursts — is derived by [Span]
   and rendered as complete ("X") slices; the remaining algorithm,
   watchdog and recovery events are named instants ("i") carrying
   their structured JSONL fields as args. *)

let chrome_ts t = t *. 1000.0

let thread_name ~n proc =
  if n > 0 && proc >= 0 && proc < n then Printf.sprintf "P%d (app)" proc
  else if n > 0 && proc >= n && proc < 2 * n then
    Printf.sprintf "M%d (monitor)" (proc - n)
  else if n > 0 && proc = 2 * n then "leader/checker"
  else Printf.sprintf "proc %d" proc

let chrome events =
  let open Json in
  let n =
    Array.fold_left
      (fun acc (e : Event.t) ->
        match e.body with Event.Run_meta { n; _ } -> n | _ -> acc)
      0 events
  in
  let procs = Hashtbl.create 16 in
  Array.iter
    (fun (e : Event.t) ->
      if e.proc >= 0 then Hashtbl.replace procs e.proc ())
    events;
  let meta =
    Hashtbl.fold (fun proc () acc -> proc :: acc) procs []
    |> List.sort compare
    |> List.map (fun proc ->
           Obj
             [
               ("name", Str "thread_name");
               ("ph", Str "M");
               ("pid", Int 0);
               ("tid", Int proc);
               ("args", Obj [ ("name", Str (thread_name ~n proc)) ]);
             ])
  in
  (* Duration slices from the derived span tree. *)
  let slices =
    Span.of_events events
    |> List.map (fun (s : Span.t) ->
           Obj
             [
               ("name", Str s.name);
               ("cat", Str (Span.kind_name s.kind));
               ("ph", Str "X");
               ("ts", Float (chrome_ts s.t0));
               ("dur", Float (chrome_ts (s.t1 -. s.t0)));
               ("pid", Int 0);
               ("tid", Int (max 0 s.proc));
               ("args", Obj (List.map (fun (k, v) -> (k, Int v)) s.args));
             ])
  in
  let detail e = Format.asprintf "%a" Event.pp_body e in
  let instants =
    Array.to_list events
    |> List.concat_map (fun (e : Event.t) ->
           match e.body with
           | Event.Sent _ | Event.Delivered _ ->
               (* Engine-level traffic is too dense for instants; it is
                  recoverable from the JSONL log when needed. *)
               []
           | Event.Token_sent _ | Event.Token_received _
           | Event.Round_advanced _ ->
               (* Slice endpoints: the token and round slices carry
                  these, so instants would only double-draw them. *)
               []
           | body ->
               let cat =
                 if Event.is_elimination body then "elimination"
                 else Event.kind body
               in
               [
                 Obj
                   [
                     ("name", Str (Event.kind body));
                     ("cat", Str cat);
                     ("ph", Str "i");
                     ("ts", Float (chrome_ts e.time));
                     ("pid", Int 0);
                     ("tid", Int (max 0 e.proc));
                     ("s", Str "t");
                     ( "args",
                       Obj (("detail", Str (detail body)) :: body_fields body)
                     );
                   ];
               ])
  in
  to_string
    (Obj
       [
         ("traceEvents", Arr (meta @ slices @ instants));
         ("displayTimeUnit", Str "ms");
       ])

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s
