(** Metrics registry: named counters, gauges and log-scaled histograms.

    Hot paths hold the metric handle (obtained once by name), so an
    update is a field write or a bucket increment — no hashing, no
    allocation. Histograms use power-of-two buckets, giving a factor-2
    resolution everywhere on the axis with a fixed 64-word footprint;
    min/max/sum are tracked exactly, so [mean] and the extreme
    quantiles are exact and interior quantiles are within 2x. *)

type t

type counter

type gauge

type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Find or register. @raise Invalid_argument if [name] is registered
    as a different metric kind. *)

val gauge : t -> string -> gauge

val histogram : t -> string -> histogram

val incr : ?by:int -> counter -> unit

val count : counter -> int

val set : gauge -> float -> unit

val value : gauge -> float

val max_value : gauge -> float
(** Highest value ever [set] (0 if never set). *)

val observe : histogram -> float -> unit

val observations : histogram -> int

val mean : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0,1]; 0 when empty. Exact at the
    extremes, within a factor of 2 in the interior. *)

val hist_max : histogram -> float

val hist_min : histogram -> float

val hist_sum : histogram -> float

val names : t -> string list
(** Registration order. *)

val pp : Format.formatter -> t -> unit

val to_prometheus : t -> string
(** The whole registry in the Prometheus text exposition format
    (0.0.4): names prefixed [wcp_] and sanitized, counters and gauges
    as single series (gauges also expose [_max]), histograms as
    cumulative [le]-labelled buckets (non-empty buckets plus [+Inf])
    with [_sum]/[_count]. Byte-deterministic: output follows
    registration order. *)

(** {2 Deriving run metrics from a recorded event log} *)

type summary = {
  hop_latency : histogram;  (** send-to-acceptance sim time per hop *)
  elims_per_hop : histogram;  (** eliminations between token acceptances *)
  eliminations : counter;
  hops : counter;
  polls : counter;
  retransmits : counter;
  regenerations : counter;
  rounds : counter;  (** parallel-checker frontier rounds *)
}

val of_events : Event.t array -> t * summary
(** Replay a recorded log into a fresh registry. Deterministic: equal
    logs give equal metrics. *)
