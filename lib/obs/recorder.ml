type t = {
  capacity : int;
  mutable buf : Event.t array;  (* circular once full; grows until then *)
  mutable head : int;  (* index of the oldest retained event *)
  mutable len : int;
  mutable next_seq : int;
  mutable dropped : int;
  mutable tap : (Event.t -> unit) option;
}

let default_capacity = 1 lsl 20

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Recorder.create: capacity must be >= 1";
  {
    capacity;
    buf = [||];
    head = 0;
    len = 0;
    next_seq = 0;
    dropped = 0;
    tap = None;
  }

let attach_tap t f =
  match t.tap with
  | None -> t.tap <- Some f
  | Some _ -> invalid_arg "Recorder.attach_tap: tap already attached"

let sentinel =
  { Event.seq = -1; time = 0.0; proc = -1; body = Event.No_detection_declared }

let emit t ~time ~proc body =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let e = { Event.seq; time; proc; body } in
  let cap = Array.length t.buf in
  if t.len < cap then begin
    t.buf.((t.head + t.len) mod cap) <- e;
    t.len <- t.len + 1
  end
  else if cap < t.capacity then begin
    (* Grow geometrically up to the ring capacity. The buffer is only
       circular once it stops growing, so [head = 0] here. *)
    let cap' = min t.capacity (max 1024 (2 * cap)) in
    let buf' = Array.make cap' sentinel in
    Array.blit t.buf 0 buf' 0 t.len;
    t.buf <- buf';
    t.buf.(t.len) <- e;
    t.len <- t.len + 1
  end
  else begin
    (* Ring is full: overwrite the oldest event. *)
    t.buf.(t.head) <- e;
    t.head <- (t.head + 1) mod cap;
    t.dropped <- t.dropped + 1
  end;
  match t.tap with None -> () | Some f -> f e

let length t = t.len

let emitted t = t.next_seq

let dropped t = t.dropped

let events t =
  Array.init t.len (fun i -> t.buf.((t.head + i) mod Array.length t.buf))

let iter t f =
  for i = 0 to t.len - 1 do
    f t.buf.((t.head + i) mod Array.length t.buf)
  done
