type kind = Token | Round | Recovery | Retx_burst

type t = {
  kind : kind;
  name : string;
  proc : int;
  t0 : float;
  t1 : float;
  args : (string * int) list;
}

let kind_name = function
  | Token -> "token"
  | Round -> "round"
  | Recovery -> "recovery"
  | Retx_burst -> "retx-burst"

let burst_gap = 2.0

let of_events (events : Event.t array) =
  let spans = ref [] in
  let push s = spans := s :: !spans in
  (* Token hops: pair each send/regeneration with the acceptance of
     the same hop number; a regenerated send refreshes the start. *)
  let sent_at = Hashtbl.create 64 in
  (* Rounds: interval between consecutive Round_advanced events. *)
  let first_t =
    if Array.length events = 0 then 0.0 else events.(0).Event.time
  in
  let round_t0 = ref first_t in
  (* Recovery: per restarting proc, the open episode. *)
  let open_recovery = Hashtbl.create 4 in
  (* (proc -> t0, bytes, t1-so-far) *)
  let flush_recovery p =
    match Hashtbl.find_opt open_recovery p with
    | None -> ()
    | Some (t0, bytes, t1) ->
        Hashtbl.remove open_recovery p;
        push
          {
            kind = Recovery;
            name = "recovery";
            proc = p;
            t0;
            t1;
            args = [ ("bytes", bytes) ];
          }
  in
  let extend_recovery p t =
    match Hashtbl.find_opt open_recovery p with
    | Some (t0, bytes, _) -> Hashtbl.replace open_recovery p (t0, bytes, t)
    | None -> ()
  in
  (* Retransmit bursts: per sender, the open burst. *)
  let open_burst = Hashtbl.create 4 in
  (* (proc -> t0, last_t, count) *)
  let flush_burst p =
    match Hashtbl.find_opt open_burst p with
    | None -> ()
    | Some (t0, t1, count) ->
        Hashtbl.remove open_burst p;
        push
          {
            kind = Retx_burst;
            name = "retx burst";
            proc = p;
            t0;
            t1;
            args = [ ("count", count) ];
          }
  in
  Array.iter
    (fun (e : Event.t) ->
      match e.body with
      | Event.Token_sent { seq; _ } | Event.Token_regenerated { seq; _ } ->
          Hashtbl.replace sent_at seq (e.time, e.proc)
      | Event.Token_received { seq } -> (
          match Hashtbl.find_opt sent_at seq with
          | Some (t0, sender) ->
              Hashtbl.remove sent_at seq;
              push
                {
                  kind = Token;
                  name = Printf.sprintf "token #%d" seq;
                  proc = sender;
                  t0;
                  t1 = e.time;
                  args = [ ("hop", seq); ("accepted_by", e.proc) ];
                }
          | None -> ())
      | Event.Round_advanced { round; eliminated; _ } ->
          push
            {
              kind = Round;
              name = Printf.sprintf "round #%d" round;
              proc = e.proc;
              t0 = !round_t0;
              t1 = e.time;
              args = [ ("round", round); ("eliminated", eliminated) ];
            };
          round_t0 := e.time
      | Event.Restored { bytes } ->
          flush_recovery e.proc;
          Hashtbl.replace open_recovery e.proc (e.time, bytes, e.time)
      | Event.Resync_requested _ -> extend_recovery e.proc e.time
      | Event.Replayed { dst; _ } -> extend_recovery dst e.time
      | Event.Retransmitted _ -> (
          match Hashtbl.find_opt open_burst e.proc with
          | Some (t0, last, count) when e.time -. last <= burst_gap ->
              Hashtbl.replace open_burst e.proc (t0, e.time, count + 1)
          | Some _ ->
              flush_burst e.proc;
              Hashtbl.replace open_burst e.proc (e.time, e.time, 1)
          | None -> Hashtbl.replace open_burst e.proc (e.time, e.time, 1))
      | _ -> ())
    events;
  (* Flush still-open episodes in proc order for determinism. *)
  let open_procs tbl = Hashtbl.fold (fun p _ acc -> p :: acc) tbl [] in
  List.iter flush_recovery (List.sort compare (open_procs open_recovery));
  List.iter flush_burst (List.sort compare (open_procs open_burst));
  List.rev !spans

let durations kind spans =
  spans
  |> List.filter (fun s -> s.kind = kind)
  |> List.map (fun s -> s.t1 -. s.t0)
  |> Array.of_list

let percentile sample q =
  let n = Array.length sample in
  if n = 0 then 0.0
  else begin
    let a = Array.copy sample in
    Array.sort Float.compare a;
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))
  end
