(** Exporters for recorded event logs.

    Two formats:
    - {b JSONL}: one JSON object per event, a full codec —
      [decode_line] structurally inverts [encode_line], which the
      schema validator and the round-trip tests rely on. Output is
      byte-deterministic for a given event sequence.
    - {b Chrome [trace_event]}: a single JSON document that opens in
      Perfetto or [chrome://tracing]; token hops become duration
      slices, algorithm events become instants. Export only — there is
      no decoder. *)

val schema : string
(** Event-log schema tag (["wcp-events/1"]), carried by the
    [run_meta] event. *)

(** {2 JSONL} *)

val encode_line : Event.t -> string
(** One event as a single JSON line (no trailing newline). *)

val decode_line : string -> (Event.t, string) result
(** Inverse of {!encode_line}; also accepts semantically equal JSON
    (field order, int-valued floats). Errors name the offending byte
    or field. *)

val jsonl : Event.t array -> string
(** All events, one per line, trailing newline included. *)

val of_jsonl : string -> (Event.t array, string) result
(** Parse a whole JSONL document; errors are prefixed with the
    1-based line number. *)

(** {2 Chrome trace_event} *)

val chrome : Event.t array -> string
(** The whole log as a [{"traceEvents": [...]}] document. *)

(** {2 Files} *)

val write_file : string -> string -> unit

val read_file : string -> string
