(** Exporters for recorded event logs.

    Two formats:
    - {b JSONL}: one JSON object per event, a full codec —
      [decode_line] structurally inverts [encode_line], which the
      schema validator and the round-trip tests rely on. Output is
      byte-deterministic for a given event sequence.
    - {b Chrome [trace_event]}: a single JSON document that opens in
      Perfetto or [chrome://tracing]; the {!Span}-derived interval
      structure (token hops, elimination rounds, recovery windows,
      retransmit bursts) becomes duration slices, every other
      algorithm/watchdog/recovery event a named instant carrying its
      structured fields as args. Export only — there is no decoder. *)

val schema : string
(** Event-log schema tag (["wcp-events/1"]), carried by the
    [run_meta] event. *)

(** Minimal JSON tree shared by every JSONL codec in the plane
    ({!encode_line} here, the [wcp-metrics/1] codec in {!Telemetry}).
    [emit]/[parse] invert each other on the subset we generate. *)
module Json : sig
  type t =
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Error of string

  val error : ('a, unit, string, 'b) format4 -> 'a

  val emit : Buffer.t -> t -> unit

  val add_int : Buffer.t -> int -> unit
  (** Exactly the bytes [emit] writes for [Int i], without the
      intermediate [string_of_int] allocation. *)

  val add_float : Buffer.t -> float -> unit
  (** Exactly the bytes [emit] writes for [Float f] — exposed so
      hand-rolled hot-path encoders (the telemetry window line) can
      stay byte-compatible with the generic emitter. *)

  val to_string : t -> string

  val parse : string -> t
  (** @raise Error on malformed input or trailing garbage. *)

  val member : string -> t -> t
  (** @raise Error when missing or not an object. *)

  val to_int : t -> int

  val to_float : t -> float
  (** Accepts ints. *)

  val to_str : t -> string

  val to_bool : t -> bool

  val to_int_array : t -> int array

  val of_int_array : int array -> t
end

(** {2 JSONL} *)

val encode_line : Event.t -> string
(** One event as a single JSON line (no trailing newline). *)

val decode_line : string -> (Event.t, string) result
(** Inverse of {!encode_line}; also accepts semantically equal JSON
    (field order, int-valued floats). Errors name the offending byte
    or field. *)

val jsonl : Event.t array -> string
(** All events, one per line, trailing newline included. *)

val of_jsonl : string -> (Event.t array, string) result
(** Parse a whole JSONL document; errors are prefixed with the
    1-based line number. *)

(** {2 Chrome trace_event} *)

val chrome : Event.t array -> string
(** The whole log as a [{"traceEvents": [...]}] document: thread-name
    metadata, then {!Span.of_events} duration slices, then instants. *)

(** {2 Files} *)

val write_file : string -> string -> unit

val read_file : string -> string
