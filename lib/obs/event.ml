type body =
  | Run_meta of { algo : string; n : int; width : int }
  | Sent of { dst : int; bits : int }
  | Delivered of { src : int }
  | Snapshot_arrived of { src : int; state : int }
  | Candidate_advanced of { k : int; proc : int; state : int }
  | Vc_advanced of {
      by_k : int;
      by_proc : int;
      by_state : int;
      by_clock : int array;
      victim_k : int;
      victim_proc : int;
      victim_state : int;
      witness : int;
    }
  | Dd_eliminated of {
      victim_proc : int;
      victim_state : int;
      poll_clock : int;
      poller_proc : int;
    }
  | Chain_extended of { after_proc : int; proc : int }
  | Hb_eliminated of {
      victim_k : int;
      victim_proc : int;
      victim_state : int;
      victim_clock : int array;
      by_k : int;
      by_proc : int;
      by_state : int;
      by_clock : int array;
    }
  | Channel_eliminated of {
      channel : string;
      victim_proc : int;
      victim_state : int;
    }
  | Token_sent of { seq : int; dst : int; g : int array }
  | Token_received of { seq : int }
  | Token_regenerated of { seq : int; dst : int }
  | Poll_sent of { dst : int; clock : int }
  | Poll_replied of { dst : int; became_red : bool }
  | Probe_sent of { seq : int; dst : int }
  | Retransmitted of { dst : int; frame_seq : int }
  | Merged of { round : int }
  | Round_advanced of { round : int; frontier : int array; eliminated : int }
  | Checkpoint_taken of { bytes : int }
  | Restored of { bytes : int }
  | Resync_requested of { peer : int; expected : int }
  | Replayed of { dst : int; from_seq : int; count : int }
  | Watchdog_stood_down of { seq : int; dst : int }
  | Phase_marked of { name : string }
  | Detected of { procs : int array; states : int array }
  | No_detection_declared

type t = { seq : int; time : float; proc : int; body : body }

let kind = function
  | Run_meta _ -> "run_meta"
  | Sent _ -> "sent"
  | Delivered _ -> "delivered"
  | Snapshot_arrived _ -> "snapshot"
  | Candidate_advanced _ -> "candidate"
  | Vc_advanced _ -> "vc_advanced"
  | Dd_eliminated _ -> "dd_eliminated"
  | Chain_extended _ -> "chain_extended"
  | Hb_eliminated _ -> "hb_eliminated"
  | Channel_eliminated _ -> "channel_eliminated"
  | Token_sent _ -> "token_sent"
  | Token_received _ -> "token_received"
  | Token_regenerated _ -> "token_regenerated"
  | Poll_sent _ -> "poll_sent"
  | Poll_replied _ -> "poll_replied"
  | Probe_sent _ -> "probe_sent"
  | Retransmitted _ -> "retransmit"
  | Merged _ -> "merge"
  | Round_advanced _ -> "round"
  | Checkpoint_taken _ -> "recovery/ckpt"
  | Restored _ -> "recovery/restore"
  | Resync_requested _ -> "recovery/resync"
  | Replayed _ -> "recovery/replay"
  | Watchdog_stood_down _ -> "wd_stand_down"
  | Phase_marked _ -> "phase"
  | Detected _ -> "detected"
  | No_detection_declared -> "no_detection"

let kinds =
  [
    "run_meta"; "sent"; "delivered"; "snapshot"; "candidate"; "vc_advanced";
    "dd_eliminated"; "chain_extended"; "hb_eliminated"; "channel_eliminated";
    "token_sent"; "token_received"; "token_regenerated"; "poll_sent";
    "poll_replied"; "probe_sent"; "retransmit"; "merge"; "round";
    "recovery/ckpt"; "recovery/restore"; "recovery/resync"; "recovery/replay";
    "wd_stand_down"; "phase"; "detected"; "no_detection";
  ]

let is_elimination = function
  | Vc_advanced _ | Dd_eliminated _ | Hb_eliminated _ | Channel_eliminated _ ->
      true
  | _ -> false

let equal_body (a : body) (b : body) = a = b

let equal (a : t) (b : t) =
  a.seq = b.seq && a.proc = b.proc
  && Float.equal a.time b.time
  && equal_body a.body b.body

let pp_vec ppf v =
  Format.pp_print_char ppf '<';
  Array.iteri
    (fun i x ->
      if i > 0 then Format.pp_print_char ppf ',';
      Format.pp_print_int ppf x)
    v;
  Format.pp_print_char ppf '>'

let pp_body ppf = function
  | Run_meta { algo; n; width } ->
      Format.fprintf ppf "run algo=%s n=%d width=%d" algo n width
  | Sent { dst; bits } -> Format.fprintf ppf "sent dst=%d bits=%d" dst bits
  | Delivered { src } -> Format.fprintf ppf "delivered src=%d" src
  | Snapshot_arrived { src; state } ->
      Format.fprintf ppf "snapshot src=%d state=%d" src state
  | Candidate_advanced { k; proc; state } ->
      Format.fprintf ppf "candidate G[%d] := %d (P%d)" k state proc
  | Vc_advanced { by_k; by_clock; victim_k; victim_state; witness; _ } ->
      Format.fprintf ppf
        "vc-advance G[%d]: %d -> %d by M%d's candidate %a[%d]" victim_k
        victim_state witness by_k pp_vec by_clock victim_k
  | Dd_eliminated { victim_proc; victim_state; poll_clock; poller_proc } ->
      Format.fprintf ppf "dd-elim (P%d,%d) by poll clock=%d from M%d"
        victim_proc victim_state poll_clock poller_proc
  | Chain_extended { after_proc; proc } ->
      Format.fprintf ppf "chain M%d spliced after M%d" proc after_proc
  | Hb_eliminated { victim_k; victim_state; by_k; by_state; _ } ->
      Format.fprintf ppf "hb-elim (k=%d,%d) happened before (k=%d,%d)" victim_k
        victim_state by_k by_state
  | Channel_eliminated { channel; victim_proc; victim_state } ->
      Format.fprintf ppf "channel-elim %s kills (P%d,%d)" channel victim_proc
        victim_state
  | Token_sent { seq; dst; g } ->
      Format.fprintf ppf "token#%d -> %d G=%a" seq dst pp_vec g
  | Token_received { seq } -> Format.fprintf ppf "token#%d received" seq
  | Token_regenerated { seq; dst } ->
      Format.fprintf ppf "token#%d regenerated -> %d" seq dst
  | Poll_sent { dst; clock } ->
      Format.fprintf ppf "poll -> %d clock=%d" dst clock
  | Poll_replied { dst; became_red } ->
      Format.fprintf ppf "poll-reply -> %d %s" dst
        (if became_red then "became-red" else "no-change")
  | Probe_sent { seq; dst } -> Format.fprintf ppf "wd-probe#%d -> %d" seq dst
  | Retransmitted { dst; frame_seq } ->
      Format.fprintf ppf "retransmit frame#%d -> %d" frame_seq dst
  | Merged { round } -> Format.fprintf ppf "leader merge #%d" round
  | Round_advanced { round; frontier; eliminated } ->
      Format.fprintf ppf "round #%d frontier=%a eliminated=%d" round pp_vec
        frontier eliminated
  | Checkpoint_taken { bytes } -> Format.fprintf ppf "ckpt %d bytes" bytes
  | Restored { bytes } -> Format.fprintf ppf "restored from %d bytes" bytes
  | Resync_requested { peer; expected } ->
      Format.fprintf ppf "resync -> %d expecting#%d" peer expected
  | Replayed { dst; from_seq; count } ->
      Format.fprintf ppf "replay -> %d from#%d count=%d" dst from_seq count
  | Watchdog_stood_down { seq; dst } ->
      Format.fprintf ppf "wd-stand-down#%d dst=%d" seq dst
  | Phase_marked { name } -> Format.fprintf ppf "phase %s" name
  | Detected { procs; states } ->
      Format.fprintf ppf "detected {";
      Array.iteri
        (fun i p ->
          if i > 0 then Format.pp_print_char ppf ' ';
          Format.fprintf ppf "%d:%d" p states.(i))
        procs;
      Format.pp_print_char ppf '}'
  | No_detection_declared -> Format.pp_print_string ppf "no detection"

let pp ppf e =
  Format.fprintf ppf "#%d t=%.3f p=%d %s %a" e.seq e.time e.proc (kind e.body)
    pp_body e.body
