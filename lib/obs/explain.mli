(** Render a recorded event log as a human narrative.

    Each elimination is spelled out as the comparison that justified
    it (which [G[i]]/[G[j]] pair, which poll clock, which
    happened-before witness), processes are named by role ([P_i],
    [M_i], checker) via the [run_meta] prologue, and token hops are
    numbered. *)

val narrate : ?verbose:bool -> Format.formatter -> Event.t array -> unit
(** [verbose] additionally prints snapshot arrivals, poll/reply
    exchanges, watchdog probes and transport retransmits (default
    false). Engine-level send/delivery events are always elided and
    summarised by count. *)

val name : n:int -> int -> string
(** [name ~n p] is the display role of engine process [p] in a run
    with [n] application processes ([P_p], [M_(p-n)], or checker). *)
