(** Ring-buffered structured trace recorder.

    A recorder is attached to at most one simulation run. Emission is
    allocation-cheap (one event record; payload arrays are copied by
    the {e producer}, not here) and never fails: once the ring reaches
    its capacity the oldest events are overwritten and counted in
    {!dropped}, so a runaway run can at worst lose history, never
    memory.

    The zero-cost-when-disabled contract lives at the call sites: a
    producer holds a [Recorder.t option] and guards each emission with
    a single [match], constructing the event body only when a recorder
    is present. *)

type t

val default_capacity : int
(** [2^20] events. *)

val create : ?capacity:int -> unit -> t
(** [capacity] (default {!default_capacity}) bounds retained events. *)

val emit : t -> time:float -> proc:int -> Event.body -> unit
(** Stamp [body] with the next sequence number and append it; then
    hand the stamped event to the attached tap, if any. *)

val attach_tap : t -> (Event.t -> unit) -> unit
(** Stream every subsequent emission to [f], after it is stored. The
    tap sees events the ring later overwrites, so a small-capacity
    recorder plus a tap is a bounded-memory streaming consumer (the
    telemetry plane). Costs one [match] per emission when absent.
    @raise Invalid_argument if a tap is already attached. *)

val length : t -> int
(** Events currently retained. *)

val emitted : t -> int
(** Events ever emitted ([length t + dropped t]). *)

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val events : t -> Event.t array
(** Retained events, oldest first. Fresh array; safe to keep. *)

val iter : t -> (Event.t -> unit) -> unit
(** Iterate oldest-first without materialising the array. *)
