(* Named counters, gauges and log-scaled histograms. Everything is a
   plain mutable record behind a per-registry name table; hot paths
   hold the metric handle, not the registry, so an update is one or
   two field writes. *)

type counter = { c_name : string; mutable count : int }

type gauge = {
  g_name : string;
  mutable value : float;
  mutable max_value : float;
}

(* Power-of-two buckets: bucket [i] holds observations [v] with
   [2^(i - bucket_offset - 1) < v <= 2^(i - bucket_offset)], so the
   resolution is a factor of two anywhere on the axis — enough to read
   latency distributions, cheap enough to keep always-on. Bucket 0
   additionally absorbs zero and negative observations. *)
type histogram = {
  h_name : string;
  buckets : int array;
  mutable h_count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { tbl : (string, metric) Hashtbl.t; mutable order : string list }

let num_buckets = 64

let bucket_offset = 24 (* buckets reach down to 2^-25: sub-microsecond *)

let create () = { tbl = Hashtbl.create 32; order = [] }

let register t name m =
  if Hashtbl.mem t.tbl name then
    invalid_arg (Printf.sprintf "Metrics: %S registered twice" name);
  Hashtbl.add t.tbl name m;
  t.order <- name :: t.order

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a counter" name)
  | None ->
      let c = { c_name = name; count = 0 } in
      register t name (Counter c);
      c

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a gauge" name)
  | None ->
      let g = { g_name = name; value = 0.0; max_value = neg_infinity } in
      register t name (Gauge g);
      g

let histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) -> h
  | Some _ ->
      invalid_arg (Printf.sprintf "Metrics: %S is not a histogram" name)
  | None ->
      let h =
        {
          h_name = name;
          buckets = Array.make num_buckets 0;
          h_count = 0;
          sum = 0.0;
          min_v = infinity;
          max_v = neg_infinity;
        }
      in
      register t name (Histogram h);
      h

let incr ?(by = 1) c = c.count <- c.count + by

let count c = c.count

let set g v =
  g.value <- v;
  if v > g.max_value then g.max_value <- v

let value g = g.value

let max_value g = g.max_value

let bucket_of v =
  if v <= 0.0 then 0
  else
    let e = snd (Float.frexp v) in
    (* v in (2^(e-1), 2^e]; frexp returns e with v = m * 2^e, and for
       exact powers of two m = 0.5, so the upper bound is inclusive. *)
    max 0 (min (num_buckets - 1) (e + bucket_offset))

let bucket_upper i =
  if i = 0 then 0.0 else Float.ldexp 1.0 (i - bucket_offset)

let observe h v =
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.h_count <- h.h_count + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v

let observations h = h.h_count

let hist_sum h = h.sum

let hist_max h = if h.h_count = 0 then 0.0 else h.max_v

let hist_min h = if h.h_count = 0 then 0.0 else h.min_v

let mean h = if h.h_count = 0 then 0.0 else h.sum /. float_of_int h.h_count

(* Quantile from the bucket cumulative counts: the reported value is
   the upper bound of the bucket holding the q-th observation, clamped
   into the exact observed range — within 2x of the true quantile by
   construction, and exact at the extremes. *)
let quantile h q =
  if h.h_count = 0 then 0.0
  else if q <= 0.0 then hist_min h
  else if q >= 1.0 then hist_max h
  else begin
    let rank = int_of_float (ceil (q *. float_of_int h.h_count)) in
    let rank = max 1 (min h.h_count rank) in
    let cum = ref 0 and bucket = ref (num_buckets - 1) in
    (try
       for i = 0 to num_buckets - 1 do
         cum := !cum + h.buckets.(i);
         if !cum >= rank then begin
           bucket := i;
           raise Exit
         end
       done
     with Exit -> ());
    Float.min h.max_v (Float.max h.min_v (bucket_upper !bucket))
  end

let names t = List.rev t.order

let pp ppf t =
  List.iter
    (fun name ->
      match Hashtbl.find t.tbl name with
      | Counter c -> Format.fprintf ppf "%-28s %d@." c.c_name c.count
      | Gauge g ->
          Format.fprintf ppf "%-28s %g (max %g)@." g.g_name g.value
            (if g.max_value = neg_infinity then 0.0 else g.max_value)
      | Histogram h ->
          Format.fprintf ppf
            "%-28s n=%d mean=%.3f p50=%.3f p95=%.3f max=%.3f@." h.h_name
            h.h_count (mean h) (quantile h 0.5) (quantile h 0.95) (hist_max h))
    (names t)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

(* Exposition format 0.0.4. Metric names are prefixed "wcp_" and
   sanitized to [a-zA-Z0-9_:]; histograms render their non-empty
   power-of-two buckets as cumulative [le] series plus the mandatory
   [+Inf]/_sum/_count. Output order follows registration order, so the
   page is byte-deterministic for a deterministic registry. *)

let prom_name name =
  let b = Bytes.of_string name in
  for i = 0 to Bytes.length b - 1 do
    match Bytes.get b i with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
    | _ -> Bytes.set b i '_'
  done;
  "wcp_" ^ Bytes.to_string b

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  List.iter
    (fun name ->
      match Hashtbl.find t.tbl name with
      | Counter c ->
          let pn = prom_name c.c_name in
          line "# TYPE %s counter\n%s %d\n" pn pn c.count
      | Gauge g ->
          let pn = prom_name g.g_name in
          line "# TYPE %s gauge\n%s %s\n" pn pn (prom_float g.value);
          line "# TYPE %s_max gauge\n%s_max %s\n" pn pn
            (prom_float
               (if g.max_value = neg_infinity then 0.0 else g.max_value))
      | Histogram h ->
          let pn = prom_name h.h_name in
          line "# TYPE %s histogram\n" pn;
          let cum = ref 0 in
          for i = 0 to num_buckets - 1 do
            if h.buckets.(i) > 0 then begin
              cum := !cum + h.buckets.(i);
              line "%s_bucket{le=\"%s\"} %d\n" pn
                (prom_float (bucket_upper i))
                !cum
            end
          done;
          line "%s_bucket{le=\"+Inf\"} %d\n" pn h.h_count;
          line "%s_sum %s\n" pn (prom_float h.sum);
          line "%s_count %d\n" pn h.h_count)
    (names t);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Deriving run metrics from a recorded event log                      *)
(* ------------------------------------------------------------------ *)

type summary = {
  hop_latency : histogram;
  elims_per_hop : histogram;
  eliminations : counter;
  hops : counter;
  polls : counter;
  retransmits : counter;
  regenerations : counter;
  rounds : counter;
}

let of_events events =
  let t = create () in
  let s =
    {
      hop_latency = histogram t "token_hop_latency";
      elims_per_hop = histogram t "eliminations_per_hop";
      eliminations = counter t "eliminations";
      hops = counter t "token_hops";
      polls = counter t "polls";
      retransmits = counter t "retransmits";
      regenerations = counter t "token_regenerations";
      rounds = counter t "parallel_rounds";
    }
  in
  (* Hop latency pairs each token send with the acceptance of the same
     hop number; regenerated sends refresh the start time, so under
     chaos the measured latency is "last send to acceptance". *)
  let sent_at = Hashtbl.create 64 in
  let elims_since_hop = ref 0 in
  Array.iter
    (fun (e : Event.t) ->
      if Event.is_elimination e.body then begin
        incr s.eliminations;
        elims_since_hop := !elims_since_hop + 1
      end;
      match e.body with
      | Event.Token_sent { seq; _ } | Event.Token_regenerated { seq; _ } ->
          Hashtbl.replace sent_at seq e.time;
          (match e.body with
          | Event.Token_regenerated _ -> incr s.regenerations
          | _ -> ())
      | Event.Token_received { seq } ->
          incr s.hops;
          (match Hashtbl.find_opt sent_at seq with
          | Some t0 -> observe s.hop_latency (e.time -. t0)
          | None -> ());
          observe s.elims_per_hop (float_of_int !elims_since_hop);
          elims_since_hop := 0
      | Event.Poll_sent _ -> incr s.polls
      | Event.Retransmitted _ -> incr s.retransmits
      | Event.Round_advanced _ -> incr s.rounds
      | _ -> ())
    events;
  (t, s)
