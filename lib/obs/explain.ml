(* Replay a recorded event log into a human narrative: one line per
   interesting event, naming processes by role (P_i application
   process, M_i monitor, checker) using the run_meta prologue, and
   spelling out each elimination as the comparison that justified it. *)

let name ~n p =
  if p < 0 then "?"
  else if n > 0 && p < n then Printf.sprintf "P_%d" p
  else if n > 0 && p < 2 * n then Printf.sprintf "M_%d" (p - n)
  else if n > 0 && p = 2 * n then "checker"
  else Printf.sprintf "proc_%d" p

let narrate ?(verbose = false) ppf events =
  let n = ref 0 in
  let hops = ref 0 in
  let elided = ref 0 in
  let pr fmt = Format.fprintf ppf fmt in
  let vec = Event.pp_vec in
  Array.iter
    (fun (e : Event.t) ->
      let who = name ~n:!n e.proc in
      let line fmt =
        pr "t=%-8g %s" e.time who;
        pr ": ";
        Format.kfprintf (fun ppf -> Format.pp_print_newline ppf ()) ppf fmt
      in
      match e.body with
      | Event.Run_meta { algo; n = procs; width } ->
          n := procs;
          pr "run: %s over n=%d processes, predicate width %d@." algo procs
            width
      | Event.Sent _ | Event.Delivered _ -> incr elided
      | Event.Snapshot_arrived { src; state } ->
          if verbose then
            line "snapshot: state %d of %s arrived" state (name ~n:!n src)
      | Event.Candidate_advanced { k; proc; state } ->
          line "selected candidate state %d of %s (G[%d] := %d, green)" state
            (name ~n:!n proc) k state
      | Event.Vc_advanced
          { by_k; by_proc; by_state; by_clock; victim_k; victim_proc;
            victim_state; witness } ->
          if victim_state = 0 then
            line
              "advanced G[%d] to %d: candidate (%s, state %d) with clock %a \
               precedes any future candidate of %s (red)"
              victim_k witness (name ~n:!n by_proc) by_state vec by_clock
              (name ~n:!n victim_proc)
          else
            line
              "eliminated state %d of %s because candidate (%s, state %d) \
               carries clock %a with clock[%d]=%d >= G[%d]=%d; G[%d] := %d \
               (red)"
              victim_state
              (name ~n:!n victim_proc)
              (name ~n:!n by_proc)
              by_state vec by_clock victim_k witness victim_k victim_state
              victim_k witness;
          ignore by_k
      | Event.Dd_eliminated { victim_proc; victim_state; poll_clock;
                              poller_proc } ->
          line
            "turned red: poll from %s carries clock %d >= G=%d, so state %d \
             of %s directly precedes the poller's candidate; G := %d"
            (name ~n:!n poller_proc)
            poll_clock victim_state victim_state
            (name ~n:!n victim_proc)
            poll_clock
      | Event.Chain_extended { after_proc; proc } ->
          line "red chain: %s spliced after %s" (name ~n:!n proc)
            (name ~n:!n after_proc)
      | Event.Hb_eliminated
          { victim_k; victim_proc; victim_state; victim_clock; by_k; by_proc;
            by_state; by_clock } ->
          line
            "eliminated candidate (%s, state %d) %a: happened before (%s, \
             state %d) %a since clock[%d]: %d >= %d"
            (name ~n:!n victim_proc)
            victim_state vec victim_clock (name ~n:!n by_proc) by_state vec
            by_clock victim_k
            by_clock.(victim_k)
            victim_clock.(victim_k);
          ignore by_k
      | Event.Channel_eliminated { channel; victim_proc; victim_state } ->
          line
            "channel predicate %s violated: candidate state %d of %s is \
             forced out"
            channel victim_state
            (name ~n:!n victim_proc)
      | Event.Token_sent { seq; dst; g } ->
          line "hop %d: token -> %s carrying G=%a" seq (name ~n:!n dst) vec g
      | Event.Token_received { seq } ->
          incr hops;
          line "hop %d: token accepted" seq
      | Event.Token_regenerated { seq; dst } ->
          line "watchdog regenerated token #%d -> %s" seq (name ~n:!n dst)
      | Event.Poll_sent { dst; clock } ->
          if verbose then line "poll -> %s (clock %d)" (name ~n:!n dst) clock
      | Event.Poll_replied { dst; became_red } ->
          if verbose then
            line "poll reply -> %s (became_red=%b)" (name ~n:!n dst) became_red
      | Event.Probe_sent { seq; dst } ->
          if verbose then
            line "watchdog probe #%d -> %s" seq (name ~n:!n dst)
      | Event.Retransmitted { dst; frame_seq } ->
          if verbose then
            line "transport retransmitted frame %d -> %s" frame_seq
              (name ~n:!n dst)
      | Event.Checkpoint_taken { bytes } ->
          if verbose then line "checkpointed resumable state (%d bytes)" bytes
      | Event.Restored { bytes } ->
          line "RESTARTED: rebuilt monitor state from last checkpoint (%d \
                bytes)"
            bytes
      | Event.Resync_requested { peer; expected } ->
          line "resync: asked %s to replay its flow from frame %d"
            (name ~n:!n peer) expected
      | Event.Replayed { dst; from_seq; count } ->
          line "replayed %d buffered frame%s (from #%d) -> %s" count
            (if count = 1 then "" else "s")
            from_seq (name ~n:!n dst)
      | Event.Watchdog_stood_down { seq; dst } ->
          line "watchdog stood down on token #%d after max probes of %s" seq
            (name ~n:!n dst)
      | Event.Phase_marked { name } ->
          if verbose then line "entered phase %S" name
      | Event.Merged { round } ->
          line "leader merged group tokens (round %d)" round
      | Event.Round_advanced { round; frontier; eliminated } ->
          line "parallel round %d: frontier %a, %d candidate%s eliminated"
            round vec frontier eliminated
            (if eliminated = 1 then "" else "s")
      | Event.Detected { procs; states } ->
          line "DETECTED consistent cut: %s"
            (String.concat ", "
               (List.map2
                  (fun p s -> Printf.sprintf "%s@state %d" (name ~n:!n p) s)
                  (Array.to_list procs) (Array.to_list states)))
      | Event.No_detection_declared ->
          line "no detection: run ended without a satisfying cut")
    events;
  if !elided > 0 && not verbose then
    pr "(%d engine send/delivery events elided; --verbose or the JSONL log \
        has them)@."
      !elided;
  pr "%d token hops total@." !hops
