(* Sliding-window telemetry over a live event stream. Window
   boundaries are sim-time multiples of [every]; an incoming event
   whose timestamp has crossed the current boundary first closes (and
   emits) every window it skipped, so the stream has one line per
   interval regardless of event density. All aggregation keys off the
   event stream alone — no wall clock, no RNG — which is what makes
   the stream byte-deterministic for a fixed seed. *)

let schema = "wcp-metrics/1"

let default_every = 5.0

(* ------------------------------------------------------------------ *)
(* Stream line types and codec                                         *)
(* ------------------------------------------------------------------ *)

type window = {
  idx : int;
  t0 : float;
  t1 : float;
  events : int;
  elims : int;
  hops : int;
  polls : int;
  snapshots : int;
  retx : int;
  probes : int;
  regens : int;
  ckpts : int;
  restores : int;
  replays : int;
  stand_downs : int;
  hop_p50 : float;
  hop_p95 : float;
  cum_events : int;
  cum_elims : int;
  cum_retx : int;
  cum_regens : int;
  cum_ckpts : int;
  cum_stand_downs : int;
}

type phase = {
  phase : string;
  p_t0 : float;
  p_t1 : float;
  alloc_bytes : int;
  p_events : int;
}

type line =
  | Meta of { algo : string; n : int; width : int; every : float }
  | Window of window
  | Phase of phase
  | Total of { windows : int; events : int; elims : int; hops : int;
               phases : int }

let equal_line (a : line) (b : line) = a = b

open Export.Json

let to_json = function
  | Meta { algo; n; width; every } ->
      Obj
        [
          ("schema", Str schema);
          ("type", Str "meta");
          ("algo", Str algo);
          ("n", Int n);
          ("width", Int width);
          ("every", Float every);
        ]
  | Window w ->
      Obj
        [
          ("type", Str "window");
          ("idx", Int w.idx);
          ("t0", Float w.t0);
          ("t1", Float w.t1);
          ("events", Int w.events);
          ("elims", Int w.elims);
          ("hops", Int w.hops);
          ("polls", Int w.polls);
          ("snaps", Int w.snapshots);
          ("retx", Int w.retx);
          ("probes", Int w.probes);
          ("regens", Int w.regens);
          ("ckpts", Int w.ckpts);
          ("restores", Int w.restores);
          ("replays", Int w.replays);
          ("wd_stand_downs", Int w.stand_downs);
          ("hop_p50", Float w.hop_p50);
          ("hop_p95", Float w.hop_p95);
          ("cum_events", Int w.cum_events);
          ("cum_elims", Int w.cum_elims);
          ("cum_retx", Int w.cum_retx);
          ("cum_regens", Int w.cum_regens);
          ("cum_ckpts", Int w.cum_ckpts);
          ("cum_wd_stand_downs", Int w.cum_stand_downs);
        ]
  | Phase p ->
      Obj
        [
          ("type", Str "phase");
          ("name", Str p.phase);
          ("t0", Float p.p_t0);
          ("t1", Float p.p_t1);
          ("alloc_bytes", Int p.alloc_bytes);
          ("events", Int p.p_events);
        ]
  | Total { windows; events; elims; hops; phases } ->
      Obj
        [
          ("type", Str "total");
          ("windows", Int windows);
          ("events", Int events);
          ("elims", Int elims);
          ("hops", Int hops);
          ("phases", Int phases);
        ]

(* Window lines are the stream's per-interval steady-state cost, so
   they bypass the generic [Json.emit] (which builds a 24-pair [Obj]
   per line) for direct buffer writes. The bytes are identical — a
   QCheck property pins [encode_line l = to_string (to_json l)] for
   every line shape. *)
let window_buf = Buffer.create 512

let encode_window w =
  let buf = window_buf in
  Buffer.clear buf;
  let int k v =
    Buffer.add_string buf k;
    add_int buf v
  in
  let flt k v =
    Buffer.add_string buf k;
    add_float buf v
  in
  int {|{"type":"window","idx":|} w.idx;
  flt {|,"t0":|} w.t0;
  flt {|,"t1":|} w.t1;
  int {|,"events":|} w.events;
  int {|,"elims":|} w.elims;
  int {|,"hops":|} w.hops;
  int {|,"polls":|} w.polls;
  int {|,"snaps":|} w.snapshots;
  int {|,"retx":|} w.retx;
  int {|,"probes":|} w.probes;
  int {|,"regens":|} w.regens;
  int {|,"ckpts":|} w.ckpts;
  int {|,"restores":|} w.restores;
  int {|,"replays":|} w.replays;
  int {|,"wd_stand_downs":|} w.stand_downs;
  flt {|,"hop_p50":|} w.hop_p50;
  flt {|,"hop_p95":|} w.hop_p95;
  int {|,"cum_events":|} w.cum_events;
  int {|,"cum_elims":|} w.cum_elims;
  int {|,"cum_retx":|} w.cum_retx;
  int {|,"cum_regens":|} w.cum_regens;
  int {|,"cum_ckpts":|} w.cum_ckpts;
  int {|,"cum_wd_stand_downs":|} w.cum_stand_downs;
  Buffer.add_char buf '}';
  Buffer.contents buf

let encode_line = function
  | Window w -> encode_window w
  | l -> to_string (to_json l)

let of_json j =
  let i name = to_int (member name j) in
  let f name = to_float (member name j) in
  let s name = to_str (member name j) in
  match s "type" with
  | "meta" ->
      let sc = s "schema" in
      if sc <> schema then error "schema %S, expected %S" sc schema;
      Meta { algo = s "algo"; n = i "n"; width = i "width"; every = f "every" }
  | "window" ->
      Window
        {
          idx = i "idx";
          t0 = f "t0";
          t1 = f "t1";
          events = i "events";
          elims = i "elims";
          hops = i "hops";
          polls = i "polls";
          snapshots = i "snaps";
          retx = i "retx";
          probes = i "probes";
          regens = i "regens";
          ckpts = i "ckpts";
          restores = i "restores";
          replays = i "replays";
          stand_downs = i "wd_stand_downs";
          hop_p50 = f "hop_p50";
          hop_p95 = f "hop_p95";
          cum_events = i "cum_events";
          cum_elims = i "cum_elims";
          cum_retx = i "cum_retx";
          cum_regens = i "cum_regens";
          cum_ckpts = i "cum_ckpts";
          cum_stand_downs = i "cum_wd_stand_downs";
        }
  | "phase" ->
      Phase
        {
          phase = s "name";
          p_t0 = f "t0";
          p_t1 = f "t1";
          alloc_bytes = i "alloc_bytes";
          p_events = i "events";
        }
  | "total" ->
      Total
        {
          windows = i "windows";
          events = i "events";
          elims = i "elims";
          hops = i "hops";
          phases = i "phases";
        }
  | k -> error "unknown line type %S" k

let decode_line line =
  match of_json (parse line) with
  | l -> Ok l
  | exception Error m -> Result.Error m
  | exception Failure m -> Result.Error m

let decode src =
  let lines = String.split_on_char '\n' src in
  let rec go lineno acc = function
    | [] | [ "" ] -> Ok (List.rev acc)
    | line :: rest -> (
        match decode_line line with
        | Ok l -> go (lineno + 1) (l :: acc) rest
        | Result.Error m -> Result.Error (Printf.sprintf "line %d: %s" lineno m))
  in
  go 1 [] lines

(* ------------------------------------------------------------------ *)
(* Live aggregation                                                    *)
(* ------------------------------------------------------------------ *)

(* All-float record: flat float storage — no boxing, no write barrier —
   for the two floats the feed path touches on every event. *)
type hot = { mutable wt1 : float; mutable last : float }

(* Field order matters: [feed] runs between engine events with a cold
   cache, so everything it touches per event (the closed flag, the
   window accumulators, the [hot] cell) sits at the front of the
   record, packed into as few cache lines as possible; the per-window
   and per-phase machinery follows. *)
type t = {
  mutable closed : bool;
  mutable w_events : int;
  hot : hot;
  mutable w_elims : int;
  mutable w_hops : int;
  mutable w_polls : int;
  mutable w_snaps : int;
  mutable w_retx : int;
  mutable w_probes : int;
  mutable w_regens : int;
  mutable w_ckpts : int;
  mutable w_restores : int;
  mutable w_replays : int;
  mutable w_wd : int;
  mutable w_lat : float list;  (* window hop latencies, newest first *)
  (* Send time of token [seq], indexed directly: seqs are the dense
     hop counter, so a doubling array beats a hashtable on the hot
     per-hop path. *)
  mutable sent_at : float array;
  h_hop : Metrics.histogram;  (* cumulative, for the Prometheus page *)
  every : float;
  sink : string -> unit;
  alloc : unit -> float;
  reg : Metrics.t;
  c_events : Metrics.counter;
  c_elims : Metrics.counter;
  c_hops : Metrics.counter;
  c_polls : Metrics.counter;
  c_snaps : Metrics.counter;
  c_retx : Metrics.counter;
  c_probes : Metrics.counter;
  c_regens : Metrics.counter;
  c_ckpts : Metrics.counter;
  c_restores : Metrics.counter;
  c_replays : Metrics.counter;
  c_wd : Metrics.counter;
  mutable widx : int;
  mutable windows_emitted : int;
  (* open phase *)
  mutable ph_name : string option;
  mutable ph_t0 : float;
  mutable ph_alloc0 : float;
  mutable ph_events0 : int;
  mutable phases_emitted : int;
  mutable lines : int;
}

let create ?(every = default_every) ?(alloc = Gc.allocated_bytes)
    ~sink () =
  if every <= 0.0 then invalid_arg "Telemetry.create: every must be > 0";
  let reg = Metrics.create () in
  {
    closed = false;
    w_events = 0;
    hot = { wt1 = every; last = 0.0 };
    w_elims = 0;
    w_hops = 0;
    w_polls = 0;
    w_snaps = 0;
    w_retx = 0;
    w_probes = 0;
    w_regens = 0;
    w_ckpts = 0;
    w_restores = 0;
    w_replays = 0;
    w_wd = 0;
    w_lat = [];
    sent_at = Array.make 64 nan;
    h_hop = Metrics.histogram reg "token_hop_latency";
    every;
    sink;
    alloc;
    reg;
    c_events = Metrics.counter reg "events";
    c_elims = Metrics.counter reg "eliminations";
    c_hops = Metrics.counter reg "token_hops";
    c_polls = Metrics.counter reg "polls";
    c_snaps = Metrics.counter reg "snapshots";
    c_retx = Metrics.counter reg "retransmits";
    c_probes = Metrics.counter reg "wd_probes";
    c_regens = Metrics.counter reg "token_regenerations";
    c_ckpts = Metrics.counter reg "checkpoints";
    c_restores = Metrics.counter reg "restores";
    c_replays = Metrics.counter reg "replays";
    c_wd = Metrics.counter reg "wd_stand_downs";
    widx = 0;
    windows_emitted = 0;
    ph_name = None;
    ph_t0 = 0.0;
    ph_alloc0 = 0.0;
    ph_events0 = 0;
    phases_emitted = 0;
    lines = 0;
  }

let registry t = t.reg

let prometheus t = Metrics.to_prometheus t.reg

let lines t = t.lines

let send t line =
  t.lines <- t.lines + 1;
  t.sink (encode_line line)

(* The registry counters are flushed from the window accumulators at
   window boundaries (keeping the per-event path to one field
   increment); the live total is the flushed count plus the open
   window. *)
let cum_events t = Metrics.count t.c_events + t.w_events

(* Exact rank quantile of a small sample. *)
let quantile_of q xs =
  match xs with
  | [] -> 0.0
  | xs ->
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      let n = Array.length a in
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      a.(max 0 (min (n - 1) (rank - 1)))

let close_window t =
  Metrics.incr ~by:t.w_events t.c_events;
  Metrics.incr ~by:t.w_elims t.c_elims;
  Metrics.incr ~by:t.w_hops t.c_hops;
  Metrics.incr ~by:t.w_polls t.c_polls;
  Metrics.incr ~by:t.w_snaps t.c_snaps;
  Metrics.incr ~by:t.w_retx t.c_retx;
  Metrics.incr ~by:t.w_probes t.c_probes;
  Metrics.incr ~by:t.w_regens t.c_regens;
  Metrics.incr ~by:t.w_ckpts t.c_ckpts;
  Metrics.incr ~by:t.w_restores t.c_restores;
  Metrics.incr ~by:t.w_replays t.c_replays;
  Metrics.incr ~by:t.w_wd t.c_wd;
  let w =
    {
      idx = t.widx;
      t0 = t.hot.wt1 -. t.every;
      t1 = t.hot.wt1;
      events = t.w_events;
      elims = t.w_elims;
      hops = t.w_hops;
      polls = t.w_polls;
      snapshots = t.w_snaps;
      retx = t.w_retx;
      probes = t.w_probes;
      regens = t.w_regens;
      ckpts = t.w_ckpts;
      restores = t.w_restores;
      replays = t.w_replays;
      stand_downs = t.w_wd;
      hop_p50 = quantile_of 0.5 t.w_lat;
      hop_p95 = quantile_of 0.95 t.w_lat;
      cum_events = Metrics.count t.c_events;
      cum_elims = Metrics.count t.c_elims;
      cum_retx = Metrics.count t.c_retx;
      cum_regens = Metrics.count t.c_regens;
      cum_ckpts = Metrics.count t.c_ckpts;
      cum_stand_downs = Metrics.count t.c_wd;
    }
  in
  send t (Window w);
  t.windows_emitted <- t.windows_emitted + 1;
  t.widx <- t.widx + 1;
  t.hot.wt1 <- t.hot.wt1 +. t.every;
  t.w_events <- 0;
  t.w_elims <- 0;
  t.w_hops <- 0;
  t.w_polls <- 0;
  t.w_snaps <- 0;
  t.w_retx <- 0;
  t.w_probes <- 0;
  t.w_regens <- 0;
  t.w_ckpts <- 0;
  t.w_restores <- 0;
  t.w_replays <- 0;
  t.w_wd <- 0;
  t.w_lat <- []

let close_phase t ~at =
  match t.ph_name with
  | None -> ()
  | Some name ->
      let p =
        {
          phase = name;
          p_t0 = t.ph_t0;
          p_t1 = at;
          alloc_bytes = int_of_float (t.alloc () -. t.ph_alloc0);
          p_events = cum_events t - t.ph_events0;
        }
      in
      send t (Phase p);
      t.phases_emitted <- t.phases_emitted + 1;
      t.ph_name <- None

let note_sent t seq time =
  let len = Array.length t.sent_at in
  if seq >= len then begin
    let a = Array.make (max (2 * len) (seq + 1)) nan in
    Array.blit t.sent_at 0 a 0 len;
    t.sent_at <- a
  end;
  t.sent_at.(seq) <- time

let open_phase t ~name ~at =
  t.ph_name <- Some name;
  t.ph_t0 <- at;
  t.ph_alloc0 <- t.alloc ();
  t.ph_events0 <- cum_events t

(* The per-event path. Everything here is a handful of field
   increments: cumulative registry counters are flushed at window
   boundaries (see [close_window]), the elimination test is folded
   into the one body match, and [last_time] lives in an unboxed float
   cell, so an attached plane costs the engine a closure call and some
   integer stores per event. *)
let feed t (e : Event.t) =
  if not t.closed then begin
    (* Close every window the event's timestamp has passed. *)
    while e.time >= t.hot.wt1 do
      close_window t
    done;
    t.hot.last <- e.time;
    t.w_events <- t.w_events + 1;
    match e.body with
    | Event.Vc_advanced _ | Event.Dd_eliminated _ | Event.Hb_eliminated _
    | Event.Channel_eliminated _ ->
        t.w_elims <- t.w_elims + 1
    | Event.Run_meta { algo; n; width } ->
        send t (Meta { algo; n; width; every = t.every })
    | Event.Phase_marked { name } ->
        close_phase t ~at:e.time;
        open_phase t ~name ~at:e.time
    | Event.Token_sent { seq; _ } -> note_sent t seq e.time
    | Event.Token_regenerated { seq; _ } ->
        note_sent t seq e.time;
        t.w_regens <- t.w_regens + 1
    | Event.Token_received { seq } ->
        t.w_hops <- t.w_hops + 1;
        let t0 = if seq < Array.length t.sent_at then t.sent_at.(seq) else nan in
        if not (Float.is_nan t0) then begin
          let d = e.time -. t0 in
          Metrics.observe t.h_hop d;
          t.w_lat <- d :: t.w_lat
        end
    | Event.Poll_sent _ -> t.w_polls <- t.w_polls + 1
    | Event.Snapshot_arrived _ -> t.w_snaps <- t.w_snaps + 1
    | Event.Retransmitted _ -> t.w_retx <- t.w_retx + 1
    | Event.Probe_sent _ -> t.w_probes <- t.w_probes + 1
    | Event.Checkpoint_taken _ -> t.w_ckpts <- t.w_ckpts + 1
    | Event.Restored _ -> t.w_restores <- t.w_restores + 1
    | Event.Replayed _ -> t.w_replays <- t.w_replays + 1
    | Event.Watchdog_stood_down _ -> t.w_wd <- t.w_wd + 1
    | _ -> ()
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    if t.w_events > 0 then close_window t;
    close_phase t ~at:t.hot.last;
    send t
      (Total
         {
           windows = t.windows_emitted;
           events = Metrics.count t.c_events;
           elims = Metrics.count t.c_elims;
           hops = Metrics.count t.c_hops;
           phases = t.phases_emitted;
         })
  end

let attach t r = Recorder.attach_tap r (fun e -> feed t e)
