(** Binary min-heap with a user-supplied total order.

    The discrete-event engine keys events by [(time, sequence-number)];
    the heap is generic so tests can exercise it on plain integers. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap ordered by [cmp] (smallest element first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element, or [None] when empty. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument when empty. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Non-destructive: all elements in ascending order. O(k log k). *)

(** Struct-of-arrays min-heap specialised to [(at, seq)] keys — the
    discrete-event engine's event queue. Keys are stored in an unboxed
    float array and an int array, so [add] allocates nothing beyond
    occasional capacity doubling and comparisons involve no closure or
    boxed float. Ties on [at] break toward the smaller [seq]. *)
module Flat : sig
  type 'a t

  val create : unit -> 'a t

  val length : 'a t -> int

  val is_empty : 'a t -> bool

  val add : 'a t -> at:float -> seq:int -> 'a -> unit

  val min_at : 'a t -> float
  (** Key of the smallest element.
      @raise Invalid_argument when empty. *)

  val pop_exn : 'a t -> 'a
  (** Remove and return the payload of the smallest element.
      @raise Invalid_argument when empty. *)

  val clear : 'a t -> unit
end
