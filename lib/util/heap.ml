type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t x =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let fresh = Array.make (max 8 (2 * capacity)) x in
    Array.blit t.data 0 fresh 0 t.size;
    t.data <- fresh
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    t.data.(0) <- t.data.(t.size);
    sift_down t 0;
    Some top
  end

let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty"

let clear t =
  t.data <- [||];
  t.size <- 0

let to_sorted_list t =
  let copy = { cmp = t.cmp; data = Array.sub t.data 0 t.size; size = t.size } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []

(* ------------------------------------------------------------------ *)

module Flat = struct
  (* Struct-of-arrays min-heap keyed on (at, seq). Keys live in an
     unboxed float array and a plain int array, so a push allocates
     nothing and key comparisons never touch a closure or a boxed
     float — unlike the generic heap above, whose (float, int, payload)
     records cost ~10 words per event in the discrete-event engine. *)

  type 'a t = {
    mutable at : float array;
    mutable seq : int array;
    mutable payload : 'a array;
    mutable size : int;
  }

  let create () = { at = [||]; seq = [||]; payload = [||]; size = 0 }

  let length t = t.size

  let is_empty t = t.size = 0

  (* [x] seeds the payload array so no dummy element is needed. *)
  let grow t x =
    let capacity = Array.length t.seq in
    if t.size = capacity then begin
      let cap = max 8 (2 * capacity) in
      let at = Array.make cap 0.0 in
      let seq = Array.make cap 0 in
      let payload = Array.make cap x in
      Array.blit t.at 0 at 0 t.size;
      Array.blit t.seq 0 seq 0 t.size;
      Array.blit t.payload 0 payload 0 t.size;
      t.at <- at;
      t.seq <- seq;
      t.payload <- payload
    end

  let[@inline] less t i j =
    t.at.(i) < t.at.(j) || (t.at.(i) = t.at.(j) && t.seq.(i) < t.seq.(j))

  let[@inline] swap t i j =
    let a = t.at.(i) in
    t.at.(i) <- t.at.(j);
    t.at.(j) <- a;
    let s = t.seq.(i) in
    t.seq.(i) <- t.seq.(j);
    t.seq.(j) <- s;
    let p = t.payload.(i) in
    t.payload.(i) <- t.payload.(j);
    t.payload.(j) <- p

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less t i parent then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && less t l !smallest then smallest := l;
    if r < t.size && less t r !smallest then smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let add t ~at ~seq x =
    grow t x;
    let i = t.size in
    t.at.(i) <- at;
    t.seq.(i) <- seq;
    t.payload.(i) <- x;
    t.size <- i + 1;
    sift_up t i

  let min_at t =
    if t.size = 0 then invalid_arg "Heap.Flat.min_at: empty";
    t.at.(0)

  let pop_exn t =
    if t.size = 0 then invalid_arg "Heap.Flat.pop_exn: empty";
    let top = t.payload.(0) in
    let last = t.size - 1 in
    t.size <- last;
    if last > 0 then begin
      t.at.(0) <- t.at.(last);
      t.seq.(0) <- t.seq.(last);
      t.payload.(0) <- t.payload.(last);
      sift_down t 0
    end;
    (* The vacated slot keeps one stale reference until overwritten by
       a later add — same transient behaviour as the generic heap. *)
    top

  let clear t =
    t.at <- [||];
    t.seq <- [||];
    t.payload <- [||];
    t.size <- 0
end
