(* SplitMix64, implemented on native ints as two 32-bit halves.

   The obvious implementation (Int64 arithmetic) boxes every
   intermediate on non-flambda compilers, which made the generator the
   single largest allocator in the whole simulator (~60% of all bytes
   in a bench sweep). The (lo, hi) split below performs the exact same
   64-bit arithmetic — the output stream is bit-for-bit identical to
   the Int64 version, which the golden corpus and cram suites pin —
   with zero allocation per draw.

   Invariant: [lo] and [hi] always hold values in [0, 2^32). *)

type t = {
  mutable lo : int;
  mutable hi : int;
  (* Output halves of the last [next] call; scratch space so the mixing
     function can "return" two values without allocating a tuple. *)
  mutable out_lo : int;
  mutable out_hi : int;
}

let mask32 = 0xFFFFFFFF

(* gamma = 0x9E3779B97F4A7C15, c1 = 0xBF58476D1CE4E5B9,
   c2 = 0x94D049BB133111EB: the SplitMix64 constants, split in half. *)
let gamma_lo = 0x7F4A7C15
let gamma_hi = 0x9E3779B9
let c1_lo = 0x1CE4E5B9
let c1_hi = 0xBF58476D
let c2_lo = 0x133111EB
let c2_hi = 0x94D049BB

let create seed =
  {
    lo = Int64.to_int (Int64.logand seed 0xFFFFFFFFL);
    hi = Int64.to_int (Int64.logand (Int64.shift_right_logical seed 32) 0xFFFFFFFFL);
    out_lo = 0;
    out_hi = 0;
  }

let copy t = { lo = t.lo; hi = t.hi; out_lo = t.out_lo; out_hi = t.out_hi }

(* (a * b) mod 2^32 for a, b in [0, 2^32). The partial products stay
   under 2^49, far inside the 63-bit native range; the lsl 16 may spill
   past bit 62 but only bits below 32 survive the mask. *)
let[@inline] mul_lo32 a b =
  ((a * (b land 0xFFFF)) + ((a * (b lsr 16)) lsl 16)) land mask32

(* Full 64-bit product (a * b) mod 2^64 of a = ah·2^32 + al and
   b = bh·2^32 + bl, written to [t.out_lo] / [t.out_hi]. The low 32×32
   product is computed in 16-bit limbs so no intermediate exceeds
   2^33. *)
let[@inline] mul64 t al ah bl bh =
  let a0 = al land 0xFFFF and a1 = al lsr 16 in
  let b0 = bl land 0xFFFF and b1 = bl lsr 16 in
  let p0 = a0 * b0 in
  let p1 = (a1 * b0) + (p0 lsr 16) in
  let p2 = (a0 * b1) + (p1 land 0xFFFF) in
  let lo = ((p2 land 0xFFFF) lsl 16) lor (p0 land 0xFFFF) in
  let carry = (a1 * b1) + (p1 lsr 16) + (p2 lsr 16) in
  t.out_lo <- lo;
  t.out_hi <- (carry + mul_lo32 al bh + mul_lo32 ah bl) land mask32

(* Advance by the golden gamma, then mix; leaves z in out_lo/out_hi. *)
let next t =
  let lo = t.lo + gamma_lo in
  let hi = (t.hi + gamma_hi + (lo lsr 32)) land mask32 in
  let lo = lo land mask32 in
  t.lo <- lo;
  t.hi <- hi;
  (* z ^= z >>> 30 *)
  let zl = lo lxor ((lo lsr 30) lor ((hi land 0x3FFFFFFF) lsl 2)) in
  let zh = hi lxor (hi lsr 30) in
  mul64 t zl zh c1_lo c1_hi;
  (* z ^= z >>> 27 *)
  let zl = t.out_lo and zh = t.out_hi in
  let zl = zl lxor ((zl lsr 27) lor ((zh land 0x7FFFFFF) lsl 5)) in
  let zh = zh lxor (zh lsr 27) in
  mul64 t zl zh c2_lo c2_hi;
  (* z ^= z >>> 31 *)
  let zl = t.out_lo and zh = t.out_hi in
  t.out_lo <- zl lxor ((zl lsr 31) lor ((zh land 0x7FFFFFFF) lsl 1));
  t.out_hi <- zh lxor (zh lsr 31)

let next_int64 t =
  next t;
  Int64.logor
    (Int64.shift_left (Int64.of_int t.out_hi) 32)
    (Int64.of_int t.out_lo)

let split t = create (next_int64 t)

let int t bound =
  assert (bound > 0);
  next t;
  (* mask = z >>> 1, a 63-bit value: hi·2^31 + (lo >>> 1). *)
  if bound < 0x40000000 then
    (* Reduce without materialising the 63-bit value (it can exceed
       [max_int]): (hi·2^31 + w) mod b, with every product < 2^62. *)
    ((t.out_hi mod bound) * (0x80000000 mod bound) + ((t.out_lo lsr 1) mod bound))
    mod bound
  else
    (* Rare large-bound path; keep the exact Int64 semantics. *)
    let z =
      Int64.logor
        (Int64.shift_left (Int64.of_int t.out_hi) 32)
        (Int64.of_int t.out_lo)
    in
    Int64.to_int
      (Int64.rem (Int64.shift_right_logical z 1) (Int64.of_int bound))

(* bits = z >>> 11, a 53-bit value that fits a native int exactly. *)
let[@inline] bits53 t = (t.out_hi lsl 21) lor (t.out_lo lsr 11)

let two53 = 9007199254740992.0

let float t bound =
  next t;
  float_of_int (bits53 t) /. two53 *. bound

let bool t =
  next t;
  t.out_lo land 1 = 1

let bernoulli t p =
  next t;
  (* Same value as [float t 1.0 < p], without the boxed return. *)
  float_of_int (bits53 t) /. two53 < p

let exponential t ~mean =
  next t;
  let u = float_of_int (bits53 t) /. two53 in
  (* Avoid log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
