(** Deterministic parallel map over OCaml 5 domains.

    A fixed pool of domains claims work from a shared atomic counter in
    {e chunks} of consecutive indices (roughly 8 chunks per domain), so
    cheap items do not contend on the counter; a domain that finishes
    its chunk steals the next unclaimed one.

    {b Determinism contract.} Result [i] always comes from input [i]:
    the output array is a positional image of the input, never a
    completion-order one. Consequently, for a pure [f] the output is
    {e byte-identical} whatever the domain count (including 1, which
    runs entirely in the calling domain with no pool at all) and
    whatever the chunk schedule. Only wall-clock time may vary. The
    bench harness leans on this: a parallel sweep must be
    byte-identical to a sequential one (experiment E15 asserts it).

    [f] must not rely on domain-local or shared mutable state and the
    calls must be independent: items run concurrently in unspecified
    order. If any call raises, every domain still drains its remaining
    chunks, and then the first exception {e by input index} (not by
    completion time) is re-raised in the calling domain — also a
    deterministic choice.

    [domains] is clamped to the item count; [~domains:d] with [d < 1]
    is an [Invalid_argument], as is a [WCP_DOMAINS] environment value
    that is not a positive integer. *)

val default_domains : unit -> int
(** [WCP_DOMAINS] from the environment if set and non-empty (must then
    be a positive integer), else {!Domain.recommended_domain_count}. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f xs] with [domains] defaulting to
    {!default_domains}. The pool never exceeds [Array.length xs]. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
