(** Deterministic parallel map over OCaml 5 domains.

    A fixed pool of domains claims work items from a shared counter;
    result [i] always comes from input [i], so for a pure function the
    output is identical whatever the domain count (including 1, which
    runs entirely in the calling domain). Used by the bench harness to
    fan independent simulation runs out across cores while keeping the
    emitted metrics byte-identical to a sequential sweep.

    [f] must not rely on domain-local state and the calls must be
    independent: items run concurrently in unspecified order. If any
    call raises, the first such exception (by input index) is re-raised
    after all domains have drained. *)

val default_domains : unit -> int
(** [WCP_DOMAINS] from the environment if set (must be a positive
    integer), else {!Domain.recommended_domain_count}. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f xs] with [domains] defaulting to
    {!default_domains}. The pool never exceeds [Array.length xs]. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
