(** Deterministic parallel primitives over OCaml 5 domains.

    A process-wide pool of worker domains is created lazily, parked on
    a condition variable between jobs, and reused across calls — the
    hot path ({!map} in a loop, the round barrier inside the parallel
    checker) never pays [Domain.spawn]. {!spawns} exposes the lifetime
    spawn count so tests can assert exactly that.

    {!map} claims work from a shared atomic counter in {e chunks} of
    consecutive indices (roughly 8 chunks per domain), so cheap items
    do not contend on the counter; a domain that finishes its chunk
    steals the next unclaimed one.

    {b Determinism contract.} Result [i] always comes from input [i]:
    the output array is a positional image of the input, never a
    completion-order one. Consequently, for a pure [f] the output is
    {e byte-identical} whatever the domain count (including 1, which
    runs entirely in the calling domain with no pool at all) and
    whatever the chunk schedule. Only wall-clock time may vary. The
    bench harness leans on this: a parallel sweep must be
    byte-identical to a sequential one (experiment E15 asserts it),
    and the parallel checker's cuts must be byte-identical at any
    domain count (experiment E18 asserts it).

    [f] must not rely on domain-local or shared mutable state and the
    calls must be independent: items run concurrently in unspecified
    order. If any call raises, every domain still drains its remaining
    chunks, and then the first exception {e by input index} (not by
    completion time) is re-raised in the calling domain — also a
    deterministic choice.

    [domains] is clamped to the item count; [~domains:d] with [d < 1]
    is an [Invalid_argument], as is a [WCP_DOMAINS] environment value
    that is not a positive integer. *)

val default_domains : unit -> int
(** [WCP_DOMAINS] from the environment if set and non-empty (must then
    be a positive integer), else {!Domain.recommended_domain_count}.
    Read live on every call — tests and the CLI change it at run
    time. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f xs] with [domains] defaulting to
    {!default_domains}. Never engages more than [Array.length xs]
    domains. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

(** {1 Scoped pools}

    For round-structured algorithms that hit the barrier many times
    ({!map} pays one reservation per call; a scope pays one for any
    number of {!run}s). *)

type pool
(** A reservation of worker domains. With one domain it is a no-op
    wrapper: {!run} executes inline in the caller. *)

val scoped_pool : ?domains:int -> (pool -> 'a) -> 'a
(** [scoped_pool ~domains f] reserves [domains] domains (the caller
    plus [domains - 1] pool workers, grown on demand but {e reused},
    never respawned) and runs [f] with the reservation; the pool
    returns to the shared pool when [f] returns or raises. [domains]
    defaults to {!default_domains}; [d < 1] is an [Invalid_argument].
    If the shared pool is already reserved — nested parallelism — the
    scope gets private, short-lived domains instead, so nesting is
    safe, just not free. *)

val pool_domains : pool -> int
(** Total domains the scope may engage, caller included. *)

val run : pool -> (slot:int -> slots:int -> unit) -> unit
(** [run pool f] executes [f ~slot ~slots] once per engaged domain —
    [slot] ranging over [0 .. slots-1], the caller taking slot 0 — and
    returns only after {e all} slots have finished (a barrier). Writes
    made by the slots are visible to the caller afterwards. If slots
    raise, the first exception by slot number is re-raised after the
    barrier. Must not be called re-entrantly on the same pool (from
    inside [f]): that deadlocks. *)

val spawns : unit -> int
(** Total [Domain.spawn]s performed by this module over the process
    lifetime. A warm pool makes repeated {!map}/{!run} calls leave
    this unchanged — the no-respawn regression test pins that. *)
