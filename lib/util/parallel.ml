(* Pooled parallel primitives over OCaml 5 domains.

   Two layers:

   - a persistent worker pool (domains parked on a condition variable
     between jobs), grown on demand and reused across calls so the hot
     path never pays [Domain.spawn];
   - [map], the deterministic parallel map, rebuilt on top of the pool.
     Work is claimed from a shared atomic counter in chunks (batch
     scheduling): each claim grabs a run of consecutive indices, so
     cheap items don't serialize on the counter — one fetch-and-add
     amortizes over the whole chunk. Every result is still written to
     the slot of its input index, so the output order — and, for a pure
     [f], the output values — are independent of the domain count, the
     chunk size, and scheduling. The bench harness leans on this: a
     parallel sweep must be byte-identical to a sequential one.

   One shared pool serves the whole process. A [scoped_pool] reserves
   it for the duration of a scope; if it is already reserved (nested
   parallelism: a [map] running inside another [map]'s worker), the
   scope falls back to a private pool of freshly spawned domains that
   is torn down when the scope ends — the pre-pool behavior, kept only
   for the nested case. *)

let default_domains () =
  match Sys.getenv_opt "WCP_DOMAINS" with
  (* An empty value counts as unset: there is no portable way to remove
     an environment entry, only to blank it. *)
  | Some s when String.trim s <> "" -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | _ -> invalid_arg "WCP_DOMAINS must be a positive integer")
  | Some _ | None -> max 1 (Domain.recommended_domain_count ())

(* ------------------------------------------------------------------ *)
(* The worker pool                                                     *)
(* ------------------------------------------------------------------ *)

let spawn_count = Atomic.make 0
let spawns () = Atomic.get spawn_count

type workers = {
  lock : Mutex.t;
  wake : Condition.t; (* workers park here between jobs *)
  settled : Condition.t; (* the submitter parks here during a job *)
  mutable generation : int;
  mutable job : (int -> unit) option; (* given the worker's slot number *)
  mutable participants : int; (* workers engaged by the current job *)
  mutable pending : int;
  mutable stop : bool;
  mutable spawned : unit Domain.t array;
}

type pool =
  | Seq  (** one domain: the caller runs everything inline *)
  | Pooled of { w : workers; total : int; private_ : bool }

let worker_loop w index =
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock w.lock;
    while (not w.stop) && w.generation = !last do
      Condition.wait w.wake w.lock
    done;
    if w.stop then begin
      Mutex.unlock w.lock;
      running := false
    end
    else begin
      last := w.generation;
      if index < w.participants then begin
        let job = Option.get w.job in
        Mutex.unlock w.lock;
        (* Jobs wrap user code and must not raise (see [run]); the
           catch-all keeps a buggy job from wedging the barrier. *)
        (try job (index + 1) with _ -> ());
        Mutex.lock w.lock;
        w.pending <- w.pending - 1;
        if w.pending = 0 then Condition.signal w.settled;
        Mutex.unlock w.lock
      end
      else Mutex.unlock w.lock
    end
  done

let make_workers () =
  {
    lock = Mutex.create ();
    wake = Condition.create ();
    settled = Condition.create ();
    generation = 0;
    job = None;
    participants = 0;
    pending = 0;
    stop = false;
    spawned = [||];
  }

(* Grow [w] to at least [k] parked workers. Only the owner of the pool
   calls this, and never while a job is in flight. *)
let ensure_workers w k =
  let have = Array.length w.spawned in
  if have < k then begin
    let extra =
      Array.init (k - have) (fun j ->
          Atomic.incr spawn_count;
          Domain.spawn (fun () -> worker_loop w (have + j)))
    in
    w.spawned <- Array.append w.spawned extra
  end

let shutdown_workers w =
  Mutex.lock w.lock;
  w.stop <- true;
  Condition.broadcast w.wake;
  Mutex.unlock w.lock;
  Array.iter Domain.join w.spawned;
  w.spawned <- [||]

(* The process-wide shared pool: created on first use, reserved by a
   compare-and-set so concurrent scopes never share a generation
   counter, torn down at exit (OCaml requires spawned domains to be
   joined before the runtime shuts down). *)
let shared : workers option ref = ref None
let shared_busy = Atomic.make false
let shared_create_lock = Mutex.create ()

let shared_workers () =
  match !shared with
  | Some w -> w
  | None ->
      Mutex.lock shared_create_lock;
      let w =
        match !shared with
        | Some w -> w
        | None ->
            let w = make_workers () in
            shared := Some w;
            at_exit (fun () -> shutdown_workers w);
            w
      in
      Mutex.unlock shared_create_lock;
      w

let pool_domains = function Seq -> 1 | Pooled { total; _ } -> total

let scoped_pool ?domains f =
  let d =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Parallel.scoped_pool: domains must be >= 1";
        d
    | None -> default_domains ()
  in
  if d <= 1 then f Seq
  else if Atomic.compare_and_set shared_busy false true then begin
    let w = shared_workers () in
    ensure_workers w (d - 1);
    Fun.protect
      ~finally:(fun () -> Atomic.set shared_busy false)
      (fun () -> f (Pooled { w; total = d; private_ = false }))
  end
  else begin
    (* The shared pool is reserved by an enclosing scope: nested
       parallelism gets its own short-lived domains. *)
    let w = make_workers () in
    ensure_workers w (d - 1);
    Fun.protect
      ~finally:(fun () -> shutdown_workers w)
      (fun () -> f (Pooled { w; total = d; private_ = true }))
  end

let run pool f =
  match pool with
  | Seq -> f ~slot:0 ~slots:1
  | Pooled { w; total; _ } ->
      let helpers = total - 1 in
      (* First exception by slot number, re-raised after the barrier so
         every worker still settles. *)
      let errors = Array.make total None in
      let body slot =
        match f ~slot ~slots:total with
        | () -> ()
        | exception e -> errors.(slot) <- Some e
      in
      Mutex.lock w.lock;
      w.job <- Some body;
      w.participants <- helpers;
      w.pending <- helpers;
      w.generation <- w.generation + 1;
      Condition.broadcast w.wake;
      Mutex.unlock w.lock;
      body 0;
      Mutex.lock w.lock;
      while w.pending > 0 do
        Condition.wait w.settled w.lock
      done;
      w.job <- None;
      Mutex.unlock w.lock;
      Array.iter (function Some e -> raise e | None -> ()) errors

(* ------------------------------------------------------------------ *)
(* Deterministic parallel map on top of the pool                       *)
(* ------------------------------------------------------------------ *)

let map ?domains f xs =
  let n = Array.length xs in
  let domains =
    let d = match domains with Some d -> d | None -> default_domains () in
    if d < 1 then invalid_arg "Parallel.map: domains must be >= 1";
    min d n
  in
  if n = 0 then [||]
  else if domains <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* 8 chunks per domain: small enough to amortize the atomic, large
       enough that an unlucky domain stuck with slow items leaves
       plenty of chunks for the others to steal. *)
    let chunk = max 1 (n / (domains * 8)) in
    let worker ~slot:_ ~slots:_ =
      let rec go () =
        let start = Atomic.fetch_and_add next chunk in
        if start < n then begin
          let stop = min n (start + chunk) in
          for i = start to stop - 1 do
            (* Each slot is written by exactly one domain (the
               claimant) and read only after the barrier below, so this
               is data-race free under the OCaml memory model. *)
            results.(i) <-
              (match f xs.(i) with
              | y -> Some (Ok y)
              | exception e -> Some (Error e))
          done;
          go ()
        end
      in
      go ()
    in
    scoped_pool ~domains (fun pool -> run pool worker);
    Array.map
      (function
        | Some (Ok y) -> y
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let map_list ?domains f xs =
  Array.to_list (map ?domains f (Array.of_list xs))
