(* Fixed-pool parallel map over OCaml 5 domains.

   Work is claimed from a shared atomic counter in chunks (batch
   scheduling): each claim grabs a run of consecutive indices, so cheap
   items don't serialize on the counter — one fetch-and-add amortizes
   over the whole chunk. Every result is still written to the slot of
   its input index, so the output order — and, for a pure [f], the
   output values — are independent of the domain count, the chunk size,
   and scheduling. The bench harness leans on this: a parallel sweep
   must be byte-identical to a sequential one. *)

let default_domains () =
  match Sys.getenv_opt "WCP_DOMAINS" with
  (* An empty value counts as unset: there is no portable way to remove
     an environment entry, only to blank it. *)
  | Some s when String.trim s <> "" -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | _ -> invalid_arg "WCP_DOMAINS must be a positive integer")
  | Some _ | None -> max 1 (Domain.recommended_domain_count ())

let map ?domains f xs =
  let n = Array.length xs in
  let domains =
    let d = match domains with Some d -> d | None -> default_domains () in
    if d < 1 then invalid_arg "Parallel.map: domains must be >= 1";
    min d n
  in
  if n = 0 then [||]
  else if domains <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* 8 chunks per domain: small enough to amortize the atomic, large
       enough that an unlucky domain stuck with slow items leaves
       plenty of chunks for the others to steal. *)
    let chunk = max 1 (n / (domains * 8)) in
    let worker () =
      let rec go () =
        let start = Atomic.fetch_and_add next chunk in
        if start < n then begin
          let stop = min n (start + chunk) in
          for i = start to stop - 1 do
            (* Each slot is written by exactly one domain (the
               claimant) and read only after the joins below, so this
               is data-race free under the OCaml memory model. *)
            results.(i) <-
              (match f xs.(i) with
              | y -> Some (Ok y)
              | exception e -> Some (Error e))
          done;
          go ()
        end
      in
      go ()
    in
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.map
      (function
        | Some (Ok y) -> y
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let map_list ?domains f xs =
  Array.to_list (map ?domains f (Array.of_list xs))
