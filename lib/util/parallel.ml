(* Fixed-pool parallel map over OCaml 5 domains.

   Work items are claimed from a shared atomic counter, but every
   result is written to the slot of its input index, so the output
   order — and, for a pure [f], the output values — are independent of
   the domain count and of scheduling. The bench harness leans on this:
   a parallel sweep must be byte-identical to a sequential one. *)

let default_domains () =
  match Sys.getenv_opt "WCP_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | _ -> invalid_arg "WCP_DOMAINS must be a positive integer")
  | None -> max 1 (Domain.recommended_domain_count ())

let map ?domains f xs =
  let n = Array.length xs in
  let domains =
    let d = match domains with Some d -> d | None -> default_domains () in
    if d < 1 then invalid_arg "Parallel.map: domains must be >= 1";
    min d n
  in
  if n = 0 then [||]
  else if domains <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (* Each slot is written by exactly one domain (the claimant)
             and read only after the joins below, so this is data-race
             free under the OCaml memory model. *)
          (results.(i) <-
             (match f xs.(i) with
             | y -> Some (Ok y)
             | exception e -> Some (Error e)));
          go ()
        end
      in
      go ()
    in
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.map
      (function
        | Some (Ok y) -> y
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let map_list ?domains f xs =
  Array.to_list (map ?domains f (Array.of_list xs))
