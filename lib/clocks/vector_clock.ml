type t = int array

type relation = Before | After | Concurrent | Equal

let make ~n ~owner =
  assert (n > 0 && owner >= 0 && owner < n);
  let v = Array.make n 0 in
  v.(owner) <- 1;
  v

let of_array a =
  Array.iter (fun x -> assert (x >= 0)) a;
  Array.copy a

let to_array t = Array.copy t

let copy = Array.copy

let size = Array.length

let get t i = t.(i)

let tick t ~owner =
  let v = Array.copy t in
  v.(owner) <- v.(owner) + 1;
  v

let tick_into t ~owner = t.(owner) <- t.(owner) + 1

let merge_into ~into b =
  assert (Array.length into = Array.length b);
  for i = 0 to Array.length into - 1 do
    if b.(i) > into.(i) then into.(i) <- b.(i)
  done

let merge a b =
  assert (Array.length a = Array.length b);
  let v = Array.copy a in
  merge_into ~into:v b;
  v

(* Fused merge-then-tick: one allocation instead of the two a
   [tick (merge t msg)] pipeline performs. This is the per-receive hot
   path of the trace replay. *)
let receive t ~owner ~msg =
  let v = merge t msg in
  v.(owner) <- v.(owner) + 1;
  v

let leq a b =
  assert (Array.length a = Array.length b);
  let n = Array.length a in
  let rec go i = i = n || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let equal a b =
  a == b
  ||
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i = n || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let lt a b = leq a b && not (equal a b)

let relation a b =
  match (leq a b, leq b a) with
  | true, true -> Equal
  | true, false -> Before
  | false, true -> After
  | false, false -> Concurrent

let concurrent a b = relation a b = Concurrent

(* Same order as the polymorphic [Stdlib.compare] on int arrays (size
   first, then lexicographic), without the polymorphic dispatch. *)
let compare a b =
  if a == b then 0
  else
    let la = Array.length a and lb = Array.length b in
    if la <> lb then Stdlib.compare la lb
    else
      let rec go i =
        if i = la then 0
        else
          let c = Stdlib.compare (a.(i) : int) b.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

(* --- Sparse delta codec (wire compression) ---------------------- *)

(* A delta is a flat [|i0; v0; i1; v1; ...|] array of (index, value)
   pairs: the entries of [v] that differ from [base]. Values are
   absolute, not increments, so applying the same delta twice is
   idempotent — a property the token layer relies on when a regenerated
   (duplicate) token is decoded against an already-updated cache. *)

let encode_delta ~base v =
  let n = Array.length v in
  if Array.length base <> n then invalid_arg "Vector_clock.encode_delta: size";
  let changed = ref 0 in
  for i = 0 to n - 1 do
    if v.(i) <> base.(i) then incr changed
  done;
  let delta = Array.make (2 * !changed) 0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    if v.(i) <> base.(i) then begin
      delta.(!k) <- i;
      delta.(!k + 1) <- v.(i);
      k := !k + 2
    end
  done;
  delta

let decode_delta ~base delta =
  if Array.length delta land 1 <> 0 then
    invalid_arg "Vector_clock.decode_delta: odd-length delta";
  let v = Array.copy base in
  let n = Array.length v in
  let k = ref 0 in
  while !k < Array.length delta do
    let i = delta.(!k) in
    if i < 0 || i >= n then invalid_arg "Vector_clock.decode_delta: bad index";
    v.(i) <- delta.(!k + 1);
    k := !k + 2
  done;
  v

let delta_pairs delta = Array.length delta / 2

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    (Array.to_list t)

let to_string t = Format.asprintf "%a" pp t
