(** Vector clocks (Fidge [4] / Mattern [9]).

    A vector clock over [n] processes is an [n]-vector of non-negative
    integers. Process indices are 0-based throughout the library (the
    paper writes [P_1 .. P_n]; we write [P_0 .. P_{n-1}]).

    The clock discipline follows Fig. 2 of the paper: process [i] starts
    with [v = 0 .. 0] except [v.(i) = 1]; on every send the current
    clock is attached to the message and then [v.(i)] is incremented;
    on every receive the clock is merged with the message's clock and
    then [v.(i)] is incremented. Thus [v.(i)] equals the 1-based index
    of the current local state (interval between communication events).

    Key properties used by the detection algorithms (paper §3.1):
    - [a → b  ⟺  a.v < b.v] for states [a], [b] of distinct processes;
    - for a clock [v] held by process [i] and any [j ≠ i],
      state [(j, v.(j))] happened before state [(i, v.(i))]. *)

type t = private int array
(** Immutable by convention: no function in this interface mutates a
    [t] that it did not itself allocate — except the explicitly
    in-place {!tick_into} and {!merge_into}, which exist for
    allocation-free hot loops and require the caller to own the clock
    uniquely. *)

type relation = Before | After | Concurrent | Equal

val make : n:int -> owner:int -> t
(** Initial clock of process [owner] among [n] processes. *)

val of_array : int array -> t
(** Adopt (copies) an arbitrary vector; entries must be [>= 0]. *)

val to_array : t -> int array
(** Fresh copy as a plain array. *)

val size : t -> int

val get : t -> int -> int

val tick : t -> owner:int -> t
(** Increment the owner's component (a fresh vector is returned). *)

val merge : t -> t -> t
(** Component-wise maximum. Both vectors must have the same size. *)

val receive : t -> owner:int -> msg:t -> t
(** [merge] then [tick]: the Fig. 2 receive rule. Allocates once (not
    once per step). *)

(** {2 In-place operations}

    Allocation-free variants for hot loops. They mutate their first
    argument, so they are only sound on clocks the caller owns
    uniquely — never on a clock obtained from another module (clocks
    are shared structurally throughout the library). *)

val copy : t -> t
(** Fresh, uniquely-owned copy; the usual way to obtain a clock that
    may be passed to {!tick_into} / {!merge_into}. *)

val tick_into : t -> owner:int -> unit
(** [tick_into t ~owner] is [tick] without the copy: increments
    [t.(owner)] in place. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into b] folds [b] into [into] by component-wise
    maximum, in place. Both clocks must have the same size. *)

val leq : t -> t -> bool
(** Component-wise [<=]. *)

val lt : t -> t -> bool
(** [leq a b && a <> b]: the happened-before test for states of
    distinct processes. *)

val relation : t -> t -> relation

val concurrent : t -> t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int
(** Arbitrary total order (lexicographic); for use in sets and maps
    only — NOT the causal order. *)

(** {2 Sparse delta codec}

    Wire compression for clock vectors in the style of
    Singhal–Kshemkalyani: ship only the entries that changed since the
    last vector the receiver saw on the same channel. Both ends must
    agree on the base — sound whenever per-channel delivery is FIFO (or
    the messages on the channel are causally serialised, as token hops
    are). The functions work on raw [int array]s so projected clock
    vectors (spec-width arrays, not full [t]s) can use the same codec;
    a [t] coerces via [(v :> int array)]. *)

val encode_delta : base:int array -> int array -> int array
(** [encode_delta ~base v] is the flat [|i0; v0; i1; v1; ...|] array of
    (index, value) pairs on which [v] and [base] disagree, in
    increasing index order. Values are absolute, so a delta is
    idempotent under {!decode_delta}. Sizes must match. *)

val decode_delta : base:int array -> int array -> int array
(** [decode_delta ~base delta] is a fresh vector: [base] with the
    delta's entries overwritten. Raises [Invalid_argument] on an
    odd-length delta or an out-of-range index. *)

val delta_pairs : int array -> int
(** Number of (index, value) pairs in an encoded delta. *)

val pp : Format.formatter -> t -> unit
(** Renders as [[1,0,3]]. *)

val to_string : t -> string
