open Wcp_trace

(* Minimal growable vector (no stdlib Dynarray dependency). *)
type 'a vec = { mutable arr : 'a array; mutable len : int }

let vec_create () = { arr = [||]; len = 0 }

let vec_push v x =
  (if v.len = Array.length v.arr then
     let cap = max 8 (2 * Array.length v.arr) in
     let arr = Array.make cap x in
     Array.blit v.arr 0 arr 0 v.len;
     v.arr <- arr);
  v.arr.(v.len) <- x;
  v.len <- v.len + 1

let vec_get v i = v.arr.(i)

(* One retained state. [avc] is its dense vector clock: the whole edge
   computation is happened-before queries between retained states, and
   (i, s) hb (j, t) for i <> j iff vc(j, t).(i) >= s. *)
type anchor = {
  dense : int;
  flag : bool;  (* dense predicate value at this state *)
  avc : int array;
  in_edges : (int * int) list;  (* (src proc, src anchor ordinal), src asc *)
}

type t = {
  sliced : Computation.t;
  dense_of : int array array;  (* per proc: slice state (1-based) - 1 -> dense *)
  anchor_dense : int array array;  (* per proc: ordinal -> dense state, asc *)
  anchor_image : int array array;  (* per proc: ordinal -> slice state *)
  retained : int;
  edges : int;
}

let computation t = t.sliced

let retained_states t = t.retained

let skeleton_messages t = t.edges

let dense_state t ~proc s =
  if proc < 0 || proc >= Array.length t.dense_of then
    invalid_arg "Slice.dense_state: no such process";
  let m = t.dense_of.(proc) in
  if s < 1 || s > Array.length m then
    invalid_arg "Slice.dense_state: state out of range";
  m.(s - 1)

let slice_state t ~proc s =
  if proc < 0 || proc >= Array.length t.anchor_dense then
    invalid_arg "Slice.slice_state: no such process";
  let d = t.anchor_dense.(proc) in
  (* Greatest ordinal with dense <= s, then check for exact hit. *)
  let lo = ref 0 and hi = ref (Array.length d - 1) and found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if d.(mid) <= s then begin
      found := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  if !found >= 0 && d.(!found) = s then Some t.anchor_image.(proc).(!found)
  else None

let remap_cut t cut =
  let procs = Array.copy cut.Cut.procs in
  let states =
    Array.mapi (fun k s -> dense_state t ~proc:procs.(k) s) cut.Cut.states
  in
  Cut.make ~procs ~states

let pp_stats ppf t =
  Format.fprintf ppf "slice: %d anchors, %d skeleton msgs, %d slice states"
    t.retained t.edges
    (Computation.total_states t.sliced)

module Incremental = struct
  type pstate = {
    vc : int array;  (* dense vector clock of the current state *)
    mutable state : int;  (* current dense state index *)
    anchors : anchor vec;
  }

  type builder = {
    n : int;
    keep : proc:int -> state:int -> bool;
    procs : pstate array;
    tags : (int, int array) Hashtbl.t;  (* in-flight msg -> sender clock *)
    mutable events : int;
    mutable nretained : int;
    mutable nedges : int;
  }

  let events_fed b = b.events

  let retained b = b.nretained

  (* Greatest anchor ordinal of [ps] with [dense <= x], or -1. *)
  let anchor_below ps x =
    let lo = ref 0 and hi = ref (ps.anchors.len - 1) and found = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if (vec_get ps.anchors mid).dense <= x then begin
        found := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    !found

  (* The current state of [p] was just retained: compute its skeleton
     in-edges. For each other process [i], the candidate source is the
     latest retained state of [i] visible here (pred_i = the greatest
     anchor <= vc.(i) — everything at or below vc.(i) has already been
     fed, so the answer can never change as more events arrive). An
     edge is dropped when the previous anchor of [p] already sees the
     source (chain pruning), and among the survivors only the
     happened-before-maximal sources are kept (cover pruning): both
     prunings only discard edges recoverable from kept ones by
     transitivity, so happened-before restricted to anchors is
     preserved exactly. *)
  let add_anchor b p flag =
    let ps = b.procs.(p) in
    let prev =
      if ps.anchors.len > 0 then Some (vec_get ps.anchors (ps.anchors.len - 1))
      else None
    in
    let sources = ref [] in
    for i = b.n - 1 downto 0 do
      if i <> p then
        let ord = anchor_below b.procs.(i) ps.vc.(i) in
        if ord >= 0 then begin
          let a = vec_get b.procs.(i).anchors ord in
          let implied =
            match prev with Some pa -> pa.avc.(i) >= a.dense | None -> false
          in
          if not implied then sources := (i, ord, a) :: !sources
        end
    done;
    let sources = !sources in
    let kept =
      List.filter
        (fun (i, _, (a : anchor)) ->
          not
            (List.exists
               (fun (k, _, (ak : anchor)) -> k <> i && ak.avc.(i) >= a.dense)
               sources))
        sources
    in
    vec_push ps.anchors
      {
        dense = ps.state;
        flag;
        avc = Array.copy ps.vc;
        in_edges = List.map (fun (i, ord, _) -> (i, ord)) kept;
      };
    b.nretained <- b.nretained + 1;
    b.nedges <- b.nedges + List.length kept

  let create ~n ~keep ~pred0 =
    if n < 1 then invalid_arg "Slice.Incremental.create: n < 1";
    let b =
      {
        n;
        keep;
        procs =
          Array.init n (fun p ->
              let vc = Array.make n 0 in
              vc.(p) <- 1;
              { vc; state = 1; anchors = vec_create () });
        tags = Hashtbl.create 64;
        events = 0;
        nretained = 0;
        nedges = 0;
      }
    in
    for p = 0 to n - 1 do
      if keep ~proc:p ~state:1 then add_anchor b p (pred0 p)
    done;
    b

  let enter_state b p pred =
    let ps = b.procs.(p) in
    ps.vc.(p) <- ps.vc.(p) + 1;
    ps.state <- ps.state + 1;
    b.events <- b.events + 1;
    if b.keep ~proc:p ~state:ps.state then add_anchor b p pred

  let on_send b ~proc ~dst:_ ~msg ~pred =
    if proc < 0 || proc >= b.n then invalid_arg "Slice: bad process";
    if Hashtbl.mem b.tags msg then
      invalid_arg "Slice.Incremental.on_send: message id reused";
    Hashtbl.replace b.tags msg (Array.copy b.procs.(proc).vc);
    enter_state b proc pred

  let on_receive b ~proc ~msg ~pred =
    if proc < 0 || proc >= b.n then invalid_arg "Slice: bad process";
    let tag =
      match Hashtbl.find_opt b.tags msg with
      | Some tg -> tg
      | None -> invalid_arg "Slice.Incremental.on_receive: receive before send"
    in
    Hashtbl.remove b.tags msg;
    let ps = b.procs.(proc) in
    for k = 0 to b.n - 1 do
      if tag.(k) > ps.vc.(k) then ps.vc.(k) <- tag.(k)
    done;
    enter_state b proc pred

  (* Materialisation. Skeleton messages get canonical identifiers —
     ascending by (target proc, target anchor, source proc) — and each
     process's script is laid out anchor by anchor: the sends leaving
     the previous anchor first, then the receives entering this one
     (sends carry exactly the past of their source anchor only if no
     later receive precedes them on the timeline). Consecutive anchors
     separated by no event collapse into one slice state. *)
  let finish b =
    let n = b.n in
    let next_id = ref 0 in
    let recvs_of =
      Array.map (fun ps -> Array.make ps.anchors.len []) b.procs
    in
    let out = Array.map (fun ps -> Array.make ps.anchors.len []) b.procs in
    for j = 0 to n - 1 do
      let anc = b.procs.(j).anchors in
      for t = 0 to anc.len - 1 do
        List.iter
          (fun (i, ord) ->
            let id = !next_id in
            incr next_id;
            recvs_of.(j).(t) <- id :: recvs_of.(j).(t);
            out.(i).(ord) <- (j, id) :: out.(i).(ord))
          (vec_get anc t).in_edges
      done
    done;
    let ops = Array.make n [||] in
    let preds = Array.make n [||] in
    let anchor_dense = Array.make n [||] in
    let anchor_image = Array.make n [||] in
    let dense_of = Array.make n [||] in
    for j = 0 to n - 1 do
      let anc = b.procs.(j).anchors in
      let opbuf = vec_create () in
      let predbuf = vec_create () in
      vec_push predbuf false;
      let cur = ref 1 in
      let pending = ref [] in
      let emit_send (dstp, id) =
        vec_push opbuf (Computation.Send { dst = dstp; msg = id });
        incr cur;
        vec_push predbuf false
      in
      let emit_recv id =
        vec_push opbuf (Computation.Recv { msg = id });
        incr cur;
        vec_push predbuf false
      in
      let images = Array.make anc.len 0 in
      let denses = Array.make anc.len 0 in
      for t = 0 to anc.len - 1 do
        let a = vec_get anc t in
        let recvs = List.rev recvs_of.(j).(t) in
        if recvs <> [] || !pending <> [] then begin
          List.iter emit_send !pending;
          pending := [];
          List.iter emit_recv recvs
        end;
        images.(t) <- !cur;
        denses.(t) <- a.dense;
        if a.flag then predbuf.arr.(!cur - 1) <- true;
        pending := List.rev out.(j).(t)
      done;
      List.iter emit_send !pending;
      ops.(j) <- Array.sub opbuf.arr 0 opbuf.len;
      preds.(j) <- Array.sub predbuf.arr 0 predbuf.len;
      anchor_dense.(j) <- denses;
      anchor_image.(j) <- images;
      (* Back-map: anchor states to the earliest dense member of their
         class, gap states to the following anchor, clamped at the
         trailing end. *)
      let s_total = !cur in
      let dmap = Array.make s_total 1 in
      if anc.len > 0 then begin
        let prev = ref 0 in
        let t = ref 0 in
        while !t < anc.len do
          let v = images.(!t) in
          let d = denses.(!t) in
          while !t < anc.len && images.(!t) = v do
            incr t
          done;
          for s = !prev + 1 to v do
            dmap.(s - 1) <- d
          done;
          prev := v
        done;
        let last = denses.(anc.len - 1) in
        for s = !prev + 1 to s_total do
          dmap.(s - 1) <- last
        done
      end;
      dense_of.(j) <- dmap
    done;
    {
      sliced = Computation.of_arrays ~ops ~pred:preds;
      dense_of;
      anchor_dense;
      anchor_image;
      retained = b.nretained;
      edges = b.nedges;
    }
end

let of_source (src : Computation.Stream.source) ~keep =
  let n = src.Computation.Stream.src_n in
  let pred p s = src.Computation.Stream.pred ~proc:p ~state:s in
  let b = Incremental.create ~n ~keep ~pred0:(fun p -> pred p 1) in
  (* Feed the recorded run in a causally consistent order: round-robin
     over processes, blocking each on its next unsatisfied receive —
     the same linearisation [Computation.of_arrays] validates with.
     Events are pulled through the cursor one at a time, so a btrace
     source never materialises the run. *)
  let nops = Array.init n src.Computation.Stream.num_ops in
  let cursor = Array.make n 0 in
  let states = Array.make n 1 in
  let progress = ref true in
  while !progress do
    progress := false;
    for p = 0 to n - 1 do
      let continue = ref true in
      while !continue do
        if cursor.(p) >= nops.(p) then continue := false
        else
          match src.Computation.Stream.op ~proc:p ~k:cursor.(p) with
          | Computation.Send { dst; msg } ->
              states.(p) <- states.(p) + 1;
              Incremental.on_send b ~proc:p ~dst ~msg ~pred:(pred p states.(p));
              cursor.(p) <- cursor.(p) + 1;
              progress := true
          | Computation.Recv { msg } ->
              if Hashtbl.mem b.Incremental.tags msg then begin
                states.(p) <- states.(p) + 1;
                Incremental.on_receive b ~proc:p ~msg ~pred:(pred p states.(p));
                cursor.(p) <- cursor.(p) + 1;
                progress := true
              end
              else continue := false
      done
    done
  done;
  Array.iteri
    (fun p c ->
      if c <> nops.(p) then failwith "Slice.make: computation not drained")
    cursor;
  Incremental.finish b

let make comp ~keep = of_source (Computation.Stream.of_computation comp) ~keep

let keep_for_spec (src : Computation.Stream.source) ~procs ~keep_rest =
  let n = src.Computation.Stream.src_n in
  let member = Array.make n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= n then invalid_arg "Slice.for_spec: bad process";
      member.(p) <- true)
    procs;
  fun ~proc ~state ->
    if member.(proc) then src.Computation.Stream.pred ~proc ~state
    else keep_rest

let for_spec_source ?(keep_rest = false) src ~procs =
  of_source src ~keep:(keep_for_spec src ~procs ~keep_rest)

let for_spec ?(keep_rest = false) comp ~procs =
  for_spec_source ~keep_rest (Computation.Stream.of_computation comp) ~procs
