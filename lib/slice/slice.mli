(** Computation slicing: an offline (and incremental) preprocessing
    pass that shrinks a recorded computation before detection
    (DESIGN.md §10; Mittal–Garg computation slicing, adapted to the
    conjunctive/WCP setting of Garg–Chase).

    The slice retains, per process, only the {e anchor} states the
    detectors can ever place in a cut — predicate-true states for
    processes carrying a local predicate, every state for processes a
    caller asks to keep whole (the direct-dependence and GCP
    algorithms span all [N] processes) — and replaces the runs of
    skipped events between anchors with a synthetic {e causal
    skeleton}: one message per irredundant happened-before edge
    between retained states. Redundant edges are pruned twice over —
    an edge already implied by the target's previous anchor is
    dropped (chain pruning), and among the remaining sources of one
    target only the happened-before-maximal ones are kept (cover
    pruning) — so the skeleton is the transitive reduction of the
    dense happened-before relation restricted to anchors.

    Soundness (proof sketch in DESIGN.md §10): happened-before
    between anchors is preserved {e exactly} — every kept edge is a
    true dense relation, and every dense relation between anchors is
    recovered by the transitive closure of kept edges plus process
    order — and each gap lays out the sends leaving one anchor before
    the receives entering the next, so no spurious causality is
    introduced. Consistency of a cut over anchors is a pure
    happened-before property, hence the least satisfying cut of the
    slice is the image of the least satisfying cut of the dense
    computation, and every detector returns the same answer on both
    (after {!remap_cut}). Consecutive anchors with an empty gap are
    causally indistinguishable with respect to every retained state
    and collapse into one slice state; {!remap_cut} maps it back to
    the earliest member. *)

open Wcp_trace

type t
(** A computed slice: the reduced computation plus the per-process
    state maps needed to translate cuts back to dense coordinates. *)

val make : Computation.t -> keep:(proc:int -> state:int -> bool) -> t
(** [make comp ~keep] slices [comp], retaining exactly the states
    [keep] selects. The slice's predicate flag at a retained state is
    the dense flag (the OR over a collapsed class). Implemented as
    {!of_source} over {!Computation.Stream.of_computation}, so the
    dense and streamed paths produce identical slices by
    construction. *)

val of_source :
  Computation.Stream.source -> keep:(proc:int -> state:int -> bool) -> t
(** {!make} over a streaming cursor: events and flags are pulled one
    at a time, so slicing an mmap'd {!Btrace} source holds only the
    slice itself — never the dense computation — in memory. *)

val for_spec : ?keep_rest:bool -> Computation.t -> procs:int array -> t
(** The detector-facing policy: processes in [procs] retain their
    predicate-true states; the others retain every state when
    [keep_rest] (direct-dependence / GCP, whose cuts span all
    processes) and nothing otherwise (vc-family, default). *)

val for_spec_source :
  ?keep_rest:bool -> Computation.Stream.source -> procs:int array -> t
(** {!for_spec} over a streaming cursor (see {!of_source}). *)

val computation : t -> Computation.t
(** The sliced computation — a well-formed [Computation.t] every
    detector accepts unchanged. *)

val dense_state : t -> proc:int -> int -> int
(** [dense_state t ~proc s] maps slice state [s] of [proc] back to
    dense coordinates: the earliest dense anchor of its class for
    anchor states (exact), the following anchor for synthetic gap
    states (these never appear in a detected cut for a process whose
    anchors are its candidates), clamped to the nearest anchor at the
    ends. Processes with no retained state map to dense state 1. *)

val slice_state : t -> proc:int -> int -> int option
(** The forward map: the slice state representing a retained dense
    state, [None] if that state was not retained. *)

val remap_cut : t -> Cut.t -> Cut.t
(** {!dense_state} applied to every entry of a detected cut. *)

val retained_states : t -> int
(** Total anchors across all processes (before gap-state padding). *)

val skeleton_messages : t -> int
(** Synthetic messages realising the causal skeleton. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line reduction summary. *)

(** {2 Incremental construction}

    The same pass as an online builder: feed communication events in
    any causally consistent order (a receive after its send — the
    order any live execution or streamed JSONL log already delivers)
    and the anchors and skeleton edges are computed as events arrive,
    with O(n) work per event and O(frontier²) per new anchor. Edge
    decisions depend only on already-fed history, so slicing a prefix
    and extending it agrees with slicing the whole — the property the
    live [Instrument] path and a streaming front end need. [make] is
    this builder fed from the recorded computation. *)
module Incremental : sig
  type slice := t

  type builder

  val create :
    n:int ->
    keep:(proc:int -> state:int -> bool) ->
    pred0:(int -> bool) ->
    builder
  (** [pred0 p] is the dense predicate flag of process [p]'s initial
      state (state 1), which exists before any event. *)

  val on_send : builder -> proc:int -> dst:int -> msg:int -> pred:bool -> unit
  (** Process [proc] sent message [msg] to [dst], entering a new local
      state whose dense predicate flag is [pred]. Message identifiers
      must be globally unique; [dst] is recorded for bookkeeping only.
      @raise Invalid_argument on a reused message id. *)

  val on_receive : builder -> proc:int -> msg:int -> pred:bool -> unit
  (** Process [proc] received [msg], entering a new state flagged
      [pred].
      @raise Invalid_argument if [msg] was never sent (the feed must
      be causally consistent). *)

  val events_fed : builder -> int

  val retained : builder -> int
  (** Anchors so far. *)

  val finish : builder -> slice
  (** Materialise the slice from the accumulated anchors and edges.
      O(slice size); the builder must not be fed afterwards. *)
end
