open Wcp_trace
open Wcp_sim

type candidate = { state : int; clock : int array; counts : int array }

let rec detect ?network ?recorder ?(options = Detection.default_options) ~seed
    ~channels comp spec =
  if options.Detection.slice then begin
    (* Channel predicates count in-flight messages; a slice replaces
       real messages with skeleton edges, so send/receive counts are
       not slice-invariant. Only the pure-WCP instance may be sliced. *)
    if channels <> [] then
      invalid_arg
        "Checker_gcp.detect: channel counts are not slice-invariant (use \
         slice only with ~channels:[])";
    Run_common.with_slice ?recorder ~keep_rest:true comp spec ~run:(fun sliced spec' ->
        detect ?network ?recorder
          ~options:{ options with Detection.slice = false }
          ~seed ~channels sliced spec')
  end
  else
  let n = Computation.n comp in
  let holds =
    List.map
      (fun cp ->
        match Gcp.count_based cp with
        | Some f -> f
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Checker_gcp: %s is not a counting predicate" (Gcp.name cp)))
      channels
    |> Array.of_list
  in
  let endpoints = Array.of_list (List.map Gcp.endpoints channels) in
  Array.iter
    (fun (s, d) ->
      if s < 0 || s >= n || d < 0 || d >= n then
        invalid_arg "Checker_gcp: channel endpoint out of range")
    endpoints;
  let forced = Array.of_list (List.map Gcp.forced_endpoint channels) in
  let names = Array.of_list (List.map Gcp.name channels) in
  let engine = Run_common.make_engine ?network ?recorder ~seed comp in
  Run_common.emit_run_meta engine ~algo:"gcp" ~n ~width:n;
  (* Fetched once; tracing off means every hook below is one match. *)
  let recorder = Engine.recorder engine in
  let checker = Run_common.extra_id ~n in
  let outcome = ref None in
  let snapshots_seen = ref 0 in
  let announce ctx o =
    if !outcome = None then begin
      outcome := Some o;
      Engine.stop ctx
    end
  in
  let queues : candidate Queue.t array = Array.init n (fun _ -> Queue.create ()) in
  let finished = Array.make n false in
  let cand : candidate option array = Array.make n None in
  let queued_words = ref 0 in
  let snap_words = n + Array.length endpoints + 1 in
  (* (p, a) happened before (q, b) iff b's full clock has seen a. *)
  let hb p (a : candidate) (b : candidate) = b.clock.(p) >= a.clock.(p) in
  let emit_hb ctx ~victim_p ~by_p =
    match recorder with
    | None -> ()
    | Some r -> (
        match (cand.(victim_p), cand.(by_p)) with
        | Some (v : candidate), Some (b : candidate) ->
            Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
              ~proc:(Engine.self ctx)
              (Wcp_obs.Event.Hb_eliminated
                 {
                   victim_k = victim_p;
                   victim_proc = victim_p;
                   victim_state = v.state;
                   victim_clock = Array.copy v.clock;
                   by_k = by_p;
                   by_proc = by_p;
                   by_state = b.state;
                   by_clock = Array.copy b.clock;
                 })
        | _ -> ())
  in
  let fill ctx p =
    let c = Queue.pop queues.(p) in
    queued_words := !queued_words - snap_words;
    cand.(p) <- Some c;
    Engine.charge_work ctx n;
    let q = ref 0 in
    while cand.(p) <> None && !q < n do
      (if !q <> p then
         match cand.(!q) with
         | Some other ->
             if hb p c other then begin
               emit_hb ctx ~victim_p:p ~by_p:!q;
               cand.(p) <- None
             end
             else if hb !q other c then begin
               emit_hb ctx ~victim_p:!q ~by_p:p;
               cand.(!q) <- None
             end
         | None -> ());
      incr q
    done
  in
  (* At a full, pairwise-concurrent candidate cut, find a violated
     channel predicate and eliminate its forced endpoint. *)
  let channel_eliminate ctx =
    let in_flight c =
      let s, d = endpoints.(c) in
      let sent =
        match cand.(s) with Some x -> x.counts.(c) | None -> assert false
      in
      let received =
        match cand.(d) with Some x -> x.counts.(c) | None -> assert false
      in
      sent - received
    in
    let rec scan c =
      if c = Array.length endpoints then false
      else begin
        Engine.charge_work ctx 1;
        if holds.(c) (in_flight c) then scan (c + 1)
        else begin
          (match recorder with
          | None -> ()
          | Some r ->
              let victim_state =
                match cand.(forced.(c)) with
                | Some x -> x.state
                | None -> assert false
              in
              Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
                ~proc:(Engine.self ctx)
                (Wcp_obs.Event.Channel_eliminated
                   {
                     channel = names.(c);
                     victim_proc = forced.(c);
                     victim_state;
                   }));
          cand.(forced.(c)) <- None;
          true
        end
      end
    in
    scan 0
  in
  let rec drive ctx =
    let progressed = ref false in
    for p = 0 to n - 1 do
      if cand.(p) = None && not (Queue.is_empty queues.(p)) then begin
        fill ctx p;
        progressed := true
      end
    done;
    if !progressed then drive ctx
    else if Array.for_all Option.is_some cand then begin
      if channel_eliminate ctx then drive ctx
      else
        let states =
          Array.map
            (function Some (c : candidate) -> c.state | None -> assert false)
            cand
        in
        begin
          (match recorder with
          | None -> ()
          | Some r ->
              Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
                ~proc:(Engine.self ctx)
                (Wcp_obs.Event.Detected
                   { procs = Array.init n Fun.id; states }));
          announce ctx
            (Detection.Detected
               (Cut.make ~procs:(Array.init n Fun.id) ~states))
        end
    end
    else if
      Array.exists
        (fun p -> cand.(p) = None && Queue.is_empty queues.(p) && finished.(p))
        (Array.init n Fun.id)
    then begin
      (match recorder with
      | None -> ()
      | Some r ->
          Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
            ~proc:(Engine.self ctx) Wcp_obs.Event.No_detection_declared);
      announce ctx Detection.No_detection
    end
  in
  let on_message ctx ~src msg =
    match msg with
    | Messages.Snap_gcp { state; clock; counts } ->
        incr snapshots_seen;
        (match recorder with
        | None -> ()
        | Some r ->
            Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
              ~proc:(Engine.self ctx)
              (Wcp_obs.Event.Snapshot_arrived { src; state }));
        Queue.add { state; clock; counts } queues.(src);
        queued_words := !queued_words + snap_words;
        Engine.note_space ctx !queued_words;
        drive ctx
    | Messages.App_done ->
        finished.(src) <- true;
        drive ctx
    | _ -> failwith "Checker_gcp: unexpected message"
  in
  Engine.set_handler engine checker on_message;
  let channel_pairs = Array.to_list endpoints in
  App_replay.install engine comp
    ~snapshots:(fun p ->
      List.map
        (fun (state, clock, counts) ->
          (state, Messages.Snap_gcp { state; clock; counts }))
        (Snapshot.gcp_stream comp spec ~channels:channel_pairs ~proc:p))
    ~snapshot_dst:(fun _ -> Some checker)
    ~spec_width:n ();
  let result = Run_common.finish engine ~outcome ~extras:Detection.no_extras in
  { result with extras = { result.extras with snapshots = !snapshots_seen } }
