(** Local snapshots — the application-to-monitor messages.

    Fig. 2 (vector-clock algorithm) and §4.1 (direct-dependence
    algorithm) define when an application process reports to its
    monitor: whenever the local predicate is true in a state, at most
    once per state (the [firstflag] discipline means one snapshot per
    interval between communication events). This module derives, from
    a recorded computation, exactly the snapshot sequence each
    application process would emit, so the replay driver can inject
    them into the simulation at the right causal points.

    Invariant: each stream is sorted by state index, which is also the
    FIFO order in which the monitor must consume it. *)

open Wcp_trace
open Wcp_clocks

type vc = { state : int; clock : int array }
(** Vector-clock snapshot: the emitting state's index and its vector
    clock {e projected onto the spec processes} ([Spec.width] entries),
    which is all the algorithm transmits (paper: message size O(n)). *)

type dd = { state : int; deps : Dependence.t list }
(** Direct-dependence snapshot: the emitting state's scalar clock
    (equal to its index) and all direct dependences recorded since the
    previous snapshot of this process (§4.1: the list is reset after
    each snapshot). *)

val vc_stream : ?gated:bool -> Computation.t -> Spec.t -> proc:int -> vc list
(** Snapshots emitted by spec process [proc]: one per predicate-true
    state, thinned by interval gating when [gated] (the default).

    Gating ships a candidate only if the process performed a send since
    the previously shipped candidate (the first candidate always
    ships). This is sound: if no send of process [i] separates
    candidates [c < c'], then for every state [t] of another process
    [t → c ⟹ t → c'] (clock monotonicity along [i]'s timeline) and
    [c → t ⟺ c' → t] (the only way [i]'s states become visible to
    others is via a send, and none lies in [[c, c'-1]]), so [c] is
    consistent with every global state [c'] is — the least consistent
    cut never needs [c']. Detected outcome and cut are unchanged; only
    message and bit counts drop. *)

val dd_stream : ?gated:bool -> Computation.t -> Spec.t -> proc:int -> dd list
(** Snapshots emitted by process [proc] under the direct-dependence
    algorithm. All [N] processes participate (§4); processes outside
    the spec have the trivially-true predicate, so {e every} state of
    theirs is a candidate. Interval gating (on by default, see
    {!vc_stream}) applies here too; the dependences recorded at skipped
    candidates fold into the next shipped snapshot, so no causal
    information is lost. *)

val gcp_stream :
  Computation.t ->
  Spec.t ->
  channels:(int * int) list ->
  proc:int ->
  (int * int array * int array) list
(** Snapshots for the online GCP checker ([6]): for each candidate
    state of [proc] (predicate-true states for spec processes, every
    state otherwise), its full [N]-wide vector clock and one counter
    per channel — the number of messages [proc] has sent on the channel
    before that state when it is the channel's source, received at that
    state when it is its destination, [0] when it is neither. Returned
    as [(state, clock, counts)] triples. *)

val total_dd_deps : Computation.t -> Spec.t -> int
(** Total dependences carried by all dd snapshot streams (for bits
    accounting and the §4.4 bound checks). *)
