open Wcp_trace
open Wcp_sim

type outcome =
  | Detected of Cut.t
  | No_detection
  | Undetectable_crashed of int list

type options = { gated : bool; delta : bool; slice : bool }

let default_options = { gated = true; delta = true; slice = false }

let options ?(gated = true) ?(delta = true) ?(slice = false) () =
  { gated; delta; slice }

type extras = { token_hops : int; polls : int; snapshots : int; merges : int }

let no_extras = { token_hops = 0; polls = 0; snapshots = 0; merges = 0 }

type result = {
  outcome : outcome;
  stats : Stats.t;
  sim_time : float;
  events : int;
  extras : extras;
}

let outcome_equal a b =
  match (a, b) with
  | Detected c1, Detected c2 -> Cut.equal c1 c2
  | No_detection, No_detection -> true
  | Undetectable_crashed p1, Undetectable_crashed p2 ->
      List.sort_uniq compare p1 = List.sort_uniq compare p2
  | (Detected _ | No_detection | Undetectable_crashed _), _ -> false

let remap_outcome f = function
  | Detected cut -> Detected (f cut)
  | (No_detection | Undetectable_crashed _) as o -> o

let project_outcome spec = function
  | No_detection -> No_detection
  | Undetectable_crashed procs -> Undetectable_crashed procs
  | Detected cut ->
      let states =
        Array.map
          (fun p ->
            (* Find p's entry in the (wider) cut. *)
            let rec find k =
              if k >= Cut.width cut then
                invalid_arg "Detection.project_outcome: cut misses spec process"
              else
                let s = Cut.state cut k in
                if s.State.proc = p then s.State.index else find (k + 1)
            in
            find 0)
          (Spec.procs spec)
      in
      Detected (Cut.make ~procs:(Spec.procs spec) ~states)

let pp_outcome ppf = function
  | Detected cut -> Format.fprintf ppf "detected %a" Cut.pp cut
  | No_detection -> Format.pp_print_string ppf "no detection"
  | Undetectable_crashed procs ->
      Format.fprintf ppf "undetectable (crashed:%a)"
        (fun ppf ->
          List.iter (fun p -> Format.fprintf ppf " %d" p))
        (List.sort_uniq compare procs)

let pp_result ppf r =
  Format.fprintf ppf
    "%a | msgs=%d bits=%d work=%d max-work=%d max-space=%d hops=%d polls=%d \
     snaps=%d t=%.2f ev=%d"
    pp_outcome r.outcome (Stats.total_sent r.stats) (Stats.total_bits r.stats)
    (Stats.total_work r.stats) (Stats.max_work r.stats)
    (Stats.max_space r.stats) r.extras.token_hops r.extras.polls
    r.extras.snapshots r.sim_time r.events
