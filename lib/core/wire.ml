open Wcp_trace
open Wcp_clocks

let word = 32

let packed_color_words ~width = (width + 31) / 32

(* On the wire a delta entry is ONE packed word: 10-bit index + 22-bit
   value (the dense form spends a full word per component, so packing
   the pair is what makes the delta pay off even at moderate change
   counts). [packable] rejects vectors the packed format cannot carry —
   width over 1024 or a clock component at 2^22, both far beyond any
   trace this harness can build — and every caller then falls back to
   the dense form, so the accounting never understates a real wire. *)
let packable ~width delta =
  width <= 1024
  &&
  let ok = ref true in
  Array.iteri
    (fun i x -> if i land 1 = 1 && x >= 0x40_0000 then ok := false)
    delta;
  !ok

let pairs_words delta = Array.length delta / 2

(* --- Snapshot codec (materialised on the wire) ------------------- *)

(* One encoder per (application process -> monitor) channel. The
   channel is FIFO (raw replay network) or in-order exactly-once
   (reliable transport), so sender and receiver walk the same sequence
   of clocks and their bases never diverge. *)

type snap_encoder = { mutable tx : int array }

let snap_encoder ~width = { tx = Array.make width 0 }

let encode_snap enc ~state clock =
  let width = Array.length enc.tx in
  if Array.length clock <> width then
    invalid_arg "Wire.encode_snap: clock width mismatch";
  let delta = Vector_clock.encode_delta ~base:enc.tx clock in
  enc.tx <- Array.copy clock;
  (* Hybrid: ship the delta only when strictly smaller than the dense
     form under the DESIGN.md word accounting (state word + one packed
     word per changed entry + pair count, vs state word + width). *)
  if
    packable ~width delta
    && word * (2 + pairs_words delta) < word * (width + 1)
  then Messages.Snap_vc_delta { state; delta }
  else Messages.Snap_vc { Snapshot.state; clock = Array.copy clock }

type snap_decoder = { mutable rx : int array }

let snap_decoder ~width = { rx = Array.make width 0 }

(* The decoder is channel-stateful: a monitor checkpoint must carry it,
   or a replayed [Snap_vc_delta] would be decoded against the wrong
   base after a restore. *)
let decoder_state dec = Array.copy dec.rx

let restore_decoder dec base = dec.rx <- Array.copy base

let decode_snap dec msg =
  match msg with
  | Messages.Snap_vc s ->
      dec.rx <- Array.copy s.Snapshot.clock;
      s
  | Messages.Snap_vc_delta { state; delta } ->
      let clock = Vector_clock.decode_delta ~base:dec.rx delta in
      dec.rx <- Array.copy clock;
      { Snapshot.state; clock }
  | _ -> invalid_arg "Wire.decode_snap: not a vc snapshot"

(* --- Direct-dependence snapshot codec ---------------------------- *)

(* §4.1 snapshots are already small — a state word plus (src, clock)
   pairs — but each pair fits the same 10/22-bit packed word the vc
   delta uses (src is a process id, clock a scalar state index), so
   packing halves the per-dependence cost. Stateless: deps carry
   absolute values, so no channel cache and no FIFO requirement. *)

let dd_packable deps =
  List.for_all
    (fun (d : Wcp_clocks.Dependence.t) ->
      d.Dependence.src < 1024 && d.Dependence.clock < 0x40_0000 && d.Dependence.clock >= 0)
    deps

let encode_dd ~state deps =
  if dd_packable deps then
    Messages.Snap_dd_packed
      {
        state;
        deps =
          Array.of_list
            (List.map
               (fun (d : Wcp_clocks.Dependence.t) ->
                 (d.Dependence.src lsl 22) lor d.Dependence.clock)
               deps);
      }
  else Messages.Snap_dd { Snapshot.state; deps }

let decode_dd = function
  | Messages.Snap_dd s -> s
  | Messages.Snap_dd_packed { state; deps } ->
      {
        Snapshot.state;
        deps =
          Array.to_list
            (Array.map
               (fun w ->
                 { Dependence.src = w lsr 22; clock = w land 0x3F_FFFF })
               deps);
      }
  | _ -> invalid_arg "Wire.decode_dd: not a dd snapshot"

(* --- Poll accounting (accounting only) --------------------------- *)

(* A §4 poll carries a scalar clock and the red-chain successor: a
   21-bit clock and an 11-bit successor (with one sentinel value for
   [None]) share one word; anything larger falls back to the dense
   two-word form. Polls stay materialised as {!Messages.Poll} inside
   the simulation — this prices the encoded form, exactly like the
   token meter. *)
let poll_bits ~clock ~next_red =
  let nr = match next_red with None -> 0 | Some p -> p + 1 in
  if clock >= 0 && clock < 0x20_0000 && nr < 0x800 then word else word * 2

(* Each spec process's snapshot stream as replay-ready
   (state, message) pairs, interval-gated when [gated] and
   hybrid-encoded when [delta]. Shared by the three vc-family
   detectors. *)
let encoded_stream ?(gated = true) ~delta comp spec ~proc =
  let width = Spec.width spec in
  let stream = Snapshot.vc_stream ~gated comp spec ~proc in
  if delta then
    let enc = snap_encoder ~width in
    List.map
      (fun (s : Snapshot.vc) ->
        (s.Snapshot.state, encode_snap enc ~state:s.Snapshot.state s.Snapshot.clock))
      stream
  else
    List.map (fun (s : Snapshot.vc) -> (s.Snapshot.state, Messages.Snap_vc s)) stream

(* --- Token wire-size meter (accounting only) --------------------- *)

(* Tokens carry their dense [g]/[color] arrays inside the simulation
   (exactly like the clock tag of a replayed {!Messages.App_msg}, which
   is accounted for but never materialised); the meter computes what an
   encoded token would cost on the wire and keeps the per-edge sender
   cache. Token hops on a given (holder -> next) edge are causally
   serialised — a monitor cannot forward the token again before the
   previous hop on that edge was consumed — so the receiver's cache
   would deterministically mirror the sender's. *)

type token_meter = {
  width : int;
  edges : (int * int, int array) Hashtbl.t;  (* (src, dst) -> last g *)
}

let token_meter ~width = { width; edges = Hashtbl.create 16 }

let dense_token_bits ~width = word * 2 * width

let token_bits meter ~src ~dst g =
  if Array.length g <> meter.width then
    invalid_arg "Wire.token_bits: width mismatch";
  let key = (src, dst) in
  let base =
    match Hashtbl.find_opt meter.edges key with
    | Some b -> b
    | None -> Array.make meter.width 0
  in
  let delta = Vector_clock.encode_delta ~base g in
  Hashtbl.replace meter.edges key (Array.copy g);
  (* Encoded form: pair count + one packed word per changed entry +
     bit-packed color vector; dense fallback is the unchanged pre-delta
     formula. *)
  let encoded =
    if packable ~width:meter.width delta then
      word * (1 + pairs_words delta + packed_color_words ~width:meter.width)
    else max_int
  in
  min encoded (dense_token_bits ~width:meter.width)

(* --- Application-tag accounting (replay) ------------------------- *)

(* A replayed App_msg charges [word * (1 + spec_width)]: one payload
   word plus the projected clock tag it would carry (the tag itself is
   never materialised — the monitors never see application traffic).
   Under delta encoding the tag on a channel is shipped as the
   difference from the previous tag on the same channel
   (Singhal–Kshemkalyani): the plan below replays every channel in
   sender order over the recorded computation and prices each message
   id once, so the replay driver can charge the encoded size. *)

let app_tag_plan comp spec =
  let width = Spec.width spec in
  let msgs = Computation.messages comp in
  let plan = Array.make (Array.length msgs) 0 in
  let bases : (int * int, int array) Hashtbl.t = Hashtbl.create 16 in
  (* Per sender, messages in ascending [src_state] = the order they are
     shipped, which is FIFO per (src, dst) channel. *)
  let by_sender = Array.to_list msgs in
  let by_sender =
    List.sort
      (fun (a : Computation.message) (b : Computation.message) ->
        compare (a.src, a.src_state, a.id) (b.src, b.src_state, b.id))
      by_sender
  in
  List.iter
    (fun (m : Computation.message) ->
      let tag =
        Spec.project spec
          (Computation.vc comp (State.make ~proc:m.src ~index:m.src_state))
      in
      let key = (m.src, m.dst) in
      let base =
        match Hashtbl.find_opt bases key with
        | Some b -> b
        | None -> Array.make width 0
      in
      let delta = Vector_clock.encode_delta ~base tag in
      Hashtbl.replace bases key tag;
      let dense = word * (1 + width) in
      let encoded =
        if packable ~width delta then word * (2 + pairs_words delta)
        else max_int
      in
      plan.(m.id) <- min encoded dense)
    by_sender;
  plan

let replay_app_bits comp spec =
  let plan = app_tag_plan comp spec in
  fun msg_id -> plan.(msg_id)
