open Wcp_trace
open Wcp_sim

let rec detect ?network ?recorder ?(options = Detection.default_options) ~seed
    comp spec =
  if options.Detection.slice then
    Run_common.with_slice ?recorder ~keep_rest:false comp spec ~run:(fun sliced spec' ->
        detect ?network ?recorder
          ~options:{ options with Detection.slice = false }
          ~seed sliced spec')
  else
  let { Detection.gated; delta; slice = _ } = options in
  let n = Computation.n comp in
  let width = Spec.width spec in
  let engine = Run_common.make_engine ?network ?recorder ~seed comp in
  Run_common.emit_run_meta engine ~algo:"checker" ~n ~width;
  (* Fetched once; tracing off means every hook below is one match. *)
  let recorder = Engine.recorder engine in
  let checker = Run_common.extra_id ~n in
  let outcome = ref None in
  let snapshots_seen = ref 0 in
  let announce ctx o =
    if !outcome = None then begin
      outcome := Some o;
      Engine.stop ctx
    end
  in
  let queues = Array.init width (fun _ -> Queue.create ()) in
  (* One decode cache per inbound (spec process -> checker) channel. *)
  let decoders = Array.init width (fun _ -> Wire.snap_decoder ~width) in
  let finished = Array.make width false in
  let cand : Snapshot.vc option array = Array.make width None in
  let queued_words = ref 0 in
  (* (k, a) happened before (l, b) iff b's clock has seen a's state. *)
  let hb k (a : Snapshot.vc) (b : Snapshot.vc) = b.clock.(k) >= a.clock.(k) in
  let emit_hb ctx ~victim_k ~by_k =
    match recorder with
    | None -> ()
    | Some r -> (
        match (cand.(victim_k), cand.(by_k)) with
        | Some (v : Snapshot.vc), Some (b : Snapshot.vc) ->
            Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
              ~proc:(Engine.self ctx)
              (Wcp_obs.Event.Hb_eliminated
                 {
                   victim_k;
                   victim_proc = Spec.proc spec victim_k;
                   victim_state = v.state;
                   victim_clock = Array.copy v.clock;
                   by_k;
                   by_proc = Spec.proc spec by_k;
                   by_state = b.state;
                   by_clock = Array.copy b.clock;
                 })
        | _ -> ())
  in
  let fill ctx k =
    let c = Queue.pop queues.(k) in
    queued_words := !queued_words - (width + 1);
    cand.(k) <- Some c;
    Engine.charge_work ctx width;
    (* Compare the fresh candidate against every standing one;
       eliminate whichever side happened before the other. Standing
       candidates are pairwise concurrent by induction, so at most the
       fresh candidate dies, possibly killing several stale peers
       first. *)
    let l = ref 0 in
    while cand.(k) <> None && !l < width do
      (if !l <> k then
         match cand.(!l) with
         | Some other ->
             if hb k c other then begin
               emit_hb ctx ~victim_k:k ~by_k:!l;
               cand.(k) <- None
             end
             else if hb !l other c then begin
               emit_hb ctx ~victim_k:!l ~by_k:k;
               cand.(!l) <- None
             end
         | None -> ());
      incr l
    done
  in
  let rec drive ctx =
    let progressed = ref false in
    for k = 0 to width - 1 do
      if cand.(k) = None && not (Queue.is_empty queues.(k)) then begin
        fill ctx k;
        progressed := true
      end
    done;
    if !progressed then drive ctx
    else if Array.for_all Option.is_some cand then
      let states =
        Array.map
          (function Some (c : Snapshot.vc) -> c.state | None -> assert false)
          cand
      in
      begin
        (match recorder with
        | None -> ()
        | Some r ->
            Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
              ~proc:(Engine.self ctx)
              (Wcp_obs.Event.Detected
                 { procs = Array.copy (Spec.procs spec); states }));
        announce ctx
          (Detection.Detected (Cut.make ~procs:(Spec.procs spec) ~states))
      end
    else if
      Array.exists
        (fun k -> cand.(k) = None && Queue.is_empty queues.(k) && finished.(k))
        (Array.init width Fun.id)
    then begin
      (match recorder with
      | None -> ()
      | Some r ->
          Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
            ~proc:(Engine.self ctx) Wcp_obs.Event.No_detection_declared);
      announce ctx Detection.No_detection
    end
  in
  let on_message ctx ~src msg =
    let k = Spec.index_of spec (src : int) in
    match msg with
    | Messages.Snap_vc _ | Messages.Snap_vc_delta _ ->
        let s = Wire.decode_snap decoders.(k) msg in
        incr snapshots_seen;
        (match recorder with
        | None -> ()
        | Some r ->
            Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
              ~proc:(Engine.self ctx)
              (Wcp_obs.Event.Snapshot_arrived { src; state = s.Snapshot.state }));
        Queue.add s queues.(k);
        queued_words := !queued_words + width + 1;
        Engine.note_space ctx !queued_words;
        drive ctx
    | Messages.App_done ->
        finished.(k) <- true;
        drive ctx
    | _ -> failwith "Checker: unexpected message"
  in
  Engine.set_handler engine checker on_message;
  App_replay.install engine comp
    ?app_bits:(if delta then Some (Wire.replay_app_bits comp spec) else None)
    ~snapshots:(fun p ->
      if Spec.mem spec p then Wire.encoded_stream ~gated ~delta comp spec ~proc:p
      else [])
    ~snapshot_dst:(fun p -> if Spec.mem spec p then Some checker else None)
    ~spec_width:width ();
  let result = Run_common.finish engine ~outcome ~extras:Detection.no_extras in
  {
    result with
    extras = { result.extras with snapshots = !snapshots_seen };
  }
