(** Versioned, serializable monitor checkpoints (DESIGN.md recovery
    model).

    A checkpoint is everything one monitor process needs to resume
    after a {!Wcp_sim.Fault.Restart}: its per-algorithm detector
    state, the {!Wcp_sim.Transport} flow state of every link it
    touches (send/receive cursors plus the retransmission buffer), and
    its armed {!Watchdog} lease, if any.

    The wire form is the version header ["wcp-ckpt/1"] followed by a
    whitespace-separated stream of integers — every structured value
    flattens to tags, lengths and fields, and there are no floats, so
    [decode (encode t)] reproduces [t] exactly (QCheck-pinned in the
    test suite).

    Capture discipline: the detectors capture {e after} every k-th
    handled message ([--ckpt-every k], default 1). At [k = 1] a
    restore is an exact state transfer — the checkpoint equals the
    post-message state, nothing is re-executed, and the transport
    reconnect handshake replays only frames the restored state has
    genuinely not consumed. *)

open Wcp_clocks

val version : string
(** ["wcp-ckpt/1"]. *)

(** Monitor state of the vc-token family ({!Token_vc}, and one group
    monitor of {!Token_multi} — the group id is static configuration,
    not state). *)
type vc_mon = {
  v_queue : Snapshot.vc list;  (** pending candidates, FIFO order *)
  v_decoder : int array;  (** delta-snapshot channel cache *)
  v_app_done : bool;
  v_held : (int array * Messages.color array) option;
      (** token parked here awaiting a candidate *)
  v_last : Snapshot.vc option;  (** last candidate consumed *)
  v_last_seq : int;  (** highest token hop accepted *)
}

(** Monitor state of the direct-dependence algorithm ({!Token_dd}). *)
type dd_mon = {
  d_queue : Snapshot.dd list;
  d_app_done : bool;
  d_color : Messages.color;
  d_g : int;
  d_next_red : int option;
  d_has_token : bool;
  d_tentative : int option;
  d_deps : Dependence.t list;  (** discovered, not yet polled *)
  d_polling : bool;
  d_last_seq : int;
}

type algo =
  | Vc of vc_mon
  | Multi of vc_mon
  | Dd of dd_mon
  | Frontier of { round : int; frontier : int array }
      (** centralized/parallel checker: merge round and the cut
          frontier under construction *)

(** An armed watchdog lease: the watched hop, its destination, probes
    burned so far, and the exact token bytes to regenerate ([w_bits]
    is the originally charged wire size — a resend re-ships the same
    bytes). The resend {e closure} is not serializable; the restoring
    detector rebuilds one from [w_payload]. *)
type wd_state = {
  w_seq : int;
  w_dst : int;
  w_probes : int;
  w_bits : int;
  w_payload : Messages.t;
}

type t = {
  proc : int;  (** engine id of the checkpointed monitor *)
  algo : algo;
  transport : Messages.t Wcp_sim.Transport.state;
  watchdog : wd_state option;
}

val encode : t -> string

val decode : string -> t
(** @raise Failure on a malformed or version-mismatched stream. *)

val equal : t -> t -> bool
(** Structural equality (the codec round-trip invariant). *)
