(* Domain-parallel checker: Garg's round-based parallel predicate
   detection (arXiv 2008.12516) over the snapshot streams the
   centralized checker consumes.

   The algorithm materializes each spec process's (gated, delta-coded)
   snapshot stream, then repeats {e frontier rounds}: freeze the
   frontier G (the first standing candidate of every slot), compute per
   column k the threshold

     M_k = max over l <> k of G[l].clock.(k)

   and advance every slot k past its locally-eliminated candidates —
   all those [a] with [a.clock.(k) <= M_k], i.e. exactly the
   candidates that happened before some other slot's frontier element
   (the centralized checker's [hb] rule). The per-slot advances are
   independent (slot k only reads the frozen thresholds and writes its
   own head), so each round fans them across domains through
   [Parallel.run]; one [Parallel.scoped_pool] per detection means the
   rounds reuse parked worker domains instead of respawning them.

   A round that eliminates nothing has a pairwise-concurrent frontier —
   by the elimination rule's confluence that is the unique least
   satisfying cut, so the reported cut is byte-identical to
   [Checker_centralized] and to [Oracle.first_cut], at any domain
   count. A slot whose stream runs dry proves no satisfying cut
   exists.

   Unlike the five other detectors this one runs no discrete-event
   engine: the streams are priced at the same wire costs (same
   encoder, same bits), but there is no simulated network and
   [sim_time] is 0. That is the point — it is the wall-clock
   contender (experiment E18). *)

open Wcp_trace
open Wcp_sim

let rec detect ?recorder ?(options = Detection.default_options) ?domains ~seed
    comp spec =
  if options.Detection.slice then
    Run_common.with_slice ?recorder ~keep_rest:false comp spec ~run:(fun sliced spec' ->
        detect ?recorder
          ~options:{ options with Detection.slice = false }
          ?domains ~seed sliced spec')
  else begin
    let { Detection.gated; delta; slice = _ } = options in
    (* The algorithm is deterministic; [seed] is accepted only so all
       six detectors share a call shape. *)
    ignore (seed : int64);
    let n = Computation.n comp in
    let width = Spec.width spec in
    let checker = Run_common.extra_id ~n in
    let stats = Stats.create ~n:((2 * n) + 1) in
    (match recorder with
    | None -> ()
    | Some r ->
        Wcp_obs.Recorder.emit r ~time:0.0 ~proc:(-1)
          (Wcp_obs.Event.Run_meta { algo = "parallel"; n; width });
        Wcp_obs.Recorder.emit r ~time:0.0 ~proc:(-1)
          (Wcp_obs.Event.Phase_marked { name = "build" }));
    (* Materialize the same encoded snapshot streams the centralized
       checker receives, at the same wire prices: the senders are
       charged the encoded bits, the checker the receptions and the
       buffered words. *)
    let snapshots_seen = ref 0 in
    let cands =
      Array.init width (fun k ->
          let p = Spec.proc spec k in
          let decoder = Wire.snap_decoder ~width in
          Wire.encoded_stream ~gated ~delta comp spec ~proc:p
          |> List.map (fun ((_ : int), msg) ->
                 Stats.msg_sent stats ~proc:p
                   ~bits:(Messages.bits ~spec_width:width msg);
                 Stats.msg_received stats ~proc:checker;
                 incr snapshots_seen;
                 Wire.decode_snap decoder msg)
          |> Array.of_list)
    in
    Stats.space stats ~proc:checker (!snapshots_seen * (width + 1));
    let head = Array.make width 0 in
    (* Per-round, per-slot scratch: thresholds and witnesses are
       written by the coordinating domain before the fan-out and only
       read inside it; [moved]/[tests] are written by exactly one slot
       owner each and read after the barrier. *)
    let thresh = Array.make width (-1) in
    let witness = Array.make width (-1) in
    let moved = Array.make width 0 in
    let tests = Array.make width 0 in
    let rounds = ref 0 in
    let total_items = ref 0 in
    let max_frontier = ref 0 in
    let advance ~slot ~slots =
      let k = ref slot in
      while !k < width do
        let q = cands.(!k) in
        let len = Array.length q in
        let m = thresh.(!k) in
        let h = ref head.(!k) in
        let t = ref 0 in
        let testing = ref true in
        while !testing && !h < len do
          incr t;
          if q.(!h).Snapshot.clock.(!k) <= m then incr h else testing := false
        done;
        moved.(!k) <- !h - head.(!k);
        tests.(!k) <- !t;
        head.(!k) <- !h;
        k := !k + slots
      done
    in
    let outcome = ref None in
    let run_rounds fan =
      while !outcome = None do
        if
          Array.exists
            (fun k -> head.(k) >= Array.length cands.(k))
            (Array.init width Fun.id)
        then begin
          (* Every remaining candidate of some slot was eliminated:
             the least cut does not exist. *)
          (match recorder with
          | None -> ()
          | Some r ->
              Wcp_obs.Recorder.emit r
                ~time:(float_of_int !rounds)
                ~proc:checker Wcp_obs.Event.No_detection_declared);
          outcome := Some Detection.No_detection
        end
        else begin
          incr rounds;
          let time = float_of_int !rounds in
          (* Freeze the frontier: for each column k keep the largest
             and second-largest k-entries over the frontier clocks, so
             the max excluding slot k itself is one comparison away. *)
          for k = 0 to width - 1 do
            let best = ref (-1)
            and best_l = ref (-1)
            and second = ref (-1)
            and second_l = ref (-1) in
            for l = 0 to width - 1 do
              let v = cands.(l).(head.(l)).Snapshot.clock.(k) in
              if v > !best then begin
                second := !best;
                second_l := !best_l;
                best := v;
                best_l := l
              end
              else if v > !second then begin
                second := v;
                second_l := l
              end
            done;
            if !best_l = k then begin
              thresh.(k) <- !second;
              witness.(k) <- !second_l
            end
            else begin
              thresh.(k) <- !best;
              witness.(k) <- !best_l
            end
          done;
          Stats.work stats ~proc:checker (width * width);
          let old_head = Array.copy head in
          fan advance;
          let eliminated = Array.fold_left ( + ) 0 moved in
          total_items := !total_items + Array.fold_left ( + ) 0 tests;
          (* Same unit as the centralized checker: one width-sized
             examination per candidate consumed. *)
          Stats.work stats ~proc:checker (eliminated * width);
          let breadth =
            Array.fold_left (fun a m -> if m > 0 then a + 1 else a) 0 moved
          in
          if breadth > !max_frontier then max_frontier := breadth;
          (match recorder with
          | None -> ()
          | Some r ->
              for k = 0 to width - 1 do
                for i = old_head.(k) to head.(k) - 1 do
                  let v = cands.(k).(i) in
                  let w = witness.(k) in
                  let b = cands.(w).(old_head.(w)) in
                  Wcp_obs.Recorder.emit r ~time ~proc:checker
                    (Wcp_obs.Event.Hb_eliminated
                       {
                         victim_k = k;
                         victim_proc = Spec.proc spec k;
                         victim_state = v.Snapshot.state;
                         victim_clock = Array.copy v.Snapshot.clock;
                         by_k = w;
                         by_proc = Spec.proc spec w;
                         by_state = b.Snapshot.state;
                         by_clock = Array.copy b.Snapshot.clock;
                       })
                done
              done;
              let frontier =
                Array.init width (fun k ->
                    cands.(k).(old_head.(k)).Snapshot.state)
              in
              Wcp_obs.Recorder.emit r ~time ~proc:checker
                (Wcp_obs.Event.Round_advanced
                   { round = !rounds; frontier; eliminated }));
          if eliminated = 0 then begin
            (* Nothing happened before anything else: the frontier is
               pairwise concurrent — the least satisfying cut. *)
            let states =
              Array.init width (fun k -> cands.(k).(head.(k)).Snapshot.state)
            in
            (match recorder with
            | None -> ()
            | Some r ->
                Wcp_obs.Recorder.emit r ~time ~proc:checker
                  (Wcp_obs.Event.Detected
                     {
                       procs = Array.copy (Spec.procs spec);
                       states = Array.copy states;
                     }));
            outcome :=
              Some (Detection.Detected (Cut.make ~procs:(Spec.procs spec) ~states))
          end
        end
      done
    in
    let domains =
      let d =
        match domains with
        | Some d -> d
        | None -> Wcp_util.Parallel.default_domains ()
      in
      if d < 1 then invalid_arg "Checker_parallel.detect: domains must be >= 1";
      min d (max 1 width)
    in
    (match recorder with
    | None -> ()
    | Some r ->
        Wcp_obs.Recorder.emit r ~time:0.0 ~proc:(-1)
          (Wcp_obs.Event.Phase_marked { name = "detect" }));
    if domains <= 1 then run_rounds (fun f -> f ~slot:0 ~slots:1)
    else
      Wcp_util.Parallel.scoped_pool ~domains (fun pool ->
          run_rounds (fun f -> Wcp_util.Parallel.run pool f));
    Stats.set_events_done stats !rounds;
    Stats.set_parallel stats ~rounds:!rounds ~max_frontier:!max_frontier
      ~items:!total_items;
    {
      Detection.outcome =
        (match !outcome with Some o -> o | None -> assert false);
      stats;
      sim_time = 0.0;
      events = !rounds;
      extras = { Detection.no_extras with snapshots = !snapshots_seen };
    }
  end
