(** The centralized checker baseline (Garg–Waldecker [7]).

    Every spec process sends its Fig. 2 local snapshots over a FIFO
    channel to a single checker process, which runs the advance-the-cut
    algorithm online: it keeps one candidate per process and eliminates
    any candidate that happened before another (comparing the O(n)
    vector clocks), declaring detection when the [n] candidates are
    pairwise concurrent.

    This is the algorithm the paper improves on: total work is the same
    [O(n²m)], but {e all} of it — and [O(n²m)] buffer space — lands on
    the one checker process (engine id [2N]), which is what experiment
    E2 measures against the token algorithm's [O(nm)] per-process
    bounds. *)

open Wcp_trace
open Wcp_sim

val detect :
  ?network:Network.t -> ?recorder:Wcp_obs.Recorder.t ->
  ?options:Detection.options ->
  seed:int64 -> Computation.t -> Spec.t -> Detection.result
(** [recorder] (default none) records snapshot arrivals and every
    happened-before elimination with both candidates' vector clocks;
    see {!Wcp_sim.Engine.create}. [options] as in {!Token_vc.detect}:
    wire encoding ([delta]), interval gating ([gated]) and computation
    slicing ([slice]); detection behaviour identical under every
    setting. *)
