open Wcp_trace
open Wcp_clocks
open Wcp_sim

let log = Logs.Src.create "wcp.token-dd" ~doc:"direct-dependence token algorithm"

module Log = (val Logs.src_log log : Logs.LOG)

type mon = {
  proc : int;
  queue : Snapshot.dd Queue.t;
  mutable queue_words : int;
  mutable app_done : bool;
  mutable color : Messages.color;
  mutable g : int;
      (* clock of the current candidate; while red, the highest
         eliminated clock (states <= g can never join the cut) *)
  mutable next_red : int option;  (* red-chain successor (process id) *)
  mutable has_token : bool;
  mutable tentative : int option;
      (* last consumed candidate's clock; a valid new candidate once it
         exceeds [g]; committed into [g] only when the token is here *)
  mutable deps_pending : Dependence.t list;  (* discovered, not yet polled *)
  mutable polling : bool;  (* one poll in flight, awaiting its reply *)
  mutable last_token_seq : int;  (* highest token hop accepted (dedup) *)
}

let snapshot_words (s : Snapshot.dd) = 1 + (2 * List.length s.deps)

type monitors = {
  start_id : int;
  start_token : Messages.t Wcp_sim.Engine.ctx -> unit;
}

let install engine ~n_app ~parallel ?net ?watchdog ?check ?recovery
    ?(stop = true) ?(start_at = 0) ?(delta = true) ~outcome ~hops ~polls
    ~snapshots () =
  let net = match net with Some n -> n | None -> Run_common.raw_net engine in
  (* Fetched once; tracing off means every hook below is one match. *)
  let recorder = Engine.recorder engine in
  let n = n_app in
  if start_at < 0 || start_at >= n then
    invalid_arg "Token_dd.install: start_at out of range";
  let snapshots_seen = snapshots in
  let announce ctx o =
    if Option.is_none !outcome then begin
      outcome := Some o;
      if stop then Engine.stop ctx
    end
  in
  let bits = Messages.bits ~spec_width:1 in
  let monitor_id p = Run_common.monitor_of ~n p in
  let monitors =
    Array.init n (fun proc ->
        {
          proc;
          queue = Queue.create ();
          queue_words = 0;
          app_done = false;
          color = Messages.Red;
          g = 0;
          (* Initial red chain, rotated so the token holder is at its
             head: start_at -> start_at+1 -> ... -> start_at-1. *)
          next_red =
            (if (proc + 1) mod n = start_at then None
             else Some ((proc + 1) mod n));
          has_token = false;
          tentative = None;
          deps_pending = [];
          polling = false;
          last_token_seq = 0;
        })
  in
  let detected_cut () =
    let states = Array.map (fun m -> m.g) monitors in
    Cut.make ~procs:(Array.init n Fun.id) ~states
  in
  (* The search loop shared by the token holder (Fig. 4) and, when
     [parallel], by prefetching red monitors (§4.5). One step per call
     chain: poll the next discovered dependence, else consume the next
     candidate, else commit/pass if the token is here. *)
  let is_red m = match m.color with Messages.Red -> true | _ -> false in
  let rec drive ctx m =
    if Option.is_some !outcome || m.polling then ()
    else
      match m.deps_pending with
      | d :: rest ->
          m.deps_pending <- rest;
          m.polling <- true;
          incr polls;
          (match recorder with
          | None -> ()
          | Some r ->
              Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
                ~proc:(Engine.self ctx)
                (Wcp_obs.Event.Poll_sent
                   {
                     dst = monitor_id d.Dependence.src;
                     clock = d.Dependence.clock;
                   }));
          let msg = Messages.Poll { clock = d.Dependence.clock; next_red = m.next_red } in
          let poll_cost =
            if delta then
              Wire.poll_bits ~clock:d.Dependence.clock ~next_red:m.next_red
            else bits msg
          in
          net.Run_common.send ctx ~bits:poll_cost
            ~dst:(monitor_id d.Dependence.src) msg
      | [] -> (
          let tentative_valid =
            match m.tentative with Some c -> c > m.g | None -> false
          in
          if tentative_valid then begin
            if m.has_token then commit_and_pass ctx m
            (* else: prefetched and ready; wait for the token. *)
          end
          else if is_red m && (m.has_token || parallel) then
            match Queue.take_opt m.queue with
            | Some cand ->
                m.queue_words <- m.queue_words - snapshot_words cand;
                Engine.charge_work ctx (1 + List.length cand.Snapshot.deps);
                m.deps_pending <- cand.Snapshot.deps;
                m.tentative <- Some cand.Snapshot.state;
                drive ctx m
            | None ->
                if m.app_done then begin
                  (* This process can never produce a fresh candidate:
                     no cut at or before the end of the run satisfies
                     the WCP. *)
                  (match recorder with
                  | None -> ()
                  | Some r ->
                      Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
                        ~proc:(Engine.self ctx)
                        Wcp_obs.Event.No_detection_declared);
                  announce ctx Detection.No_detection
                end)

  and commit_and_pass ctx m =
    (match m.tentative with Some c -> m.g <- c | None -> assert false);
    m.tentative <- None;
    m.color <- Messages.Green;
    m.has_token <- false;
    (match recorder with
    | None -> ()
    | Some r ->
        Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
          ~proc:(Engine.self ctx)
          (Wcp_obs.Event.Candidate_advanced
             { k = m.proc; proc = m.proc; state = m.g }));
    (match check with
    | Some f ->
        f
          ~g:(Array.map (fun m -> m.g) monitors)
          ~color:(Array.map (fun m -> m.color) monitors)
          ~next_red:(Array.map (fun m -> m.next_red) monitors)
          ~next:m.next_red
    | None -> ());
    match m.next_red with
    | None ->
        Log.info (fun f ->
            f "t=%.3f WCP detected; chain empty at monitor %d" (Engine.time ctx)
              m.proc);
        (match recorder with
        | None -> ()
        | Some r ->
            let cut = detected_cut () in
            Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
              ~proc:(Engine.self ctx)
              (Wcp_obs.Event.Detected
                 { procs = cut.Cut.procs; states = cut.Cut.states }));
        announce ctx (Detection.Detected (detected_cut ()))
    | Some j ->
        m.next_red <- None;
        incr hops;
        let seq = !hops in
        Log.debug (fun f ->
            f "t=%.3f token %d -> %d (G=%d)" (Engine.time ctx) m.proc j m.g);
        (match recorder with
        | None -> ()
        | Some r ->
            Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
              ~proc:(Engine.self ctx)
              (Wcp_obs.Event.Token_sent
                 { seq; dst = monitor_id j; g = [| m.g |] }));
        let msg = Messages.Dd_token { seq } in
        net.Run_common.send ctx ~bits:(bits msg) ~dst:(monitor_id j) msg;
        (match watchdog with
        | None -> ()
        | Some wd ->
            Watchdog.watch wd ctx
              ~token:(msg, bits msg)
              ~seq ~dst:(monitor_id j)
              ~resend:(fun ctx ->
                net.Run_common.send ctx ~bits:(bits msg) ~dst:(monitor_id j)
                  msg)
              ())
  in
  let on_message m ctx ~src msg =
    match msg with
    | Messages.Snap_dd _ | Messages.Snap_dd_packed _ ->
        let s = Wire.decode_dd msg in
        incr snapshots_seen;
        (match recorder with
        | None -> ()
        | Some r ->
            Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
              ~proc:(Engine.self ctx)
              (Wcp_obs.Event.Snapshot_arrived { src; state = s.Snapshot.state }));
        Queue.add s m.queue;
        m.queue_words <- m.queue_words + snapshot_words s;
        Engine.note_space ctx m.queue_words;
        drive ctx m
    | Messages.App_done ->
        m.app_done <- true;
        drive ctx m
    | Messages.Dd_token { seq } ->
        (* Regenerated/duplicated tokens repeat a hop number; accepting
           one twice would put two tokens in circulation. *)
        if seq > m.last_token_seq then begin
          m.last_token_seq <- seq;
          m.has_token <- true;
          (match recorder with
          | None -> ()
          | Some r ->
              Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
                ~proc:(Engine.self ctx) (Wcp_obs.Event.Token_received { seq }));
          drive ctx m
        end
    | Messages.Poll { clock; next_red } ->
        (* Fig. 5. *)
        Engine.charge_work ctx 1;
        let was_green = not (is_red m) in
        if clock >= m.g then begin
          (match recorder with
          | None -> ()
          | Some r ->
              Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
                ~proc:(Engine.self ctx)
                (Wcp_obs.Event.Dd_eliminated
                   {
                     victim_proc = m.proc;
                     victim_state = m.g;
                     poll_clock = clock;
                     poller_proc = src - n;
                   }));
          m.color <- Messages.Red;
          m.g <- clock
        end;
        let became = is_red m && was_green in
        if became then m.next_red <- next_red;
        (match recorder with
        | None -> ()
        | Some r ->
            Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
              ~proc:(Engine.self ctx)
              (Wcp_obs.Event.Poll_replied { dst = src; became_red = became }));
        let reply = Messages.Poll_reply { became_red = became } in
        net.Run_common.send ctx ~bits:(bits reply) ~dst:src reply;
        (* A poll can invalidate a prefetched candidate or wake a newly
           red monitor; re-enter the search loop. *)
        if parallel then drive ctx m
    | Messages.Poll_reply { became_red } ->
        m.polling <- false;
        if became_red then begin
          (match recorder with
          | None -> ()
          | Some r ->
              Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
                ~proc:(Engine.self ctx)
                (Wcp_obs.Event.Chain_extended
                   { after_proc = m.proc; proc = src - n }));
          m.next_red <- Some (src - n)
        end;
        drive ctx m
    | Messages.Wd_probe { seq } ->
        let reply =
          Messages.Wd_reply
            {
              seq;
              received = seq <= m.last_token_seq;
              holding = m.has_token && seq = m.last_token_seq;
            }
        in
        Engine.send ctx ~bits:(bits reply) ~dst:src reply
    | Messages.Wd_reply { seq; received; holding } -> (
        match watchdog with
        | Some wd -> Watchdog.on_reply wd ctx ~seq ~received ~holding
        | None -> ())
    | _ -> failwith "Token_dd: unexpected message at monitor"
  in
  (* Crash recovery: see Token_vc — same capture-after-each-message /
     restore-at-window-end scheme, over the §4 monitor state. *)
  let maybe_capture =
    match recovery with
    | None -> None
    | Some r ->
        let cell_of : (int, mon) Hashtbl.t = Hashtbl.create 8 in
        Array.iter
          (fun m -> Hashtbl.replace cell_of (monitor_id m.proc) m)
          monitors;
        let capture proc =
          let m = Hashtbl.find cell_of proc in
          let algo =
            Checkpoint.Dd
              {
                Checkpoint.d_queue = List.of_seq (Queue.to_seq m.queue);
                d_app_done = m.app_done;
                d_color = m.color;
                d_g = m.g;
                d_next_red = m.next_red;
                d_has_token = m.has_token;
                d_tentative = m.tentative;
                d_deps = m.deps_pending;
                d_polling = m.polling;
                d_last_seq = m.last_token_seq;
              }
          in
          let wd_state =
            match watchdog with
            | Some wd when Watchdog.seq wd > 0 && Watchdog.owner wd = proc -> (
                match Watchdog.token wd with
                | Some (payload, w_bits) ->
                    Some
                      {
                        Checkpoint.w_seq = Watchdog.seq wd;
                        w_dst = Watchdog.dst wd;
                        w_probes = Watchdog.probes wd;
                        w_bits;
                        w_payload = payload;
                      }
                | None -> None)
            | _ -> None
          in
          (algo, wd_state)
        in
        let restore ctx (c : Checkpoint.t) =
          let m = Hashtbl.find cell_of c.Checkpoint.proc in
          (match c.Checkpoint.algo with
          | Checkpoint.Dd s ->
              Queue.clear m.queue;
              List.iter (fun x -> Queue.add x m.queue) s.Checkpoint.d_queue;
              m.queue_words <-
                Queue.fold (fun acc x -> acc + snapshot_words x) 0 m.queue;
              m.app_done <- s.Checkpoint.d_app_done;
              m.color <- s.Checkpoint.d_color;
              m.g <- s.Checkpoint.d_g;
              m.next_red <- s.Checkpoint.d_next_red;
              m.has_token <- s.Checkpoint.d_has_token;
              m.tentative <- s.Checkpoint.d_tentative;
              m.deps_pending <- s.Checkpoint.d_deps;
              m.polling <- s.Checkpoint.d_polling;
              m.last_token_seq <- s.Checkpoint.d_last_seq
          | _ -> failwith "Token_dd: checkpoint algorithm mismatch");
          match (watchdog, c.Checkpoint.watchdog) with
          | Some wd, Some w when w.Checkpoint.w_seq >= Watchdog.seq wd ->
              let dst = w.Checkpoint.w_dst and bits = w.Checkpoint.w_bits in
              let payload = w.Checkpoint.w_payload in
              Watchdog.restore wd ctx ~token:(payload, bits)
                ~seq:w.Checkpoint.w_seq ~dst ~probes:w.Checkpoint.w_probes
                ~resend:(fun ctx -> net.Run_common.send ctx ~bits ~dst payload)
                ()
          | _ -> ()
        in
        Some
          (Run_common.wire_recovery engine r
             ~owns:(Hashtbl.mem cell_of)
             ~capture ~restore)
  in
  Array.iter
    (fun m ->
      let id = monitor_id m.proc in
      match maybe_capture with
      | None -> net.Run_common.set_handler id (on_message m)
      | Some cap ->
          net.Run_common.set_handler id (fun ctx ~src msg ->
              on_message m ctx ~src msg;
              cap id ctx))
    monitors;
  {
    start_id = monitor_id start_at;
    start_token =
      (fun ctx ->
        (* The token starts at the chain head. *)
        monitors.(start_at).has_token <- true;
        drive ctx monitors.(start_at);
        (* Checkpoint the injected token (see Token_vc.install): a
           restart must not restore a token-less seed. *)
        match maybe_capture with
        | None -> ()
        | Some cap -> cap (monitor_id start_at) ctx);
  }

let start engine monitors =
  Engine.schedule_initial engine ~proc:monitors.start_id ~at:0.0
    monitors.start_token

let check_invariants comp ~g ~color ~next_red ~next =
  let n = Computation.n comp in
  (* (i, s) ->_d (j, t): one message from i to j sent from state >= s
     and received entering state <= t (or same process, s < t). *)
  let directly_precedes i s j t =
    (i = j && s < t)
    || Array.exists
         (fun (msg : Computation.message) ->
           msg.Computation.src = i && msg.Computation.dst = j
           && msg.Computation.src_state >= s
           && msg.Computation.dst_state <= t)
         (Computation.messages comp)
  in
  for i = 0 to n - 1 do
    match color.(i) with
    | Messages.Red ->
        (* Lemma 4.2(1): an advanced red candidate is dominated. *)
        if g.(i) <> 0 then begin
          let dominated = ref false in
          for j = 0 to n - 1 do
            if j <> i && g.(j) <> 0 && directly_precedes i g.(i) j g.(j) then
              dominated := true
          done;
          if not !dominated then
            failwith
              (Printf.sprintf
                 "Lemma 4.2(1) violated: red (%d,%d) ->_d no candidate" i g.(i))
        end
    | Messages.Green ->
        (* Lemma 4.2(2): green candidates are pairwise ->_d-free. *)
        for j = 0 to n - 1 do
          if j <> i && color.(j) = Messages.Green
             && directly_precedes i g.(i) j g.(j)
          then
            failwith
              (Printf.sprintf
                 "Lemma 4.2(2) violated: green (%d,%d) ->_d green (%d,%d)" i
                 g.(i) j g.(j))
        done
  done;
  (* Lemma 4.2(3): the monitors on the red chain (reached from the
     committing monitor's successor) are exactly the red monitors. *)
  let on_chain = Array.make n false in
  let steps = ref 0 in
  let cursor = ref next in
  while !cursor <> None do
    incr steps;
    if !steps > n then failwith "Lemma 4.2(3) violated: red chain has a cycle";
    (match !cursor with
    | Some j ->
        if on_chain.(j) then
          failwith "Lemma 4.2(3) violated: monitor on the chain twice";
        on_chain.(j) <- true;
        cursor := next_red.(j)
    | None -> ())
  done;
  for i = 0 to n - 1 do
    if on_chain.(i) && color.(i) <> Messages.Red then
      failwith
        (Printf.sprintf "Lemma 4.2(3) violated: green monitor %d on the chain" i);
    if (not on_chain.(i)) && color.(i) = Messages.Red then
      failwith
        (Printf.sprintf "Lemma 4.2(3) violated: red monitor %d off the chain" i)
  done

let rec detect ?network ?fault ?recorder ?(parallel = false)
    ?(invariant_checks = false) ?start_at ?(ckpt_every = 1)
    ?(options = Detection.default_options) ~seed comp spec =
  if options.Detection.slice then
    Run_common.with_slice ?recorder ~keep_rest:true comp spec ~run:(fun sliced spec' ->
        detect ?network ?fault ?recorder ~parallel ~invariant_checks ?start_at
          ~ckpt_every
          ~options:{ options with Detection.slice = false }
          ~seed sliced spec')
  else
  let { Detection.gated; delta; slice = _ } = options in
  let n = Computation.n comp in
  let fault =
    match fault with Some p when not (Fault.is_none p) -> Some p | _ -> None
  in
  let engine = Run_common.make_engine ?network ?fault ?recorder ~seed comp in
  Run_common.emit_run_meta engine
    ~algo:(if parallel then "token-dd-parallel" else "token-dd")
    ~n ~width:n;
  let outcome = ref None in
  let hops = ref 0 in
  let polls = ref 0 in
  let snapshots = ref 0 in
  let check =
    (* The Lemma 4.2 statements quantify over quiescent protocol states;
       with prefetching (§4.5) a commit can race with in-flight polls,
       so the executable check is restricted to the sequential mode. *)
    if invariant_checks && not parallel then Some (check_invariants comp)
    else None
  in
  let net, watchdog, recovery =
    Token_vc.chaos_wiring engine ~fault ~outcome ~ckpt_every
  in
  let monitors =
    install engine ~n_app:n ~parallel ?net ?watchdog ?check ?recovery ?start_at
      ~delta ~outcome ~hops ~polls ~snapshots ()
  in
  (* Application side: §4.1 snapshots, from every process. *)
  App_replay.install engine comp ?net
    ~snapshots:(fun p ->
      List.map
        (fun (s : Snapshot.dd) ->
          ( (s.state : int),
            if delta then Wire.encode_dd ~state:s.state s.deps
            else Messages.Snap_dd s ))
        (Snapshot.dd_stream ~gated comp spec ~proc:p))
    ~snapshot_dst:(fun p -> Some (Run_common.monitor_of ~n p))
    ~spec_width:1 ();
  start engine monitors;
  let result =
    Run_common.finish ?fault engine ~outcome ~extras:Detection.no_extras
  in
  {
    result with
    extras =
      {
        result.extras with
        token_hops = !hops;
        polls = !polls;
        snapshots = !snapshots;
      };
  }
