open Wcp_trace
open Wcp_sim

type mon = {
  k : int;  (* spec index *)
  group : int;
  queue : Snapshot.vc Queue.t;
  mutable app_done : bool;
  mutable held : (int array * Messages.color array) option;
  mutable last : Snapshot.vc option;
}

type leader = {
  merged_g : int array;
  merged_color : Messages.color array;
  mutable outstanding : int;
}

type assignment = Round_robin | Blocks

let detect ?network ?(assignment = Round_robin) ~groups ~seed comp spec =
  let n = Computation.n comp in
  let width = Spec.width spec in
  if groups < 1 || groups > width then
    invalid_arg "Token_multi.detect: groups out of range";
  let engine = Run_common.make_engine ?network ~seed comp in
  let leader_id = Run_common.extra_id ~n in
  let outcome = ref None in
  let hops = ref 0 in
  let merges = ref 0 in
  let snapshots_seen = ref 0 in
  let announce ctx o =
    if Option.is_none !outcome then begin
      outcome := Some o;
      Engine.stop ctx
    end
  in
  let bits = Messages.bits ~spec_width:width in
  let monitor_id k = Run_common.monitor_of ~n (Spec.proc spec k) in
  let group_of =
    match assignment with
    | Round_robin -> fun k -> k mod groups
    | Blocks -> fun k -> min (groups - 1) (k * groups / width)
  in
  let send_token ctx ~dst msg =
    incr hops;
    Engine.send ctx ~bits:(bits msg) ~dst msg
  in
  (* Group-token processing: the §3 monitor algorithm, except the token
     may only move to red monitors of its own group and otherwise
     returns to the leader. *)
  let rec process ctx m g color =
    match color.(m.k) with
    | Messages.Red -> (
      match Queue.take_opt m.queue with
      | None ->
          if m.app_done then announce ctx Detection.No_detection
          else m.held <- Some (g, color)
      | Some cand ->
          Engine.charge_work ctx 1;
          m.last <- Some cand;
          if cand.Snapshot.clock.(m.k) > g.(m.k) then begin
            g.(m.k) <- cand.Snapshot.clock.(m.k);
            color.(m.k) <- Messages.Green
          end;
          process ctx m g color)
    | Messages.Green ->
      (match m.last with
      | Some cand ->
          Engine.charge_work ctx width;
          for j = 0 to width - 1 do
            if j <> m.k && cand.Snapshot.clock.(j) >= g.(j) then begin
              g.(j) <- cand.Snapshot.clock.(j);
              color.(j) <- Messages.Red
            end
          done
      | None -> ());
      let next_in_group = ref (-1) in
      for j = width - 1 downto 0 do
        match color.(j) with
        | Messages.Red -> if group_of j = m.group then next_in_group := j
        | Messages.Green -> ()
      done;
      let j = !next_in_group in
      if j >= 0 then
        send_token ctx ~dst:(monitor_id j)
          (Messages.Group_token { g; color; group = m.group })
      else
        send_token ctx ~dst:leader_id
          (Messages.Group_return { g; color; group = m.group })
  in
  let resume ctx m =
    match m.held with
    | Some (g, color) ->
        m.held <- None;
        process ctx m g color
    | None -> ()
  in
  let on_monitor m ctx ~src:_ msg =
    match msg with
    | Messages.Snap_vc s ->
        incr snapshots_seen;
        Queue.add s m.queue;
        Engine.note_space ctx (Queue.length m.queue * width);
        resume ctx m
    | Messages.App_done ->
        m.app_done <- true;
        resume ctx m
    | Messages.Group_token { g; color; group } ->
        assert (group = m.group);
        process ctx m g color
    | _ -> failwith "Token_multi: unexpected message at monitor"
  in
  (* Leader: merge returned tokens, re-dispatch into groups that still
     contain red entries (paper §3.5). *)
  let ld =
    {
      merged_g = Array.make width 0;
      merged_color = Array.make width Messages.Red;
      outstanding = 0;
    }
  in
  let dispatch ctx =
    incr merges;
    if Array.for_all (fun c -> c = Messages.Green) ld.merged_color then
      announce ctx
        (Detection.Detected
           (Cut.make ~procs:(Spec.procs spec) ~states:(Array.copy ld.merged_g)))
    else
      for gr = 0 to groups - 1 do
        let first_red = ref None in
        for j = width - 1 downto 0 do
          if group_of j = gr && ld.merged_color.(j) = Messages.Red then
            first_red := Some j
        done;
        match !first_red with
        | Some j ->
            ld.outstanding <- ld.outstanding + 1;
            send_token ctx ~dst:(monitor_id j)
              (Messages.Group_token
                 {
                   g = Array.copy ld.merged_g;
                   color = Array.copy ld.merged_color;
                   group = gr;
                 })
        | None -> ()
      done
  in
  let on_leader ctx ~src:_ msg =
    match msg with
    | Messages.Group_return { g; color; group = _ } ->
        Engine.charge_work ctx width;
        for j = 0 to width - 1 do
          if g.(j) > ld.merged_g.(j) then begin
            ld.merged_g.(j) <- g.(j);
            ld.merged_color.(j) <- color.(j)
          end
          else if g.(j) = ld.merged_g.(j) && color.(j) = Messages.Red then
            ld.merged_color.(j) <- Messages.Red
        done;
        ld.outstanding <- ld.outstanding - 1;
        if ld.outstanding = 0 then dispatch ctx
    | _ -> failwith "Token_multi: unexpected message at leader"
  in
  let monitors =
    Array.init width (fun k ->
        {
          k;
          group = group_of k;
          queue = Queue.create ();
          app_done = false;
          held = None;
          last = None;
        })
  in
  Array.iter
    (fun m -> Engine.set_handler engine (monitor_id m.k) (on_monitor m))
    monitors;
  Engine.set_handler engine leader_id on_leader;
  App_replay.install engine comp
    ~snapshots:(fun p ->
      if Spec.mem spec p then
        List.map
          (fun (s : Snapshot.vc) -> (s.state, Messages.Snap_vc s))
          (Snapshot.vc_stream comp spec ~proc:p)
      else [])
    ~snapshot_dst:(fun p ->
      if Spec.mem spec p then Some (Run_common.monitor_of ~n p) else None)
    ~spec_width:width ();
  Engine.schedule_initial engine ~proc:leader_id ~at:0.0 (fun ctx ->
      dispatch ctx);
  let result = Run_common.finish engine ~outcome ~extras:Detection.no_extras in
  {
    result with
    extras =
      {
        result.extras with
        token_hops = !hops;
        snapshots = !snapshots_seen;
        merges = !merges;
      };
  }
