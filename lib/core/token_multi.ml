open Wcp_trace
open Wcp_sim

type mon = {
  k : int;  (* spec index *)
  group : int;
  queue : Snapshot.vc Queue.t;
  decoder : Wire.snap_decoder;  (* delta-snapshot channel state *)
  wd : Watchdog.t option;  (* guards this monitor's forwards *)
  mutable app_done : bool;
  mutable held : (int array * Messages.color array) option;
  mutable last : Snapshot.vc option;
  mutable last_token_seq : int;
}

type leader = {
  merged_g : int array;
  merged_color : Messages.color array;
  mutable outstanding : int;
  (* Highest return hop merged per group: a replayed or regenerated
     [Group_return] repeats its hop number, and merging one twice would
     double-decrement [outstanding]. *)
  returns_seen : int array;
}

type assignment = Round_robin | Blocks

let rec detect ?network ?fault ?recorder ?(assignment = Round_robin)
    ?(ckpt_every = 1) ?(options = Detection.default_options) ~groups ~seed comp
    spec =
  if options.Detection.slice then
    Run_common.with_slice ?recorder ~keep_rest:false comp spec ~run:(fun sliced spec' ->
        detect ?network ?fault ?recorder ~assignment ~ckpt_every
          ~options:{ options with Detection.slice = false }
          ~groups ~seed sliced spec')
  else
  let { Detection.gated; delta; slice = _ } = options in
  let n = Computation.n comp in
  let width = Spec.width spec in
  if groups < 1 || groups > width then
    invalid_arg "Token_multi.detect: groups out of range";
  let fault =
    match fault with Some p when not (Fault.is_none p) -> Some p | _ -> None
  in
  let engine = Run_common.make_engine ?network ?fault ?recorder ~seed comp in
  Run_common.emit_run_meta engine ~algo:"token-multi" ~n ~width;
  (* Fetched once; tracing off means every hook below is one match. *)
  let recorder = Engine.recorder engine in
  let leader_id = Run_common.extra_id ~n in
  let outcome = ref None in
  let hops = ref 0 in
  let merges = ref 0 in
  let snapshots_seen = ref 0 in
  let chaos = Option.is_some fault in
  if ckpt_every < 1 then
    invalid_arg "Token_multi.detect: ckpt_every must be >= 1";
  let net, recovery =
    match fault with
    | None -> (Run_common.raw_net engine, None)
    | Some f when Fault.has_restarts f ->
        let net, transport = Token_vc.chaos_net_transport engine ~outcome in
        ( net,
          Some
            {
              Run_common.transport;
              restarts = Fault.restarts f;
              every = ckpt_every;
            } )
    | Some _ -> (Token_vc.chaos_net engine ~outcome, None)
  in
  (* Reprobing (monitor-liveness) watchdogs exist only under plans that
     restart someone; every other chaos run keeps its exact schedule. *)
  let wd_reprobe = Option.is_some recovery in
  let announce ctx o =
    if Option.is_none !outcome then begin
      outcome := Some o;
      Engine.stop ctx
    end
  in
  let bits = Messages.bits ~spec_width:width in
  let monitor_id k = Run_common.monitor_of ~n (Spec.proc spec k) in
  let meter = if delta then Some (Wire.token_meter ~width) else None in
  let token_bits ctx ~dst msg g =
    match meter with
    | Some mt -> Wire.token_bits mt ~src:(Engine.self ctx) ~dst g
    | None -> bits msg
  in
  let group_of =
    match assignment with
    | Round_robin -> fun k -> k mod groups
    | Blocks -> fun k -> min (groups - 1) (k * groups / width)
  in
  (* A group token hop, guarded by the sender's watchdog when running
     under chaos; [g]/[color] are deep-copied for regeneration since
     the receiver mutates the arrays it is sent. *)
  let send_group_token ctx ?wd ~dst ~group g color =
    incr hops;
    let seq = !hops in
    (match recorder with
    | None -> ()
    | Some r ->
        Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
          ~proc:(Engine.self ctx)
          (Wcp_obs.Event.Token_sent { seq; dst; g = Array.copy g }));
    let msg = Messages.Group_token { seq; g; color; group } in
    let hop_bits = token_bits ctx ~dst msg g in
    net.Run_common.send ctx ~bits:hop_bits ~dst msg;
    match wd with
    | None -> ()
    | Some wd ->
        let g' = Array.copy g and color' = Array.copy color in
        let payload =
          Messages.Group_token { seq; g = g'; color = color'; group }
        in
        (* A resend re-ships the originally encoded bytes. *)
        Watchdog.watch wd ctx
          ~token:(payload, hop_bits)
          ~seq ~dst
          ~resend:(fun ctx ->
            net.Run_common.send ctx ~bits:hop_bits ~dst
              (Messages.deep_copy payload))
          ()
  in
  let send_return ctx ~group g color =
    incr hops;
    let seq = !hops in
    let msg = Messages.Group_return { seq; g; color; group } in
    net.Run_common.send ctx
      ~bits:(token_bits ctx ~dst:leader_id msg g)
      ~dst:leader_id msg
  in
  (* Group-token processing: the §3 monitor algorithm, except the token
     may only move to red monitors of its own group and otherwise
     returns to the leader. *)
  let rec process ctx m g color =
    match color.(m.k) with
    | Messages.Red -> (
      match Queue.take_opt m.queue with
      | None ->
          if m.app_done then begin
            (match recorder with
            | None -> ()
            | Some r ->
                Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
                  ~proc:(Engine.self ctx) Wcp_obs.Event.No_detection_declared);
            announce ctx Detection.No_detection
          end
          else m.held <- Some (g, color)
      | Some cand ->
          Engine.charge_work ctx 1;
          m.last <- Some cand;
          if cand.Snapshot.clock.(m.k) > g.(m.k) then begin
            g.(m.k) <- cand.Snapshot.clock.(m.k);
            color.(m.k) <- Messages.Green;
            match recorder with
            | None -> ()
            | Some r ->
                Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
                  ~proc:(Engine.self ctx)
                  (Wcp_obs.Event.Candidate_advanced
                     { k = m.k; proc = Spec.proc spec m.k; state = g.(m.k) })
          end;
          process ctx m g color)
    | Messages.Green ->
      (match m.last with
      | Some cand ->
          Engine.charge_work ctx width;
          for j = 0 to width - 1 do
            if j <> m.k && cand.Snapshot.clock.(j) >= g.(j) then begin
              (match recorder with
              | None -> ()
              | Some r ->
                  Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
                    ~proc:(Engine.self ctx)
                    (Wcp_obs.Event.Vc_advanced
                       {
                         by_k = m.k;
                         by_proc = Spec.proc spec m.k;
                         by_state = cand.Snapshot.state;
                         by_clock = Array.copy cand.Snapshot.clock;
                         victim_k = j;
                         victim_proc = Spec.proc spec j;
                         victim_state = g.(j);
                         witness = cand.Snapshot.clock.(j);
                       }));
              g.(j) <- cand.Snapshot.clock.(j);
              color.(j) <- Messages.Red
            end
          done
      | None -> ());
      let next_in_group = ref (-1) in
      for j = width - 1 downto 0 do
        match color.(j) with
        | Messages.Red -> if group_of j = m.group then next_in_group := j
        | Messages.Green -> ()
      done;
      let j = !next_in_group in
      if j >= 0 then
        send_group_token ctx ?wd:m.wd ~dst:(monitor_id j) ~group:m.group g
          color
      else send_return ctx ~group:m.group g color
  in
  let resume ctx m =
    match m.held with
    | Some (g, color) ->
        m.held <- None;
        process ctx m g color
    | None -> ()
  in
  let on_monitor m ctx ~src msg =
    match msg with
    | Messages.Snap_vc _ | Messages.Snap_vc_delta _ ->
        let s = Wire.decode_snap m.decoder msg in
        incr snapshots_seen;
        (match recorder with
        | None -> ()
        | Some r ->
            Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
              ~proc:(Engine.self ctx)
              (Wcp_obs.Event.Snapshot_arrived { src; state = s.Snapshot.state }));
        Queue.add s m.queue;
        Engine.note_space ctx (Queue.length m.queue * width);
        resume ctx m
    | Messages.App_done ->
        m.app_done <- true;
        resume ctx m
    | Messages.Group_token { seq; g; color; group } ->
        assert (group = m.group);
        if seq > m.last_token_seq then begin
          m.last_token_seq <- seq;
          (match recorder with
          | None -> ()
          | Some r ->
              Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
                ~proc:(Engine.self ctx) (Wcp_obs.Event.Token_received { seq }));
          process ctx m g color
        end
    | Messages.Wd_probe { seq } ->
        let reply =
          Messages.Wd_reply
            {
              seq;
              received = seq <= m.last_token_seq;
              holding = m.held <> None && seq = m.last_token_seq;
            }
        in
        Engine.send ctx ~bits:(bits reply) ~dst:src reply
    | Messages.Wd_reply { seq; received; holding } -> (
        match m.wd with
        | Some wd -> Watchdog.on_reply wd ctx ~seq ~received ~holding
        | None -> ())
    | _ -> failwith "Token_multi: unexpected message at monitor"
  in
  (* Leader: merge returned tokens, re-dispatch into groups that still
     contain red entries (paper §3.5). *)
  let ld =
    {
      merged_g = Array.make width 0;
      merged_color = Array.make width Messages.Red;
      outstanding = 0;
      returns_seen = Array.make groups 0;
    }
  in
  (* The leader may have one token in flight per group, so it owns one
     watchdog per group (a watchdog tracks a single token). *)
  let leader_wds =
    if chaos then
      Array.init groups (fun _ -> Some (Watchdog.create ~reprobe:wd_reprobe ()))
    else Array.make groups None
  in
  let dispatch ctx =
    incr merges;
    (match recorder with
    | None -> ()
    | Some r ->
        Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
          ~proc:(Engine.self ctx) (Wcp_obs.Event.Merged { round = !merges }));
    if Array.for_all (fun c -> c = Messages.Green) ld.merged_color then begin
      (match recorder with
      | None -> ()
      | Some r ->
          Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
            ~proc:(Engine.self ctx)
            (Wcp_obs.Event.Detected
               {
                 procs = Array.copy (Spec.procs spec);
                 states = Array.copy ld.merged_g;
               }));
      announce ctx
        (Detection.Detected
           (Cut.make ~procs:(Spec.procs spec) ~states:(Array.copy ld.merged_g)))
    end
    else
      for gr = 0 to groups - 1 do
        let first_red = ref None in
        for j = width - 1 downto 0 do
          if group_of j = gr && ld.merged_color.(j) = Messages.Red then
            first_red := Some j
        done;
        match !first_red with
        | Some j ->
            ld.outstanding <- ld.outstanding + 1;
            send_group_token ctx ?wd:leader_wds.(gr) ~dst:(monitor_id j)
              ~group:gr (Array.copy ld.merged_g)
              (Array.copy ld.merged_color)
        | None -> ()
      done
  in
  let on_leader ctx ~src:_ msg =
    match msg with
    | Messages.Group_return { seq; g; color; group } ->
        if seq > ld.returns_seen.(group) then begin
          ld.returns_seen.(group) <- seq;
          Engine.charge_work ctx width;
          for j = 0 to width - 1 do
            if g.(j) > ld.merged_g.(j) then begin
              ld.merged_g.(j) <- g.(j);
              ld.merged_color.(j) <- color.(j)
            end
            else if g.(j) = ld.merged_g.(j) && color.(j) = Messages.Red then
              ld.merged_color.(j) <- Messages.Red
          done;
          ld.outstanding <- ld.outstanding - 1;
          if ld.outstanding = 0 then dispatch ctx
        end
    | Messages.Wd_reply { seq; received; holding } ->
        (* Route by sequence number: only the watchdog watching [seq]
           reacts, the rest ignore the reply. *)
        Array.iter
          (function
            | Some wd -> Watchdog.on_reply wd ctx ~seq ~received ~holding
            | None -> ())
          leader_wds
    | _ -> failwith "Token_multi: unexpected message at leader"
  in
  let monitors =
    Array.init width (fun k ->
        {
          k;
          group = group_of k;
          queue = Queue.create ();
          decoder = Wire.snap_decoder ~width;
          wd =
            (if chaos then Some (Watchdog.create ~reprobe:wd_reprobe ())
             else None);
          app_done = false;
          held = None;
          last = None;
          last_token_seq = 0;
        })
  in
  (* Crash recovery for the group monitors (the leader is not in the
     restart matrix): same capture/restore scheme as Token_vc, plus
     this monitor's own group watchdog. *)
  let maybe_capture =
    match recovery with
    | None -> None
    | Some r ->
        let cell_of : (int, mon) Hashtbl.t = Hashtbl.create 8 in
        Array.iter
          (fun m -> Hashtbl.replace cell_of (monitor_id m.k) m)
          monitors;
        let capture proc =
          let m = Hashtbl.find cell_of proc in
          let algo =
            Checkpoint.Multi
              {
                Checkpoint.v_queue = List.of_seq (Queue.to_seq m.queue);
                v_decoder = Wire.decoder_state m.decoder;
                v_app_done = m.app_done;
                v_held = m.held;
                v_last = m.last;
                v_last_seq = m.last_token_seq;
              }
          in
          let wd_state =
            match m.wd with
            | Some wd when Watchdog.seq wd > 0 -> (
                match Watchdog.token wd with
                | Some (payload, w_bits) ->
                    Some
                      {
                        Checkpoint.w_seq = Watchdog.seq wd;
                        w_dst = Watchdog.dst wd;
                        w_probes = Watchdog.probes wd;
                        w_bits;
                        w_payload = payload;
                      }
                | None -> None)
            | _ -> None
          in
          (algo, wd_state)
        in
        let restore ctx (c : Checkpoint.t) =
          let m = Hashtbl.find cell_of c.Checkpoint.proc in
          (match c.Checkpoint.algo with
          | Checkpoint.Multi s ->
              Queue.clear m.queue;
              List.iter (fun x -> Queue.add x m.queue) s.Checkpoint.v_queue;
              Wire.restore_decoder m.decoder s.Checkpoint.v_decoder;
              m.app_done <- s.Checkpoint.v_app_done;
              m.held <- s.Checkpoint.v_held;
              m.last <- s.Checkpoint.v_last;
              m.last_token_seq <- s.Checkpoint.v_last_seq
          | _ -> failwith "Token_multi: checkpoint algorithm mismatch");
          match (m.wd, c.Checkpoint.watchdog) with
          | Some wd, Some w when w.Checkpoint.w_seq >= Watchdog.seq wd ->
              let dst = w.Checkpoint.w_dst and bits = w.Checkpoint.w_bits in
              let payload = w.Checkpoint.w_payload in
              Watchdog.restore wd ctx ~token:(payload, bits)
                ~seq:w.Checkpoint.w_seq ~dst ~probes:w.Checkpoint.w_probes
                ~resend:(fun ctx ->
                  net.Run_common.send ctx ~bits ~dst
                    (Messages.deep_copy payload))
                ()
          | _ -> ()
        in
        Some
          (Run_common.wire_recovery engine r
             ~owns:(Hashtbl.mem cell_of)
             ~capture ~restore)
  in
  Array.iter
    (fun m ->
      let id = monitor_id m.k in
      match maybe_capture with
      | None -> net.Run_common.set_handler id (on_monitor m)
      | Some cap ->
          net.Run_common.set_handler id (fun ctx ~src msg ->
              on_monitor m ctx ~src msg;
              cap id ctx))
    monitors;
  net.Run_common.set_handler leader_id on_leader;
  App_replay.install engine comp
    ?net:(if chaos then Some net else None)
    ?app_bits:(if delta then Some (Wire.replay_app_bits comp spec) else None)
    ~snapshots:(fun p ->
      if Spec.mem spec p then Wire.encoded_stream ~gated ~delta comp spec ~proc:p
      else [])
    ~snapshot_dst:(fun p ->
      if Spec.mem spec p then Some (Run_common.monitor_of ~n p) else None)
    ~spec_width:width ();
  Engine.schedule_initial engine ~proc:leader_id ~at:0.0 (fun ctx ->
      dispatch ctx);
  let result =
    Run_common.finish ?fault engine ~outcome ~extras:Detection.no_extras
  in
  {
    result with
    extras =
      {
        result.extras with
        token_hops = !hops;
        snapshots = !snapshots_seen;
        merges = !merges;
      };
  }
