open Wcp_trace
open Wcp_util
open Wcp_sim

type outcome = {
  online : Detection.outcome;
  recorded : Computation.t;
  wcp_procs : int array;
  sim_time : float;
  detection_time : float option;
}

(* Message kinds carried in App_data. *)
let k_request = 0
let k_grant = 1
let k_release = 2

type client = {
  id : int;
  instr : Instrument.t;
  mutable remaining : int;
}

let run ?(p_bug = 0.0) ~mode ~clients ~rounds ~seed () =
  if clients < 2 then invalid_arg "Live_mutex.run: need >= 2 clients";
  if rounds < 1 then invalid_arg "Live_mutex.run: need >= 1 round";
  let n = clients + 1 in
  let coord = 0 in
  let wcp_procs = [| 1; 2 |] in
  let engine = Run_common.make_engine_n ~seed ~n () in
  (* Side recording for validation; the monitors never see it. The
     engine executes events in a linearization of the causal order, so
     recording at event time through Builder is causally sound. *)
  let b = Builder.create ~n in
  let handles : (int, Builder.msg) Hashtbl.t = Hashtbl.create 64 in
  let next_key = ref 0 in
  let record_send ~src ~dst =
    let key = !next_key in
    incr next_key;
    Hashtbl.replace handles key (Builder.send b ~src ~dst);
    key
  in
  let record_recv ~dst key =
    match Hashtbl.find_opt handles key with
    | Some h ->
        Hashtbl.remove handles key;
        Builder.recv b ~dst h
    | None -> failwith "Live_mutex: unknown message key"
  in
  let instruments =
    Array.init n (fun proc -> Instrument.create ~mode ~n_app:n ~wcp_procs ~proc ())
  in
  let send_app ctx ~src ~dst ~kind =
    let key = record_send ~src ~dst in
    let tag = Instrument.on_send instruments.(src) ctx in
    let msg = Messages.App_data { tag; kind; data = key } in
    Engine.send ctx ~bits:(Messages.bits ~spec_width:1 msg) ~dst msg
  in
  (* --- coordinator ------------------------------------------------ *)
  let pending = Queue.create () in
  let outstanding = ref 0 in
  let releases_seen = ref 0 in
  let rec try_grant ctx =
    if
      (not (Queue.is_empty pending))
      && (!outstanding = 0 || Rng.bernoulli (Engine.rng ctx) p_bug)
    then begin
      let c = Queue.pop pending in
      incr outstanding;
      send_app ctx ~src:coord ~dst:c ~kind:k_grant;
      try_grant ctx
    end
  in
  let coord_handler ctx ~src msg =
    match msg with
    | Messages.App_data { tag; kind; data } ->
        record_recv ~dst:coord data;
        Instrument.on_receive instruments.(coord) ctx ~src tag;
        if kind = k_request then Queue.add src pending
        else if kind = k_release then begin
          decr outstanding;
          incr releases_seen;
          if !releases_seen = clients * rounds then
            Instrument.finish instruments.(coord) ctx
        end
        else failwith "Live_mutex: coordinator got a grant";
        try_grant ctx
    | _ -> failwith "Live_mutex: unexpected message at coordinator"
  in
  (* --- clients ---------------------------------------------------- *)
  let think ctx = Rng.exponential (Engine.rng ctx) ~mean:0.4 in
  let request ctx (cl : client) =
    Engine.schedule ctx ~delay:(think ctx) (fun ctx ->
        send_app ctx ~src:cl.id ~dst:coord ~kind:k_request)
  in
  let client_handler (cl : client) ctx ~src msg =
    match msg with
    | Messages.App_data { tag; kind; data } when kind = k_grant ->
        record_recv ~dst:cl.id data;
        Instrument.on_receive cl.instr ctx ~src tag;
        (* Critical section: the monitored local predicate. *)
        Instrument.predicate_true cl.instr ctx;
        Builder.set_pred b ~proc:cl.id true;
        Engine.schedule ctx ~delay:(think ctx) (fun ctx ->
            send_app ctx ~src:cl.id ~dst:coord ~kind:k_release;
            cl.remaining <- cl.remaining - 1;
            if cl.remaining = 0 then Instrument.finish cl.instr ctx
            else request ctx cl)
    | _ -> failwith "Live_mutex: unexpected message at client"
  in
  Engine.set_handler engine coord coord_handler;
  Engine.schedule_initial engine ~proc:coord ~at:0.0 (fun ctx ->
      Instrument.start instruments.(coord) ctx);
  for c = 1 to clients do
    let cl = { id = c; instr = instruments.(c); remaining = rounds } in
    Engine.set_handler engine c (client_handler cl);
    Engine.schedule_initial engine ~proc:c ~at:0.0 (fun ctx ->
        Instrument.start cl.instr ctx;
        request ctx cl)
  done;
  (* --- online monitors (Fig. 1's monitoring plane) ----------------- *)
  let online = ref None in
  let hops = ref 0 and polls = ref 0 and snapshots = ref 0 in
  (match mode with
  | Instrument.Vc ->
      let monitors =
        Token_vc.install engine ~n_app:n ~wcp_procs ~stop:false ~outcome:online
          ~hops ~snapshots ()
      in
      Token_vc.start engine monitors
  | Instrument.Dd ->
      let monitors =
        Token_dd.install engine ~n_app:n ~parallel:false ~stop:false
          ~outcome:online ~hops ~polls ~snapshots ()
      in
      Token_dd.start engine monitors);
  (* Probe for the verdict's arrival time (1.0-unit granularity); the
     probe re-arms only while no verdict exists, so it cannot keep the
     engine alive forever. *)
  let detection_time = ref None in
  let probe_id = Run_common.extra_id ~n in
  let rec probe ctx =
    match !online with
    | Some _ -> detection_time := Some (Engine.time ctx)
    | None -> Engine.schedule ctx ~delay:1.0 probe
  in
  Engine.schedule_initial engine ~proc:probe_id ~at:1.0 probe;
  Engine.run engine;
  let recorded = Builder.finish b in
  match !online with
  | None -> failwith "Live_mutex: run ended without an online verdict"
  | Some online ->
      {
        online;
        recorded;
        wcp_procs;
        sim_time = Engine.now engine;
        detection_time = !detection_time;
      }
