open Wcp_clocks
open Wcp_sim

type mode = Vc | Dd

type tag = Messages.tag

type t = {
  mode : mode;
  n_app : int;
  proc : int;
  spec_index : int;  (* index of [proc] in [wcp_procs], or -1 *)
  width : int;
  clock : int array;  (* Vc mode: the n-entry projected vector clock *)
  mutable scalar : int;  (* 1-based local state index (both modes) *)
  deps : Dependence.accumulator;  (* Dd mode: since the last snapshot *)
  encoder : Wire.snap_encoder option;  (* Vc mode delta channel state *)
  delta : bool;  (* Dd mode: pack snapshot dependences on the wire *)
  mutable firstflag : bool;
  gated : bool;
  mutable gate_open : bool;
      (* true iff a send happened since the last emitted snapshot (or
         none was ever emitted): the interval-gating condition. *)
  mutable finished : bool;
}

let create ?(options = Detection.default_options) ~mode ~n_app ~wcp_procs
    ~proc () =
  let { Detection.gated; delta; slice = _ } = options in
  if proc < 0 || proc >= n_app then invalid_arg "Instrument.create: bad proc";
  let width = Array.length wcp_procs in
  if width = 0 then invalid_arg "Instrument.create: empty WCP";
  let spec_index = ref (-1) in
  Array.iteri
    (fun k p ->
      if k > 0 && wcp_procs.(k - 1) >= p then
        invalid_arg "Instrument.create: procs must be strictly increasing";
      if p < 0 || p >= n_app then invalid_arg "Instrument.create: bad spec proc";
      if p = proc then spec_index := k)
    wcp_procs;
  let clock = Array.make width 0 in
  if !spec_index >= 0 then clock.(!spec_index) <- 1;
  {
    mode;
    n_app;
    proc;
    spec_index = !spec_index;
    width;
    clock;
    scalar = 1;
    deps = Dependence.create_accumulator ();
    encoder =
      (match mode with
      | Vc when delta -> Some (Wire.snap_encoder ~width)
      | Vc | Dd -> None);
    delta;
    firstflag = true;
    gated;
    gate_open = true;
    finished = false;
  }

let state_index t = t.scalar

let tag_bits t = match t.mode with Vc -> 32 * t.width | Dd -> 32

let monitor_id t = Run_common.monitor_of ~n:t.n_app t.proc

let snapshot_message t =
  match t.mode with
  | Vc -> (
      match t.encoder with
      | Some enc -> Wire.encode_snap enc ~state:t.scalar t.clock
      | None ->
          Messages.Snap_vc
            { Snapshot.state = t.scalar; clock = Array.copy t.clock })
  | Dd ->
      let deps = Dependence.drain t.deps in
      if t.delta then Wire.encode_dd ~state:t.scalar deps
      else Messages.Snap_dd { Snapshot.state = t.scalar; deps }

let spec_width t = match t.mode with Vc -> t.width | Dd -> 1

let emit t ctx =
  if t.finished then invalid_arg "Instrument: snapshot after finish";
  let msg = snapshot_message t in
  Engine.send ctx ~bits:(Messages.bits ~spec_width:(spec_width t) msg)
    ~dst:(monitor_id t) msg;
  t.firstflag <- false;
  t.gate_open <- false

(* The [firstflag] discipline (one snapshot per state) composed with
   interval gating (ship only if a send happened since the last shipped
   snapshot; the very first snapshot always ships because the gate
   starts open). *)
let may_emit t = t.firstflag && ((not t.gated) || t.gate_open)

let predicate_true t ctx =
  if t.spec_index >= 0 && may_emit t then emit t ctx

(* §4 gives processes without a local predicate the trivially-true
   one: in Dd mode they snapshot on every state entry (gating permitting). *)
let auto_emit t ctx =
  match t.mode with
  | Dd -> if t.spec_index < 0 && may_emit t then emit t ctx
  | Vc -> ()

let start t ctx = auto_emit t ctx

(* Entering a new local state: a send or receive just happened. *)
let advance t ctx =
  t.scalar <- t.scalar + 1;
  if t.spec_index >= 0 then t.clock.(t.spec_index) <- t.clock.(t.spec_index) + 1;
  t.firstflag <- true;
  auto_emit t ctx

let on_send t ctx =
  if t.finished then invalid_arg "Instrument: send after finish";
  let tag =
    match t.mode with
    | Vc -> Messages.Vc_tag (Array.copy t.clock)
    | Dd -> Messages.Dd_tag { src = t.proc; clock = t.scalar }
  in
  (* The send happens while still in the current state, so it re-opens
     the gate for the next candidate even if a snapshot of this very
     state was already shipped. *)
  t.gate_open <- true;
  advance t ctx;
  tag

let on_receive t ctx ~src tag =
  if t.finished then invalid_arg "Instrument: receive after finish";
  (match (t.mode, tag) with
  | Vc, Messages.Vc_tag v ->
      if Array.length v <> t.width then
        invalid_arg "Instrument.on_receive: tag width mismatch";
      for k = 0 to t.width - 1 do
        if v.(k) > t.clock.(k) then t.clock.(k) <- v.(k)
      done
  | Dd, Messages.Dd_tag { src = tag_src; clock } ->
      if tag_src <> src then
        invalid_arg "Instrument.on_receive: tag does not match sender";
      Dependence.record t.deps { Dependence.src; clock }
  | Vc, Messages.Dd_tag _ | Dd, Messages.Vc_tag _ ->
      invalid_arg "Instrument.on_receive: tag mode mismatch");
  advance t ctx

let finish t ctx =
  if not t.finished then begin
    (* In Vc mode only spec processes have a listening monitor. *)
    (match t.mode with
    | Dd ->
        Engine.send ctx
          ~bits:(Messages.bits ~spec_width:1 Messages.App_done)
          ~dst:(monitor_id t) Messages.App_done
    | Vc ->
        if t.spec_index >= 0 then
          Engine.send ctx
            ~bits:(Messages.bits ~spec_width:t.width Messages.App_done)
            ~dst:(monitor_id t) Messages.App_done);
    t.finished <- true
  end
