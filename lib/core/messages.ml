type color = Red | Green

type tag = Vc_tag of int array | Dd_tag of { src : int; clock : int }

type t =
  | App_msg of { msg_id : int }
  | App_data of { tag : tag; kind : int; data : int }
  | Snap_vc of Snapshot.vc
  | Snap_vc_delta of { state : int; delta : int array }
  | Snap_dd of Snapshot.dd
  | Snap_dd_packed of { state : int; deps : int array }
  | Snap_gcp of { state : int; clock : int array; counts : int array }
  | App_done
  | Vc_token of { seq : int; g : int array; color : color array }
  | Group_token of { seq : int; g : int array; color : color array; group : int }
  | Group_return of { seq : int; g : int array; color : color array; group : int }
  | Dd_token of { seq : int }
  | Poll of { clock : int; next_red : int option }
  | Poll_reply of { became_red : bool }
  | Wd_probe of { seq : int }
  | Wd_reply of { seq : int; received : bool; holding : bool }
  | Frame of t Wcp_sim.Transport.frame

let word = 32

let tag_bits = function
  | Vc_tag v -> word * Array.length v
  | Dd_tag _ -> word

(* Token [seq] fields ride in the same header word the pre-robustness
   accounting already charged, so the bit formulas are unchanged and
   fault-free cost metrics stay bit-identical. *)
let rec bits ~spec_width = function
  | App_msg _ -> word * (1 + spec_width)
  | App_data { tag; _ } -> (word * 2) + tag_bits tag
  | Snap_vc _ -> word * (spec_width + 1)
  (* State word + pair count + ONE packed word per (index, value) pair
     — {!Wire.encode_snap} only emits this form when the pairs fit the
     packed 10/22-bit layout, so the charge matches the wire. *)
  | Snap_vc_delta { delta; _ } -> word * (2 + (Array.length delta / 2))
  | Snap_dd { deps; _ } -> word * (1 + (2 * List.length deps))
  (* State word + ONE packed word per (src, clock) dependence —
     {!Wire.encode_dd} only emits this form when every pair fits the
     packed 10/22-bit layout, so the charge matches the wire. *)
  | Snap_dd_packed { deps; _ } -> word * (1 + Array.length deps)
  | Snap_gcp { clock; counts; _ } ->
      word * (1 + Array.length clock + Array.length counts)
  | App_done -> word
  | Vc_token _ | Group_token _ | Group_return _ -> word * 2 * spec_width
  | Dd_token _ -> word
  | Poll _ -> word * 2
  | Poll_reply _ -> 1
  | Wd_probe _ -> word
  | Wd_reply _ -> word
  | Frame (Wcp_sim.Transport.Data { payload; _ }) ->
      Wcp_sim.Transport.frame_overhead_bits + bits ~spec_width payload
  (* Ack era and Reconnect cursor ride the header word. *)
  | Frame (Wcp_sim.Transport.Ack _) | Frame (Wcp_sim.Transport.Reconnect _) ->
      Wcp_sim.Transport.frame_overhead_bits

(* Regenerating a checkpointed token must not alias arrays the
   receiver will mutate; non-token messages carry no mutable payload
   the monitors write through. *)
let deep_copy = function
  | Vc_token { seq; g; color } ->
      Vc_token { seq; g = Array.copy g; color = Array.copy color }
  | Group_token { seq; g; color; group } ->
      Group_token { seq; g = Array.copy g; color = Array.copy color; group }
  | m -> m

let pp_color ppf = function
  | Red -> Format.pp_print_string ppf "R"
  | Green -> Format.pp_print_string ppf "G"

let pp_vec ppf (g, color) =
  Format.pp_print_char ppf '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Format.pp_print_char ppf ' ';
      Format.fprintf ppf "%d%a" v pp_color color.(i))
    g;
  Format.pp_print_char ppf ']'

let rec pp ppf = function
  | App_msg { msg_id } -> Format.fprintf ppf "app#%d" msg_id
  | App_data { kind; data; _ } -> Format.fprintf ppf "app-data(%d,%d)" kind data
  | Snap_vc { state; _ } -> Format.fprintf ppf "snap-vc@%d" state
  | Snap_vc_delta { state; delta } ->
      Format.fprintf ppf "snap-vcd@%d(%d pairs)" state (Array.length delta / 2)
  | Snap_dd { state; deps } ->
      Format.fprintf ppf "snap-dd@%d(%d deps)" state (List.length deps)
  | Snap_dd_packed { state; deps } ->
      Format.fprintf ppf "snap-ddp@%d(%d deps)" state (Array.length deps)
  | Snap_gcp { state; counts; _ } ->
      Format.fprintf ppf "snap-gcp@%d(%d channels)" state (Array.length counts)
  | App_done -> Format.pp_print_string ppf "app-done"
  | Vc_token { g; color; _ } -> Format.fprintf ppf "token%a" pp_vec (g, color)
  | Group_token { g; color; group; _ } ->
      Format.fprintf ppf "gtoken%d%a" group pp_vec (g, color)
  | Group_return { g; color; group; _ } ->
      Format.fprintf ppf "greturn%d%a" group pp_vec (g, color)
  | Dd_token _ -> Format.pp_print_string ppf "dd-token"
  | Poll { clock; next_red } ->
      Format.fprintf ppf "poll(%d,%s)" clock
        (match next_red with None -> "-" | Some p -> string_of_int p)
  | Poll_reply { became_red } ->
      Format.fprintf ppf "reply(%s)" (if became_red then "became-red" else "no-change")
  | Wd_probe { seq } -> Format.fprintf ppf "wd-probe#%d" seq
  | Wd_reply { seq; received; holding } ->
      Format.fprintf ppf "wd-reply#%d(%s%s)" seq
        (if received then "received" else "missing")
        (if holding then ",holding" else "")
  | Frame (Wcp_sim.Transport.Data { seq; payload }) ->
      Format.fprintf ppf "frame#%d(%a)" seq pp payload
  | Frame (Wcp_sim.Transport.Ack { cum; era }) ->
      if era = 0 then Format.fprintf ppf "ack#%d" cum
      else Format.fprintf ppf "ack#%d/e%d" cum era
  | Frame (Wcp_sim.Transport.Reconnect { expected; era }) ->
      Format.fprintf ppf "reconnect#%d/e%d" expected era
