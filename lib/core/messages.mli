(** The wire protocol shared by all online detection algorithms.

    A single variant covers application traffic, snapshots, and every
    monitor-to-monitor message, so one engine instance can run any of
    the algorithms. The {!bits} function implements the size accounting
    policy from DESIGN.md §3 (32-bit words). *)

type color = Red | Green

type tag = Vc_tag of int array | Dd_tag of { src : int; clock : int }
(** Clock tag piggybacked on live application messages: the [n]-entry
    vector clock (Fig. 2) or the sender's scalar clock (§4.1). Tags on
    {e replayed} traffic are implicit (see {!App_msg}). *)

type t =
  | App_msg of { msg_id : int }
      (** Replayed application message. The clock tag it would carry is
          accounted for in {!bits} but not materialised: the replay
          harness already knows every clock from the recorded
          computation, and the monitors never see application
          messages. *)
  | App_data of { tag : tag; kind : int; data : int }
      (** Live application message (paired with {!Instrument}): the
          clock tag plus a small protocol-specific payload. *)
  | Snap_vc of Snapshot.vc  (** Fig. 2 local snapshot *)
  | Snap_vc_delta of { state : int; delta : int array }
      (** Fig. 2 local snapshot, delta-encoded against the previous
          snapshot shipped on the same (process → monitor) channel —
          the {!Wcp_clocks.Vector_clock.encode_delta} flat pair format.
          Sound because that channel is FIFO (raw replay network) or
          in-order exactly-once (reliable transport). Senders emit it
          only when strictly smaller than the dense {!Snap_vc}
          ({!Wire} implements the hybrid choice and the decode). *)
  | Snap_dd of Snapshot.dd  (** §4.1 local snapshot *)
  | Snap_dd_packed of { state : int; deps : int array }
      (** §4.1 local snapshot with each (src, clock) dependence packed
          into one 10-bit-src/22-bit-clock word ({!Wire.encode_dd}
          emits it only when every dependence fits; {!Wire.decode_dd}
          restores the dense {!Snap_dd}). *)
  | Snap_gcp of { state : int; clock : int array; counts : int array }
      (** GCP-mode snapshot ([6], see {!Checker_gcp}): full [N]-wide
          vector clock plus, per monitored channel on which this
          process is an endpoint, its send (resp. receive) counter at
          this state. *)
  | App_done
      (** End-of-trace marker (finite-run extension, DESIGN.md §3). *)
  | Vc_token of { seq : int; g : int array; color : color array }
      (** The §3 token: candidate cut and colors, spec-indexed. [seq]
          is a global token-hop number (1-based) used by the robustness
          layer to discard duplicate/regenerated tokens; it rides in
          the token's header word, so {!bits} is unchanged by it. *)
  | Group_token of { seq : int; g : int array; color : color array; group : int }
      (** §3.5: a group's token, dispatched by the leader. *)
  | Group_return of { seq : int; g : int array; color : color array; group : int }
      (** §3.5: group token returning to the leader. [seq] echoes the
          hop number of the dispatch it answers so the leader can
          discard duplicate returns replayed by the recovery layer; it
          rides the header word, so {!bits} is unchanged by it. *)
  | Dd_token of { seq : int }  (** §4: the (otherwise empty) token. *)
  | Poll of { clock : int; next_red : int option }
      (** §4 poll: a dependence's clock and the poller's red-chain
          successor. *)
  | Poll_reply of { became_red : bool }
  | Wd_probe of { seq : int }
      (** Token-loss watchdog lease probe: "did token [seq] reach you,
          and are you still holding it?" Probes and replies ride the
          raw (lossy) network — they are cheap and idempotent, and the
          reliable transport already guarantees liveness without
          them. *)
  | Wd_reply of { seq : int; received : bool; holding : bool }
  | Frame of t Wcp_sim.Transport.frame
      (** Reliable-transport envelope used when running under a fault
          plan (see {!Wcp_sim.Transport}). *)

val bits : spec_width:int -> t -> int
(** Size of a message in bits under the 32-bit-word policy:
    - [App_msg]: word payload + clock tag ([spec_width] words for the
      vector-clock algorithms — callers pass [~spec_width:1] when
      running the scalar-clock §4 algorithm);
    - [App_data]: two payload words + the actual tag's size;
    - [Snap_vc]: [spec_width + 1] words; [Snap_vc_delta]:
      [2 + pairs] words (state, pair count, then ONE packed
      10-bit-index/22-bit-value word per pair — {!Wire.encode_snap}
      falls back to dense whenever a pair would not fit);
      [Snap_dd]: [1 + 2·|deps|]; [Snap_dd_packed]: [1 + |deps|] words;
    - [Snap_gcp]: [1 + N + #channels] words;
    - [Vc_token]/[Group_token]/[Group_return]: [2·spec_width] words
      ([G] plus colors);
    - [Dd_token]: 1 word; [Poll]: 2 words; [Poll_reply]: 1 bit;
    - [Wd_probe]/[Wd_reply]: 1 word;
    - [Frame]: the payload plus {!Wcp_sim.Transport.frame_overhead_bits}
      of header ([Ack]s are header-only). *)

val deep_copy : t -> t
(** Fresh copies of the mutable arrays of a token message (the
    receiver mutates the [g]/[color] it is handed); identity on
    everything else. Used when regenerating a token from a watchdog
    or a decoded checkpoint. *)

val pp : Format.formatter -> t -> unit
