open Wcp_clocks

let version = "wcp-ckpt/1"

type vc_mon = {
  v_queue : Snapshot.vc list;
  v_decoder : int array;
  v_app_done : bool;
  v_held : (int array * Messages.color array) option;
  v_last : Snapshot.vc option;
  v_last_seq : int;
}

type dd_mon = {
  d_queue : Snapshot.dd list;
  d_app_done : bool;
  d_color : Messages.color;
  d_g : int;
  d_next_red : int option;
  d_has_token : bool;
  d_tentative : int option;
  d_deps : Dependence.t list;
  d_polling : bool;
  d_last_seq : int;
}

type algo =
  | Vc of vc_mon
  | Multi of vc_mon
  | Dd of dd_mon
  | Frontier of { round : int; frontier : int array }

type wd_state = {
  w_seq : int;
  w_dst : int;
  w_probes : int;
  w_bits : int;
  w_payload : Messages.t;
}

type t = {
  proc : int;
  algo : algo;
  transport : Messages.t Wcp_sim.Transport.state;
  watchdog : wd_state option;
}

let equal (a : t) (b : t) = a = b

(* --- Encoder ------------------------------------------------------ *)

(* The stream is whitespace-separated integers after the version
   header: every structured value flattens to tags, lengths and
   fields. No floats anywhere — monitor state is exact, so a decoded
   checkpoint reproduces the captured state bit for bit. *)

let eint b n =
  Buffer.add_char b ' ';
  Buffer.add_string b (string_of_int n)

let ebool b v = eint b (if v then 1 else 0)

let ecolor b = function Messages.Red -> eint b 0 | Messages.Green -> eint b 1

let eopt f b = function
  | None -> eint b 0
  | Some v ->
      eint b 1;
      f b v

let earr f b a =
  eint b (Array.length a);
  Array.iter (f b) a

let elist f b l =
  eint b (List.length l);
  List.iter (f b) l

let eiarr b a = earr eint b a

let esnap_vc b (s : Snapshot.vc) =
  eint b s.Snapshot.state;
  eiarr b s.Snapshot.clock

let edep b (d : Dependence.t) =
  eint b d.Dependence.src;
  eint b d.Dependence.clock

let esnap_dd b (s : Snapshot.dd) =
  eint b s.Snapshot.state;
  elist edep b s.Snapshot.deps

let etag b = function
  | Messages.Vc_tag v ->
      eint b 0;
      eiarr b v
  | Messages.Dd_tag { src; clock } ->
      eint b 1;
      eint b src;
      eint b clock

let rec emsg b = function
  | Messages.App_msg { msg_id } ->
      eint b 0;
      eint b msg_id
  | Messages.App_data { tag; kind; data } ->
      eint b 1;
      etag b tag;
      eint b kind;
      eint b data
  | Messages.Snap_vc s ->
      eint b 2;
      esnap_vc b s
  | Messages.Snap_vc_delta { state; delta } ->
      eint b 3;
      eint b state;
      eiarr b delta
  | Messages.Snap_dd s ->
      eint b 4;
      esnap_dd b s
  | Messages.Snap_dd_packed { state; deps } ->
      eint b 5;
      eint b state;
      eiarr b deps
  | Messages.Snap_gcp { state; clock; counts } ->
      eint b 6;
      eint b state;
      eiarr b clock;
      eiarr b counts
  | Messages.App_done -> eint b 7
  | Messages.Vc_token { seq; g; color } ->
      eint b 8;
      eint b seq;
      eiarr b g;
      earr ecolor b color
  | Messages.Group_token { seq; g; color; group } ->
      eint b 9;
      eint b seq;
      eiarr b g;
      earr ecolor b color;
      eint b group
  | Messages.Group_return { seq; g; color; group } ->
      eint b 10;
      eint b seq;
      eiarr b g;
      earr ecolor b color;
      eint b group
  | Messages.Dd_token { seq } ->
      eint b 11;
      eint b seq
  | Messages.Poll { clock; next_red } ->
      eint b 12;
      eint b clock;
      eopt eint b next_red
  | Messages.Poll_reply { became_red } ->
      eint b 13;
      ebool b became_red
  | Messages.Wd_probe { seq } ->
      eint b 14;
      eint b seq
  | Messages.Wd_reply { seq; received; holding } ->
      eint b 15;
      eint b seq;
      ebool b received;
      ebool b holding
  | Messages.Frame f -> (
      eint b 16;
      match f with
      | Wcp_sim.Transport.Data { seq; payload } ->
          eint b 0;
          eint b seq;
          emsg b payload
      | Wcp_sim.Transport.Ack { cum; era } ->
          eint b 1;
          eint b cum;
          eint b era
      | Wcp_sim.Transport.Reconnect { expected; era } ->
          eint b 2;
          eint b expected;
          eint b era)

let evc_mon b m =
  elist esnap_vc b m.v_queue;
  eiarr b m.v_decoder;
  ebool b m.v_app_done;
  eopt
    (fun b (g, color) ->
      eiarr b g;
      earr ecolor b color)
    b m.v_held;
  eopt esnap_vc b m.v_last;
  eint b m.v_last_seq

let edd_mon b m =
  elist esnap_dd b m.d_queue;
  ebool b m.d_app_done;
  ecolor b m.d_color;
  eint b m.d_g;
  eopt eint b m.d_next_red;
  ebool b m.d_has_token;
  eopt eint b m.d_tentative;
  elist edep b m.d_deps;
  ebool b m.d_polling;
  eint b m.d_last_seq

let ealgo b = function
  | Vc m ->
      eint b 0;
      evc_mon b m
  | Multi m ->
      eint b 1;
      evc_mon b m
  | Dd m ->
      eint b 2;
      edd_mon b m
  | Frontier { round; frontier } ->
      eint b 3;
      eint b round;
      eiarr b frontier

let etx b (s : Messages.t Wcp_sim.Transport.tx_state) =
  eint b s.Wcp_sim.Transport.tx_dst;
  eint b s.tx_next_seq;
  eint b s.tx_base;
  eint b s.tx_era;
  elist
    (fun b (seq, payload, bits) ->
      eint b seq;
      eint b bits;
      emsg b payload)
    b s.tx_frames

let erx b (s : Wcp_sim.Transport.rx_state) =
  eint b s.Wcp_sim.Transport.rx_src;
  eint b s.rx_expected;
  eint b s.rx_era

let ewd b w =
  eint b w.w_seq;
  eint b w.w_dst;
  eint b w.w_probes;
  eint b w.w_bits;
  emsg b w.w_payload

let encode t =
  let b = Buffer.create 256 in
  Buffer.add_string b version;
  eint b t.proc;
  ealgo b t.algo;
  elist etx b t.transport.Wcp_sim.Transport.st_txs;
  elist erx b t.transport.Wcp_sim.Transport.st_rxs;
  eopt ewd b t.watchdog;
  Buffer.contents b

(* --- Decoder ------------------------------------------------------ *)

type reader = { toks : string array; mutable pos : int }

let fail msg = failwith ("Checkpoint.decode: " ^ msg)

let next r =
  if r.pos >= Array.length r.toks then fail "truncated checkpoint"
  else begin
    let t = r.toks.(r.pos) in
    r.pos <- r.pos + 1;
    t
  end

let dint r =
  let t = next r in
  match int_of_string_opt t with
  | Some n -> n
  | None -> fail (Printf.sprintf "expected an integer, got %S" t)

let dbool r =
  match dint r with
  | 0 -> false
  | 1 -> true
  | n -> fail (Printf.sprintf "expected a boolean, got %d" n)

let dcolor r =
  match dint r with
  | 0 -> Messages.Red
  | 1 -> Messages.Green
  | n -> fail (Printf.sprintf "bad color tag %d" n)

let dopt f r = match dint r with 0 -> None | _ -> Some (f r)

let dlen r =
  let n = dint r in
  if n < 0 then fail (Printf.sprintf "negative length %d" n);
  n

let darr f r = Array.init (dlen r) (fun _ -> f r)

let dlist f r = List.init (dlen r) (fun _ -> f r)

let diarr r = darr dint r

let dsnap_vc r =
  let state = dint r in
  { Snapshot.state; clock = diarr r }

let ddep r =
  let src = dint r in
  { Dependence.src; clock = dint r }

let dsnap_dd r =
  let state = dint r in
  { Snapshot.state; deps = dlist ddep r }

let dtag r =
  match dint r with
  | 0 -> Messages.Vc_tag (diarr r)
  | 1 ->
      let src = dint r in
      Messages.Dd_tag { src; clock = dint r }
  | n -> fail (Printf.sprintf "bad tag variant %d" n)

let rec dmsg r =
  match dint r with
  | 0 -> Messages.App_msg { msg_id = dint r }
  | 1 ->
      let tag = dtag r in
      let kind = dint r in
      Messages.App_data { tag; kind; data = dint r }
  | 2 -> Messages.Snap_vc (dsnap_vc r)
  | 3 ->
      let state = dint r in
      Messages.Snap_vc_delta { state; delta = diarr r }
  | 4 -> Messages.Snap_dd (dsnap_dd r)
  | 5 ->
      let state = dint r in
      Messages.Snap_dd_packed { state; deps = diarr r }
  | 6 ->
      let state = dint r in
      let clock = diarr r in
      Messages.Snap_gcp { state; clock; counts = diarr r }
  | 7 -> Messages.App_done
  | 8 ->
      let seq = dint r in
      let g = diarr r in
      Messages.Vc_token { seq; g; color = darr dcolor r }
  | 9 ->
      let seq = dint r in
      let g = diarr r in
      let color = darr dcolor r in
      Messages.Group_token { seq; g; color; group = dint r }
  | 10 ->
      let seq = dint r in
      let g = diarr r in
      let color = darr dcolor r in
      Messages.Group_return { seq; g; color; group = dint r }
  | 11 -> Messages.Dd_token { seq = dint r }
  | 12 ->
      let clock = dint r in
      Messages.Poll { clock; next_red = dopt dint r }
  | 13 -> Messages.Poll_reply { became_red = dbool r }
  | 14 -> Messages.Wd_probe { seq = dint r }
  | 15 ->
      let seq = dint r in
      let received = dbool r in
      Messages.Wd_reply { seq; received; holding = dbool r }
  | 16 -> (
      match dint r with
      | 0 ->
          let seq = dint r in
          Messages.Frame (Wcp_sim.Transport.Data { seq; payload = dmsg r })
      | 1 ->
          let cum = dint r in
          Messages.Frame (Wcp_sim.Transport.Ack { cum; era = dint r })
      | 2 ->
          let expected = dint r in
          Messages.Frame (Wcp_sim.Transport.Reconnect { expected; era = dint r })
      | n -> fail (Printf.sprintf "bad frame variant %d" n))
  | n -> fail (Printf.sprintf "bad message variant %d" n)

let dvc_mon r =
  let v_queue = dlist dsnap_vc r in
  let v_decoder = diarr r in
  let v_app_done = dbool r in
  let v_held =
    dopt
      (fun r ->
        let g = diarr r in
        (g, darr dcolor r))
      r
  in
  let v_last = dopt dsnap_vc r in
  { v_queue; v_decoder; v_app_done; v_held; v_last; v_last_seq = dint r }

let ddd_mon r =
  let d_queue = dlist dsnap_dd r in
  let d_app_done = dbool r in
  let d_color = dcolor r in
  let d_g = dint r in
  let d_next_red = dopt dint r in
  let d_has_token = dbool r in
  let d_tentative = dopt dint r in
  let d_deps = dlist ddep r in
  let d_polling = dbool r in
  {
    d_queue;
    d_app_done;
    d_color;
    d_g;
    d_next_red;
    d_has_token;
    d_tentative;
    d_deps;
    d_polling;
    d_last_seq = dint r;
  }

let dalgo r =
  match dint r with
  | 0 -> Vc (dvc_mon r)
  | 1 -> Multi (dvc_mon r)
  | 2 -> Dd (ddd_mon r)
  | 3 ->
      let round = dint r in
      Frontier { round; frontier = diarr r }
  | n -> fail (Printf.sprintf "bad algo variant %d" n)

let dtx r =
  let tx_dst = dint r in
  let tx_next_seq = dint r in
  let tx_base = dint r in
  let tx_era = dint r in
  let tx_frames =
    dlist
      (fun r ->
        let seq = dint r in
        let bits = dint r in
        (seq, dmsg r, bits))
      r
  in
  { Wcp_sim.Transport.tx_dst; tx_next_seq; tx_base; tx_frames; tx_era }

let drx r =
  let rx_src = dint r in
  let rx_expected = dint r in
  { Wcp_sim.Transport.rx_src; rx_expected; rx_era = dint r }

let dwd r =
  let w_seq = dint r in
  let w_dst = dint r in
  let w_probes = dint r in
  let w_bits = dint r in
  { w_seq; w_dst; w_probes; w_bits; w_payload = dmsg r }

let decode s =
  let toks =
    String.split_on_char ' ' s
    |> List.filter (fun t -> t <> "")
    |> Array.of_list
  in
  let r = { toks; pos = 0 } in
  let v = next r in
  if v <> version then fail (Printf.sprintf "unsupported version %S" v);
  let proc = dint r in
  let algo = dalgo r in
  let st_txs = dlist dtx r in
  let st_rxs = dlist drx r in
  let watchdog = dopt dwd r in
  if r.pos <> Array.length r.toks then fail "trailing garbage";
  { proc; algo; transport = { Wcp_sim.Transport.st_txs; st_rxs }; watchdog }
