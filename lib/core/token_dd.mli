(** The direct-dependence WCP detection algorithm (paper §4, Figs 4–5)
    and its parallel variant (§4.5).

    No vector clocks: application processes tag messages with a scalar
    clock (the sender's state index) and report, in each local
    snapshot, the {e direct dependences} — (sender, clock) pairs of
    messages received since the previous snapshot. Because every one of
    the [N] processes participates (processes without a local predicate
    have the trivially-true one), checking only direct dependences
    suffices for cut consistency (Lemma 4.1).

    The monitors share an {e empty} token and keep the candidate cut
    distributed: each monitor holds its own [G] (scalar clock of its
    candidate) and [color]. Red monitors form a linked list — the red
    chain — threaded through per-monitor [next_red] pointers, with the
    token holder at the head. The holder consumes candidates until one
    advances past its [G], then polls the monitor of every collected
    dependence: a poll that turns its target red splices the target
    into the chain right after the holder. When the chain is empty the
    [G] values form the first consistent cut satisfying the WCP
    (Theorems 4.3–4.4).

    Costs (§4.4, checked by the tests and bench E4): at most [Nm]
    token moves, [Nm] polls (plus replies), [O(Nm)] bits and — the
    point of the algorithm — [O(m)] work and space on {e every}
    process.

    With [parallel = true] (§4.5) red monitors prefetch: they search
    for their next candidate and poll its dependences {e before} the
    token arrives, splicing newly red monitors after themselves; a
    monitor still leaves the chain only when the token visits it, which
    keeps the chain intact (the paper's restriction). Totals are
    unchanged; simulated detection time drops (experiment E8).

    Erratum implemented: Fig. 4 never assigns [G := candidate.clock]
    when accepting a candidate, but Table 1, Lemma 4.2 and Theorem 4.3
    all require [M_i.G] to be the accepted candidate's clock; we
    perform the assignment (see DESIGN.md §3). *)

open Wcp_trace
open Wcp_sim

type monitors

val install :
  Messages.t Engine.t ->
  n_app:int ->
  parallel:bool ->
  ?net:Run_common.net ->
  ?watchdog:Watchdog.t ->
  ?check:
    (g:int array ->
    color:Messages.color array ->
    next_red:int option array ->
    next:int option ->
    unit) ->
  ?recovery:Run_common.recovery ->
  ?stop:bool ->
  ?start_at:int ->
  ?delta:bool ->
  outcome:Detection.outcome option ref ->
  hops:int ref ->
  polls:int ref ->
  snapshots:int ref ->
  unit ->
  monitors
(** Install the Figs 4–5 monitor handlers for all [n_app] processes
    (the WCP's identity is immaterial to the monitors: they only see
    snapshot streams, which is why live monitoring needs no recorded
    computation). The engine must follow the {!Run_common} id layout.
    The detected cut spans all [n_app] processes. [stop], [net],
    [watchdog] and [recovery] as in {!Token_vc.install}. [delta] (default [true])
    charges each §4 poll its packed one-word size ({!Wire.poll_bits})
    instead of the dense two words; the monitors decode both dd
    snapshot forms either way. *)

val start : Messages.t Engine.t -> monitors -> unit
(** Hand the token to the head of the initial red chain (the monitor of
    process [start_at], default 0; the chain is rotated so that monitor
    leads it) at time 0. Call before [Engine.run]. *)

val detect :
  ?network:Network.t ->
  ?fault:Fault.plan ->
  ?recorder:Wcp_obs.Recorder.t ->
  ?parallel:bool ->
  ?invariant_checks:bool ->
  ?start_at:int ->
  ?ckpt_every:int ->
  ?options:Detection.options ->
  seed:int64 ->
  Computation.t ->
  Spec.t ->
  Detection.result
(** The [Detected] cut spans all [N] processes; project it with
    {!Detection.project_outcome} to compare against the oracle.
    [fault] and [ckpt_every] as in {!Token_vc.detect}: reliable
    transport + token watchdog + graceful [Undetectable_crashed]
    degradation, with checkpointed crash recovery under
    [Fault.Restart] windows.
    [options] as in {!Token_vc.detect}; for this algorithm [delta]
    packs §4.1 snapshot dependences ({!Wire.encode_dd}) and prices
    polls at their packed size ({!Wire.poll_bits}) — red-chain
    prefetch/poll traffic included ([~parallel:true], experiment E8) —
    and [slice] keeps {e every} state of non-spec processes (the cut
    spans all [N]).
    [invariant_checks] re-validates Lemma 4.2(1-3) against the recorded
    computation at every commit point (sequential mode only; the
    statements quantify over quiescent protocol states, which
    prefetching deliberately abandons).
    @raise Failure if a checked invariant is violated. *)
