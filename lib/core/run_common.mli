(** Shared wiring for the online detection runs.

    Engine process layout for a computation with [N] application
    processes:
    - ids [0 .. N-1]: application processes (trace replay);
    - ids [N .. 2N-1]: monitor of application process [p] is [N + p];
    - id [2N]: the centralized checker (for the baseline) or the
      multi-token leader (§3.5); idle otherwise.

    The default network gives every link an independent uniform latency
    and makes exactly the application→monitor and application→checker
    links FIFO, as required by §3.1; monitor-to-monitor traffic may be
    reordered freely. *)

open Wcp_trace
open Wcp_sim

val monitor_of : n:int -> int -> int
(** [monitor_of ~n p = n + p]. *)

val extra_id : n:int -> int
(** [2n]: checker / leader id. *)

val default_network : n:int -> Network.t

val make_engine :
  ?network:Network.t -> ?fault:Fault.plan ->
  ?recorder:Wcp_obs.Recorder.t -> seed:int64 -> Computation.t ->
  Messages.t Engine.t
(** Engine with [2N + 1] processes and the default network. [fault]
    (default none) switches on deterministic fault injection; see
    {!Wcp_sim.Fault}. [recorder] (default none) attaches the causal
    trace recorder; see {!Wcp_sim.Engine.create}. *)

val make_engine_n :
  ?network:Network.t -> ?fault:Fault.plan ->
  ?recorder:Wcp_obs.Recorder.t -> seed:int64 -> n:int -> unit ->
  Messages.t Engine.t
(** Same, for live systems that have no recorded computation. *)

val emit_run_meta :
  Messages.t Engine.t -> algo:string -> n:int -> width:int -> unit
(** Emit the [Run_meta] prologue event — followed by the ["build"]
    phase mark opening the wiring/setup phase of the telemetry
    profile — if the engine has a recorder (no-op otherwise). Every
    detector calls this once before wiring. *)

type announce = Detection.outcome -> unit
(** Callback a monitor invokes exactly once to report the result and
    halt the simulation. *)

type net = {
  send : Messages.t Engine.ctx -> bits:int -> dst:int -> Messages.t -> unit;
  set_handler :
    int -> (Messages.t Engine.ctx -> src:int -> Messages.t -> unit) -> unit;
}
(** A pluggable delivery substrate: protocol code sends and installs
    handlers through one of these, so the same algorithm runs either
    directly on the engine or through the reliable transport. *)

val raw_net : Messages.t Engine.t -> net
(** Plain {!Engine.send} / {!Engine.set_handler}; byte-for-byte the
    pre-robustness behaviour, used whenever no fault plan is active. *)

val reliable_net :
  ?rto:float ->
  ?backoff:float ->
  ?max_retries:int ->
  ?on_unreachable:(Messages.t Engine.ctx -> dst:int -> unit) ->
  Messages.t Engine.t ->
  net
(** All traffic rides one {!Wcp_sim.Transport} instance whose frames
    are embedded as {!Messages.Frame}: exactly-once FIFO delivery per
    link over a faulty network. [on_unreachable] fires when some flow
    exhausts its retries (a permanently crashed peer) — detectors use
    it to announce {!Detection.Undetectable_crashed}. *)

val reliable_net_transport :
  ?rto:float ->
  ?backoff:float ->
  ?max_retries:int ->
  ?max_unacked:int ->
  ?recovery:bool ->
  ?on_unreachable:(Messages.t Engine.ctx -> dst:int -> unit) ->
  Messages.t Engine.t ->
  net * Messages.t Wcp_sim.Transport.t
(** {!reliable_net}, but also hands back the transport itself so the
    crash-recovery layer can checkpoint flow state
    ({!Wcp_sim.Transport.export_state}) and drive the reconnect
    handshake after a [Fault.Restart]. [recovery] and [max_unacked] are
    passed through to {!Wcp_sim.Transport.create}. *)

(** {2 Crash-recovery wiring} *)

type recovery = {
  transport : Messages.t Wcp_sim.Transport.t;
      (** the run's reliable transport, created with [~recovery:true] *)
  restarts : Fault.window list;  (** the plan's [Restart] windows *)
  every : int;  (** capture after every [every]-th handled message *)
}

val wire_recovery :
  Messages.t Engine.t ->
  recovery ->
  owns:(int -> bool) ->
  capture:(int -> Checkpoint.algo * Checkpoint.wd_state option) ->
  restore:(Messages.t Engine.ctx -> Checkpoint.t -> unit) ->
  (int -> Messages.t Engine.ctx -> unit)
(** Wire checkpoint capture and deterministic restore for every
    [Restart] window whose proc satisfies [owns] (the detector's own
    monitor ids): seed an initial checkpoint per restarting proc,
    schedule a restore timer at each window's [until_t] (decode the
    stored checkpoint, hand it to [restore] for the algorithm and
    watchdog state, rebuild the transport flows, then run the
    {!Wcp_sim.Transport.reconnect} handshake), and return the
    capture hook the detector must call after {e every} handled
    monitor message — it encodes a fresh checkpoint every
    [every]-th message for restarting procs and no-ops for others.
    Checkpoints cross the capture/restore boundary only as encoded
    strings, so the codec itself is on the recovery path.
    @raise Invalid_argument if [every < 1]. *)

val finish :
  ?fault:Fault.plan ->
  Messages.t Engine.t ->
  outcome:Detection.outcome option ref ->
  extras:Detection.extras ->
  Detection.result
(** Emit the ["detect"] phase mark (when a recorder is attached), then
    run the engine and assemble the result. If the event queue drains
    without any announcement and [fault] contains permanent crash
    windows, the result is [Undetectable_crashed] over those processes
    (graceful degradation).
    @raise Failure if the queue drains without an announcement and no
    permanent crash explains it (a protocol bug, surfaced loudly for
    the test suite). *)

val with_slice :
  ?recorder:Wcp_obs.Recorder.t ->
  keep_rest:bool ->
  Computation.t ->
  Spec.t ->
  run:(Computation.t -> Spec.t -> Detection.result) ->
  Detection.result
(** Emit the ["slice"] phase mark into [recorder] (it legally precedes
    the inner run's [Run_meta] — slicing happens before any engine
    exists), slice the computation for the spec (see {!Wcp_slice.Slice.for_spec}),
    run the detector on the slice, and remap the detected cut back to
    dense coordinates. Every [detect ?options] entry point with
    [options.slice = true] is this wrapper around its dense self;
    [keep_rest] is [true] for the algorithms whose cuts span all [N]
    processes (direct dependence, GCP). *)

val with_source :
  ?recorder:Wcp_obs.Recorder.t ->
  keep_rest:bool ->
  Computation.Stream.source ->
  procs:int array ->
  run:(Computation.t -> Spec.t -> Detection.result) ->
  Detection.result
(** {!with_slice} fed by a streaming cursor instead of a dense
    computation: the slice is built directly from the source (see
    {!Wcp_slice.Slice.for_spec_source}), so detection over an mmap'd
    {!Wcp_trace.Btrace} reader never materialises the dense run. The
    detected cut is remapped to dense coordinates exactly as in
    {!with_slice}, so the two paths agree cut-for-cut. *)
