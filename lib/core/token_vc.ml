open Wcp_trace
open Wcp_sim

let log = Logs.Src.create "wcp.token-vc" ~doc:"vector-clock token algorithm"

module Log = (val Logs.src_log log : Logs.LOG)

type mon = {
  k : int;  (* spec index *)
  queue : Snapshot.vc Queue.t;
  decoder : Wire.snap_decoder;  (* delta-snapshot channel state *)
  mutable app_done : bool;
  (* Token parked here while we wait for a fresh candidate. *)
  mutable held : (int array * Messages.color array) option;
  mutable last : Snapshot.vc option;  (* last candidate consumed *)
  mutable last_token_seq : int;  (* highest token hop accepted (dedup) *)
}

type monitors = {
  start_id : int;
  start_token : Messages.t Wcp_sim.Engine.ctx -> unit;
}

(* Executable check of Lemma 3.1 (parts 1-3) against the ground-truth
   computation; [g.(j) = 0] entries denote "no state selected yet" and
   are exempt, exactly as in the paper's statements. Runs once per
   token hop over width² state pairs, so it uses the unchecked
   happened-before: every non-zero [g.(j)] came from a snapshot of a
   real state and needs no bounds re-validation. *)
let check_invariants comp spec ~g ~color =
  let width = Spec.width spec in
  let state j = State.make ~proc:(Spec.proc spec j) ~index:g.(j) in
  let is_green j = match color.(j) with Messages.Green -> true | _ -> false in
  for i = 0 to width - 1 do
    (match color.(i) with
    | Messages.Red ->
        if g.(i) <> 0 then begin
          let dominated = ref false in
          for j = 0 to width - 1 do
            if j <> i && g.(j) <> 0
               && Computation.happened_before_unsafe comp (state i) (state j)
            then dominated := true
          done;
          if not !dominated then
            failwith
              (Printf.sprintf
                 "Lemma 3.1(1) violated: red state (%d,%d) precedes no candidate"
                 (Spec.proc spec i) g.(i))
        end
    | Messages.Green ->
        if g.(i) = 0 then failwith "Lemma 3.1: green entry with G = 0";
        for j = 0 to width - 1 do
          if j <> i && g.(j) <> 0
             && Computation.happened_before_unsafe comp (state i) (state j)
          then
            failwith
              (Printf.sprintf
                 "Lemma 3.1(2) violated: green state (%d,%d) precedes (%d,%d)"
                 (Spec.proc spec i) g.(i) (Spec.proc spec j) g.(j))
        done);
    (* Part 3 follows from part 2, but check it directly as well. *)
    for j = 0 to width - 1 do
      if i <> j && is_green i && is_green j
         && not (Computation.concurrent_unsafe comp (state i) (state j))
      then failwith "Lemma 3.1(3) violated: green candidates not concurrent"
    done
  done

let install engine ~n_app ~wcp_procs ?net ?watchdog ?check ?recovery
    ?(stop = true) ?(start_at = 0) ?(delta = true) ~outcome ~hops ~snapshots ()
    =
  let net = match net with Some n -> n | None -> Run_common.raw_net engine in
  (* Fetched once; every emission below is a single match when tracing
     is off (no closures, no event construction). *)
  let recorder = Engine.recorder engine in
  let width = Array.length wcp_procs in
  if width = 0 then invalid_arg "Token_vc.install: empty WCP";
  if start_at < 0 || start_at >= width then
    invalid_arg "Token_vc.install: start_at out of range";
  Array.iteri
    (fun k p ->
      if p < 0 || p >= n_app then invalid_arg "Token_vc.install: bad process";
      if k > 0 && wcp_procs.(k - 1) >= p then
        invalid_arg "Token_vc.install: procs must be strictly increasing")
    wcp_procs;
  let announce ctx o =
    if Option.is_none !outcome then begin
      outcome := Some o;
      if stop then Engine.stop ctx
    end
  in
  let bits = Messages.bits ~spec_width:width in
  let monitor_id k = Run_common.monitor_of ~n:n_app wcp_procs.(k) in
  let meter = if delta then Some (Wire.token_meter ~width) else None in
  let token_bits ctx ~dst msg g =
    match meter with
    | Some mt -> Wire.token_bits mt ~src:(Engine.self ctx) ~dst g
    | None -> bits msg
  in
  (* Fig. 3, run by the monitor currently holding the token. *)
  let rec process ctx m g color =
    match color.(m.k) with
    | Messages.Red -> (
      match Queue.take_opt m.queue with
      | None ->
          if m.app_done then begin
            (match recorder with
            | None -> ()
            | Some r ->
                Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
                  ~proc:(Engine.self ctx) Wcp_obs.Event.No_detection_declared);
            announce ctx Detection.No_detection
          end
          else m.held <- Some (g, color)
      | Some cand ->
          Engine.charge_work ctx 1;
          m.last <- Some cand;
          if cand.Snapshot.clock.(m.k) > g.(m.k) then begin
            g.(m.k) <- cand.Snapshot.clock.(m.k);
            color.(m.k) <- Messages.Green;
            match recorder with
            | None -> ()
            | Some r ->
                Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
                  ~proc:(Engine.self ctx)
                  (Wcp_obs.Event.Candidate_advanced
                     { k = m.k; proc = wcp_procs.(m.k); state = g.(m.k) })
          end;
          process ctx m g color)
    | Messages.Green ->
      let m_k = m.k in
      let cand =
        match m.last with
        | Some c -> c
        | None -> assert false (* the token only visits red monitors *)
      in
      Engine.charge_work ctx width;
      for j = 0 to width - 1 do
        if j <> m.k && cand.Snapshot.clock.(j) >= g.(j) then begin
          (match recorder with
          | None -> ()
          | Some r ->
              Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
                ~proc:(Engine.self ctx)
                (Wcp_obs.Event.Vc_advanced
                   {
                     by_k = m.k;
                     by_proc = wcp_procs.(m.k);
                     by_state = cand.Snapshot.state;
                     by_clock = Array.copy cand.Snapshot.clock;
                     victim_k = j;
                     victim_proc = wcp_procs.(j);
                     victim_state = g.(j);
                     witness = cand.Snapshot.clock.(j);
                   }));
          g.(j) <- cand.Snapshot.clock.(j);
          color.(j) <- Messages.Red
        end
      done;
      (match check with Some f -> f ~g ~color | None -> ());
      let first_red = ref (-1) in
      for j = width - 1 downto 0 do
        match color.(j) with
        | Messages.Red -> first_red := j
        | Messages.Green -> ()
      done;
      let j = !first_red in
      if j >= 0 then begin
        incr hops;
        let seq = !hops in
        Log.debug (fun m ->
            m "t=%.3f token %d -> %d" (Engine.time ctx) m_k j);
        (match recorder with
        | None -> ()
        | Some r ->
            Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
              ~proc:(Engine.self ctx)
              (Wcp_obs.Event.Token_sent
                 { seq; dst = monitor_id j; g = Array.copy g }));
        let msg = Messages.Vc_token { seq; g; color } in
        let hop_bits = token_bits ctx ~dst:(monitor_id j) msg g in
        net.Run_common.send ctx ~bits:hop_bits ~dst:(monitor_id j) msg;
        match watchdog with
        | None -> ()
        | Some wd ->
            (* Deep-copy for regeneration: the receiver mutates the
               arrays of the copy it gets. A resend puts the same bytes
               back on the wire, so it re-charges [hop_bits] rather
               than re-running the (stateful) encoder. *)
            let g' = Array.copy g and color' = Array.copy color in
            let payload = Messages.Vc_token { seq; g = g'; color = color' } in
            Watchdog.watch wd ctx ~token:(payload, hop_bits) ~seq
              ~dst:(monitor_id j)
              ~resend:(fun ctx ->
                net.Run_common.send ctx ~bits:hop_bits ~dst:(monitor_id j)
                  (Messages.deep_copy payload))
              ()
      end
      else begin
        Log.info (fun m ->
            m "t=%.3f WCP detected at monitor %d" (Engine.time ctx) m_k);
        (match recorder with
        | None -> ()
        | Some r ->
            Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
              ~proc:(Engine.self ctx)
              (Wcp_obs.Event.Detected
                 { procs = Array.copy wcp_procs; states = Array.copy g }));
        announce ctx
          (Detection.Detected
             (Cut.make ~procs:wcp_procs ~states:(Array.copy g)))
      end
  in
  let resume ctx m =
    match m.held with
    | Some (g, color) ->
        m.held <- None;
        process ctx m g color
    | None -> ()
  in
  let on_message m ctx ~src msg =
    match msg with
    | Messages.Snap_vc _ | Messages.Snap_vc_delta _ ->
        let s = Wire.decode_snap m.decoder msg in
        incr snapshots;
        (match recorder with
        | None -> ()
        | Some r ->
            Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
              ~proc:(Engine.self ctx)
              (Wcp_obs.Event.Snapshot_arrived { src; state = s.Snapshot.state }));
        Queue.add s m.queue;
        Engine.note_space ctx (Queue.length m.queue * width);
        resume ctx m
    | Messages.App_done ->
        m.app_done <- true;
        resume ctx m
    | Messages.Vc_token { seq; g; color } ->
        (* Regenerated/duplicated tokens carry an already-seen hop
           number; processing one twice would corrupt the search. *)
        if seq > m.last_token_seq then begin
          m.last_token_seq <- seq;
          (match recorder with
          | None -> ()
          | Some r ->
              Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
                ~proc:(Engine.self ctx) (Wcp_obs.Event.Token_received { seq }));
          process ctx m g color
        end
    | Messages.Wd_probe { seq } ->
        let reply =
          Messages.Wd_reply
            {
              seq;
              received = seq <= m.last_token_seq;
              holding = m.held <> None && seq = m.last_token_seq;
            }
        in
        Engine.send ctx ~bits:(bits reply) ~dst:src reply
    | Messages.Wd_reply { seq; received; holding } -> (
        match watchdog with
        | Some wd -> Watchdog.on_reply wd ctx ~seq ~received ~holding
        | None -> ())
    | _ -> failwith "Token_vc: unexpected message at monitor"
  in
  let cells =
    Array.init width (fun k ->
        {
          k;
          queue = Queue.create ();
          decoder = Wire.snap_decoder ~width;
          app_done = false;
          held = None;
          last = None;
          last_token_seq = 0;
        })
  in
  (* Crash recovery: capture a checkpoint after every k-th handled
     message on a restarting monitor, and rebuild its cell (plus any
     watchdog lease it owned) from the last one at window end. *)
  let maybe_capture =
    match recovery with
    | None -> None
    | Some r ->
        let cell_of : (int, mon) Hashtbl.t = Hashtbl.create 8 in
        Array.iter (fun m -> Hashtbl.replace cell_of (monitor_id m.k) m) cells;
        let capture proc =
          let m = Hashtbl.find cell_of proc in
          let algo =
            Checkpoint.Vc
              {
                Checkpoint.v_queue = List.of_seq (Queue.to_seq m.queue);
                v_decoder = Wire.decoder_state m.decoder;
                v_app_done = m.app_done;
                v_held = m.held;
                v_last = m.last;
                v_last_seq = m.last_token_seq;
              }
          in
          let wd_state =
            match watchdog with
            | Some wd when Watchdog.seq wd > 0 && Watchdog.owner wd = proc -> (
                match Watchdog.token wd with
                | Some (payload, w_bits) ->
                    Some
                      {
                        Checkpoint.w_seq = Watchdog.seq wd;
                        w_dst = Watchdog.dst wd;
                        w_probes = Watchdog.probes wd;
                        w_bits;
                        w_payload = payload;
                      }
                | None -> None)
            | _ -> None
          in
          (algo, wd_state)
        in
        let restore ctx (c : Checkpoint.t) =
          let m = Hashtbl.find cell_of c.Checkpoint.proc in
          (match c.Checkpoint.algo with
          | Checkpoint.Vc s ->
              Queue.clear m.queue;
              List.iter (fun x -> Queue.add x m.queue) s.Checkpoint.v_queue;
              Wire.restore_decoder m.decoder s.Checkpoint.v_decoder;
              m.app_done <- s.Checkpoint.v_app_done;
              m.held <- s.Checkpoint.v_held;
              m.last <- s.Checkpoint.v_last;
              m.last_token_seq <- s.Checkpoint.v_last_seq
          | _ -> failwith "Token_vc: checkpoint algorithm mismatch");
          match (watchdog, c.Checkpoint.watchdog) with
          | Some wd, Some w when w.Checkpoint.w_seq >= Watchdog.seq wd ->
              (* Latest watch wins: a live watch with a newer hop means
                 another monitor took over after this checkpoint. *)
              let dst = w.Checkpoint.w_dst and bits = w.Checkpoint.w_bits in
              let payload = w.Checkpoint.w_payload in
              Watchdog.restore wd ctx ~token:(payload, bits)
                ~seq:w.Checkpoint.w_seq ~dst ~probes:w.Checkpoint.w_probes
                ~resend:(fun ctx ->
                  net.Run_common.send ctx ~bits ~dst
                    (Messages.deep_copy payload))
                ()
          | _ -> ()
        in
        Some
          (Run_common.wire_recovery engine r
             ~owns:(Hashtbl.mem cell_of)
             ~capture ~restore)
  in
  Array.iter
    (fun m ->
      let id = monitor_id m.k in
      match maybe_capture with
      | None -> net.Run_common.set_handler id (on_message m)
      | Some cap ->
          net.Run_common.set_handler id (fun ctx ~src msg ->
              on_message m ctx ~src msg;
              cap id ctx))
    cells;
  {
    start_id = monitor_id start_at;
    start_token =
      (fun ctx ->
        (* The token starts fully red with G = 0: no state selected.
           §3.2: "the token can start on any process. Since the entire
           color vector is initialized to red, it must eventually visit
           every process at least once." *)
        let g = Array.make width 0 in
        let color = Array.make width Messages.Red in
        process ctx cells.(start_at) g color;
        (* The injected token is a handled message like any other: the
           starting monitor's checkpoint must include it, or a restart
           before its first real delivery restores a token-less seed
           and the token is lost with the crash. *)
        match maybe_capture with
        | None -> ()
        | Some cap -> cap (monitor_id start_at) ctx);
  }

(* Shared by the token detectors: under a fault plan, route all
   protocol traffic through the reliable transport and degrade to
   [Undetectable_crashed] when a peer is unreachable. *)
let chaos_net engine ~outcome =
  let on_unreachable ctx ~dst =
    if Option.is_none !outcome then begin
      outcome := Some (Detection.Undetectable_crashed [ dst ]);
      Engine.stop ctx
    end
  in
  Run_common.reliable_net ~on_unreachable engine

(* Under a plan with [Fault.Restart] windows the transport itself is
   needed (checkpointing flow state, reconnect handshake) and must
   retain acked frames for replay. *)
let chaos_net_transport engine ~outcome =
  let on_unreachable ctx ~dst =
    if Option.is_none !outcome then begin
      outcome := Some (Detection.Undetectable_crashed [ dst ]);
      Engine.stop ctx
    end
  in
  Run_common.reliable_net_transport ~recovery:true ~on_unreachable engine

(* Net, watchdog and recovery wiring shared by the token detectors:
   reprobing watchdogs and checkpoint capture exist only under plans
   that actually restart someone, so every other run keeps its exact
   pre-recovery schedule. *)
let chaos_wiring engine ~fault ~outcome ~ckpt_every =
  if ckpt_every < 1 then invalid_arg "detect: ckpt_every must be >= 1";
  match fault with
  | None -> (None, None, None)
  | Some f when Fault.has_restarts f ->
      let net, transport = chaos_net_transport engine ~outcome in
      ( Some net,
        Some (Watchdog.create ~reprobe:true ()),
        Some
          {
            Run_common.transport;
            restarts = Fault.restarts f;
            every = ckpt_every;
          } )
  | Some _ -> (Some (chaos_net engine ~outcome), Some (Watchdog.create ()), None)

let start engine monitors =
  Engine.schedule_initial engine ~proc:monitors.start_id ~at:0.0
    monitors.start_token

let rec detect ?network ?fault ?recorder ?(invariant_checks = false) ?start_at
    ?(ckpt_every = 1) ?(options = Detection.default_options) ~seed comp spec =
  if options.Detection.slice then
    Run_common.with_slice ?recorder ~keep_rest:false comp spec ~run:(fun sliced spec' ->
        detect ?network ?fault ?recorder ~invariant_checks ?start_at
          ~ckpt_every
          ~options:{ options with Detection.slice = false }
          ~seed sliced spec')
  else
  let { Detection.gated; delta; slice = _ } = options in
  let n = Computation.n comp in
  let width = Spec.width spec in
  let fault =
    match fault with Some p when not (Fault.is_none p) -> Some p | _ -> None
  in
  let engine = Run_common.make_engine ?network ?fault ?recorder ~seed comp in
  Run_common.emit_run_meta engine ~algo:"token-vc" ~n ~width;
  let outcome = ref None in
  let hops = ref 0 in
  let snapshots = ref 0 in
  let check =
    if invariant_checks then Some (check_invariants comp spec) else None
  in
  let net, watchdog, recovery =
    chaos_wiring engine ~fault ~outcome ~ckpt_every
  in
  let monitors =
    install engine ~n_app:n ~wcp_procs:(Spec.procs spec) ?net ?watchdog ?check
      ?recovery ?start_at ~delta ~outcome ~hops ~snapshots ()
  in
  (* Application side: Fig. 2 snapshots, spec processes only. *)
  App_replay.install engine comp ?net
    ?app_bits:(if delta then Some (Wire.replay_app_bits comp spec) else None)
    ~snapshots:(fun p ->
      if Spec.mem spec p then Wire.encoded_stream ~gated ~delta comp spec ~proc:p
      else [])
    ~snapshot_dst:(fun p ->
      if Spec.mem spec p then Some (Run_common.monitor_of ~n p) else None)
    ~spec_width:width ();
  start engine monitors;
  let result =
    Run_common.finish ?fault engine ~outcome ~extras:Detection.no_extras
  in
  {
    result with
    extras = { result.extras with token_hops = !hops; snapshots = !snapshots };
  }
