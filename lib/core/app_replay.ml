open Wcp_trace
open Wcp_util
open Wcp_sim

type proc_state = {
  mutable dst_monitor : int option;  (* cleared once App_done is sent *)
  mutable script : Computation.op list;
  mutable pending_snaps : (int * Messages.t) list;
  mutable state_index : int;
  buffered : (int, unit) Hashtbl.t;  (* application messages arrived early *)
  mutable blocked : bool;  (* current op is a receive we cannot satisfy yet *)
}

let install engine comp ?net ?app_bits ~snapshots ~snapshot_dst ~spec_width
    ?(think = 0.3) () =
  let net = match net with Some n -> n | None -> Run_common.raw_net engine in
  let n = Computation.n comp in
  let app_bits =
    match app_bits with
    | Some f -> f
    | None ->
        fun msg_id ->
          Messages.bits ~spec_width (Messages.App_msg { msg_id })
  in
  let emit_snapshot ctx st =
    match (st.dst_monitor, st.pending_snaps) with
    | Some dst, (s, msg) :: rest when s = st.state_index ->
        st.pending_snaps <- rest;
        net.Run_common.send ctx ~bits:(Messages.bits ~spec_width msg) ~dst msg
    | _ -> ()
  in
  let enter_next_state ctx st =
    st.state_index <- st.state_index + 1;
    emit_snapshot ctx st
  in
  (* Execute script operations until blocked on a receive or done. *)
  let rec step ctx st =
    match st.script with
    | [] -> (
        match st.dst_monitor with
        | Some dst ->
            st.dst_monitor <- None;
            net.Run_common.send ctx
              ~bits:(Messages.bits ~spec_width Messages.App_done)
              ~dst Messages.App_done
        | None -> ())
    | Computation.Send { dst; msg } :: rest ->
        let delay = Rng.exponential (Engine.rng ctx) ~mean:think in
        Engine.schedule ctx ~delay (fun ctx ->
            net.Run_common.send ctx ~bits:(app_bits msg) ~dst
              (Messages.App_msg { msg_id = msg });
            st.script <- rest;
            enter_next_state ctx st;
            step ctx st)
    | Computation.Recv { msg } :: rest ->
        if Hashtbl.mem st.buffered msg then begin
          Hashtbl.remove st.buffered msg;
          st.script <- rest;
          enter_next_state ctx st;
          step ctx st
        end
        else st.blocked <- true
  in
  let on_message st ctx ~src:_ msg =
    match msg with
    | Messages.App_msg { msg_id } ->
        Hashtbl.replace st.buffered msg_id ();
        Engine.note_space ctx (Hashtbl.length st.buffered);
        if st.blocked then begin
          match st.script with
          | Computation.Recv { msg } :: _ when Hashtbl.mem st.buffered msg ->
              st.blocked <- false;
              step ctx st
          | _ -> ()
        end
    | _ -> failwith "App_replay: application received a monitor message"
  in
  for p = 0 to n - 1 do
    let st =
      {
        dst_monitor = snapshot_dst p;
        script = Computation.ops comp p;
        pending_snaps = snapshots p;
        state_index = 1;
        buffered = Hashtbl.create 16;
        blocked = false;
      }
    in
    net.Run_common.set_handler p (on_message st);
    Engine.schedule_initial engine ~proc:p ~at:0.0 (fun ctx ->
        emit_snapshot ctx st;
        step ctx st)
  done
