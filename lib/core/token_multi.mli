(** The multi-token parallel variant (paper §3.5).

    The spec monitors are partitioned into [g] groups (round-robin by
    spec index). One token per group runs the §3 algorithm restricted
    to its group: a group token is only ever forwarded to red monitors
    {e of its own group}; when none remain red (in that token's view)
    it returns to a leader process. Once all dispatched tokens are
    back, the leader merges them — for each entry the largest [G]
    wins, and an equal-valued red marking beats green — and either
    declares detection (all green) or re-dispatches a token into every
    group that still has a red member.

    With [groups = 1] this degenerates to the single-token algorithm
    plus one leader round-trip. The point of the variant is wall-clock
    (simulated-time) parallelism, measured by experiment E3; totals for
    messages and work remain within a constant factor. *)

open Wcp_trace
open Wcp_sim

type assignment =
  | Round_robin  (** spec index [k] joins group [k mod groups] *)
  | Blocks  (** contiguous spec-index ranges, one per group *)

val detect :
  ?network:Network.t ->
  ?fault:Fault.plan ->
  ?recorder:Wcp_obs.Recorder.t ->
  ?assignment:assignment ->
  ?ckpt_every:int ->
  ?options:Detection.options ->
  groups:int ->
  seed:int64 ->
  Computation.t ->
  Spec.t ->
  Detection.result
(** [assignment] (default {!Round_robin}) is the §3.5 partition of the
    monitors into groups — the paper leaves it open; bench E10 ablates
    the choice. [fault] and [ckpt_every] as in {!Token_vc.detect}:
    reliable transport, one watchdog per group token, graceful
    [Undetectable_crashed] degradation, and checkpointed crash recovery
    for the group monitors under [Fault.Restart] windows (the leader is
    not restartable). [options] as in {!Token_vc.detect}: wire encoding
    ([delta]), interval gating ([gated]) and computation slicing
    ([slice]); detection behaviour identical under every setting.
    @raise Invalid_argument if [groups < 1] or [groups > Spec.width]. *)
