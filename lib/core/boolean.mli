(** Detection of arbitrary boolean predicates over local primitives.

    The paper restricts itself to conjunctions because "any boolean
    predicate can be detected using an algorithm that detects
    conjunctive predicates [7]" (§2). This module implements that
    reduction: a propositional formula over {e local primitives}
    (per-process state predicates) is normalised to DNF — negation is
    harmless because the negation of a local predicate is still local —
    and each disjunct, being a conjunction of local predicates, is
    handed to the WCP machinery. [Possibly(φ)] holds iff some disjunct
    is detectable.

    Note the caveat inherited from the reduction: across {e different}
    disjuncts there is no single "first cut" (the union of the
    disjuncts' satisfying-cut lattices is not meet-closed), so the
    verdict reports the first cut {e per satisfiable disjunct}. *)

open Wcp_trace

type expr

(** {2 Building formulas} *)

val prim : proc:int -> name:string -> holds:(int -> bool) -> expr
(** A local primitive: [holds k] decides the predicate in state [k]
    (1-based) of process [proc]. *)

val of_recorded_pred : Computation.t -> proc:int -> expr
(** The local predicate already recorded in the computation's flags
    for [proc] (the one the plain WCP machinery uses). *)

val const : bool -> expr

val not_ : expr -> expr

val and_ : expr list -> expr

val or_ : expr list -> expr

val pp : Format.formatter -> expr -> unit

(** {2 Normalisation} *)

type literal = {
  lit_proc : int;
  lit_name : string;
  lit_holds : int -> bool;  (** with negation already folded in *)
}

val dnf : ?max_disjuncts:int -> expr -> literal list list
(** Disjunctive normal form: a list of conjunctions of literals. The
    empty outer list is [false]; an empty inner list is [true].
    @raise Invalid_argument when the DNF exceeds [max_disjuncts]
    (default 512). *)

(** {2 Detection} *)

type disjunct_result = {
  index : int;  (** position in the DNF *)
  procs : int array;  (** processes the disjunct constrains *)
  first_cut : Cut.t option;  (** [None]: this disjunct is unsatisfiable *)
}

type verdict = {
  possibly : bool;  (** some consistent cut satisfies the formula *)
  disjuncts : disjunct_result list;
}

val eval : expr -> Computation.t -> Cut.t -> bool
(** Truth of the formula at a full-width consistent cut. *)

val detect : ?max_disjuncts:int -> Computation.t -> expr -> verdict
(** Run the WCP oracle on every DNF disjunct.
    @raise Invalid_argument on primitives naming unknown processes or
    on DNF blow-up. *)

val detect_online :
  ?max_disjuncts:int ->
  ?options:Detection.options ->
  seed:int64 ->
  Computation.t ->
  expr ->
  verdict
(** The same verdict computed by the {e distributed} machinery: each
    disjunct's conjunction becomes the local-predicate flags of a
    reflagged computation ({!Computation.reflag}) and is detected by a
    full {!Token_vc} run on the simulator. Equal to {!detect} (asserted
    by the test suite); exists to demonstrate that the §2 reduction
    really does hand arbitrary boolean predicates to the paper's
    distributed algorithms unchanged. [options] as in
    {!Token_vc.detect}; [options.slice] slices once per disjunct (each
    disjunct is a distinct reflagging, hence a distinct slice). *)
