(** Detection outcomes and run results.

    All detectors — offline oracles and online distributed algorithms —
    report through this common vocabulary so tests and benchmarks can
    compare them uniformly. *)

open Wcp_trace
open Wcp_sim

type outcome =
  | Detected of Cut.t
      (** The first (pointwise-least) consistent cut satisfying the
          WCP. For the direct-dependence algorithm the cut spans all
          [N] processes; for the others it spans the spec processes. *)
  | No_detection
      (** The WCP holds in no consistent cut of this (finite) run. *)
  | Undetectable_crashed of int list
      (** Graceful degradation under a fault plan: the listed engine
          processes (see the {!result.stats} id layout) crashed
          permanently or became unreachable, so the protocol cannot
          decide the predicate. Reported instead of hanging. *)

type options = {
  gated : bool;
      (** interval-gated snapshots: ship at most one candidate per
          message interval (sound, see {!Snapshot.vc_stream}) *)
  delta : bool;
      (** delta/packed wire encoding and accounting (DESIGN.md §9) *)
  slice : bool;
      (** run the detector on the computation slice (DESIGN.md §10)
          and map the detected cut back to dense coordinates *)
}
(** Per-run knobs shared by every detector entry point. Declared once
    here so the flags cannot drift between algorithms (they used to be
    re-threaded through each [detect] signature separately). *)

val default_options : options
(** [{ gated = true; delta = true; slice = false }]. *)

val options : ?gated:bool -> ?delta:bool -> ?slice:bool -> unit -> options
(** {!default_options} with individual fields overridden. *)

type extras = {
  token_hops : int;  (** times the token changed monitor *)
  polls : int;  (** §4 poll messages issued *)
  snapshots : int;  (** local snapshots delivered to monitors *)
  merges : int;  (** §3.5 leader merge rounds *)
}

val no_extras : extras

type result = {
  outcome : outcome;
  stats : Stats.t;
      (** per-engine-process costs; application processes occupy ids
          [0..N-1], monitor of process [p] is [N+p], id [2N] is the
          checker / multi-token leader *)
  sim_time : float;  (** simulated time at which the run ended *)
  events : int;  (** discrete events processed by the engine *)
  extras : extras;
}

val outcome_equal : outcome -> outcome -> bool

val remap_outcome : (Cut.t -> Cut.t) -> outcome -> outcome
(** Apply a cut transformation to a [Detected] outcome (identity on
    the other outcomes) — e.g. a slice's dense-coordinate remap. *)

val project_outcome : Spec.t -> outcome -> outcome
(** Restrict a [Detected] cut to the spec processes (identity on the
    other outcomes); used to compare the direct-dependence algorithm's
    [N]-wide cut against the oracle. *)

val pp_outcome : Format.formatter -> outcome -> unit

val pp_result : Format.formatter -> result -> unit
(** One-line summary: outcome, message totals, work, hops. *)
