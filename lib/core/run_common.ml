open Wcp_trace
open Wcp_sim

let monitor_of ~n p = n + p

let extra_id ~n = 2 * n

let default_network ~n =
  let fifo ~src ~dst =
    src < n && (dst = monitor_of ~n src || dst = extra_id ~n)
  in
  Network.create ~fifo ~latency:(Network.Uniform (0.5, 1.5)) ()

let make_engine_n ?network ?fault ?recorder ~seed ~n () =
  let network = match network with Some nw -> nw | None -> default_network ~n in
  Engine.create ~network ?fault ?recorder ~num_processes:((2 * n) + 1) ~seed ()

let make_engine ?network ?fault ?recorder ~seed comp =
  make_engine_n ?network ?fault ?recorder ~seed ~n:(Computation.n comp) ()

(* Every detector opens its recorded log with the same prologue so
   consumers can map engine ids to P_i / M_i roles. The "build" phase
   mark right after it opens the wiring/setup phase of the telemetry
   profile; [finish] closes it with the "detect" mark. *)
let emit_run_meta engine ~algo ~n ~width =
  match Engine.recorder engine with
  | None -> ()
  | Some r ->
      Wcp_obs.Recorder.emit r ~time:0.0 ~proc:(-1)
        (Wcp_obs.Event.Run_meta { algo; n; width });
      Wcp_obs.Recorder.emit r ~time:0.0 ~proc:(-1)
        (Wcp_obs.Event.Phase_marked { name = "build" })

type announce = Detection.outcome -> unit

type net = {
  send : Messages.t Engine.ctx -> bits:int -> dst:int -> Messages.t -> unit;
  set_handler :
    int -> (Messages.t Engine.ctx -> src:int -> Messages.t -> unit) -> unit;
}

let raw_net engine =
  {
    send = (fun ctx ~bits ~dst msg -> Engine.send ctx ~bits ~dst msg);
    set_handler = (fun id h -> Engine.set_handler engine id h);
  }

let reliable_net_transport ?rto ?backoff ?max_retries ?max_unacked ?recovery
    ?on_unreachable engine =
  let transport =
    Transport.create ?rto ?backoff ?max_retries ?max_unacked ?recovery
      ~inject:(fun frame -> Messages.Frame frame)
      ~project:(function Messages.Frame f -> Some f | _ -> None)
      ?on_unreachable engine
  in
  ( {
      send =
        (fun ctx ~bits ~dst msg -> Transport.send transport ctx ~bits ~dst msg);
      set_handler = (fun id h -> Transport.wire transport id h);
    },
    transport )

let reliable_net ?rto ?backoff ?max_retries ?on_unreachable engine =
  fst (reliable_net_transport ?rto ?backoff ?max_retries ?on_unreachable engine)

(* --- Crash-recovery wiring (Fault.Restart windows) ---------------- *)

type recovery = {
  transport : Messages.t Transport.t;
  restarts : Fault.window list;
  every : int;
}

let wire_recovery engine (r : recovery) ~owns ~capture ~restore =
  if r.every < 1 then invalid_arg "Run_common.wire_recovery: every must be >= 1";
  let store : (int, string) Hashtbl.t = Hashtbl.create 4 in
  let counts : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let procs =
    List.filter_map
      (fun (w : Fault.window) ->
        if owns w.Fault.proc then Some w.Fault.proc else None)
      r.restarts
    |> List.sort_uniq compare
  in
  let snap ?ctx proc =
    let algo, watchdog = capture proc in
    let c =
      {
        Checkpoint.proc;
        algo;
        transport = Transport.export_state r.transport ~proc;
        watchdog;
      }
    in
    let s = Checkpoint.encode c in
    Hashtbl.replace store proc s;
    match ctx with
    | None -> ()
    | Some ctx -> (
        Stats.note_checkpoint (Engine.stats_of ctx);
        match Engine.recorder_of ctx with
        | None -> ()
        | Some rc ->
            Wcp_obs.Recorder.emit rc ~time:(Engine.time ctx) ~proc
              (Wcp_obs.Event.Checkpoint_taken { bytes = String.length s }))
  in
  (* Seed every restarting proc with its pre-run state, so a window
     that opens before the first handled message still restores. *)
  List.iter (fun p -> snap p) procs;
  (* One restore timer per window, at its recovery time [until_t]. The
     timer was scheduled at setup, so at [until_t] it runs before any
     message the window deferred to the same instant (insertion
     order), and the deferred deliveries find the restored state. *)
  List.iter
    (fun (w : Fault.window) ->
      if owns w.Fault.proc then
        match w.Fault.until_t with
        | None -> ()
        | Some at ->
            Engine.schedule_initial engine ~proc:w.Fault.proc ~at (fun ctx ->
                match Hashtbl.find_opt store w.Fault.proc with
                | None -> ()
                | Some s ->
                    let c = Checkpoint.decode s in
                    restore ctx c;
                    Transport.restore_state r.transport ~proc:w.Fault.proc
                      c.Checkpoint.transport;
                    Stats.note_restore (Engine.stats_of ctx);
                    (match Engine.recorder_of ctx with
                    | None -> ()
                    | Some rc ->
                        Wcp_obs.Recorder.emit rc ~time:(Engine.time ctx)
                          ~proc:w.Fault.proc
                          (Wcp_obs.Event.Restored { bytes = String.length s });
                        Wcp_obs.Recorder.emit rc ~time:(Engine.time ctx)
                          ~proc:(-1)
                          (Wcp_obs.Event.Phase_marked { name = "recovery" }));
                    Transport.reconnect r.transport ctx ~proc:w.Fault.proc))
    r.restarts;
  fun proc ctx ->
    if Hashtbl.mem store proc then begin
      let k =
        (match Hashtbl.find_opt counts proc with Some k -> k | None -> 0) + 1
      in
      Hashtbl.replace counts proc k;
      if k mod r.every = 0 then snap ~ctx proc
    end

let finish ?fault engine ~outcome ~extras =
  (match Engine.recorder engine with
  | None -> ()
  | Some r ->
      Wcp_obs.Recorder.emit r ~time:(Engine.now engine) ~proc:(-1)
        (Wcp_obs.Event.Phase_marked { name = "detect" }));
  Engine.run engine;
  let result o =
    {
      Detection.outcome = o;
      stats = Engine.stats engine;
      sim_time = Engine.now engine;
      events = Engine.events_processed engine;
      extras;
    }
  in
  match !outcome with
  | Some o -> result o
  | None -> (
      (* The event queue drained with no announcement. Under a fault
         plan with permanent crashes this is the expected shape of a
         wedged protocol (e.g. a crashed application process starves
         its monitor forever): degrade gracefully instead of raising. *)
      match fault with
      | Some plan when Fault.permanently_crashed plan <> [] ->
          result (Detection.Undetectable_crashed (Fault.permanently_crashed plan))
      | _ -> failwith "detection run ended without an outcome")

let with_slice ?recorder ~keep_rest comp spec ~run =
  (* The "slice" phase mark precedes the inner run's [Run_meta] — the
     slice is computed before any engine exists. Consumers treat
     leading phase marks as pre-run profile data (see Event.mli). *)
  (match recorder with
  | None -> ()
  | Some r ->
      Wcp_obs.Recorder.emit r ~time:0.0 ~proc:(-1)
        (Wcp_obs.Event.Phase_marked { name = "slice" }));
  let sl = Wcp_slice.Slice.for_spec ~keep_rest comp ~procs:(Spec.procs spec) in
  let sliced = Wcp_slice.Slice.computation sl in
  let spec' = Spec.make sliced (Spec.procs spec) in
  let r : Detection.result = run sliced spec' in
  {
    r with
    Detection.outcome =
      Detection.remap_outcome (Wcp_slice.Slice.remap_cut sl) r.Detection.outcome;
  }

let with_source ?recorder ~keep_rest src ~procs ~run =
  (match recorder with
  | None -> ()
  | Some r ->
      Wcp_obs.Recorder.emit r ~time:0.0 ~proc:(-1)
        (Wcp_obs.Event.Phase_marked { name = "slice" }));
  let sl = Wcp_slice.Slice.for_spec_source ~keep_rest src ~procs in
  let sliced = Wcp_slice.Slice.computation sl in
  let spec' = Spec.make sliced procs in
  let r : Detection.result = run sliced spec' in
  {
    r with
    Detection.outcome =
      Detection.remap_outcome (Wcp_slice.Slice.remap_cut sl) r.Detection.outcome;
  }
