open Wcp_trace
open Wcp_sim

let monitor_of ~n p = n + p

let extra_id ~n = 2 * n

let default_network ~n =
  let fifo ~src ~dst =
    src < n && (dst = monitor_of ~n src || dst = extra_id ~n)
  in
  Network.create ~fifo ~latency:(Network.Uniform (0.5, 1.5)) ()

let make_engine_n ?network ?fault ?recorder ~seed ~n () =
  let network = match network with Some nw -> nw | None -> default_network ~n in
  Engine.create ~network ?fault ?recorder ~num_processes:((2 * n) + 1) ~seed ()

let make_engine ?network ?fault ?recorder ~seed comp =
  make_engine_n ?network ?fault ?recorder ~seed ~n:(Computation.n comp) ()

(* Every detector opens its recorded log with the same prologue so
   consumers can map engine ids to P_i / M_i roles. *)
let emit_run_meta engine ~algo ~n ~width =
  match Engine.recorder engine with
  | None -> ()
  | Some r ->
      Wcp_obs.Recorder.emit r ~time:0.0 ~proc:(-1)
        (Wcp_obs.Event.Run_meta { algo; n; width })

type announce = Detection.outcome -> unit

type net = {
  send : Messages.t Engine.ctx -> bits:int -> dst:int -> Messages.t -> unit;
  set_handler :
    int -> (Messages.t Engine.ctx -> src:int -> Messages.t -> unit) -> unit;
}

let raw_net engine =
  {
    send = (fun ctx ~bits ~dst msg -> Engine.send ctx ~bits ~dst msg);
    set_handler = (fun id h -> Engine.set_handler engine id h);
  }

let reliable_net ?rto ?backoff ?max_retries ?on_unreachable engine =
  let transport =
    Transport.create ?rto ?backoff ?max_retries
      ~inject:(fun frame -> Messages.Frame frame)
      ~project:(function Messages.Frame f -> Some f | _ -> None)
      ?on_unreachable engine
  in
  {
    send = (fun ctx ~bits ~dst msg -> Transport.send transport ctx ~bits ~dst msg);
    set_handler = (fun id h -> Transport.wire transport id h);
  }

let finish ?fault engine ~outcome ~extras =
  Engine.run engine;
  let result o =
    {
      Detection.outcome = o;
      stats = Engine.stats engine;
      sim_time = Engine.now engine;
      events = Engine.events_processed engine;
      extras;
    }
  in
  match !outcome with
  | Some o -> result o
  | None -> (
      (* The event queue drained with no announcement. Under a fault
         plan with permanent crashes this is the expected shape of a
         wedged protocol (e.g. a crashed application process starves
         its monitor forever): degrade gracefully instead of raising. *)
      match fault with
      | Some plan when Fault.permanently_crashed plan <> [] ->
          result (Detection.Undetectable_crashed (Fault.permanently_crashed plan))
      | _ -> failwith "detection run ended without an outcome")

let with_slice ~keep_rest comp spec ~run =
  let sl = Wcp_slice.Slice.for_spec ~keep_rest comp ~procs:(Spec.procs spec) in
  let sliced = Wcp_slice.Slice.computation sl in
  let spec' = Spec.make sliced (Spec.procs spec) in
  let r : Detection.result = run sliced spec' in
  {
    r with
    Detection.outcome =
      Detection.remap_outcome (Wcp_slice.Slice.remap_cut sl) r.Detection.outcome;
  }
