(** Domain-parallel predicate detection (the sixth detector).

    Garg's round-based work-optimal parallel algorithm (arXiv
    2008.12516): the per-slot candidate streams are materialized once,
    then frontier rounds alternate a threshold computation (per column
    [k], the largest [k]-entry among the {e other} slots' frontier
    clocks) with an "advance slot [k] past its locally-eliminated
    candidates" sweep. A candidate [a] at slot [k] is eliminated
    exactly when [a.clock.(k) <= M_k] — the same happened-before rule
    as [Checker_centralized] — so by confluence of the elimination
    rule the reported cut is the unique least satisfying cut,
    {e byte-identical} to the centralized checker and to
    [Oracle.first_cut]. The per-slot advances are independent and are
    fanned across a [Parallel.scoped_pool] reserved once per
    detection, so rounds hit a barrier but never respawn domains; the
    output is byte-identical at any domain count (experiment E18 pins
    this, DESIGN.md §11 gives the work/span argument).

    No discrete-event engine runs underneath: snapshot streams are
    priced at the same wire costs (same encoder, same gating/delta
    options, same bits), but [sim_time] is 0 and there are no
    network/fault knobs. [Stats] carries the per-round counters
    (rounds, max frontier breadth, work items) via
    [Stats.set_parallel]. *)

val detect :
  ?recorder:Wcp_obs.Recorder.t ->
  ?options:Detection.options ->
  ?domains:int ->
  seed:int64 ->
  Wcp_trace.Computation.t ->
  Spec.t ->
  Detection.result
(** [domains] defaults to {!Wcp_util.Parallel.default_domains} and is
    clamped to the spec width; [d < 1] is an [Invalid_argument]. All
    of {!Detection.options} compose: [slice] restricts to the slice
    first (cut remapped back like every other detector), [gated] and
    [delta] select the snapshot encoding. [seed] is ignored — the
    algorithm is deterministic — and exists only so all six detectors
    share a call shape. When a [recorder] is attached the run emits
    [Run_meta], per-elimination [Hb_eliminated], per-round
    [Round_advanced], and the final verdict, with the round number as
    the timestamp. *)
