open Wcp_trace

let first_cut_with comp ~procs ~candidates =
  let n = Array.length procs in
  if n = 0 then invalid_arg "Oracle.first_cut_with: no processes";
  (* Per process: remaining candidate states, earliest first. *)
  let queues = Array.map candidates procs in
  let head k =
    match queues.(k) with [] -> None | s :: _ -> Some s
  in
  let state_of k s = State.make ~proc:procs.(k) ~index:s in
  (* Find a candidate that happened before another candidate; it can be
     eliminated (paper Lemma 3.1 part 4 reasoning). *)
  let find_eliminable () =
    let rec scan k l =
      if k = n then None
      else if l = n then scan (k + 1) 0
      else if k = l then scan k (l + 1)
      else
        match (head k, head l) with
        | Some a, Some b
          when Computation.happened_before comp (state_of k a) (state_of l b)
          -> Some k
        | _ -> scan k (l + 1)
    in
    scan 0 0
  in
  let rec advance () =
    if Array.exists (fun q -> q = []) queues then Detection.No_detection
    else
      match find_eliminable () with
      | Some k ->
          queues.(k) <- List.tl queues.(k);
          advance ()
      | None ->
          let states =
            Array.map
              (fun q -> match q with s :: _ -> s | [] -> assert false)
              queues
          in
          Detection.Detected (Cut.make ~procs ~states)
  in
  advance ()

let first_cut comp spec =
  first_cut_with comp ~procs:(Spec.procs spec)
    ~candidates:(Computation.candidates comp)

let first_cut_brute comp spec =
  let procs = Spec.procs spec in
  let candidate_lists = Array.map (Computation.candidates comp) procs in
  let combos =
    Array.fold_left (fun acc l -> acc * List.length l) 1 candidate_lists
  in
  if Array.exists (fun l -> l = []) candidate_lists then Detection.No_detection
  else begin
    if combos > 2_000_000 then
      invalid_arg "Oracle.first_cut_brute: too many combinations";
    let arrays = Array.map Array.of_list candidate_lists in
    let n = Array.length procs in
    let best : int array option ref = ref None in
    let pick = Array.make n 0 in
    let rec explore k =
      if k = n then begin
        let states = Array.mapi (fun i j -> arrays.(i).(j)) pick in
        let cut = Cut.make ~procs ~states in
        if Cut.satisfies comp cut then
          best :=
            Some
              (match !best with
              | None -> states
              | Some b -> Array.map2 min b states)
      end
      else
        for j = 0 to Array.length arrays.(k) - 1 do
          pick.(k) <- j;
          explore (k + 1)
        done
    in
    explore 0;
    match !best with
    | None -> Detection.No_detection
    | Some states -> Detection.Detected (Cut.make ~procs ~states)
  end

let satisfiable comp spec =
  match first_cut comp spec with
  | Detection.Detected _ -> true
  | Detection.No_detection | Detection.Undetectable_crashed _ -> false
