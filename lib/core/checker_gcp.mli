(** Online centralized detection of Generalized Conjunctive Predicates
    (Garg, Chase, Mitchell & Kilgore [6]).

    The online companion of {!Gcp.detect}: every application process —
    all [N] of them, because channel states need a full cut — streams
    GCP snapshots (full vector clock plus per-channel send/receive
    counters) to a central checker over FIFO channels. The checker
    advances a candidate cut by two elimination rules:
    - a candidate that happened before another candidate can never
      satisfy the conjunction (the WCP rule);
    - at a consistent candidate cut, a false {e counting} channel
      predicate eliminates its forced endpoint's candidate (linearity,
      see {!Gcp}).

    Detection halts at the first consistent cut where every local and
    every channel predicate holds — the same cut {!Gcp.detect} computes
    offline (asserted by the test suite). *)

open Wcp_trace
open Wcp_sim

val detect :
  ?network:Network.t ->
  ?recorder:Wcp_obs.Recorder.t ->
  ?options:Detection.options ->
  seed:int64 ->
  channels:Gcp.channel_predicate list ->
  Computation.t ->
  Spec.t ->
  Detection.result
(** [options] as in {!Token_vc.detect}, with one restriction:
    [options.slice] requires [channels = []] — channel predicates count
    in-flight application messages, which a slice's synthetic skeleton
    does not preserve.
    @raise Invalid_argument if a channel predicate is not count-based
    ({!Gcp.count_based}) or names an unknown process, or if
    [options.slice] is set with a non-empty [channels]. *)
