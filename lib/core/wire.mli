(** Wire-efficiency layer: delta-encoded payloads and encoded-size
    accounting (DESIGN.md wire model).

    Three independent savings over the dense formats, all enabled by
    default and switchable off (for A/B measurement, bench E16) via the
    detectors' [?delta] flag:

    - {b snapshots} — materialised: the application side ships
      {!Messages.Snap_vc_delta} (sparse index/value pairs against the
      previous snapshot on the same process→monitor channel) whenever
      that is strictly smaller than the dense {!Messages.Snap_vc}, and
      the monitor decodes it back with a per-channel cache;
    - {b tokens} — accounted: the token keeps its dense [g]/[color]
      arrays inside the simulation, but each hop is charged the size of
      its encoded form (delta of [g] against the last token shipped on
      the same edge, plus a bit-packed color vector), with the dense
      formula as a floor-less fallback;
    - {b application clock tags} — accounted: replayed application
      messages charge the Singhal–Kshemkalyani delta of their projected
      clock tag against the previous message on the same channel
      (the tag was already account-only, see {!Messages.App_msg}).

    Soundness of a shared base: every channel involved is either FIFO
    by construction (application→monitor on the replay network),
    delivered in-order exactly-once (reliable transport under a fault
    plan), or causally serialised (token edges — a holder cannot
    forward again before the previous hop on that edge was consumed).
    Deltas carry absolute values, so decoding a duplicate (e.g. a
    regenerated token) is idempotent.

    Packed pairs: on the wire each (index, value) delta entry is one
    32-bit word — 10-bit index, 22-bit value — where the dense form
    spends a full word per component. Entries the packed layout cannot
    carry (width over 1024, or a clock component reaching 2^22, both
    far beyond anything this harness can generate) force the dense
    fallback, so the accounting never understates a real wire. *)

open Wcp_trace

val word : int
(** The DESIGN.md accounting word: 32 bits. *)

val packed_color_words : width:int -> int
(** Words needed for a bit-packed color vector: [ceil (width / 32)]. *)

(** {2 Snapshot codec} *)

type snap_encoder
(** Sender-side state of one application→monitor channel: the last
    clock shipped on it (initially all-zero). *)

val snap_encoder : width:int -> snap_encoder

val encode_snap : snap_encoder -> state:int -> int array -> Messages.t
(** Hybrid encode of the snapshot [{state; clock}]: the smaller of
    {!Messages.Snap_vc_delta} and dense {!Messages.Snap_vc} under the
    word accounting. Updates the channel cache either way. *)

type snap_decoder
(** Receiver-side mirror of {!snap_encoder}. *)

val snap_decoder : width:int -> snap_decoder

val decode_snap : snap_decoder -> Messages.t -> Snapshot.vc
(** Decode either snapshot form back to a dense candidate, updating
    the channel cache.
    @raise Invalid_argument on any other message. *)

val decoder_state : snap_decoder -> int array
(** Copy of the decoder's channel cache (the clock of the last
    snapshot decoded), for inclusion in a monitor checkpoint. *)

val restore_decoder : snap_decoder -> int array -> unit
(** Overwrite the channel cache from a checkpoint, so delta snapshots
    replayed after a restore decode against the right base. *)

(** {2 Direct-dependence snapshot codec} *)

val encode_dd : state:int -> Wcp_clocks.Dependence.t list -> Messages.t
(** Hybrid encode of a §4.1 snapshot: {!Messages.Snap_dd_packed} with
    one 10-bit-src/22-bit-clock word per dependence when every
    dependence fits, dense {!Messages.Snap_dd} otherwise. Stateless
    (dependences are absolute), so it needs no channel cache. *)

val decode_dd : Messages.t -> Snapshot.dd
(** Decode either dd-snapshot form back to the dense record.
    @raise Invalid_argument on any other message. *)

val poll_bits : clock:int -> next_red:int option -> int
(** Encoded wire size of a §4 {!Messages.Poll}: one word when the
    scalar clock fits 21 bits and the successor 11 (with a [None]
    sentinel), the dense two words otherwise. Accounting only — polls
    are materialised as {!Messages.Poll} either way. *)

val encoded_stream :
  ?gated:bool ->
  delta:bool ->
  Computation.t ->
  Spec.t ->
  proc:int ->
  (int * Messages.t) list
(** The {!Snapshot.vc_stream} of a spec process as replay-ready
    [(state, message)] pairs — interval-gated when [gated] (default
    [true]), hybrid-encoded when [delta], dense {!Messages.Snap_vc}
    otherwise. Shared by the vc-family detectors. *)

(** {2 Token wire-size meter} *)

type token_meter
(** Per-edge caches for every (holder → next monitor) token edge of one
    detection run. *)

val token_meter : width:int -> token_meter

val dense_token_bits : width:int -> int
(** The unchanged dense token formula, [2 · width] words — the E16
    baseline. *)

val token_bits : token_meter -> src:int -> dst:int -> int array -> int
(** [token_bits meter ~src ~dst g] is the wire size of the token
    carrying cut [g] on edge [(src, dst)]: the delta-plus-packed-colors
    encoding if smaller, the dense formula otherwise. Updates the
    edge cache. A watchdog {e resend} of the same token must re-charge
    the originally computed size (same bytes on the wire), not call
    this again. *)

(** {2 Application-tag accounting} *)

val app_tag_plan : Computation.t -> Spec.t -> int array
(** [app_tag_plan comp spec] prices every application message of the
    recorded computation under delta-encoded clock tags: entry
    [msg_id] is the bits to charge for that {!Messages.App_msg}
    (payload word + encoded tag, never more than the dense
    [word * (1 + width)]). Channels are replayed in sender order,
    matching the FIFO shipping order of the live system. *)

val replay_app_bits : Computation.t -> Spec.t -> int -> int
(** {!app_tag_plan} as a lookup closure, the shape
    {!App_replay.install}'s [?app_bits] expects. *)
