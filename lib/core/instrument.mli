(** Live application-side instrumentation — the paper's Fig. 1
    deployment.

    {!Token_vc.detect} and friends replay a {e recorded} computation.
    This module instead instruments a {e running} application process
    inside the simulation engine, implementing exactly the Fig. 2
    (vector-clock mode) and §4.1 (direct-dependence mode) application
    algorithms: clock maintenance, message tagging, the [firstflag]
    snapshot discipline, and the end-of-run marker. Pair it with
    {!Token_vc.install} or {!Token_dd.install} on the monitor side and
    no trace ever needs to exist.

    Protocol contract for the instrumented process:
    - call {!start} once from its first scheduled event;
    - call {!on_send} immediately before each application send and ship
      the returned {!tag} inside the message;
    - call {!on_receive} with the received tag immediately after each
      application receive;
    - call {!predicate_true} whenever its local predicate holds (each
      call is cheap; only the first per state emits a snapshot);
    - call {!finish} when it will communicate no more.

    In direct-dependence mode, processes whose [proc] is not in
    [wcp_procs] carry the trivially-true predicate (§4 requires all [N]
    processes to participate), so the instrument emits their snapshots
    automatically at every state change; in vector-clock mode they emit
    nothing. *)

open Wcp_sim

type mode = Vc | Dd

type tag = Messages.tag
(** Clock tag to piggyback on application messages: the [n]-entry
    vector clock in [Vc] mode (Fig. 2), the sender's scalar clock in
    [Dd] mode (§4.1). Ship it inside {!Messages.App_data}. *)

type t

val create :
  ?options:Detection.options ->
  mode:mode ->
  n_app:int ->
  wcp_procs:int array ->
  proc:int ->
  unit ->
  t
(** One instrument per application process. [wcp_procs]: sorted,
    distinct ids of the processes carrying local predicates.

    [options] (default {!Detection.default_options}) carries the same
    shared knobs as the [detect] entry points; [options.slice] is
    ignored here (live slicing is the monitor side's business, via
    {!Wcp_slice.Slice.Incremental}).

    [options.gated] enables interval gating: a snapshot is shipped
    only when the process has performed a send since the last shipped
    snapshot (the first one always ships). Dropping the other
    candidates never changes the detected cut — see
    {!Snapshot.vc_stream} for the argument — and in [Dd] mode their
    direct dependences stay in the accumulator and ride along with the
    next shipped snapshot.

    [options.delta] ships snapshots encoded: hybrid delta/dense over
    the FIFO channel to the monitor in [Vc] mode ({!Wire.encode_snap}),
    packed dependence words in [Dd] mode ({!Wire.encode_dd}); the
    {!Token_vc.install} / {!Token_dd.install} monitors decode every
    form transparently. *)

val state_index : t -> int
(** Current local state (1-based interval index). *)

val tag_bits : t -> int
(** Wire size of a tag under the DESIGN.md accounting (for charging on
    sends). *)

val start : t -> Messages.t Engine.ctx -> unit
(** Announce the initial state (emits the state-1 snapshot for
    trivially-true processes in [Dd] mode). *)

val on_send : t -> Messages.t Engine.ctx -> tag
(** Fig. 2 send rule: returns the tag for the outgoing message, then
    advances into the next local state. *)

val on_receive : t -> Messages.t Engine.ctx -> src:int -> tag -> unit
(** Fig. 2 receive rule: merge the tag, advance into the next local
    state (recording the direct dependence in [Dd] mode). *)

val predicate_true : t -> Messages.t Engine.ctx -> unit
(** The local predicate holds in the current state; emits a snapshot to
    the monitor unless one was already sent for this state
    ([firstflag]). No-op for processes outside [wcp_procs]. *)

val finish : t -> Messages.t Engine.ctx -> unit
(** Send the end-of-run marker to the monitor (idempotent). *)
