(** Application-process replay driver.

    Re-executes a recorded computation inside the discrete-event
    engine: each application process performs its sends and receives in
    trace order (buffering out-of-order arrivals, since application
    channels are not FIFO) and emits its local snapshots at the moment
    it enters each snapshot-bearing state, followed by a final
    [App_done] marker. Think-time between operations is sampled from
    the engine's PRNG so different seeds exercise different timings of
    the {e same} causal structure.

    The monitors therefore observe exactly what they would observe
    watching the original run live; they never look inside the recorded
    computation. *)

open Wcp_trace
open Wcp_sim

val install :
  Messages.t Engine.t ->
  Computation.t ->
  ?net:Run_common.net ->
  ?app_bits:(int -> int) ->
  snapshots:(int -> (int * Messages.t) list) ->
  snapshot_dst:(int -> int option) ->
  spec_width:int ->
  ?think:float ->
  unit ->
  unit
(** [snapshots p] lists, for application process [p], the snapshot
    message to emit upon entering each listed state (ascending state
    order). [snapshot_dst p] is the engine id receiving [p]'s snapshots
    and final [App_done], or [None] if [p] reports to nobody.
    [spec_width] sizes the clock tag charged on application messages;
    [app_bits] (default the dense [Messages.bits] formula) overrides
    the per-message charge by id — used to price delta-encoded clock
    tags from a {!Wire.app_tag_plan}.
    [think] (default 0.3) is the mean think time before each send.

    [net] (default {!Run_common.raw_net}) carries all application
    traffic; under a fault plan the replay must ride the reliable
    transport, or a dropped application message would deadlock the
    script. *)
