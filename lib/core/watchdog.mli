(** Token-loss watchdog: lease probes plus regeneration by the
    last-known holder.

    After a monitor forwards the token (hop number [seq]) to [dst], it
    keeps a resend closure and arms a lease timer. When the lease
    expires it sends a {!Messages.Wd_probe} over the {e raw} network;
    the receiver answers {!Messages.Wd_reply} stating whether the token
    reached it ([received]) and whether it still holds it ([holding]).

    - not received: the last-known holder {e regenerates} the token
      (resends its saved copy through the caller-supplied channel) and
      re-arms;
    - received and still holding: the holder is alive but waiting for
      candidates — re-arm with a linearly growing lease, up to
      [max_probes] times, then stand down (the reliable transport and
      its unreachable detection own liveness from here);
    - received and no longer holding: responsibility has moved to the
      next hop (which armed its own watchdog) — stand down.

    Regenerated tokens carry the original [seq], and every monitor
    discards token messages whose [seq] does not exceed the last one it
    accepted, so regeneration can never double-run the protocol. A
    watchdog instance tracks one outstanding token at a time (a monitor
    never has more in flight); {!watch} for a newer [seq] supersedes
    the previous watch, and stale probe replies are ignored. *)

open Wcp_sim

type t

val create : ?lease:float -> ?max_probes:int -> unit -> t
(** [lease] (default 25.0 sim-time units) is the initial probe delay;
    [max_probes] (default 6) bounds consecutive unproductive probes.
    @raise Invalid_argument on a non-positive lease or max_probes. *)

val watch :
  t ->
  Messages.t Engine.ctx ->
  seq:int ->
  dst:int ->
  resend:(Messages.t Engine.ctx -> unit) ->
  unit
(** Start watching token [seq] just sent to [dst]. [resend] must
    re-emit a fresh copy of that token (deep-copied — the original's
    arrays are mutated by the receiver). [seq] must be positive and
    increase across calls on the same watchdog. *)

val on_reply :
  t -> Messages.t Engine.ctx -> seq:int -> received:bool -> holding:bool -> unit
(** Feed a {!Messages.Wd_reply} back in; replies for superseded
    sequence numbers are ignored. *)
