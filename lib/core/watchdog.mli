(** Token-loss watchdog: lease probes plus regeneration by the
    last-known holder.

    After a monitor forwards the token (hop number [seq]) to [dst], it
    keeps a resend closure and arms a lease timer. When the lease
    expires it sends a {!Messages.Wd_probe} over the {e raw} network;
    the receiver answers {!Messages.Wd_reply} stating whether the token
    reached it ([received]) and whether it still holds it ([holding]).

    - not received: the last-known holder {e regenerates} the token
      (resends its saved copy through the caller-supplied channel) and
      re-arms;
    - received and still holding: the holder is alive but waiting for
      candidates — re-arm with a linearly growing lease, up to
      [max_probes] times, then stand down (the reliable transport and
      its unreachable detection own liveness from here);
    - received and no longer holding: responsibility has moved to the
      next hop (which armed its own watchdog) — stand down.

    Regenerated tokens carry the original [seq], and every monitor
    discards token messages whose [seq] does not exceed the last one it
    accepted, so regeneration can never double-run the protocol. A
    watchdog instance tracks one outstanding token at a time (a monitor
    never has more in flight); {!watch} for a newer [seq] supersedes
    the previous watch, and stale probe replies are ignored. *)

open Wcp_sim

type t

val create : ?lease:float -> ?max_probes:int -> ?reprobe:bool -> unit -> t
(** [lease] (default 25.0 sim-time units) is the initial probe delay;
    [max_probes] (default 6) bounds consecutive unproductive probes.
    [reprobe] (default false) generalizes the watchdog from token-loss
    to {e monitor-liveness}: a probe that draws no reply for a whole
    lease (silent peer — crashed, not just slow) is itself counted as
    unproductive and followed by another probe, so a peer that restarts
    mid-window is re-probed (and its token regenerated) instead of
    waited on forever. Detectors enable it only for plans with
    [Fault.Restart] windows, keeping other chaos runs bit-identical.
    @raise Invalid_argument on a non-positive lease or max_probes. *)

val watch :
  t ->
  Messages.t Engine.ctx ->
  ?token:Messages.t * int ->
  seq:int ->
  dst:int ->
  resend:(Messages.t Engine.ctx -> unit) ->
  unit ->
  unit
(** Start watching token [seq] just sent to [dst]. [resend] must
    re-emit a fresh copy of that token (deep-copied — the original's
    arrays are mutated by the receiver). [seq] must be positive and
    increase across calls on the same watchdog. [token], when given,
    is the (payload, wire bits) pair the resend re-ships, retained so
    a checkpoint can serialize the watch (closures cannot be). *)

val on_reply :
  t -> Messages.t Engine.ctx -> seq:int -> received:bool -> holding:bool -> unit
(** Feed a {!Messages.Wd_reply} back in; replies for superseded
    sequence numbers are ignored.

    Exhausting [max_probes] (here or via [reprobe]) stands the watchdog
    down {e loudly}: a [wd_stand_down] event is recorded and
    {!Wcp_sim.Stats.wd_stand_downs} incremented, so soaks can tell
    "gave up" from "never armed". *)

(** {2 Checkpoint support} *)

val seq : t -> int
(** Watched token hop; 0 when idle. *)

val dst : t -> int
(** Destination of the watched hop (meaningful when [seq t > 0]). Also
    used by the multi-token leader to route a [Wd_reply] to the one
    group watchdog probing its sender. *)

val probes : t -> int
(** Unproductive probes so far for the current watch. *)

val owner : t -> int
(** Engine proc that armed the current watch (-1 before the first
    watch). A shared watchdog belongs to whichever monitor forwarded
    the token last; a restarting monitor checkpoints the watch only
    when it is the owner. *)

val token : t -> (Messages.t * int) option
(** The (payload, wire bits) pair passed to {!watch}, for
    serialization into a checkpoint. *)

val restore :
  t ->
  Messages.t Engine.ctx ->
  ?token:Messages.t * int ->
  seq:int ->
  dst:int ->
  probes:int ->
  resend:(Messages.t Engine.ctx -> unit) ->
  unit ->
  unit
(** Rebuild an armed watch from checkpointed [(seq, dst, probes)] and a
    freshly reconstructed resend closure (closures cannot be
    serialized; the caller regenerates one from the checkpointed
    token payload), then re-arm the lease. [seq = 0] restores the
    idle state. *)
