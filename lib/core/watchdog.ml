open Wcp_sim

type t = {
  lease : float;
  max_probes : int;
  mutable seq : int;  (* watched token hop; 0 = idle *)
  mutable dst : int;
  mutable resend : (Messages.t Engine.ctx -> unit) option;
  mutable probes : int;
}

let create ?(lease = 25.0) ?(max_probes = 6) () =
  if not (Float.is_finite lease) || lease <= 0.0 then
    invalid_arg "Watchdog.create: lease must be positive";
  if max_probes < 1 then invalid_arg "Watchdog.create: max_probes must be >= 1";
  { lease; max_probes; seq = 0; dst = -1; resend = None; probes = 0 }

let probe_bits = Messages.bits ~spec_width:1 (Messages.Wd_probe { seq = 0 })

(* Probes ride the raw network on purpose: they are idempotent, and a
   lost probe merely skips one regeneration opportunity — the reliable
   transport still guarantees the token itself arrives or the peer is
   declared unreachable. *)
let arm t ctx ~delay seq =
  Engine.schedule ctx ~delay (fun ctx ->
      if t.seq = seq then begin
        (match Engine.recorder_of ctx with
        | None -> ()
        | Some r ->
            Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
              ~proc:(Engine.self ctx)
              (Wcp_obs.Event.Probe_sent { seq; dst = t.dst }));
        Engine.send ctx ~bits:probe_bits ~dst:t.dst
          (Messages.Wd_probe { seq })
      end)

let watch t ctx ~seq ~dst ~resend =
  if seq <= 0 then invalid_arg "Watchdog.watch: seq must be positive";
  t.seq <- seq;
  t.dst <- dst;
  t.resend <- Some resend;
  t.probes <- 0;
  arm t ctx ~delay:t.lease seq

let stand_down t =
  t.seq <- 0;
  t.resend <- None

let on_reply t ctx ~seq ~received ~holding =
  if seq = t.seq && seq > 0 then
    if not received then begin
      (match Engine.recorder_of ctx with
      | None -> ()
      | Some r ->
          Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
            ~proc:(Engine.self ctx)
            (Wcp_obs.Event.Token_regenerated { seq; dst = t.dst }));
      (match t.resend with Some f -> f ctx | None -> ());
      t.probes <- t.probes + 1;
      if t.probes <= t.max_probes then arm t ctx ~delay:t.lease seq
      else stand_down t
    end
    else if holding then begin
      t.probes <- t.probes + 1;
      if t.probes <= t.max_probes then
        arm t ctx ~delay:(t.lease *. float_of_int (1 + t.probes)) seq
      else stand_down t
    end
    else stand_down t
