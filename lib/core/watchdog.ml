open Wcp_sim

type t = {
  lease : float;
  max_probes : int;
  (* Monitor-liveness mode: when a probe itself goes unanswered for a
     whole lease (the peer is down, not merely slow), count it as an
     unproductive probe and re-probe. Off by default so chaos runs
     without Restart windows keep their exact pre-recovery schedules. *)
  reprobe : bool;
  mutable seq : int;  (* watched token hop; 0 = idle *)
  mutable dst : int;
  mutable resend : (Messages.t Engine.ctx -> unit) option;
  mutable probes : int;
  (* Checkpoint support: which engine proc armed the current watch (a
     shared watchdog serves whichever monitor forwarded last), and the
     exact token bytes a restore needs to rebuild [resend] from. *)
  mutable owner : int;
  mutable token : (Messages.t * int) option;
}

let create ?(lease = 25.0) ?(max_probes = 6) ?(reprobe = false) () =
  if not (Float.is_finite lease) || lease <= 0.0 then
    invalid_arg "Watchdog.create: lease must be positive";
  if max_probes < 1 then invalid_arg "Watchdog.create: max_probes must be >= 1";
  {
    lease;
    max_probes;
    reprobe;
    seq = 0;
    dst = -1;
    resend = None;
    probes = 0;
    owner = -1;
    token = None;
  }

let probe_bits = Messages.bits ~spec_width:1 (Messages.Wd_probe { seq = 0 })

let stand_down t =
  t.seq <- 0;
  t.resend <- None;
  t.token <- None

(* Exhaustion is observable: soaks must be able to tell "stood down
   after max_probes" apart from "never armed". *)
let give_up t ctx =
  (match Engine.recorder_of ctx with
  | None -> ()
  | Some r ->
      Wcp_obs.Recorder.emit r ~time:(Engine.time ctx) ~proc:(Engine.self ctx)
        (Wcp_obs.Event.Watchdog_stood_down { seq = t.seq; dst = t.dst }));
  Stats.note_wd_stand_down (Engine.stats_of ctx);
  stand_down t

(* Probes ride the raw network on purpose: they are idempotent, and a
   lost probe merely skips one regeneration opportunity — the reliable
   transport still guarantees the token itself arrives or the peer is
   declared unreachable. *)
let rec arm t ctx ~delay seq =
  Engine.schedule ctx ~delay (fun ctx ->
      if t.seq = seq then begin
        (match Engine.recorder_of ctx with
        | None -> ()
        | Some r ->
            Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
              ~proc:(Engine.self ctx)
              (Wcp_obs.Event.Probe_sent { seq; dst = t.dst }));
        Engine.send ctx ~bits:probe_bits ~dst:t.dst (Messages.Wd_probe { seq });
        if t.reprobe then begin
          let sent_probes = t.probes in
          Engine.schedule ctx ~delay:t.lease (fun ctx ->
              (* No reply moved [probes] (and no newer watch superseded
                 us) for a whole lease: the peer is silent, probably
                 down. Burn one probe credit and try again — a
                 restarting peer will answer one of these. *)
              if t.seq = seq && t.probes = sent_probes then begin
                t.probes <- t.probes + 1;
                if t.probes <= t.max_probes then arm t ctx ~delay:0.0 seq
                else give_up t ctx
              end)
        end
      end)

let watch t ctx ?token ~seq ~dst ~resend () =
  if seq <= 0 then invalid_arg "Watchdog.watch: seq must be positive";
  t.seq <- seq;
  t.dst <- dst;
  t.resend <- Some resend;
  t.probes <- 0;
  t.owner <- Engine.self ctx;
  t.token <- token;
  arm t ctx ~delay:t.lease seq

let seq t = t.seq

let dst t = t.dst

let probes t = t.probes

let owner t = t.owner

let token t = t.token

let restore t ctx ?token ~seq ~dst ~probes ~resend () =
  if seq <= 0 then stand_down t
  else begin
    t.seq <- seq;
    t.dst <- dst;
    t.probes <- probes;
    t.resend <- Some resend;
    t.owner <- Engine.self ctx;
    t.token <- token;
    arm t ctx ~delay:t.lease seq
  end

let on_reply t ctx ~seq ~received ~holding =
  if seq = t.seq && seq > 0 then
    if not received then begin
      (match Engine.recorder_of ctx with
      | None -> ()
      | Some r ->
          Wcp_obs.Recorder.emit r ~time:(Engine.time ctx)
            ~proc:(Engine.self ctx)
            (Wcp_obs.Event.Token_regenerated { seq; dst = t.dst }));
      (match t.resend with Some f -> f ctx | None -> ());
      t.probes <- t.probes + 1;
      if t.probes <= t.max_probes then arm t ctx ~delay:t.lease seq
      else give_up t ctx
    end
    else if holding then begin
      t.probes <- t.probes + 1;
      if t.probes <= t.max_probes then
        arm t ctx ~delay:(t.lease *. float_of_int (1 + t.probes)) seq
      else give_up t ctx
    end
    else stand_down t
