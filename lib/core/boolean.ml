open Wcp_trace

type prim_t = { proc : int; name : string; holds : int -> bool }

type expr =
  | Prim of prim_t
  | Const of bool
  | Not of expr
  | And of expr list
  | Or of expr list

let prim ~proc ~name ~holds = Prim { proc; name; holds }

let of_recorded_pred comp ~proc =
  if proc < 0 || proc >= Computation.n comp then
    invalid_arg "Boolean.of_recorded_pred: no such process";
  Prim
    {
      proc;
      name = Printf.sprintf "l_%d" proc;
      holds = (fun k -> Computation.pred comp (State.make ~proc ~index:k));
    }

let const b = Const b

let not_ e = Not e

let and_ es = And es

let or_ es = Or es

let rec pp ppf = function
  | Prim { proc; name; _ } -> Format.fprintf ppf "%s@%d" name proc
  | Const b -> Format.pp_print_bool ppf b
  | Not e -> Format.fprintf ppf "¬(%a)" pp e
  | And es ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ∧ ")
           pp)
        es
  | Or es ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ∨ ")
           pp)
        es

type literal = { lit_proc : int; lit_name : string; lit_holds : int -> bool }

let literal_of_prim ~negated { proc; name; holds } =
  if negated then
    {
      lit_proc = proc;
      lit_name = "¬" ^ name;
      lit_holds = (fun k -> not (holds k));
    }
  else { lit_proc = proc; lit_name = name; lit_holds = holds }

(* DNF via negation-normal-form recursion. Disjunctions are lists of
   conjunctions; conjunctions are literal lists. *)
let dnf ?(max_disjuncts = 512) expr =
  let check ds =
    if List.length ds > max_disjuncts then
      invalid_arg "Boolean.dnf: disjunct blow-up";
    ds
  in
  let rec go negated = function
    | Const b -> if b <> negated then [ [] ] else []
    | Prim p -> [ [ literal_of_prim ~negated p ] ]
    | Not e -> go (not negated) e
    | And es when not negated -> conj_all negated es
    | And es -> check (List.concat_map (go negated) es)
    | Or es when not negated -> check (List.concat_map (go negated) es)
    | Or es -> conj_all negated es
  and conj_all negated es =
    (* Cartesian product of the operands' DNFs. *)
    List.fold_left
      (fun acc e ->
        let d = go negated e in
        check (List.concat_map (fun c1 -> List.map (fun c2 -> c1 @ c2) d) acc))
      [ [] ] es
  in
  go false expr

type disjunct_result = {
  index : int;
  procs : int array;
  first_cut : Cut.t option;
}

type verdict = { possibly : bool; disjuncts : disjunct_result list }

let rec eval expr comp cut =
  match expr with
  | Const b -> b
  | Not e -> not (eval e comp cut)
  | And es -> List.for_all (fun e -> eval e comp cut) es
  | Or es -> List.exists (fun e -> eval e comp cut) es
  | Prim { proc; holds; _ } ->
      let w = Cut.width cut in
      let rec find k =
        if k = w then invalid_arg "Boolean.eval: cut misses a primitive's process"
        else
          let s = Cut.state cut k in
          if s.State.proc = proc then holds s.State.index else find (k + 1)
      in
      find 0

let check_procs comp expr =
  let n = Computation.n comp in
  let rec go = function
    | Prim { proc; _ } ->
        if proc < 0 || proc >= n then
          invalid_arg "Boolean.detect: primitive names an unknown process"
    | Const _ -> ()
    | Not e -> go e
    | And es | Or es -> List.iter go es
  in
  go expr

let detect_disjunct comp index lits =
  match lits with
  | [] ->
      (* The empty conjunction is [true]: the initial cut witnesses it
         (initial states are always pairwise concurrent). *)
      let procs = Array.init (Computation.n comp) Fun.id in
      let states = Array.make (Computation.n comp) 1 in
      { index; procs; first_cut = Some (Cut.make ~procs ~states) }
  | _ ->
      (* Conjoin same-process literals into one local predicate. *)
      let by_proc = Hashtbl.create 8 in
      List.iter
        (fun l ->
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt by_proc l.lit_proc)
          in
          Hashtbl.replace by_proc l.lit_proc (l :: prev))
        lits;
      let procs =
        Hashtbl.fold (fun p _ acc -> p :: acc) by_proc []
        |> List.sort compare |> Array.of_list
      in
      let candidates p =
        let group = Hashtbl.find by_proc p in
        List.filter
          (fun k -> List.for_all (fun l -> l.lit_holds k) group)
          (List.init (Computation.num_states comp p) (fun i -> i + 1))
      in
      let first_cut =
        match Oracle.first_cut_with comp ~procs ~candidates with
        | Detection.Detected cut -> Some cut
        | Detection.No_detection | Detection.Undetectable_crashed _ -> None
      in
      { index; procs; first_cut }

let detect_disjunct_online ?options ~seed comp index lits =
  match lits with
  | [] ->
      let procs = Array.init (Computation.n comp) Fun.id in
      let states = Array.make (Computation.n comp) 1 in
      { index; procs; first_cut = Some (Cut.make ~procs ~states) }
  | _ ->
      let by_proc = Hashtbl.create 8 in
      List.iter
        (fun l ->
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt by_proc l.lit_proc)
          in
          Hashtbl.replace by_proc l.lit_proc (l :: prev))
        lits;
      let procs =
        Hashtbl.fold (fun p _ acc -> p :: acc) by_proc []
        |> List.sort compare |> Array.of_list
      in
      (* The disjunct's conjunction becomes ordinary local-predicate
         flags; the distributed algorithm needs nothing else. *)
      let derived =
        Computation.reflag comp ~pred:(fun ~proc ~state ->
            match Hashtbl.find_opt by_proc proc with
            | None -> false
            | Some group -> List.for_all (fun l -> l.lit_holds state) group)
      in
      let spec = Spec.make derived procs in
      (* Each disjunct is its own WCP over its own reflagged
         computation, so [options.slice] slices once per disjunct. *)
      let r = Token_vc.detect ?options ~seed derived spec in
      let first_cut =
        match r.Detection.outcome with
        | Detection.Detected cut -> Some cut
        | Detection.No_detection | Detection.Undetectable_crashed _ -> None
      in
      { index; procs; first_cut }

let detect_online ?max_disjuncts ?options ~seed comp expr =
  check_procs comp expr;
  let disjuncts =
    List.mapi
      (detect_disjunct_online ?options ~seed comp)
      (dnf ?max_disjuncts expr)
  in
  {
    possibly = List.exists (fun d -> d.first_cut <> None) disjuncts;
    disjuncts;
  }

let detect ?max_disjuncts comp expr =
  check_procs comp expr;
  let disjuncts =
    List.mapi (detect_disjunct comp) (dnf ?max_disjuncts expr)
  in
  {
    possibly = List.exists (fun d -> d.first_cut <> None) disjuncts;
    disjuncts;
  }
