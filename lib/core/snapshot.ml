open Wcp_trace
open Wcp_clocks

type vc = { state : int; clock : int array }

type dd = { state : int; deps : Dependence.t list }

(* Interval gating: candidate [c'] may be skipped when the previously
   shipped candidate [c] of the same process is separated from it by no
   send (no send at a state in [c, c' - 1]). Then for any state [t] of
   another process, [t → c ⟹ t → c'] (clock monotonicity) and
   [c → t ⟺ c' → t] (any V_t[i] is a send state of [i], hence < c or
   ≥ c'), so [c] is consistent with everything [c'] is: the least
   consistent cut never needs the skipped candidate. The first
   candidate always ships. *)
let gate_candidates comp ~proc candidates =
  let rec go last = function
    | [] -> []
    | c :: rest -> (
        match last with
        | Some l when not (Computation.sends_in comp ~proc ~lo:l ~hi:(c - 1))
          ->
            go last rest
        | _ -> c :: go (Some c) rest)
  in
  go None candidates

let vc_stream ?(gated = true) comp spec ~proc =
  if not (Spec.mem spec proc) then
    invalid_arg "Snapshot.vc_stream: not a spec process";
  let candidates = Computation.candidates comp proc in
  let candidates =
    if gated then gate_candidates comp ~proc candidates else candidates
  in
  List.map
    (fun s ->
      let st = State.make ~proc ~index:s in
      { state = s; clock = Spec.project spec (Computation.vc comp st) })
    candidates

(* A process's candidate states under the dd algorithm: its
   predicate-true states if it carries a local predicate, every state
   otherwise (trivially-true predicate). *)
let dd_candidates comp spec ~proc =
  if Spec.mem spec proc then Computation.candidates comp proc
  else List.init (Computation.num_states comp proc) (fun k -> k + 1)

let dd_stream ?(gated = true) comp spec ~proc =
  let candidates = dd_candidates comp spec ~proc in
  let candidates =
    if gated then gate_candidates comp ~proc candidates else candidates
  in
  (* Walk states 1..last candidate, accumulating the dependence
     recorded at each state entry; drain the accumulator into each
     candidate's snapshot. *)
  let rec walk next_state = function
    | [] -> []
    | c :: rest ->
        let rec gather s acc =
          if s > c then List.rev acc
          else
            let acc =
              match Computation.dep_at comp (State.make ~proc ~index:s) with
              | Some d -> d :: acc
              | None -> acc
            in
            gather (s + 1) acc
        in
        { state = c; deps = gather next_state [] } :: walk (c + 1) rest
  in
  walk 1 candidates

let gcp_stream comp spec ~channels ~proc =
  let msgs = Computation.messages comp in
  let counts_at s =
    List.map
      (fun (src, dst) ->
        if proc = src then
          Array.fold_left
            (fun acc (m : Computation.message) ->
              if m.Computation.src = src && m.Computation.dst = dst
                 && m.Computation.src_state < s
              then acc + 1
              else acc)
            0 msgs
        else if proc = dst then
          Array.fold_left
            (fun acc (m : Computation.message) ->
              if m.Computation.src = src && m.Computation.dst = dst
                 && m.Computation.dst_state <= s
              then acc + 1
              else acc)
            0 msgs
        else 0)
      channels
    |> Array.of_list
  in
  List.map
    (fun s ->
      let st = State.make ~proc ~index:s in
      ( s,
        Wcp_clocks.Vector_clock.to_array (Computation.vc comp st),
        counts_at s ))
    (dd_candidates comp spec ~proc)

let total_dd_deps comp spec =
  let total = ref 0 in
  for p = 0 to Computation.n comp - 1 do
    List.iter
      (fun s -> total := !total + List.length s.deps)
      (dd_stream comp spec ~proc:p)
  done;
  !total
