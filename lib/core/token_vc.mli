(** The single-token vector-clock WCP detection algorithm (paper §3,
    Figs 2–3).

    One token circulates among the [n] monitor processes of the spec.
    It carries the candidate cut [G] and a color vector: [color.(k) =
    Red] means state [(k, G.(k))] has been eliminated (it happened
    before some other candidate, Lemma 3.1), [Green] means no selected
    state is causally after it. The token is only ever sent to a red
    monitor; that monitor consumes fresh candidates from its
    application process until one advances past [G.(k)], turns itself
    green, then marks red every [j] whose candidate the new state
    causally dominates. All green ⇒ the cut is consistent and every
    local predicate holds: the WCP is detected, and by Theorem 3.2 the
    cut is the {e first} such cut.

    Costs (§3.4, checked by the test suite and bench E1): the token
    moves at most [nm] times, at most [2nm] messages total, [O(n²m)]
    total bits and work, but only [O(nm)] work and space on any one
    process.

    {2 Two ways to run it}

    {!detect} replays a recorded computation (the application side is
    driven by {!App_replay}). {!install} + {!start} wire only the
    monitor side into an engine, for {e live} monitoring: application
    processes instrumented with {!Instrument} feed the monitors
    directly, the paper's Fig. 1 deployment. *)

open Wcp_trace
open Wcp_sim

type monitors

val install :
  Messages.t Engine.t ->
  n_app:int ->
  wcp_procs:int array ->
  ?net:Run_common.net ->
  ?watchdog:Watchdog.t ->
  ?check:(g:int array -> color:Messages.color array -> unit) ->
  ?recovery:Run_common.recovery ->
  ?stop:bool ->
  ?start_at:int ->
  ?delta:bool ->
  outcome:Detection.outcome option ref ->
  hops:int ref ->
  snapshots:int ref ->
  unit ->
  monitors
(** Install the Fig. 3 monitor handlers for the WCP over [wcp_procs]
    (sorted, distinct application process ids in [0..n_app)). The
    engine must follow the {!Run_common} id layout. [check], when
    given, is invoked with the token contents every time the token
    finishes processing at a monitor (used to assert Lemma 3.1 against
    a ground-truth computation). On termination the detecting monitor
    stores the result in [outcome] and, unless [stop] is [false], halts
    the engine (live monitors pass [~stop:false] so the application can
    run to completion).

    [net] (default {!Run_common.raw_net}) carries all monitor traffic;
    pass {!Run_common.reliable_net} when running under a fault plan.
    [watchdog], when given, guards every token hop against loss (lease
    probe + regeneration; see {!Watchdog}). [recovery], when given,
    wires checkpoint capture and deterministic restore for the plan's
    [Fault.Restart] windows (see {!Run_common.wire_recovery}); its
    transport must be the one behind [net].

    [delta] (default [true]) charges each token hop its delta-encoded
    wire size ({!Wire.token_bits}) instead of the dense formula, and
    has the monitors decode {!Messages.Snap_vc_delta} snapshots (they
    always accept both snapshot forms). Purely a wire-cost matter:
    detection behaviour is identical either way. *)

val chaos_net :
  Messages.t Engine.t -> outcome:Detection.outcome option ref -> Run_common.net
(** {!Run_common.reliable_net} whose unreachable-peer callback records
    [Undetectable_crashed] in [outcome] (first crash wins) and halts
    the engine. Shared by all token detectors' [?fault] modes. *)

val chaos_net_transport :
  Messages.t Engine.t ->
  outcome:Detection.outcome option ref ->
  Run_common.net * Messages.t Wcp_sim.Transport.t
(** {!chaos_net} in recovery mode (acked frames retained for replay),
    also exposing the transport for checkpointing. Used by the token
    detectors whenever the fault plan has [Fault.Restart] windows. *)

val chaos_wiring :
  Messages.t Engine.t ->
  fault:Fault.plan option ->
  outcome:Detection.outcome option ref ->
  ckpt_every:int ->
  Run_common.net option * Watchdog.t option * Run_common.recovery option
(** The full fault-mode wiring decision shared by the token detectors:
    no plan → all [None]; a plan without restarts → {!chaos_net} and a
    plain watchdog; a plan with [Fault.Restart] windows →
    {!chaos_net_transport}, a monitor-liveness ([~reprobe:true])
    watchdog, and the {!Run_common.recovery} bundle capturing every
    [ckpt_every]-th message.
    @raise Invalid_argument if [ckpt_every < 1]. *)

val start : Messages.t Engine.t -> monitors -> unit
(** Schedule the initial (all-red, [G = 0]) token at the starting
    monitor ([start_at], a spec index, default the first) at time 0.
    §3.2: the token may start anywhere because the fully red color
    vector forces it to visit every monitor at least once. Call before
    [Engine.run]. *)

val detect :
  ?network:Network.t ->
  ?fault:Fault.plan ->
  ?recorder:Wcp_obs.Recorder.t ->
  ?invariant_checks:bool ->
  ?start_at:int ->
  ?ckpt_every:int ->
  ?options:Detection.options ->
  seed:int64 ->
  Computation.t ->
  Spec.t ->
  Detection.result
(** Replay the computation and run the detection protocol on top.

    [recorder] (default none) records the full causal trace of the run
    — snapshot arrivals, candidate advances, Fig. 3 eliminations with
    the witnessing vector-clock comparison, token hops, watchdog
    probes/regenerations — without perturbing the simulation (see
    {!Wcp_sim.Engine.create}).
    [invariant_checks] re-validates Lemma 3.1(1–3) against the recorded
    computation at every token processing step — an executable proof
    check (it reads the trace, so costs are not charged for it).

    [fault] (default none) runs the whole stack under deterministic
    chaos: all traffic rides the reliable transport, every token hop is
    watched by a {!Watchdog}, and a permanently crashed/unreachable
    peer yields [Undetectable_crashed] instead of a hang. Passing
    [Fault.none] is identical to omitting [fault]. When the plan has
    [Fault.Restart] windows the run additionally checkpoints each
    restarting monitor after every [ckpt_every]-th handled message
    (default 1, the exact-state-transfer anchor — see
    [Checkpoint]) and rebuilds it from the last checkpoint at window
    end, replaying unconsumed transport frames.

    [options] (default {!Detection.default_options}) bundles the
    per-run knobs shared by every detector. [options.delta] runs the
    wire-efficiency layer: snapshots ship hybrid delta/dense
    ({!Wire.encoded_stream}), token hops and application clock tags
    are charged their encoded size; with [delta = false] every payload
    and charge uses the dense formulas — the E16 baseline. The flag
    changes no message {e counts} and no RNG draws, so outcome,
    detected cut, hops and snapshot counts are identical across both
    settings; only [bits] differs. [options.gated] toggles interval
    gating of the snapshot streams. [options.slice] first slices the
    computation ({!Run_common.with_slice}, keeping only spec-process
    anchors), detects on the slice, and remaps the cut back to dense
    coordinates — same outcome, fewer events examined (bench E17). *)
