(* Reproduction harness: regenerates every evaluation artefact of
   Garg & Chase (ICDCS 1995). The paper is analytical, so each
   "table" here is a measured check of a §3.4 / §4.4 / §5 complexity
   claim (see DESIGN.md §4 for the experiment index E1-E14 and
   EXPERIMENTS.md for paper-vs-measured commentary).

   Usage:  dune exec bench/main.exe            (all experiments + micro)
           dune exec bench/main.exe -- tables  (E1-E8 only)
           dune exec bench/main.exe -- micro   (Bechamel E13 only)

   Machine-readable mode (see EXPERIMENTS.md and Bench_json):
           dune exec bench/main.exe -- json [--smoke] [--seq]
                                            [--domains K] [--out FILE]
           dune exec bench/main.exe -- perf-check BASELINE [CURRENT]
                                                  [--subset]
   (--subset: CURRENT may cover only part of BASELINE — the
   bench-smoke gate — but every job it does cover must match.)         *)

open Wcp_trace
open Wcp_sim
open Wcp_core

let line = String.make 78 '-'

let header title claim =
  Printf.printf "\n%s\n%s\n%s\n%s\n" line title claim line

let seeds = [ 1L; 2L; 3L ]

let mean_i xs = List.fold_left ( + ) 0 xs / List.length xs

let mean_f xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let random_comp ~n ~m ~p_pred ~seed =
  Generator.random
    ~params:{ Generator.n; sends_per_process = m; p_pred; p_recv = 0.5 }
    ~seed ()

(* Sum of a per-process stat over the monitor ids. *)
let monitor_sum stats ~n f =
  let acc = ref 0 in
  for p = 0 to n - 1 do
    acc := !acc + f stats (Run_common.monitor_of ~n p)
  done;
  !acc

let monitor_max stats ~n f =
  let acc = ref 0 in
  for p = 0 to n - 1 do
    acc := max !acc (f stats (Run_common.monitor_of ~n p))
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* E1: §3.4 scaling of the vector-clock token algorithm                *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1  token-vc scaling (paper §3.4)"
    "claim: <= 2nm monitor messages; O(n^2 m) total work/bits; O(nm) per process";
  Printf.printf "%4s %4s %7s %7s %8s %8s %9s %10s %9s\n" "n" "m" "states"
    "hops" "mon-msgs" "2nm" "work" "work/n2m" "max-work";
  List.iter
    (fun n ->
      let m = 20 in
      let rows =
        List.map
          (fun seed ->
            let comp = random_comp ~n ~m ~p_pred:0.3 ~seed in
            let spec = Spec.all comp in
            let r = Token_vc.detect ~seed comp spec in
            let mm = Computation.max_events_per_process comp in
            let work = monitor_sum r.stats ~n Stats.work_of in
            ( Computation.total_states comp,
              r.extras.token_hops,
              r.extras.token_hops + r.extras.snapshots,
              2 * n * (mm + 1),
              work,
              float_of_int work /. float_of_int (n * n * (mm + 1)),
              monitor_max r.stats ~n Stats.work_of ))
          seeds
      in
      let g f = mean_i (List.map f rows) in
      Printf.printf "%4d %4d %7d %7d %8d %8d %9d %10.3f %9d\n" n m
        (g (fun (a, _, _, _, _, _, _) -> a))
        (g (fun (_, a, _, _, _, _, _) -> a))
        (g (fun (_, _, a, _, _, _, _) -> a))
        (g (fun (_, _, _, a, _, _, _) -> a))
        (g (fun (_, _, _, _, a, _, _) -> a))
        (mean_f (List.map (fun (_, _, _, _, _, a, _) -> a) rows))
        (g (fun (_, _, _, _, _, _, a) -> a)))
    [ 2; 4; 8; 16; 24; 32 ]

(* ------------------------------------------------------------------ *)
(* E2: checker concentrates O(n^2 m) space; token-vc spreads O(nm)     *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2  space and work skew: checker [7] vs token-vc (paper §3.4)"
    "claim: checker needs O(n^2 m) words on ONE process; token-vc O(nm) each";
  Printf.printf "%4s %12s %12s %7s %14s %14s\n" "n" "chk-space" "tok-space"
    "ratio" "chk-max-work" "tok-max-work";
  List.iter
    (fun n ->
      let m = 16 in
      let rows =
        List.map
          (fun seed ->
            let comp = random_comp ~n ~m ~p_pred:0.3 ~seed in
            let spec = Spec.all comp in
            let c = Checker_centralized.detect ~seed comp spec in
            let t = Token_vc.detect ~seed comp spec in
            let chk_space =
              Stats.space_high_water c.stats (Run_common.extra_id ~n)
            in
            let tok_space = monitor_max t.stats ~n Stats.space_high_water in
            ( chk_space,
              tok_space,
              Stats.work_of c.stats (Run_common.extra_id ~n),
              monitor_max t.stats ~n Stats.work_of ))
          seeds
      in
      let g f = mean_i (List.map f rows) in
      let cs = g (fun (a, _, _, _) -> a) and ts = g (fun (_, a, _, _) -> a) in
      Printf.printf "%4d %12d %12d %7.2f %14d %14d\n" n cs ts
        (float_of_int cs /. float_of_int (max 1 ts))
        (g (fun (_, _, a, _) -> a))
        (g (fun (_, _, _, a) -> a)))
    [ 2; 4; 8; 16; 24; 32 ]

(* ------------------------------------------------------------------ *)
(* E3: multi-token parallelism (§3.5)                                  *)
(* ------------------------------------------------------------------ *)

let e3 () =
  header "E3  multi-token parallelism (paper §3.5)"
    "claim: g tokens work concurrently; detection (simulated) time drops with g";
  let n = 24 and m = 16 in
  Printf.printf "%4s %10s %8s %8s %9s\n" "g" "sim-time" "hops" "merges" "msgs";
  List.iter
    (fun groups ->
      let rows =
        List.map
          (fun seed ->
            let comp = random_comp ~n ~m ~p_pred:0.25 ~seed in
            let spec = Spec.all comp in
            let r = Token_multi.detect ~groups ~seed comp spec in
            (r.sim_time, r.extras.token_hops, r.extras.merges,
             Stats.total_sent r.stats))
          seeds
      in
      Printf.printf "%4d %10.1f %8d %8d %9d\n" groups
        (mean_f (List.map (fun (a, _, _, _) -> a) rows))
        (mean_i (List.map (fun (_, a, _, _) -> a) rows))
        (mean_i (List.map (fun (_, _, a, _) -> a) rows))
        (mean_i (List.map (fun (_, _, _, a) -> a) rows)))
    [ 1; 2; 3; 4; 6; 8; 12 ]

(* ------------------------------------------------------------------ *)
(* E4: §4.4 scaling of the direct-dependence algorithm                 *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4  token-dd scaling (paper §4.4)"
    "claim: <= 3Nm monitor messages, O(Nm) bits, O(m) work & space per process";
  Printf.printf "%4s %4s %7s %7s %8s %8s %9s %9s %9s\n" "N" "m" "polls"
    "hops" "mon-msgs" "3Nm" "bits" "max-work" "max-spc";
  List.iter
    (fun n ->
      let m = 12 in
      let rows =
        List.map
          (fun seed ->
            (* Sparse predicates put the first satisfying cut late in
               the run, forcing the chain through many eliminations --
               the regime the §4.4 bounds are about. *)
            let comp = random_comp ~n ~m ~p_pred:0.05 ~seed in
            let spec =
              Spec.make comp [| 0; n / 2 |] (* small n, large N: §4's regime *)
            in
            let r = Token_dd.detect ~seed comp spec in
            let mm = Computation.max_events_per_process comp in
            ( r.extras.polls,
              r.extras.token_hops,
              (2 * r.extras.polls) + r.extras.token_hops,
              3 * n * (mm + 1),
              monitor_sum r.stats ~n Stats.bits,
              monitor_max r.stats ~n Stats.work_of,
              monitor_max r.stats ~n Stats.space_high_water ))
          seeds
      in
      let g f = mean_i (List.map f rows) in
      Printf.printf "%4d %4d %7d %7d %8d %8d %9d %9d %9d\n" n m
        (g (fun (a, _, _, _, _, _, _) -> a))
        (g (fun (_, a, _, _, _, _, _) -> a))
        (g (fun (_, _, a, _, _, _, _) -> a))
        (g (fun (_, _, _, a, _, _, _) -> a))
        (g (fun (_, _, _, _, a, _, _) -> a))
        (g (fun (_, _, _, _, _, a, _) -> a))
        (g (fun (_, _, _, _, _, _, a) -> a)))
    [ 4; 8; 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* E5: crossover between the two algorithms (§1, §4, §6)               *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5  vc vs dd crossover (paper §1/§4/§6)"
    "claim: dd's O(Nm) beats vc's O(n^2 m) once n^2 >> N  (here N = 64, so n ~ 8)";
  let n_total = 64 and m = 8 in
  Printf.printf "%4s %12s %12s %10s %12s %12s\n" "n" "vc-bits" "dd-bits"
    "winner" "vc-work" "dd-work";
  List.iter
    (fun width ->
      let rows =
        List.map
          (fun seed ->
            let comp = random_comp ~n:n_total ~m ~p_pred:0.3 ~seed in
            let rng = Wcp_util.Rng.create seed in
            let procs = Generator.random_procs rng ~n:n_total ~width in
            let spec = Spec.make comp procs in
            let vc = Token_vc.detect ~seed comp spec in
            let dd = Token_dd.detect ~seed comp spec in
            (* Monitoring traffic each algorithm adds: bits sent by the
               monitors plus the applications' snapshot bits. *)
            let mon_bits (r : Detection.result) =
              monitor_sum r.stats ~n:n_total Stats.bits
            in
            let snap_bits_vc =
              vc.Detection.extras.Detection.snapshots * 32 * (width + 1)
            in
            let snap_bits_dd =
              (dd.Detection.extras.Detection.snapshots * 32)
              + (2 * 32 * Snapshot.total_dd_deps comp spec)
            in
            ( mon_bits vc + snap_bits_vc,
              mon_bits dd + snap_bits_dd,
              monitor_sum vc.Detection.stats ~n:n_total Stats.work_of,
              monitor_sum dd.Detection.stats ~n:n_total Stats.work_of ))
          seeds
      in
      let g f = mean_i (List.map f rows) in
      let vb = g (fun (a, _, _, _) -> a) and db = g (fun (_, a, _, _) -> a) in
      Printf.printf "%4d %12d %12d %10s %12d %12d\n" width vb db
        (if vb < db then "vc" else "dd")
        (g (fun (_, _, a, _) -> a))
        (g (fun (_, _, _, a) -> a)))
    [ 2; 4; 8; 16; 32; 48; 64 ]

(* ------------------------------------------------------------------ *)
(* E6: the Ω(nm) lower bound (§5)                                      *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header "E6  adversary lower bound (paper §5, Theorem 5.1)"
    "claim: any S1/S2 algorithm is forced through >= nm - n sequential deletions";
  Printf.printf "%4s %5s %9s %11s %9s %7s\n" "n" "m" "rounds" "deletions"
    "nm-n" "ratio";
  List.iter
    (fun (n, m) ->
      let world, _ = Wcp_lowerbound.Adversary.make ~n ~m in
      let answer, trace = Wcp_lowerbound.Detector.run world in
      assert (answer = Wcp_lowerbound.Detector.No_antichain);
      let bound = (n * m) - n in
      Printf.printf "%4d %5d %9d %11d %9d %7.3f\n" n m
        trace.Wcp_lowerbound.Detector.rounds
        trace.Wcp_lowerbound.Detector.deletions bound
        (float_of_int trace.Wcp_lowerbound.Detector.deletions
        /. float_of_int (max 1 bound)))
    [ (2, 16); (4, 16); (8, 16); (16, 16); (16, 64); (32, 32); (64, 16) ]

(* ------------------------------------------------------------------ *)
(* E7: agreement matrix (Figs 2-5, Table 1)                            *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7  agreement matrix: all detectors vs the oracle (Figs 2-5)"
    "claim: every algorithm halts with the FIRST cut satisfying the WCP";
  Printf.printf "%-22s %8s %8s %8s %8s %8s %8s\n" "workload" "outcome"
    "checker" "tok-vc" "multi" "tok-dd" "dd-par";
  let check name comp spec seed =
    let expected = Oracle.first_cut comp spec in
    let ok o = if Detection.outcome_equal o expected then "ok" else "FAIL" in
    let chk = (Checker_centralized.detect ~seed comp spec).outcome in
    let vc = (Token_vc.detect ~seed comp spec).outcome in
    let mu =
      (Token_multi.detect ~groups:(min 2 (Spec.width spec)) ~seed comp spec)
        .outcome
    in
    let dd =
      Detection.project_outcome spec (Token_dd.detect ~seed comp spec).outcome
    in
    let dp =
      Detection.project_outcome spec
        (Token_dd.detect ~parallel:true ~seed comp spec).outcome
    in
    Printf.printf "%-22s %8s %8s %8s %8s %8s %8s\n" name
      (match expected with
      | Detection.Detected _ -> "detect"
      | Detection.No_detection -> "none"
      | Detection.Undetectable_crashed _ -> "crash")
      (ok chk) (ok vc) (ok mu) (ok dd) (ok dp)
  in
  List.iter
    (fun w ->
      let spec = Spec.make w.Workloads.comp w.Workloads.procs in
      check w.Workloads.name w.Workloads.comp spec 11L)
    (Workloads.all ~seed:2025L);
  List.iter
    (fun (p_pred, tag) ->
      let comp = random_comp ~n:6 ~m:10 ~p_pred ~seed:9L in
      check (Printf.sprintf "random p=%s" tag) comp (Spec.all comp) 9L)
    [ (0.0, "0"); (0.3, "0.3"); (1.0, "1") ]

(* ------------------------------------------------------------------ *)
(* E8: parallel direct-dependence variant (§4.5)                       *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8  prefetching dd variant (paper §4.5)"
    "claim: overlapping candidate search with the token shrinks detection time";
  Printf.printf "%4s %12s %12s %9s %10s %10s\n" "N" "seq-time" "par-time"
    "speedup" "seq-polls" "par-polls";
  List.iter
    (fun n ->
      let m = 10 in
      let rows =
        List.map
          (fun seed ->
            let comp = random_comp ~n ~m ~p_pred:0.05 ~seed in
            let spec = Spec.make comp [| 0; n / 2 |] in
            let s = Token_dd.detect ~seed comp spec in
            let p = Token_dd.detect ~parallel:true ~seed comp spec in
            (s.sim_time, p.sim_time, s.extras.polls, p.extras.polls))
          seeds
      in
      let st = mean_f (List.map (fun (a, _, _, _) -> a) rows) in
      let pt = mean_f (List.map (fun (_, a, _, _) -> a) rows) in
      Printf.printf "%4d %12.1f %12.1f %9.2f %10d %10d\n" n st pt (st /. pt)
        (mean_i (List.map (fun (_, _, a, _) -> a) rows))
        (mean_i (List.map (fun (_, _, _, a) -> a) rows)))
    [ 4; 8; 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* E10: ablation — §3.5 group assignment                               *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header "E10 ablation: multi-token group assignment (design choice, §3.5)"
    "the paper leaves the monitor partition open; round-robin vs contiguous blocks";
  let n = 24 and m = 16 in
  Printf.printf "%4s %14s %14s %12s %12s
" "g" "rr-time" "blocks-time"
    "rr-hops" "blocks-hops";
  List.iter
    (fun groups ->
      let run assignment =
        List.map
          (fun seed ->
            let comp = random_comp ~n ~m ~p_pred:0.25 ~seed in
            let spec = Spec.all comp in
            let r = Token_multi.detect ~assignment ~groups ~seed comp spec in
            (r.sim_time, r.extras.token_hops))
          seeds
      in
      let rr = run Token_multi.Round_robin in
      let bl = run Token_multi.Blocks in
      Printf.printf "%4d %14.1f %14.1f %12d %12d
" groups
        (mean_f (List.map fst rr))
        (mean_f (List.map fst bl))
        (mean_i (List.map snd rr))
        (mean_i (List.map snd bl)))
    [ 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* E11: ablation — network latency model                               *)
(* ------------------------------------------------------------------ *)

let e11 () =
  header "E11 ablation: latency model sensitivity"
    "verdicts are latency-independent; detection time scales with the model";
  let n = 12 and m = 12 in
  Printf.printf "%-22s %12s %12s %10s
" "latency" "vc-time" "dd-time" "agree";
  List.iter
    (fun (name, latency) ->
      let rows =
        List.map
          (fun seed ->
            let comp = random_comp ~n ~m ~p_pred:0.2 ~seed in
            let spec = Spec.make comp [| 0; 3; 6; 9 |] in
            let fifo ~src ~dst =
              src < n
              && (dst = Run_common.monitor_of ~n src
                 || dst = Run_common.extra_id ~n)
            in
            let network () = Network.create ~fifo ~latency () in
            let vc = Token_vc.detect ~network:(network ()) ~seed comp spec in
            let dd = Token_dd.detect ~network:(network ()) ~seed comp spec in
            let agree =
              Detection.outcome_equal vc.outcome (Oracle.first_cut comp spec)
              && Detection.outcome_equal
                   (Detection.project_outcome spec dd.outcome)
                   (Oracle.first_cut comp spec)
            in
            (vc.sim_time, dd.sim_time, agree))
          seeds
      in
      Printf.printf "%-22s %12.1f %12.1f %10s
" name
        (mean_f (List.map (fun (a, _, _) -> a) rows))
        (mean_f (List.map (fun (_, a, _) -> a) rows))
        (if List.for_all (fun (_, _, a) -> a) rows then "yes" else "NO"))
    [
      ("constant 1.0", Network.Constant 1.0);
      ("uniform [0.5,1.5)", Network.Uniform (0.5, 1.5));
      ("uniform [0.1,10)", Network.Uniform (0.1, 10.0));
      ("exponential mean 1", Network.Exponential 1.0);
      ("exponential mean 5", Network.Exponential 5.0);
    ]

(* ------------------------------------------------------------------ *)
(* E12: ablation — token starting monitor (§3.2)                       *)
(* ------------------------------------------------------------------ *)

let e12 () =
  header "E12 ablation: token starting position (§3.2)"
    "\"the token can start on any process\": verdicts identical, hop counts shift";
  let n = 16 and m = 12 in
  Printf.printf "%10s %10s %10s %10s
" "start" "vc-hops" "dd-hops" "agree";
  List.iter
    (fun start_at ->
      let rows =
        List.map
          (fun seed ->
            let comp = random_comp ~n ~m ~p_pred:0.3 ~seed in
            let spec = Spec.all comp in
            let vc = Token_vc.detect ~start_at ~seed comp spec in
            let dd = Token_dd.detect ~start_at ~seed comp spec in
            let agree =
              Detection.outcome_equal vc.outcome (Oracle.first_cut comp spec)
              && Detection.outcome_equal
                   (Detection.project_outcome spec dd.outcome)
                   (Oracle.first_cut comp spec)
            in
            (vc.extras.token_hops, dd.extras.token_hops, agree))
          seeds
      in
      Printf.printf "%10d %10d %10d %10s
" start_at
        (mean_i (List.map (fun (a, _, _) -> a) rows))
        (mean_i (List.map (fun (_, a, _) -> a) rows))
        (if List.for_all (fun (_, _, a) -> a) rows then "yes" else "NO"))
    [ 0; 5; 10; 15 ]

(* ------------------------------------------------------------------ *)
(* E14: tracing overhead (observability plane)                         *)
(* ------------------------------------------------------------------ *)

let e14 () =
  header "E14 tracing overhead: recorder attached vs detached"
    "claim: detached recording costs one branch per hook; attached stays small";
  let m = 20 in
  Printf.printf "%4s %12s %12s %8s %9s %8s\n" "n" "off-ns" "on-ns" "ratio"
    "events" "agree";
  List.iter
    (fun n ->
      (* Best-of-5 wall time: the E1 workload, with and without an
         attached recorder. The verdict must be identical either way
         (recording is invisible to the engine). *)
      let reps = 5 in
      let best f =
        let b = ref infinity in
        for _ = 1 to reps do
          let t0 = Unix.gettimeofday () in
          f ();
          let dt = Unix.gettimeofday () -. t0 in
          if dt < !b then b := dt
        done;
        !b
      in
      let comp = random_comp ~n ~m ~p_pred:0.3 ~seed:1L in
      let spec = Spec.all comp in
      let base = Token_vc.detect ~seed:1L comp spec in
      let off = best (fun () -> ignore (Token_vc.detect ~seed:1L comp spec)) in
      let events = ref 0 in
      let agree = ref true in
      let on =
        best (fun () ->
            let recorder = Wcp_obs.Recorder.create () in
            let r = Token_vc.detect ~recorder ~seed:1L comp spec in
            events := Wcp_obs.Recorder.emitted recorder;
            if not (Detection.outcome_equal r.outcome base.outcome) then
              agree := false)
      in
      Printf.printf "%4d %12.0f %12.0f %8.2f %9d %8s\n" n (off *. 1e9)
        (on *. 1e9)
        (on /. off)
        !events
        (if !agree then "yes" else "NO"))
    [ 2; 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* E15: multicore throughput of the bench harness itself               *)
(* ------------------------------------------------------------------ *)

let e15 () =
  header "E15 multicore throughput: detection sessions/sec vs domains"
    "claim: Parallel.map output is byte-identical at any domain count; wall drops";
  let open Wcp_bench.Bench_json in
  Printf.printf "%8s %10s %12s %9s %10s\n" "domains" "sessions" "wall-ms"
    "sess/s" "identical";
  (* Rows must agree on every deterministic field whatever the domain
     count; normalize away the param (the domain count itself). *)
  let norm r =
    let r = strip_timing r in
    { r with job = { r.job with param = 0 } }
  in
  let base = ref None in
  List.iter
    (fun d ->
      let r =
        run_job
          {
            experiment = "E15";
            algo = "token-vc";
            n = 8;
            m = 12;
            p_pred = 0.3;
            seed = 0;
            param = d;
          }
      in
      if !base = None then base := Some (norm r);
      let identical = r.outcome = "ok" && !base = Some (norm r) in
      let wall_s = float_of_int r.wall_ns /. 1e9 in
      Printf.printf "%8d %10d %12.1f %9.0f %10s\n" d e15_sessions
        (wall_s *. 1e3)
        (float_of_int e15_sessions /. wall_s)
        (if identical then "yes" else "NO"))
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* E16: wire bits, hybrid delta encoding vs dense                      *)
(* ------------------------------------------------------------------ *)

let e16 () =
  header "E16 delta encoding: wire bits vs the dense baseline"
    "claim: sparse clock updates make delta+gating cut bits >= 2x at n=32; cuts identical";
  let open Wcp_bench.Bench_json in
  Printf.printf "%-12s %4s %12s %12s %7s %9s\n" "algo" "n" "dense-bits"
    "delta-bits" "ratio" "same-cut";
  List.iter
    (fun algo ->
      List.iter
        (fun n ->
          let run param seed =
            run_job
              { experiment = "E16"; algo; n; m = 20; p_pred = 0.3; seed; param }
          in
          let rows = List.map (fun s -> (run 0 s, run 1 s)) [ 1; 2; 3 ] in
          let dense = mean_i (List.map (fun (d, _) -> d.bits) rows) in
          let delta = mean_i (List.map (fun (_, d) -> d.bits) rows) in
          (* Same detected cut: every deterministic field except bits
             (and the delta-flag param) must agree between the arms. *)
          let norm r =
            { r with bits = 0; job = { r.job with param = 0 } }
          in
          let same =
            List.for_all
              (fun (d0, d1) -> deterministic_equal (norm d0) (norm d1))
              rows
          in
          Printf.printf "%-12s %4d %12d %12d %7.2f %9s\n" algo n dense delta
            (float_of_int dense /. float_of_int (max 1 delta))
            (if same then "yes" else "NO"))
        [ 8; 16; 32 ])
    [ "token-vc"; "token-multi"; "checker" ]

(* ------------------------------------------------------------------ *)
(* E17: computation slicing, sparse-truth sweep                        *)
(* ------------------------------------------------------------------ *)

let e17 () =
  header "E17 computation slicing: detect on the slice vs the dense run"
    "claim: sparse truth (p_pred=0.02) cuts events examined >= 2x at n=32; \
     cuts identical";
  let open Wcp_bench.Bench_json in
  Printf.printf "%-12s %4s %11s %12s %12s %7s %9s\n" "algo" "n" "slice-state"
    "dense-event" "slice-event" "ratio" "same-cut";
  List.iter
    (fun algo ->
      List.iter
        (fun n ->
          let run param seed =
            run_job
              {
                experiment = "E17";
                algo;
                n;
                m = 20;
                p_pred = 0.02;
                seed;
                param;
              }
          in
          let rows = List.map (fun s -> (run 0 s, run 1 s)) [ 1; 2; 3 ] in
          let dense = mean_i (List.map (fun (d, _) -> d.events) rows) in
          let sliced = mean_i (List.map (fun (_, s) -> s.events) rows) in
          let sstates = mean_i (List.map (fun (_, s) -> s.slice_states) rows) in
          (* Identical verdicts: the sliced arm's remapped cut (and every
             deterministic field that is a function of it — outcome,
             states examined per the slice's own accounting aside) must
             agree with the dense arm's. Everything that legitimately
             shrinks on the slice is zeroed before the comparison. *)
          let norm r =
            {
              r with
              states = 0;
              hops = 0;
              polls = 0;
              snapshots = 0;
              merges = 0;
              work = 0;
              max_work = 0;
              messages = 0;
              bits = 0;
              events = 0;
              sim_time = 0.;
              trace_events = 0;
              eliminations = 0;
              hop_p50 = 0.;
              hop_p95 = 0.;
              hop_max = 0.;
              elims_per_hop_p50 = 0.;
              elims_per_hop_p95 = 0.;
              elims_per_hop_max = 0.;
              slice_states = 0;
              job = { r.job with param = 0 };
            }
          in
          let same =
            List.for_all
              (fun (d0, d1) ->
                deterministic_equal (norm d0) (norm d1)
                && d0.outcome = d1.outcome)
              rows
          in
          Printf.printf "%-12s %4d %11d %12d %12d %7.2f %9s\n" algo n sstates
            dense sliced
            (float_of_int dense /. float_of_int (max 1 sliced))
            (if same then "yes" else "NO"))
        [ 8; 16; 32 ])
    [ "token-vc"; "token-dd"; "token-dd-par"; "token-multi"; "checker" ]

(* ------------------------------------------------------------------ *)
(* E18: domain-parallel checker crossover                              *)
(* ------------------------------------------------------------------ *)

let e18 () =
  header "E18 domain-parallel checker: wall-clock crossover vs centralized"
    "claim: byte-identical cuts at every domain count; parallel wins at n>=64";
  let open Wcp_bench.Bench_json in
  Printf.printf "%5s %11s %9s %9s %9s %9s %8s %7s %9s\n" "n" "checker-ms"
    "d=1-ms" "d=2-ms" "d=4-ms" "d=8-ms" "speedup" "rounds" "same-cut";
  List.iter
    (fun n ->
      let run algo param =
        run_job
          { experiment = "E18"; algo; n; m = 20; p_pred = 0.3; seed = 1; param }
      in
      let ck = run "checker" 0 in
      let par = List.map (run "parallel") [ 1; 2; 4; 8 ] in
      (* The determinism contract, asserted per row: every domain count
         spells out the same cut as the centralized checker (outcome
         strings are byte-identical), and the round shape — rounds,
         frontier, items, plus every other deterministic field — is
         domain-count independent. *)
      let norm r = { (strip_timing r) with job = { r.job with param = 0 } } in
      let p1 = List.hd par in
      let same =
        List.for_all (fun p -> p.outcome = ck.outcome && norm p = norm p1) par
      in
      let ms r = float_of_int r.wall_ns /. 1e6 in
      let best = List.fold_left (fun acc p -> min acc (ms p)) infinity par in
      Printf.printf "%5d %11.2f %9.2f %9.2f %9.2f %9.2f %8.2f %7d %9s\n" n
        (ms ck)
        (ms (List.nth par 0))
        (ms (List.nth par 1))
        (ms (List.nth par 2))
        (ms (List.nth par 3))
        (ms ck /. best) p1.par_rounds
        (if same then "yes" else "NO"))
    [ 8; 16; 32; 64; 128 ]

(* ------------------------------------------------------------------ *)
(* E19: crash recovery, restart arm vs fault-free reference            *)
(* ------------------------------------------------------------------ *)

let e19 () =
  header "E19 crash recovery: mid-protocol monitor restart vs fault-free run"
    "claim: the recovered run's first cut is byte-identical to the \
     fault-free oracle for every token algorithm";
  let open Wcp_bench.Bench_json in
  Printf.printf "%-12s %4s %8s %8s %9s %9s %8s %9s\n" "algo" "n" "ref-t"
    "rec-t" "rec-lat" "replayed" "retx" "same-cut";
  List.iter
    (fun algo ->
      List.iter
        (fun n ->
          let run param =
            run_job
              {
                experiment = "E19";
                algo;
                n;
                m = 20;
                p_pred = 0.3;
                seed = 1;
                param;
              }
          in
          let reference = run 0 and recovered = run 1 in
          (* The recovery contract: the crash perturbs how hard the run
             is (messages, retransmits, sim time), never WHAT it
             detects — the spelled-out cuts must be byte-identical. *)
          let same = reference.outcome = recovered.outcome in
          Printf.printf "%-12s %4d %8.2f %8.2f %9.2f %9d %8d %9s\n" algo n
            reference.sim_time recovered.sim_time recovered.recovery_latency
            recovered.replayed recovered.retransmits
            (if same then "yes" else "NO"))
        [ 8; 16; 32 ])
    [ "token-vc"; "token-dd"; "token-multi" ]

(* ------------------------------------------------------------------ *)
(* E20: always-on telemetry overhead                                   *)
(* ------------------------------------------------------------------ *)

let e20 () =
  header "E20 always-on telemetry: capacity-1 ring + metrics stream vs bare"
    "claim: the metrics plane costs <= 5% over the recorder hooks at n=32 \
     and the stream is byte-deterministic";
  let m = 20 in
  Printf.printf "%4s %11s %11s %11s %7s %7s %6s %6s %6s\n" "n" "off-ns"
    "hooks-ns" "on-ns" "plane" "total" "lines" "agree" "deter";
  List.iter
    (fun n ->
      (* Three interleaved arms, best-of-20 each: bare; the recorder
         hooks alone (capacity-1 ring + no-op tap, i.e. what any
         attached consumer pays for event materialization — E14's
         number); and the full plane (telemetry aggregation streaming
         wcp-metrics/1 into a buffer). Interleaving means slow machine
         drift hits all arms equally; [Gc.minor] puts each rep in the
         same heap state. [plane] = on/hooks prices this PR's
         aggregation layer, [total] = on/off the whole plane including
         the hooks that predate it. *)
      let reps = 20 in
      let comp = random_comp ~n ~m ~p_pred:0.3 ~seed:1L in
      let spec = Spec.all comp in
      let base = Token_vc.detect ~seed:1L comp spec in
      let attached () =
        let buf = Buffer.create 4096 in
        let tel =
          Wcp_obs.Telemetry.create
            ~sink:(fun l ->
              Buffer.add_string buf l;
              Buffer.add_char buf '\n')
            ()
        in
        let recorder = Wcp_obs.Recorder.create ~capacity:1 () in
        Wcp_obs.Telemetry.attach tel recorder;
        let r = Token_vc.detect ~recorder ~seed:1L comp spec in
        Wcp_obs.Telemetry.close tel;
        (r, Buffer.contents buf)
      in
      let agree = ref true in
      let stream = ref "" in
      let off = ref infinity and hooks = ref infinity and on = ref infinity in
      let time f b =
        Gc.minor ();
        let t0 = Unix.gettimeofday () in
        f ();
        let dt = Unix.gettimeofday () -. t0 in
        if dt < !b then b := dt
      in
      for _ = 1 to reps do
        time (fun () -> ignore (Token_vc.detect ~seed:1L comp spec)) off;
        time
          (fun () ->
            let recorder = Wcp_obs.Recorder.create ~capacity:1 () in
            Wcp_obs.Recorder.attach_tap recorder
              (fun (_ : Wcp_obs.Event.t) -> ());
            ignore (Token_vc.detect ~recorder ~seed:1L comp spec))
          hooks;
        time
          (fun () ->
            let r, s = attached () in
            stream := s;
            if not (Detection.outcome_equal r.outcome base.outcome) then
              agree := false)
          on
      done;
      let off = !off and hooks = !hooks and on = !on in
      let lines = String.split_on_char '\n' !stream |> List.length |> pred in
      (* Alloc-dependent phase lines aside, the stream must reproduce
         exactly; compare decoded lines with alloc_bytes zeroed (the
         cross-process byte-for-byte check is `make telemetry-check`). *)
      let norm s =
        match Wcp_obs.Telemetry.decode s with
        | Result.Error _ -> None
        | Result.Ok ls ->
            Some
              (List.map
                 (function
                   | Wcp_obs.Telemetry.Phase p ->
                       Wcp_obs.Telemetry.Phase { p with alloc_bytes = 0 }
                   | l -> l)
                 ls)
      in
      let _, s2 = attached () in
      let deterministic = norm !stream <> None && norm !stream = norm s2 in
      Printf.printf "%4d %11.0f %11.0f %11.0f %7.2f %7.2f %6d %6s %6s\n" n
        (off *. 1e9) (hooks *. 1e9) (on *. 1e9) (on /. hooks) (on /. off)
        lines
        (if !agree then "yes" else "NO")
        (if deterministic then "yes" else "NO"))
    [ 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* E21: binary trace store, streamed replay vs dense text              *)
(* ------------------------------------------------------------------ *)

let e21 () =
  header "E21 binary trace store: mmap'd streamed replay vs dense text decode"
    "claim: btrace shrinks the on-disk trace and its decode time while \
     the streamed cut stays byte-identical to the dense reference";
  let open Wcp_bench.Bench_json in
  Printf.printf "%-10s %4s %6s %10s %10s %9s %9s %10s %9s\n" "algo" "n" "m"
    "txt-bytes" "bt-bytes" "txt-dec" "bt-dec" "peak-words" "same-cut";
  List.iter
    (fun algo ->
      List.iter
        (fun (n, m) ->
          let run param =
            run_job
              { experiment = "E21"; algo; n; m; p_pred = 0.3; seed = 1; param }
          in
          let dense = run 0 and streamed = run 1 in
          (* The format contract: both arms observe the same generated
             computation, one through the dense text decode and one
             through the mmap'd slice cursor, so the spelled-out first
             cut must be byte-identical. Per-run effort (events, work)
             legitimately shrinks on the streamed slice. *)
          let same = dense.outcome = streamed.outcome in
          let ms ns = float_of_int ns /. 1e6 in
          Printf.printf "%-10s %4d %6d %10d %10d %8.2fms %8.2fms %10d %9s\n"
            algo n m dense.trace_bytes streamed.trace_bytes
            (ms dense.decode_ns) (ms streamed.decode_ns) streamed.peak_words
            (if same then "yes" else "NO"))
        [ (8, 20); (8, 2000); (16, 8000) ])
    [ "token-vc"; "token-dd"; "checker" ]

(* ------------------------------------------------------------------ *)
(* E13: Bechamel micro-benchmarks                                      *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "E13 CPU micro-benchmarks (Bechamel)"
    "wall-clock cost of one full detection run per algorithm (fixed workload)";
  let open Bechamel in
  let comp = random_comp ~n:8 ~m:12 ~p_pred:0.3 ~seed:5L in
  let spec = Spec.make comp [| 0; 2; 4; 6 |] in
  let mk name f = Test.make ~name (Staged.stage f) in
  let test =
    Test.make_grouped ~name:"detect"
      [
        mk "oracle" (fun () -> ignore (Oracle.first_cut comp spec));
        mk "checker" (fun () ->
            ignore (Checker_centralized.detect ~seed:5L comp spec));
        mk "token-vc" (fun () -> ignore (Token_vc.detect ~seed:5L comp spec));
        mk "multi-token" (fun () ->
            ignore (Token_multi.detect ~groups:2 ~seed:5L comp spec));
        mk "token-dd" (fun () -> ignore (Token_dd.detect ~seed:5L comp spec));
        mk "token-dd-par" (fun () ->
            ignore (Token_dd.detect ~parallel:true ~seed:5L comp spec));
        mk "checker-parallel d=4" (fun () ->
            ignore (Checker_parallel.detect ~domains:4 ~seed:5L comp spec));
        (* The pooled fan-out itself: with the scoped pool warm this is
           dispatch + barrier cost, no domain spawns (satellite of the
           E18 work; Parallel.spawns stays flat across iterations). *)
        mk "parallel-map d=4 (pooled)" (fun () ->
            ignore
              (Wcp_util.Parallel.map ~domains:4
                 (fun x -> x * x)
                 (Array.init 256 Fun.id)));
        mk "lower-bound n=16 m=16" (fun () ->
            let world, _ = Wcp_lowerbound.Adversary.make ~n:16 ~m:16 in
            ignore (Wcp_lowerbound.Detector.run world));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw_results = Benchmark.all cfg instances test in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _instance tbl ->
      let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) tbl [] in
      List.iter
        (fun (name, result) ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-32s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-32s (no estimate)\n" name)
        (List.sort compare rows))
    results

let tables () =
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e10 ();
  e11 ();
  e12 ();
  e14 ();
  e15 ();
  e16 ();
  e17 ();
  e18 ();
  e19 ();
  e20 ();
  e21 ()

(* ------------------------------------------------------------------ *)
(* Machine-readable harness (JSON) and the perf-regression gate        *)
(* ------------------------------------------------------------------ *)

let json_mode args =
  let profile = ref Wcp_bench.Bench_json.Full in
  let domains = ref None in
  let out = ref None in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        profile := Wcp_bench.Bench_json.Smoke;
        parse rest
    | "--seq" :: rest ->
        domains := Some 1;
        parse rest
    | "--domains" :: k :: rest ->
        domains := Some (int_of_string k);
        parse rest
    | "--out" :: f :: rest ->
        out := Some f;
        parse rest
    | a :: _ -> failwith ("json: unknown argument " ^ a)
  in
  parse args;
  let results = Wcp_bench.Bench_json.run ?domains:!domains !profile in
  let doc = Wcp_bench.Bench_json.emit ~profile:!profile results in
  match !out with
  | None -> print_string doc
  | Some f ->
      let oc = open_out f in
      output_string oc doc;
      close_out oc;
      Printf.printf "wrote %d results to %s\n" (Array.length results) f

let read_file f =
  match open_in_bin f with
  | exception Sys_error msg ->
      Printf.eprintf "perf-check: cannot read baseline: %s\n" msg;
      Printf.eprintf "  (generate one with: make bench-json)\n";
      exit 1
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s

let parse_file f =
  match Wcp_bench.Bench_json.parse_doc (read_file f) with
  | exception Wcp_bench.Bench_json.Json.Parse_error msg ->
      Printf.eprintf "perf-check: %s is not a wcp-bench document (%s)\n" f msg;
      exit 1
  | doc -> doc

let perf_check args =
  let subset = List.mem "--subset" args in
  let args = List.filter (fun a -> a <> "--subset") args in
  let baseline_file, current =
    match args with
    | [ b ] ->
        (* No current file: re-run the baseline's profile now. *)
        let profile, _ = parse_file b in
        (b, Wcp_bench.Bench_json.run profile)
    | [ b; c ] ->
        let _, current = parse_file c in
        (b, current)
    | _ -> failwith "usage: perf-check BASELINE [CURRENT] [--subset]"
  in
  let _, baseline = parse_file baseline_file in
  match Wcp_bench.Bench_json.compare_runs ~subset ~baseline ~current () with
  | [] ->
      Printf.printf "perf-check: OK (%d jobs match %s%s)\n"
        (Array.length (if subset then current else baseline))
        baseline_file
        (if subset then ", subset mode" else "")
  | errors ->
      List.iter (fun e -> Printf.eprintf "perf-check: %s\n" e) errors;
      exit 1

let () =
  let argv = Array.to_list Sys.argv in
  match argv with
  | _ :: "tables" :: _ -> tables ()
  | _ :: "e18" :: _ -> e18 ()
  | _ :: "e19" :: _ -> e19 ()
  | _ :: "e20" :: _ -> e20 ()
  | _ :: "e21" :: _ -> e21 ()
  | _ :: "micro" :: _ -> micro ()
  | _ :: "json" :: rest -> json_mode rest
  | _ :: "perf-check" :: rest -> perf_check rest
  | _ ->
      tables ();
      micro ()
