open Wcp_trace
open Wcp_core

(* ------------------------------------------------------------------ *)
(* Minimal JSON                                                        *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        (* %.17g round-trips any double through float_of_string. *)
        let s = Printf.sprintf "%.17g" f in
        Buffer.add_string buf s;
        (* Keep it a JSON number that re-parses as a float. *)
        if String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s then
          Buffer.add_string buf ".0"
    | Str s ->
        Buffer.add_char buf '"';
        String.iter
          (fun c ->
            match c with
            | '"' -> Buffer.add_string buf "\\\""
            | '\\' -> Buffer.add_string buf "\\\\"
            | '\n' -> Buffer.add_string buf "\\n"
            | '\t' -> Buffer.add_string buf "\\t"
            | '\r' -> Buffer.add_string buf "\\r"
            | c when Char.code c < 0x20 ->
                Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
            | c -> Buffer.add_char buf c)
          s;
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            emit buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            emit buf (Str k);
            Buffer.add_char buf ':';
            emit buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 4096 in
    emit buf t;
    Buffer.contents buf

  (* Recursive-descent parser, sufficient for the documents this module
     emits (and ordinary hand-edited baselines). *)
  let parse s =
    let len = String.length s in
    let pos = ref 0 in
    let error fmt =
      Printf.ksprintf (fun m ->
          raise (Parse_error (Printf.sprintf "at byte %d: %s" !pos m)))
        fmt
    in
    let peek () = if !pos < len then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < len
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < len && s.[!pos] = c then incr pos
      else error "expected %c" c
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= len && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else error "bad literal"
    in
    let number () =
      let start = !pos in
      let is_float = ref false in
      while
        !pos < len
        &&
        match s.[!pos] with
        | '0' .. '9' | '-' | '+' -> true
        | '.' | 'e' | 'E' ->
            is_float := true;
            true
        | _ -> false
      do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      if !is_float then Float (float_of_string tok)
      else
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> Float (float_of_string tok)
    in
    let string_lit () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= len then error "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= len then error "unterminated escape";
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 't' -> Buffer.add_char buf '\t'
             | 'r' -> Buffer.add_char buf '\r'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
                 if !pos + 4 >= len then error "bad \\u escape";
                 let code =
                   int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
                 in
                 (* Only BMP code points below 0x80 are expected here. *)
                 if code < 0x80 then Buffer.add_char buf (Char.chr code)
                 else error "non-ASCII \\u escape unsupported";
                 pos := !pos + 4
             | c -> error "bad escape \\%c" c);
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | None -> error "unexpected end of input"
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = string_lit () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  Obj (List.rev ((k, v) :: acc))
              | _ -> error "expected , or } in object"
            in
            members []
          end
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            List []
          end
          else begin
            let rec items acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  items (v :: acc)
              | Some ']' ->
                  incr pos;
                  List (List.rev (v :: acc))
              | _ -> error "expected , or ] in array"
            in
            items []
          end
      | Some '"' -> Str (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> number ()
    in
    let v = value () in
    skip_ws ();
    if !pos <> len then error "trailing garbage";
    v

  let member name = function
    | Obj kvs -> (
        match List.assoc_opt name kvs with
        | Some v -> v
        | None -> raise (Parse_error ("missing field " ^ name)))
    | _ -> raise (Parse_error ("not an object looking up " ^ name))

  let to_int = function
    | Int i -> i
    | j -> raise (Parse_error ("expected int, got " ^ to_string j))

  let to_float = function
    | Float f -> f
    | Int i -> float_of_int i
    | j -> raise (Parse_error ("expected number, got " ^ to_string j))

  let to_str = function
    | Str s -> s
    | j -> raise (Parse_error ("expected string, got " ^ to_string j))

  let to_list = function
    | List l -> l
    | j -> raise (Parse_error ("expected array, got " ^ to_string j))
end

(* ------------------------------------------------------------------ *)
(* Jobs and metrics                                                    *)
(* ------------------------------------------------------------------ *)

type job = {
  experiment : string;  (* "E1".."E9", "E15".."E21" *)
  algo : string;
  n : int;
  m : int;  (* sends per process (adversary: its m parameter) *)
  p_pred : float;
  seed : int;
  param : int;
      (* groups (multi), spec width (E5), drop % (E9), domain count
         (E15, E18 parallel arm), delta flag 0/1 (E16), slice flag 0/1
         (E17), restart flag 0/1 (E19), btrace-streamed flag 0/1 (E21),
         else 0 *)
}

type metrics = {
  job : job;
  outcome : string;  (* "detected" | "none"; E17 appends the cut *)
  states : int;
  hops : int;
  polls : int;
  snapshots : int;
  merges : int;
  work : int;
  max_work : int;
  messages : int;
  bits : int;
  events : int;
  sim_time : float;
  (* Fault-recovery work; zero everywhere outside E9 and E19. *)
  retransmits : int;
  dups_suppressed : int;
  net_dropped : int;
  net_duplicated : int;
  (* Crash-recovery work (E19's restart arm, schema v7): frames
     replayed from the transport's retained history on the
     post-restart reconnect, and the sim time from the monitor's state
     restore to the run's verdict. Both deterministic; zero when no
     restore fired. *)
  replayed : int;
  recovery_latency : float;
  (* Trace-derived summaries (schema v3) from a second, traced run of
     the same job. Recording never touches the engine RNG or stats, so
     the traced run follows the identical schedule and these are as
     deterministic as [hops]; the timed run above stays untraced so
     [wall_ns]/[alloc_bytes] are unaffected. Zero for the adversary. *)
  trace_events : int;
  eliminations : int;
  hop_p50 : float;
  hop_p95 : float;
  hop_max : float;
  elims_per_hop_p50 : float;
  elims_per_hop_p95 : float;
  elims_per_hop_max : float;
  (* Slice shape (E17 sliced arm, schema v5): total states of the
     sliced computation the detector actually examined. Deterministic;
     zero for dense runs. *)
  slice_states : int;
  (* Parallel-checker round shape (E18, schema v6): barrier rounds,
     widest frontier (slots advanced in one round) and candidate
     comparisons. Deterministic and domain-count independent — the
     frozen-frontier rounds compute the same thresholds whatever the
     fan-out — so they sit with the replayable fields, not the timing
     block. Zero for every other detector. *)
  par_rounds : int;
  par_frontier : int;
  par_items : int;
  (* Span-tree summaries (schema v8), derived from the same traced run:
     per span-kind p50/p95 durations in sim time (token hops in flight,
     parallel-checker rounds, crash-recovery windows, retransmit
     bursts; see Wcp_obs.Span). Deterministic; zero for kinds the run
     never produced, for the adversary and for E15. *)
  span_token_p50 : float;
  span_token_p95 : float;
  span_round_p50 : float;
  span_round_p95 : float;
  span_recovery_p50 : float;
  span_recovery_p95 : float;
  span_retx_p50 : float;
  span_retx_p95 : float;
  (* Telemetry plane (schema v8): lines of the wcp-metrics/1 stream an
     attached telemetry tap emits for this run (replayed from the
     traced events with allocation sampling stripped). Deterministic.
     E20's param=1 rows additionally carry the plane INSIDE the timed
     run, so their wall_ns prices always-on telemetry. *)
  telemetry_lines : int;
  (* Trace-store shape (E21, schema v9): bytes of the on-disk trace the
     job detected from (text for param=0, btrace for param=1).
     Deterministic — both formats are byte-stable functions of the
     generated run. Zero outside E21. *)
  trace_bytes : int;
  (* Machine-dependent; excluded from determinism comparisons. *)
  decode_ns : int;
      (* E21 load step: text decode to the dense computation (param=0)
         or btrace open + streamed slice construction (param=1) *)
  peak_words : int;
      (* E21: live-heap words the load step left behind (Gc.live_words
         delta across it) — the bounded-memory evidence: the streamed
         arm's figure tracks the slice, not the trace length *)
  slice_ns : int;  (* slice-construction overhead (E17 sliced arm) *)
  wall_ns : int;
  alloc_bytes : int;
}

let spec_for job comp =
  match job.experiment with
  | "E4" | "E8" -> Spec.make comp [| 0; job.n / 2 |]
  | "E5" ->
      let rng = Wcp_util.Rng.create (Int64.of_int job.seed) in
      Spec.make comp (Generator.random_procs rng ~n:job.n ~width:job.param)
  | _ -> Spec.all comp

(* One simulation run of a job, optionally traced. A fresh fault plan
   is built per run (its PRNG stream is private mutable state). *)
let run_sim ?recorder job =
  let comp =
    Generator.random
      ~params:
        {
          Generator.n = job.n;
          sends_per_process = job.m;
          p_pred = job.p_pred;
          p_recv = 0.5;
        }
      ~seed:(Int64.of_int job.seed) ()
  in
  let spec = spec_for job comp in
  let seed = Int64.of_int job.seed in
  (* E9 runs under chaos: drop rate param%, duplication at half the
     drop rate, fault stream seeded by the job seed. *)
  let fault =
    if job.experiment = "E9" then
      Some
        (Wcp_sim.Fault.uniform ~seed
           ~drop:(float_of_int job.param /. 100.0)
           ~dup:(float_of_int job.param /. 200.0)
           ())
    else if job.experiment = "E19" && job.param <> 0 then
      (* E19 restart arm: the monitor of application process 0 (engine
         id n+0) crashes mid-protocol and comes back with its state
         restored from the last checkpoint (ckpt_every = 1, the detect
         default). param=0 is the fault-free reference; the spelled-out
         cut in [outcome] pins the two arms byte-identical. *)
      Some
        (Wcp_sim.Fault.make
           ~windows:
             [
               Wcp_sim.Fault.window ~kind:Wcp_sim.Fault.Restart ~proc:job.n
                 ~from_t:2.0 ~until_t:10.0 ();
             ]
           ())
    else None
  in
  (* E16 ablates the wire encoding: param=1 is the hybrid delta
     encoding (the default everywhere else), param=0 forces dense. The
     encoding changes no message counts and no RNG draws, so every
     field except [bits] is identical across the two arms. *)
  let delta = if job.experiment = "E16" then job.param <> 0 else true in
  (* E17 ablates computation slicing: param=1 detects on the slice
     (identical outcome, remapped cut), param=0 on the dense run. *)
  let slice = job.experiment = "E17" && job.param <> 0 in
  let options = Detection.options ~delta ~slice () in
  let r =
    match job.algo with
    | "token-vc" -> Token_vc.detect ?fault ?recorder ~options ~seed comp spec
    | "token-dd" -> Token_dd.detect ?fault ?recorder ~options ~seed comp spec
    | "token-dd-par" ->
        Token_dd.detect ?fault ?recorder ~parallel:true ~options ~seed comp
          spec
    | "token-multi" ->
        (* In E16/E17/E19 [param] is the delta/slice/restart flag, so
           the group count is pinned at 2 (the E3 sweet spot). *)
        let groups =
          if
            job.experiment = "E16" || job.experiment = "E17"
            || job.experiment = "E19"
          then 2
          else job.param
        in
        Token_multi.detect ?fault ?recorder ~options ~groups ~seed comp spec
    | "checker" ->
        Checker_centralized.detect ?recorder ~options ~seed comp spec
    | "parallel" ->
        (* E18: [param] is the domain count of the parallel checker
           itself (the detector's own fan-out, not the bench harness
           parallelism); param=0 falls back to WCP_DOMAINS. *)
        let domains = if job.param > 0 then Some job.param else None in
        Checker_parallel.detect ?recorder ?domains ~options ~seed comp spec
    | a -> invalid_arg ("Bench_json.run_job: unknown algo " ^ a)
  in
  (comp, r)

(* ------------------------------------------------------------------ *)
(* E15: multicore throughput                                           *)
(* ------------------------------------------------------------------ *)

(* One E15 job = a fixed batch of [e15_sessions] independent detection
   sessions (same workload shape, session seeds 1..k) pushed through
   [Parallel.map] with [job.param] domains. All deterministic fields
   are batch aggregates, so an E15 row is identical whatever domain
   count produced it; [outcome] is "ok" iff the per-session summaries
   are byte-identical to a sequential (1-domain) reference run of the
   same batch — the {!Wcp_util.Parallel} determinism contract, asserted
   on every bench run. Only [wall_ns] (from which sessions/sec derives)
   may vary with the domain count. *)
let e15_sessions = 24

type e15_session = {
  s_outcome : Detection.outcome;
  s_states : int;
  s_hops : int;
  s_snapshots : int;
  s_work : int;
  s_max_work : int;
  s_messages : int;
  s_bits : int;
  s_events : int;
  s_sim_time : float;
}

let run_e15 job =
  if job.param < 1 then
    invalid_arg "Bench_json: E15 param is the domain count (>= 1)";
  let session seed =
    let comp, r = run_sim { job with seed; param = 0 } in
    {
      s_outcome = r.Detection.outcome;
      s_states = Computation.total_states comp;
      s_hops = r.extras.Detection.token_hops;
      s_snapshots = r.extras.Detection.snapshots;
      s_work = Wcp_sim.Stats.total_work r.stats;
      s_max_work = Wcp_sim.Stats.max_work r.stats;
      s_messages = Wcp_sim.Stats.total_sent r.stats;
      s_bits = Wcp_sim.Stats.total_bits r.stats;
      s_events = r.events;
      s_sim_time = r.sim_time;
    }
  in
  let session_seeds = Array.init e15_sessions (fun i -> i + 1) in
  Gc.minor ();
  let alloc0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let batch = Wcp_util.Parallel.map ~domains:job.param session session_seeds in
  let wall_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
  let alloc_bytes = int_of_float (Gc.allocated_bytes () -. alloc0) in
  (* The reference run sits outside the timed window: sessions/sec is
     the parallel batch only. *)
  let reference = Wcp_util.Parallel.map ~domains:1 session session_seeds in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 batch in
  {
    job;
    outcome = (if batch = reference then "ok" else "mismatch");
    states = sum (fun s -> s.s_states);
    hops = sum (fun s -> s.s_hops);
    polls = 0;
    snapshots = sum (fun s -> s.s_snapshots);
    merges = 0;
    work = sum (fun s -> s.s_work);
    max_work = Array.fold_left (fun acc s -> max acc s.s_max_work) 0 batch;
    messages = sum (fun s -> s.s_messages);
    bits = sum (fun s -> s.s_bits);
    events = sum (fun s -> s.s_events);
    sim_time = Array.fold_left (fun acc s -> acc +. s.s_sim_time) 0.0 batch;
    retransmits = 0;
    dups_suppressed = 0;
    net_dropped = 0;
    net_duplicated = 0;
    replayed = 0;
    recovery_latency = 0.0;
    trace_events = 0;
    eliminations = 0;
    hop_p50 = 0.0;
    hop_p95 = 0.0;
    hop_max = 0.0;
    elims_per_hop_p50 = 0.0;
    elims_per_hop_p95 = 0.0;
    elims_per_hop_max = 0.0;
    slice_states = 0;
    par_rounds = 0;
    par_frontier = 0;
    par_items = 0;
    span_token_p50 = 0.0;
    span_token_p95 = 0.0;
    span_round_p50 = 0.0;
    span_round_p95 = 0.0;
    span_recovery_p50 = 0.0;
    span_recovery_p95 = 0.0;
    span_retx_p50 = 0.0;
    span_retx_p95 = 0.0;
    telemetry_lines = 0;
    trace_bytes = 0;
    decode_ns = 0;
    peak_words = 0;
    slice_ns = 0;
    wall_ns;
    alloc_bytes;
  }

(* ------------------------------------------------------------------ *)
(* E21: binary trace store, text/dense vs btrace/streamed              *)
(* ------------------------------------------------------------------ *)

(* param=0 writes the generated run as a text trace, decodes it back
   into the dense computation and detects on that; param=1 streams the
   identical run (same seed, same RNG draw sequence) into a btrace file
   and detects through the zero-copy cursor — the slice is built
   straight off the mmap, the dense computation never exists. Both arms
   spell the detected cut out in dense coordinates, pinning the
   streamed arm byte-identical to the dense arm. [decode_ns] times the
   load step (text decode vs btrace open + slice construction),
   [peak_words] is the live-heap delta that step left behind (the
   bounded-memory evidence: the streamed figure tracks the slice, not
   the trace length), [trace_bytes] the on-disk size. *)
let run_e21 job =
  let params =
    {
      Generator.n = job.n;
      sends_per_process = job.m;
      p_pred = job.p_pred;
      p_recv = 0.5;
    }
  in
  let seed = Int64.of_int job.seed in
  let streamed = job.param <> 0 in
  let path =
    Filename.temp_file "wcp_e21" (if streamed then ".btrace" else ".trace")
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      if streamed then ignore (Generator.random_btrace ~params ~seed path)
      else Trace_codec.write_file path (Generator.random ~params ~seed ());
      let trace_bytes = (Unix.stat path).Unix.st_size in
      let procs = Array.init job.n Fun.id in
      let keep_rest = job.algo = "token-dd" in
      let live_words () =
        Gc.full_major ();
        (Gc.stat ()).Gc.live_words
      in
      let live0 = live_words () in
      let t0 = Unix.gettimeofday () in
      (* The load step: everything between the bytes on disk and a
         computation a detector accepts. *)
      let comp, remap =
        if streamed then begin
          let sl =
            Wcp_slice.Slice.for_spec_source ~keep_rest
              (Btrace.source (Btrace.openfile path))
              ~procs
          in
          (Wcp_slice.Slice.computation sl, Wcp_slice.Slice.remap_cut sl)
        end
        else (Trace_codec.read_file path, Fun.id)
      in
      let decode_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
      let peak_words = max 0 (live_words () - live0) in
      let spec = Spec.make comp procs in
      let options = Detection.options () in
      Gc.minor ();
      let alloc0 = Gc.allocated_bytes () in
      let t0 = Unix.gettimeofday () in
      let r =
        match job.algo with
        | "token-vc" -> Token_vc.detect ~options ~seed comp spec
        | "token-dd" -> Token_dd.detect ~options ~seed comp spec
        | "checker" -> Checker_centralized.detect ~options ~seed comp spec
        | a -> invalid_arg ("Bench_json.run_e21: unsupported algo " ^ a)
      in
      (* E21's wall covers the whole pipeline, load included: the load
         step IS what this experiment benchmarks, and the detect-only
         slice of the big row is small enough that scheduler jitter
         would trip the 20% gate on it alone. *)
      let wall_ns =
        decode_ns + int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)
      in
      let alloc_bytes = int_of_float (Gc.allocated_bytes () -. alloc0) in
      let outcome =
        match Detection.remap_outcome remap r.Detection.outcome with
        | Detection.Detected cut ->
            Format.asprintf "detected %a" Cut.pp cut
        | Detection.No_detection -> "none"
        | Detection.Undetectable_crashed _ -> "undetectable"
      in
      {
        job;
        outcome;
        (* Dense states of the recorded run, whichever arm: each of the
           n processes has events + 1 states. *)
        states = job.n + (job.n * 2 * job.m);
        hops = r.extras.Detection.token_hops;
        polls = r.extras.Detection.polls;
        snapshots = r.extras.Detection.snapshots;
        merges = r.extras.Detection.merges;
        work = Wcp_sim.Stats.total_work r.stats;
        max_work = Wcp_sim.Stats.max_work r.stats;
        messages = Wcp_sim.Stats.total_sent r.stats;
        bits = Wcp_sim.Stats.total_bits r.stats;
        events = r.events;
        sim_time = r.sim_time;
        retransmits = 0;
        dups_suppressed = 0;
        net_dropped = 0;
        net_duplicated = 0;
        replayed = 0;
        recovery_latency = 0.0;
        trace_events = 0;
        eliminations = 0;
        hop_p50 = 0.0;
        hop_p95 = 0.0;
        hop_max = 0.0;
        elims_per_hop_p50 = 0.0;
        elims_per_hop_p95 = 0.0;
        elims_per_hop_max = 0.0;
        slice_states = (if streamed then Computation.total_states comp else 0);
        par_rounds = 0;
        par_frontier = 0;
        par_items = 0;
        span_token_p50 = 0.0;
        span_token_p95 = 0.0;
        span_round_p50 = 0.0;
        span_round_p95 = 0.0;
        span_recovery_p50 = 0.0;
        span_recovery_p95 = 0.0;
        span_retx_p50 = 0.0;
        span_retx_p95 = 0.0;
        telemetry_lines = 0;
        trace_bytes;
        decode_ns;
        peak_words;
        slice_ns = 0;
        wall_ns;
        alloc_bytes;
      })

(* One detection run with the full streaming telemetry plane attached:
   a capacity-1 ring whose tap feeds a live [Wcp_obs.Telemetry]. Returns
   the run and the wcp-metrics/1 stream it emitted. *)
let run_attached job =
  let buf = Buffer.create 4096 in
  let tel =
    Wcp_obs.Telemetry.create
      ~sink:(fun l ->
        Buffer.add_string buf l;
        Buffer.add_char buf '\n')
      ()
  in
  let ring = Wcp_obs.Recorder.create ~capacity:1 () in
  Wcp_obs.Telemetry.attach tel ring;
  let cr = run_sim ~recorder:ring job in
  Wcp_obs.Telemetry.close tel;
  (cr, Buffer.contents buf)

(* Structural stream equality modulo allocation samples: two in-process
   runs may legally differ in per-phase alloc_bytes (domain warm-up
   effects), so the determinism check zeroes them. Cross-process byte
   identity — allocation included — is the CLI sweep's job
   (`make telemetry-check`). *)
let stream_deterministic a b =
  let norm s =
    match Wcp_obs.Telemetry.decode s with
    | Result.Error _ -> None
    | Result.Ok ls ->
        Some
          (List.map
             (function
               | Wcp_obs.Telemetry.Phase p ->
                   Wcp_obs.Telemetry.Phase
                     { p with Wcp_obs.Telemetry.alloc_bytes = 0 }
               | l -> l)
             ls)
  in
  let na = norm a in
  na <> None && na = norm b

let run_job job =
  if job.experiment = "E15" then run_e15 job
  else if job.experiment = "E21" then run_e21 job
  else begin
  (* E20 telemetry arm (param=1): the timed run carries the always-on
     streaming plane, so wall_ns prices it against the bare param=0
     reference row. *)
  let telemetry_on = job.experiment = "E20" && job.param <> 0 in
  let timed_stream = ref "" in
  Gc.minor ();
  let alloc0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let result =
    if telemetry_on then begin
      let cr, stream = run_attached job in
      timed_stream := stream;
      `Sim cr
    end
    else if job.algo = "adversary" then begin
      (* E6: the §5 lower-bound game is deterministic and has no
         simulation behind it; map its two counters into the shared
         record shape. *)
      let world, _ = Wcp_lowerbound.Adversary.make ~n:job.n ~m:job.m in
      let answer, trace = Wcp_lowerbound.Detector.run world in
      let outcome =
        match answer with
        | Wcp_lowerbound.Detector.No_antichain -> "none"
        | _ -> "detected"
      in
      `Adversary
        ( outcome,
          trace.Wcp_lowerbound.Detector.deletions,
          trace.Wcp_lowerbound.Detector.rounds )
    end
    else `Sim (run_sim job)
  in
  let wall_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
  let alloc_bytes = int_of_float (Gc.allocated_bytes () -. alloc0) in
  match result with
  | `Adversary (outcome, deletions, rounds) ->
      {
        job;
        outcome;
        states = 0;
        hops = 0;
        polls = 0;
        snapshots = 0;
        merges = 0;
        work = deletions;
        max_work = deletions;
        messages = 0;
        bits = 0;
        events = rounds;
        sim_time = 0.0;
        retransmits = 0;
        dups_suppressed = 0;
        net_dropped = 0;
        net_duplicated = 0;
        replayed = 0;
        recovery_latency = 0.0;
        trace_events = 0;
        eliminations = 0;
        hop_p50 = 0.0;
        hop_p95 = 0.0;
        hop_max = 0.0;
        elims_per_hop_p50 = 0.0;
        elims_per_hop_p95 = 0.0;
        elims_per_hop_max = 0.0;
        slice_states = 0;
        par_rounds = 0;
        par_frontier = 0;
        par_items = 0;
        span_token_p50 = 0.0;
        span_token_p95 = 0.0;
        span_round_p50 = 0.0;
        span_round_p95 = 0.0;
        span_recovery_p50 = 0.0;
        span_recovery_p95 = 0.0;
        span_retx_p50 = 0.0;
        span_retx_p95 = 0.0;
        telemetry_lines = 0;
        trace_bytes = 0;
        decode_ns = 0;
        peak_words = 0;
        slice_ns = 0;
        wall_ns;
        alloc_bytes;
      }
  | `Sim (comp, r) ->
      (* Second, traced run outside the timed window: same seed, same
         schedule (recording is invisible to the engine), feeding the
         histogram summaries. *)
      let recorder = Wcp_obs.Recorder.create () in
      let _ = run_sim ~recorder job in
      let events = Wcp_obs.Recorder.events recorder in
      let _, s = Wcp_obs.Metrics.of_events events in
      let q h p = Wcp_obs.Metrics.quantile h p in
      (* Span-tree and telemetry summaries (schema v8), also from the
         traced run; the telemetry replay strips allocation sampling so
         the line count is a pure function of the events. *)
      let spans = Wcp_obs.Span.of_events events in
      let spq kind p =
        Wcp_obs.Span.percentile (Wcp_obs.Span.durations kind spans) p
      in
      let telemetry_lines =
        let tel =
          Wcp_obs.Telemetry.create
            ~alloc:(fun () -> 0.)
            ~sink:(fun (_ : string) -> ())
            ()
        in
        Array.iter (fun e -> Wcp_obs.Telemetry.feed tel e) events;
        Wcp_obs.Telemetry.close tel;
        Wcp_obs.Telemetry.lines tel
      in
      (* E20 determinism contract: a second attached run reproduces the
         timed run's stream (alloc samples aside). A mismatch poisons
         [outcome] so the baseline comparison fails loudly. *)
      let telemetry_ok =
        (not telemetry_on)
        ||
        let _, stream2 = run_attached job in
        stream_deterministic !timed_stream stream2
      in
      (* E17 sliced arm: rebuild the slice outside the timed window to
         report its shape and isolated construction cost (the timed run
         above already paid construction inside [detect], so wall_ns
         compares end-to-end dense vs sliced). *)
      let slice_states, slice_ns =
        if job.experiment = "E17" && job.param <> 0 then begin
          let spec = spec_for job comp in
          let keep_rest =
            job.algo = "token-dd" || job.algo = "token-dd-par"
          in
          let t0 = Unix.gettimeofday () in
          let sl =
            Wcp_slice.Slice.for_spec ~keep_rest comp
              ~procs:(Spec.procs spec)
          in
          let ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
          (Computation.total_states (Wcp_slice.Slice.computation sl), ns)
        end
        else (0, 0)
      in
      (* E19 restart arm: recovery latency is the simulation time from
         the restarted monitor's state restore (the Restored trace
         event) to the end of the run — how long the healed protocol
         needed to reach its verdict after the crash. *)
      let recovery_latency =
        let restore_t =
          Array.fold_left
            (fun acc (e : Wcp_obs.Event.t) ->
              match e.body with
              | Wcp_obs.Event.Restored _ -> Float.max acc e.time
              | _ -> acc)
            Float.neg_infinity
            (Wcp_obs.Recorder.events recorder)
        in
        if restore_t = Float.neg_infinity then 0.0
        else r.sim_time -. restore_t
      in
      {
        job;
        outcome =
          (if not telemetry_ok then "telemetry-mismatch"
           else
             match r.Detection.outcome with
             | Detection.Detected cut ->
                 (* E17, E18, E19 and E20 spell the cut out (in dense
                    coordinates): E17 pins the sliced arm to the dense
                    arm's exact cut, E18 pins every domain count to the
                    centralized checker's cut, E19 pins the
                    crash-recovery arm to the fault-free reference's
                    cut, and E20 pins the telemetry-attached arm to the
                    bare reference's cut — not just to "detected". *)
                 if
                   job.experiment = "E17" || job.experiment = "E18"
                   || job.experiment = "E19" || job.experiment = "E20"
                 then Format.asprintf "detected %a" Cut.pp cut
                 else "detected"
             | Detection.No_detection -> "none"
             | Detection.Undetectable_crashed _ -> "undetectable");
        states = Computation.total_states comp;
        hops = r.extras.Detection.token_hops;
        polls = r.extras.Detection.polls;
        snapshots = r.extras.Detection.snapshots;
        merges = r.extras.Detection.merges;
        work = Wcp_sim.Stats.total_work r.stats;
        max_work = Wcp_sim.Stats.max_work r.stats;
        messages = Wcp_sim.Stats.total_sent r.stats;
        bits = Wcp_sim.Stats.total_bits r.stats;
        events = r.events;
        sim_time = r.sim_time;
        retransmits = Wcp_sim.Stats.total_retransmits r.stats;
        dups_suppressed = Wcp_sim.Stats.total_dups_suppressed r.stats;
        net_dropped = Wcp_sim.Stats.net_dropped r.stats;
        net_duplicated = Wcp_sim.Stats.net_duplicated r.stats;
        replayed = Wcp_sim.Stats.replayed r.stats;
        recovery_latency;
        trace_events = Wcp_obs.Recorder.emitted recorder;
        eliminations = Wcp_obs.Metrics.count s.Wcp_obs.Metrics.eliminations;
        hop_p50 = q s.Wcp_obs.Metrics.hop_latency 0.5;
        hop_p95 = q s.Wcp_obs.Metrics.hop_latency 0.95;
        hop_max = Wcp_obs.Metrics.hist_max s.Wcp_obs.Metrics.hop_latency;
        elims_per_hop_p50 = q s.Wcp_obs.Metrics.elims_per_hop 0.5;
        elims_per_hop_p95 = q s.Wcp_obs.Metrics.elims_per_hop 0.95;
        elims_per_hop_max =
          Wcp_obs.Metrics.hist_max s.Wcp_obs.Metrics.elims_per_hop;
        slice_states;
        par_rounds = Wcp_sim.Stats.par_rounds r.stats;
        par_frontier = Wcp_sim.Stats.par_max_frontier r.stats;
        par_items = Wcp_sim.Stats.par_items r.stats;
        span_token_p50 = spq Wcp_obs.Span.Token 0.5;
        span_token_p95 = spq Wcp_obs.Span.Token 0.95;
        span_round_p50 = spq Wcp_obs.Span.Round 0.5;
        span_round_p95 = spq Wcp_obs.Span.Round 0.95;
        span_recovery_p50 = spq Wcp_obs.Span.Recovery 0.5;
        span_recovery_p95 = spq Wcp_obs.Span.Recovery 0.95;
        span_retx_p50 = spq Wcp_obs.Span.Retx_burst 0.5;
        span_retx_p95 = spq Wcp_obs.Span.Retx_burst 0.95;
        telemetry_lines;
        trace_bytes = 0;
        decode_ns = 0;
        peak_words = 0;
        slice_ns;
        wall_ns;
        alloc_bytes;
      }
  end

(* ------------------------------------------------------------------ *)
(* Sweep profiles                                                      *)
(* ------------------------------------------------------------------ *)

type profile = Full | Smoke

let profile_name = function Full -> "full" | Smoke -> "smoke"

let profile_of_name = function
  | "full" -> Full
  | "smoke" -> Smoke
  | s -> invalid_arg ("Bench_json.profile_of_name: " ^ s)

let job ?(p_pred = 0.3) ?(param = 0) experiment algo ~n ~m ~seed () =
  { experiment; algo; n; m; p_pred; seed; param }

let seeds = [ 1; 2; 3 ]

let jobs = function
  | Smoke ->
      (* Every smoke job is ALSO a Full job (same key, same workload),
         so a smoke run can be perf-checked against the committed full
         baseline in subset mode — the `make bench-smoke` gate. *)
      [
        job "E1" "token-vc" ~n:8 ~m:20 ~seed:1 ();
        job "E1" "token-vc" ~n:8 ~m:20 ~seed:2 ();
        job "E2" "checker" ~n:8 ~m:16 ~seed:1 ();
        job "E3" "token-multi" ~n:24 ~m:16 ~p_pred:0.25 ~param:2 ~seed:1 ();
        job "E4" "token-dd" ~n:8 ~m:12 ~p_pred:0.05 ~seed:1 ();
        job "E8" "token-dd-par" ~n:8 ~m:10 ~p_pred:0.05 ~seed:1 ();
        job "E9" "token-vc" ~n:8 ~m:10 ~param:20 ~seed:1 ();
        job "E9" "token-dd" ~n:8 ~m:10 ~param:20 ~seed:1 ();
        job "E15" "token-vc" ~n:8 ~m:12 ~param:2 ~seed:0 ();
        job "E16" "token-vc" ~n:8 ~m:20 ~param:0 ~seed:1 ();
        job "E16" "token-vc" ~n:8 ~m:20 ~param:1 ~seed:1 ();
        job "E17" "token-vc" ~n:8 ~m:20 ~p_pred:0.02 ~param:0 ~seed:1 ();
        job "E17" "token-vc" ~n:8 ~m:20 ~p_pred:0.02 ~param:1 ~seed:1 ();
        job "E17" "token-dd" ~n:8 ~m:20 ~p_pred:0.02 ~param:0 ~seed:1 ();
        job "E17" "token-dd" ~n:8 ~m:20 ~p_pred:0.02 ~param:1 ~seed:1 ();
        job "E17" "token-multi" ~n:8 ~m:20 ~p_pred:0.02 ~param:0 ~seed:1 ();
        job "E17" "token-multi" ~n:8 ~m:20 ~p_pred:0.02 ~param:1 ~seed:1 ();
        job "E17" "checker" ~n:8 ~m:20 ~p_pred:0.02 ~param:0 ~seed:1 ();
        job "E17" "checker" ~n:8 ~m:20 ~p_pred:0.02 ~param:1 ~seed:1 ();
        job "E18" "checker" ~n:8 ~m:20 ~seed:1 ();
        job "E18" "parallel" ~n:8 ~m:20 ~param:1 ~seed:1 ();
        job "E18" "parallel" ~n:8 ~m:20 ~param:4 ~seed:1 ();
        job "E19" "token-vc" ~n:8 ~m:20 ~param:0 ~seed:1 ();
        job "E19" "token-vc" ~n:8 ~m:20 ~param:1 ~seed:1 ();
        job "E19" "token-dd" ~n:8 ~m:20 ~param:0 ~seed:1 ();
        job "E19" "token-dd" ~n:8 ~m:20 ~param:1 ~seed:1 ();
        job "E19" "token-multi" ~n:8 ~m:20 ~param:0 ~seed:1 ();
        job "E19" "token-multi" ~n:8 ~m:20 ~param:1 ~seed:1 ();
        job "E20" "token-vc" ~n:8 ~m:20 ~param:0 ~seed:1 ();
        job "E20" "token-vc" ~n:8 ~m:20 ~param:1 ~seed:1 ();
        job "E21" "token-vc" ~n:8 ~m:20 ~p_pred:0.3 ~param:0 ~seed:1 ();
        job "E21" "token-vc" ~n:8 ~m:20 ~p_pred:0.3 ~param:1 ~seed:1 ();
        job "E21" "token-dd" ~n:8 ~m:20 ~p_pred:0.3 ~param:0 ~seed:1 ();
        job "E21" "token-dd" ~n:8 ~m:20 ~p_pred:0.3 ~param:1 ~seed:1 ();
        job "E21" "checker" ~n:8 ~m:20 ~p_pred:0.3 ~param:0 ~seed:1 ();
        job "E21" "checker" ~n:8 ~m:20 ~p_pred:0.3 ~param:1 ~seed:1 ();
      ]
  | Full ->
      let sweep f xs = List.concat_map f xs in
      let per_seed f = List.map f seeds in
      sweep
        (fun n -> per_seed (fun seed -> job "E1" "token-vc" ~n ~m:20 ~seed ()))
        [ 2; 4; 8; 16; 24; 32 ]
      @ sweep
          (fun n -> per_seed (fun seed -> job "E2" "checker" ~n ~m:16 ~seed ()))
          [ 2; 4; 8; 16; 24; 32 ]
      @ sweep
          (fun groups ->
            per_seed (fun seed ->
                job "E3" "token-multi" ~n:24 ~m:16 ~p_pred:0.25 ~param:groups
                  ~seed ()))
          [ 1; 2; 4; 8 ]
      @ sweep
          (fun n ->
            per_seed (fun seed ->
                job "E4" "token-dd" ~n ~m:12 ~p_pred:0.05 ~seed ()))
          [ 4; 8; 16; 32; 64 ]
      @ sweep
          (fun width ->
            sweep
              (fun algo ->
                per_seed (fun seed ->
                    job "E5" algo ~n:64 ~m:8 ~param:width ~seed ()))
              [ "token-vc"; "token-dd" ])
          [ 2; 8; 32; 64 ]
      @ List.map
          (fun (n, m) -> job "E6" "adversary" ~n ~m ~p_pred:0.0 ~seed:0 ())
          [ (8, 16); (16, 16); (32, 32) ]
      @ sweep
          (fun p_pred ->
            List.map
              (fun algo -> job "E7" algo ~n:6 ~m:10 ~p_pred ~seed:9 ())
              [ "checker"; "token-vc"; "token-dd"; "token-dd-par" ])
          [ 0.0; 0.3; 1.0 ]
      @ sweep
          (fun n ->
            sweep
              (fun algo ->
                per_seed (fun seed ->
                    job "E8" algo ~n ~m:10 ~p_pred:0.05 ~seed ()))
              [ "token-dd"; "token-dd-par" ])
          [ 4; 8; 16; 32 ]
      @ sweep
          (fun drop_pct ->
            sweep
              (fun algo ->
                per_seed (fun seed ->
                    job "E9" algo ~n:8 ~m:10 ~param:drop_pct ~seed ()))
              [ "token-vc"; "token-dd" ])
          [ 10; 20; 30 ]
      (* E15: throughput of a fixed 24-session batch across domain
         counts. All deterministic fields are domain-count independent
         (and outcome="ok" asserts byte-identity against a sequential
         reference); only wall_ns varies. *)
      @ List.map
          (fun d -> job "E15" "token-vc" ~n:8 ~m:12 ~param:d ~seed:0 ())
          [ 1; 2; 4; 8 ]
      (* E16: wire bits, hybrid delta (param=1) vs dense (param=0), per
         vector-clock algorithm x n. Equal-seed pairs differ ONLY in
         [bits] — the encoding changes no message counts and no RNG
         draws. token-dd is absent by design: its tags and snapshots
         already carry O(1) scalar clocks, there is nothing to delta. *)
      @ sweep
          (fun n ->
            sweep
              (fun algo ->
                sweep
                  (fun delta ->
                    per_seed (fun seed ->
                        job "E16" algo ~n ~m:20 ~param:delta ~seed ()))
                  [ 0; 1 ])
              [ "token-vc"; "token-multi"; "checker" ])
          [ 8; 16; 32 ]
      (* E17: computation slicing on a sparse-truth workload (p_pred =
         0.02 — most states are predicate-false, the regime slicing is
         for). Equal-seed pairs differ only in param: 1 detects on the
         slice (events/snapshots/work drop), 0 on the dense run; both
         arms report identical outcomes with byte-identical cuts (the
         sliced cut remapped to dense coordinates), asserted by the E17
         table in bench/main.ml and test/test_slice.ml. *)
      @ sweep
          (fun n ->
            sweep
              (fun algo ->
                sweep
                  (fun slice ->
                    per_seed (fun seed ->
                        job "E17" algo ~n ~m:20 ~p_pred:0.02 ~param:slice
                          ~seed ()))
                  [ 0; 1 ])
              [ "token-vc"; "token-dd"; "token-dd-par"; "token-multi";
                "checker" ])
          [ 8; 16; 32 ]
      (* E17 dense-truth control: at p_pred = 0.3 every run DETECTS, so
         these rows pin actual cuts (spelled out in [outcome], dense
         coordinates) byte-identical between the arms and against the
         baseline — the sparse sweep above mostly ends in
         no-detection, where cut identity is vacuous. *)
      @ sweep
          (fun algo ->
            sweep
              (fun slice ->
                per_seed (fun seed ->
                    job "E17" algo ~n:8 ~m:20 ~p_pred:0.3 ~param:slice ~seed
                      ()))
              [ 0; 1 ])
          [ "token-vc"; "token-dd"; "token-dd-par"; "token-multi"; "checker" ]
      (* E18: parallel-checker crossover. Per n, one centralized
         checker reference row (param 0) plus the parallel checker at
         domain counts 1/2/4/8 (param = its own fan-out). Every row of
         a given n spells out the same cut — the determinism contract
         across domain counts AND against the centralized checker —
         and only wall_ns may vary with param. The parallel rows'
         par_rounds/par_frontier/par_items are identical across domain
         counts by construction. *)
      @ sweep
          (fun n ->
            job "E18" "checker" ~n ~m:20 ~seed:1 ()
            :: List.map
                 (fun d -> job "E18" "parallel" ~n ~m:20 ~param:d ~seed:1 ())
                 [ 1; 2; 4; 8 ])
          [ 8; 16; 32; 64; 128 ]
      (* E19: crash recovery. Per token algorithm x n, a fault-free
         reference row (param 0) and a restart row (param 1) where the
         monitor of process 0 crashes at t=2 and is restored from its
         last checkpoint at t=10 (ckpt_every = 1). Both arms spell the
         cut out in [outcome], so the baseline pins the recovered run's
         first cut byte-identical to the fault-free reference; the
         restart arm additionally reports replayed frames and the
         restore-to-verdict recovery latency. *)
      @ sweep
          (fun n ->
            sweep
              (fun algo ->
                List.map
                  (fun restart ->
                    job "E19" algo ~n ~m:20 ~param:restart ~seed:1 ())
                  [ 0; 1 ])
              [ "token-vc"; "token-dd"; "token-multi" ])
          [ 8; 16; 32 ]
      (* E20: always-on telemetry. Per n, a bare reference row (param
         0, the E1 workload) and a telemetry-attached row (param 1)
         whose timed run streams wcp-metrics/1 through a capacity-1
         ring tap. Both arms spell the cut out, every deterministic
         field is identical between them (the plane is invisible to
         the engine), and the attached arm additionally asserts that a
         second attached run reproduces the stream. Only wall_ns may
         differ — the overhead E20's table reports. *)
      @ sweep
          (fun n ->
            List.map
              (fun telemetry ->
                job "E20" "token-vc" ~n ~m:20 ~param:telemetry ~seed:1 ())
              [ 0; 1 ])
          [ 8; 16; 32 ]
      (* E21: binary trace store. Small rows run every algo family on
         both arms (param 0 = text/dense, param 1 = btrace/streamed)
         across three seeds; the spelled-out cut pins the streamed
         replay byte-identical to the dense reference. One big
         streamed-only row detects over a >= 10^7-event btrace
         (2 * 16 * 320000 = 10.24M events): its decode_ns/peak_words
         columns are the bounded-memory evidence — the dense arm at
         that scale would hold every vector clock in memory. *)
      @ sweep
          (fun algo ->
            sweep
              (fun streamed ->
                per_seed (fun seed ->
                    job "E21" algo ~n:8 ~m:20 ~p_pred:0.3 ~param:streamed
                      ~seed ()))
              [ 0; 1 ])
          [ "token-vc"; "token-dd"; "checker" ]
      @ [ job "E21" "token-vc" ~n:16 ~m:320000 ~p_pred:0.001 ~param:1 ~seed:1 () ]

let run ?domains profile =
  let js = Array.of_list (jobs profile) in
  Wcp_util.Parallel.map ?domains run_job js

(* ------------------------------------------------------------------ *)
(* Serialisation                                                       *)
(* ------------------------------------------------------------------ *)

(* v4: E15 (multicore throughput) and E16 (delta vs dense wire bits)
   added; interval gating + hybrid delta encoding on by default, so
   every message/bits/snapshot figure moved vs v3.
   v5: E17 (computation slicing, dense vs sliced) and the
   slice_states/slice_ns fields added; dd snapshots/polls now priced
   packed by default (Wire.encode_dd / Wire.poll_bits), so dd-family
   bits figures moved vs v4.
   v6: E18 (domain-parallel checker crossover) and the
   par_rounds/par_frontier/par_items fields added; no existing field
   moved.
   v7: E19 (crash-recovery: mid-protocol monitor restart vs fault-free
   reference) and the replayed/recovery_latency fields added; no
   existing field moved.
   v8: E20 (always-on telemetry overhead, attached vs bare), the
   per-span-kind duration percentiles (span_*_p50/p95) and
   telemetry_lines added; traced runs now carry phase marks, so
   trace_events grew by the mark count vs v7 — no other field moved.
   v9: E21 (binary trace store: text/dense vs btrace/streamed replay)
   and the trace_bytes/decode_ns/peak_words fields added; no existing
   field moved. *)
let schema = "wcp-bench/9"

let metrics_to_json r =
  Json.Obj
    [
      ("experiment", Json.Str r.job.experiment);
      ("algo", Json.Str r.job.algo);
      ("n", Json.Int r.job.n);
      ("m", Json.Int r.job.m);
      ("p_pred", Json.Float r.job.p_pred);
      ("seed", Json.Int r.job.seed);
      ("param", Json.Int r.job.param);
      ("outcome", Json.Str r.outcome);
      ("states", Json.Int r.states);
      ("hops", Json.Int r.hops);
      ("polls", Json.Int r.polls);
      ("snapshots", Json.Int r.snapshots);
      ("merges", Json.Int r.merges);
      ("work", Json.Int r.work);
      ("max_work", Json.Int r.max_work);
      ("messages", Json.Int r.messages);
      ("bits", Json.Int r.bits);
      ("events", Json.Int r.events);
      ("sim_time", Json.Float r.sim_time);
      ("retransmits", Json.Int r.retransmits);
      ("dups_suppressed", Json.Int r.dups_suppressed);
      ("net_dropped", Json.Int r.net_dropped);
      ("net_duplicated", Json.Int r.net_duplicated);
      ("replayed", Json.Int r.replayed);
      ("recovery_latency", Json.Float r.recovery_latency);
      ("trace_events", Json.Int r.trace_events);
      ("eliminations", Json.Int r.eliminations);
      ("hop_p50", Json.Float r.hop_p50);
      ("hop_p95", Json.Float r.hop_p95);
      ("hop_max", Json.Float r.hop_max);
      ("elims_per_hop_p50", Json.Float r.elims_per_hop_p50);
      ("elims_per_hop_p95", Json.Float r.elims_per_hop_p95);
      ("elims_per_hop_max", Json.Float r.elims_per_hop_max);
      ("slice_states", Json.Int r.slice_states);
      ("par_rounds", Json.Int r.par_rounds);
      ("par_frontier", Json.Int r.par_frontier);
      ("par_items", Json.Int r.par_items);
      ("span_token_p50", Json.Float r.span_token_p50);
      ("span_token_p95", Json.Float r.span_token_p95);
      ("span_round_p50", Json.Float r.span_round_p50);
      ("span_round_p95", Json.Float r.span_round_p95);
      ("span_recovery_p50", Json.Float r.span_recovery_p50);
      ("span_recovery_p95", Json.Float r.span_recovery_p95);
      ("span_retx_p50", Json.Float r.span_retx_p50);
      ("span_retx_p95", Json.Float r.span_retx_p95);
      ("telemetry_lines", Json.Int r.telemetry_lines);
      ("trace_bytes", Json.Int r.trace_bytes);
      ("decode_ns", Json.Int r.decode_ns);
      ("peak_words", Json.Int r.peak_words);
      ("slice_ns", Json.Int r.slice_ns);
      ("wall_ns", Json.Int r.wall_ns);
      ("alloc_bytes", Json.Int r.alloc_bytes);
    ]

let metrics_of_json j =
  let open Json in
  {
    job =
      {
        experiment = to_str (member "experiment" j);
        algo = to_str (member "algo" j);
        n = to_int (member "n" j);
        m = to_int (member "m" j);
        p_pred = to_float (member "p_pred" j);
        seed = to_int (member "seed" j);
        param = to_int (member "param" j);
      };
    outcome = to_str (member "outcome" j);
    states = to_int (member "states" j);
    hops = to_int (member "hops" j);
    polls = to_int (member "polls" j);
    snapshots = to_int (member "snapshots" j);
    merges = to_int (member "merges" j);
    work = to_int (member "work" j);
    max_work = to_int (member "max_work" j);
    messages = to_int (member "messages" j);
    bits = to_int (member "bits" j);
    events = to_int (member "events" j);
    sim_time = to_float (member "sim_time" j);
    retransmits = to_int (member "retransmits" j);
    dups_suppressed = to_int (member "dups_suppressed" j);
    net_dropped = to_int (member "net_dropped" j);
    net_duplicated = to_int (member "net_duplicated" j);
    replayed = to_int (member "replayed" j);
    recovery_latency = to_float (member "recovery_latency" j);
    trace_events = to_int (member "trace_events" j);
    eliminations = to_int (member "eliminations" j);
    hop_p50 = to_float (member "hop_p50" j);
    hop_p95 = to_float (member "hop_p95" j);
    hop_max = to_float (member "hop_max" j);
    elims_per_hop_p50 = to_float (member "elims_per_hop_p50" j);
    elims_per_hop_p95 = to_float (member "elims_per_hop_p95" j);
    elims_per_hop_max = to_float (member "elims_per_hop_max" j);
    slice_states = to_int (member "slice_states" j);
    par_rounds = to_int (member "par_rounds" j);
    par_frontier = to_int (member "par_frontier" j);
    par_items = to_int (member "par_items" j);
    span_token_p50 = to_float (member "span_token_p50" j);
    span_token_p95 = to_float (member "span_token_p95" j);
    span_round_p50 = to_float (member "span_round_p50" j);
    span_round_p95 = to_float (member "span_round_p95" j);
    span_recovery_p50 = to_float (member "span_recovery_p50" j);
    span_recovery_p95 = to_float (member "span_recovery_p95" j);
    span_retx_p50 = to_float (member "span_retx_p50" j);
    span_retx_p95 = to_float (member "span_retx_p95" j);
    telemetry_lines = to_int (member "telemetry_lines" j);
    trace_bytes = to_int (member "trace_bytes" j);
    decode_ns = to_int (member "decode_ns" j);
    peak_words = to_int (member "peak_words" j);
    slice_ns = to_int (member "slice_ns" j);
    wall_ns = to_int (member "wall_ns" j);
    alloc_bytes = to_int (member "alloc_bytes" j);
  }

let emit ~profile results =
  let doc =
    Json.Obj
      [
        ("schema", Json.Str schema);
        ("profile", Json.Str (profile_name profile));
        ("jobs", Json.Int (Array.length results));
        ( "results",
          Json.List (Array.to_list (Array.map metrics_to_json results)) );
      ]
  in
  (* One record per line keeps committed baselines diffable. *)
  let b = Buffer.create 16384 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"schema\": %s,\n"
                         (Json.to_string (Json.member "schema" doc)));
  Buffer.add_string b (Printf.sprintf "  \"profile\": %s,\n"
                         (Json.to_string (Json.member "profile" doc)));
  Buffer.add_string b (Printf.sprintf "  \"jobs\": %d,\n"
                         (Array.length results));
  Buffer.add_string b "  \"results\": [\n";
  Array.iteri
    (fun i r ->
      Buffer.add_string b "    ";
      Buffer.add_string b (Json.to_string (metrics_to_json r));
      if i < Array.length results - 1 then Buffer.add_char b ',';
      Buffer.add_char b '\n')
    results;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let parse_doc s =
  let doc = Json.parse s in
  let got = Json.to_str (Json.member "schema" doc) in
  if got <> schema then
    raise (Json.Parse_error (Printf.sprintf "schema %S, expected %S" got schema));
  let profile = profile_of_name (Json.to_str (Json.member "profile" doc)) in
  let results =
    Array.of_list (List.map metrics_of_json (Json.to_list (Json.member "results" doc)))
  in
  (profile, results)

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

let job_key j =
  Printf.sprintf "%s/%s n=%d m=%d p=%g seed=%d param=%d" j.experiment j.algo
    j.n j.m j.p_pred j.seed j.param

let strip_timing r =
  { r with wall_ns = 0; alloc_bytes = 0; slice_ns = 0; decode_ns = 0; peak_words = 0 }

let deterministic_equal a b = strip_timing a = strip_timing b

(* Compare a fresh run against a committed baseline: every deterministic
   field must match exactly; wall time may regress at most [tolerance]
   (default 0.20) on each experiment's total, with a 10 ms absolute
   floor so scheduler noise on sub-millisecond experiments cannot trip
   the gate. Returns human-readable failure lines, empty on success.

   [subset] (default false) flips the coverage direction: instead of
   requiring every baseline job to be present in [current], it requires
   every current job to exist in the baseline — the `make bench-smoke`
   mode, where a small smoke run is checked against the committed full
   baseline. Wall totals are then restricted to the jobs the smoke run
   actually executed. *)
let wall_floor_ns = 10_000_000

let compare_runs ?(tolerance = 0.20) ?(subset = false) ~baseline ~current () =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let drift b c =
    if not (deterministic_equal b c) then
      err "metrics drifted for %s (e.g. hops %d->%d, work %d->%d, messages %d->%d)"
        (job_key b.job) b.hops c.hops b.work c.work b.messages c.messages
  in
  let cur_tbl = Hashtbl.create 64 in
  Array.iter (fun r -> Hashtbl.replace cur_tbl (job_key r.job) r) current;
  if subset then begin
    let base_tbl = Hashtbl.create 64 in
    Array.iter (fun r -> Hashtbl.replace base_tbl (job_key r.job) r) baseline;
    Array.iter
      (fun c ->
        match Hashtbl.find_opt base_tbl (job_key c.job) with
        | None -> err "job not in baseline: %s" (job_key c.job)
        | Some b -> drift b c)
      current
  end
  else
    Array.iter
      (fun b ->
        match Hashtbl.find_opt cur_tbl (job_key b.job) with
        | None -> err "missing job: %s" (job_key b.job)
        | Some c -> drift b c)
      baseline;
  (* Wall-clock: per-experiment totals, 20% headroom. In subset mode
     only the baseline jobs the current run re-ran count towards the
     baseline total, so the comparison stays apples-to-apples. *)
  let totals keep results =
    let t = Hashtbl.create 8 in
    Array.iter
      (fun r ->
        if keep r then
          let k = r.job.experiment in
          Hashtbl.replace t k
            (r.wall_ns + Option.value ~default:0 (Hashtbl.find_opt t k)))
      results;
    t
  in
  let bt =
    totals
      (fun r -> (not subset) || Hashtbl.mem cur_tbl (job_key r.job))
      baseline
  and ct = totals (fun _ -> true) current in
  Hashtbl.iter
    (fun exp base ->
      match Hashtbl.find_opt ct exp with
      | None -> ()
      | Some cur ->
          if
            base > 0
            && float_of_int cur > (1.0 +. tolerance) *. float_of_int base
            && cur - base > wall_floor_ns
          then
            err "%s wall time regressed: %d ns -> %d ns (> %+.0f%%)" exp base
              cur (tolerance *. 100.0))
    bt;
  List.rev !errors
