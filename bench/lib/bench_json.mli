(** Machine-readable benchmark harness.

    Runs the E1-E9 and E15-E21 experiment sweeps as independent jobs
    (fanned out over domains with {!Wcp_util.Parallel}), records one
    metrics record per job, and serialises the lot as a stable JSON
    document suitable for committing as a regression baseline (see
    [BENCH_1.json] and EXPERIMENTS.md, "Machine-readable benchmarks").

    All fields except [wall_ns] and [alloc_bytes] are deterministic
    functions of the job parameters: two runs of the same profile — on
    any machine, at any domain count — agree on them exactly, and
    {!compare_runs} enforces this against a committed baseline. *)

(** Hand-rolled JSON (the toolchain has no JSON package). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  val to_string : t -> string
  val parse : string -> t  (** @raise Parse_error on malformed input *)

  val member : string -> t -> t
  val to_int : t -> int
  val to_float : t -> float
  val to_str : t -> string
  val to_list : t -> t list
end

type job = {
  experiment : string;  (** "E1".."E9", "E15".."E21" *)
  algo : string;
      (** "token-vc", "token-dd", "token-dd-par", "token-multi",
          "checker", "parallel", "adversary" *)
  n : int;
  m : int;
  p_pred : float;
  seed : int;
  param : int;
      (** groups (E3), spec width (E5), drop %% (E9), domain count
          (E15, E18's parallel arm), delta flag 0/1 (E16), slice flag
          0/1 (E17), restart flag 0/1 (E19), btrace-streamed flag 0/1
          (E21), else 0 *)
}

type metrics = {
  job : job;
  outcome : string;
      (** "detected" or "none"; for E15, "ok" iff the parallel batch
          was byte-identical to its sequential reference, else
          "mismatch". E17 and E18 append the detected cut in dense
          coordinates (e.g. ["detected {0:6 1:3}"]), so the baseline
          comparison pins the sliced arm to the dense arm's exact cut
          (E17), every domain count to the centralized checker's cut
          (E18), and the crash-recovery arm to the fault-free
          reference's cut (E19). E21 spells the cut too, pinning the
          btrace-streamed replay to the text/dense reference. *)
  states : int;
  hops : int;
  polls : int;
  snapshots : int;
  merges : int;
  work : int;
  max_work : int;
  messages : int;
  bits : int;
  events : int;
  sim_time : float;
  retransmits : int;  (** transport recovery (E9, E19; zero elsewhere) *)
  dups_suppressed : int;
  net_dropped : int;
  net_duplicated : int;
  replayed : int;
      (** Frames replayed from the transport's retained history on a
          post-restart reconnect (E19's restart arm; zero elsewhere).
          Deterministic, like [retransmits]. *)
  recovery_latency : float;
      (** Sim time from the restarted monitor's state restore to the
          run's verdict (E19's restart arm; zero when no restore
          fired). Deterministic: pure simulation clock. *)
  trace_events : int;
      (** Events emitted by a second, traced run of the same job. The
          timed run stays untraced (so [wall_ns] is unaffected), and
          recording never perturbs the engine, so the trace-derived
          fields below are deterministic. Zero for the adversary. *)
  eliminations : int;
  hop_p50 : float;  (** token-hop latency quantiles (sim time) *)
  hop_p95 : float;
  hop_max : float;
  elims_per_hop_p50 : float;  (** eliminations between token acceptances *)
  elims_per_hop_p95 : float;
  elims_per_hop_max : float;
  slice_states : int;
      (** Total states of the computation slice for the sliced arm of
          E17 ([job.param = 1]); zero everywhere else. Deterministic:
          the slice is a function of the computation and the spec. *)
  par_rounds : int;
      (** Parallel-checker barrier rounds (E18's "parallel" rows; zero
          for every other detector). Deterministic and domain-count
          independent, like [par_frontier] and [par_items]. *)
  par_frontier : int;
      (** Widest frontier: most slots advanced in a single round. *)
  par_items : int;
      (** Candidate-versus-threshold comparisons across all rounds. *)
  span_token_p50 : float;
      (** Median token-generation span duration (sim time) from the
          traced reference run's span tree; zero when the run has no
          spans of the kind. Deterministic, like every span field. *)
  span_token_p95 : float;  (** 95th-percentile token span. *)
  span_round_p50 : float;  (** Median elimination-round span. *)
  span_round_p95 : float;  (** 95th-percentile elimination round. *)
  span_recovery_p50 : float;
      (** Median crash-recovery window (restart to replay-complete). *)
  span_recovery_p95 : float;  (** 95th-percentile recovery window. *)
  span_retx_p50 : float;
      (** Median retransmit-burst span (bursts close after a 2.0
          sim-time gap with no retransmission). *)
  span_retx_p95 : float;  (** 95th-percentile retransmit burst. *)
  telemetry_lines : int;
      (** Lines a [wcp-metrics/1] stream of the traced run would carry
          (alloc-stripped encoder, so the count is deterministic). *)
  trace_bytes : int;
      (** On-disk bytes of the trace the job detected from (E21: text
          for [param = 0], btrace for [param = 1]; zero elsewhere).
          Deterministic — both formats are byte-stable. *)
  decode_ns : int;
      (** Wall time of the E21 load step: text decode to the dense
          computation, or btrace open + streamed slice construction
          (machine-dependent; zero outside E21). *)
  peak_words : int;
      (** Live-heap words the E21 load step left behind ([Gc.live_words]
          delta). The bounded-memory evidence: the streamed arm's
          figure tracks the slice, not the trace length. Excluded from
          determinism comparisons (GC-state dependent); zero outside
          E21. *)
  slice_ns : int;
      (** Wall time of slice construction (machine-dependent; zero
          outside E17's sliced arm). *)
  wall_ns : int;  (** machine-dependent *)
  alloc_bytes : int;  (** machine-dependent (GC promotion noise) *)
}

type profile = Full | Smoke

val profile_name : profile -> string
val profile_of_name : string -> profile

val jobs : profile -> job list

val run_job : job -> metrics
(** Run one job to completion in the calling domain. *)

val run : ?domains:int -> profile -> metrics array
(** All jobs of the profile, in declaration order, fanned out with
    {!Wcp_util.Parallel.map} ([domains = 1] runs sequentially). The
    deterministic metric fields do not depend on [domains]. *)

val e15_sessions : int
(** Sessions per E15 throughput batch; sessions/sec for an E15 row is
    [e15_sessions /. (wall_ns / 1e9)]. The batch runs under
    {!Wcp_util.Parallel.map} with [job.param] domains, and its
    per-session summaries are compared against a sequential reference
    run (see [outcome]). *)

val schema : string
(** Document schema tag, ["wcp-bench/9"] (v2 added the fault-recovery
    counters; v3 the trace-derived histogram summaries; v4 E15/E16 and
    the gated + delta-encoded wire defaults; v5 E17 computation
    slicing, the [slice_states]/[slice_ns] fields, and packed dd
    snapshot + poll pricing under [delta], which moves dd bit counts;
    v6 E18 domain-parallel checker crossover and the
    [par_rounds]/[par_frontier]/[par_items] fields; v7 E19
    crash-recovery and the [replayed]/[recovery_latency] fields; v8
    E20 always-on telemetry overhead, the [span_*_p50]/[span_*_p95]
    duration percentiles and [telemetry_lines] — traced runs now carry
    phase marks, so [trace_events] grew by the mark count; v9 E21
    binary trace store (text/dense vs btrace/streamed replay) and the
    [trace_bytes]/[decode_ns]/[peak_words] fields). *)

val emit : profile:profile -> metrics array -> string
(** JSON document, one result record per line. *)

val parse_doc : string -> profile * metrics array
(** @raise Json.Parse_error on malformed input or schema mismatch. *)

val strip_timing : metrics -> metrics
(** Zero the machine-dependent fields, for exact comparisons. *)

val deterministic_equal : metrics -> metrics -> bool

val job_key : job -> string
(** Human-readable identity used to match baseline and current runs. *)

val compare_runs :
  ?tolerance:float -> ?subset:bool -> baseline:metrics array ->
  current:metrics array -> unit -> string list
(** Failure lines, empty when [current] reproduces every deterministic
    field of [baseline] and no experiment's total wall time regressed
    by more than [tolerance] (default 0.20). With [~subset:true] the
    coverage direction flips: every [current] job must exist in
    [baseline] (jobs the current run skipped are fine), and wall totals
    count only the jobs the current run executed — the
    [make bench-smoke] mode, checking a smoke run against the committed
    full baseline. *)
