(** Deterministic, splittable pseudo-random number generator.

    Implements SplitMix64 (Steele, Lea & Flood, OOPSLA 2014). Every
    simulation in this repository draws randomness exclusively through
    this module so that runs are reproducible from a single [int64]
    seed, independent of the OCaml stdlib [Random] state. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean; used for
    message latencies and think times. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
