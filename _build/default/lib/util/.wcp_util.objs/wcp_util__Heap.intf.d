lib/util/heap.mli:
