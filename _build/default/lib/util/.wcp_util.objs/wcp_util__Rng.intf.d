lib/util/rng.mli:
