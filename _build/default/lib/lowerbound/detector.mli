(** A sound comparison-based detection algorithm for the §5 model.

    Each round performs one S1 step (compare all head pairs) and then
    one S2 step deleting {e every} dominated head — the most parallel
    deletion any sound algorithm can make, since only heads proven to
    precede another head can be excluded from all future antichains.
    This is the parallel form of the advance-the-cut algorithm.

    Against a real computation it finds the first satisfying cut;
    against the {!Adversary} it is forced to delete one state per
    round, demonstrating the [Ω(nm)] bound of Theorem 5.1. *)

type answer =
  | Antichain of int array
      (** head identifiers (state indices for computation worlds)
          forming the size-[n] antichain *)
  | No_antichain

type trace = {
  rounds : int;  (** S1 steps performed *)
  deletions : int;  (** heads deleted over all S2 steps *)
}

type policy =
  | Greedy  (** delete every dominated head (maximal parallel S2) *)
  | One_at_a_time  (** delete a single dominated head per round *)
  | Random_subset of Wcp_util.Rng.t
      (** delete a random non-empty subset of the dominated heads *)

val run : ?policy:policy -> World.t -> answer * trace
(** All policies are sound (they only delete dominated heads) and
    complete; the adversary forces each of them through [Ω(nm)] steps —
    Theorem 5.1 does not depend on the deletion strategy. Default
    {!Greedy}. *)
