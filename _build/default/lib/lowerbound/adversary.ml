exception Cheating of string

type stats = {
  mutable comparisons_answered : int;
  mutable deletions : int;
}

let make ~n ~m =
  if n < 2 then invalid_arg "Adversary.make: need n >= 2";
  if m < 1 then invalid_arg "Adversary.make: need m >= 1";
  let sizes = Array.make n m in
  (* Head of queue [lo] precedes head of queue [hi]; all else
     incomparable. *)
  let lo = ref 0 and hi = ref 1 in
  let stats = { comparisons_answered = 0; deletions = 0 } in
  let remaining k = sizes.(k) in
  let head_id k = m - sizes.(k) + 1 in
  let compare_heads i j =
    if sizes.(i) = 0 || sizes.(j) = 0 then
      invalid_arg "Adversary: comparing an empty queue's head";
    stats.comparisons_answered <- stats.comparisons_answered + 1;
    if i = !lo && j = !hi then World.Precedes
    else if i = !hi && j = !lo then World.Follows
    else World.Incomparable
  in
  let delete_heads ks =
    match ks with
    | [] -> ()
    | [ k ] when k = !lo ->
        sizes.(k) <- sizes.(k) - 1;
        stats.deletions <- stats.deletions + 1;
        if sizes.(k) > 0 then begin
          (* Next round (paper's proof): the longest remaining other
             queue's head is dominated by the fresh head of the queue
             just popped. *)
          let longest = ref (if k = 0 then 1 else 0) in
          for i = 0 to n - 1 do
            if i <> k && sizes.(i) > sizes.(!longest) then longest := i
          done;
          hi := k;
          lo := !longest
        end
        (* A queue emptied: the game is over; any sound algorithm must
           now answer "no antichain". *)
    | _ ->
        raise
          (Cheating
             "adversary: only the single dominated head may be deleted")
  in
  ( { World.n; remaining; head_id; compare_heads; delete_heads }, stats )
