open Wcp_trace
open Wcp_core

type relation = Precedes | Follows | Incomparable

type t = {
  n : int;
  remaining : int -> int;
  head_id : int -> int;
  compare_heads : int -> int -> relation;
  delete_heads : int list -> unit;
}

let of_computation comp spec =
  let n = Spec.width spec in
  let queues =
    Array.map (fun p -> ref (Computation.candidates comp p)) (Spec.procs spec)
  in
  let head k =
    match !(queues.(k)) with
    | [] -> invalid_arg "World: queue empty"
    | s :: _ -> State.make ~proc:(Spec.proc spec k) ~index:s
  in
  {
    n;
    remaining = (fun k -> List.length !(queues.(k)));
    head_id = (fun k -> (head k).State.index);
    compare_heads =
      (fun i j ->
        let a = head i and b = head j in
        if Computation.happened_before comp a b then Precedes
        else if Computation.happened_before comp b a then Follows
        else Incomparable);
    delete_heads =
      (fun ks ->
        List.iter
          (fun k ->
            match !(queues.(k)) with
            | [] -> invalid_arg "World.delete_heads: queue empty"
            | _ :: rest -> queues.(k) := rest)
          ks);
  }
