(** The §5 queue model of online predicate detection.

    A detection algorithm sees [n] queues of candidate local states,
    one per process, and may only:
    - {b S1}: compare the current heads of the queues, and
    - {b S2}: delete any number of heads in parallel.

    It must decide whether the underlying poset contains an antichain
    of size [n] with one element per queue — i.e. whether the WCP is
    detectable. A {e world} is the environment answering those queries:
    either a real recorded computation or the Theorem 5.1 adversary. *)

type relation =
  | Precedes  (** head of [i] happened before head of [j] *)
  | Follows
  | Incomparable

type t = {
  n : int;
  remaining : int -> int;  (** elements left in queue [i] (head included) *)
  head_id : int -> int;
      (** opaque identifier of queue [i]'s head (the 1-based state
          index for computation-backed worlds); queue must be
          non-empty *)
  compare_heads : int -> int -> relation;
      (** both queues must be non-empty *)
  delete_heads : int list -> unit;
      (** S2 step. The world may verify soundness: a correct algorithm
          only deletes heads it has proven dominated, so worlds are
          entitled to reject anything else. *)
}

val of_computation : Wcp_trace.Computation.t -> Wcp_core.Spec.t -> t
(** Queues are the spec processes' candidate (predicate-true) states in
    order; comparisons answer from the recorded happened-before
    relation. [delete_heads] accepts any deletion (the real world
    cannot be cheated, only misused). *)
