lib/lowerbound/detector.ml: Array Fun List Wcp_util World
