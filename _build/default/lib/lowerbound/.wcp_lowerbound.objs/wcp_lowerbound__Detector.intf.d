lib/lowerbound/detector.mli: Wcp_util World
