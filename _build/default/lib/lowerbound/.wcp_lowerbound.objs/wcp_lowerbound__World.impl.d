lib/lowerbound/world.ml: Array Computation List Spec State Wcp_core Wcp_trace
