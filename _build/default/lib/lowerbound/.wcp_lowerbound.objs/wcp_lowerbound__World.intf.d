lib/lowerbound/world.mli: Wcp_core Wcp_trace
