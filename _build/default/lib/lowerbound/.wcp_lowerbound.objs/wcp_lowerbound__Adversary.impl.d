lib/lowerbound/adversary.ml: Array World
