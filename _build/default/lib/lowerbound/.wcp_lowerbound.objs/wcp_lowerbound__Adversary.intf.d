lib/lowerbound/adversary.mli: World
