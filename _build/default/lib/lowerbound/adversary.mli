(** The Theorem 5.1 adversary.

    Answers comparison queries so that at every moment exactly one head
    is dominated (the head of the current "low" queue precedes the head
    of the "high" queue; every other pair is incomparable), forcing any
    sound algorithm to delete one state per step. After each deletion
    the low queue becomes the longest remaining queue and the high
    queue becomes the one just deleted from, exactly as in the paper's
    proof. The game ends when a queue empties, after [nm − n + 1]
    forced sequential deletions — witnessing the [Ω(nm)] bound.

    The adversary {e verifies soundness}: deleting a head it has not
    shown dominated raises [Cheating], because the adversary could then
    exhibit a poset, consistent with all its previous answers, in which
    that head belonged to the antichain. *)

exception Cheating of string

type stats = {
  mutable comparisons_answered : int;  (** S1 pair-queries answered *)
  mutable deletions : int;  (** heads deleted *)
}

val make : n:int -> m:int -> World.t * stats
(** An adversary world with [n] queues of [m] elements each. *)
