type answer = Antichain of int array | No_antichain

type trace = { rounds : int; deletions : int }

type policy = Greedy | One_at_a_time | Random_subset of Wcp_util.Rng.t

(* Choose which of the dominated heads to delete this round. *)
let select policy = function
  | [] -> []
  | dominated -> (
      match policy with
      | Greedy -> dominated
      | One_at_a_time -> [ List.hd dominated ]
      | Random_subset rng ->
          let chosen =
            List.filter (fun _ -> Wcp_util.Rng.bool rng) dominated
          in
          if chosen = [] then [ List.nth dominated (Wcp_util.Rng.int rng (List.length dominated)) ]
          else chosen)

let run ?(policy = Greedy) (w : World.t) =
  let n = w.World.n in
  let rounds = ref 0 in
  let deletions = ref 0 in
  let rec round () =
    if Array.exists (fun k -> w.World.remaining k = 0) (Array.init n Fun.id)
    then (No_antichain, { rounds = !rounds; deletions = !deletions })
    else begin
      incr rounds;
      (* S1: one pass over all head pairs; collect dominated heads. *)
      let dominated = Array.make n false in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          match w.World.compare_heads i j with
          | World.Precedes -> dominated.(i) <- true
          | World.Follows -> dominated.(j) <- true
          | World.Incomparable -> ()
        done
      done;
      let doomed = ref [] in
      for i = n - 1 downto 0 do
        if dominated.(i) then doomed := i :: !doomed
      done;
      match select policy !doomed with
      | [] ->
          ( Antichain (Array.init n w.World.head_id),
            { rounds = !rounds; deletions = !deletions } )
      | ks ->
          (* S2: delete the selected dominated heads in parallel. *)
          deletions := !deletions + List.length ks;
          w.World.delete_heads ks;
          round ()
    end
  in
  round ()
