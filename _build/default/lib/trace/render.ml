let cut_marks cut comp =
  let marks = Array.make (Computation.n comp) 0 in
  (match cut with
  | None -> ()
  | Some c ->
      for k = 0 to Cut.width c - 1 do
        let s = Cut.state c k in
        marks.(s.State.proc) <- s.State.index
      done);
  marks

let ascii ?cut comp =
  let buf = Buffer.create 512 in
  let marks = cut_marks cut comp in
  for p = 0 to Computation.n comp - 1 do
    Buffer.add_string buf (Printf.sprintf "P%d:" p);
    let state = ref 1 in
    let put_state () =
      let flag =
        if Computation.pred comp (State.make ~proc:p ~index:!state) then "*"
        else "."
      in
      let mark = if marks.(p) = !state then "<" else "" in
      Buffer.add_string buf (Printf.sprintf " (%d)%s%s" !state flag mark)
    in
    put_state ();
    List.iter
      (fun op ->
        (match op with
        | Computation.Send { dst; msg } ->
            Buffer.add_string buf (Printf.sprintf " !%d>%d" msg dst)
        | Computation.Recv { msg } ->
            Buffer.add_string buf (Printf.sprintf " ?%d" msg));
        incr state;
        put_state ())
      (Computation.ops comp p);
    Buffer.add_char buf '\n'
  done;
  let msgs = Computation.messages comp in
  if Array.length msgs > 0 then begin
    Buffer.add_string buf "messages:";
    Array.iter
      (fun (m : Computation.message) ->
        Buffer.add_string buf
          (Printf.sprintf " %d:%d->%d" m.Computation.id m.Computation.src
             m.Computation.dst))
      msgs;
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

let dot ?cut comp =
  let buf = Buffer.create 1024 in
  let marks = cut_marks cut comp in
  Buffer.add_string buf "digraph computation {\n";
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  for p = 0 to Computation.n comp - 1 do
    Buffer.add_string buf (Printf.sprintf "  subgraph cluster_p%d {\n" p);
    Buffer.add_string buf (Printf.sprintf "    label=\"P%d\";\n" p);
    for s = 1 to Computation.num_states comp p do
      let pred = Computation.pred comp (State.make ~proc:p ~index:s) in
      let attrs = Buffer.create 32 in
      Buffer.add_string attrs (Printf.sprintf "label=\"(%d,%d)\"" p s);
      if pred then Buffer.add_string attrs ", style=filled, fillcolor=palegreen";
      if marks.(p) = s then Buffer.add_string attrs ", color=red, penwidth=2";
      Buffer.add_string buf (Printf.sprintf "    p%d_s%d [%s];\n" p s (Buffer.contents attrs))
    done;
    for s = 1 to Computation.num_states comp p - 1 do
      Buffer.add_string buf
        (Printf.sprintf "    p%d_s%d -> p%d_s%d;\n" p s p (s + 1))
    done;
    Buffer.add_string buf "  }\n"
  done;
  Array.iter
    (fun (m : Computation.message) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  p%d_s%d -> p%d_s%d [style=dashed, label=\"m%d\", constraint=false];\n"
           m.Computation.src m.Computation.src_state m.Computation.dst
           m.Computation.dst_state m.Computation.id))
    (Computation.messages comp);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
