exception Parse_error of { line : int; message : string }

let parse_error ~line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let encode comp =
  let buf = Buffer.create 1024 in
  let n = Computation.n comp in
  Buffer.add_string buf "wcp-trace v1\n";
  Buffer.add_string buf (Printf.sprintf "n %d\n" n);
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "ops %d" i);
    List.iter
      (fun op ->
        match op with
        | Computation.Send { dst; msg } ->
            Buffer.add_string buf (Printf.sprintf " S%d:%d" dst msg)
        | Computation.Recv { msg } ->
            Buffer.add_string buf (Printf.sprintf " R:%d" msg))
      (Computation.ops comp i);
    Buffer.add_char buf '\n';
    Buffer.add_string buf (Printf.sprintf "pred %d" i);
    for s = 1 to Computation.num_states comp i do
      Buffer.add_string buf
        (if Computation.pred comp (State.make ~proc:i ~index:s) then " 1"
         else " 0")
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

let strip_comment s =
  match String.index_opt s '#' with
  | None -> s
  | Some i -> String.sub s 0 i

let parse_int ~line s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> parse_error ~line "expected integer, got %S" s

let parse_op ~line tok =
  if String.length tok >= 2 && tok.[0] = 'R' && tok.[1] = ':' then
    Computation.Recv
      { msg = parse_int ~line (String.sub tok 2 (String.length tok - 2)) }
  else if String.length tok >= 1 && tok.[0] = 'S' then
    match String.index_opt tok ':' with
    | Some c ->
        let dst = parse_int ~line (String.sub tok 1 (c - 1)) in
        let msg =
          parse_int ~line (String.sub tok (c + 1) (String.length tok - c - 1))
        in
        Computation.Send { dst; msg }
    | None -> parse_error ~line "malformed send token %S" tok
  else parse_error ~line "unknown op token %S" tok

let decode text =
  let lines = String.split_on_char '\n' text in
  let n = ref (-1) in
  let ops : Computation.op list array ref = ref [||] in
  let pred : bool array array ref = ref [||] in
  let saw_header = ref false in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      match split_ws (strip_comment raw) with
      | [] -> ()
      | "wcp-trace" :: version :: _ ->
          if version <> "v1" then
            parse_error ~line "unsupported version %S" version;
          saw_header := true
      | "n" :: [ count ] ->
          if not !saw_header then parse_error ~line "missing wcp-trace header";
          let c = parse_int ~line count in
          if c < 1 then parse_error ~line "n must be >= 1";
          n := c;
          ops := Array.make c [];
          pred := Array.make c [||]
      | "ops" :: proc :: toks ->
          let p = parse_int ~line proc in
          if !n < 0 then parse_error ~line "ops before n";
          if p < 0 || p >= !n then parse_error ~line "no process %d" p;
          !ops.(p) <- List.map (parse_op ~line) toks
      | "pred" :: proc :: toks ->
          let p = parse_int ~line proc in
          if !n < 0 then parse_error ~line "pred before n";
          if p < 0 || p >= !n then parse_error ~line "no process %d" p;
          !pred.(p) <-
            Array.of_list
              (List.map
                 (fun t ->
                   match t with
                   | "0" -> false
                   | "1" -> true
                   | _ -> parse_error ~line "pred flag must be 0 or 1, got %S" t)
                 toks)
      | tok :: _ -> parse_error ~line "unknown directive %S" tok)
    lines;
  if !n < 0 then parse_error ~line:0 "no 'n' directive";
  Computation.of_raw ~ops:!ops ~pred:!pred

let write_file path comp =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode comp))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      decode (really_input_string ic len))
