(** Local-state identifiers.

    The paper writes [(i, k)] for the [k]-th state of process [P_i]: a
    {e state} is the interval between two consecutive communication
    events of a process. Indices are 1-based ([k >= 1]), matching the
    Fig. 2 convention that [vclock.(i) = 1] in the initial state; the
    value [0] is reserved for the detection algorithms' "no state
    selected yet" sentinel and never names a real state. *)

type t = { proc : int; index : int }

val make : proc:int -> index:int -> t

val equal : t -> t -> bool

val compare : t -> t -> int
(** Orders by process, then index; a total order for containers only. *)

val pp : Format.formatter -> t -> unit
(** Renders as [(2,5)]. *)

val to_string : t -> string
