(** Plain-text serialization of computations.

    Format (line-oriented, [#] starts a comment):
    {v
    wcp-trace v1
    n 3
    ops 0 S1:0 R:2 S2:1
    pred 0 1 0 1 1
    ops 1 R:0 ...
    pred 1 ...
    v}
    [Sd:m] is "send message [m] to process [d]"; [R:m] is "receive
    message [m]". The [pred] line for process [i] lists one [0]/[1]
    flag per state ([number of ops + 1] flags).

    Decoding re-validates causal soundness through
    {!Computation.of_raw}, so a trace file can never produce an
    inconsistent in-memory computation. *)

exception Parse_error of { line : int; message : string }

val encode : Computation.t -> string

val decode : string -> Computation.t
(** @raise Parse_error on syntax errors.
    @raise Computation.Invalid on causally unsound traces. *)

val write_file : string -> Computation.t -> unit

val read_file : string -> Computation.t
