(** Imperative construction of computations.

    The builder records events in the (sequential) order the caller
    issues them; because a message handle can only be received after
    the call that created it, every built run is causally sound by
    construction. Predicate truth defaults to [false] for each state
    and is switched on with {!set_pred}, which applies to the process's
    {e current} state.

    Typical use:
    {[
      let b = Builder.create ~n:2 in
      Builder.set_pred b ~proc:0 true;        (* l_0 holds in (0,1) *)
      let m = Builder.send b ~src:0 ~dst:1 in
      Builder.recv b ~dst:1 m;
      Builder.set_pred b ~proc:1 true;        (* l_1 holds in (1,2) *)
      let c = Builder.finish b in
      ...
    ]} *)

type t

type msg
(** Handle for a sent-but-not-yet-received message. *)

val create : n:int -> t

val send : t -> src:int -> dst:int -> msg
(** Append a send event to [src]; the message must later be passed to
    {!recv} exactly once. *)

val recv : t -> dst:int -> msg -> unit
(** Append the matching receive to [dst].
    @raise Invalid_argument if [dst] is not the addressed process or
    the handle was already received. *)

val internal : t -> proc:int -> unit
(** No-op placeholder: local computation that is not a communication
    event does not create a new state (states are delimited by
    communication only), so this records nothing. Provided so that
    example code can mirror program structure literally. *)

val set_pred : t -> proc:int -> bool -> unit
(** Set the local predicate's truth in the current state of [proc]. *)

val current_state : t -> proc:int -> int
(** 1-based index of the process's current state. *)

val finish : t -> Computation.t
(** Validate and freeze. @raise Computation.Invalid if any message was
    never received. *)
